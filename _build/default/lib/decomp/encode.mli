(** Class encoding with extraction of common decomposition functions.

    Every output [i] has its compatible classes (a partition of the
    deduplicated bound-set nodes) and must receive exactly
    [r_i = ceil(log2 K_i)] decomposition functions — the paper's
    constraint, which keeps the composition function's input count
    minimal.  Decomposition functions are restricted to {e strict} ones
    (constant on every compatible class), and the encoder greedily
    reuses functions already introduced for earlier outputs whenever
    they are strict for the current output and the remaining code space
    still suffices — the mulop sharing scheme of Scholl & Molitor
    (ASP-DAC'97). *)

type output_classes = {
  class_of_node : int array;  (** node -> class, classes [0 .. nclasses-1] *)
  nclasses : int;
}

type output_encoding = {
  alpha_ids : int list;
      (** indices into {!pool}, most significant code bit first; length
          [r_i] *)
  code_of_class : int array;  (** class -> code, all codes distinct *)
}

type t = {
  pool : bool array list;
      (** decomposition functions as bit-per-node vectors, in pool-index
          order *)
  outputs : output_encoding array;
}

val encode : output_classes array -> t
(** The total number of distinct decomposition functions
    [List.length pool] satisfies
    [max_i r_i <= |pool| <= sum_i r_i]. *)

val check : output_classes array -> t -> bool
(** Validity: codes distinct per output, every alpha strict w.r.t. every
    output using it, and code bits consistent with the alpha vectors
    (bit [k] of a class code equals the alpha's value on the class). *)
