(** Lattice-based abstract interpretation over LUT networks — the
    cheap screening tier in front of the exact engines.

    The check stack has two expensive oracles: the exact BDD dataflow
    ({!Careflow}) and the windowed SAT engine ({!Complete_dc}).  This
    module is the tier below them: a generic worklist fixpoint solver
    over {!Network.t} with pluggable lattice domains, plus the three
    shipped analyses the {!Semantics} report uses to decide where the
    expensive engines' effort is actually needed:

    - {e ternary constant propagation} (forward): 0/1/X values, seeded
      from constant nodes and optional per-input care assumptions — a
      proven constant is a sound [SEM003] fact;
    - {e functional support} (forward): an over-approximation of each
      node's primary-input support — the structural support minus
      fanins the local truth table provably ignores (single-cube
      cofactor checks), the source of the [SUP001]/[SUP002]
      redundant-fanin diagnostics;
    - {e observability} (backward): an under-approximation of
      observability as the set of primary outputs a node {e pointwise}
      drives — through chains of single-fanout arcs into
      totally-sensitive table positions, a dominator-style pass over
      the fanout cone.  A node with a non-empty set is certainly
      observable at {e every} input vector.

    A deterministic bit-parallel simulation refines the forward
    domains with witnesses: a fanin code observed in simulation is
    certainly reachable, so a node whose codes are all witnessed and
    whose observability is proven can be skipped by the SAT fallback
    without losing a single finding.

    Every fact is {e sound} (never wrong, possibly missing): the
    screening tier is a pure observer, and disabling it
    ([--no-dataflow]) must not change any finding.

    Precondition as for {!Careflow.analyze}: structurally sound
    networks only. *)

(** {1 The generic solver} *)

type direction = Forward | Backward

type env
(** Per-network precomputation shared by every domain solved on it:
    topological ranks, LUT fanout arcs, output bindings, and the
    primary-input index space. *)

val env : Network.t -> env
(** One {!Network.iter_cone} pass. *)

val env_network : env -> Network.t

val fanout_arcs : env -> Network.signal -> Network.signal list
(** The LUT nodes reading a signal, {e with multiplicity} (one entry
    per fanin arc), in deterministic topological order. *)

val outputs_of : env -> Network.signal -> string list
(** Names of the primary outputs bound directly to this signal. *)

val input_index : env -> string -> int
(** Dense index of a primary input, [0 .. input_count - 1], in
    {!Network.inputs} order.
    @raise Not_found on names that are not primary inputs. *)

val input_count : env -> int

(** A join-semilattice domain with its transfer function.  [transfer]
    must be monotone in the looked-up facts; [join] must be the least
    upper bound (or any sound upper bound); [widen] is applied once a
    node's fact has changed more than [height_bound] times and must
    return an upper bound of both arguments that stops the ascent
    (typically the domain's top). *)
module type DOMAIN = sig
  type fact

  val name : string
  val direction : direction
  val bottom : fact
  val equal : fact -> fact -> bool
  val join : fact -> fact -> fact

  val height_bound : int
  (** Maximum changes per node before {!widen} kicks in.  Domains
      whose height exceeds any network's diameter set it to the
      lattice height; artificial domains (tests) may set it low. *)

  val widen : fact -> fact -> fact
  (** [widen old proposed]: the accelerated fact. *)

  val transfer : env -> (Network.signal -> fact) -> Network.signal -> fact
  (** [transfer env lookup s]: recompute [s]'s fact from its
      dependencies — fanins under [Forward], fanout arcs (and output
      bindings) under [Backward]. *)
end

module Fixpoint (D : DOMAIN) : sig
  type result = {
    fact_of : Network.signal -> D.fact;
    iterations : int;  (** transfer applications until the fixpoint *)
    widenings : int;  (** nodes accelerated past the height bound *)
  }

  val run : env -> result
  (** Worklist fixpoint: every reachable node seeded in priority order
      (topological for [Forward], reverse for [Backward]), dependents
      re-queued whenever a fact grows.  Terminates on any network for
      any lawful domain: facts only ascend, and the height bound caps
      the ascent per node. *)
end

(** {1 The shipped ternary domain} *)

module Ternary : sig
  type fact = Bot | Zero | One | Any

  val domain : ?input_env:(string -> bool option) -> unit -> (module DOMAIN with type fact = fact)
  (** [input_env name] pins a primary input to a constant under the
      specification's care assumptions (e.g. a PLA input column that
      is constant across the care cubes); the default pins nothing. *)
end

(** {1 The bundled analysis for the screening tier} *)

type node_facts = {
  nf_signal : Network.signal;
  nf_const : bool option;
      (** ternary-proven constant value of the node, on every input
          vector permitted by the input environment *)
  nf_vacuous : int list;
      (** fanin positions the local truth table provably ignores
          (cofactor-equal) — [SUP001]: dropping them is always sound *)
  nf_contained : int list;
      (** non-vacuous fanin positions whose over-approximated support
          is contained in the union of the other fanins' supports —
          [SUP002]: reconvergent, a candidate for exact pruning *)
  nf_obs_outputs : string list;
      (** primary outputs this node pointwise drives: complementing
          the node complements each of them at {e every} input vector *)
  nf_codes_seen : int;  (** distinct fanin codes witnessed by simulation *)
  nf_all_codes : bool;
      (** every one of the [2^k] codes was witnessed — each table row
          is certainly reachable *)
  nf_both_values : bool;  (** both output values were witnessed *)
}

type t

val analyze :
  ?sim_rounds:int -> ?input_env:(string -> bool option) -> Network.t -> t
(** Run the three domains plus [sim_rounds] (default 4) rounds of
    64-wide deterministic random simulation (a fixed xorshift seed, so
    two runs over the same network agree bit for bit).  [input_env]
    feeds the ternary domain and pins simulated inputs. *)

val facts : t -> node_facts list
(** Per reachable LUT node, topological order. *)

val fact_of : t -> Network.signal -> node_facts option

val iterations : t -> int
(** Total transfer applications across the three domains (the
    [df_iterations] statistic). *)

val fact_count : t -> int
(** Number of non-trivial facts proved: constants, vacuous and
    contained fanin positions, observability proofs, and fully
    witnessed nodes (the [df_facts] statistic). *)
