(** Bounded-depth windows around a node, for local SAT reasoning.

    A window is the fragment of the network the SAT-backed don't-care
    analysis ({!Complete_dc}) looks at in place of the whole circuit:
    the transitive fanout of the {e center} node to a bounded depth,
    the roots where that fanout is cut, and enough transitive fanin
    behind the roots to give the local functions context.

    The soundness story (why a window under-approximates don't cares
    and never invents one):

    - {e leaves are free}: nodes just outside the window are treated as
      unconstrained variables, so every globally possible valuation of
      the window's boundary is possible in the window — reachability is
      over-approximated, hence a row unreachable in the window is
      unreachable globally;
    - {e roots cut every path}: every path from the center to a primary
      output passes through a root (a window node with a fanout outside
      the window or driving a primary output), so a center flip that no
      root observes is globally unobservable.

    Consequently the care set computed on a window over-approximates
    the true care set, and the don't cares derived from it are safe to
    exploit. *)

type ctx
(** Per-network precomputation (fanout lists, topological ranks,
    output-driver flags) shared by every window built on it. *)

val context : Network.t -> ctx
(** One pass over the network ({!Network.iter_cone} order).  The
    network must not be mutated while windows built from this context
    are in use. *)

val network : ctx -> Network.t
(** The network the context was built from. *)

val order_by_density :
  ctx ->
  density:(Network.signal -> int) ->
  Network.signal array ->
  Network.signal array
(** A copy of the signals sorted by decreasing [density], ties broken
    by topological rank.  The windowed SAT fallback orders its centers
    by unscreened-fact density this way, so when its wall budget runs
    out, the solver time was spent where the cheap {!Dataflow} tier
    could not already decide the answer. *)

type t

val build : ctx -> center:Network.signal -> tfi_depth:int -> tfo_depth:int -> t
(** The window around [center] (which must be a LUT node): forward to
    depth [tfo_depth], roots where the fanout escapes, then backward
    from the roots (and the center) to depth [tfi_depth + tfo_depth].
    Depths are clamped to [0 ..] and may be [max_int] ("the whole
    cone" — how the tests compare against the exact BDD analysis).
    @raise Invalid_argument when [center] is not a LUT. *)

val center : t -> Network.signal

val internals : t -> Network.signal array
(** The window's LUT nodes, topologically sorted, center included. *)

val leaves : t -> Network.signal array
(** Boundary nodes treated as free variables: primary inputs and
    cut-off LUTs feeding the window (constants are {e not} leaves;
    the encoder pins them). *)

val roots : t -> Network.signal array
(** Where the miter compares the two copies.  A subset of
    {!internals}, possibly including the center itself.  Empty exactly
    when no primary output depends on the center (a structurally dead
    center). *)

val in_tfo : t -> Network.signal -> bool
(** Is this internal node in the center's transitive fanout (the part
    the miter's B-copy re-encodes)? *)
