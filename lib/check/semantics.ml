(* The SEM passes: semantic lint over the Careflow SDC/ODC dataflow,
   with a windowed SAT fallback for the nodes the exact dataflow's
   budget could not reach.  All iteration is over lists/arrays in
   topological order, never over hashtable order, so reports are
   deterministic run to run. *)

let rows_blurb rows total =
  let shown = List.filteri (fun i _ -> i < 8) rows in
  Printf.sprintf "%s%s of %d"
    (String.concat ","
       (List.map (fun c -> string_of_int c) shown))
    (if List.length rows > List.length shown then ",..." else "")
    total

(* Stable human name for a node: input name, first output it drives, or
   a synthetic n<id> (same convention as Net_check). *)
let namer net =
  let output_of = Hashtbl.create 16 in
  List.iter
    (fun (name, s) ->
      let i = Network.signal_id s in
      if not (Hashtbl.mem output_of i) then Hashtbl.add output_of i name)
    (Network.outputs net);
  fun s ->
    match Network.view net s with
    | `Input name -> name
    | `Const _ | `Lut _ -> (
        let i = Network.signal_id s in
        match Hashtbl.find_opt output_of i with
        | Some name -> name
        | None -> Printf.sprintf "n%d" i)

let of_flow m net flow =
  let name_of = namer net in
  let findings = ref [] in
  let add ?loc code msg = findings := Diagnostic.make ?loc code msg :: !findings in
  let no_care = Bdd.is_zero flow.Careflow.care_any in
  (* A table bit is free when no cared-for input vector both reaches its
     row and observes the node: flipping it can never change a cared-for
     output. *)
  let free info c =
    Bdd.is_zero
      (Bdd.and_ m info.Careflow.code_sets.(c) info.Careflow.observable)
  in
  List.iter
    (fun info ->
      let loc = name_of info.Careflow.signal in
      let nrows = Array.length info.Careflow.code_sets in
      (* SEM001: unreachable table rows (satisfiability don't cares).
         With an empty care space every row is vacuously unreachable;
         reporting that would just restate the degenerate care set. *)
      let sdc_rows =
        List.filter
          (fun c -> Bdd.is_zero info.Careflow.code_sets.(c))
          (List.init nrows Fun.id)
      in
      if sdc_rows <> [] && nrows > 1 && not no_care then
        add ~loc "SEM001"
          (Printf.sprintf
             "table row%s %s unreachable from the primary inputs"
             (if List.length sdc_rows > 1 then "s" else "")
             (rows_blurb sdc_rows nrows));
      (* SEM002: functionally dead (ODC covers the whole care space) *)
      if Bdd.is_zero info.Careflow.observable && not no_care then
        add ~loc "SEM002"
          "complementing this node never changes any cared-for output";
      (* SEM003: constant on the care set (NET008 only sees the table) *)
      if not no_care then begin
        let g = info.Careflow.global in
        if Bdd.equal_on m ~care:flow.Careflow.care_any g (Bdd.zero m) then
          add ~loc "SEM003" "computes constant 0 on the care set"
        else if Bdd.equal_on m ~care:flow.Careflow.care_any g (Bdd.one m) then
          add ~loc "SEM003" "computes constant 1 on the care set"
      end)
    flow.Careflow.nodes;
  (* SEM004: functional duplicates up to fanin permutation/complement.
     Constant-on-care nodes are excluded (SEM003 already owns them).
     Collected, not emitted: a pair that is also an in-place mergeable
     twin (SEM006) must fold into one finding noting both codes. *)
  let pair_key a b =
    let ia = Network.signal_id a.Careflow.signal
    and ib = Network.signal_id b.Careflow.signal in
    (min ia ib, max ia ib)
  in
  let dups = ref [] in
  if not no_care then begin
    let care = flow.Careflow.care_any in
    let interesting =
      List.filter
        (fun info ->
          let g = info.Careflow.global in
          (not (Bdd.equal_on m ~care g (Bdd.zero m)))
          && not (Bdd.equal_on m ~care g (Bdd.one m)))
        flow.Careflow.nodes
    in
    let rec scan = function
      | [] -> ()
      | info :: rest ->
          (match
             List.find_opt
               (fun prev ->
                 Bdd.equal_on m ~care prev.Careflow.global info.Careflow.global
                 || Bdd.equal_on m ~care
                      (Bdd.not_ m prev.Careflow.global)
                      info.Careflow.global)
               (List.filter
                  (fun prev ->
                    Network.signal_id prev.Careflow.signal
                    < Network.signal_id info.Careflow.signal)
                  interesting)
           with
          | Some prev ->
              let complemented =
                not
                  (Bdd.equal_on m ~care prev.Careflow.global
                     info.Careflow.global)
              in
              dups :=
                ( pair_key prev info,
                  name_of info.Careflow.signal,
                  Printf.sprintf
                    "computes the same function as LUT %s on the care set%s"
                    (name_of prev.Careflow.signal)
                    (if complemented then " (complemented)" else "") )
                :: !dups
          | None -> ());
          scan rest
    in
    scan interesting
  end;
  (* SEM006 candidates: mergeable twins — same fanin set, tables
     differing only in free bits that were fixed inconsistently.
     Grouping uses the same canonical form as the structural NET007
     pass.  Every bit is trivially free on an empty care space, so the
     pass needs one.  Also collected before emission, for the same
     SEM004 dedup reason. *)
  let twins = ref [] in
  let groups = Hashtbl.create 16 in
  let group_keys = ref [] in
  if not no_care then
  List.iter
    (fun info ->
      match Network.view net info.Careflow.signal with
      | `Input _ | `Const _ -> ()
      | `Lut (fanins, tt) ->
          let sorted, ctt, remap = Net_check.canonical_lut fanins tt in
          let key =
            String.concat ","
              (Array.to_list
                 (Array.map
                    (fun f -> string_of_int (Network.signal_id f))
                    sorted))
          in
          if not (Hashtbl.mem groups key) then group_keys := key :: !group_keys;
          Hashtbl.add groups key (info, ctt, remap))
    flow.Careflow.nodes;
  List.iter
    (fun key ->
      match List.rev (Hashtbl.find_all groups key) with
      | [] | [ _ ] -> ()
      | members ->
          let rec pairs = function
            | [] -> ()
            | (a, att, ra) :: rest ->
                List.iter
                  (fun (b, btt, rb) ->
                    let nrows = 1 lsl Bv.nvars att in
                    let differing =
                      List.filter
                        (fun c -> Bv.get att c <> Bv.get btt c)
                        (List.init nrows Fun.id)
                    in
                    if
                      differing <> []
                      && List.for_all
                           (fun c -> free a (ra c) || free b (rb c))
                           differing
                    then
                      twins :=
                        ( pair_key a b,
                          name_of b.Careflow.signal,
                          Printf.sprintf
                            "row%s %s differ from LUT %s only in free \
                             don't-care bits; assigning them alike would \
                             merge the LUTs"
                            (if List.length differing > 1 then "s" else "")
                            (rows_blurb differing nrows)
                            (name_of a.Careflow.signal),
                          rows_blurb differing nrows )
                        :: !twins)
                  rest;
                pairs rest
          in
          pairs members)
    (List.rev !group_keys);
  let dups = List.rev !dups and twins = List.rev !twins in
  (* emit SEM004, folding in the SEM006 evidence for the same pair *)
  List.iter
    (fun (key, loc, msg) ->
      match List.find_opt (fun (k, _, _, _) -> k = key) twins with
      | Some (_, _, _, blurb) ->
          add ~loc "SEM004"
            (Printf.sprintf
               "%s; rows %s also differ only in free don't-care bits, so the \
                pair is mergeable in place (SEM006)"
               msg blurb)
      | None -> add ~loc "SEM004" msg)
    dups;
  (* SEM005: identical primary outputs (on the union of their cares) *)
  let rec out_pairs = function
    | [] -> ()
    | (name, g) :: rest ->
        List.iter
          (fun (name', g') ->
            let care =
              Bdd.or_ m
                (List.assoc name flow.Careflow.cares)
                (List.assoc name' flow.Careflow.cares)
            in
            if (not (Bdd.is_zero care)) && Bdd.equal_on m ~care g g' then
              add ~loc:name' "SEM005"
                (Printf.sprintf
                   "provably identical to output %s on the care set" name))
          rest;
        out_pairs rest
  in
  out_pairs flow.Careflow.outputs;
  (* emit the SEM006 findings not folded into a SEM004 above *)
  List.iter
    (fun (key, loc, msg, _) ->
      if not (List.exists (fun (k, _, _) -> k = key) dups) then
        add ~loc "SEM006" msg)
    twins;
  (* SEM008: the analysis was cut short *)
  (match flow.Careflow.truncated with
  | Some reason ->
      add ~loc:"semantics" "SEM008"
        (Printf.sprintf
           "analysis truncated (%s): %d of %d nodes analyzed; findings are \
            partial"
           reason flow.Careflow.analyzed flow.Careflow.total)
  | None -> ());
  List.rev !findings

(* The windowed pass half: findings a window result alone justifies.
   Window leaves are free, so window-unreachable rows are globally
   unreachable; window roots cut every path out, so a window-empty care
   set means a globally dead node; a table constant across the
   window-reachable rows is constant everywhere reachable. *)
let of_windowed net results =
  let name_of = namer net in
  let findings = ref [] in
  let add ?loc code msg = findings := Diagnostic.make ?loc code msg :: !findings in
  List.iter
    (fun r ->
      let loc = name_of r.Complete_dc.signal in
      let k = Bv.nvars r.Complete_dc.care in
      let nrows = 1 lsl k in
      let sdc_rows =
        List.filter
          (fun c -> not (Bv.get r.Complete_dc.reachable c))
          (List.init nrows Fun.id)
      in
      if sdc_rows <> [] && nrows > 1 then
        add ~loc "SEM001"
          (Printf.sprintf
             "table row%s %s unreachable from the primary inputs (window \
              analysis)"
             (if List.length sdc_rows > 1 then "s" else "")
             (rows_blurb sdc_rows nrows));
      if Bv.is_zero r.Complete_dc.care then
        add ~loc "SEM002"
          "complementing this node never changes any cared-for output \
           (window analysis)";
      if nrows > 1 then begin
        match Network.view net r.Complete_dc.signal with
        | `Input _ | `Const _ -> ()
        | `Lut (_, tt) -> (
            let reachable_vals =
              List.filter_map
                (fun c ->
                  if Bv.get r.Complete_dc.reachable c then Some (Bv.get tt c)
                  else None)
                (List.init nrows Fun.id)
            in
            match reachable_vals with
            | [] -> ()
            | v :: rest when List.for_all (fun x -> x = v) rest ->
                add ~loc "SEM003"
                  (Printf.sprintf
                     "computes constant %d on the care set (window analysis)"
                     (if v then 1 else 0))
            | _ -> ())
      end)
    results;
  List.rev !findings

(* The SUP passes: provably-redundant and candidate-redundant fanins,
   straight off the cheap dataflow facts.  Both are mode-independent —
   a SUP001 is justified by the local truth table alone and a SUP002
   by the structural support over-approximation — so the report is
   identical whether or not the facts are also used for screening. *)
let of_dataflow net df =
  let name_of = namer net in
  let findings = ref [] in
  let add ?loc code msg = findings := Diagnostic.make ?loc code msg :: !findings in
  List.iter
    (fun nf ->
      match Network.view net nf.Dataflow.nf_signal with
      | `Input _ | `Const _ -> ()
      | `Lut (fanins, _) ->
          let loc = name_of nf.Dataflow.nf_signal in
          List.iter
            (fun j ->
              add ~loc "SUP001"
                (Printf.sprintf
                   "truth table ignores fanin %s (position %d); dropping it \
                    cannot change the node"
                   (name_of fanins.(j)) j))
            nf.Dataflow.nf_vacuous;
          List.iter
            (fun j ->
              add ~loc "SUP002"
                (Printf.sprintf
                   "fanin %s (position %d) has its input support contained \
                    in the other fanins'; reconvergent — a candidate for \
                    exact redundancy pruning"
                   (name_of fanins.(j)) j))
            nf.Dataflow.nf_contained)
    (Dataflow.facts df);
  List.rev !findings

type coverage = {
  exact_nodes : int;
  windowed_nodes : int;
  truncated_nodes : int;
  total_nodes : int;
  sat_calls : int;
  sat_conflicts : int;
  windows_built : int;
  dataflow_nodes : int;
  df_iterations : int;
  df_facts : int;
  screened_out : int;
  wall_dataflow : float;
  wall_exact : float;
  wall_sat : float;
}

type report = { findings : Diagnostic.t list; coverage : coverage }

(* Can the windowed SAT engine be skipped for this node without losing
   a finding?  Only when the cheap facts prove the window would report
   nothing: every fanin code was witnessed reachable (so window
   reachability, which over-approximates, is total — no SEM001, and
   the table takes both values on reachable rows — no SEM003) and the
   node pointwise drives some output (the flip crosses every root cut,
   so the windowed care set is non-empty — no SEM002). *)
(* An exactly-known observability set: a node that pointwise drives an
   output whose care set is the whole care space has observable =
   care_any, so the exact engine may skip the ODC computation without
   changing any fact derived from it. *)
let full_observable_hint ?care_of_output m net df =
  let care_of name =
    match care_of_output with Some f -> f name | None -> Bdd.one m
  in
  let cares =
    List.map (fun (name, _) -> (name, care_of name)) (Network.outputs net)
  in
  let care_any = Bdd.or_list m (List.map snd cares) in
  fun s ->
    match Dataflow.fact_of df s with
    | None -> false
    | Some nf ->
        List.exists
          (fun o ->
            match List.assoc_opt o cares with
            | Some c -> Bdd.equal c care_any
            | None -> false)
          nf.Dataflow.nf_obs_outputs

let window_screenable net df s =
  match (Dataflow.fact_of df s, Network.view net s) with
  | Some nf, `Lut (fanins, tt) ->
      let k = Array.length fanins in
      k <= Complete_dc.max_code_bits
      && nf.Dataflow.nf_all_codes
      && nf.Dataflow.nf_obs_outputs <> []
      &&
      let zero = ref false and one = ref false in
      for c = 0 to (1 lsl k) - 1 do
        if Bv.get tt c then one := true else zero := true
      done;
      !zero && !one
  | _ -> false

let analyze_report ?care_of_output ?check ?(sat_fallback = true)
    ?(tfi_depth = 4) ?(tfo_depth = 4) ?(sat_max_conflicts = 2000)
    ?(sat_timeout = 20.0) ?(dataflow = true) m ~var_of_input net =
  (* The cheap tier always runs (it is linear and its SUP findings are
     part of the report either way); [dataflow] only decides whether
     its facts are allowed to screen the expensive engines. *)
  let t0 = Mono.now () in
  let df = Dataflow.analyze net in
  let sup = of_dataflow net df in
  let wall_dataflow = Mono.now () -. t0 in
  let full_observable =
    if not dataflow then None
    else Some (full_observable_hint ?care_of_output m net df)
  in
  let t1 = Mono.now () in
  let flow =
    Careflow.analyze ?care_of_output ?check ?full_observable m ~var_of_input
      net
  in
  let base = of_flow m net flow in
  let wall_exact = Mono.now () -. t1 in
  let exact_nodes = flow.Careflow.analyzed in
  let total_nodes = flow.Careflow.total in
  let coverage ~windowed_nodes ~truncated_nodes ~counters ~screened_windows
      ~wall_sat =
    {
      exact_nodes;
      windowed_nodes;
      truncated_nodes;
      total_nodes;
      sat_calls = counters.Complete_dc.sat_calls;
      sat_conflicts = counters.Complete_dc.sat_conflicts;
      windows_built = counters.Complete_dc.windows_built;
      dataflow_nodes = List.length (Dataflow.facts df);
      df_iterations = Dataflow.iterations df;
      df_facts = Dataflow.fact_count df;
      screened_out = flow.Careflow.screened + screened_windows;
      wall_dataflow;
      wall_exact;
      wall_sat;
    }
  in
  match flow.Careflow.truncated with
  | None ->
      {
        findings = sup @ base;
        coverage =
          coverage ~windowed_nodes:0 ~truncated_nodes:0
            ~counters:(Complete_dc.counters ()) ~screened_windows:0
            ~wall_sat:0.0;
      }
  | Some _ when not sat_fallback ->
      {
        findings = sup @ base;
        coverage =
          coverage ~windowed_nodes:0
            ~truncated_nodes:(total_nodes - exact_nodes)
            ~counters:(Complete_dc.counters ()) ~screened_windows:0
            ~wall_sat:0.0;
      }
  | Some reason ->
      (* the windowed fallback replaces the blanket SEM008 with per-node
         coverage; only what escapes both engines stays truncated *)
      let keep = List.filter (fun f -> f.Diagnostic.code <> "SEM008") base in
      let analyzed = Hashtbl.create 64 in
      List.iter
        (fun info ->
          Hashtbl.replace analyzed
            (Network.signal_id info.Careflow.signal)
            ())
        flow.Careflow.nodes;
      let remaining =
        Array.of_list
          (List.filter
             (fun s -> not (Hashtbl.mem analyzed (Network.signal_id s)))
             (Network.lut_signals net))
      in
      let t2 = Mono.now () in
      let ctx = Window.context net in
      (* SAT effort lands where the cheap tier could not decide: order
         the centers by how many reachability/observability questions
         the dataflow facts leave open. *)
      let remaining =
        if not dataflow then remaining
        else
          Window.order_by_density ctx
            ~density:(fun s ->
              match Dataflow.fact_of df s with
              | None -> max_int
              | Some nf ->
                  let k = List.length (Network.fanins net s) in
                  let rows = 1 lsl min k 16 in
                  rows - nf.Dataflow.nf_codes_seen
                  + (if nf.Dataflow.nf_obs_outputs = [] then rows else 0))
            remaining
      in
      let counters = Complete_dc.counters () in
      (* wall time (monotonic), not processor time — see
         [Careflow.limiter] *)
      let deadline = Mono.now () +. sat_timeout in
      let sat_check () =
        if Mono.now () > deadline then
          raise (Careflow.Cutoff "windowed-analysis timeout")
      in
      let results = ref [] in
      let too_wide = ref 0 in
      let processed = ref 0 in
      let screened_windows = ref 0 in
      (try
         Array.iter
           (fun s ->
             (if dataflow && window_screenable net df s then
                (* proven finding-free: covered without a SAT call *)
                incr screened_windows
              else
                match
                  Complete_dc.analyze_node ~tfi_depth ~tfo_depth
                    ~max_conflicts:sat_max_conflicts ~check:sat_check
                    ~counters ctx s
                with
                | Some r -> results := r :: !results
                | None -> incr too_wide);
             incr processed)
           remaining
       with Careflow.Cutoff _ -> ());
      let wall_sat = Mono.now () -. t2 in
      let windowed_nodes = List.length !results + !screened_windows in
      let truncated_nodes =
        Array.length remaining - !processed + !too_wide
      in
      let windowed_findings = of_windowed net (List.rev !results) in
      let trunc_finding =
        if truncated_nodes > 0 then
          [
            Diagnostic.make ~loc:"semantics" "SEM008"
              (Printf.sprintf
                 "analysis truncated (%s): %d of %d nodes analyzed exactly, \
                  %d more via windows, %d escaped both engines; findings are \
                  partial"
                 reason exact_nodes total_nodes windowed_nodes truncated_nodes);
          ]
        else []
      in
      {
        findings = sup @ keep @ windowed_findings @ trunc_finding;
        coverage =
          coverage ~windowed_nodes ~truncated_nodes ~counters
            ~screened_windows:!screened_windows ~wall_sat;
      }

let analyze ?care_of_output ?check m ~var_of_input net =
  of_flow m net (Careflow.analyze ?care_of_output ?check m ~var_of_input net)

let audit ?care_of_output m ~inputs ~golden ~candidate =
  let var_of_input name =
    match List.assoc_opt name inputs with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Semantics.audit: unmapped input %s" name)
  in
  let care_of name =
    match care_of_output with Some f -> f name | None -> Bdd.one m
  in
  let g_out = Network.output_bdds golden m ~var_of_input in
  let c_out = Network.output_bdds candidate m ~var_of_input in
  let findings = ref [] in
  let add ?loc code msg = findings := Diagnostic.make ?loc code msg :: !findings in
  let counterexample diff =
    let assignment = Bdd.any_sat diff in
    String.concat " "
      (List.map
         (fun (name, v) ->
           match List.assoc_opt v assignment with
           | Some true -> name ^ "=1"
           | Some false -> name ^ "=0"
           | None -> name ^ "=-")
         inputs)
  in
  List.iter
    (fun (name, gf) ->
      match List.assoc_opt name c_out with
      | None -> add ~loc:name "SEM007" "output missing from the candidate network"
      | Some cf ->
          let diff = Bdd.and_ m (care_of name) (Bdd.xor m gf cf) in
          if not (Bdd.is_zero diff) then
            add ~loc:name "SEM007"
              (Printf.sprintf
                 "networks disagree inside the care set, e.g. at %s"
                 (counterexample diff)))
    g_out;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name g_out) then
        add ~loc:name "SEM007" "output missing from the golden network")
    c_out;
  List.rev !findings

type sat_audit = {
  audit_findings : Diagnostic.t list;
  outputs_proved : int;
  outputs_refuted : int;
  outputs_unknown : int;
  audit_sat_calls : int;
  audit_sat_conflicts : int;
}

let audit_sat ?(dc_cubes_of_output = fun _ -> []) ?(max_conflicts = 100_000)
    ~golden ~candidate inputs =
  let cnf = Sat.Cnf.create () in
  let env_g = Sat.Encode.of_network cnf golden in
  let env_c = Sat.Encode.of_network cnf candidate in
  let g_in = Sat.Encode.input_vars env_g in
  let c_in = Sat.Encode.input_vars env_c in
  (* the common input space: same-named inputs are the same variable *)
  List.iter
    (fun (name, v) ->
      match List.assoc_opt name c_in with
      | Some v' ->
          Sat.Cnf.add_clause cnf [ Sat.Cnf.neg v; Sat.Cnf.pos v' ];
          Sat.Cnf.add_clause cnf [ Sat.Cnf.pos v; Sat.Cnf.neg v' ]
      | None -> ())
    g_in;
  let var_of_input name =
    match List.assoc_opt name g_in with
    | Some v -> Some v
    | None -> List.assoc_opt name c_in
  in
  let g_out = Sat.Encode.output_vars env_g in
  let c_out = Sat.Encode.output_vars env_c in
  (* one gated miter per common output, built before the solver import *)
  let plan =
    List.map
      (fun (name, gv) ->
        match List.assoc_opt name c_out with
        | None -> (name, None)
        | Some cv ->
            let sel = Sat.Cnf.fresh cnf in
            let x = Sat.Encode.xor_var cnf gv cv in
            Sat.Cnf.add_clause cnf [ Sat.Cnf.neg sel; Sat.Cnf.pos x ];
            (* under this selector, stay outside every don't-care cube *)
            List.iter
              (fun cube ->
                let lits =
                  List.filter_map
                    (fun (i, v) ->
                      Option.map
                        (fun iv -> Sat.Cnf.lit_of_bool iv (not v))
                        (var_of_input i))
                    cube
                in
                Sat.Cnf.add_clause cnf (Sat.Cnf.neg sel :: lits))
              (dc_cubes_of_output name);
            (name, Some sel))
      g_out
  in
  let solver = Sat.Solver.create cnf in
  let conflicts0 = Sat.Solver.conflicts solver in
  let findings = ref [] in
  let add ?loc code msg = findings := Diagnostic.make ?loc code msg :: !findings in
  let proved = ref 0 and refuted = ref 0 and unknown = ref 0 in
  let calls = ref 0 in
  List.iter
    (fun (name, sel) ->
      match sel with
      | None ->
          add ~loc:name "SEM007" "output missing from the candidate network"
      | Some sel -> (
          incr calls;
          match
            Sat.Solver.solve ~assumptions:[ Sat.Cnf.pos sel ] ~max_conflicts
              solver
          with
          | Sat.Solver.Sat ->
              incr refuted;
              let cex =
                String.concat " "
                  (List.map
                     (fun n ->
                       match var_of_input n with
                       | Some v ->
                           n ^ "=" ^ (if Sat.Solver.value solver v then "1" else "0")
                       | None -> n ^ "=-")
                     inputs)
              in
              add ~loc:name "SEM007"
                (Printf.sprintf
                   "networks disagree inside the care set, e.g. at %s" cex)
          | Sat.Solver.Unsat -> incr proved
          | Sat.Solver.Unknown reason ->
              incr unknown;
              add ~loc:name "SEM008"
                (Printf.sprintf
                   "SAT audit ran out of budget (%s); verdict unknown" reason)))
    plan;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name g_out) then
        add ~loc:name "SEM007" "output missing from the golden network")
    c_out;
  {
    audit_findings = List.rev !findings;
    outputs_proved = !proved;
    outputs_refuted = !refuted;
    outputs_unknown = !unknown;
    audit_sat_calls = !calls;
    audit_sat_conflicts = Sat.Solver.conflicts solver - conflicts0;
  }
