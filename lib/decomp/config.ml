type dc_steps = { symmetry : bool; sharing : bool; cms : bool }

type t = {
  lut_size : int;
  objective : Cost.objective;
  dc_steps : dc_steps;
  zero_dc_on_entry : bool;
  seeds : int;
  symmetry_budget : int;
  exact_coloring_limit : int;
}

let mulop_dc =
  {
    lut_size = 5;
    objective = Cost.Area;
    dc_steps = { symmetry = true; sharing = true; cms = true };
    zero_dc_on_entry = false;
    seeds = 4;
    symmetry_budget = 2000;
    exact_coloring_limit = 50_000;
  }

let default = mulop_dc

let mulop_ii =
  {
    mulop_dc with
    dc_steps = { symmetry = false; sharing = false; cms = false };
    zero_dc_on_entry = true;
  }

let with_lut_size lut_size t = { t with lut_size }
let with_objective objective t = { t with objective }

let pp fmt t =
  Format.fprintf fmt "lut=%d sym=%b share=%b cms=%b zero_dc=%b" t.lut_size
    t.dc_steps.symmetry t.dc_steps.sharing t.dc_steps.cms t.zero_dc_on_entry;
  (* area-mode output stays byte-identical to the pre-objective engine *)
  match t.objective with
  | Cost.Area -> ()
  | o -> Format.fprintf fmt " objective=%s" (Cost.objective_name o)
