(** BLIF reader and writer (combinational subset: [.model], [.inputs],
    [.outputs], [.names], [.end], comments and line continuations).
    Latches and subcircuits are rejected with {!Parse_error}. *)

exception Parse_error of int * string
(** Line number and message. *)

val parse : string -> Network.t
(** Parse BLIF text into a network.  Duplicate [.inputs]/[.outputs]
    names, duplicate [.names] blocks for the same signal, and a
    [.names] block redefining an input are all rejected (the silent
    last-wins resolution of some readers hides real netlist bugs).
    @raise Parse_error on malformed input. *)

val parse_file : string -> Network.t

val print : ?model:string -> Network.t -> string
(** Render a network as BLIF ([.names] bodies are path covers of the
    local functions). *)

val write_file : ?model:string -> string -> Network.t -> unit
