lib/logic/bv.mli: Bdd Format
