(* Tests for the decomposition core: compatible classes, encoding,
   single steps, the recursive driver, and CLB merging. *)

let man = Bdd.manager ()
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let gen_fun n =
  let open QCheck2.Gen in
  let+ bits = list_size (return (1 lsl n)) bool in
  let arr = Array.of_list bits in
  Bv.of_fun n (fun i -> arr.(i))

let gen_isf n =
  let open QCheck2.Gen in
  let+ cells = list_size (return (1 lsl n)) (int_range 0 2) in
  let arr = Array.of_list cells in
  let on = Bv.of_fun n (fun i -> arr.(i) = 1) in
  let dc = Bv.of_fun n (fun i -> arr.(i) = 2) in
  Isf.make man ~on:(Bv.to_bdd man on) ~dc:(Bv.to_bdd man dc)

(* Brute-force ncc for a completely specified single-output function:
   distinct rows of the bound-set table. *)
let brute_ncc bv bound_vars total_vars =
  let p = List.length bound_vars in
  let free = List.filter (fun v -> not (List.mem v bound_vars)) (List.init total_vars Fun.id) in
  let rows = Hashtbl.create 16 in
  for bidx = 0 to (1 lsl p) - 1 do
    let row =
      List.init (1 lsl List.length free) (fun fidx ->
          let assignment v =
            match List.find_index (fun w -> w = v) bound_vars with
            | Some k -> (bidx lsr (p - 1 - k)) land 1 = 1
            | None -> (
                match List.find_index (fun w -> w = v) free with
                | Some k -> (fidx lsr k) land 1 = 1
                | None -> false)
          in
          Bv.eval bv assignment)
    in
    Hashtbl.replace rows row ()
  done;
  Hashtbl.length rows

let classes_tests =
  [
    Alcotest.test_case "ncc of an and gate" `Quick (fun () ->
        (* f = x0x1x2x3: bound {0,1}: cofactors {0, x2x3} -> 2 classes *)
        let f =
          Bdd.and_list man [ Bdd.var man 0; Bdd.var man 1; Bdd.var man 2; Bdd.var man 3 ]
        in
        check_int "2 classes" 2 (Classes.ncc_csf man [ f ] [ 0; 1 ]));
    Alcotest.test_case "ncc of parity is 2" `Quick (fun () ->
        let f =
          List.fold_left (fun acc v -> Bdd.xor man acc (Bdd.var man v)) (Bdd.zero man)
            [ 0; 1; 2; 3; 4 ]
        in
        check_int "parity" 2 (Classes.ncc_csf man [ f ] [ 0; 1; 2 ]));
    Alcotest.test_case "totally symmetric function: p+1 classes" `Quick (fun () ->
        (* weight function on bound set of size 3: classes = weights 0..3 *)
        let rec build v ones =
          if v = 6 then if ones >= 3 then Bdd.one man else Bdd.zero man
          else
            Bdd.ite man (Bdd.var man v) (build (v + 1) (ones + 1)) (build (v + 1) ones)
        in
        let f = build 0 0 in
        check_int "4 classes" 4 (Classes.ncc_csf man [ f ] [ 0; 1; 2 ]));
    Alcotest.test_case "multi-output classes refine" `Quick (fun () ->
        let f1 = Bdd.and_ man (Bdd.var man 0) (Bdd.var man 1) in
        let f2 = Bdd.xor man (Bdd.var man 0) (Bdd.var man 1) in
        let joint = Classes.ncc_csf man [ f1; f2 ] [ 0; 1 ] in
        let n1 = Classes.ncc_csf man [ f1 ] [ 0; 1 ] in
        let n2 = Classes.ncc_csf man [ f2 ] [ 0; 1 ] in
        check_bool "joint >= each" true (joint >= n1 && joint >= n2);
        check_int "joint = 3" 3 joint);
    Alcotest.test_case "join_isfs of compatible" `Quick (fun () ->
        let x = Bdd.var man 0 in
        let a = Isf.make man ~on:x ~dc:(Bdd.not_ man x) in
        let b = Isf.make man ~on:(Bdd.zero man) ~dc:x in
        let j = Classes.join_isfs man [ a; b ] in
        check_bool "on = x" true (Bdd.equal (Isf.on j) x);
        check_bool "off = ~x" true (Bdd.equal (Isf.off man j) (Bdd.not_ man x)));
  ]

let classes_props =
  [
    QCheck2.Test.make ~name:"ncc matches brute force" ~count:100 (gen_fun 5)
      (fun bv ->
        let f = Bv.to_bdd man bv in
        Classes.ncc_csf man [ f ] [ 1; 3 ] = brute_ncc bv [ 1; 3 ] 5);
    QCheck2.Test.make ~name:"dedup node count bounds classes" ~count:100
      (gen_isf 5)
      (fun f ->
        let info = Classes.cofactor_matrix man [ f ] [ 0; 2; 4 ] in
        let nodes = Classes.nnodes info in
        nodes >= 1 && nodes <= 8 && Classes.nvertices info = 8);
  ]

let encode_tests =
  [
    Alcotest.test_case "single output, 3 classes -> 2 functions" `Quick
      (fun () ->
        let spec =
          { Encode.class_of_node = [| 0; 1; 2; 1 |]; nclasses = 3 }
        in
        let enc = Encode.encode [| spec |] in
        check_bool "valid" true (Encode.check [| spec |] enc);
        check_int "2 alphas" 2 (List.length (List.hd (Array.to_list enc.Encode.outputs)).Encode.alpha_ids);
        check_int "pool 2" 2 (List.length enc.Encode.pool));
    Alcotest.test_case "identical outputs share all functions" `Quick (fun () ->
        let spec = { Encode.class_of_node = [| 0; 1; 2; 3 |]; nclasses = 4 } in
        let enc = Encode.encode [| spec; spec |] in
        check_bool "valid" true (Encode.check [| spec; spec |] enc);
        check_int "pool = 2 (fully shared)" 2 (List.length enc.Encode.pool));
    Alcotest.test_case "one class needs no function" `Quick (fun () ->
        let spec = { Encode.class_of_node = [| 0; 0; 0 |]; nclasses = 1 } in
        let enc = Encode.encode [| spec |] in
        check_bool "valid" true (Encode.check [| spec |] enc);
        check_int "no alphas" 0 (List.length enc.Encode.pool));
    Alcotest.test_case "refinement sharing" `Quick (fun () ->
        (* Output A has 4 classes {0..3}; output B distinguishes only
           {01} vs {23}: B can reuse A's most significant function. *)
        let a = { Encode.class_of_node = [| 0; 1; 2; 3 |]; nclasses = 4 } in
        let b = { Encode.class_of_node = [| 0; 0; 1; 1 |]; nclasses = 2 } in
        let enc = Encode.encode [| a; b |] in
        check_bool "valid" true (Encode.check [| a; b |] enc);
        check_int "pool 2: b reuses" 2 (List.length enc.Encode.pool));
  ]

let encode_props =
  let gen_specs =
    let open QCheck2.Gen in
    let* nnodes = int_range 1 12 in
    let* nouts = int_range 1 4 in
    let+ raw =
      list_size (return nouts) (list_size (return nnodes) (int_range 0 5))
    in
    List.map
      (fun labels ->
        (* renumber to consecutive class ids *)
        let tbl = Hashtbl.create 8 in
        let class_of_node =
          Array.of_list
            (List.map
               (fun l ->
                 match Hashtbl.find_opt tbl l with
                 | Some c -> c
                 | None ->
                     let c = Hashtbl.length tbl in
                     Hashtbl.add tbl l c;
                     c)
               labels)
        in
        { Encode.class_of_node; nclasses = Hashtbl.length tbl })
      raw
    |> Array.of_list
  in
  [
    QCheck2.Test.make ~name:"encode always valid" ~count:300 gen_specs
      (fun specs ->
        let enc = Encode.encode specs in
        Encode.check specs enc);
    QCheck2.Test.make ~name:"pool size within bounds" ~count:300 gen_specs
      (fun specs ->
        let enc = Encode.encode specs in
        let r oc =
          let rec cl k c = if c >= oc.Encode.nclasses then k else cl (k + 1) (c * 2) in
          cl 0 1
        in
        let rs = Array.to_list (Array.map r specs) in
        let total = List.fold_left ( + ) 0 rs in
        let maxr = List.fold_left max 0 rs in
        let pool = List.length enc.Encode.pool in
        pool >= maxr && pool <= total);
  ]

(* Single decomposition step on random multi-output ISFs: the recomposed
   functions must extend the originals. *)
let step_recompose_prop =
  let cfg = Config.mulop_dc in
  let gen =
    let open QCheck2.Gen in
    let* nouts = int_range 1 3 in
    list_size (return nouts) (gen_isf 5)
  in
  QCheck2.Test.make ~name:"step: g composed with alphas extends f" ~count:100 gen
    (fun isfs ->
      let isfs = Array.of_list isfs in
      let next = ref 5 in
      let fresh_var () =
        let v = !next in
        incr next;
        v
      in
      let bound = [ 0; 1; 2 ] in
      let result = Step.run man cfg ~fresh_var isfs ~bound in
      (* Substitute alphas back into g and compare with the original. *)
      Array.for_all2
        (fun f g ->
          let subst =
            List.map (fun a -> (a.Step.var, a.Step.func)) result.Step.alphas
          in
          let g_on = Bdd.vector_compose man (Isf.on g) subst in
          let g_off = Bdd.vector_compose man (Isf.off man g) subst in
          (* g extends f: on(f) implies on-composed, off(f) implies off-composed *)
          Bdd.is_zero (Bdd.diff man (Isf.on f) g_on)
          && Bdd.is_zero (Bdd.diff man (Isf.off man f) g_off))
        isfs result.Step.g)

let step_tests =
  [
    Alcotest.test_case "step on an adder slice shares alphas" `Quick (fun () ->
        (* two outputs: sum and carry of (x0,x1) ripple into x2, x3:
           s = x0 + x1 + x2 functions... simply check r and sharing on
           f1 = maj(x0,x1,x2), f2 = x0 xor x1 xor x2, bound {0,1} *)
        let x0 = Bdd.var man 0 and x1 = Bdd.var man 1 and x2 = Bdd.var man 2 in
        let maj =
          Bdd.or_list man
            [ Bdd.and_ man x0 x1; Bdd.and_ man x0 x2; Bdd.and_ man x1 x2 ]
        in
        let par = Bdd.xor man (Bdd.xor man x0 x1) x2 in
        let isfs = [| Isf.of_csf man maj; Isf.of_csf man par |] in
        let next = ref 3 in
        let fresh_var () = let v = !next in incr next; v in
        let result = Step.run man Config.mulop_dc ~fresh_var isfs ~bound:[ 0; 1 ] in
        (* maj has classes {0, x2, 1} = 3 -> r=2; parity has 2 -> r=1;
           parity's single alpha (xor) can be one of maj's two. *)
        check_int "r maj" 2 result.Step.r.(0);
        check_int "r par" 1 result.Step.r.(1);
        check_int "3 shared alphas would be unshared; expect 2" 2
          (List.length result.Step.alphas));
    Alcotest.test_case "joint lower bound reported" `Quick (fun () ->
        let f = Bdd.and_ man (Bdd.var man 0) (Bdd.var man 1) in
        let isfs = [| Isf.of_csf man f |] in
        let next = ref 2 in
        let fresh_var () = let v = !next in incr next; v in
        let result = Step.run man Config.mulop_dc ~fresh_var isfs ~bound:[ 0; 1 ] in
        check_int "2 joint classes" 2 result.Step.joint_classes;
        check_int "lower bound 1" 1 (Step.total_alpha_lower_bound result));
  ]

(* Full driver on random functions: network must realize an extension. *)
let driver_props =
  [
    QCheck2.Test.make ~name:"driver: network extends random csf (lut 3)"
      ~count:60
      (QCheck2.Gen.pair (gen_fun 6) (gen_fun 6))
      (fun (b1, b2) ->
        let spec =
          Driver.spec_of_csf man
            (List.init 6 (Printf.sprintf "x%d"))
            [ ("f", Bv.to_bdd man b1); ("g", Bv.to_bdd man b2) ]
        in
        let cfg = Config.with_lut_size 3 Config.mulop_dc in
        let net = Driver.decompose ~cfg man spec in
        Driver.verify man spec net);
    QCheck2.Test.make ~name:"driver: random isf (lut 4), all algorithms"
      ~count:40 (gen_isf 6)
      (fun isf ->
        let spec =
          {
            Driver.input_names = List.init 6 (Printf.sprintf "x%d");
            functions = [ ("f", isf) ];
          }
        in
        List.for_all
          (fun cfg ->
            let cfg = Config.with_lut_size 4 cfg in
            let net = Driver.decompose ~cfg man spec in
            Driver.verify man spec net
            && (Network.stats net).Network.max_fanin <= 4)
          [ Config.mulop_dc; Config.mulop_ii ]);
    QCheck2.Test.make ~name:"mulop-dc never uses more LUTs than budget"
      ~count:30 (gen_fun 6)
      (fun bv ->
        (* sanity: a 6-var function needs at most 3 LUTs of 5 inputs
           (Shannon w.r.t. one variable + mux merge); allow slack *)
        let spec =
          Driver.spec_of_csf man
            (List.init 6 (Printf.sprintf "x%d"))
            [ ("f", Bv.to_bdd man bv) ]
        in
        let net = Driver.decompose man spec in
        (Network.stats net).Network.lut_count <= 4);
  ]

(* Scoring-mode regression: Driver's step-1 symmetry-commit check used
   to call Bound_select.score without ~lut_size, so at gate-level
   configs (lut_size <= 3) it accepted don't-care assignments by the
   class-count-first criterion although the bound set had been selected
   by the reduction-first one.  On this deterministic spec the pre-fix
   driver emits 72 LUTs, the fixed one 71. *)
let scoring_mode_regression =
  Alcotest.test_case "symmetry commit scores at the config's lut size" `Quick
    (fun () ->
      let st = Random.State.make [| 9 |] in
      let m = Bdd.manager () in
      let nvars = 6 in
      let mk_isf () =
        let on = Bdd.random m ~nvars ~density:0.35 st in
        let dc0 = Bdd.random m ~nvars ~density:0.4 st in
        let dc = Bdd.diff m dc0 on in
        Isf.make m ~on ~dc
      in
      let f0 = mk_isf () in
      let f1 = mk_isf () in
      let spec =
        {
          Driver.input_names = List.init nvars (Printf.sprintf "x%d");
          functions = [ ("f0", f0); ("f1", f1) ];
        }
      in
      let cfg = Config.with_lut_size 2 Config.mulop_dc in
      let report = Driver.decompose_report ~cfg m spec in
      let net = Network.sweep report.Driver.network in
      check_bool "verifies" true (Driver.verify m spec net);
      check_bool "gate count (71 post-fix, 72 with the mode mismatch)" true
        ((Network.stats net).Network.lut_count <= 71))

(* The score cache is an invisible optimization: cached and fresh
   scores must agree exactly, in both scoring modes, including repeat
   queries (memo hits) and growing bound sets (incremental cofactor
   extension). *)
let score_cache_props =
  let bound_of_mask mask =
    List.filter (fun v -> (mask lsr v) land 1 = 1) (List.init 6 Fun.id)
  in
  let gen =
    let open QCheck2.Gen in
    let* nouts = int_range 1 3 in
    let* isfs = list_size (return nouts) (gen_isf 6) in
    let* mask1 = int_range 1 62 in
    let+ mask2 = int_range 1 62 in
    (isfs, mask1, mask2)
  in
  [
    QCheck2.Test.make ~name:"cached score equals fresh score" ~count:200 gen
      (fun (isfs, mask1, mask2) ->
        let cache = Score_cache.create ~stats:(Stats.create ()) () in
        (* mask1 lor mask2 is a superset of both: scoring it last goes
           through the incremental extension of a cached vector. *)
        List.for_all
          (fun mask ->
            let bound = bound_of_mask mask in
            List.for_all
              (fun lut_size ->
                let fresh = Bound_select.score ~lut_size man isfs bound in
                let c1 = Bound_select.score ~cache ~lut_size man isfs bound in
                let c2 = Bound_select.score ~cache ~lut_size man isfs bound in
                fresh = c1 && fresh = c2)
              [ 2; 5 ])
          [ mask1; mask2; mask1 lor mask2 ]);
    (* The cross-manager property behind the serve daemon's cache: the
       score key is built from canonical function fingerprints, not
       node ids, so a score computed under one manager must be found —
       and must still be right — when the same functions are rebuilt
       on a completely different manager.  (Keying on node ids, as the
       cache once did, makes this either a spurious miss or a wrong
       hit.) *)
    QCheck2.Test.make ~name:"score cache hits across distinct managers"
      ~count:100
      QCheck2.Gen.(
        pair
          (list_size (int_range 1 3) (list_size (return 64) (int_range 0 2)))
          (int_range 1 62))
      (fun (cellss, mask) ->
        let bound = bound_of_mask mask in
        let build m =
          List.map
            (fun cells ->
              let arr = Array.of_list cells in
              let on = Bv.of_fun 6 (fun i -> arr.(i) = 1) in
              let dc = Bv.of_fun 6 (fun i -> arr.(i) = 2) in
              Isf.make m ~on:(Bv.to_bdd m on) ~dc:(Bv.to_bdd m dc))
            cellss
        in
        let stats = Stats.create () in
        let cache = Score_cache.create ~stats () in
        let m1 = Bdd.manager () in
        let s1 = Bound_select.score ~cache ~lut_size:5 m1 (build m1) bound in
        let hits_before = stats.Stats.score_hits in
        let m2 = Bdd.manager () in
        let isfs2 = build m2 in
        let fresh2 = Bound_select.score ~lut_size:5 m2 isfs2 bound in
        let s2 = Bound_select.score ~cache ~lut_size:5 m2 isfs2 bound in
        s1 = s2 && fresh2 = s2 && stats.Stats.score_hits > hits_before);
    QCheck2.Test.make ~name:"extend_cofactor_vector = cofactor_vector"
      ~count:200
      QCheck2.Gen.(pair (gen_isf 6) (pair (int_range 1 63) (int_range 0 5)))
      (fun (f, (mask, vpos)) ->
        let all = bound_of_mask mask in
        (* remove one variable of the set, then extend back with it *)
        let v = List.nth all (vpos mod List.length all) in
        let vars = List.filter (fun u -> u <> v) all in
        let base = Isf.cofactor_vector man f vars in
        let extended = Isf.extend_cofactor_vector man base vars v in
        let direct = Isf.cofactor_vector man f all in
        Array.length extended = Array.length direct
        && Array.for_all2 Isf.equal extended direct);
  ]

let bits_tests =
  [
    Alcotest.test_case "ceil_log2 boundaries" `Quick (fun () ->
        check_int "1" 0 (Bits.ceil_log2 1);
        check_int "2" 1 (Bits.ceil_log2 2);
        check_int "3" 2 (Bits.ceil_log2 3);
        check_int "4" 2 (Bits.ceil_log2 4);
        check_int "5" 3 (Bits.ceil_log2 5);
        for k = 1 to 1024 do
          let b = Bits.ceil_log2 k in
          check_bool "2^b covers k" true (1 lsl b >= k);
          check_bool "b is minimal" true (b = 0 || 1 lsl (b - 1) < k)
        done);
    Alcotest.test_case "ceil_log2 near max_int terminates" `Quick (fun () ->
        (* pre-fix, doubling the cap past max_int/2 overflowed to a
           negative and the loop never terminated *)
        check_int "2^61" 61 (Bits.ceil_log2 (1 lsl 61));
        check_int "2^61 + 1" 62 (Bits.ceil_log2 ((1 lsl 61) + 1));
        check_int "max_int" 62 (Bits.ceil_log2 max_int));
    Alcotest.test_case "ceil_log2 rejects nonpositive arguments" `Quick
      (fun () ->
        List.iter
          (fun k ->
            match Bits.ceil_log2 k with
            | _ -> Alcotest.fail (Printf.sprintf "expected a raise on %d" k)
            | exception Invalid_argument _ -> ())
          [ 0; -1; min_int ])
  ]

(* Zero-overlap regression: a bound set that intersects no ISF support
   used to score (0, 1) — in joint-first mode (lut_size > 3) that beat
   every genuine candidate, so the greedy search could grow a window of
   vacuous variables and the step made no progress. *)
let bound_select_tests =
  [
    Alcotest.test_case "zero-support-overlap bound sets score worst" `Quick
      (fun () ->
        let x0 = Bdd.var man 0 and x1 = Bdd.var man 1 and x2 = Bdd.var man 2 in
        let isfs =
          [
            Isf.of_csf man (Bdd.and_ man x0 (Bdd.or_ man x1 x2));
            Isf.of_csf man (Bdd.xor man x0 x1);
          ]
        in
        List.iter
          (fun lut_size ->
            let genuine = Bound_select.score ~lut_size man isfs [ 0; 1 ] in
            let vacuous = Bound_select.score ~lut_size man isfs [ 6; 7 ] in
            check_bool
              (Printf.sprintf "genuine beats vacuous at lut size %d" lut_size)
              true (genuine < vacuous))
          [ 2; 3; 4; 5 ]);
    Alcotest.test_case "select never picks a window outside every support"
      `Quick (fun () ->
        let x0 = Bdd.var man 0 and x1 = Bdd.var man 1 in
        let isfs =
          [ Isf.of_csf man (Bdd.and_ man x0 x1);
            Isf.of_csf man (Bdd.xor man x0 x1) ]
        in
        (* four eligible variables the ISFs do not depend on: enough to
           fill a whole lut_size-4 window with vacuous variables *)
        let eligible = [ 0; 1; 8; 9; 10; 11 ] in
        let groups = List.map (fun v -> [ (v, false) ]) eligible in
        let cfg = Config.with_lut_size 4 Config.mulop_dc in
        match Bound_select.select man cfg ~groups ~eligible isfs with
        | None -> Alcotest.fail "expected a bound set"
        | Some bound ->
            check_bool "bound set overlaps a support" true
              (List.exists (fun v -> v = 0 || v = 1) bound))
  ]

let stats_tests =
  [
    Alcotest.test_case "stats counters monotone across a driver run" `Quick
      (fun () ->
        let s = Stats.create () in
        let snapshot () =
          [
            s.Stats.score_calls;
            s.Stats.score_hits;
            s.Stats.cof_lookups;
            s.Stats.cof_hits;
            s.Stats.cof_extends;
            s.Stats.cof_fresh;
            s.Stats.restricts;
            s.Stats.retains;
            s.Stats.evicted;
          ]
        in
        let st = Random.State.make [| 42 |] in
        let m = Bdd.manager () in
        let spec =
          Driver.spec_of_csf m
            (List.init 7 (Printf.sprintf "x%d"))
            [
              ("f", Bdd.random m ~nvars:7 ~density:0.4 st);
              ("g", Bdd.random m ~nvars:7 ~density:0.5 st);
            ]
        in
        let before = snapshot () in
        let net1 = Driver.decompose ~stats:s m spec in
        check_bool "verifies (1)" true (Driver.verify m spec net1);
        let middle = snapshot () in
        let net2 =
          Driver.decompose
            ~cfg:(Config.with_lut_size 3 Config.mulop_dc)
            ~stats:s m spec
        in
        check_bool "verifies (2)" true (Driver.verify m spec net2);
        let after = snapshot () in
        check_bool "counters only grow" true
          (List.for_all2 ( <= ) before middle
          && List.for_all2 ( <= ) middle after);
        check_bool "a real run makes score calls" true (s.Stats.score_calls > 0);
        check_bool "the cache is actually hit" true (s.Stats.score_hits > 0);
        check_bool "hits within calls" true
          (s.Stats.score_hits <= s.Stats.score_calls);
        check_int "cofactor lookups partitioned"
          s.Stats.cof_lookups
          (s.Stats.cof_hits + s.Stats.cof_extends + s.Stats.cof_fresh);
        check_bool "phase buckets recorded" true
          (Hashtbl.length s.Stats.phases > 0);
        (* a run that isn't handed a stats instance must not touch ours *)
        let middle2 = snapshot () in
        let net3 = Driver.decompose m spec in
        check_bool "verifies (3)" true (Driver.verify m spec net3);
        check_bool "unthreaded run leaves foreign stats alone" true
          (snapshot () = middle2))
  ]

let clb_tests =
  [
    Alcotest.test_case "clb merge legality" `Quick (fun () ->
        let net = Network.create () in
        let xs = List.init 8 (fun k -> Network.add_input net (Printf.sprintf "x%d" k)) in
        let arr = Array.of_list xs in
        (* two 4-input LUTs over disjoint inputs: NOT mergeable (8 > 5) *)
        let tt4 = Bv.of_fun 4 (fun i -> i land 1 = 1 || i = 14) in
        let l1 = Network.add_lut net ~fanins:[ arr.(0); arr.(1); arr.(2); arr.(3) ] ~tt:tt4 in
        let l2 = Network.add_lut net ~fanins:[ arr.(4); arr.(5); arr.(6); arr.(7) ] ~tt:tt4 in
        (* two 3-input LUTs sharing an input: mergeable (5 distinct) *)
        let tt3 = Bv.of_fun 3 (fun i -> i = 3 || i = 5) in
        let l3 = Network.add_lut net ~fanins:[ arr.(0); arr.(1); arr.(2) ] ~tt:tt3 in
        let l4 = Network.add_lut net ~fanins:[ arr.(2); arr.(4); arr.(5) ] ~tt:tt3 in
        Network.set_output net "a" l1;
        Network.set_output net "b" l2;
        Network.set_output net "c" l3;
        Network.set_output net "d" l4;
        check_bool "disjoint 4+4 not mergeable" false (Clb.mergeable net l1 l2);
        check_bool "3+3 sharing mergeable" true (Clb.mergeable net l3 l4);
        (* l1+l3 share {x0,x1,x2} (4 distinct) and l2+l4 share {x4,x5}
           (5 distinct): a perfect matching of the four LUTs exists *)
        check_bool "l1+l3 mergeable" true (Clb.mergeable net l1 l3);
        check_bool "l2+l4 mergeable" true (Clb.mergeable net l2 l4);
        let clbs = Clb.clb_count Clb.Max_matching net in
        check_int "4 luts, perfect matching -> 2 clbs" 2 clbs);
    Alcotest.test_case "5-input lut never merges" `Quick (fun () ->
        let net = Network.create () in
        let xs = Array.init 5 (fun k -> Network.add_input net (Printf.sprintf "x%d" k)) in
        let tt5 = Bv.of_fun 5 (fun i -> i mod 3 = 0) in
        let l1 = Network.add_lut net ~fanins:(Array.to_list xs) ~tt:tt5 in
        let tt2 = Bv.of_fun 2 (fun i -> i = 3) in
        let l2 = Network.add_lut net ~fanins:[ xs.(0); xs.(1) ] ~tt:tt2 in
        Network.set_output net "a" l1;
        Network.set_output net "b" l2;
        check_bool "not mergeable" false (Clb.mergeable net l1 l2);
        check_int "2 clbs" 2 (Clb.clb_count Clb.Max_matching net));
    Alcotest.test_case "matching merge never worse than first fit" `Quick
      (fun () ->
        let st = Random.State.make [| 11 |] in
        for _ = 1 to 10 do
          let net = Network.create () in
          let xs =
            Array.init 10 (fun k -> Network.add_input net (Printf.sprintf "x%d" k))
          in
          for o = 0 to 12 do
            let k = 2 + Random.State.int st 3 in
            let fanins =
              List.init k (fun _ -> xs.(Random.State.int st 10))
              |> List.sort_uniq compare
            in
            let arity = List.length fanins in
            let tt =
              Bv.of_fun arity (fun i ->
                  i = 0 || Random.State.bool st)
            in
            Network.set_output net (Printf.sprintf "z%d" o)
              (Network.add_lut net ~fanins ~tt)
          done;
          Alcotest.(check bool)
            "matching <= first fit" true
            (Clb.clb_count Clb.Max_matching net <= Clb.clb_count Clb.First_fit net)
        done);
  ]

let suite =
  classes_tests @ encode_tests @ step_tests
  @ [ scoring_mode_regression ]
  @ bits_tests @ bound_select_tests @ stats_tests @ clb_tests
  @ List.map
      (fun p -> QCheck_alcotest.to_alcotest ~long:false p)
      (classes_props @ encode_props @ score_cache_props
      @ [ step_recompose_prop ] @ driver_props)
