(* The cross-request result cache.

   Keyed on what the request MEANS, not on how it was phrased or which
   manager happened to build it: a Digest over the protocol version,
   the run parameters that can change the outcome, and the canonical
   Merkle fingerprint (Bdd.fingerprint) of every output's (on, dc)
   pair.  Two clients submitting the same circuit as a benchmark name
   and as equivalent BLIF text hit the same entry; per-run BDD node
   ids never enter the key, so hits survive across the per-job
   managers the shared-nothing workers use.

   Byte-capped LRU (stamp-based), Mutex-protected: workers on
   different domains probe and fill it concurrently. *)

type entry = {
  result : Proto.run_result;
  bytes : int;
  mutable stamp : int;  (* larger = more recently used *)
}

type t = {
  max_bytes : int;
  table : (string, entry) Hashtbl.t;
  mutable total_bytes : int;
  mutable tick : int;
  mutex : Mutex.t;
  stats : Stats.t;
}

let create ?(max_bytes = 64 * 1024 * 1024) ~stats () =
  {
    max_bytes;
    table = Hashtbl.create 64;
    total_bytes = 0;
    tick = 0;
    mutex = Mutex.create ();
    stats;
  }

let version = "mfd-serve-1"

let key m spec ~lut_size ~algorithm ~effort ~checks ~verify =
  let buf = Buffer.create 512 in
  let add s =
    Buffer.add_string buf s;
    Buffer.add_char buf '|'
  in
  add version;
  add (string_of_int lut_size);
  add (Mulop.algorithm_name algorithm);
  add
    (match effort with
    | None -> "default"
    | Some e -> Budget.effort_name e);
  add (Diagnostic.level_name checks);
  add (string_of_bool verify);
  List.iter add spec.Driver.input_names;
  Buffer.add_char buf '#';
  List.iter
    (fun (name, isf) ->
      add name;
      add (Bdd.fingerprint m (Isf.on isf));
      add (Bdd.fingerprint m (Isf.dc isf)))
    spec.Driver.functions;
  Digest.string (Buffer.contents buf)

(* A close-enough accounting of an entry's heap footprint: the strings
   dominate (the BLIF body in particular); the fixed fields are a
   small constant. *)
let result_bytes (r : Proto.run_result) =
  String.length r.Proto.job
  + String.length r.Proto.algorithm
  + String.length r.Proto.degraded_to
  + String.length r.Proto.findings
  + String.length r.Proto.blif + 160

let find t k =
  Mutex.lock t.mutex;
  let r =
    match Hashtbl.find_opt t.table k with
    | Some e ->
        t.tick <- t.tick + 1;
        e.stamp <- t.tick;
        t.stats.Stats.result_hits <- t.stats.Stats.result_hits + 1;
        Some e.result
    | None ->
        t.stats.Stats.result_misses <- t.stats.Stats.result_misses + 1;
        None
  in
  Mutex.unlock t.mutex;
  r

let evict_lru t =
  let victim = ref None in
  Hashtbl.iter
    (fun k e ->
      match !victim with
      | Some (_, stamp) when stamp <= e.stamp -> ()
      | _ -> victim := Some (k, e.stamp))
    t.table;
  match !victim with
  | None -> ()
  | Some (k, _) ->
      (match Hashtbl.find_opt t.table k with
      | Some e -> t.total_bytes <- t.total_bytes - e.bytes
      | None -> ());
      Hashtbl.remove t.table k

let add t k result =
  let bytes = result_bytes result in
  Mutex.lock t.mutex;
  (* An entry alone bigger than the whole cap is not cacheable. *)
  if bytes <= t.max_bytes && not (Hashtbl.mem t.table k) then begin
    while t.total_bytes + bytes > t.max_bytes && Hashtbl.length t.table > 0 do
      evict_lru t
    done;
    t.tick <- t.tick + 1;
    Hashtbl.add t.table k { result; bytes; stamp = t.tick };
    t.total_bytes <- t.total_bytes + bytes
  end;
  Mutex.unlock t.mutex

let entries t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.mutex;
  n

let bytes t =
  Mutex.lock t.mutex;
  let n = t.total_bytes in
  Mutex.unlock t.mutex;
  n
