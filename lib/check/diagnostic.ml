type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

type t = {
  code : string;
  severity : severity;
  loc : string option;
  message : string;
}

let catalogue =
  [
    ("NET001", Error, "LUT fanin references a signal outside the network");
    ("NET002", Error, "truth-table arity differs from the fanin count");
    ("NET003", Error, "fanin does not precede its LUT (cycle or order violation)");
    ("NET004", Error, "output is bound to a signal outside the network");
    ("NET005", Error, "LUT fanin count exceeds the configured LUT size");
    ("NET006", Warning, "dead LUT: not reachable from any output (sweep removes it)");
    ("NET007", Warning, "structurally duplicate LUTs (same fanins and table)");
    ("NET008", Info, "degenerate LUT: constant table or single-input buffer");
    ("NET009", Error, "duplicate primary-input name");
    ("NET010", Error, "duplicate primary-output name");
    ("DEC001", Error, "ill-formed ISF: on-set and don't-care set intersect");
    ("DEC002", Error, "don't-care phase result does not refine its input ISF");
    ("DEC003", Error, "committed symmetry group is not actually symmetric");
    ("DEC004", Error, "improper clique cover: incompatible classes merged");
    ("DEC005", Error, "class encoding is not injective on class representatives");
    ("DEC006", Error, "decomposition-function count differs from ceil(log2 ncc)");
    ("DEC007", Error, "committed step is not equivalent to its spec under the care set");
    ("DEC008", Error, "emitted LUT table does not realize its ISF");
    ("PLA001", Warning, "PLA cube asserts an output both on and off");
    ("PLA002", Error, "duplicate signal name in .ilb/.ob");
    ("SEM001", Warning, "unreachable LUT entry: no input vector exercises the table row (SDC)");
    ("SEM002", Warning, "functionally dead node: complementing it never changes a cared-for output (ODC)");
    ("SEM003", Warning, "node is functionally constant on the care set");
    ("SEM004", Warning, "functional duplicate of another LUT up to fanin permutation/complement");
    ("SEM005", Warning, "two primary outputs compute the same function on the care set");
    ("SEM006", Info, "unexploited don't care: free table bits fixed inconsistently with a mergeable twin");
    ("SEM007", Error, "networks differ inside the care set (care-set-aware inequivalence)");
    ("SEM008", Info, "semantic analysis truncated by the resource budget; findings are partial");
    ("SUP001", Warning, "LUT truth table provably ignores a fanin (redundant fanin)");
    ("SUP002", Info, "fanin support contained in the other fanins' (reconvergent; pruning candidate)");
  ]

(* Bump whenever the catalogue gains, loses or reclassifies a code, so
   machine consumers of the JSON report can detect a vocabulary skew.
   1 = the NET/DEC/PLA families, 2 = + the SEM semantic family,
   3 = + the SUP support/redundancy family (dataflow screening tier). *)
let catalogue_version = "3"

let family code =
  let n = String.length code in
  let i = ref 0 in
  while !i < n && not (code.[!i] >= '0' && code.[!i] <= '9') do incr i done;
  String.sub code 0 !i

(* Families in first-appearance catalogue order, codes in catalogue
   order within each — the [--codes] rendering backbone. *)
let families =
  List.rev
    (List.fold_left
       (fun acc ((code, _, _) as entry) ->
         let fam = family code in
         match acc with
         | (f, entries) :: rest when f = fam ->
             (f, entries @ [ entry ]) :: rest
         | _ -> (fam, [ entry ]) :: acc)
       [] catalogue)

let severity_of_code code =
  List.find_map
    (fun (c, s, _) -> if c = code then Some s else None)
    catalogue

let make ?loc code message =
  match severity_of_code code with
  | Some severity -> { code; severity; loc; message }
  | None -> invalid_arg (Printf.sprintf "Diagnostic.make: unknown code %s" code)

let count sev fs = List.length (List.filter (fun f -> f.severity = sev) fs)
let errors fs = List.filter (fun f -> f.severity = Error) fs

let max_severity fs =
  List.fold_left
    (fun acc f ->
      match (acc, f.severity) with
      | Some Error, _ | _, Error -> Some Error
      | Some Warning, _ | _, Warning -> Some Warning
      | _ -> Some Info)
    None fs

let exit_code fs =
  match max_severity fs with
  | Some Error -> 1
  | Some Warning -> 2
  | Some Info | None -> 0

(* Deterministic rendering order: stable sort by (location, code), so
   two runs over the same input byte-compare equal regardless of the
   order in which independent passes fired.  Stability keeps same-key
   findings (e.g. two NET001s on one LUT) in firing order. *)
let normalize fs =
  let key f = ((match f.loc with Some l -> l | None -> ""), f.code) in
  List.stable_sort (fun a b -> compare (key a) (key b)) fs

let pp fmt f =
  Format.fprintf fmt "%s[%s]%s: %s" (severity_name f.severity) f.code
    (match f.loc with Some l -> " " ^ l | None -> "")
    f.message

let pp_list fmt = function
  | [] -> Format.fprintf fmt "clean: no findings"
  | fs ->
      let fs = normalize fs in
      Format.fprintf fmt "@[<v>";
      List.iter (fun f -> Format.fprintf fmt "%a@," pp f) fs;
      Format.fprintf fmt "%d error(s), %d warning(s), %d info@]"
        (count Error fs) (count Warning fs) (count Info fs)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json ?(extra = []) fs =
  let field k v = Printf.sprintf "\"%s\":%s" k v in
  let quote s = Printf.sprintf "\"%s\"" (json_escape s) in
  let one f =
    String.concat ","
      [
        field "code" (quote f.code);
        field "severity" (quote (severity_name f.severity));
        field "loc" (match f.loc with Some l -> quote l | None -> "null");
        field "message" (quote f.message);
      ]
  in
  let body =
    "[" ^ String.concat "," (List.map (fun f -> "{" ^ one f ^ "}") (normalize fs)) ^ "]"
  in
  Printf.sprintf "{\"catalogue\":\"%s\",\"findings\":%s%s}" catalogue_version body
    (String.concat ""
       (List.map (fun (k, v) -> Printf.sprintf ",%s" (field k v)) extra))

type level = Off | Cheap | Full | Deep

let level_name = function
  | Off -> "off"
  | Cheap -> "cheap"
  | Full -> "full"
  | Deep -> "deep"

let level_of_string = function
  | "off" -> Ok Off
  | "cheap" -> Ok Cheap
  | "full" -> Ok Full
  | "deep" -> Ok Deep
  | s -> Error (Printf.sprintf "unknown check level %S (off|cheap|full|deep)" s)

let rank = function Off -> 0 | Cheap -> 1 | Full -> 2 | Deep -> 3
let at_least level threshold = rank level >= rank threshold
