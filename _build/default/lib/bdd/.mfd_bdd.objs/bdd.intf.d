lib/bdd/bdd.mli: Format Random
