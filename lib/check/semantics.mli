(** Semantic lint passes ([SEM*] codes) over the {!Careflow} SDC/ODC
    dataflow, plus the care-set-aware equivalence audit.

    Where the structural [NET*] passes see only the netlist graph,
    these passes see the functions it computes — they measure exactly
    the don't cares the decomposition engine was supposed to exploit:

    - [SEM001]: a LUT table row no input vector can exercise (an
      SDC-masked table bit);
    - [SEM002]: a node whose complementation never changes a cared-for
      output (ODC covers the whole care space — functionally dead);
    - [SEM003]: a node whose global function is constant on the care
      set (a constant the structural [NET008] pass cannot see);
    - [SEM004]: two LUTs computing the same (or complementary) global
      function on the care set — the semantic duplicates the
      structural [NET007] pass misses; when the same pair is also
      mergeable in place, the finding notes the [SEM006] evidence
      instead of a second finding being emitted;
    - [SEM005]: two primary outputs provably identical on the union of
      their care sets;
    - [SEM006]: two LUTs over the same fanins whose tables differ only
      in {e free} bits (rows that are unreachable or unobservable) —
      don't cares left unexploited by fixing the free bits
      inconsistently;
    - [SEM008]: part of the network escaped even the windowed analysis
      (Info).

    [SEM007] (inequivalence inside the care set) is produced by
    {!audit} and {!audit_sat}.

    Three tiers back the passes.  The cheap tier ({!Dataflow}) always
    runs first: linear-time abstract interpretation plus deterministic
    bit-parallel simulation.  It contributes the [SUP*] findings
    directly and — unless screening is disabled — its sound facts let
    the expensive tiers skip work whose answer is already known.  The
    exact engine ({!Careflow}) computes global BDDs and full SDC/ODC
    sets but blows up on big cones; when its budget trips,
    {!analyze_report} falls back to the SAT engine — windowed complete
    don't cares ({!Complete_dc}) for every node the exact engine did
    not reach — and only the nodes {e no} engine covered are reported
    as [SEM008] truncation.

    Screening is a pure observer: because every screen is justified by
    a sound fact (an exactly-known observability set, or a proof the
    window could emit nothing), the findings with screening enabled
    are identical to the findings without it — only the cost differs.

    Precondition as for {!Careflow.analyze}: structurally sound
    networks only. *)

type coverage = {
  exact_nodes : int;  (** LUT nodes with full BDD SDC/ODC information *)
  windowed_nodes : int;
      (** covered by the windowed SAT fallback (including nodes the
          dataflow facts proved finding-free without a SAT call) *)
  truncated_nodes : int;  (** covered by no engine *)
  total_nodes : int;  (** reachable LUT nodes *)
  sat_calls : int;
  sat_conflicts : int;
  windows_built : int;
  dataflow_nodes : int;  (** LUT nodes the cheap tier derived facts for *)
  df_iterations : int;  (** fixpoint-solver node visits, all domains *)
  df_facts : int;  (** facts derived (constants, redundant/contained
                       fanins, observability sets, full code coverage) *)
  screened_out : int;
      (** expensive-engine work units skipped on the strength of a
          dataflow fact: exact ODC computations replaced by the
          known-full observability, plus SAT windows proved
          finding-free.  Always [0] when screening is disabled. *)
  wall_dataflow : float;  (** seconds in the cheap tier (monotonic) *)
  wall_exact : float;  (** seconds in the exact BDD engine *)
  wall_sat : float;  (** seconds in the windowed SAT fallback *)
}

type report = { findings : Diagnostic.t list; coverage : coverage }

val analyze_report :
  ?care_of_output:(string -> Bdd.t) ->
  ?check:(unit -> unit) ->
  ?sat_fallback:bool ->
  ?tfi_depth:int ->
  ?tfo_depth:int ->
  ?sat_max_conflicts:int ->
  ?sat_timeout:float ->
  ?dataflow:bool ->
  Bdd.manager ->
  var_of_input:(string -> int) ->
  Network.t ->
  report
(** Run the cheap dataflow tier, the exact engine, then — when the
    exact engine was truncated and [sat_fallback] (default [true]) —
    the windowed SAT analysis over the remainder.  The fallback sees
    the network but not [care_of_output] (its don't cares are global,
    hence valid on any care set); it emits [SEM001]/[SEM002]/[SEM003]
    findings where the window proves them.  [check] budgets only the
    exact phase (it has typically already tripped when the fallback
    starts); the fallback is budgeted by [sat_max_conflicts] per
    solver call (default 2000), [sat_timeout] wall-clock seconds
    overall (default 20), and window depths [tfi_depth]/[tfo_depth]
    (default 4/4).

    [dataflow] (default [true]) gates only the {e screening} — with it
    off the cheap tier still runs and still emits its [SUP*] findings
    (so reports are comparable across modes), but the exact and SAT
    engines do all their own work and [screened_out] stays [0].  The
    SAT fallback additionally orders its centers by unscreened-fact
    density ({!Window.order_by_density}) when screening is on. *)

val analyze :
  ?care_of_output:(string -> Bdd.t) ->
  ?check:(unit -> unit) ->
  Bdd.manager ->
  var_of_input:(string -> int) ->
  Network.t ->
  Diagnostic.t list
(** [analyze] is {!analyze_report} without the SAT fallback (the
    historical exact-only entry): a truncated run yields a partial
    report plus [SEM008]. *)

val of_flow : Bdd.manager -> Network.t -> Careflow.t -> Diagnostic.t list
(** The pass half of {!analyze}, for callers that run
    {!Careflow.analyze} themselves (the decomposition driver does, so
    it can record the analyzed-node count in its statistics). *)

val full_observable_hint :
  ?care_of_output:(string -> Bdd.t) ->
  Bdd.manager ->
  Network.t ->
  Dataflow.t ->
  Network.signal ->
  bool
(** The screening predicate fed to {!Careflow.analyze}'s
    [full_observable]: [true] only for nodes whose observability set is
    {e exactly} the whole care space (the node pointwise drives an
    output whose care set equals the union of all care sets), so the
    exact engine may skip the ODC computation without changing any
    result.  Exposed so the optimizer can reuse it. *)

val window_screenable : Network.t -> Dataflow.t -> Network.signal -> bool
(** [true] when the dataflow facts prove the windowed SAT analysis of
    this node would report nothing: every fanin code has a concrete
    witness (reachability total), the node pointwise drives an output
    (windowed care non-empty) and the table is non-constant.  Skipping
    such a node loses no finding and no don't care. *)

val of_dataflow : Network.t -> Dataflow.t -> Diagnostic.t list
(** The cheap-tier pass: [SUP001] (a fanin the local truth table
    provably ignores) and [SUP002] (a fanin whose structural input
    support is contained in the union of the other fanins' — a
    reconvergence, hence a candidate for exact redundancy pruning).
    Mode-independent: depends only on the {!Dataflow} facts, never on
    what the expensive engines did. *)

val of_windowed :
  Network.t -> Complete_dc.node_result list -> Diagnostic.t list
(** The windowed pass half: [SEM001] (window-unreachable rows),
    [SEM002] (empty windowed care set) and [SEM003] (constant on the
    reachable codes) findings justified by window results alone.
    Exposed for tests and for callers that window selected nodes
    themselves. *)

val audit :
  ?care_of_output:(string -> Bdd.t) ->
  Bdd.manager ->
  inputs:(string * int) list ->
  golden:Network.t ->
  candidate:Network.t ->
  Diagnostic.t list
(** BDD equivalence of two networks {e modulo the care set}: for every
    output, the two global functions must agree wherever the
    specification cares.  [inputs] maps every input name of either
    network to its BDD variable (the common space).  Findings are
    [SEM007] errors — one per differing output, with a counterexample
    minterm, and one per output present in only one network.  An empty
    result is a proof of equivalence modulo the don't-care set. *)

type sat_audit = {
  audit_findings : Diagnostic.t list;
  outputs_proved : int;
  outputs_refuted : int;
  outputs_unknown : int;  (** solver budget ran out ([SEM008] emitted) *)
  audit_sat_calls : int;
  audit_sat_conflicts : int;
}

val audit_sat :
  ?dc_cubes_of_output:(string -> (string * bool) list list) ->
  ?max_conflicts:int ->
  golden:Network.t ->
  candidate:Network.t ->
  string list ->
  sat_audit
(** The SAT twin of {!audit}: both networks Tseitin-encoded into one
    formula ({!Encode.of_network}), common inputs tied, one gated XOR
    miter per common output, one solver call per output.  A [Sat]
    answer is an inequivalence with the model as counterexample
    minterm; [Unsat] proves the output equal.  [dc_cubes_of_output]
    lists input cubes (partial assignments as [(input, value)] pairs)
    the specification does not care about for that output — excluded
    from the comparison, making the audit care-set-aware like the BDD
    path.  The final argument lists the input names, fixing the
    counterexample rendering order.
    [max_conflicts] (default 100_000) budgets each output's call;
    budget exhaustion yields a per-output [SEM008] (never a wrong
    verdict). *)
