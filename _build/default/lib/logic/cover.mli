(** Two-level cube covers, as found in Espresso PLA and BLIF [.names]
    bodies.  A cube is a string over ['0'], ['1'], ['-'] of length
    [ninputs]; a cover is a list of cubes.  Used by the file-format
    substrate to move functions in and out of BDD form. *)

type literal = L0 | L1 | Ldash

type cube = literal array

val literal_of_char : char -> literal
(** @raise Invalid_argument on characters other than '0', '1', '-'
    (and '2', an Espresso synonym of '-'). *)

val char_of_literal : literal -> char
val cube_of_string : string -> cube
val string_of_cube : cube -> string

val cube_to_bdd : Bdd.manager -> (int -> int) -> cube -> Bdd.t
(** [cube_to_bdd m var_of_column c]: conjunction of the literals of [c],
    column [k] mapped to BDD variable [var_of_column k]. *)

val cover_to_bdd : Bdd.manager -> (int -> int) -> cube list -> Bdd.t
(** Disjunction of the cubes. *)

val bdd_to_cover : Bdd.manager -> int list -> Bdd.t -> cube list
(** Enumerate the paths to 1 as cubes over the given (ascending) variable
    list.  Not minimal, but correct; adequate for writing BLIF. *)

val cube_eval : cube -> (int -> bool) -> bool
