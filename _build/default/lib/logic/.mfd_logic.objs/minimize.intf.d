lib/logic/minimize.mli: Bdd Cover
