lib/graph_algo/ugraph.mli: Random
