(** Variable-order search for shared BDDs.

    The manager of this library keeps a fixed global order (the numeric
    order of variable indices), so reordering is expressed as a
    {e relabeling}: an order is an array [pi] listing variables from the
    top level down, and functions are rebuilt with {!Bdd.rename} so that
    the variable at position [k] of [pi] receives the [k]-th smallest of
    the original indices.  [size_under] evaluates an order by the shared
    node count of the rebuilt functions.

    This is the substrate for the paper's use of {e symmetric sifting}
    [Moller/Molitor/Drechsler; Panda/Somenzi/Plessier]: symmetric
    variables are kept adjacent (they move as blocks), which both
    shrinks ROBDDs and seeds the bound-set search with good candidate
    groups. *)

type order = int array
(** Distinct variables, topmost first.  Must cover the support of every
    function passed alongside it. *)

val identity_of_support : Bdd.manager -> Bdd.t list -> order
(** The variables of the shared support in their current order. *)

val size_under : Bdd.manager -> Bdd.t list -> order -> int
(** Shared node count of the functions rebuilt under the given order. *)

val apply : Bdd.manager -> Bdd.t list -> order -> Bdd.t list
(** Rebuild the functions so that the [k]-th variable of [order] takes
    the [k]-th position of the sorted original support. *)

val sift : ?max_rounds:int -> Bdd.manager -> Bdd.t list -> order -> order
(** Classical sifting on the relabeling: each variable in turn is moved
    through all positions and left where the shared size is minimal;
    repeated until a round brings no improvement (at most
    [max_rounds] rounds, default 2). *)

val sift_symmetric :
  ?max_rounds:int ->
  Bdd.manager ->
  Bdd.t list ->
  groups:int list list ->
  order ->
  order
(** Symmetric sifting: the given variable groups move as contiguous
    blocks (group members are first made adjacent, preserving the
    relative order of everything else). *)
