test/test_bdd.ml: Alcotest Array Bdd Bv List QCheck2 QCheck_alcotest String
