(* The semantic (SDC/ODC) dataflow passes: one hand-built network per
   SEM code, the care-set-aware audit, and the pure-observer property of
   deep-checked decomposition runs. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let tt bits =
  let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
  Bv.of_fun (log2 (String.length bits)) (fun i -> bits.[i] = '1')

let contains msg sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length msg && (String.sub msg i n = sub || go (i + 1))
  in
  go 0

let has ?loc code findings =
  List.exists
    (fun f ->
      f.Diagnostic.code = code
      && match loc with None -> true | Some l -> f.Diagnostic.loc = Some l)
    findings

let analyze ?care_of_output ?check net =
  let m = Bdd.manager () in
  let var_of_input =
    let tbl = Hashtbl.create 8 in
    List.iteri (fun k (name, _) -> Hashtbl.add tbl name k) (Network.inputs net);
    fun name -> Hashtbl.find tbl name
  in
  Semantics.analyze ?care_of_output ?check m ~var_of_input net

(* x -> g = and(x,y) implies the or-LUT over (g, x) can never see
   g=1, x=0: its row 1 is a satisfiability don't care. *)
let sem001_net () =
  let net = Network.create () in
  let x = Network.add_input net "x" and y = Network.add_input net "y" in
  let g = Network.add_lut net ~fanins:[ x; y ] ~tt:(tt "0001") in
  let o = Network.add_lut net ~fanins:[ g; y ] ~tt:(tt "1001") in
  Network.set_output net "o" o;
  net

(* o = xor(n, n) cancels n: complementing n flips both fanins at once,
   so no output ever changes — n is functionally dead. *)
let sem002_net () =
  let net = Network.create () in
  let x = Network.add_input net "x" and y = Network.add_input net "y" in
  let n = Network.add_lut net ~fanins:[ x; y ] ~tt:(tt "0001") in
  let o = Network.add_lut net ~fanins:[ n; n ] ~tt:(tt "0110") in
  Network.set_output net "o" o;
  net

(* z = and(x, not x) by reconvergence: the table is a plain AND, but the
   global function is the constant 0. *)
let sem003_net () =
  let net = Network.create () in
  let x = Network.add_input net "x" in
  let n = Network.not_gate net x in
  let z = Network.add_lut net ~fanins:[ x; n ] ~tt:(tt "0001") in
  Network.set_output net "z" z;
  net

(* and(x,y) built twice with different structure: directly, and as
   nor(not x, not y).  No structural pass can relate them; their global
   functions are equal. *)
let sem004_net () =
  let net = Network.create () in
  let x = Network.add_input net "x" and y = Network.add_input net "y" in
  let d = Network.add_lut net ~fanins:[ x; y ] ~tt:(tt "0001") in
  let nx = Network.not_gate net x and ny = Network.not_gate net y in
  let d' = Network.add_lut net ~fanins:[ nx; ny ] ~tt:(tt "1000") in
  Network.set_output net "o1" d;
  Network.set_output net "o2" d';
  net

(* Two LUTs over the same fanins whose tables differ only at the
   unreachable row (g=1, x=0): the difference lives entirely inside the
   don't cares, so the twins are mergeable. *)
let sem006_net () =
  let net = Network.create () in
  let x = Network.add_input net "x" and y = Network.add_input net "y" in
  let g = Network.add_lut net ~fanins:[ x; y ] ~tt:(tt "0001") in
  let a = Network.add_lut net ~fanins:[ g; x ] ~tt:(tt "1001") in
  let b = Network.add_lut net ~fanins:[ g; x ] ~tt:(tt "1101") in
  Network.set_output net "oa" a;
  Network.set_output net "ob" b;
  net

let sem_tests =
  [
    Alcotest.test_case "SEM001: unreachable LUT row" `Quick (fun () ->
        let fs = analyze (sem001_net ()) in
        check_bool "sem001" true (has ~loc:"o" "SEM001" fs));
    Alcotest.test_case "SEM002: functionally dead node" `Quick (fun () ->
        let fs = analyze (sem002_net ()) in
        check_bool "sem002" true (has "SEM002" fs));
    Alcotest.test_case "SEM003: constant by reconvergence" `Quick (fun () ->
        let fs = analyze (sem003_net ()) in
        check_bool "sem003" true (has ~loc:"z" "SEM003" fs);
        (* the structural pass sees a perfectly ordinary AND table *)
        check_bool "net008 silent" false
          (has "NET008" (Net_check.analyze (sem003_net ()))));
    Alcotest.test_case "SEM004: semantic duplicate" `Quick (fun () ->
        let net = sem004_net () in
        let fs = analyze net in
        check_bool "sem004" true (has ~loc:"o2" "SEM004" fs);
        check_bool "net007 silent" false (has "NET007" (Net_check.analyze net)));
    Alcotest.test_case "SEM005: identical outputs" `Quick (fun () ->
        let fs = analyze (sem004_net ()) in
        check_bool "sem005" true (has ~loc:"o2" "SEM005" fs));
    Alcotest.test_case "SEM006: mergeable twins" `Quick (fun () ->
        let fs = analyze (sem006_net ()) in
        check_bool "sem006" true (has ~loc:"ob" "SEM006" fs));
    Alcotest.test_case "SEM008: budget truncation" `Quick (fun () ->
        let net = sem001_net () in
        let calls = ref 0 in
        let check () =
          incr calls;
          if !calls > 1 then raise (Careflow.Cutoff "test budget")
        in
        let fs = analyze ~check net in
        check_bool "sem008" true (has "SEM008" fs));
    Alcotest.test_case "no care set silences the dataflow" `Quick (fun () ->
        (* With an empty care set nothing is observable and nothing is
           reachable; the passes must not drown the report in findings
           that only reflect the vacuous care space. *)
        let m = Bdd.manager () in
        let net = sem004_net () in
        let var_of_input =
          let tbl = Hashtbl.create 8 in
          List.iteri
            (fun k (name, _) -> Hashtbl.add tbl name k)
            (Network.inputs net);
          fun name -> Hashtbl.find tbl name
        in
        let fs =
          Semantics.analyze
            ~care_of_output:(fun _ -> Bdd.zero m)
            m ~var_of_input net
        in
        check_bool "no sem001" false (has "SEM001" fs);
        check_bool "no sem002" false (has "SEM002" fs);
        check_bool "no sem003" false (has "SEM003" fs);
        check_bool "no sem004" false (has "SEM004" fs);
        check_bool "no sem005" false (has "SEM005" fs);
        check_bool "no sem006" false (has "SEM006" fs));
  ]

(* ---- the care-set-aware audit (SEM007) ---- *)

(* f = x or y versus f = x xor y: they differ exactly at x=y=1. *)
let audit_nets () =
  let golden = Network.create () in
  let x = Network.add_input golden "x" and y = Network.add_input golden "y" in
  Network.set_output golden "f" (Network.or_gate golden x y);
  let candidate = Network.create () in
  let x' = Network.add_input candidate "x"
  and y' = Network.add_input candidate "y" in
  Network.set_output candidate "f" (Network.xor_gate candidate x' y');
  (golden, candidate)

let audit_tests =
  [
    Alcotest.test_case "audit: disagreement is SEM007 with witness" `Quick
      (fun () ->
        let golden, candidate = audit_nets () in
        let m = Bdd.manager () in
        let fs =
          Semantics.audit m
            ~inputs:[ ("x", 0); ("y", 1) ]
            ~golden ~candidate
        in
        check_int "one finding" 1 (List.length fs);
        let f = List.hd fs in
        check_string "code" "SEM007" f.Diagnostic.code;
        check_bool "witness names both inputs" true
          (contains f.Diagnostic.message "x=1"
          && contains f.Diagnostic.message "y=1"));
    Alcotest.test_case "audit: don't cares excuse the disagreement" `Quick
      (fun () ->
        let golden, candidate = audit_nets () in
        let m = Bdd.manager () in
        (* care set = everything except x=y=1 *)
        let care =
          Bdd.not_ m (Bdd.and_ m (Bdd.var m 0) (Bdd.var m 1))
        in
        let fs =
          Semantics.audit
            ~care_of_output:(fun _ -> care)
            m
            ~inputs:[ ("x", 0); ("y", 1) ]
            ~golden ~candidate
        in
        check_int "clean" 0 (List.length fs));
    Alcotest.test_case "audit: missing outputs on either side" `Quick
      (fun () ->
        let golden, _ = audit_nets () in
        let candidate = Network.create () in
        let x = Network.add_input candidate "x"
        and y = Network.add_input candidate "y" in
        Network.set_output candidate "g" (Network.or_gate candidate x y);
        let m = Bdd.manager () in
        let fs =
          Semantics.audit m
            ~inputs:[ ("x", 0); ("y", 1) ]
            ~golden ~candidate
        in
        check_bool "golden's f missing" true (has ~loc:"f" "SEM007" fs);
        check_bool "candidate's g missing" true (has ~loc:"g" "SEM007" fs));
  ]

(* ---- regression: NET007 catches permuted duplicates ---- *)

let net007_tests =
  [
    Alcotest.test_case "NET007: duplicate up to fanin order" `Quick (fun () ->
        let net = Network.create () in
        let x = Network.add_input net "x" and y = Network.add_input net "y" in
        (* x and not y, once as (x, y) and once as (y, x) with the table
           permuted to match: same local function, different structure. *)
        let a = Network.add_lut net ~fanins:[ x; y ] ~tt:(tt "0100") in
        let b = Network.add_lut net ~fanins:[ y; x ] ~tt:(tt "0010") in
        Network.set_output net "oa" a;
        Network.set_output net "ob" b;
        check_bool "flagged" true (has "NET007" (Net_check.analyze net)));
    Alcotest.test_case "NET007: permuted but different stays silent" `Quick
      (fun () ->
        let net = Network.create () in
        let x = Network.add_input net "x" and y = Network.add_input net "y" in
        (* x and not y vs y and not x: same table under the fanin swap,
           but the permutation corrects it to a different function. *)
        let a = Network.add_lut net ~fanins:[ x; y ] ~tt:(tt "0100") in
        let b = Network.add_lut net ~fanins:[ y; x ] ~tt:(tt "0100") in
        Network.set_output net "oa" a;
        Network.set_output net "ob" b;
        check_bool "silent" false (has "NET007" (Net_check.analyze net)));
  ]

(* ---- determinism: rendering is independent of finding order ---- *)

let determinism_tests =
  [
    Alcotest.test_case "renderers are order-independent" `Quick (fun () ->
        let fs =
          [
            Diagnostic.make ~loc:"b" "NET006" "dead";
            Diagnostic.make ~loc:"a" "NET008" "constant";
            Diagnostic.make ~loc:"a" "NET006" "dead";
            Diagnostic.make "NET001" "dangling";
          ]
        in
        let rev = List.rev fs in
        let text l = Format.asprintf "%a" Diagnostic.pp_list l in
        check_string "text" (text fs) (text rev);
        check_string "json" (Diagnostic.to_json fs) (Diagnostic.to_json rev);
        (* normalized order: no-loc first, then by (loc, code) *)
        let codes =
          List.map (fun f -> f.Diagnostic.code) (Diagnostic.normalize fs)
        in
        check_bool "sorted" true
          (codes = [ "NET001"; "NET006"; "NET008"; "NET006" ]));
    Alcotest.test_case "deep lint of a fixed net renders stably" `Quick
      (fun () ->
        let render () =
          Diagnostic.to_json (analyze (sem006_net ()))
        in
        check_string "byte-identical" (render ()) (render ()));
  ]

(* ---- property: deep checks are pure observers ---- *)

let names n = List.init n (fun i -> Printf.sprintf "x%d" i)

let gen_fun n =
  let open QCheck2.Gen in
  let+ bits = list_size (return (1 lsl n)) bool in
  let arr = Array.of_list bits in
  Bv.of_fun n (fun i -> arr.(i))

let props =
  [
    QCheck2.Test.make ~name:"deep checks are pure observers" ~count:25
      QCheck2.Gen.(pair (gen_fun 6) (gen_fun 6))
      (fun (bv1, bv2) ->
        let run checks =
          let m = Bdd.manager () in
          let spec =
            Driver.spec_of_csf m (names 6)
              [ ("f", Bv.to_bdd m bv1); ("g", Bv.to_bdd m bv2) ]
          in
          let r = Driver.decompose_report ~checks m spec in
          let s = Network.stats r.Driver.network in
          (s.Network.lut_count, s.Network.depth, s.Network.max_fanin)
        in
        run Diagnostic.Off = run Diagnostic.Deep);
  ]

let suite =
  sem_tests @ audit_tests @ net007_tests @ determinism_tests
  @ List.map (fun p -> QCheck_alcotest.to_alcotest ~long:false p) props
