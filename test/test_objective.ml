(* The --objective surface: area identity, the delay portfolio's
   never-deeper guarantee, k-parametric CLB merging, the single source
   of truth for the default LUT size — plus the satellites that ride
   with it: wall-clock (not CPU-time) deadlines and the 2^53 integer
   guard of Json.to_int. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let names n = List.init n (Printf.sprintf "x%d")

(* Fast circuits covering single-step and multi-step decompositions;
   the multi-step ones are where delay scoring can act at all. *)
let suite_circuits = [ "rd73"; "z4ml"; "misex1"; "5xp1"; "9sym"; "t481"; "parity12" ]

let load m name =
  match Mcnc.find name with
  | e -> e.Mcnc.build m
  | exception Not_found -> (List.assoc name Extra.catalogue) m

let unit_tests =
  [
    Alcotest.test_case "default lut size has a single source of truth" `Quick
      (fun () ->
        List.iter
          (fun alg ->
            check_int
              (Mulop.algorithm_name alg)
              Config.default.Config.lut_size
              (Mulop.config_of alg).Config.lut_size)
          [ Mulop.Mulop_ii; Mulop.Mulop_dc; Mulop.Mulop_dc_ii ]);
    Alcotest.test_case "area cost is the classical pair" `Quick (fun () ->
        (* The Area triple leads with a constant 0, so its order is
           exactly the pre-objective pair order; and [make Area]
           collapses to the shared [Cost.area] regardless of the
           arrival oracle. *)
        let c = Cost.make Cost.Area ~arrival:(fun v -> 100 + v) in
        Alcotest.(check (triple int int int))
          "triple" (0, 7, 9)
          (Cost.triple c ~bound:[ 1; 2 ] (7, 9));
        let d = Cost.make Cost.Delay ~arrival:(fun v -> v) in
        Alcotest.(check (triple int int int))
          "delay triple leads with step arrival" (4, 7, 9)
          (Cost.triple d ~bound:[ 1; 3 ] (7, 9)));
    Alcotest.test_case "delay never deeper than area (catalogue, k=5)"
      `Quick (fun () ->
        List.iter
          (fun name ->
            let depth_of objective =
              let m = Bdd.manager () in
              let spec = load m name in
              let o = Mulop.run ~objective m Mulop.Mulop_dc spec in
              check_bool
                (Printf.sprintf "%s/%s verified" name
                   (Cost.objective_name objective))
                true
                (Driver.verify m spec o.Mulop.network);
              o.Mulop.depth
            in
            let a = depth_of Cost.Area and d = depth_of Cost.Delay in
            check_bool
              (Printf.sprintf "%s: delay depth %d <= area depth %d" name d a)
              true (d <= a))
          suite_circuits);
    Alcotest.test_case "all objectives clean under --check=full, k=4/5/6"
      `Quick (fun () ->
        List.iter
          (fun lut_size ->
            List.iter
              (fun objective ->
                let m = Bdd.manager () in
                let spec = load m "rd73" in
                let o =
                  Mulop.run ~lut_size ~objective ~checks:Diagnostic.Full m
                    Mulop.Mulop_dc spec
                in
                let where =
                  Printf.sprintf "rd73 k=%d %s" lut_size
                    (Cost.objective_name objective)
                in
                check_bool (where ^ " verified") true
                  (Driver.verify m spec o.Mulop.network);
                check_bool (where ^ " no findings") true
                  (Diagnostic.errors o.Mulop.findings = []);
                check_bool (where ^ " fanin bound") true
                  ((Network.stats o.Mulop.network).Network.max_fanin
                  <= lut_size))
              [ Cost.Area; Cost.Delay; Cost.Balanced ])
          [ 4; 5; 6 ]);
    Alcotest.test_case "clb merge rule is k-parametric" `Quick (fun () ->
        (* Two 3-input LUTs sharing inputs: mergeable at k = 5 (the
           XC3000 4/4/5 rule) and at k = 4 only when they use at most
           4 distinct inputs together. *)
        let net = Network.create () in
        let a = Network.add_input net "a" in
        let b = Network.add_input net "b" in
        let c = Network.add_input net "c" in
        let d = Network.add_input net "d" in
        let e = Network.add_input net "e" in
        (* 3-input parity: depends on every fanin, so the constructor's
           support simplification cannot collapse the LUTs. *)
        let tt3 =
          Bv.of_fun 3 (fun i ->
              (i land 1) lxor ((i lsr 1) land 1) lxor ((i lsr 2) land 1) = 1)
        in
        let u = Network.add_lut net ~fanins:[ a; b; c ] ~tt:tt3 in
        let v = Network.add_lut net ~fanins:[ a; b; d ] ~tt:tt3 in
        let w = Network.add_lut net ~fanins:[ c; d; e ] ~tt:tt3 in
        Network.set_output net "u" u;
        Network.set_output net "v" v;
        Network.set_output net "w" w;
        (* u+v: 4 distinct inputs; u+w: 5 distinct inputs *)
        check_bool "u+v at default (5)" true (Clb.mergeable net u v);
        check_bool "u+w at default (5)" true (Clb.mergeable net u w);
        check_bool "u+v at k=4" true (Clb.mergeable ~lut_size:4 net u v);
        check_bool "u+w at k=4" false (Clb.mergeable ~lut_size:4 net u w);
        (* at k=3 a 3-input LUT already exceeds the k-1 fanin bound *)
        check_bool "u+v at k=3" false (Clb.mergeable ~lut_size:3 net u v));
    Alcotest.test_case "network levels are incremental and match stats"
      `Quick (fun () ->
        let m = Bdd.manager () in
        let spec = load m "5xp1" in
        let net = Driver.decompose m spec in
        check_int "input level" 0
          (Network.level net (List.assoc "x0" (Network.inputs net)));
        let max_out =
          List.fold_left
            (fun acc (_, s) -> max acc (Network.level net s))
            0 (Network.outputs net)
        in
        check_int "max output level = stats depth"
          (Network.stats net).Network.depth max_out);
    Alcotest.test_case "careflow deadline is wall time, not CPU time"
      `Quick (fun () ->
        (* [Unix.sleepf] advances the wall clock while consuming almost
           no processor time, so a CPU-time deadline (the old
           [Sys.time] bug) would NOT fire here and the limiter would
           sail through.  This is the code path behind --sem-timeout. *)
        let m = Bdd.manager () in
        let poll = Careflow.limiter ~timeout:0.05 m () in
        poll ();
        Unix.sleepf 0.2;
        check_bool "deadline fired after sleeping past it" true
          (match poll () with
          | () -> false
          | exception Careflow.Cutoff "deadline" -> true
          | exception Careflow.Cutoff _ -> false));
    Alcotest.test_case "json to_int rejects floats beyond 2^53" `Quick
      (fun () ->
        let exact = 9007199254740992.0 (* 2^53 *) in
        Alcotest.(check (option int))
          "2^53 itself is exact"
          (Some (int_of_float exact))
          (Json.to_int (Json.Num exact));
        Alcotest.(check (option int))
          "beyond 2^53 is rejected" None
          (Json.to_int (Json.Num (exact +. 2.0)));
        Alcotest.(check (option int))
          "negative beyond 2^53 is rejected" None
          (Json.to_int (Json.Num (-.exact -. 2.0)));
        Alcotest.(check (option int))
          "fractional is rejected" None
          (Json.to_int (Json.Num 1.5));
        (* round trip through the printer/parser at a safe magnitude *)
        let n = 1 lsl 52 in
        match Json.parse (Json.to_string (Json.int n)) with
        | Ok j -> Alcotest.(check (option int)) "round trip" (Some n) (Json.to_int j)
        | Error msg -> Alcotest.fail msg);
  ]

let props =
  let gen_fun n =
    let open QCheck2.Gen in
    let+ bits = list_size (return (1 lsl n)) bool in
    let arr = Array.of_list bits in
    Bv.of_fun n (fun i -> arr.(i))
  in
  [
    (* The default objective IS Area, and an explicit Area changes
       nothing: same network, same counts — the byte-identity
       guarantee for existing users. *)
    QCheck2.Test.make ~name:"explicit area objective is the default path"
      ~count:20
      (QCheck2.Gen.pair (gen_fun 5) (gen_fun 5))
      (fun (b1, b2) ->
        let run objective =
          let m = Bdd.manager () in
          let spec =
            Driver.spec_of_csf m (names 5)
              [ ("f", Bv.to_bdd m b1); ("g", Bv.to_bdd m b2) ]
          in
          Mulop.run ?objective m Mulop.Mulop_dc spec
        in
        let d = run None and a = run (Some Cost.Area) in
        d.Mulop.lut_count = a.Mulop.lut_count
        && d.Mulop.clb_count = a.Mulop.clb_count
        && d.Mulop.depth = a.Mulop.depth
        && d.Mulop.step_count = a.Mulop.step_count
        && Network.equivalent d.Mulop.network a.Mulop.network);
    QCheck2.Test.make ~name:"delay portfolio never deeper and always verified"
      ~count:20 (gen_fun 6)
      (fun bv ->
        let m = Bdd.manager () in
        let f = Bv.to_bdd m bv in
        let spec = Driver.spec_of_csf m (names 6) [ ("f", f) ] in
        let a = Mulop.run ~lut_size:4 ~objective:Cost.Area m Mulop.Mulop_dc spec in
        let d = Mulop.run ~lut_size:4 ~objective:Cost.Delay m Mulop.Mulop_dc spec in
        Driver.verify m spec d.Mulop.network
        && d.Mulop.depth <= a.Mulop.depth);
  ]

let suite =
  unit_tests @ List.map (fun p -> QCheck_alcotest.to_alcotest ~long:false p) props
