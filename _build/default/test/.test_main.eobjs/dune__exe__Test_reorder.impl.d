test/test_reorder.ml: Alcotest Array Bdd Bv Fun List Printf QCheck2 QCheck_alcotest Random Reorder
