(** Verified rewrite loop: turn the semantic don't-care analysis from a
    reporter into an optimizer.

    Each pass analyzes the current network (exact {!Careflow} SDC/ODC
    dataflow, with the windowed SAT fallback of [Check.Complete_dc] for
    the nodes the exact engine's budget cannot reach), derives rewrites
    from the facts behind the [SEM*] findings, rebuilds the network and
    {e audits the candidate against the original input} with the
    care-set-aware equivalence audit before accepting it:

    - [SEM003] constants on the care set fold to constant nodes;
    - [SEM002] dead nodes (ODC covers the care space) fold to constants;
    - [SEM004] semantic duplicates alias to one representative (with an
      inverter for complemented pairs);
    - [SEM005] identical outputs are repointed at one driver;
    - [SEM006] mergeable twins get their free table bits refilled alike,
      so structural hashing unifies them;
    - complete don't cares refill table rows to drop redundant fanins
      (the node is re-expressed with its enlarged DC set).

    A candidate that fails the audit is rejected and the pass retried
    with only the composition-safe rewrites (pure satisfiability don't
    cares and exact functional duplicates); if even that fails, the
    loop stops with the last audited network.  The result is therefore
    provably equivalent to the input on the care set — the audit is the
    safety net, not the rewrite derivation. *)

type rule =
  | Fold_constant  (** SEM003: constant on the care set *)
  | Drop_dead  (** SEM002: unobservable on the care set *)
  | Merge_duplicate  (** SEM004: alias to a semantic duplicate *)
  | Merge_outputs  (** SEM005: repoint an output at its twin's driver *)
  | Merge_twins  (** SEM006: refill free bits so twin LUTs unify *)
  | Prune_fanins  (** drop a fanin via complete-DC table refill *)

val rule_name : rule -> string

type action = { rule : rule; node : string; detail : string }
(** One applied rewrite: the node (or output) it targeted, stable-named
    as in the lint reports, and a human-readable description. *)

type outcome = {
  network : Network.t;  (** the optimized network (input when no win) *)
  passes : int;  (** rewrite passes accepted by the audit *)
  reverted : int;  (** candidate rebuilds the audit rejected *)
  actions : action list;  (** accepted rewrites, in pass order *)
  luts_before : int;
  luts_after : int;
  clbs_before : int;
  clbs_after : int;
  audit : Diagnostic.t list;
      (** findings of the final audit against the input network; empty
          means proven equivalent on the care set (always empty by
          construction — a failing candidate is never kept) *)
}

val run :
  ?care_of_output:(string -> Bdd.t) ->
  ?max_passes:int ->
  ?audit_engine:[ `Bdd | `Sat ] ->
  ?analysis_nodes:int ->
  ?analysis_timeout:float ->
  ?dataflow:bool ->
  ?stats:Stats.t ->
  Bdd.manager ->
  Network.t ->
  outcome
(** [run m net] optimizes [net].  [care_of_output] is the
    specification's care set per output (default: care about every
    minterm); rewrites may change output functions outside it.
    [max_passes] bounds the analyze/rewrite/audit iterations (default
    4).  [audit_engine] selects the guard: [`Bdd] (default) is the
    care-set-aware BDD audit, [`Sat] the CDCL miter — stricter (it
    ignores [care_of_output] and demands full equivalence) but immune
    to BDD blow-up.  [analysis_nodes]/[analysis_timeout] budget each
    pass's exact dataflow (defaults 4M BDD nodes / 30 s) before the
    windowed fallback takes over.  [dataflow] (default [true]) lets
    the cheap {!Check.Dataflow} tier screen the expensive engines —
    exactly-known observability sets skip exact ODC computations,
    finding-free windows skip SAT calls, and fanin pruning restricts
    its trials to the tier's redundancy candidates; every screen is
    justified by a sound fact, so no rewrite the engines could justify
    is lost, and the audit guards every candidate either way.  [stats]
    mirrors the analysis coverage, SAT and dataflow-screen counters
    ([sat_calls], [sat_conflicts], [windows_built], [df_iterations],
    [df_facts], [screened_out]) like the decomposition driver does. *)
