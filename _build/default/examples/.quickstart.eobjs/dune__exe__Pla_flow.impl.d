examples/pla_flow.ml: Array Bdd Blif Driver Format Isf List Mulop Network Pla Printf Sys
