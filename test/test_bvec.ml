(* Tests for word-level BDD arithmetic (the specification substrate of
   the arithmetic experiments). *)

let man = Bdd.manager ()
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Evaluate a Bvec under an integer assignment of the input words. *)
let assignment_of ~a_width a b v =
  if v < a_width then (a lsr v) land 1 = 1 else (b lsr (v - a_width)) land 1 = 1

let unit_tests =
  [
    Alcotest.test_case "consti / to_int roundtrip" `Quick (fun () ->
        let v = Bvec.consti man ~width:8 173 in
        check_int "173" 173 (Bvec.to_int v (fun _ -> false)));
    Alcotest.test_case "add with carry out" `Quick (fun () ->
        let x = Bvec.inputs man ~first_var:0 ~width:4 in
        let y = Bvec.inputs man ~first_var:4 ~width:4 in
        let s = Bvec.add man x y in
        check_int "width" 5 (Bvec.width s);
        for a = 0 to 15 do
          for b = 0 to 15 do
            check_int
              (Printf.sprintf "%d+%d" a b)
              (a + b)
              (Bvec.to_int s (assignment_of ~a_width:4 a b))
          done
        done);
    Alcotest.test_case "add_mod wraps" `Quick (fun () ->
        let x = Bvec.inputs man ~first_var:0 ~width:3 in
        let y = Bvec.inputs man ~first_var:3 ~width:3 in
        let s = Bvec.add_mod man x y in
        check_int "6+5 mod 8" 3 (Bvec.to_int s (assignment_of ~a_width:3 6 5)));
    Alcotest.test_case "mul exhaustive 4x4" `Quick (fun () ->
        let x = Bvec.inputs man ~first_var:0 ~width:4 in
        let y = Bvec.inputs man ~first_var:4 ~width:4 in
        let p = Bvec.mul man x y in
        check_int "width" 8 (Bvec.width p);
        for a = 0 to 15 do
          for b = 0 to 15 do
            check_int
              (Printf.sprintf "%d*%d" a b)
              (a * b)
              (Bvec.to_int p (assignment_of ~a_width:4 a b))
          done
        done);
    Alcotest.test_case "mulc" `Quick (fun () ->
        let x = Bvec.inputs man ~first_var:0 ~width:5 in
        let p = Bvec.mulc man x 13 in
        for a = 0 to 31 do
          check_int
            (Printf.sprintf "13*%d" a)
            (13 * a)
            (Bvec.to_int p (fun v -> (a lsr v) land 1 = 1))
        done);
    Alcotest.test_case "popcount" `Quick (fun () ->
        let bits = List.init 7 (Bdd.var man) in
        let w = Bvec.popcount man bits in
        for a = 0 to 127 do
          let expected =
            let rec count v = if v = 0 then 0 else (v land 1) + count (v lsr 1) in
            count a
          in
          check_int
            (Printf.sprintf "weight %d" a)
            expected
            (Bvec.to_int w (fun v -> (a lsr v) land 1 = 1))
        done);
    Alcotest.test_case "ult" `Quick (fun () ->
        let x = Bvec.inputs man ~first_var:0 ~width:3 in
        let y = Bvec.inputs man ~first_var:3 ~width:3 in
        let lt = Bvec.ult man x y in
        for a = 0 to 7 do
          for b = 0 to 7 do
            check_bool
              (Printf.sprintf "%d<%d" a b)
              (a < b)
              (Bdd.eval lt (assignment_of ~a_width:3 a b))
          done
        done);
    Alcotest.test_case "equal_const / mux / extract" `Quick (fun () ->
        let x = Bvec.inputs man ~first_var:0 ~width:4 in
        let eq5 = Bvec.equal_const man x 5 in
        check_bool "5 = 5" true (Bdd.eval eq5 (fun v -> v = 0 || v = 2));
        check_bool "6 <> 5" false (Bdd.eval eq5 (fun v -> v = 1 || v = 2));
        let hi = Bvec.extract x ~lo:2 ~hi:3 in
        check_int "extract of 13 (1101)" 3
          (Bvec.to_int hi (fun v -> v = 0 || v = 2 || v = 3));
        let sel = Bdd.var man 8 in
        let muxed = Bvec.mux man sel x (Bvec.consti man ~width:4 0) in
        check_int "mux sel=0" 0 (Bvec.to_int muxed (fun v -> v < 4));
        check_int "mux sel=1" 15 (Bvec.to_int muxed (fun _ -> true)));
    Alcotest.test_case "sum of three operands" `Quick (fun () ->
        let a = Bvec.inputs man ~first_var:0 ~width:2 in
        let b = Bvec.inputs man ~first_var:2 ~width:2 in
        let c = Bvec.inputs man ~first_var:4 ~width:2 in
        let s = Bvec.sum man ~width:4 [ a; b; c ] in
        for ia = 0 to 3 do
          for ib = 0 to 3 do
            for ic = 0 to 3 do
              let assignment v =
                if v < 2 then (ia lsr v) land 1 = 1
                else if v < 4 then (ib lsr (v - 2)) land 1 = 1
                else (ic lsr (v - 4)) land 1 = 1
              in
              check_int "3-op sum" (ia + ib + ic) (Bvec.to_int s assignment)
            done
          done
        done);
  ]

let props =
  [
    QCheck2.Test.make ~name:"add commutes" ~count:100
      QCheck2.Gen.(pair (int_bound 255) (int_bound 255))
      (fun (a, b) ->
        let x = Bvec.consti man ~width:8 a in
        let y = Bvec.consti man ~width:8 b in
        let s1 = Bvec.add man x y and s2 = Bvec.add man y x in
        Array.for_all2 Bdd.equal s1 s2);
    QCheck2.Test.make ~name:"mulc agrees with mul by constant" ~count:50
      QCheck2.Gen.(int_range 1 15)
      (fun c ->
        let x = Bvec.inputs man ~first_var:0 ~width:4 in
        let via_mulc = Bvec.mulc man x c in
        List.for_all
          (fun a ->
            Bvec.to_int via_mulc (fun v -> (a lsr v) land 1 = 1) = a * c)
          (List.init 16 Fun.id));
  ]

let suite = unit_tests @ List.map (fun p -> QCheck_alcotest.to_alcotest ~long:false p) props
