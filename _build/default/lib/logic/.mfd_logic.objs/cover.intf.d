lib/logic/cover.mli: Bdd
