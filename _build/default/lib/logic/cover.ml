type literal = L0 | L1 | Ldash

type cube = literal array

let literal_of_char = function
  | '0' -> L0
  | '1' -> L1
  | '-' | '2' -> Ldash
  | c -> invalid_arg (Printf.sprintf "Cover.literal_of_char: %C" c)

let char_of_literal = function L0 -> '0' | L1 -> '1' | Ldash -> '-'

let cube_of_string s = Array.init (String.length s) (fun i -> literal_of_char s.[i])

let string_of_cube c = String.init (Array.length c) (fun i -> char_of_literal c.(i))

let cube_to_bdd m var_of_column c =
  let lits = ref [] in
  Array.iteri
    (fun k lit ->
      match lit with
      | L0 -> lits := Bdd.nvar m (var_of_column k) :: !lits
      | L1 -> lits := Bdd.var m (var_of_column k) :: !lits
      | Ldash -> ())
    c;
  Bdd.and_list m !lits

let cover_to_bdd m var_of_column cubes =
  Bdd.or_list m (List.map (cube_to_bdd m var_of_column) cubes)

let bdd_to_cover m vars f =
  let nvars = List.length vars in
  let pos = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.add pos v i) vars;
  let cubes = ref [] in
  let rec go f partial =
    if Bdd.is_zero f then ()
    else if Bdd.is_one f then begin
      let cube = Array.make nvars Ldash in
      List.iter
        (fun (v, b) -> cube.(Hashtbl.find pos v) <- (if b then L1 else L0))
        partial;
      cubes := cube :: !cubes
    end
    else
      match Bdd.view f with
      | `Zero | `One -> assert false
      | `Node (v, lo, hi) ->
          if not (Hashtbl.mem pos v) then
            invalid_arg "Cover.bdd_to_cover: function depends on extra variable";
          go lo ((v, false) :: partial);
          go hi ((v, true) :: partial)
  in
  go f [];
  ignore m;
  List.rev !cubes

let cube_eval c assignment =
  let ok = ref true in
  Array.iteri
    (fun k lit ->
      match lit with
      | L0 -> if assignment k then ok := false
      | L1 -> if not (assignment k) then ok := false
      | Ldash -> ())
    c;
  !ok
