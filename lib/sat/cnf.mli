(** Clause databases in conjunctive normal form.

    The exchange format between the Tseitin encoder ({!Encode}) and the
    CDCL solver ({!Solver}): variables are dense non-negative integers,
    literals pack a variable and a sign into one integer ([2v] is the
    positive literal of variable [v], [2v+1] its negation), clauses are
    literal lists.  A [Cnf.t] is a growable formula; {!Solver.create}
    imports it and further clauses are added to the {e solver} (learned
    and blocking clauses), not here. *)

type var = int
(** A propositional variable, allocated densely from 0 by {!fresh}. *)

type lit = int
(** A literal: variable [l lsr 1], negated iff [l land 1 = 1]. *)

val pos : var -> lit
val neg : var -> lit
val negate : lit -> lit
val var_of : lit -> var
val is_pos : lit -> bool

val lit_of_bool : var -> bool -> lit
(** [lit_of_bool v b] is the literal forcing [v = b]. *)

val pp_lit : Format.formatter -> lit -> unit
(** DIMACS-style rendering ([3] / [-3], counting variables from 1). *)

type t

val create : unit -> t

val fresh : t -> var
(** Allocate the next unused variable. *)

val nvars : t -> int

val add_clause : t -> lit list -> unit
(** Append one clause.  Literals must refer to allocated variables.
    @raise Invalid_argument on an out-of-range literal. *)

val nclauses : t -> int

val iter_clauses : t -> (lit array -> unit) -> unit
(** Visit every clause in insertion order.  The arrays are the stored
    clauses; callers must not mutate them. *)

val pp : Format.formatter -> t -> unit
(** DIMACS rendering (for debugging and golden tests). *)
