open Sat

type counters = {
  mutable sat_calls : int;
  mutable sat_conflicts : int;
  mutable windows_built : int;
}

let counters () = { sat_calls = 0; sat_conflicts = 0; windows_built = 0 }

type node_result = {
  signal : Network.signal;
  fanins : Network.signal array;
  care : Bv.t;
  reachable : Bv.t;
  decided : bool;
}

let max_code_bits = 8

let analyze_node ?(tfi_depth = 4) ?(tfo_depth = 4) ?(max_conflicts = 2000)
    ?(check = fun () -> ()) ~counters ctx signal =
  let net = Window.network ctx in
  let fanins =
    match Network.view net signal with
    | `Lut (fs, _) -> fs
    | `Input _ | `Const _ ->
        invalid_arg "Complete_dc.analyze_node: not a LUT node"
  in
  let k = Array.length fanins in
  if k > max_code_bits then None
  else begin
    let w = Window.build ctx ~center:signal ~tfi_depth ~tfo_depth in
    counters.windows_built <- counters.windows_built + 1;
    let cnf = Cnf.create () in
    let n = max (Network.node_count net) 1 in
    let var_a = Array.make n (-1) in
    (* A-variable of any fanin a window node can mention: an internal
       (allocated by the topological walk below before any fanout asks
       for it), a pinned constant, or a free leaf *)
    let var_of_a s =
      let id = Network.signal_id s in
      if var_a.(id) >= 0 then var_a.(id)
      else begin
        let v = Cnf.fresh cnf in
        (match Network.view net s with
        | `Const b -> Encode.constant cnf v b
        | `Input _ | `Lut _ -> ());
        var_a.(id) <- v;
        v
      end
    in
    Array.iter (fun l -> ignore (var_of_a l)) (Window.leaves w);
    Array.iter
      (fun s ->
        let id = Network.signal_id s in
        let v = Cnf.fresh cnf in
        (match Network.view net s with
        | `Lut (fs, tt) ->
            Encode.lut cnf ~out:v ~fanins:(Array.map var_of_a fs) tt
        | `Input _ | `Const _ -> assert false);
        var_a.(id) <- v)
      (Window.internals w);
    (* copy B: the center's transitive fanout re-encoded with the
       center complemented; fanins outside the TFO read the A copy *)
    let var_b = Array.make n (-1) in
    Array.iter
      (fun s ->
        if Window.in_tfo w s then begin
          let id = Network.signal_id s in
          let v = Cnf.fresh cnf in
          (if Network.signal_equal s signal then
             Encode.equiv_neg cnf var_a.(id) v
           else
             match Network.view net s with
             | `Lut (fs, tt) ->
                 let fv =
                   Array.map
                     (fun f ->
                       let fid = Network.signal_id f in
                       if var_b.(fid) >= 0 then var_b.(fid) else var_of_a f)
                     fs
                 in
                 Encode.lut cnf ~out:v ~fanins:fv tt
             | `Input _ | `Const _ -> assert false);
          var_b.(id) <- v
        end)
      (Window.internals w);
    (* the gated miter: sel -> some root differs between the copies *)
    let sel = Cnf.fresh cnf in
    let xors =
      Array.map
        (fun r ->
          let id = Network.signal_id r in
          Encode.xor_var cnf var_a.(id) var_b.(id))
        (Window.roots w)
    in
    Cnf.add_clause cnf
      (Cnf.neg sel :: Array.to_list (Array.map Cnf.pos xors));
    let fanin_vars = Array.map var_of_a fanins in
    let solver = Solver.create cnf in
    let conflicts0 = Solver.conflicts solver in
    let care = ref (Bv.create k false) in
    let reachable = ref (Bv.create k false) in
    let decided = ref true in
    for c = 0 to (1 lsl k) - 1 do
      check ();
      let base =
        List.init k (fun j ->
            Cnf.lit_of_bool fanin_vars.(j) ((c lsr j) land 1 = 1))
      in
      counters.sat_calls <- counters.sat_calls + 1;
      match
        Solver.solve
          ~assumptions:(Cnf.pos sel :: base)
          ~max_conflicts ~check solver
      with
      | Solver.Sat ->
          care := Bv.set !care c true;
          reachable := Bv.set !reachable c true
      | Solver.Unknown _ ->
          decided := false;
          care := Bv.set !care c true;
          reachable := Bv.set !reachable c true
      | Solver.Unsat -> (
          (* unobservable or unreachable — tell them apart with the
             selector off (the miter clause then satisfied trivially) *)
          counters.sat_calls <- counters.sat_calls + 1;
          match
            Solver.solve
              ~assumptions:(Cnf.neg sel :: base)
              ~max_conflicts ~check solver
          with
          | Solver.Sat -> reachable := Bv.set !reachable c true
          | Solver.Unsat -> ()
          | Solver.Unknown _ ->
              decided := false;
              reachable := Bv.set !reachable c true)
    done;
    counters.sat_conflicts <-
      counters.sat_conflicts + (Solver.conflicts solver - conflicts0);
    Some
      {
        signal;
        fanins;
        care = !care;
        reachable = !reachable;
        decided = !decided;
      }
  end
