type output_classes = { class_of_node : int array; nclasses : int }

type output_encoding = { alpha_ids : int list; code_of_class : int array }

type t = { pool : bool array list; outputs : output_encoding array }

(* An alpha (bit per node) is strict for an output iff it is constant on
   each of the output's classes; the per-class bit is then defined. *)
let class_bits_of_alpha oc alpha =
  let bits = Array.make oc.nclasses (-1) in
  let ok = ref true in
  Array.iteri
    (fun node c ->
      let b = if alpha.(node) then 1 else 0 in
      if bits.(c) < 0 then bits.(c) <- b else if bits.(c) <> b then ok := false)
    oc.class_of_node;
  if !ok then Some bits else None

let encode specs =
  let pool = ref [] in
  let pool_count = ref 0 in
  let add_pool alpha =
    (* reuse an identical vector if present *)
    let rec find idx = function
      | [] -> None
      | existing :: rest -> if existing = alpha then Some idx else find (idx + 1) rest
    in
    match find 0 (List.rev !pool) with
    | Some idx -> idx
    | None ->
        pool := alpha :: !pool;
        incr pool_count;
        !pool_count - 1
  in
  let nnodes =
    Array.fold_left (fun acc oc -> max acc (Array.length oc.class_of_node)) 0 specs
  in
  ignore nnodes;
  let encodings = Array.make (Array.length specs) { alpha_ids = []; code_of_class = [||] } in
  (* Larger outputs first: their fresh functions maximize reuse chances. *)
  let order =
    List.init (Array.length specs) Fun.id
    |> List.sort (fun a b -> compare specs.(b).nclasses specs.(a).nclasses)
  in
  let encode_one i =
    let oc = specs.(i) in
    let k = oc.nclasses in
    let r = Bits.ceil_log2 k in
    if r = 0 then { alpha_ids = []; code_of_class = Array.make k 0 }
    else begin
      (* Greedy reuse of strict pool functions. *)
      let pool_arr = Array.of_list (List.rev !pool) in
      let chosen = ref [] (* (pool idx, class bits), MSB first, reversed *) in
      let block_of_class = Array.make k 0 in
      let max_block () =
        let sizes = Hashtbl.create 16 in
        Array.iter
          (fun b ->
            Hashtbl.replace sizes b (1 + Option.value ~default:0 (Hashtbl.find_opt sizes b)))
          block_of_class;
        Hashtbl.fold (fun _ n acc -> max acc n) sizes 0
      in
      let continue = ref true in
      while !continue && List.length !chosen < r do
        let s = List.length !chosen in
        let best = ref None in
        Array.iteri
          (fun idx alpha ->
            if not (List.exists (fun (j, _) -> j = idx) !chosen) then
              match class_bits_of_alpha oc alpha with
              | None -> ()
              | Some bits ->
                  (* tentative split *)
                  let sizes = Hashtbl.create 16 in
                  Array.iteri
                    (fun c b ->
                      let key = (b, bits.(c)) in
                      Hashtbl.replace sizes key
                        (1 + Option.value ~default:0 (Hashtbl.find_opt sizes key)))
                    block_of_class;
                  let mb = Hashtbl.fold (fun _ n acc -> max acc n) sizes 0 in
                  let nblocks = Hashtbl.length sizes in
                  if Bits.ceil_log2 mb <= r - s - 1 then
                    (* feasible; prefer smallest max block, then most blocks *)
                    let key = (mb, -nblocks) in
                    match !best with
                    | Some (bk, _, _) when bk <= key -> ()
                    | _ -> best := Some (key, idx, bits))
          pool_arr;
        match !best with
        | None -> continue := false
        | Some (_, idx, bits) ->
            chosen := (idx, bits) :: !chosen;
            (* refine blocks *)
            let renum = Hashtbl.create 16 in
            Array.iteri
              (fun c b ->
                let key = (b, bits.(c)) in
                let b' =
                  match Hashtbl.find_opt renum key with
                  | Some b' -> b'
                  | None ->
                      let b' = Hashtbl.length renum in
                      Hashtbl.add renum key b';
                      b'
                in
                block_of_class.(c) <- b')
              block_of_class
      done;
      let chosen = List.rev !chosen (* MSB first *) in
      let s = List.length chosen in
      assert (Bits.ceil_log2 (max_block ()) <= r - s);
      (* Suffixes: enumerate classes within each block. *)
      let next_suffix = Hashtbl.create 16 in
      let suffix = Array.make k 0 in
      for c = 0 to k - 1 do
        let b = block_of_class.(c) in
        let n = Option.value ~default:0 (Hashtbl.find_opt next_suffix b) in
        Hashtbl.replace next_suffix b n;
        suffix.(c) <- n;
        Hashtbl.replace next_suffix b (n + 1)
      done;
      let code_of_class =
        Array.init k (fun c ->
            let top =
              List.fold_left (fun acc (_, bits) -> (acc lsl 1) lor bits.(c)) 0 chosen
            in
            (top lsl (r - s)) lor suffix.(c))
      in
      (* New alphas for the suffix bits, MSB of the suffix first. *)
      let nodes = Array.length oc.class_of_node in
      let new_ids =
        List.init (r - s) (fun t ->
            let bit = r - s - 1 - t in
            let alpha =
              Array.init nodes (fun node ->
                  (suffix.(oc.class_of_node.(node)) lsr bit) land 1 = 1)
            in
            add_pool alpha)
      in
      { alpha_ids = List.map fst chosen @ new_ids; code_of_class }
    end
  in
  List.iter (fun i -> encodings.(i) <- encode_one i) order;
  { pool = List.rev !pool; outputs = encodings }

let check specs t =
  let pool = Array.of_list t.pool in
  let ok = ref true in
  Array.iteri
    (fun i enc ->
      let oc = specs.(i) in
      let r = List.length enc.alpha_ids in
      (* distinct codes *)
      let seen = Hashtbl.create 16 in
      Array.iter
        (fun code ->
          if Hashtbl.mem seen code then ok := false;
          Hashtbl.add seen code ())
        enc.code_of_class;
      (* exactly ceil(log2 K) functions *)
      if r <> Bits.ceil_log2 oc.nclasses then ok := false;
      (* strictness and code consistency: bit (r-1-t) of a class's code
         equals alpha_ids[t]'s value on the class's nodes *)
      List.iteri
        (fun tpos id ->
          match class_bits_of_alpha oc pool.(id) with
          | None -> ok := false
          | Some bits ->
              Array.iteri
                (fun c code ->
                  let bit = (code lsr (r - 1 - tpos)) land 1 in
                  if bit <> bits.(c) then ok := false)
                enc.code_of_class)
        enc.alpha_ids)
    t.outputs;
  !ok
