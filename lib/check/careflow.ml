exception Cutoff of string

type info = {
  signal : Network.signal;
  global : Bdd.t;
  code_sets : Bdd.t array;
  observable : Bdd.t;
}

type t = {
  nodes : info list;
  outputs : (string * Bdd.t) list;
  cares : (string * Bdd.t) list;
  care_any : Bdd.t;
  analyzed : int;
  total : int;
  truncated : string option;
  screened : int;
}

let analyze ?care_of_output ?(check = fun () -> ())
    ?(full_observable = fun _ -> false) m ~var_of_input net =
  let n = Network.node_count net in
  let care_of name =
    match care_of_output with Some f -> f name | None -> Bdd.one m
  in
  let cares =
    List.map (fun (name, _) -> (name, care_of name)) (Network.outputs net)
  in
  let care_any =
    (* No outputs means nothing is observable; that degenerate network
       has no care space either. *)
    Bdd.or_list m (List.map snd cares)
  in
  (* Lift a local table through the fanin globals: build the table's
     function over scratch variables placed above every input variable,
     then substitute the fanin globals simultaneously.  The scratch
     variables cannot occur in the substituted functions, which is
     exactly [Bdd.vector_compose]'s contract. *)
  let scratch_base =
    1
    + List.fold_left
        (fun acc (name, _) -> max acc (var_of_input name))
        (-1) (Network.inputs net)
  in
  let lut_global lookup fanins tt =
    let k = Array.length fanins in
    let scratch = List.init k (fun j -> scratch_base + j) in
    let local = Invariant.function_of_tt m scratch tt in
    Bdd.vector_compose m local
      (List.init k (fun j -> (scratch_base + j, lookup fanins.(j))))
  in
  (* ---- forward pass: global function of every reachable node ---- *)
  let globals = Array.make (max n 1) (Bdd.zero m) in
  let order = ref [] in
  Network.iter_cone net (fun s -> order := s :: !order);
  let order = List.rev !order in
  let total =
    List.length
      (List.filter
         (fun s -> match Network.view net s with `Lut _ -> true | _ -> false)
         order)
  in
  let truncated = ref None in
  let forward_ok =
    try
      List.iter
        (fun s ->
          check ();
          globals.(Network.signal_id s) <-
            (match Network.view net s with
            | `Input name -> Bdd.var m (var_of_input name)
            | `Const b -> if b then Bdd.one m else Bdd.zero m
            | `Lut (fanins, tt) ->
                lut_global (fun f -> globals.(Network.signal_id f)) fanins tt))
        order;
      true
    with Cutoff reason ->
      truncated := Some reason;
      false
  in
  if not forward_ok then
    {
      nodes = [];
      outputs = [];
      cares;
      care_any;
      analyzed = 0;
      total;
      truncated = !truncated;
      screened = 0;
    }
  else begin
    let outputs =
      List.map
        (fun (name, s) -> (name, globals.(Network.signal_id s)))
        (Network.outputs net)
    in
    (* ---- SDC: which local fanin codes are reachable within care ---- *)
    let code_sets fanins =
      let k = Array.length fanins in
      let arr = Array.make (1 lsl k) (Bdd.zero m) in
      let rec go j acc code =
        (* [acc]: care minterms driving fanins [0..j-1] to the bits of
           [code]; an empty prefix kills the whole subtree at once. *)
        if not (Bdd.is_zero acc) then
          if j = k then arr.(code) <- acc
          else begin
            let g = globals.(Network.signal_id fanins.(j)) in
            go (j + 1) (Bdd.diff m acc g) code;
            go (j + 1) (Bdd.and_ m acc g) (code lor (1 lsl j))
          end
      in
      go 0 care_any 0;
      arr
    in
    (* ---- ODC: re-simulate the fanout cone with the node flipped and
       miter every output against its original function.  Flipping a
       node at input vector [x] only changes the evaluation at that
       same [x], so the pointwise difference of the miters is exactly
       the observability set. *)
    let observable_of s =
      let flipped = Array.make n None in
      flipped.(Network.signal_id s) <-
        Some (Bdd.not_ m globals.(Network.signal_id s));
      List.iter
        (fun t ->
          let i = Network.signal_id t in
          if i > Network.signal_id s && flipped.(i) = None then
            match Network.view net t with
            | `Input _ | `Const _ -> ()
            | `Lut (fanins, tt) ->
                if
                  Array.exists
                    (fun f -> flipped.(Network.signal_id f) <> None)
                    fanins
                then begin
                  let g' =
                    lut_global
                      (fun f ->
                        match flipped.(Network.signal_id f) with
                        | Some g -> g
                        | None -> globals.(Network.signal_id f))
                      fanins tt
                  in
                  (* Reconvergence can cancel the flip; stopping the
                     propagation here keeps the cone tight. *)
                  if not (Bdd.equal g' globals.(i)) then
                    flipped.(i) <- Some g'
                end)
        order;
      List.fold_left
        (fun acc (name, so) ->
          match flipped.(Network.signal_id so) with
          | None -> acc
          | Some g' ->
              let care = List.assoc name cares in
              Bdd.or_ m acc
                (Bdd.and_ m care
                   (Bdd.xor m g' globals.(Network.signal_id so))))
        (Bdd.zero m) (Network.outputs net)
    in
    let nodes = ref [] and analyzed = ref 0 and screened = ref 0 in
    (try
       List.iter
         (fun s ->
           match Network.view net s with
           | `Input _ | `Const _ -> ()
           | `Lut (fanins, _) ->
               check ();
               (* The hint must be exact, not approximate: a caller
                  asserting [full_observable s] promises the node's
                  observability set IS the whole care space (e.g. the
                  node pointwise drives a full-care output), so using
                  [care_any] directly changes cost, never results. *)
               let observable =
                 if full_observable s then begin
                   incr screened;
                   care_any
                 end
                 else observable_of s
               in
               let info =
                 {
                   signal = s;
                   global = globals.(Network.signal_id s);
                   code_sets = code_sets fanins;
                   observable;
                 }
               in
               nodes := info :: !nodes;
               incr analyzed)
         order
     with Cutoff reason -> truncated := Some reason);
    {
      nodes = List.rev !nodes;
      outputs;
      cares;
      care_any;
      analyzed = !analyzed;
      total;
      truncated = !truncated;
      screened = !screened;
    }
  end

let global_of t s =
  List.find_map
    (fun info ->
      if Network.signal_equal info.signal s then Some info.global else None)
    t.nodes

let limiter ?max_nodes ?timeout m () =
  let node_limit = Option.map (fun b -> Bdd.node_count m + b) max_nodes in
  (* The deadline is wall time on the monotonic clock, never processor
     time: a CPU-time clock advances at N-times the wall rate under
     worker domains (a --sem-timeout would fire early), and while the
     process blocks it barely advances (the timeout would never fire).
     CI greps lib/ to keep it that way. *)
  let deadline = Option.map (fun secs -> Mono.now () +. secs) timeout in
  fun () ->
    (match node_limit with
    | Some limit when Bdd.node_count m > limit -> raise (Cutoff "node budget")
    | Some _ | None -> ());
    match deadline with
    | Some d when Mono.now () > d -> raise (Cutoff "deadline")
    | Some _ | None -> ()

(* Unlike [limiter], truncation by poll count is independent of BDD
   allocation and wall time, so two runs that differ only in how much
   work each polled step does (e.g. screening on vs. off) truncate at
   the same node — the property the lint-equivalence checks rely on. *)
let step_limiter ~max_steps () =
  let steps = ref 0 in
  fun () ->
    incr steps;
    if !steps > max_steps then raise (Cutoff "step budget")
