examples/quickstart.ml: Array Bdd Blif Bvec Config Driver Format Isf List Mulop Network Symmetry
