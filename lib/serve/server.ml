(* The mfd decomposition daemon.

   One event-loop domain owns every socket: it accepts clients,
   reassembles frames (Frame.reader per client), parses and admits
   requests, and writes responses.  A fixed pool of worker domains
   drains the bounded job queue; each claimed job owns a fresh
   Bdd.manager / Budget.t / Stats.t — the same shared-nothing run
   shape as Decomp.Batch, and indeed the same engine (Batch.run_one on
   the manager that built the spec), which is what makes a served
   result a byte-identical replica of the CLI's.

   Workers never touch sockets: a finished job is pushed onto the
   [completed] queue and the worker pokes the self-pipe, which wakes
   the event loop's select.  A client that disconnected mid-job simply
   no longer resolves in the client table when its result arrives —
   the result is dropped, nothing else is affected.

   Backpressure is explicit: when the job queue is full, the request
   is answered queue-full with a retry hint derived from an EMA of
   recent job times, instead of being buffered without bound. *)

type endpoint = Unix_socket of string | Tcp of string * int

type config = {
  listen : endpoint;
  jobs : int;
  queue_depth : int;
  cache_mb : int;
  max_frame : int;
}

let default_config listen =
  {
    listen;
    jobs = 2;
    queue_depth = 16;
    cache_mb = 64;
    max_frame = 16 * 1024 * 1024;
  }

(* ---- job descriptions and results in flight ---- *)

type pending = { client_id : int; req_id : int; request : Proto.run_request }

type state = {
  config : config;
  queue : pending Bqueue.t;
  completed : (int * Proto.response) Queue.t;  (* client_id, response *)
  completed_mutex : Mutex.t;
  cache : Rcache.t;
  stats : Stats.t;  (* result_hits / result_misses live here *)
  jobs_served : int Atomic.t;
  outstanding : int Atomic.t;  (* admitted, response not yet delivered *)
  ema_mutex : Mutex.t;
  mutable ema_seconds : float;  (* recent job time, for retry_after *)
  pipe_w : Unix.file_descr;  (* worker → event-loop wakeup *)
  started : float;  (* Mono.now at startup *)
  mutable shutting_down : bool;
}

let poke st =
  try ignore (Unix.write st.pipe_w (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error _ -> ()

let push_completed st client_id resp =
  Mutex.lock st.completed_mutex;
  Queue.add (client_id, resp) st.completed;
  Mutex.unlock st.completed_mutex;
  poke st

let drain_completed st =
  Mutex.lock st.completed_mutex;
  let out = Queue.fold (fun acc x -> x :: acc) [] st.completed in
  Queue.clear st.completed;
  Mutex.unlock st.completed_mutex;
  List.rev out

let note_job_time st secs =
  Mutex.lock st.ema_mutex;
  st.ema_seconds <- (0.7 *. st.ema_seconds) +. (0.3 *. secs);
  Mutex.unlock st.ema_mutex

let retry_after st =
  Mutex.lock st.ema_mutex;
  let per_job = st.ema_seconds in
  Mutex.unlock st.ema_mutex;
  let backlog = float_of_int (Bqueue.length st.queue) in
  let lanes = float_of_int (max 1 st.config.jobs) in
  Float.max 0.05 (Float.min 10.0 (per_job *. (backlog +. 1.0) /. lanes))

(* ---- turning a request source into a specification ---- *)

let reject kind fmt = Printf.ksprintf (fun msg -> raise (Batch.Job_rejected (kind, msg))) fmt

let spec_of_source m = function
  | Proto.Blif_text text -> (
      match Blif.parse text with
      | net -> (Randnet.spec_of_network m net, "blif")
      | exception Blif.Parse_error (line, msg) ->
          reject Batch.Parse_error "blif:%d: %s" line msg)
  | Proto.Pla_text text -> (
      match Pla.parse text with
      | pla ->
          let isfs = Pla.to_isfs m ~var_of_column:(fun k -> k) pla in
          ({ Driver.input_names = pla.Pla.input_names; functions = isfs }, "pla")
      | exception Pla.Parse_error (line, msg) ->
          reject Batch.Parse_error "pla:%d: %s" line msg)
  | Proto.Target t -> (
      (* Mirrors the CLI's load_spec resolution order exactly. *)
      try
        if Filename.check_suffix t ".blif" then
          (Randnet.spec_of_network m (Blif.parse_file t), Filename.basename t)
        else if Filename.check_suffix t ".pla" then begin
          let pla = Pla.parse_file t in
          let isfs = Pla.to_isfs m ~var_of_column:(fun k -> k) pla in
          ( { Driver.input_names = pla.Pla.input_names; functions = isfs },
            Filename.basename t )
        end
        else
          match Mcnc.find t with
          | entry -> (entry.Mcnc.build m, entry.Mcnc.name)
          | exception Not_found -> (
              match List.assoc_opt t Extra.catalogue with
              | Some build -> (build m, t)
              | None -> reject Batch.Parse_error "unknown benchmark %S" t)
      with
      | Blif.Parse_error (line, msg) ->
          reject Batch.Parse_error "%s:%d: %s" t line msg
      | Pla.Parse_error (line, msg) ->
          reject Batch.Parse_error "%s:%d: %s" t line msg
      | Sys_error msg -> reject Batch.Parse_error "%s" msg)

(* ---- the worker side ---- *)

let run_result_of_summary ~job ~seconds (s : Batch.summary) =
  {
    Proto.job;
    algorithm = Mulop.algorithm_name s.Batch.algorithm;
    luts = s.Batch.lut_count;
    clbs = s.Batch.clb_count;
    depth = s.Batch.depth;
    steps = s.Batch.step_count;
    shannon = s.Batch.shannon_count;
    alphas = s.Batch.alpha_count;
    degraded_to = Budget.stage_name s.Batch.degraded_to;
    findings = Diagnostic.to_json s.Batch.findings;
    verified = s.Batch.verified;
    blif = Blif.print ~model:job s.Batch.network;
    cached = false;
    seconds;
  }

let process st (p : pending) =
  let r = p.request in
  let t0 = Mono.now () in
  let err code message =
    Proto.Err { id = p.req_id; code; message; retry_after = None }
  in
  let response =
    try
      let m = Bdd.manager () in
      let spec, job = spec_of_source m r.Proto.source in
      (* Budgeted runs degrade with the clock: their outcome is not a
         pure function of the request, so they bypass the cache. *)
      let cacheable = r.Proto.timeout = None && r.Proto.node_budget = None in
      let key =
        if cacheable then
          Some
            (Rcache.key m spec ~lut_size:r.Proto.lut_size
               ~algorithm:r.Proto.algorithm ~effort:r.Proto.effort
               ~checks:r.Proto.checks ~verify:r.Proto.verify)
        else None
      in
      match Option.bind key (Rcache.find st.cache) with
      | Some hit ->
          Proto.Ok_run
            ( p.req_id,
              { hit with Proto.cached = true; seconds = Mono.now () -. t0 } )
      | None -> (
          let stats = Stats.create () in
          match
            Batch.run_one ~lut_size:r.Proto.lut_size ?timeout:r.Proto.timeout
              ?node_budget:r.Proto.node_budget ?effort:r.Proto.effort
              ~checks:r.Proto.checks ~verify:r.Proto.verify ~stats
              r.Proto.algorithm m spec
          with
          | Ok summary ->
              let seconds = Mono.now () -. t0 in
              let result = run_result_of_summary ~job ~seconds summary in
              Option.iter (fun k -> Rcache.add st.cache k result) key;
              note_job_time st seconds;
              Proto.Ok_run (p.req_id, result)
          | Error e ->
              err (Proto.error_code_of_kind e.Batch.kind) e.Batch.message)
    with e ->
      let e = Batch.classify e in
      err (Proto.error_code_of_kind e.Batch.kind) e.Batch.message
  in
  Atomic.incr st.jobs_served;
  response

let worker st () =
  let rec loop () =
    match Bqueue.pop st.queue with
    | None -> ()
    | Some p ->
        let resp = process st p in
        push_completed st p.client_id resp;
        loop ()
  in
  loop ()

(* ---- the event-loop side ---- *)

type client = {
  id : int;
  fd : Unix.file_descr;
  freader : Frame.reader;
  mutable alive : bool;
}

let server_stats st =
  {
    Proto.jobs_served = Atomic.get st.jobs_served;
    result_hits = st.stats.Stats.result_hits;
    result_misses = st.stats.Stats.result_misses;
    cache_entries = Rcache.entries st.cache;
    cache_bytes = Rcache.bytes st.cache;
    queue_depth = Bqueue.length st.queue;
    queue_capacity = Bqueue.capacity st.queue;
    workers = st.config.jobs;
    uptime_seconds = Mono.now () -. st.started;
  }

let send st client resp =
  if client.alive then
    try Frame.write client.fd (Proto.to_string (Proto.response_to_json resp))
    with Unix.Unix_error _ ->
      (* The write path discovering the disconnect: mark dead, the
         loop reaps the fd on the next pass. *)
      client.alive <- false;
      ignore st

let request_id json =
  match Proto.member "id" json with
  | Some (Proto.Num x) when Float.is_integer x -> int_of_float x
  | _ -> 0

let handle_frame st client payload =
  match Proto.parse payload with
  | Error msg ->
      send st client
        (Proto.Err
           { id = 0; code = Proto.Bad_request; message = msg; retry_after = None })
  | Ok json -> (
      match Proto.request_of_json json with
      | Error msg ->
          send st client
            (Proto.Err
               {
                 id = request_id json;
                 code = Proto.Bad_request;
                 message = msg;
                 retry_after = None;
               })
      | Ok { Proto.id; op } -> (
          match op with
          | Proto.Ping -> send st client (Proto.Pong id)
          | Proto.Stats -> send st client (Proto.Ok_stats (id, server_stats st))
          | Proto.Shutdown ->
              send st client (Proto.Bye id);
              if not st.shutting_down then begin
                st.shutting_down <- true;
                (* Queued jobs still drain; workers exit after. *)
                Bqueue.close st.queue
              end
          | Proto.Run request ->
              if st.shutting_down then
                send st client
                  (Proto.Err
                     {
                       id;
                       code = Proto.Shutting_down;
                       message = "server is shutting down";
                       retry_after = None;
                     })
              else if
                Bqueue.try_push st.queue
                  { client_id = client.id; req_id = id; request }
              then Atomic.incr st.outstanding
              else
                send st client
                  (Proto.Err
                     {
                       id;
                       code = Proto.Queue_full;
                       message =
                         Printf.sprintf "job queue full (%d queued)"
                           (Bqueue.length st.queue);
                       retry_after = Some (retry_after st);
                     })))

let listen_socket = function
  | Unix_socket path ->
      (* A previous unclean shutdown leaves the socket file behind;
         binding over it needs the unlink. *)
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let addr =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_loopback
      in
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 64;
      fd

let run ?(on_ready = fun () -> ()) config =
  (* A client that vanished between select and write must not kill the
     daemon with SIGPIPE; the write error is handled per client. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let pipe_r, pipe_w = Unix.pipe ~cloexec:true () in
  let stats = Stats.create () in
  let st =
    {
      config;
      queue = Bqueue.create ~capacity:config.queue_depth;
      completed = Queue.create ();
      completed_mutex = Mutex.create ();
      cache =
        Rcache.create ~max_bytes:(config.cache_mb * 1024 * 1024) ~stats ();
      stats;
      jobs_served = Atomic.make 0;
      outstanding = Atomic.make 0;
      ema_mutex = Mutex.create ();
      ema_seconds = 0.2;
      pipe_w;
      started = Mono.now ();
      shutting_down = false;
    }
  in
  let listen_fd = listen_socket config.listen in
  let workers = List.init config.jobs (fun _ -> Domain.spawn (worker st)) in
  let clients : (int, client) Hashtbl.t = Hashtbl.create 16 in
  let next_client = ref 0 in
  let read_buf = Bytes.create 65536 in
  let drop client =
    client.alive <- false;
    Hashtbl.remove clients client.id;
    try Unix.close client.fd with Unix.Unix_error _ -> ()
  in
  let accept_client () =
    match Unix.accept ~cloexec:true listen_fd with
    | fd, _ ->
        incr next_client;
        let c =
          {
            id = !next_client;
            fd;
            freader = Frame.reader ~max_frame:config.max_frame ();
            alive = true;
          }
        in
        Hashtbl.replace clients c.id c
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
  in
  let service_client client =
    match Unix.read client.fd read_buf 0 (Bytes.length read_buf) with
    | 0 -> drop client
    | n ->
        Frame.feed client.freader read_buf 0 n;
        let rec pump () =
          if client.alive then
            match Frame.next client.freader with
            | `Await -> ()
            | `Oversized len ->
                send st client
                  (Proto.Err
                     {
                       id = 0;
                       code = Proto.Too_large;
                       message =
                         Printf.sprintf "frame of %d bytes exceeds limit %d" len
                           config.max_frame;
                       retry_after = None;
                     });
                pump ()
            | `Frame payload ->
                handle_frame st client payload;
                pump ()
        in
        pump ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
        ()
    | exception Unix.Unix_error (_, _, _) -> drop client
  in
  let deliver_completed () =
    List.iter
      (fun (client_id, resp) ->
        Atomic.decr st.outstanding;
        (* The client may be long gone — mid-job disconnects drop the
           orphaned result here, isolated from everyone else. *)
        match Hashtbl.find_opt clients client_id with
        | Some client ->
            send st client resp;
            if not client.alive then drop client
        | None -> ())
      (drain_completed st)
  in
  on_ready ();
  let rec loop () =
    let fds =
      (if st.shutting_down then [] else [ listen_fd ])
      @ (pipe_r :: Hashtbl.fold (fun _ c acc -> c.fd :: acc) clients [])
    in
    let readable, _, _ =
      try Unix.select fds [] [] 0.5
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    if List.mem pipe_r readable then
      (try ignore (Unix.read pipe_r read_buf 0 (Bytes.length read_buf))
       with Unix.Unix_error _ -> ());
    if (not st.shutting_down) && List.mem listen_fd readable then
      accept_client ();
    List.iter
      (fun fd ->
        if fd <> listen_fd && fd <> pipe_r then
          match
            Hashtbl.fold
              (fun _ c acc -> if c.fd = fd then Some c else acc)
              clients None
          with
          | Some client -> service_client client
          | None -> ())
      readable;
    deliver_completed ();
    if st.shutting_down && Atomic.get st.outstanding = 0 then ()
    else loop ()
  in
  Fun.protect
    ~finally:(fun () ->
      Bqueue.close st.queue;
      List.iter Domain.join workers;
      Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) clients;
      (try Unix.close listen_fd with Unix.Unix_error _ -> ());
      (try Unix.close pipe_r with Unix.Unix_error _ -> ());
      (try Unix.close pipe_w with Unix.Unix_error _ -> ());
      match config.listen with
      | Unix_socket path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
      | Tcp _ -> ())
    loop
