lib/graph_algo/matching.ml: Array Hashtbl List Queue Ugraph
