(** Tseitin encoding of LUT networks into CNF.

    The bridge from {!Network.t} to the solver.  A [k]-input LUT with
    truth table [tt] becomes [2^k] clauses, one per fanin code [c]:
    the clause rules out "fanins spell [c] but the output disagrees
    with [tt(c)]".  This is both directions of the Tseitin
    biconditional at once, so the encoding is {e functional}: in every
    model the LUT variables are determined by the input variables.

    Two entry points: the node-level primitives ({!lut}, {!equiv_neg},
    {!xor_var}, {!constant}) for callers that assemble windows or
    miters themselves (see [Check.Window]), and {!of_network} for
    whole-network encoding (the SAT equivalence audit). *)

val lut : Cnf.t -> out:Cnf.var -> fanins:Cnf.var array -> Bv.t -> unit
(** Constrain [out] to be the LUT of [fanins] under the given truth
    table (fanin [j] = truth-table variable [j], as in {!Network.view}).
    [2^k] clauses of [k+1] literals.
    @raise Invalid_argument when the table arity differs from the
    fanin count. *)

val constant : Cnf.t -> Cnf.var -> bool -> unit
(** Pin a variable with a unit clause. *)

val equiv_neg : Cnf.t -> Cnf.var -> Cnf.var -> unit
(** Constrain two variables to be complements (two binary clauses) —
    how a miter's B-copy center is forced to disagree with the A-copy. *)

val xor_var : Cnf.t -> Cnf.var -> Cnf.var -> Cnf.var
(** A fresh variable constrained to the XOR of the two given ones
    (four ternary clauses): one miter output per window root. *)

(** {1 Whole networks} *)

type env
(** A finished encoding of one network: the CNF variables standing for
    its signals. *)

val of_network : Cnf.t -> Network.t -> env
(** Encode every node reachable from the outputs ({!Network.iter_cone}
    order): inputs become free variables, constants pinned variables,
    LUTs {!lut}-constrained ones.  Multiple networks may share one
    [Cnf.t] (each call allocates fresh variables), which is how the
    equivalence miter is built. *)

val var_of_signal : env -> Network.signal -> Cnf.var
(** @raise Invalid_argument for a signal outside the encoded cone. *)

val input_vars : env -> (string * Cnf.var) list
(** In {!Network.inputs} order. *)

val output_vars : env -> (string * Cnf.var) list
(** In {!Network.outputs} order. *)
