examples/fpga_mapping.mli:
