lib/decomp/bound_select.mli: Bdd Config Isf Symmetry
