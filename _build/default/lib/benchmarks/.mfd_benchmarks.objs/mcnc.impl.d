lib/benchmarks/mcnc.ml: Arith Bdd Driver List Randnet
