(** Deterministic, seeded random cone networks.

    Stand-ins for MCNC/ISCAS circuits whose original netlists are not
    distributed here (see DESIGN.md section 4).  Each output is a
    random cone over a window of the inputs, with sharing of
    intermediate gates between neighbouring cones — mirroring the
    locality of real circuits and keeping per-output supports (and thus
    BDDs) small even for wide circuits like [rot] (135 inputs). *)

val cones :
  ninputs:int ->
  noutputs:int ->
  ?window:int ->
  ?gates_per_output:int ->
  seed:int ->
  unit ->
  Network.t
(** Inputs are named [x0 ..], outputs [z0 ..].  [window] (default 10)
    bounds every cone's input support; [gates_per_output] (default 8)
    controls circuit density.  The same seed always yields the same
    network. *)

val spec_of_network : Bdd.manager -> Network.t -> Driver.spec
(** Turn any gate network into a decomposition spec (inputs in network
    order, outputs as their global BDDs). *)
