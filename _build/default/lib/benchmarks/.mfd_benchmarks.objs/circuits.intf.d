lib/benchmarks/circuits.mli: Network
