lib/decomp/encode.mli:
