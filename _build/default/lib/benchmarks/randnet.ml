module Int_set = Set.Make (Int)

let cones ~ninputs ~noutputs ?(window = 10) ?(gates_per_output = 8) ~seed () =
  let st = Random.State.make [| seed; ninputs; noutputs |] in
  let net = Network.create () in
  let inputs =
    Array.init ninputs (fun k -> Network.add_input net (Printf.sprintf "x%d" k))
  in
  let window = min window ninputs in
  (* Every gate's transitive input support is tracked and hard-bounded,
     so that the output BDDs stay small even when gates are shared
     between neighbouring cones. *)
  let max_support = window + 4 in
  let supports : (int, Int_set.t) Hashtbl.t = Hashtbl.create 64 in
  let support_of s =
    match Network.input_name net s with
    | Some _ -> Int_set.singleton (Network.signal_id s)
    | None -> (
        match Hashtbl.find_opt supports (Network.signal_id s) with
        | Some set -> set
        | None -> Int_set.empty)
  in
  (* Gates of the previous cone, available for sharing. *)
  let prev_cone = ref [] in
  for o = 0 to noutputs - 1 do
    let start =
      if ninputs = window then 0
      else o * (ninputs - window) / max 1 (noutputs - 1)
    in
    let local = ref [] in
    for k = 0 to window - 1 do
      local := inputs.(start + k) :: !local
    done;
    let pick () =
      let from_shared = !prev_cone <> [] && Random.State.float st 1.0 < 0.2 in
      let pool = if from_shared then !prev_cone else !local in
      List.nth pool (Random.State.int st (List.length pool))
    in
    let cone_gates = ref [] in
    let last = ref inputs.(start) in
    for gate_index = 1 to gates_per_output do
      (* Mostly chain on the running value (so the cone keeps depending
         on everything accumulated so far, instead of collapsing to a
         shallow expression), sometimes combine two free picks. *)
      let rec attempt tries =
        let a =
          if gate_index > 1 && Random.State.float st 1.0 < 0.7 then !last
          else pick ()
        in
        let b = pick () in
        let s = Int_set.union (support_of a) (support_of b) in
        if Int_set.cardinal s > max_support && tries > 0 then attempt (tries - 1)
        else if Int_set.cardinal s > max_support then
          (* fall back: chain with a window input, support stays bounded *)
          let b = inputs.(start + (gate_index mod window)) in
          let a = !last in
          (a, b, Int_set.union (support_of a) (support_of b))
        else (a, b, s)
      in
      let a, b, s = attempt 4 in
      (* Nondegenerate table; bias towards xor/xnor occasionally so the
         functions do not collapse under absorption. *)
      let mask =
        if Random.State.int st 4 = 0 then if Random.State.bool st then 6 else 9
        else 1 + Random.State.int st 14
      in
      let tt = Bv.of_fun 2 (fun i -> (mask lsr i) land 1 = 1) in
      let g = Network.add_lut net ~fanins:[ a; b ] ~tt in
      Hashtbl.replace supports (Network.signal_id g) s;
      local := g :: !local;
      cone_gates := g :: !cone_gates;
      last := g
    done;
    prev_cone := !cone_gates;
    Network.set_output net (Printf.sprintf "z%d" o) !last
  done;
  net

let spec_of_network m net =
  let input_names = List.map fst (Network.inputs net) in
  let var_of =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun k n -> Hashtbl.add tbl n k) input_names;
    fun n -> Hashtbl.find tbl n
  in
  let outputs = Network.output_bdds net m ~var_of_input:var_of in
  Driver.spec_of_csf m input_names outputs
