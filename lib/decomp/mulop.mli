(** Top-level algorithms of the paper's experiments. *)

type algorithm =
  | Mulop_ii  (** baseline: no don't-care exploitation (all DCs := 0) *)
  | Mulop_dc  (** 3-step don't-care assignment, first-fit CLB merge *)
  | Mulop_dc_ii  (** as [Mulop_dc] with maximum-matching CLB merge *)

type outcome = {
  algorithm : algorithm;
  network : Network.t;
  lut_count : int;
  clb_count : int;
  depth : int;
  step_count : int;
  shannon_count : int;
  alpha_count : int;
  degraded_to : Budget.stage;
      (** [Budget.Full] unless the run's budget forced a degradation *)
  findings : Diagnostic.t list;
      (** assertion-layer findings ({!Driver.decompose_report});
          always empty with [checks = Off] *)
}

val algorithm_name : algorithm -> string

val config_of :
  ?lut_size:int -> ?objective:Cost.objective -> algorithm -> Config.t
(** [lut_size] defaults to [Config.default.lut_size] (a single source of
    truth — no duplicated literal to drift); [objective] defaults to
    {!Cost.Area}. *)

val run :
  ?lut_size:int ->
  ?objective:Cost.objective ->
  ?budget:Budget.t ->
  ?checks:Diagnostic.level ->
  ?stats:Stats.t ->
  Bdd.manager ->
  algorithm ->
  Driver.spec ->
  outcome
(** Decompose [spec] with the given algorithm and sweep the result.
    [budget] (default {!Budget.unlimited}): pass a fresh one per call.
    [checks] (default [Off]) enables the driver's assertion layer;
    checks never change the produced network.  [stats] collects the
    run's counters and phase timings (default: a fresh throwaway).

    [objective] (default {!Cost.Area}) selects the bound-set scoring
    objective.  [Area] runs the driver once, exactly as before this
    option existed.  [Delay] and [Balanced] run a two-pass portfolio —
    the arrival-aware pass and a plain area pass on the same manager —
    and keep the winner under the objective's own order ([Delay]:
    lexicographic [(depth, luts, clbs)]; [Balanced]:
    [(luts + depth, depth, luts)]), so a delay-driven run never ends
    deeper than the area run it raced.  The two passes share [budget]
    and [stats]. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** One-line summary; appends [degraded=<stage>] only when the run was
    degraded and [findings=...] only when the assertion layer reported
    something, so ungoverned clean output is unchanged. *)
