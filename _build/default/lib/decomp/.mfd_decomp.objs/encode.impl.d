lib/decomp/encode.ml: Array Fun Hashtbl List Option
