(* Tests for Bdd.rename and the variable-order search. *)

let man = Bdd.manager ()
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let gen_fun n =
  let open QCheck2.Gen in
  let+ bits = list_size (return (1 lsl n)) bool in
  let arr = Array.of_list bits in
  Bv.of_fun n (fun i -> arr.(i))

(* The classic order-sensitive function: x0 x(n/2) + x1 x(n/2+1) + ...
   is linear when pairs are adjacent and exponential when interleaved
   badly. *)
let pairs_fun k =
  (* f = OR of x_i /\ x_{k+i}; variables 0..2k-1 *)
  Bdd.or_list man
    (List.init k (fun i -> Bdd.and_ man (Bdd.var man i) (Bdd.var man (k + i))))

let unit_tests =
  [
    Alcotest.test_case "rename by shift" `Quick (fun () ->
        let f = Bdd.and_ man (Bdd.var man 0) (Bdd.nvar man 1) in
        let g = Bdd.rename man f (fun v -> v + 10) in
        check_bool "shifted" true
          (Bdd.equal g (Bdd.and_ man (Bdd.var man 10) (Bdd.nvar man 11))));
    Alcotest.test_case "rename with a non-monotone map" `Quick (fun () ->
        (* swap the roles of 0 and 5 in x0 /\ x5' *)
        let f = Bdd.and_ man (Bdd.var man 0) (Bdd.nvar man 5) in
        let g = Bdd.rename man f (function 0 -> 5 | 5 -> 0 | v -> v) in
        check_bool "swapped" true
          (Bdd.equal g (Bdd.and_ man (Bdd.var man 5) (Bdd.nvar man 0)));
        check_bool "same as swap_vars" true
          (Bdd.equal g (Bdd.swap_vars man f 0 5)));
    Alcotest.test_case "good order shrinks the pairs function" `Quick
      (fun () ->
        let k = 5 in
        let f = pairs_fun k in
        let interleaved = Reorder.identity_of_support man [ f ] in
        let paired =
          Array.of_list (List.concat (List.init k (fun i -> [ i; k + i ])))
        in
        let bad = Reorder.size_under man [ f ] interleaved in
        let good = Reorder.size_under man [ f ] paired in
        check_bool
          (Printf.sprintf "paired (%d) beats interleaved (%d)" good bad)
          true (good < bad));
    Alcotest.test_case "sift finds a good order for the pairs function"
      `Quick (fun () ->
        let k = 4 in
        let f = pairs_fun k in
        let start = Reorder.identity_of_support man [ f ] in
        let sifted = Reorder.sift man [ f ] start in
        let s = Reorder.size_under man [ f ] sifted in
        (* optimum is 3k nodes (pairs adjacent); allow a little slack *)
        check_bool (Printf.sprintf "sifted size %d" s) true (s <= (3 * k) + 2));
    Alcotest.test_case "symmetric sifting keeps groups adjacent" `Quick
      (fun () ->
        let f =
          (* symmetric in {0,1} and in {2,3}: (x0+x1)(x2 x3) *)
          Bdd.and_ man
            (Bdd.or_ man (Bdd.var man 0) (Bdd.var man 1))
            (Bdd.and_ man (Bdd.var man 2) (Bdd.var man 3))
        in
        let order =
          Reorder.sift_symmetric man [ f ]
            ~groups:[ [ 0; 1 ]; [ 2; 3 ] ]
            [| 0; 2; 1; 3 |]
        in
        let pos v =
          let p = ref (-1) in
          Array.iteri (fun k w -> if w = v then p := k) order;
          !p
        in
        check_int "group {0,1} adjacent" 1 (abs (pos 0 - pos 1));
        check_int "group {2,3} adjacent" 1 (abs (pos 2 - pos 3)));
  ]

let props =
  [
    QCheck2.Test.make ~name:"rename preserves semantics under permutation"
      ~count:100
      (QCheck2.Gen.pair (gen_fun 5) (QCheck2.Gen.int_bound 10_000))
      (fun (bv, seed) ->
        let f = Bv.to_bdd man bv in
        let st = Random.State.make [| seed |] in
        let perm = Array.init 5 Fun.id in
        for i = 4 downto 1 do
          let j = Random.State.int st (i + 1) in
          let t = perm.(i) in
          perm.(i) <- perm.(j);
          perm.(j) <- t
        done;
        let g = Bdd.rename man f (fun v -> perm.(v)) in
        (* g(x) = f(x o perm^-1): check by evaluation *)
        List.for_all
          (fun idx ->
            let assignment v = (idx lsr v) land 1 = 1 in
            Bdd.eval f assignment
            = Bdd.eval g (fun v ->
                  (* variable perm.(w) of g reads slot w of f *)
                  let rec inv w = if perm.(w) = v then w else inv (w + 1) in
                  assignment (inv 0)))
          (List.init 32 Fun.id));
    QCheck2.Test.make ~name:"apply preserves function count and semantics"
      ~count:60 (gen_fun 5)
      (fun bv ->
        let f = Bv.to_bdd man bv in
        let order = [| 3; 1; 4; 0; 2 |] in
        match Reorder.apply man [ f ] order with
        | [ _ ] -> true
        | _ -> false);
    QCheck2.Test.make ~name:"sift never increases the size" ~count:40
      (gen_fun 6)
      (fun bv ->
        let f = Bv.to_bdd man bv in
        let start = Reorder.identity_of_support man [ f ] in
        if Array.length start < 2 then true
        else begin
          let before = Reorder.size_under man [ f ] start in
          let after = Reorder.size_under man [ f ] (Reorder.sift man [ f ] start) in
          after <= before
        end);
    QCheck2.Test.make ~name:"symmetric sift never increases the size" ~count:30
      (gen_fun 6)
      (fun bv ->
        let f = Bv.to_bdd man bv in
        let start = Reorder.identity_of_support man [ f ] in
        if Array.length start < 3 then true
        else begin
          let groups = [ [ start.(0); start.(1) ] ] in
          let before =
            Reorder.size_under man [ f ]
              (Reorder.sift_symmetric ~max_rounds:0 man [ f ] ~groups start)
          in
          let after =
            Reorder.size_under man [ f ]
              (Reorder.sift_symmetric man [ f ] ~groups start)
          in
          after <= before
        end);
  ]

let suite = unit_tests @ List.map (fun p -> QCheck_alcotest.to_alcotest ~long:false p) props
