lib/logic/bv.ml: Bdd Bytes Char Format
