type group = (int * bool) list

let group_vars g = List.map fst g

let swap_rel m f ~rel i j =
  let swapped = Bdd.swap_vars m f i j in
  if rel then Bdd.negate_var m (Bdd.negate_var m swapped i) j else swapped

let symmetric_pair m fs ~rel i j =
  i <> j
  && List.for_all (fun f -> Bdd.equal f (swap_rel m f ~rel i j)) fs

let symmetrize_one m f ~rel i j =
  let sigma g = swap_rel m g ~rel i j in
  let on = Isf.on f and off = Isf.off m f in
  let on' = Bdd.or_ m on (sigma on) in
  let off' = Bdd.or_ m off (sigma off) in
  if Bdd.is_zero (Bdd.and_ m on' off') then Some (Isf.of_on_off m ~on:on' ~off:off')
  else None

let symmetrize m fs ~rel i j =
  if i = j then None
  else
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | f :: rest -> (
          match symmetrize_one m f ~rel i j with
          | Some f' -> go (f' :: acc) rest
          | None -> None)
    in
    go [] fs

let symmetrizable m fs ~rel i j =
  i <> j
  && List.for_all
       (fun f ->
         let sigma g = swap_rel m g ~rel i j in
         let on = Isf.on f and off = Isf.off m f in
         Bdd.is_zero (Bdd.and_ m on (sigma off))
         && Bdd.is_zero (Bdd.and_ m (sigma on) off))
       fs

(* Exchange relations induced by the phases of a group: every pair of
   members, with the xor of their phases. *)
let group_pairs g =
  let rec go = function
    | [] -> []
    | (v, pv) :: rest ->
        List.map (fun (w, pw) -> (v, w, pv <> pw)) rest @ go rest
  in
  go g

(* Close the function vector under all exchange relations of a group:
   repeat the forced assignments until a fixpoint.  Terminates because
   the care set only grows.  [None] if some pair becomes conflicting. *)
let close m fs pairs =
  let rec loop fs =
    let changed = ref false in
    let step fs (i, j, rel) =
      match fs with
      | None -> None
      | Some fs -> (
          match symmetrize m fs ~rel i j with
          | None -> None
          | Some fs' ->
              if not (List.for_all2 Isf.equal fs fs') then changed := true;
              Some fs')
    in
    match List.fold_left step (Some fs) pairs with
    | None -> None
    | Some fs' -> if !changed then loop fs' else Some fs'
  in
  loop fs

let close_group m fs group = close m fs (group_pairs group)

type result = { functions : Isf.t list; groups : group list }

let maximize ?(budget = 4000) ?(use_equivalence = true) ?(check = ignore) m fs
    vars =
  let budget = ref budget in
  let merge_groups fs g1 g2 q =
    if !budget <= 0 then None
    else begin
      check ();
      decr budget;
      (* Cheap rejection first: every cross pair must be individually
         symmetrizable before attempting the (quadratic) closure. *)
      let cross_ok =
        List.for_all
          (fun (v, pv) ->
            List.for_all
              (fun (w, pw) -> symmetrizable m fs ~rel:(pv <> (pw <> q)) v w)
              g2)
          g1
      in
      if not cross_ok then None
      else
        let merged = g1 @ List.map (fun (w, pw) -> (w, pw <> q)) g2 in
        match close m fs (group_pairs merged) with
        | Some fs' -> Some (fs', merged)
        | None -> None
    end
  in
  let phases = if use_equivalence then [ false; true ] else [ false ] in
  (* Greedy: repeatedly scan group pairs, commit the first successful
     merge, until a full scan makes no progress or the budget is gone. *)
  let rec grow fs groups =
    let arr = Array.of_list groups in
    let n = Array.length arr in
    let found = ref None in
    (try
       for a = 0 to n - 1 do
         for b = a + 1 to n - 1 do
           List.iter
             (fun q ->
               if !found = None && !budget > 0 then
                 match merge_groups fs arr.(a) arr.(b) q with
                 | Some (fs', merged) ->
                     found := Some (fs', merged, a, b);
                     raise Exit
                 | None -> ())
             phases
         done
       done
     with Exit -> ());
    match !found with
    | None -> (fs, groups)
    | Some (fs', merged, a, b) ->
        let rest =
          List.filteri (fun idx _ -> idx <> a && idx <> b) groups
        in
        grow fs' (merged :: rest)
  in
  let singletons = List.map (fun v -> [ (v, false) ]) vars in
  let fs', groups = grow fs singletons in
  (* Restore the original variable order inside and across groups. *)
  let groups =
    groups
    |> List.map (List.sort (fun (v, _) (w, _) -> compare v w))
    |> List.sort (fun g1 g2 ->
           match (g1, g2) with
           | (v, _) :: _, (w, _) :: _ -> compare v w
           | _, _ -> 0)
  in
  { functions = fs'; groups }

let partition ?budget ?check m fs vars =
  let isfs = List.map (Isf.of_csf m) fs in
  (maximize ?budget ?check m isfs vars).groups
