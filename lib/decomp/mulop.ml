type algorithm = Mulop_ii | Mulop_dc | Mulop_dc_ii

type outcome = {
  algorithm : algorithm;
  network : Network.t;
  lut_count : int;
  clb_count : int;
  depth : int;
  step_count : int;
  shannon_count : int;
  alpha_count : int;
  degraded_to : Budget.stage;
  findings : Diagnostic.t list;
}

let algorithm_name = function
  | Mulop_ii -> "mulopII"
  | Mulop_dc -> "mulop-dc"
  | Mulop_dc_ii -> "mulop-dcII"

let config_of ?(lut_size = 5) = function
  | Mulop_ii -> Config.with_lut_size lut_size Config.mulop_ii
  | Mulop_dc | Mulop_dc_ii -> Config.with_lut_size lut_size Config.mulop_dc

let run ?lut_size ?budget ?checks ?stats m algorithm spec =
  let cfg = config_of ?lut_size algorithm in
  let report = Driver.decompose_report ~cfg ?budget ?checks ?stats m spec in
  let net = Network.sweep report.Driver.network in
  let stats = Network.stats net in
  let policy =
    match algorithm with
    | Mulop_ii | Mulop_dc -> Clb.First_fit
    | Mulop_dc_ii -> Clb.Max_matching
  in
  {
    algorithm;
    network = net;
    lut_count = stats.Network.lut_count;
    clb_count = Clb.clb_count policy net;
    depth = stats.Network.depth;
    step_count = report.Driver.step_count;
    shannon_count = report.Driver.shannon_count;
    alpha_count = report.Driver.alpha_count;
    degraded_to = report.Driver.degraded_to;
    findings = report.Driver.findings;
  }

let pp_outcome fmt o =
  Format.fprintf fmt "%-10s luts=%-4d clbs=%-4d depth=%-3d steps=%d shannon=%d"
    (algorithm_name o.algorithm) o.lut_count o.clb_count o.depth o.step_count
    o.shannon_count;
  (* Keep ungoverned output byte-identical: the stage only shows up when
     a budget actually degraded the run. *)
  (match o.degraded_to with
  | Budget.Full -> ()
  | stage -> Format.fprintf fmt " degraded=%s" (Budget.stage_name stage));
  (* Same policy for the assertion layer: silent unless it found
     something. *)
  match o.findings with
  | [] -> ()
  | fs ->
      Format.fprintf fmt " findings=%dE/%dW/%dI"
        (Diagnostic.count Diagnostic.Error fs)
        (Diagnostic.count Diagnostic.Warning fs)
        (Diagnostic.count Diagnostic.Info fs)
