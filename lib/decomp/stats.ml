type t = {
  mutable score_calls : int;
  mutable score_hits : int;
  mutable cof_lookups : int;
  mutable cof_hits : int;
  mutable cof_extends : int;
  mutable cof_fresh : int;
  mutable restricts : int;
  mutable retains : int;
  mutable evicted : int;
  mutable budget_checks : int;
  mutable result_hits : int;
  mutable result_misses : int;
  mutable sem_nodes : int;
  mutable sem_truncations : int;
  mutable degradations : (string * string * string) list;
  mutable findings : (string * string * string) list;
  phases : (string, float) Hashtbl.t;
}

let create () =
  {
    score_calls = 0;
    score_hits = 0;
    cof_lookups = 0;
    cof_hits = 0;
    cof_extends = 0;
    cof_fresh = 0;
    restricts = 0;
    retains = 0;
    evicted = 0;
    budget_checks = 0;
    result_hits = 0;
    result_misses = 0;
    sem_nodes = 0;
    sem_truncations = 0;
    degradations = [];
    findings = [];
    phases = Hashtbl.create 8;
  }

let reset t =
  t.score_calls <- 0;
  t.score_hits <- 0;
  t.cof_lookups <- 0;
  t.cof_hits <- 0;
  t.cof_extends <- 0;
  t.cof_fresh <- 0;
  t.restricts <- 0;
  t.retains <- 0;
  t.evicted <- 0;
  t.budget_checks <- 0;
  t.result_hits <- 0;
  t.result_misses <- 0;
  t.sem_nodes <- 0;
  t.sem_truncations <- 0;
  t.degradations <- [];
  t.findings <- [];
  Hashtbl.reset t.phases

let merge ~into s =
  into.score_calls <- into.score_calls + s.score_calls;
  into.score_hits <- into.score_hits + s.score_hits;
  into.cof_lookups <- into.cof_lookups + s.cof_lookups;
  into.cof_hits <- into.cof_hits + s.cof_hits;
  into.cof_extends <- into.cof_extends + s.cof_extends;
  into.cof_fresh <- into.cof_fresh + s.cof_fresh;
  into.restricts <- into.restricts + s.restricts;
  into.retains <- into.retains + s.retains;
  into.evicted <- into.evicted + s.evicted;
  into.budget_checks <- into.budget_checks + s.budget_checks;
  into.result_hits <- into.result_hits + s.result_hits;
  into.result_misses <- into.result_misses + s.result_misses;
  into.sem_nodes <- into.sem_nodes + s.sem_nodes;
  into.sem_truncations <- into.sem_truncations + s.sem_truncations;
  (* both lists are newest-first; keep the merged one newest-first too *)
  into.degradations <- s.degradations @ into.degradations;
  into.findings <- s.findings @ into.findings;
  Hashtbl.iter
    (fun name dt ->
      Hashtbl.replace into.phases name
        (dt +. Option.value ~default:0.0 (Hashtbl.find_opt into.phases name)))
    s.phases

let add_degradation t ~stage ~reason ~where =
  t.degradations <- (stage, reason, where) :: t.degradations

let degradations t = List.rev t.degradations

let add_finding t ~severity ~code ~message =
  t.findings <- (severity, code, message) :: t.findings

let findings t = List.rev t.findings

let add_phase t name dt =
  Hashtbl.replace t.phases name
    (dt +. Option.value ~default:0.0 (Hashtbl.find_opt t.phases name))

let phase_time t name = Option.value ~default:0.0 (Hashtbl.find_opt t.phases name)

let score_misses t = t.score_calls - t.score_hits

let score_hit_rate t =
  if t.score_calls = 0 then 0.0
  else float_of_int t.score_hits /. float_of_int t.score_calls

let cof_hit_rate t =
  if t.cof_lookups = 0 then 0.0
  else
    float_of_int (t.cof_hits + t.cof_extends) /. float_of_int t.cof_lookups

let result_hit_rate t =
  let total = t.result_hits + t.result_misses in
  if total = 0 then 0.0 else float_of_int t.result_hits /. float_of_int total

type clock = { stats : t; mutable last : float }

(* Monotonic, not gettimeofday: a phase duration must survive an NTP
   step mid-run. *)
let clock stats = { stats; last = Mono.now () }

let mark ck name =
  let now = Mono.now () in
  let dt = now -. ck.last in
  ck.last <- now;
  add_phase ck.stats name dt;
  dt

let pp fmt t =
  Format.fprintf fmt
    "@[<v>score calls %d, memo hits %d (%.1f%%)@,\
     cofactor vectors: %d lookups, %d cached, %d extended, %d fresh (reuse %.1f%%)@,\
     isf restricts %d; cache retains %d (evicted %d entries)@]"
    t.score_calls t.score_hits
    (100.0 *. score_hit_rate t)
    t.cof_lookups t.cof_hits t.cof_extends t.cof_fresh
    (100.0 *. cof_hit_rate t)
    t.restricts t.retains t.evicted;
  if t.result_hits > 0 || t.result_misses > 0 then
    Format.fprintf fmt "@,result cache: %d hit(s), %d miss(es) (%.1f%%)"
      t.result_hits t.result_misses
      (100.0 *. result_hit_rate t);
  if t.sem_nodes > 0 || t.sem_truncations > 0 then
    Format.fprintf fmt "@,semantic dataflow: %d node(s) analyzed, %d truncation(s)"
      t.sem_nodes t.sem_truncations;
  (match degradations t with
  | [] -> ()
  | ds ->
      Format.fprintf fmt "@,@[<v>budget degradations (%d checks):" t.budget_checks;
      List.iter
        (fun (stage, reason, where) ->
          Format.fprintf fmt "@,  -> %-14s (%s exceeded in %s)" stage reason where)
        ds;
      Format.fprintf fmt "@]");
  (match findings t with
  | [] -> ()
  | fs ->
      let sev name = List.length (List.filter (fun (s, _, _) -> s = name) fs) in
      Format.fprintf fmt
        "@,@[<v>check findings: %d error(s), %d warning(s), %d info"
        (sev "error") (sev "warning") (sev "info");
      List.iter
        (fun (severity, code, message) ->
          Format.fprintf fmt "@,  %s[%s] %s" severity code message)
        fs;
      Format.fprintf fmt "@]");
  let phases =
    Hashtbl.fold (fun name dt acc -> (name, dt) :: acc) t.phases []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  if phases <> [] then begin
    Format.fprintf fmt "@,@[<v>phases:";
    List.iter
      (fun (name, dt) -> Format.fprintf fmt "@,  %-16s %8.3fs" name dt)
      phases;
    Format.fprintf fmt "@]"
  end
