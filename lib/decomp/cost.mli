(** Pluggable bound-set cost functions: the mapping objective.

    {!Bound_select.score} ranks candidates by a lexicographic triple
    [(objective term, communication complexity, support reduction)].
    This module computes the first component from a per-variable
    {e arrival time} oracle, giving the engine a delay-driven mode
    (critical-path-aware bound sets, following Tempia Calvino et al.,
    "Practical Boolean Decomposition for Delay-driven LUT Mapping")
    without touching the paper's area machinery: under {!Area} the
    term is constantly 0 and the ordering is bit-identical to the
    classical pair. *)

type objective =
  | Area  (** LUT/CLB count only — the paper's behaviour, the default *)
  | Delay
      (** arrival-time increase first: prefer bound sets of
          early-arriving signals, keep critical signals in the free set *)
  | Balanced
      (** the arrival term added into the area component instead of
          dominating it *)

val objective_name : objective -> string
(** ["area"], ["delay"], ["balanced"] — stable CLI/report names. *)

val objective_of_string : string -> (objective, string) result

type t = {
  objective : objective;
  arrival : int -> int;
      (** level of the signal realizing a decomposition variable: 0
          for primary inputs, {!Network.level} for emitted
          decomposition functions.  Never consulted under {!Area}. *)
}

val area : t
(** The zero cost function: objective {!Area}, arrival constantly 0. *)

val make : objective -> arrival:(int -> int) -> t
(** [make Area ~arrival] ignores [arrival] and returns {!area}, so an
    area-mode run cannot accidentally depend on network state. *)

val step_arrival : t -> int list -> int
(** Arrival of the decomposition functions a bound set would create:
    [1 + max (arrival v)] over the bound variables. *)

val triple : t -> bound:int list -> int * int -> int * int * int
(** Extend the area pair [(a1, a2)] with the objective term for
    [bound]: [Area → (0, a1, a2)], [Delay → (step_arrival, a1, a2)],
    [Balanced → (0, a1 + step_arrival, a2)].  Lexicographically
    smaller is better in every mode. *)

val key_of : t -> int list -> int * int list
(** The cache-key fragment of a score query: an objective tag plus the
    arrival profile of the bound set ([(0, [])] under {!Area}, whose
    scores are arrival-independent). *)

val worst : int * int * int
(** Worse than any genuine candidate in every objective. *)
