(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6) and runs Bechamel timing benches.

     dune exec bench/main.exe             -- everything
     dune exec bench/main.exe -- table1 figure2 ...   -- selected sections
     dune exec bench/main.exe -- quick    -- skip the slowest circuits

   Sections: table1 table2 figure2 figure3 ablation governor check
   semantics robdd batch serve timing

   Paper-vs-measured records land in EXPERIMENTS.md; this executable
   prints the measured side next to the reference values that the
   supplied paper text contains. *)

let section_enabled =
  let args = List.tl (Array.to_list Sys.argv) in
  let args = List.filter (fun a -> a <> "--") args in
  let quick = List.mem "quick" args in
  let named = List.filter (fun a -> a <> "quick") args in
  fun name -> ((named = [] || List.mem name named), quick)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let hr title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Table 1: CLB counts (XC3000) without / with don't-care exploitation *)
(* ------------------------------------------------------------------ *)

(* The circuits whose decomposition is slowest; skipped under `quick`. *)
let slow_circuits = [ "C499"; "C880"; "rot"; "count"; "e64" ]

(* The stats instance of the section currently running: the harness is
   single-threaded (the batch section's worker domains create their own
   per-job stats inside Batch), so one slot the section wrapper swaps
   per section is enough to aggregate every run a section performs. *)
let section_stats = ref (Stats.create ())

let run_driver m cfg spec =
  let report = Driver.decompose_report ~cfg ~stats:!section_stats m spec in
  Network.sweep report.Driver.network

let table1 quick =
  hr "Table 1: CLB counts for XC3000 (n_LUT = 5), mulopII vs mulop-dc";
  Printf.printf
    "The paper reports CLB reductions of up to 35%% (alu2) and >10%% overall;\n\
     absolute counts differ because stand-in functions replace the original\n\
     MCNC netlists for the rows marked '~' (see DESIGN.md section 4).\n\n";
  Printf.printf "%-8s %2s %5s %5s | %8s %8s | %7s %8s\n" "circuit" "" "in"
    "out" "mulopII" "mulop-dc" "gain" "time";
  let total_ii = ref 0 and total_dc = ref 0 in
  List.iter
    (fun e ->
      if quick && List.mem e.Mcnc.name slow_circuits then
        Printf.printf "%-8s %2s (skipped under `quick`)\n" e.Mcnc.name
          (if e.Mcnc.exact then "" else "~")
      else begin
        let m = Bdd.manager () in
        let spec = e.Mcnc.build m in
        let (ii, dc), dt =
          time (fun () ->
              let ii = run_driver m (Mulop.config_of Mulop.Mulop_ii) spec in
              let dc = run_driver m (Mulop.config_of Mulop.Mulop_dc) spec in
              (ii, dc))
        in
        assert (Driver.verify m spec ii);
        assert (Driver.verify m spec dc);
        let cii = Clb.clb_count Clb.First_fit ii in
        let cdc = Clb.clb_count Clb.First_fit dc in
        total_ii := !total_ii + cii;
        total_dc := !total_dc + cdc;
        let gain =
          100.0 *. (1.0 -. (float_of_int cdc /. float_of_int (max 1 cii)))
        in
        Printf.printf "%-8s %2s %5d %5d | %8d %8d | %6.1f%% %7.1fs\n"
          e.Mcnc.name
          (if e.Mcnc.exact then "" else "~")
          e.Mcnc.ninputs e.Mcnc.noutputs cii cdc gain dt
      end)
    Mcnc.catalogue;
  let gain =
    100.0 *. (1.0 -. (float_of_int !total_dc /. float_of_int (max 1 !total_ii)))
  in
  Printf.printf "%-8s %2s %5s %5s | %8d %8d | %6.1f%%\n" "total" "" "" ""
    !total_ii !total_dc gain;
  Printf.printf
    "\npaper: alu2 gains ~35%%, total gain > 10%%; measured total gain %.1f%%\n"
    gain

(* ------------------------------------------------------------------ *)
(* Table 2: mulop-dcII vs published mappers                            *)
(* ------------------------------------------------------------------ *)

let table2 quick =
  hr "Table 2: CLB counts, mulop-dcII (max-matching CLB merge)";
  Printf.printf
    "The supplied paper text contains Table 2's structure but the OCR lost\n\
     the per-row values of FGMap / mis-pga(new) / IMODEC, so only our own\n\
     columns are measured: mulop-dc (first-fit merge, as in Table 1) against\n\
     mulop-dcII (maximum-cardinality matching merge, Murgai et al.).  The\n\
     paper's qualitative claim is that mulop-dcII wins overall.\n\n";
  Printf.printf "%-8s %2s | %9s %10s | %s\n" "circuit" "" "mulop-dc"
    "mulop-dcII" "luts";
  let total_dc = ref 0 and total_dcii = ref 0 in
  List.iter
    (fun e ->
      if quick && List.mem e.Mcnc.name slow_circuits then
        Printf.printf "%-8s %2s (skipped under `quick`)\n" e.Mcnc.name
          (if e.Mcnc.exact then "" else "~")
      else begin
        let m = Bdd.manager () in
        let spec = e.Mcnc.build m in
        let net = run_driver m (Mulop.config_of Mulop.Mulop_dc) spec in
        assert (Driver.verify m spec net);
        let first_fit = Clb.clb_count Clb.First_fit net in
        let matching = Clb.clb_count Clb.Max_matching net in
        total_dc := !total_dc + first_fit;
        total_dcii := !total_dcii + matching;
        Printf.printf "%-8s %2s | %9d %10d | %4d\n" e.Mcnc.name
          (if e.Mcnc.exact then "" else "~")
          first_fit matching
          (Network.stats net).Network.lut_count
      end)
    Mcnc.catalogue;
  Printf.printf "%-8s %2s | %9d %10d |\n" "total" "" !total_dc !total_dcii;
  Printf.printf "\nmatching merge saves %d CLBs over first-fit on the suite\n"
    (!total_dc - !total_dcii)

(* ------------------------------------------------------------------ *)
(* Figure 2: 8-bit adder from two-input gates                          *)
(* ------------------------------------------------------------------ *)

let figure2 quick =
  hr "Figure 2: automatically generated 8-bit adder (two-input gates)";
  Printf.printf
    "paper: 49 two-input gates for the generated adder vs 90 for the\n\
     conditional-sum adder.  Shape to reproduce: generated < conditional-sum,\n\
     and the don't-care concept is what gets it there.\n\n";
  let sizes = if quick then [ 4; 8 ] else [ 4; 6; 8 ] in
  Printf.printf "%5s | %10s %10s %10s | %10s\n" "bits" "cond-sum" "mulop-dc"
    "no-DC" "depth(dc)";
  List.iter
    (fun bits ->
      let m = Bdd.manager () in
      let spec = Arith.adder m ~bits in
      let cs = Network.stats (Circuits.conditional_sum_adder ~bits) in
      let dc = run_driver m (Mulop.config_of ~lut_size:2 Mulop.Mulop_dc) spec in
      let ii = run_driver m (Mulop.config_of ~lut_size:2 Mulop.Mulop_ii) spec in
      assert (Driver.verify m spec dc);
      assert (Driver.verify m spec ii);
      let sdc = Network.stats dc and sii = Network.stats ii in
      Printf.printf "%5d | %10d %10d %10d | %10d\n" bits cs.Network.lut_count
        sdc.Network.lut_count sii.Network.lut_count sdc.Network.depth)
    sizes;
  Printf.printf "\npaper reference at 8 bits: mulop-dc 49, conditional-sum 90\n"

(* ------------------------------------------------------------------ *)
(* Figure 3: partial multiplier pm_n                                   *)
(* ------------------------------------------------------------------ *)

let figure3 quick =
  hr "Figure 3: partial multiplier pm_n (two-input gates)";
  Printf.printf
    "paper: the DC assignment is essential — without it pm_4 needs ~75%%\n\
     more gates; the Wallace tree needs 10n^2 - 20n gates.\n\n";
  let sizes = if quick then [ 3 ] else [ 3; 4 ] in
  Printf.printf "%4s | %8s %10s %8s %8s | %9s\n" "n" "wallace" "(formula)"
    "mulop-dc" "no-DC" "overhead";
  List.iter
    (fun n ->
      let m = Bdd.manager () in
      let spec = Arith.partial_multiplier m ~n in
      let w = Network.stats (Circuits.wallace_partial_multiplier ~n) in
      let dc = run_driver m (Mulop.config_of ~lut_size:2 Mulop.Mulop_dc) spec in
      let ii = run_driver m (Mulop.config_of ~lut_size:2 Mulop.Mulop_ii) spec in
      assert (Driver.verify m spec dc);
      assert (Driver.verify m spec ii);
      let gdc = (Network.stats dc).Network.lut_count in
      let gii = (Network.stats ii).Network.lut_count in
      Printf.printf "%4d | %8d %10d %8d %8d | %+8.0f%%\n" n
        w.Network.lut_count
        (Circuits.wallace_gate_formula n)
        gdc gii
        (100.0 *. ((float_of_int gii /. float_of_int (max 1 gdc)) -. 1.0)))
    sizes;
  Printf.printf "\npaper reference: +75%% without the DC assignment at n = 4\n"

(* ------------------------------------------------------------------ *)
(* Ablation: contribution of each DC step                              *)
(* ------------------------------------------------------------------ *)

let ablation _quick =
  hr "Ablation: contribution of the three DC steps (CLBs, XC3000)";
  let circuits = [ "5xp1"; "alu2"; "clip"; "rd84"; "z4ml"; "f51m" ] in
  let variants =
    [
      ("none (mulopII)", Config.mulop_ii);
      ( "sym only",
        {
          Config.mulop_dc with
          Config.dc_steps =
            { Config.symmetry = true; sharing = false; cms = false };
        } );
      ( "share only",
        {
          Config.mulop_dc with
          Config.dc_steps =
            { Config.symmetry = false; sharing = true; cms = false };
        } );
      ( "cms only",
        {
          Config.mulop_dc with
          Config.dc_steps =
            { Config.symmetry = false; sharing = false; cms = true };
        } );
      ( "share+cms",
        {
          Config.mulop_dc with
          Config.dc_steps =
            { Config.symmetry = false; sharing = true; cms = true };
        } );
      ("all (mulop-dc)", Config.mulop_dc);
    ]
  in
  Printf.printf "%-16s" "variant";
  List.iter (fun c -> Printf.printf " %6s" c) circuits;
  Printf.printf " %7s\n" "total";
  List.iter
    (fun (name, cfg) ->
      Printf.printf "%-16s" name;
      let total = ref 0 in
      List.iter
        (fun circuit ->
          let e = Mcnc.find circuit in
          let m = Bdd.manager () in
          let spec = e.Mcnc.build m in
          let net = run_driver m cfg spec in
          assert (Driver.verify m spec net);
          let clbs = Clb.clb_count Clb.First_fit net in
          total := !total + clbs;
          Printf.printf " %6d%!" clbs)
        circuits;
      Printf.printf " %7d\n" !total)
    variants

(* ------------------------------------------------------------------ *)
(* Governor: graceful degradation under resource budgets               *)
(* ------------------------------------------------------------------ *)

let governor quick =
  hr "Governor: degradation ladder under deadline / node budgets";
  Printf.printf
    "A large random cone network decomposed under shrinking budgets.\n\
     Exceeding a budget never fails the run: the driver drops symmetry\n\
     maximization first, then the joint clique cover, finally falls back\n\
     to plain Shannon/MUX emission.  Every row is verified against the\n\
     specification.\n\n";
  let ninputs, noutputs = if quick then (30, 8) else (48, 16) in
  let window, gates_per_output = if quick then (12, 24) else (16, 40) in
  let variants =
    [
      ("unlimited", fun stats -> Budget.create ~stats ());
      ("effort quick", fun stats -> Budget.create ~effort:Budget.Quick ~stats ());
      ("timeout 1s", fun stats -> Budget.create ~timeout:1.0 ~stats ());
      ("nodes 50k", fun stats -> Budget.create ~node_budget:50_000 ~stats ());
      ("nodes 5k", fun stats -> Budget.create ~node_budget:5_000 ~stats ());
      ("timeout 0s", fun stats -> Budget.create ~timeout:0.0 ~stats ());
    ]
  in
  Printf.printf "%-14s | %6s %6s %6s | %-13s %5s | %7s\n" "budget" "luts"
    "clbs" "depth" "degraded-to" "degr" "time";
  List.iter
    (fun (name, make_budget) ->
      let m = Bdd.manager () in
      let net =
        Randnet.cones ~ninputs ~noutputs ~window ~gates_per_output ~seed:42 ()
      in
      let spec = Randnet.spec_of_network m net in
      let row_stats = Stats.create () in
      let budget = make_budget row_stats in
      let o, dt =
        time (fun () -> Mulop.run ~budget ~stats:row_stats m Mulop.Mulop_dc spec)
      in
      assert (Driver.verify m spec o.Mulop.network);
      Printf.printf "%-14s | %6d %6d %6d | %-13s %5d | %6.1fs\n" name
        o.Mulop.lut_count o.Mulop.clb_count o.Mulop.depth
        (Budget.stage_name o.Mulop.degraded_to)
        (List.length (Stats.degradations row_stats))
        dt;
      Stats.merge ~into:!section_stats row_stats)
    variants;
  Printf.printf "\nall rows verified: degraded networks stay correct\n"

(* ------------------------------------------------------------------ *)
(* Extension: ROBDD sizes under symmetrization + symmetric sifting.    *)
(* Step 1 of the paper's DC concept comes from Scholl/Melchior/Hotz/   *)
(* Molitor (EDTC'97), whose own experiment is ROBDD-size reduction of  *)
(* incompletely specified functions; this section reproduces that      *)
(* effect with our substrate.                                          *)
(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* Assertion-layer overhead: --check=off vs cheap vs full              *)
(* ------------------------------------------------------------------ *)

let check_overhead quick =
  hr "Check: assertion-layer overhead (mulop-dc, n_LUT = 5)";
  Printf.printf
    "Wall time of one mulop-dc run per circuit at each --check level.\n\
     Checks are pure observers: all levels must produce the same CLB\n\
     count, and a clean run reports zero findings.\n\n";
  Printf.printf "%-8s | %8s %8s %8s | %7s %7s | %8s\n" "circuit" "off" "cheap"
    "full" "cheap" "full" "findings";
  let circuits =
    if quick then [ "rd73"; "misex1"; "5xp1" ]
    else [ "rd73"; "rd84"; "misex1"; "5xp1"; "clip"; "sao2"; "alu2" ]
  in
  List.iter
    (fun name ->
      let e = Mcnc.find name in
      let one checks =
        let m = Bdd.manager () in
        let spec = e.Mcnc.build m in
        time (fun () ->
            Mulop.run ~checks ~stats:!section_stats m Mulop.Mulop_dc spec)
      in
      let o_off, t_off = one Diagnostic.Off in
      let o_cheap, t_cheap = one Diagnostic.Cheap in
      let o_full, t_full = one Diagnostic.Full in
      assert (o_off.Mulop.clb_count = o_cheap.Mulop.clb_count);
      assert (o_off.Mulop.clb_count = o_full.Mulop.clb_count);
      let pct t = 100.0 *. ((t /. Float.max 1e-9 t_off) -. 1.0) in
      Printf.printf "%-8s | %7.3fs %7.3fs %7.3fs | %+6.0f%% %+6.0f%% | %8d\n"
        name t_off t_cheap t_full (pct t_cheap) (pct t_full)
        (List.length o_full.Mulop.findings))
    circuits;
  Printf.printf
    "\n(cheap/full columns are overhead relative to off; findings are from\n\
     the full run and must be 0 on a healthy build)\n"

(* ------------------------------------------------------------------ *)
(* Semantic-pass overhead: --check=full vs --check=deep                *)
(* ------------------------------------------------------------------ *)

let semantics_overhead quick =
  hr "Semantics: SDC/ODC dataflow overhead (mulop-dc, n_LUT = 5)";
  Printf.printf
    "Wall time of one mulop-dc run at --check=full vs --check=deep (the\n\
     latter adds the semantic SDC/ODC dataflow over the final network\n\
     against the specification's care set).  Deep checks are pure\n\
     observers too: CLB counts must match, and SEM findings on the\n\
     engine's own output indicate leftover don't cares.\n\n";
  Printf.printf "%-8s | %8s %8s | %7s | %8s\n" "circuit" "full" "deep"
    "deep" "SEM find";
  let circuits =
    if quick then [ "rd73"; "misex1"; "5xp1" ]
    else [ "rd73"; "rd84"; "misex1"; "5xp1"; "clip"; "sao2"; "alu2" ]
  in
  List.iter
    (fun name ->
      let e = Mcnc.find name in
      let one checks =
        let m = Bdd.manager () in
        let spec = e.Mcnc.build m in
        time (fun () ->
            Mulop.run ~checks ~stats:!section_stats m Mulop.Mulop_dc spec)
      in
      let o_full, t_full = one Diagnostic.Full in
      let o_deep, t_deep = one Diagnostic.Deep in
      assert (o_full.Mulop.clb_count = o_deep.Mulop.clb_count);
      let sem =
        List.filter
          (fun f -> String.length f.Diagnostic.code >= 3
                    && String.sub f.Diagnostic.code 0 3 = "SEM")
          o_deep.Mulop.findings
      in
      let pct = 100.0 *. ((t_deep /. Float.max 1e-9 t_full) -. 1.0) in
      Printf.printf "%-8s | %7.3fs %7.3fs | %+6.0f%% | %8d\n" name t_full
        t_deep pct (List.length sem))
    circuits;
  Printf.printf
    "\n(deep column is overhead relative to full; SEM findings count the\n\
     semantic-dataflow findings of the deep run)\n"

let robdd _quick =
  hr "Extension: ROBDD size under don't-care symmetrization (EDTC'97 effect)";
  Printf.printf
    "Near-symmetric ISFs: a weight-threshold function of 12 variables\n\
     with 25%% of the minterms punched out as don't cares.  'zeroed'\n\
     assigns all DCs to 0 (destroying the symmetry); 'symmetrized' runs\n\
     the step-1 assignment (recovering it); both are then reordered\n\
     with (symmetric) sifting.\n\n";
  Printf.printf "%6s | %8s %8s | %10s %12s | %6s\n" "seed" "zeroed" "sifted"
    "symmetrized" "sym+sifted" "gain";
  let total_before = ref 0 and total_after = ref 0 in
  List.iter
    (fun seed ->
      let m = Bdd.manager () in
      let st = Random.State.make [| seed |] in
      let nvars = 12 in
      let threshold = 4 + Random.State.int st 4 in
      let rec weight_fun v ones =
        if v = nvars then if ones >= threshold then Bdd.one m else Bdd.zero m
        else
          Bdd.ite m (Bdd.var m v)
            (weight_fun (v + 1) (ones + 1))
            (weight_fun (v + 1) ones)
      in
      let sym = weight_fun 0 0 in
      let dc = Bdd.random m ~nvars ~density:0.25 st in
      let on = Bdd.diff m sym dc in
      let isf = Isf.make m ~on ~dc in
      let vars = List.init nvars Fun.id in
      (* baseline: all DCs to 0, classical sifting *)
      let zeroed = Isf.on (Isf.assign_all_zero m isf) in
      let z_size = Bdd.size zeroed in
      let z_order = Reorder.sift m [ zeroed ] (Reorder.identity_of_support m [ zeroed ]) in
      let z_sifted = Reorder.size_under m [ zeroed ] z_order in
      (* step 1: symmetrize, then keep groups adjacent while sifting *)
      let r = Symmetry.maximize m [ isf ] vars in
      let f' =
        match r.Symmetry.functions with
        | [ f' ] -> Isf.on (Isf.assign_all_zero m f')
        | _ -> assert false
      in
      let s_size = Bdd.size f' in
      let groups = List.map Symmetry.group_vars r.Symmetry.groups in
      let start = Reorder.identity_of_support m [ f' ] in
      let s_order =
        if Array.length start >= 2 then
          Reorder.sift_symmetric m [ f' ] ~groups start
        else start
      in
      let s_sifted =
        if Array.length start >= 2 then Reorder.size_under m [ f' ] s_order
        else s_size
      in
      total_before := !total_before + z_sifted;
      total_after := !total_after + s_sifted;
      Printf.printf "%6d | %8d %8d | %10d %12d | %5.0f%%\n" seed z_size
        z_sifted s_size s_sifted
        (100.0 *. (1.0 -. (float_of_int s_sifted /. float_of_int (max 1 z_sifted)))))
    [ 1; 2; 3; 4; 5; 6 ];
  Printf.printf
    "\nshared-size totals: zeroed+sifted %d vs symmetrized+sym-sifted %d\n"
    !total_before !total_after

(* ------------------------------------------------------------------ *)
(* Batch: domain-parallel scaling over the small-circuit suite         *)
(* ------------------------------------------------------------------ *)

let batch_scaling quick =
  hr "Batch: domain-parallel scaling (mulop-dc, n_LUT = 5)";
  Printf.printf
    "The whole suite decomposed by `Batch.run` with 1, 2 and 4 worker\n\
     domains.  Every job owns its BDD manager, budget and stats, so the\n\
     per-circuit results must be bit-identical at every domain count;\n\
     the wall-clock speedup is bounded by the cores the host grants\n\
     (Domain.recommended_domain_count here: %d).\n\n"
    (Domain.recommended_domain_count ());
  let circuits =
    if quick then [ "rd73"; "z4ml"; "misex1"; "5xp1" ]
    else
      [
        "rd73"; "rd84"; "z4ml"; "f51m"; "misex1"; "5xp1"; "clip"; "sao2";
        "9sym"; "alu2";
      ]
  in
  let job_list =
    List.map
      (fun name -> Batch.job ~name (fun m -> (Mcnc.find name).Mcnc.build m))
      circuits
  in
  let reports =
    List.map (fun jobs -> (jobs, Batch.run ~jobs job_list)) [ 1; 2; 4 ]
  in
  let counts report =
    List.map
      (fun r ->
        match r.Batch.outcome with
        | Ok s -> (r.Batch.job, s.Batch.lut_count, s.Batch.clb_count)
        | Error e -> failwith (r.Batch.job ^ ": " ^ e.Batch.message))
      report.Batch.results
  in
  let _, rep1 = List.hd reports in
  let base = counts rep1 in
  List.iter (fun (_, rep) -> assert (counts rep = base)) (List.tl reports);
  Format.printf "%a@." (Batch.pp_text ~stats:false) rep1;
  Printf.printf "%8s | %8s %8s\n" "domains" "wall" "speedup";
  List.iter
    (fun (jobs, rep) ->
      Printf.printf "%8d | %7.2fs %7.2fx\n" jobs rep.Batch.wall
        (rep1.Batch.wall /. Float.max 1e-9 rep.Batch.wall))
    reports;
  Printf.printf
    "\nper-circuit LUT/CLB counts identical across 1/2/4 domains (%d circuits)\n"
    (List.length circuits);
  List.iter
    (fun r -> Stats.merge ~into:!section_stats r.Batch.stats)
    rep1.Batch.results

let serve_bench quick =
  hr "Serve: daemon cold/warm latency and cache hit rate";
  Printf.printf
    "An in-process `mfd serve` daemon on a Unix socket: every circuit is\n\
     submitted twice over the same connection.  The first pass computes\n\
     and fills the cross-request result cache (keyed on canonical\n\
     function fingerprints); the second pass must be answered from the\n\
     cache, so the warm latency is pure protocol + lookup cost.\n\n";
  let circuits =
    if quick then [ "rd53"; "sym6" ] else [ "rd53"; "sym6"; "maj9"; "parity12" ]
  in
  let path =
    Printf.sprintf "%s/mfd-bench-%d.sock"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ())
  in
  let endpoint = Server.Unix_socket path in
  let ready = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Server.run
          ~on_ready:(fun () -> Atomic.set ready true)
          { (Server.default_config endpoint) with Server.jobs = 2 })
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.002
  done;
  let c = Client.connect endpoint in
  let submit name =
    let t0 = Mono.now () in
    match
      Client.call c
        (Proto.Run
           {
             Proto.source = Proto.Target name;
             lut_size = 5;
             algorithm = Mulop.Mulop_dc;
             effort = None;
             timeout = None;
             node_budget = None;
             checks = Diagnostic.Off;
             verify = false;
           })
    with
    | Ok (Proto.Ok_run (_, r)) -> (Mono.now () -. t0, r)
    | Ok (Proto.Err { message; _ }) -> failwith (name ^ ": " ^ message)
    | Ok _ -> failwith (name ^ ": unexpected response")
    | Error msg -> failwith (name ^ ": " ^ msg)
  in
  Printf.printf "%-10s | %10s %10s %8s\n" "circuit" "cold" "warm" "speedup";
  List.iter
    (fun name ->
      let cold, r1 = submit name in
      let warm, r2 = submit name in
      assert (not r1.Proto.cached);
      assert r2.Proto.cached;
      assert (r1.Proto.blif = r2.Proto.blif);
      Printf.printf "%-10s | %8.2fms %8.2fms %7.1fx\n" name (cold *. 1e3)
        (warm *. 1e3)
        (cold /. Float.max 1e-9 warm))
    circuits;
  (match Client.call c Proto.Stats with
  | Ok (Proto.Ok_stats (_, s)) ->
      Printf.printf
        "\n\
         server: %d jobs, %d cache hit(s) / %d miss(es) (%.0f%% hit rate), \
         %d entries, %d bytes\n"
        s.Proto.jobs_served s.Proto.result_hits s.Proto.result_misses
        (100.0
        *. float_of_int s.Proto.result_hits
        /. float_of_int (max 1 (s.Proto.result_hits + s.Proto.result_misses)))
        s.Proto.cache_entries s.Proto.cache_bytes
  | _ -> ());
  ignore (Client.call c Proto.Shutdown);
  Client.close c;
  Domain.join d

(* ------------------------------------------------------------------ *)
(* Bechamel timing benches: one Test.make per table / figure           *)
(* ------------------------------------------------------------------ *)

let timing _quick =
  hr "Timing (Bechamel): one bench per table/figure, small instances";
  let open Bechamel in
  let bench_table1 =
    Test.make ~name:"table1-row rd73 both algorithms"
      (Staged.stage (fun () ->
           let m = Bdd.manager () in
           let spec = (Mcnc.find "rd73").Mcnc.build m in
           let ii = run_driver m (Mulop.config_of Mulop.Mulop_ii) spec in
           let dc = run_driver m (Mulop.config_of Mulop.Mulop_dc) spec in
           ignore
             (Clb.clb_count Clb.First_fit ii + Clb.clb_count Clb.First_fit dc)))
  in
  let bench_table2 =
    Test.make ~name:"table2-row z4ml matching merge"
      (Staged.stage (fun () ->
           let m = Bdd.manager () in
           let spec = (Mcnc.find "z4ml").Mcnc.build m in
           let net = run_driver m (Mulop.config_of Mulop.Mulop_dc) spec in
           ignore (Clb.clb_count Clb.Max_matching net)))
  in
  let bench_figure2 =
    Test.make ~name:"figure2 4-bit adder gates"
      (Staged.stage (fun () ->
           let m = Bdd.manager () in
           let spec = Arith.adder m ~bits:4 in
           ignore (run_driver m (Mulop.config_of ~lut_size:2 Mulop.Mulop_dc) spec)))
  in
  let bench_figure3 =
    Test.make ~name:"figure3 pm_2 gates"
      (Staged.stage (fun () ->
           let m = Bdd.manager () in
           let spec = Arith.partial_multiplier m ~n:2 in
           ignore (run_driver m (Mulop.config_of ~lut_size:2 Mulop.Mulop_dc) spec)))
  in
  let bench_ablation =
    Test.make ~name:"ablation-cell rd84 sym-only"
      (Staged.stage (fun () ->
           let m = Bdd.manager () in
           let spec = (Mcnc.find "rd84").Mcnc.build m in
           let cfg =
             {
               Config.mulop_dc with
               Config.dc_steps =
                 { Config.symmetry = true; sharing = false; cms = false };
             }
           in
           ignore (run_driver m cfg spec)))
  in
  let benches =
    [
      bench_table1; bench_table2; bench_figure2; bench_figure3; bench_ablation;
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analysis = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some (est :: _) -> Printf.printf "  %-40s %12.3f ms/run\n" name (est /. 1e6)
          | Some [] | None -> Printf.printf "  %-40s (no estimate)\n" name)
        analysis)
    benches;
  Printf.printf "(timings are per full decomposition run of the named instance)\n"

(* ------------------------------------------------------------------ *)

let () =
  let run name f =
    let enabled, quick = section_enabled name in
    if enabled then begin
      section_stats := Stats.create ();
      let (), dt = time (fun () -> f quick) in
      Printf.printf "\n[%s stats] wall %.1fs\n%s\n" name dt
        (Format.asprintf "%a" Stats.pp !section_stats)
    end
  in
  Printf.printf
    "mfd benchmark harness — reproduction of C. Scholl, \"Multi-output\n\
     Functional Decomposition with Exploitation of Don't Cares\" (DATE'98)\n";
  run "table1" table1;
  run "table2" table2;
  run "figure2" figure2;
  run "figure3" figure3;
  run "ablation" ablation;
  run "governor" governor;
  run "check" check_overhead;
  run "semantics" semantics_overhead;
  run "robdd" robdd;
  run "batch" batch_scaling;
  run "serve" serve_bench;
  run "timing" timing;
  Printf.printf "\ndone.\n"
