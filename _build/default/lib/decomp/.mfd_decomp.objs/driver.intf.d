lib/decomp/driver.mli: Bdd Config Isf Network
