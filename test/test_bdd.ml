(* Tests for the ROBDD substrate: unit cases plus property tests that
   compare every operation against the dense truth-table oracle [Bv]. *)

let man = Bdd.manager ()

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Random BDD generator paired with its truth table, over [n] variables. *)
let gen_fun n =
  let open QCheck2.Gen in
  let+ bits = list_size (return (1 lsl n)) bool in
  let arr = Array.of_list bits in
  Bv.of_fun n (fun i -> arr.(i))

let bdd_of_bv bv = Bv.to_bdd man bv

let prop name ?(count = 200) gen f = QCheck2.Test.make ~name ~count gen f

let nvars_default = 6

let basic_tests =
  [
    Alcotest.test_case "constants" `Quick (fun () ->
        check_bool "zero is zero" true (Bdd.is_zero (Bdd.zero man));
        check_bool "one is one" true (Bdd.is_one (Bdd.one man));
        check_bool "zero <> one" false (Bdd.equal (Bdd.zero man) (Bdd.one man)));
    Alcotest.test_case "var / nvar" `Quick (fun () ->
        let x = Bdd.var man 0 in
        check_bool "x(1)=1" true (Bdd.eval x (fun _ -> true));
        check_bool "x(0)=0" false (Bdd.eval x (fun _ -> false));
        check_bool "nvar = not var" true
          (Bdd.equal (Bdd.nvar man 0) (Bdd.not_ man x)));
    Alcotest.test_case "hash consing" `Quick (fun () ->
        let a = Bdd.and_ man (Bdd.var man 0) (Bdd.var man 1) in
        let b = Bdd.and_ man (Bdd.var man 1) (Bdd.var man 0) in
        check_bool "structural sharing" true (Bdd.equal a b);
        check_int "same id" (Bdd.id a) (Bdd.id b));
    Alcotest.test_case "de morgan" `Quick (fun () ->
        let x = Bdd.var man 0 and y = Bdd.var man 1 in
        check_bool "not(x/\\y) = notx \\/ noty" true
          (Bdd.equal
             (Bdd.not_ man (Bdd.and_ man x y))
             (Bdd.or_ man (Bdd.not_ man x) (Bdd.not_ man y))));
    Alcotest.test_case "xor of var with itself" `Quick (fun () ->
        let x = Bdd.var man 3 in
        check_bool "x xor x = 0" true (Bdd.is_zero (Bdd.xor man x x)));
    Alcotest.test_case "ite as mux" `Quick (fun () ->
        let s = Bdd.var man 0 and a = Bdd.var man 1 and b = Bdd.var man 2 in
        let mux = Bdd.ite man s a b in
        check_bool "sel=1" true
          (Bdd.eval mux (fun v -> v = 0 || v = 1));
        check_bool "sel=0" false (Bdd.eval mux (fun v -> v = 1 && false)));
    Alcotest.test_case "support" `Quick (fun () ->
        let f =
          Bdd.or_ man
            (Bdd.and_ man (Bdd.var man 1) (Bdd.var man 4))
            (Bdd.var man 2)
        in
        Alcotest.(check (list int)) "support" [ 1; 2; 4 ] (Bdd.support man f);
        check_bool "depends on 4" true (Bdd.depends_on f 4);
        check_bool "not on 0" false (Bdd.depends_on f 0);
        check_bool "not on 3" false (Bdd.depends_on f 3));
    Alcotest.test_case "restrict removes variable" `Quick (fun () ->
        let f = Bdd.xor man (Bdd.var man 0) (Bdd.var man 1) in
        let f0 = Bdd.restrict man f 0 false in
        check_bool "f|x0=0 = x1" true (Bdd.equal f0 (Bdd.var man 1));
        let f1 = Bdd.restrict man f 0 true in
        check_bool "f|x0=1 = not x1" true (Bdd.equal f1 (Bdd.nvar man 1)));
    Alcotest.test_case "exists / forall" `Quick (fun () ->
        let f = Bdd.and_ man (Bdd.var man 0) (Bdd.var man 1) in
        check_bool "exists x0 (x0 /\\ x1) = x1" true
          (Bdd.equal (Bdd.exists man [ 0 ] f) (Bdd.var man 1));
        check_bool "forall x0 (x0 /\\ x1) = 0" true
          (Bdd.is_zero (Bdd.forall man [ 0 ] f)));
    Alcotest.test_case "compose" `Quick (fun () ->
        let f = Bdd.xor man (Bdd.var man 0) (Bdd.var man 1) in
        let g = Bdd.and_ man (Bdd.var man 2) (Bdd.var man 3) in
        let h = Bdd.compose man f 0 g in
        check_bool "compose = xor(and(x2,x3),x1)" true
          (Bdd.equal h (Bdd.xor man g (Bdd.var man 1))));
    Alcotest.test_case "sat_count" `Quick (fun () ->
        let f = Bdd.or_ man (Bdd.var man 0) (Bdd.var man 1) in
        Alcotest.(check (float 0.0)) "or has 3 models over 2 vars" 3.0
          (Bdd.sat_count man f ~nvars:2);
        Alcotest.(check (float 0.0)) "or over 4 vars" 12.0
          (Bdd.sat_count man f ~nvars:4);
        Alcotest.(check (float 0.0)) "x3 over 4 vars" 8.0
          (Bdd.sat_count man (Bdd.var man 3) ~nvars:4));
    Alcotest.test_case "any_sat" `Quick (fun () ->
        let f = Bdd.and_ man (Bdd.nvar man 0) (Bdd.var man 2) in
        let path = Bdd.any_sat f in
        let assignment v = List.assoc_opt v path = Some true in
        check_bool "path satisfies" true (Bdd.eval f assignment);
        check_bool "zero raises" true
          (match Bdd.any_sat (Bdd.zero man) with
          | exception Not_found -> true
          | _ -> false));
    Alcotest.test_case "swap_vars" `Quick (fun () ->
        (* f = x0 /\ not x1: swapping gives x1 /\ not x0 *)
        let f = Bdd.and_ man (Bdd.var man 0) (Bdd.nvar man 1) in
        let g = Bdd.swap_vars man f 0 1 in
        check_bool "swap" true
          (Bdd.equal g (Bdd.and_ man (Bdd.var man 1) (Bdd.nvar man 0))));
    Alcotest.test_case "negate_var" `Quick (fun () ->
        let f = Bdd.and_ man (Bdd.var man 0) (Bdd.var man 1) in
        let g = Bdd.negate_var man f 0 in
        check_bool "negate" true
          (Bdd.equal g (Bdd.and_ man (Bdd.nvar man 0) (Bdd.var man 1))));
    Alcotest.test_case "cofactor_vector indexing" `Quick (fun () ->
        (* f = x1 (second var of the bound list [0;1]): index 1 (x0=0,x1=1)
           and index 3 (x0=1,x1=1) must be one. *)
        let f = Bdd.var man 1 in
        let vec = Bdd.cofactor_vector man f [ 0; 1 ] in
        check_bool "i=0" true (Bdd.is_zero vec.(0));
        check_bool "i=1" true (Bdd.is_one vec.(1));
        check_bool "i=2" true (Bdd.is_zero vec.(2));
        check_bool "i=3" true (Bdd.is_one vec.(3)));
    Alcotest.test_case "of_vector inverse of cofactor_vector" `Quick (fun () ->
        let f =
          Bdd.or_ man
            (Bdd.and_ man (Bdd.var man 0) (Bdd.var man 2))
            (Bdd.xor man (Bdd.var man 1) (Bdd.var man 3))
        in
        let vars = [ 0; 1 ] in
        let vec = Bdd.cofactor_vector man f vars in
        check_bool "roundtrip" true (Bdd.equal (Bdd.of_vector man vars vec) f));
    Alcotest.test_case "minterm_of_code" `Quick (fun () ->
        let mt = Bdd.minterm_of_code man [ 0; 1; 2 ] 0b101 in
        check_bool "101 sat" true
          (Bdd.eval mt (fun v -> v = 0 || v = 2));
        Alcotest.(check (float 0.0)) "single minterm" 1.0
          (Bdd.sat_count man mt ~nvars:3));
    Alcotest.test_case "size of parity chain" `Quick (fun () ->
        let f =
          List.fold_left
            (fun acc v -> Bdd.xor man acc (Bdd.var man v))
            (Bdd.zero man) [ 0; 1; 2; 3; 4; 5; 6; 7 ]
        in
        (* Parity has 2 nodes per level except the last. *)
        check_int "parity size" 15 (Bdd.size f));
    Alcotest.test_case "to_dot produces a digraph" `Quick (fun () ->
        let f = Bdd.and_ man (Bdd.var man 0) (Bdd.var man 1) in
        let dot = Bdd.to_dot [ f ] in
        check_bool "digraph" true
          (String.length dot > 10 && String.sub dot 0 7 = "digraph"));
  ]

(* Properties against the truth-table oracle. *)
let oracle_props =
  let n = nvars_default in
  let gen2 = QCheck2.Gen.pair (gen_fun n) (gen_fun n) in
  let gen3 = QCheck2.Gen.triple (gen_fun n) (gen_fun n) (gen_fun n) in
  [
    prop "of_bdd . to_bdd = id" (gen_fun n) (fun bv ->
        Bv.equal bv (Bv.of_bdd n (bdd_of_bv bv)));
    prop "and agrees with oracle" gen2 (fun (a, b) ->
        Bv.equal (Bv.and_ a b)
          (Bv.of_bdd n (Bdd.and_ man (bdd_of_bv a) (bdd_of_bv b))));
    prop "or agrees with oracle" gen2 (fun (a, b) ->
        Bv.equal (Bv.or_ a b)
          (Bv.of_bdd n (Bdd.or_ man (bdd_of_bv a) (bdd_of_bv b))));
    prop "xor agrees with oracle" gen2 (fun (a, b) ->
        Bv.equal (Bv.xor a b)
          (Bv.of_bdd n (Bdd.xor man (bdd_of_bv a) (bdd_of_bv b))));
    prop "not agrees with oracle" (gen_fun n) (fun a ->
        Bv.equal (Bv.not_ a) (Bv.of_bdd n (Bdd.not_ man (bdd_of_bv a))));
    prop "ite agrees with oracle" gen3 (fun (a, b, c) ->
        let expected = Bv.or_ (Bv.and_ a b) (Bv.and_ (Bv.not_ a) c) in
        Bv.equal expected
          (Bv.of_bdd n
             (Bdd.ite man (bdd_of_bv a) (bdd_of_bv b) (bdd_of_bv c))));
    prop "canonicity: equal truth tables give equal nodes" gen2 (fun (a, b) ->
        Bv.equal a b = Bdd.equal (bdd_of_bv a) (bdd_of_bv b));
    prop "restrict agrees with cofactor"
      QCheck2.Gen.(triple (gen_fun n) (int_range 0 (n - 1)) bool)
      (fun (a, v, b) ->
        Bv.equal (Bv.cofactor a v b)
          (Bv.of_bdd n (Bdd.restrict man (bdd_of_bv a) v b)));
    prop "sat_count agrees with count_ones" (gen_fun n) (fun a ->
        int_of_float (Bdd.sat_count man (bdd_of_bv a) ~nvars:n)
        = Bv.count_ones a);
    prop "swap_vars is an involution"
      QCheck2.Gen.(triple (gen_fun n) (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      (fun (a, i, j) ->
        let f = bdd_of_bv a in
        Bdd.equal f (Bdd.swap_vars man (Bdd.swap_vars man f i j) i j));
    prop "swap_vars agrees with index swap"
      QCheck2.Gen.(triple (gen_fun n) (int_range 0 (n - 1)) (int_range 0 (n - 1)))
      (fun (a, i, j) ->
        let swapped_bv =
          Bv.of_fun n (fun idx ->
              let bi = (idx lsr i) land 1 and bj = (idx lsr j) land 1 in
              let idx = idx land lnot (1 lsl i) land lnot (1 lsl j) in
              Bv.get a (idx lor (bj lsl i) lor (bi lsl j)))
        in
        Bv.equal swapped_bv (Bv.of_bdd n (Bdd.swap_vars man (bdd_of_bv a) i j)));
    prop "negate_var agrees with index flip"
      QCheck2.Gen.(pair (gen_fun n) (int_range 0 (n - 1)))
      (fun (a, v) ->
        let flipped = Bv.of_fun n (fun idx -> Bv.get a (idx lxor (1 lsl v))) in
        Bv.equal flipped (Bv.of_bdd n (Bdd.negate_var man (bdd_of_bv a) v)));
    prop "exists = or of cofactors"
      QCheck2.Gen.(pair (gen_fun n) (int_range 0 (n - 1)))
      (fun (a, v) ->
        let expected = Bv.or_ (Bv.cofactor a v false) (Bv.cofactor a v true) in
        Bv.equal expected (Bv.of_bdd n (Bdd.exists man [ v ] (bdd_of_bv a))));
    prop "support is sound and complete" (gen_fun n) (fun a ->
        let f = bdd_of_bv a in
        let sup = Bdd.support man f in
        List.for_all
          (fun v ->
            let dependent = not (Bv.equal (Bv.cofactor a v false) (Bv.cofactor a v true)) in
            dependent = List.mem v sup)
          [ 0; 1; 2; 3; 4; 5 ]);
    prop "of_vector rebuilds from cofactor_vector"
      (gen_fun n)
      (fun a ->
        let f = bdd_of_bv a in
        let vars = [ 1; 3; 4 ] in
        let vec = Bdd.cofactor_vector man f vars in
        Bdd.equal f (Bdd.of_vector man vars vec));
    prop "compose agrees with oracle substitution"
      QCheck2.Gen.(pair (gen_fun n) (gen_fun n))
      (fun (a, b) ->
        (* substitute variable 0 by g(x1..x5): make g independent of x0 *)
        let g_bv = Bv.cofactor b 0 false in
        let expected =
          Bv.of_fun n (fun idx ->
              let gval = Bv.get g_bv idx in
              let idx' = if gval then idx lor 1 else idx land lnot 1 in
              Bv.get a idx')
        in
        Bv.equal expected
          (Bv.of_bdd n (Bdd.compose man (bdd_of_bv a) 0 (bdd_of_bv g_bv))));
  ]

let suite =
  basic_tests
  @ List.map (fun p -> QCheck_alcotest.to_alcotest ~long:false p) oracle_props
