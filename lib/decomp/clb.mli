(** Merging LUTs into Xilinx XC3000 CLBs.

    A CLB realizes either one function of up to five inputs, or two
    functions of up to four inputs each that together use at most five
    distinct inputs.  Pairing LUTs to minimize the CLB count is a
    maximum-cardinality matching problem on the "mergeable" graph
    (Murgai et al., DAC'90); the paper's [mulop-dc] uses a simple
    first-fit pairing, [mulop-dcII] the exact matching.

    Every entry point takes the LUT size [k] (default 5, the XC3000):
    the pairing rule generalizes to two functions of up to [k - 1]
    inputs sharing at most [k] distinct inputs, so CLB counts stay
    meaningful for the k = 4 and k = 6 experiments. *)

type policy = First_fit | Max_matching

val mergeable :
  ?lut_size:int -> Network.t -> Network.signal -> Network.signal -> bool
(** Can the two LUTs share one CLB of the given size? *)

val pairs :
  ?lut_size:int ->
  policy ->
  Network.t ->
  (Network.signal * Network.signal) list

val pairs_with_lut_count :
  ?lut_size:int ->
  policy ->
  Network.t ->
  (Network.signal * Network.signal) list * int
(** The merged pairs together with the network's LUT count, from a
    single construction of the (quadratic) merge graph — for callers
    that need both the pairing and the CLB count. *)

val clb_count : ?lut_size:int -> policy -> Network.t -> int
(** [lut_count - number of merged pairs].  Derived from
    {!pairs_with_lut_count}; one merge-graph construction. *)
