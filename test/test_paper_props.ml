(* Property tests for the paper's structural theorems:

   - Section 4: strict decomposition functions preserve symmetries —
     if f is symmetric in a pair of bound variables, every decomposition
     function our step produces is symmetric in that pair.
   - Section 5: codes that do not occur in the image of alpha are don't
     cares of the composition function g.
   - Section 5, step 2: ceil(log2 ncc(f,B)) is a lower bound on the
     total number of decomposition functions, and at most the sum of the
     per-output numbers.
   - Section 5, step 3: the per-output assignment cannot increase the
     joint lower bound. *)

let man = Bdd.manager ()
let check_bool = Alcotest.(check bool)

let gen_fun n =
  let open QCheck2.Gen in
  let+ bits = list_size (return (1 lsl n)) bool in
  let arr = Array.of_list bits in
  Bv.of_fun n (fun i -> arr.(i))

let fresh_var_gen () =
  let next = ref (-1000) in
  fun () ->
    let v = !next in
    decr next;
    v

(* Symmetrize a random function in variables 0 and 1 by construction. *)
let symmetric_in_01 bv =
  let n = Bv.nvars bv in
  Bv.of_fun n (fun i ->
      let b0 = i land 1 and b1 = (i lsr 1) land 1 in
      let lo = min b0 b1 and hi = max b0 b1 in
      Bv.get bv (i land lnot 3 lor lo lor (hi lsl 1)))

let props =
  [
    QCheck2.Test.make ~name:"strict alphas preserve bound-set symmetries"
      ~count:100 (gen_fun 5)
      (fun bv ->
        let bv = symmetric_in_01 bv in
        let f = Bv.to_bdd man bv in
        (* f is symmetric in (0,1); bound = {0,1,2} *)
        let isfs = [| Isf.of_csf man f |] in
        let result =
          Step.run man Config.mulop_dc ~fresh_var:(fresh_var_gen ()) isfs
            ~bound:[ 0; 1; 2 ]
        in
        List.for_all
          (fun a -> Bdd.equal a.Step.func (Bdd.swap_vars man a.Step.func 0 1))
          result.Step.alphas);
    QCheck2.Test.make ~name:"unused codes are don't cares of g" ~count:100
      (gen_fun 5)
      (fun bv ->
        let f = Bv.to_bdd man bv in
        let isfs = [| Isf.of_csf man f |] in
        let result =
          Step.run man Config.mulop_dc ~fresh_var:(fresh_var_gen ()) isfs
            ~bound:[ 0; 1; 2 ]
        in
        match result.Step.alphas with
        | [] -> true
        | alphas ->
            let g = result.Step.g.(0) in
            let vars = List.map (fun a -> a.Step.var) alphas in
            let image_codes =
              (* codes reachable as alpha(vertex) *)
              List.init 8 (fun vertex ->
                  List.fold_left
                    (fun acc a ->
                      let bit =
                        Bdd.eval a.Step.func (fun v ->
                            (* bound vars are 0,1,2; vertex bit for var v
                               with list [0;1;2]: first var = MSB *)
                            (vertex lsr (2 - v)) land 1 = 1)
                      in
                      (acc lsl 1) lor Bool.to_int bit)
                    0 alphas)
              |> List.sort_uniq compare
            in
            List.for_all
              (fun code ->
                if List.mem code image_codes then true
                else begin
                  (* the whole cofactor of g at this code must be dc *)
                  let assign =
                    List.mapi
                      (fun k v ->
                        (v, (code lsr (List.length vars - 1 - k)) land 1 = 1))
                      vars
                  in
                  let dc_cof =
                    List.fold_left
                      (fun acc (v, b) -> Bdd.restrict man acc v b)
                      (Isf.dc g) assign
                  in
                  Bdd.is_one dc_cof
                end)
              (List.init (1 lsl List.length vars) Fun.id));
    QCheck2.Test.make ~name:"joint lower bound brackets the alpha count"
      ~count:100
      (QCheck2.Gen.pair (gen_fun 5) (gen_fun 5))
      (fun (b1, b2) ->
        let isfs = [| Isf.of_csf man (Bv.to_bdd man b1); Isf.of_csf man (Bv.to_bdd man b2) |] in
        let result =
          Step.run man Config.mulop_dc ~fresh_var:(fresh_var_gen ()) isfs
            ~bound:[ 0; 2; 4 ]
        in
        let total = List.length result.Step.alphas in
        let sum_r = Array.fold_left ( + ) 0 result.Step.r in
        let lower = Step.total_alpha_lower_bound result in
        lower <= total && total <= sum_r);
    QCheck2.Test.make ~name:"per-output r matches ceil(log2 K) and r <= |B|"
      ~count:100 (gen_fun 6)
      (fun bv ->
        let f = Bv.to_bdd man bv in
        let isfs = [| Isf.of_csf man f |] in
        let result =
          Step.run man Config.mulop_dc ~fresh_var:(fresh_var_gen ()) isfs
            ~bound:[ 0; 1; 2; 3 ]
        in
        result.Step.r.(0) <= 4);
    QCheck2.Test.make
      ~name:"dc exploitation never exceeds the csf class count" ~count:100
      (QCheck2.Gen.pair (gen_fun 5) (gen_fun 5))
      (fun (on_bv, dc_sel) ->
        (* an ISF whose dc set is carved out of the on/off sets *)
        let on0 = Bv.to_bdd man on_bv in
        let dc = Bv.to_bdd man dc_sel in
        let on = Bdd.diff man on0 dc in
        let isf = Isf.make man ~on ~dc in
        let bound = [ 0; 1; 2 ] in
        let result =
          Step.run man Config.mulop_dc ~fresh_var:(fresh_var_gen ()) [| isf |]
            ~bound
        in
        (* the dc-exploited class count is at most the count of the
           arbitrary extension on0 *)
        let csf_classes = Classes.ncc_csf man [ on0 ] bound in
        result.Step.joint_classes <= csf_classes);
  ]

let suite = List.map (fun p -> QCheck_alcotest.to_alcotest ~long:false p) props
