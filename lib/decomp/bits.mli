(** Small integer helpers shared across the decomposition modules. *)

val ceil_log2 : int -> int
(** [ceil_log2 k] is the smallest [b] with [2^b >= k] ([0] for [k <= 1]).
    The number of code bits needed to distinguish [k] classes. *)
