lib/logic/bvec.mli: Bdd
