(* Table 1 scenario: map benchmark circuits onto the Xilinx XC3000
   (5-input LUTs, 2-output CLBs) and compare the CLB counts of the
   mulopII baseline (all don't cares assigned 0) against mulop-dc (the
   paper's three-step don't-care assignment).

   Run with:  dune exec examples/fpga_mapping.exe [name ...]
   Without arguments a representative subset of Table 1 is used. *)

let default_names = [ "rd73"; "rd84"; "9sym"; "z4ml"; "5xp1"; "alu2"; "clip" ]

let () =
  let names =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as rest) -> rest
    | _ :: [] | [] -> default_names
  in
  Format.printf "%-8s %6s %6s %9s %9s %7s@." "circuit" "in" "out" "mulopII"
    "mulop-dc" "gain";
  let total_ii = ref 0 and total_dc = ref 0 in
  List.iter
    (fun name ->
      match Mcnc.find name with
      | exception Not_found -> Format.printf "%-8s (unknown benchmark)@." name
      | entry ->
          let m = Bdd.manager () in
          let spec = entry.Mcnc.build m in
          let run alg = Mulop.run m alg spec in
          let ii = run Mulop.Mulop_ii in
          let dc = run Mulop.Mulop_dc in
          assert (Driver.verify m spec ii.Mulop.network);
          assert (Driver.verify m spec dc.Mulop.network);
          total_ii := !total_ii + ii.Mulop.clb_count;
          total_dc := !total_dc + dc.Mulop.clb_count;
          let gain =
            100.0
            *. (1.0
               -. (float_of_int dc.Mulop.clb_count
                  /. float_of_int (max 1 ii.Mulop.clb_count)))
          in
          Format.printf "%-8s %6d %6d %9d %9d %6.1f%%@." name entry.Mcnc.ninputs
            entry.Mcnc.noutputs ii.Mulop.clb_count dc.Mulop.clb_count gain)
    names;
  Format.printf "%-8s %6s %6s %9d %9d %6.1f%%@." "total" "" "" !total_ii
    !total_dc
    (100.0 *. (1.0 -. (float_of_int !total_dc /. float_of_int (max 1 !total_ii))))
