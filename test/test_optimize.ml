(* The verified rewrite loop: networks with redundancy the structural
   passes cannot see must shrink, the audit guard must hold on every
   outcome, and optimization must never increase the LUT count. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tt bits =
  let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
  Bv.of_fun (log2 (String.length bits)) (fun i -> bits.[i] = '1')

let var_of_input_of net =
  let tbl = Hashtbl.create 8 in
  List.iteri (fun k (name, _) -> Hashtbl.add tbl name k) (Network.inputs net);
  fun name -> Hashtbl.find tbl name

let audit_inputs net =
  List.mapi (fun k (name, _) -> (name, k)) (Network.inputs net)

(* Independent equivalence check of an optimize outcome against a fresh
   copy of the input network (full care). *)
let equivalent golden outcome =
  let m = Bdd.manager () in
  Semantics.audit m ~inputs:(audit_inputs golden) ~golden
    ~candidate:outcome.Optimize.network
  = []

(* The dc_dups example: e and n are complements, so LUTs over (e, n)
   never see the codes 00 and 11.  p (= e and not n) and q (= e or not
   n) are structurally distinct but both compute plain e on every
   reachable code. *)
let dups_net () =
  let net = Network.create () in
  let a = Network.add_input net "a"
  and b = Network.add_input net "b"
  and c = Network.add_input net "c" in
  let e = Network.add_lut net ~fanins:[ a; b ] ~tt:(tt "1001") in
  let n = Network.add_lut net ~fanins:[ a; b ] ~tt:(tt "0110") in
  let p = Network.add_lut net ~fanins:[ e; n ] ~tt:(tt "0100") in
  let q = Network.add_lut net ~fanins:[ e; n ] ~tt:(tt "1101") in
  Network.set_output net "x" (Network.and_gate net p c);
  Network.set_output net "y" (Network.or_gate net q c);
  net

(* The dc_dead example: d = e and n is constant 0 because e and n are
   complements, so f = (not d) and c collapses to a wire from c and the
   whole n cone dies. *)
let dead_net () =
  let net = Network.create () in
  let a = Network.add_input net "a"
  and b = Network.add_input net "b"
  and c = Network.add_input net "c" in
  let e = Network.add_lut net ~fanins:[ a; b ] ~tt:(tt "1001") in
  let n = Network.add_lut net ~fanins:[ a; b ] ~tt:(tt "0110") in
  let d = Network.add_lut net ~fanins:[ e; n ] ~tt:(tt "0001") in
  Network.set_output net "f"
    (Network.add_lut net ~fanins:[ d; c ] ~tt:(tt "0010"));
  Network.set_output net "g" (Network.and_gate net e c);
  net

let luts net = (Network.stats net).Network.lut_count

let unit_tests =
  [
    Alcotest.test_case "DC-hidden duplicates merge" `Quick (fun () ->
        let m = Bdd.manager () in
        let o = Optimize.run m (dups_net ()) in
        check_int "before" 6 o.Optimize.luts_before;
        check_int "after" 3 o.Optimize.luts_after;
        check_bool "audit clean" true (o.Optimize.audit = []);
        check_bool "rewrites recorded" true (o.Optimize.actions <> []);
        check_bool "equivalent" true (equivalent (dups_net ()) o));
    Alcotest.test_case "constant cone folds away" `Quick (fun () ->
        let m = Bdd.manager () in
        let o = Optimize.run m (dead_net ()) in
        check_int "before" 5 o.Optimize.luts_before;
        check_int "after" 2 o.Optimize.luts_after;
        check_bool "audit clean" true (o.Optimize.audit = []);
        check_bool "equivalent" true (equivalent (dead_net ()) o));
    Alcotest.test_case "optimization reaches a fixpoint" `Quick (fun () ->
        let m = Bdd.manager () in
        let once = Optimize.run m (dups_net ()) in
        let twice = Optimize.run m once.Optimize.network in
        check_int "no further passes" 0 twice.Optimize.passes;
        check_bool "no further actions" true (twice.Optimize.actions = []);
        check_int "luts stable" once.Optimize.luts_after
          twice.Optimize.luts_after);
    Alcotest.test_case "empty care set disables rewriting" `Quick (fun () ->
        (* With nothing cared for, every rewrite would be justified —
           and none is trustworthy.  The loop must refuse to touch the
           network rather than optimize it into an arbitrary one. *)
        let m = Bdd.manager () in
        let o =
          Optimize.run ~care_of_output:(fun _ -> Bdd.zero m) m (dups_net ())
        in
        check_int "no passes" 0 o.Optimize.passes;
        check_int "luts unchanged" o.Optimize.luts_before o.Optimize.luts_after);
    Alcotest.test_case "SAT audit engine accepts the same wins" `Quick
      (fun () ->
        (* The dc_dups rewrites preserve the global functions exactly
           (the differing rows are unreachable), so the stricter SAT
           miter must accept them too. *)
        let m = Bdd.manager () in
        let o = Optimize.run ~audit_engine:`Sat m (dups_net ()) in
        check_int "after" 3 o.Optimize.luts_after;
        check_bool "audit clean" true (o.Optimize.audit = []));
    Alcotest.test_case "stats mirror the analysis counters" `Quick (fun () ->
        let m = Bdd.manager () in
        let stats = Stats.create () in
        ignore (Optimize.run ~stats m (dups_net ()));
        check_bool "sem nodes counted" true (stats.Stats.sem_nodes > 0));
  ]

(* ---- properties ---- *)

let props =
  [
    QCheck2.Test.make
      ~name:"optimize never increases LUTs and preserves the functions"
      ~count:30
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        let net =
          Randnet.cones ~ninputs:5 ~noutputs:3 ~window:4 ~gates_per_output:6
            ~seed ()
        in
        let golden =
          Randnet.cones ~ninputs:5 ~noutputs:3 ~window:4 ~gates_per_output:6
            ~seed ()
        in
        let m = Bdd.manager () in
        let o = Optimize.run m net in
        o.Optimize.luts_after <= o.Optimize.luts_before
        && o.Optimize.audit = []
        && equivalent golden o);
    QCheck2.Test.make
      ~name:"decomposed networks optimize to audited-equivalent networks"
      ~count:10
      QCheck2.Gen.(
        pair
          (list_size (return 64) bool)
          (list_size (return 64) bool))
      (fun (bits1, bits2) ->
        (* decompose a random two-output spec, then optimize the result:
           the outcome must still realize the decomposed functions. *)
        let bv bits =
          let arr = Array.of_list bits in
          Bv.of_fun 6 (fun i -> arr.(i))
        in
        let m = Bdd.manager () in
        let names = List.init 6 (fun i -> Printf.sprintf "x%d" i) in
        let spec =
          Driver.spec_of_csf m names
            [ ("f", Bv.to_bdd m (bv bits1)); ("g", Bv.to_bdd m (bv bits2)) ]
        in
        let r = Driver.decompose_report m spec in
        let golden = r.Driver.network in
        let o = Optimize.run m golden in
        o.Optimize.luts_after <= o.Optimize.luts_before
        && o.Optimize.audit = []
        && Semantics.audit m ~inputs:(audit_inputs golden) ~golden
             ~candidate:o.Optimize.network
           = []);
    QCheck2.Test.make
      ~name:"care-set don't cares only ever help"
      ~count:15
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        (* Optimizing with a restricted care set can only allow more
           rewrites than full care, never fewer LUTs removed — and the
           result must still match the input ON the care set. *)
        let fresh () =
          Randnet.cones ~ninputs:5 ~noutputs:2 ~window:4 ~gates_per_output:5
            ~seed ()
        in
        let net = fresh () in
        let m = Bdd.manager () in
        (* care = x0 (don't care whenever x0 = 0) *)
        let care = Bdd.var m 0 in
        let o = Optimize.run ~care_of_output:(fun _ -> care) m net in
        let golden = fresh () in
        let full = Optimize.run m (fresh ()) in
        o.Optimize.luts_after <= full.Optimize.luts_after
        && o.Optimize.audit = []
        && Semantics.audit
             ~care_of_output:(fun _ -> care)
             m ~inputs:(audit_inputs golden) ~golden
             ~candidate:o.Optimize.network
           = []);
  ]

let suite =
  unit_tests @ List.map (fun p -> QCheck_alcotest.to_alcotest ~long:false p) props
