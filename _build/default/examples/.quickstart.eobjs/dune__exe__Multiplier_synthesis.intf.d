examples/multiplier_synthesis.mli:
