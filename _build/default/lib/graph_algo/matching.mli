(** Maximum cardinality matching in general graphs (blossom algorithm,
    O(V^3)).  Used to merge LUTs into XC3000 CLBs, following Murgai et
    al. (DAC'90) as cited by the paper for the [mulop-dcII] flow. *)

val maximum : Ugraph.t -> (int * int) list
(** A maximum matching, each pair with [fst < snd]. *)

val greedy : Ugraph.t -> (int * int) list
(** A maximal (not maximum) matching obtained by scanning edges in
    order — the simpler merge policy of the [mulop-dc] flow. *)

val size : (int * int) list -> int
val is_matching : Ugraph.t -> (int * int) list -> bool
