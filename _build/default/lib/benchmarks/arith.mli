(** Arithmetic specification functions of the paper's Section 6.1:
    adders and partial multipliers, plus the arithmetic MCNC circuits
    with public functional definitions.  All are returned as
    {!Driver.spec} values (BDD-backed, completely specified). *)

val adder : Bdd.manager -> bits:int -> Driver.spec
(** The paper's Figure 2 function: two [bits]-bit operands
    [x], [y], outputs [f0 .. f(bits-1)] (sum modulo [2^bits]). *)

val adder_with_carry : Bdd.manager -> bits:int -> Driver.spec
(** As {!adder} with a carry-out output [f(bits)]. *)

val partial_multiplier : Bdd.manager -> n:int -> Driver.spec
(** The paper's Figure 3 function [pm_n]: the [n^2] partial-product bits
    [p_{i,j}] are primary inputs, the outputs are the [2n] product bits
    [r_k = bits of sum p_{i,j} 2^(i+j)]. *)

val rd : Bdd.manager -> inputs:int -> Driver.spec
(** Rate detector [rdXY] (rd53, rd73, rd84): outputs are the binary
    weight of the inputs. *)

val sym9 : Bdd.manager -> Driver.spec
(** [9sym]: 1 iff the input weight is between 3 and 6. *)

val z4ml : Bdd.manager -> Driver.spec
(** 3-bit + 3-bit + carry-in adder (7 inputs, 4 outputs). *)

val x5p1 : Bdd.manager -> Driver.spec
(** Stand-in for [5xp1] (7 inputs, 10 outputs): [5*v + v/8]. *)

val f51m : Bdd.manager -> Driver.spec
(** Stand-in for [f51m] (8 inputs, 8 outputs): low byte of [a*b + a]
    for two 4-bit operands. *)

val clip : Bdd.manager -> Driver.spec
(** Stand-in for [clip] (9 inputs, 5 outputs): signed saturation of a
    9-bit value to 5 bits. *)

val alu2 : Bdd.manager -> Driver.spec
(** Stand-in for [alu2] (10 inputs, 6 outputs): a 4-bit ALU
    (add/sub/and/xor) with carry and zero flags. *)

val count : Bdd.manager -> Driver.spec
(** Stand-in for [count] (35 inputs, 16 outputs): conditional
    increment / load / clear of a 16-bit word. *)

val c499 : Bdd.manager -> Driver.spec
(** Stand-in for [C499] (41 inputs, 32 outputs): single-error
    correction of a 32-bit word with 8 syndrome bits and an enable. *)
