lib/decomp/clb.ml: Array List Matching Network Ugraph
