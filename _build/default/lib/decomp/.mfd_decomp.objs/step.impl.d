lib/decomp/step.ml: Array Bdd Classes Coloring Config Encode Fun Hashtbl Isf List Logs Ugraph Unix
