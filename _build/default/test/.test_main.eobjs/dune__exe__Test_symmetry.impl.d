test/test_symmetry.ml: Alcotest Array Bdd Bv Isf List QCheck2 QCheck_alcotest Random Symmetry
