(* Tests for the graph substrate: coloring and blossom matching, checked
   against exhaustive brute force on small random graphs. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Exhaustive maximum matching size by trying all subsets of edges. *)
let brute_matching_size g =
  let es = Array.of_list (Ugraph.edges g) in
  let best = ref 0 in
  let used = Array.make (Ugraph.n g) false in
  (* take-or-skip on each edge *)
  let rec go idx count =
    if idx = Array.length es then best := max !best count
    else begin
      let i, j = es.(idx) in
      if (not used.(i)) && not used.(j) then begin
        used.(i) <- true;
        used.(j) <- true;
        go (idx + 1) (count + 1);
        used.(i) <- false;
        used.(j) <- false
      end;
      go (idx + 1) count
    end
  in
  go 0 0;
  !best

(* Exhaustive chromatic number for tiny graphs. *)
let brute_chromatic g =
  let size = Ugraph.n g in
  if size = 0 then 0
  else
    let colors = Array.make size (-1) in
    let rec feasible k idx =
      if idx = size then true
      else
        let ok = ref false in
        let c = ref 0 in
        while (not !ok) && !c < k do
          if List.for_all (fun w -> colors.(w) <> !c) (Ugraph.neighbours g idx)
          then begin
            colors.(idx) <- !c;
            if feasible k (idx + 1) then ok := true;
            colors.(idx) <- -1
          end;
          incr c
        done;
        !ok
    in
    let rec find k = if feasible k 0 then k else find (k + 1) in
    find 1

let unit_tests =
  [
    Alcotest.test_case "triangle needs 3 colors" `Quick (fun () ->
        let g = Ugraph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
        check_int "dsatur" 3 (Coloring.color_count (Coloring.dsatur g));
        check_bool "proper" true (Coloring.is_proper g (Coloring.dsatur g)));
    Alcotest.test_case "even cycle is 2-chromatic (exact)" `Quick (fun () ->
        let g = Ugraph.of_edges 6 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (5, 0) ] in
        match Coloring.exact g with
        | Some colors ->
            check_int "chromatic" 2 (Coloring.color_count colors);
            check_bool "proper" true (Coloring.is_proper g colors)
        | None -> Alcotest.fail "exact gave up on a 6-cycle");
    Alcotest.test_case "odd cycle matching (blossom case)" `Quick (fun () ->
        (* A 5-cycle has maximum matching 2; a naive bipartite augmenter
           can get stuck, the blossom algorithm must not. *)
        let g = Ugraph.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] in
        let mm = Matching.maximum g in
        check_bool "is matching" true (Matching.is_matching g mm);
        check_int "size" 2 (Matching.size mm));
    Alcotest.test_case "two triangles joined: matching 3" `Quick (fun () ->
        let g =
          Ugraph.of_edges 6
            [ (0, 1); (1, 2); (0, 2); (3, 4); (4, 5); (3, 5); (2, 3) ]
        in
        check_int "size" 3 (Matching.size (Matching.maximum g)));
    Alcotest.test_case "petersen graph has a perfect matching" `Quick (fun () ->
        let outer = [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] in
        let spokes = [ (0, 5); (1, 6); (2, 7); (3, 8); (4, 9) ] in
        let inner = [ (5, 7); (7, 9); (9, 6); (6, 8); (8, 5) ] in
        let g = Ugraph.of_edges 10 (outer @ spokes @ inner) in
        check_int "perfect" 5 (Matching.size (Matching.maximum g)));
    Alcotest.test_case "complement" `Quick (fun () ->
        let g = Ugraph.of_edges 4 [ (0, 1) ] in
        let c = Ugraph.complement g in
        check_bool "no 01" false (Ugraph.has_edge c 0 1);
        check_bool "02" true (Ugraph.has_edge c 0 2);
        check_int "edges" 5 (List.length (Ugraph.edges c)));
    Alcotest.test_case "greedy matching is maximal" `Quick (fun () ->
        let st = Random.State.make [| 3 |] in
        let g = Ugraph.random 12 0.3 st in
        let mm = Matching.greedy g in
        check_bool "is matching" true (Matching.is_matching g mm);
        let matched = Array.make 12 false in
        List.iter
          (fun (i, j) ->
            matched.(i) <- true;
            matched.(j) <- true)
          mm;
        (* maximal: no edge with both endpoints free *)
        check_bool "maximal" true
          (List.for_all
             (fun (i, j) -> matched.(i) || matched.(j))
             (Ugraph.edges g)));
  ]

let props =
  let gen_graph nmax =
    let open QCheck2.Gen in
    let* size = int_range 1 nmax in
    let* p = float_range 0.0 1.0 in
    let+ seed = int_bound 1_000_000 in
    (size, p, seed)
  in
  [
    QCheck2.Test.make ~name:"blossom matches brute force" ~count:150
      (gen_graph 9)
      (fun (size, p, seed) ->
        let g = Ugraph.random size p (Random.State.make [| seed |]) in
        let mm = Matching.maximum g in
        Matching.is_matching g mm && Matching.size mm = brute_matching_size g);
    QCheck2.Test.make ~name:"exact coloring matches brute force" ~count:80
      (gen_graph 7)
      (fun (size, p, seed) ->
        let g = Ugraph.random size p (Random.State.make [| seed |]) in
        match Coloring.exact g with
        | None -> true
        | Some colors ->
            Coloring.is_proper g colors
            && Coloring.color_count colors = brute_chromatic g);
    QCheck2.Test.make ~name:"dsatur is proper and >= chromatic" ~count:100
      (gen_graph 8)
      (fun (size, p, seed) ->
        let g = Ugraph.random size p (Random.State.make [| seed |]) in
        let colors = Coloring.dsatur g in
        Coloring.is_proper g colors
        && Coloring.color_count colors >= brute_chromatic g);
    QCheck2.Test.make ~name:"greedy coloring proper in any order" ~count:100
      (gen_graph 10)
      (fun (size, p, seed) ->
        let g = Ugraph.random size p (Random.State.make [| seed |]) in
        let order = List.init size (fun v -> size - 1 - v) in
        Coloring.is_proper g (Coloring.greedy g order));
    QCheck2.Test.make ~name:"blossom >= greedy" ~count:100 (gen_graph 14)
      (fun (size, p, seed) ->
        let g = Ugraph.random size p (Random.State.make [| seed |]) in
        Matching.size (Matching.maximum g) >= Matching.size (Matching.greedy g));
  ]

let suite = unit_tests @ List.map (fun p -> QCheck_alcotest.to_alcotest ~long:false p) props
