(* Figure 2 scenario: automatic synthesis of an 8-bit adder from
   two-input gates, compared against the hand-designed conditional-sum
   adder [Sklansky 1960].

   The paper reports 49 two-input gates for the automatically generated
   realization against 90 gates for the conditional-sum adder; the
   decomposition rediscovers a conditional-sum-like structure because
   the don't-care assignment (Section 5) makes the carry-select
   subfunctions coincide.

   Run with:  dune exec examples/adder_synthesis.exe [bits] *)

let () =
  let bits =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 8
  in
  let m = Bdd.manager () in
  let spec = Arith.adder m ~bits in

  Format.printf "=== %d-bit adder, two-input gate synthesis ===@.@." bits;

  (* The reference point: a conditional-sum adder built structurally. *)
  let cond_sum = Circuits.conditional_sum_adder ~bits in
  let cs_stats = Network.stats cond_sum in
  Format.printf "conditional-sum adder  : %d two-input gates, depth %d@."
    cs_stats.Network.lut_count cs_stats.Network.depth;

  (* Check the reference adder actually adds. *)
  let var_of_input name =
    let k = int_of_string (String.sub name 1 (String.length name - 1)) in
    if name.[0] = 'x' then k else bits + k
  in
  assert (
    Network.equivalent_to_spec cond_sum m ~var_of_input
      (List.map (fun (n, f) -> (n, Isf.on f)) spec.Driver.functions));

  (* Automatic synthesis: decomposition with the 3-step DC assignment. *)
  let synth name alg =
    let o = Mulop.run ~lut_size:2 m alg spec in
    let st = Network.stats o.Mulop.network in
    Format.printf "%s: %d two-input gates, depth %d@." name
      st.Network.lut_count st.Network.depth;
    assert (Driver.verify m spec o.Mulop.network);
    st.Network.lut_count
  in
  let with_dc = synth "mulop-dc (with DCs)   " Mulop.Mulop_dc in
  let without = synth "mulopII  (DCs := 0)   " Mulop.Mulop_ii in
  Format.printf "@.paper reference: 49 gates (mulop-dc) vs 90 (conditional-sum)@.";
  Format.printf "measured       : %d gates (mulop-dc) vs %d (conditional-sum), %d without DCs@."
    with_dc cs_stats.Network.lut_count without;
  if with_dc < cs_stats.Network.lut_count then
    Format.printf "=> the automatic realization beats the conditional-sum adder@."
