(** Compatible classes of bound-set vertices (Roth/Karp), for vectors of
    incompletely specified functions.

    Given a bound set [B] of size [p], the [2^p] assignments of the bound
    variables are the {e vertices}.  Two vertices are compatible for
    output [i] if the cofactors of [f_i] at the two vertices admit a
    common extension; they are {e jointly} compatible if this holds for
    every output.  For completely specified functions compatibility is
    equality of cofactors and the classes are the classical compatible
    classes, whose count [ncc] determines the minimum number
    [ceil(log2 ncc)] of decomposition functions. *)

type t = {
  bound : int list;  (** ascending *)
  nitems : int;
  node_of_vertex : int array;
      (** vertex (index into the cofactor vector, first bound variable =
          most significant bit) to deduplicated node *)
  node_cof : Isf.t array array;
      (** [node_cof.(node).(item)] — per-item cofactor of the node *)
}

val nnodes : t -> int
val nvertices : t -> int

val cofactor_matrix : Bdd.manager -> Isf.t list -> int list -> t
(** Cofactor every function w.r.t. the (ascending) bound set and
    deduplicate vertices with identical cofactor tuples. *)

val joint_incompat : Bdd.manager -> t -> Ugraph.t
(** Graph on nodes; edge = some output's cofactors are incompatible. *)

val item_incompat_of_groups : Bdd.manager -> t -> int -> int array -> int -> Ugraph.t
(** [item_incompat_of_groups m t item class_of_node nclasses]: graph on
    the step-2 classes, edge = the two classes' joined cofactors of
    [item] are incompatible. *)

val join_isfs : Bdd.manager -> Isf.t list -> Isf.t
(** Join of pairwise-compatible ISFs (conflicts are only ever pairwise,
    so pairwise compatibility suffices).
    @raise Invalid_argument on incompatible input. *)

val ncc_csf : Bdd.manager -> Bdd.t list -> int list -> int
(** Number of jointly distinct cofactor tuples of completely specified
    functions — the exact joint [ncc]. *)

val ncc_estimate : Bdd.manager -> Isf.t list -> int list -> int
(** Distinct cofactor tuples of possibly incompletely specified
    functions: an upper bound on the minimum class count, used as the
    bound-set search score. *)
