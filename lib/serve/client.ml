(* Minimal blocking client: one connection, framed request/response
   round trips.  Used by [mfd submit] and the end-to-end tests. *)

type t = { fd : Unix.file_descr; mutable next_id : int }

let connect endpoint =
  let fd, addr =
    match endpoint with
    | Server.Unix_socket path ->
        (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0, Unix.ADDR_UNIX path)
    | Server.Tcp (host, port) ->
        let ip =
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with Not_found -> Unix.inet_addr_loopback
        in
        (Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0, Unix.ADDR_INET (ip, port))
  in
  (try Unix.connect fd addr
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; next_id = 0 }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_raw t payload = Frame.write t.fd payload
let fd t = t.fd

let recv t =
  let payload = Frame.read_frame t.fd in
  match Proto.parse payload with
  | Error msg -> Error (Printf.sprintf "unparseable response: %s" msg)
  | Ok json -> Proto.response_of_json json

let call t op =
  t.next_id <- t.next_id + 1;
  let id = t.next_id in
  send_raw t (Proto.to_string (Proto.request_to_json { Proto.id; op }));
  recv t

let send t op =
  t.next_id <- t.next_id + 1;
  send_raw t
    (Proto.to_string (Proto.request_to_json { Proto.id = t.next_id; op }));
  t.next_id
