(* Tests for the LUT-network substrate and the BLIF/PLA formats. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A one-bit full adder as a 2-input gate network. *)
let full_adder () =
  let net = Network.create () in
  let a = Network.add_input net "a" in
  let b = Network.add_input net "b" in
  let cin = Network.add_input net "cin" in
  let ab = Network.xor_gate net a b in
  let sum = Network.xor_gate net ab cin in
  let carry =
    Network.or_gate net (Network.and_gate net a b) (Network.and_gate net ab cin)
  in
  Network.set_output net "sum" sum;
  Network.set_output net "cout" carry;
  net

let network_tests =
  [
    Alcotest.test_case "full adder evaluates correctly" `Quick (fun () ->
        let net = full_adder () in
        for i = 0 to 7 do
          let assignment name =
            match name with
            | "a" -> i land 1 = 1
            | "b" -> i land 2 = 2
            | "cin" -> i land 4 = 4
            | _ -> assert false
          in
          let out = Network.eval net assignment in
          let total = (i land 1) + ((i lsr 1) land 1) + ((i lsr 2) land 1) in
          check_bool "sum" (total land 1 = 1) (List.assoc "sum" out);
          check_bool "cout" (total >= 2) (List.assoc "cout" out)
        done);
    Alcotest.test_case "stats of the full adder" `Quick (fun () ->
        let s = Network.stats (full_adder ()) in
        check_int "inputs" 3 s.input_count;
        check_int "outputs" 2 s.output_count;
        check_int "luts" 5 s.lut_count;
        check_int "2-input gates" 5 s.two_input_gates;
        check_int "depth" 3 s.depth);
    Alcotest.test_case "structural hashing shares gates" `Quick (fun () ->
        let net = Network.create () in
        let a = Network.add_input net "a" in
        let b = Network.add_input net "b" in
        let g1 = Network.and_gate net a b in
        let g2 = Network.and_gate net a b in
        check_bool "shared" true (Network.signal_equal g1 g2));
    Alcotest.test_case "add_lut simplifications" `Quick (fun () ->
        let net = Network.create () in
        let a = Network.add_input net "a" in
        let b = Network.add_input net "b" in
        (* table ignores b -> collapses to a buffer on a *)
        let tt = Bv.of_fun 2 (fun i -> i land 1 = 1) in
        let s = Network.add_lut net ~fanins:[ a; b ] ~tt in
        check_bool "projection collapses" true (Network.signal_equal s a);
        (* constant fanin folded *)
        let one = Network.const net true in
        let s2 =
          Network.add_lut net ~fanins:[ a; one ]
            ~tt:(Bv.of_fun 2 (fun i -> i = 3))
        in
        check_bool "and with 1 is identity" true (Network.signal_equal s2 a);
        (* constant table *)
        let s3 = Network.add_lut net ~fanins:[ a ] ~tt:(Bv.create 1 true) in
        check_bool "const table" true
          (Network.const_value net s3 = Some true));
    Alcotest.test_case "output_bdds match eval" `Quick (fun () ->
        let net = full_adder () in
        let m = Bdd.manager () in
        let var_of_input = function
          | "a" -> 0
          | "b" -> 1
          | "cin" -> 2
          | _ -> assert false
        in
        let bdds = Network.output_bdds net m ~var_of_input in
        for i = 0 to 7 do
          let assignment v = (i lsr v) land 1 = 1 in
          let by_name name =
            match name with
            | "a" -> assignment 0
            | "b" -> assignment 1
            | "cin" -> assignment 2
            | _ -> assert false
          in
          let out = Network.eval net by_name in
          List.iter
            (fun (name, f) ->
              check_bool name (List.assoc name out) (Bdd.eval f assignment))
            bdds
        done);
    Alcotest.test_case "equivalence of two adder implementations" `Quick
      (fun () ->
        let net2 = Network.create () in
        let a = Network.add_input net2 "a" in
        let b = Network.add_input net2 "b" in
        let cin = Network.add_input net2 "cin" in
        (* majority + parity via different structure *)
        let sum =
          Network.xor_gate net2 a (Network.xor_gate net2 b cin)
        in
        let maj =
          Network.or_gate net2
            (Network.and_gate net2 a (Network.or_gate net2 b cin))
            (Network.and_gate net2 b cin)
        in
        Network.set_output net2 "sum" sum;
        Network.set_output net2 "cout" maj;
        check_bool "equivalent" true (Network.equivalent (full_adder ()) net2));
    Alcotest.test_case "sweep drops dead logic" `Quick (fun () ->
        let net = Network.create () in
        let a = Network.add_input net "a" in
        let b = Network.add_input net "b" in
        let keep = Network.and_gate net a b in
        let _dead = Network.xor_gate net keep b in
        Network.set_output net "f" keep;
        let swept = Network.sweep net in
        check_int "one lut" 1 (Network.stats swept).Network.lut_count;
        check_bool "still equivalent" true (Network.equivalent net swept));
    Alcotest.test_case "mux_gate semantics" `Quick (fun () ->
        let net = Network.create () in
        let s = Network.add_input net "s" in
        let h = Network.add_input net "h" in
        let l = Network.add_input net "l" in
        Network.set_output net "f" (Network.mux_gate net ~sel:s ~hi:h ~lo:l);
        let out sel hi lo =
          List.assoc "f"
            (Network.eval net (function
              | "s" -> sel
              | "h" -> hi
              | "l" -> lo
              | _ -> assert false))
        in
        check_bool "sel=1 -> hi" true (out true true false);
        check_bool "sel=0 -> lo" false (out false true false);
        check_bool "sel=0 -> lo(1)" true (out false false true));
  ]

let blif_text =
  {|# a small circuit
.model test
.inputs a b c
.outputs f g
.names a b t
11 1
.names t c f
1- 1
-1 1
.names a g
0 1
.end
|}

let blif_tests =
  [
    Alcotest.test_case "parse a simple model" `Quick (fun () ->
        let net = Blif.parse blif_text in
        let s = Network.stats net in
        check_int "inputs" 3 s.input_count;
        check_int "outputs" 2 s.output_count;
        let out assignment = Network.eval net assignment in
        let v = out (function "a" -> true | "b" -> true | _ -> false) in
        check_bool "f = (a&b)|c" true (List.assoc "f" v);
        check_bool "g = !a" false (List.assoc "g" v));
    Alcotest.test_case "parse rejects latches" `Quick (fun () ->
        check_bool "raises" true
          (match Blif.parse ".model x\n.latch a b\n.end\n" with
          | exception Blif.Parse_error _ -> true
          | _ -> false));
    Alcotest.test_case "off-set phase (0 cubes)" `Quick (fun () ->
        let net =
          Blif.parse ".model x\n.inputs a b\n.outputs f\n.names a b f\n11 0\n.end\n"
        in
        let v b1 b2 =
          List.assoc "f"
            (Network.eval net (function "a" -> b1 | _ -> b2))
        in
        check_bool "nand 11" false (v true true);
        check_bool "nand 01" true (v false true));
    Alcotest.test_case "print/parse roundtrip preserves function" `Quick
      (fun () ->
        let net = full_adder () in
        let text = Blif.print net in
        let net2 = Blif.parse text in
        check_bool "equivalent" true (Network.equivalent net net2));
    Alcotest.test_case "roundtrip with constants and aliases" `Quick (fun () ->
        let net = Network.create () in
        let a = Network.add_input net "a" in
        Network.set_output net "f" (Network.const net true);
        Network.set_output net "g" a;
        Network.set_output net "h" a;
        let net2 = Blif.parse (Blif.print net) in
        check_bool "equivalent" true (Network.equivalent net net2));
  ]

let pla_text =
  {|.i 3
.o 2
.ilb x0 x1 x2
.ob f0 f1
.type fd
11- 1-
--1 01
000 -0
.e
|}

let pla_tests =
  [
    Alcotest.test_case "parse pla with dc" `Quick (fun () ->
        let pla = Pla.parse pla_text in
        check_int "i" 3 pla.Pla.ninputs;
        check_int "o" 2 pla.Pla.noutputs;
        let m = Bdd.manager () in
        let isfs = Pla.to_isfs m ~var_of_column:(fun k -> k) pla in
        let f0 = List.assoc "f0" isfs in
        (* on(f0) = x0 & x1; dc(f0) = 000 *)
        check_bool "on f0" true
          (Bdd.equal (Isf.on f0)
             (Bdd.and_ m (Bdd.var m 0) (Bdd.var m 1)));
        check_bool "dc f0 contains 000" true
          (Bdd.eval (Isf.dc f0) (fun _ -> false));
        let f1 = List.assoc "f1" isfs in
        check_bool "on f1 = x2" true (Bdd.equal (Isf.on f1) (Bdd.var m 2));
        (* row "11- 1-" makes minterm 110 a don't care of f1 *)
        check_bool "dc f1 at 110" true
          (Bdd.eval (Isf.dc f1) (fun v -> v <> 2));
        check_bool "f1 has dc" false (Isf.is_completely_specified f1));
    Alcotest.test_case "pla print parses back" `Quick (fun () ->
        let pla = Pla.parse pla_text in
        let pla2 = Pla.parse (Pla.print pla) in
        check_int "rows" (List.length pla.Pla.rows) (List.length pla2.Pla.rows));
    Alcotest.test_case "type f has no dc" `Quick (fun () ->
        let pla = Pla.parse ".i 1\n.o 1\n.type f\n1 1\n.e\n" in
        let m = Bdd.manager () in
        let isfs = Pla.to_isfs m ~var_of_column:(fun k -> k) pla in
        check_bool "csf" true (Isf.is_completely_specified (snd (List.hd isfs))));
  ]

let suite = network_tests @ blif_tests @ pla_tests
