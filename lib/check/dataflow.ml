(* The cheap screening tier: a worklist fixpoint over pluggable
   lattices, plus the three shipped domains (ternary constants,
   functional support, pointwise observability) and a deterministic
   bit-parallel simulation that witnesses reachable codes.  Everything
   here must be sound-but-incomplete: a fact may be missing, never
   wrong, so the exact engines can trust it blindly and [--no-dataflow]
   changes cost, not findings. *)

type direction = Forward | Backward

type env = {
  e_net : Network.t;
  e_order : Network.signal array;  (* reachable nodes, topological *)
  e_rank : int array;  (* signal id -> rank, -1 unreachable *)
  e_fanouts : Network.signal list array;  (* id -> LUT fanout arcs *)
  e_outputs : string list array;  (* id -> primary outputs bound to it *)
  e_inputs : (string, int) Hashtbl.t;
  e_input_count : int;
}

let env net =
  let n = max (Network.node_count net) 1 in
  let rank = Array.make n (-1) in
  let fanouts = Array.make n [] in
  let outputs = Array.make n [] in
  let order = ref [] in
  let next = ref 0 in
  Network.iter_cone net (fun s ->
      let id = Network.signal_id s in
      rank.(id) <- !next;
      incr next;
      order := s :: !order;
      match Network.view net s with
      | `Input _ | `Const _ -> ()
      | `Lut (fanins, _) ->
          Array.iter
            (fun f ->
              let fid = Network.signal_id f in
              fanouts.(fid) <- s :: fanouts.(fid))
            fanins);
  Array.iteri (fun i l -> fanouts.(i) <- List.rev l) fanouts;
  List.iter
    (fun (name, s) ->
      let id = Network.signal_id s in
      outputs.(id) <- outputs.(id) @ [ name ])
    (Network.outputs net);
  let inputs = Hashtbl.create 16 in
  List.iteri
    (fun k (name, _) ->
      if not (Hashtbl.mem inputs name) then Hashtbl.add inputs name k)
    (Network.inputs net);
  {
    e_net = net;
    e_order = Array.of_list (List.rev !order);
    e_rank = rank;
    e_fanouts = fanouts;
    e_outputs = outputs;
    e_inputs = inputs;
    e_input_count = List.length (Network.inputs net);
  }

let env_network e = e.e_net
let fanout_arcs e s = e.e_fanouts.(Network.signal_id s)
let outputs_of e s = e.e_outputs.(Network.signal_id s)
let input_index e name = Hashtbl.find e.e_inputs name
let input_count e = e.e_input_count

module type DOMAIN = sig
  type fact

  val name : string
  val direction : direction
  val bottom : fact
  val equal : fact -> fact -> bool
  val join : fact -> fact -> fact
  val height_bound : int
  val widen : fact -> fact -> fact
  val transfer : env -> (Network.signal -> fact) -> Network.signal -> fact
end

module Fixpoint (D : DOMAIN) = struct
  type result = {
    fact_of : Network.signal -> D.fact;
    iterations : int;
    widenings : int;
  }

  let run env =
    let n = Array.length env.e_rank in
    let facts = Array.make n D.bottom in
    let lookup s = facts.(Network.signal_id s) in
    let updates = Array.make n 0 in
    (* Priority worklist keyed by topological rank (reversed for a
       backward domain), so a DAG converges in one sweep and the
       processing order is deterministic.  The queued flag keeps every
       node at most once in the heap, bounding it by the cone size. *)
    let prio =
      match D.direction with
      | Forward -> fun id -> env.e_rank.(id)
      | Backward -> fun id -> -env.e_rank.(id)
    in
    let heap = Array.make (max (Array.length env.e_order) 1) (-1) in
    let size = ref 0 in
    let queued = Array.make n false in
    let swap i j =
      let t = heap.(i) in
      heap.(i) <- heap.(j);
      heap.(j) <- t
    in
    let push id =
      if not queued.(id) then begin
        queued.(id) <- true;
        heap.(!size) <- id;
        let i = ref !size in
        incr size;
        while
          !i > 0 && prio heap.(!i) < prio heap.((!i - 1) / 2)
        do
          swap !i ((!i - 1) / 2);
          i := (!i - 1) / 2
        done
      end
    in
    let pop () =
      let top = heap.(0) in
      decr size;
      heap.(0) <- heap.(!size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let best = ref !i in
        if l < !size && prio heap.(l) < prio heap.(!best) then best := l;
        if r < !size && prio heap.(r) < prio heap.(!best) then best := r;
        if !best = !i then continue := false
        else begin
          swap !i !best;
          i := !best
        end
      done;
      queued.(top) <- false;
      top
    in
    Array.iter (fun s -> push (Network.signal_id s)) env.e_order;
    let iterations = ref 0 and widenings = ref 0 in
    while !size > 0 do
      let id = pop () in
      let s = Network.signal_of_id env.e_net id in
      incr iterations;
      let proposed = D.transfer env lookup s in
      let joined = D.join facts.(id) proposed in
      if not (D.equal joined facts.(id)) then begin
        updates.(id) <- updates.(id) + 1;
        let accepted =
          if updates.(id) > D.height_bound then begin
            incr widenings;
            D.widen facts.(id) joined
          end
          else joined
        in
        facts.(id) <- accepted;
        match D.direction with
        | Forward -> List.iter (fun m -> push (Network.signal_id m)) env.e_fanouts.(id)
        | Backward -> (
            match Network.view env.e_net s with
            | `Input _ | `Const _ -> ()
            | `Lut (fanins, _) ->
                Array.iter
                  (fun f ->
                    let fid = Network.signal_id f in
                    if env.e_rank.(fid) >= 0 then push fid)
                  fanins)
      end
    done;
    { fact_of = lookup; iterations = !iterations; widenings = !widenings }
end

(* ---- domain 1: ternary 0/1/X constant propagation (forward) ---- *)

module Ternary = struct
  type fact = Bot | Zero | One | Any

  let join a b =
    match (a, b) with
    | Bot, x | x, Bot -> x
    | Zero, Zero -> Zero
    | One, One -> One
    | _ -> Any

  let of_bool b = if b then One else Zero

  let domain ?(input_env = fun _ -> None) () : (module DOMAIN with type fact = fact) =
    (module struct
      type nonrec fact = fact

      let name = "ternary"
      let direction = Forward
      let bottom = Bot
      let equal (a : fact) b = a = b
      let join = join
      let height_bound = 2 (* Bot < {Zero, One} < Any *)
      let widen _ _ = Any

      let transfer env lookup s =
        match Network.view env.e_net s with
        | `Const b -> of_bool b
        | `Input nm -> (
            match input_env nm with Some b -> of_bool b | None -> Any)
        | `Lut (fanins, tt) ->
            let vals = Array.map lookup fanins in
            (* An unprocessed fanin stays Bot until the worklist gets
               there; postponing (rather than treating Bot as Any)
               keeps the transfer monotone in the looked-up facts. *)
            if Array.exists (fun v -> v = Bot) vals then Bot
            else begin
              let k = Array.length fanins in
              let acc = ref Bot in
              for c = 0 to (1 lsl k) - 1 do
                let consistent = ref true in
                for j = 0 to k - 1 do
                  let bit = (c lsr j) land 1 = 1 in
                  match vals.(j) with
                  | Zero when bit -> consistent := false
                  | One when not bit -> consistent := false
                  | _ -> ()
                done;
                if !consistent then acc := join !acc (of_bool (Bv.get tt c))
              done;
              !acc
            end
    end)
end

(* ---- domain 2: functional-support over-approximation (forward) ---- *)

(* A small dense bitset over the primary-input index space.  [Check]
   cannot depend on [Decomp.Bits] (the dependency runs the other way),
   and the sets here are tiny, so a local 63-bit-word array does. *)
module Iset = struct
  type t = int array

  let words n = max ((n + 62) / 63) 1
  let empty n = Array.make (words n) 0
  let equal (a : t) b = a = b

  let add t i =
    let t = Array.copy t in
    t.(i / 63) <- t.(i / 63) lor (1 lsl (i mod 63));
    t

  let union a b = Array.mapi (fun i w -> w lor b.(i)) a

  let subset a b =
    let ok = ref true in
    Array.iteri (fun i w -> if w land lnot b.(i) <> 0 then ok := false) a;
    !ok

  let is_empty t = Array.for_all (fun w -> w = 0) t
end

(* Does the local table provably ignore fanin [j]?  A single cofactor
   pair comparison — the "single-cube" refinement over the purely
   structural support. *)
let vacuous tt j = Bv.equal (Bv.cofactor tt j false) (Bv.cofactor tt j true)

let support_domain env0 : (module DOMAIN with type fact = Iset.t) =
  let nin = env0.e_input_count in
  (module struct
    type fact = Iset.t

    let name = "support"
    let direction = Forward
    let bottom = Iset.empty nin
    let equal = Iset.equal
    let join = Iset.union

    (* The powerset chain has height [nin]; the DAG never gets there,
       and widening to the joined fact is already an upper bound. *)
    let height_bound = nin + 1
    let widen _ proposed = proposed

    let transfer env lookup s =
      match Network.view env.e_net s with
      | `Const _ -> Iset.empty nin
      | `Input nm -> Iset.add (Iset.empty nin) (input_index env nm)
      | `Lut (fanins, tt) ->
          let acc = ref (Iset.empty nin) in
          Array.iteri
            (fun j f -> if not (vacuous tt j) then acc := Iset.union !acc (lookup f))
            fanins;
          !acc
  end)

(* ---- domain 3: pointwise observability (backward) ---- *)

(* Is the table's output complemented whenever fanin [j] is, on every
   row?  Then a pointwise flip of that fanin is a pointwise flip of
   the node. *)
let totally_sensitive tt j =
  Bv.equal (Bv.cofactor tt j false) (Bv.not_ (Bv.cofactor tt j true))

let obs_domain : (module DOMAIN with type fact = string list) =
  (module struct
    (* Sorted list of primary outputs the node pointwise drives.  This
       is an under-approximation domain: an element may only be added
       when it is certainly true, so there is no sound "top" to widen
       to — termination comes from the finite output set instead. *)
    type fact = string list

    let name = "observability"
    let direction = Backward
    let bottom = []
    let equal (a : fact) b = a = b

    let rec join a b =
      match (a, b) with
      | [], l | l, [] -> l
      | x :: xs, y :: ys ->
          if x < y then x :: join xs b
          else if y < x then y :: join a ys
          else x :: join xs ys

    let height_bound = max_int
    let widen _ proposed = proposed

    let transfer env lookup s =
      (* A signal bound to an output IS that output, so flipping it
         flips the output at every vector; and a single arc into a
         totally sensitive table position propagates a pointwise flip
         to the (unique) reader, so the reader's outputs carry over. *)
      let seed = List.sort_uniq compare (outputs_of env s) in
      let chain =
        match fanout_arcs env s with
        | [ m ] -> (
            match Network.view env.e_net m with
            | `Input _ | `Const _ -> []
            | `Lut (fanins, tt) ->
                let j = ref (-1) in
                Array.iteri
                  (fun i f -> if Network.signal_equal f s then j := i)
                  fanins;
                if !j >= 0 && totally_sensitive tt !j then lookup m else [])
        | _ -> []
      in
      join seed chain
  end)

(* ---- witness refinement: deterministic bit-parallel simulation ---- *)

(* 62 lanes per round in a native int (bits 0..61, so every lane mask
   stays positive on a 63-bit int).  The generator is a fixed
   splitmix-style hash of (round, input index): no global state, no
   [Random], bit-for-bit reproducible across runs and platforms. *)
let lanes = 62

let noise round idx =
  let open Int64 in
  let z =
    add
      (mul (of_int (round + 1)) 0x9E3779B97F4A7C15L)
      (mul (of_int (idx + 1)) 0xBF58476D1CE4E5B9L)
  in
  let z = mul (logxor z (shift_right_logical z 30)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 27) in
  to_int z land Stdlib.max_int

(* Tracking reachable-code witnesses is only worth it where the SAT
   window could run at all; wider tables get no mask. *)
let sim_code_bits = 12

type node_facts = {
  nf_signal : Network.signal;
  nf_const : bool option;
  nf_vacuous : int list;
  nf_contained : int list;
  nf_obs_outputs : string list;
  nf_codes_seen : int;
  nf_all_codes : bool;
  nf_both_values : bool;
}

type t = {
  t_facts : node_facts list;
  t_by_id : node_facts option array;
  t_iterations : int;
  t_fact_count : int;
}

let analyze ?(sim_rounds = 4) ?input_env net =
  let e = env net in
  let n = Array.length e.e_rank in
  let (module T) = Ternary.domain ?input_env () in
  let module FT = Fixpoint (T) in
  let tern = FT.run e in
  let (module S) = support_domain e in
  let module FS = Fixpoint (S) in
  let sup = FS.run e in
  let (module O) = obs_domain in
  let module FO = Fixpoint (O) in
  let obs = FO.run e in
  (* simulation: per-node witnessed codes and output values *)
  let codes = Array.make n Bytes.empty in
  let seen0 = Array.make n false and seen1 = Array.make n false in
  Array.iter
    (fun s ->
      match Network.view net s with
      | `Lut (fanins, _) ->
          let k = Array.length fanins in
          if k <= sim_code_bits then
            codes.(Network.signal_id s) <- Bytes.make (1 lsl k) '\000'
      | `Input _ | `Const _ -> ())
    e.e_order;
  let words = Array.make n 0 in
  let pinned = match input_env with Some f -> f | None -> fun _ -> None in
  for round = 0 to sim_rounds - 1 do
    Array.iter
      (fun s ->
        let id = Network.signal_id s in
        (match Network.view net s with
        | `Const b -> words.(id) <- (if b then -1 else 0)
        | `Input nm ->
            words.(id) <-
              (match pinned nm with
              | Some true -> -1
              | Some false -> 0
              | None -> noise round (input_index e nm))
        | `Lut (fanins, tt) ->
            let k = Array.length fanins in
            let fw = Array.map (fun f -> words.(Network.signal_id f)) fanins in
            let out = ref 0 in
            let mask = codes.(id) in
            for lane = 0 to lanes - 1 do
              let code = ref 0 in
              for j = 0 to k - 1 do
                if (fw.(j) lsr lane) land 1 = 1 then code := !code lor (1 lsl j)
              done;
              if Bytes.length mask > 0 then Bytes.set mask !code '\001';
              if Bv.get tt !code then out := !out lor (1 lsl lane)
            done;
            words.(id) <- !out);
        let w = words.(id) land max_int in
        if w <> 0 then seen1.(id) <- true;
        if w <> max_int then seen0.(id) <- true)
      e.e_order
  done;
  (* fold the domain results into one record per LUT node *)
  let by_id = Array.make n None in
  let fact_count = ref 0 in
  let facts =
    List.filter_map
      (fun s ->
        match Network.view net s with
        | `Input _ | `Const _ -> None
        | `Lut (fanins, tt) ->
            let id = Network.signal_id s in
            let k = Array.length fanins in
            let nf_const =
              match tern.FT.fact_of s with
              | Ternary.Zero -> Some false
              | Ternary.One -> Some true
              | Ternary.Bot | Ternary.Any -> None
            in
            let nf_vacuous =
              List.filter (fun j -> vacuous tt j) (List.init k Fun.id)
            in
            let nf_contained =
              if k < 2 then []
              else
                List.filter
                  (fun j ->
                    (not (vacuous tt j))
                    &&
                    let sj = sup.FS.fact_of fanins.(j) in
                    let rest = ref (Iset.empty e.e_input_count) in
                    Array.iteri
                      (fun i f ->
                        if i <> j && not (vacuous tt i) then
                          rest := Iset.union !rest (sup.FS.fact_of f))
                      fanins;
                    (not (Iset.is_empty sj)) && Iset.subset sj !rest)
                  (List.init k Fun.id)
            in
            let nf_obs_outputs = obs.FO.fact_of s in
            let mask = codes.(id) in
            let nf_codes_seen = ref 0 in
            Bytes.iter
              (fun c -> if c <> '\000' then incr nf_codes_seen)
              mask;
            let nf_codes_seen = !nf_codes_seen in
            let nf_all_codes =
              Bytes.length mask > 0 && nf_codes_seen = Bytes.length mask
            in
            let nf =
              {
                nf_signal = s;
                nf_const;
                nf_vacuous;
                nf_contained;
                nf_obs_outputs;
                nf_codes_seen;
                nf_all_codes;
                nf_both_values = seen0.(id) && seen1.(id);
              }
            in
            fact_count :=
              !fact_count
              + (if nf_const <> None then 1 else 0)
              + List.length nf_vacuous + List.length nf_contained
              + (if nf_obs_outputs <> [] then 1 else 0)
              + if nf_all_codes then 1 else 0;
            by_id.(id) <- Some nf;
            Some nf)
      (Array.to_list e.e_order)
  in
  {
    t_facts = facts;
    t_by_id = by_id;
    t_iterations = tern.FT.iterations + sup.FS.iterations + obs.FO.iterations;
    t_fact_count = !fact_count;
  }

let facts t = t.t_facts

let fact_of t s =
  let id = Network.signal_id s in
  if id >= 0 && id < Array.length t.t_by_id then t.t_by_id.(id) else None

let iterations t = t.t_iterations
let fact_count t = t.t_fact_count
