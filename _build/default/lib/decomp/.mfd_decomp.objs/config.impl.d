lib/decomp/config.ml: Format
