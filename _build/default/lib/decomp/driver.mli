(** Recursive multi-output decomposition driver.

    Starting from a vector of (incompletely specified) functions over
    named inputs, repeatedly: (1) assign don't cares to maximize
    symmetries (step 1), (2) pick a bound set, (3) run one
    {!Step.run} — which performs don't-care steps 2 and 3, extracts
    shared strict decomposition functions and builds the composition
    ISFs —, emit the decomposition functions as LUTs, and continue with
    the composition functions, until everything fits into LUTs of the
    configured size.  A Shannon/MUX fallback guarantees progress on
    non-decomposable functions. *)

type spec = {
  input_names : string list;  (** input [k] is BDD variable [k] *)
  functions : (string * Isf.t) list;  (** named outputs *)
}

type report = {
  network : Network.t;
  step_count : int;
  shannon_count : int;
  alpha_count : int;  (** total decomposition functions emitted *)
}

val spec_of_csf : Bdd.manager -> string list -> (string * Bdd.t) list -> spec

val decompose : ?cfg:Config.t -> Bdd.manager -> spec -> Network.t
(** The resulting network has one LUT per decomposition/composition
    function, every LUT with at most [cfg.lut_size] inputs, and realizes
    an extension of every specified output. *)

val decompose_report : ?cfg:Config.t -> Bdd.manager -> spec -> report

val verify : Bdd.manager -> spec -> Network.t -> bool
(** Every output of the network extends the corresponding ISF of the
    spec (equality when the spec is completely specified). *)
