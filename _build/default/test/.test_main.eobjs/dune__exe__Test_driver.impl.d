test/test_driver.ml: Alcotest Arith Array Bdd Blif Bv Config Driver Fun Isf List Mulop Network Pla Printf QCheck2 QCheck_alcotest
