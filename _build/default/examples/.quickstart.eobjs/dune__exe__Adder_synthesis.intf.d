examples/adder_synthesis.mli:
