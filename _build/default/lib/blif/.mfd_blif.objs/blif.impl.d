lib/blif/blif.ml: Bdd Buffer Bv Cover Hashtbl List Minimize Network Printf String
