(* Tests for symmetry detection and the step-1 don't-care assignment. *)

let man = Bdd.manager ()
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let totally_symmetric n pred =
  (* f(x) = pred (weight x) over n variables *)
  let rec build v ones =
    if v = n then if pred ones then Bdd.one man else Bdd.zero man
    else Bdd.ite man (Bdd.var man v) (build (v + 1) (ones + 1)) (build (v + 1) ones)
  in
  build 0 0

let detection_tests =
  [
    Alcotest.test_case "majority is totally symmetric" `Quick (fun () ->
        let f = totally_symmetric 5 (fun w -> w >= 3) in
        check_bool "01" true (Symmetry.symmetric_pair man [ f ] ~rel:false 0 1);
        check_bool "24" true (Symmetry.symmetric_pair man [ f ] ~rel:false 2 4);
        let groups = Symmetry.partition man [ f ] [ 0; 1; 2; 3; 4 ] in
        check_int "one group" 1 (List.length groups);
        check_int "of five" 5 (List.length (List.hd groups)));
    Alcotest.test_case "x0 /\\ x1 \\/ x2: group {0,1}" `Quick (fun () ->
        let f =
          Bdd.or_ man
            (Bdd.and_ man (Bdd.var man 0) (Bdd.var man 1))
            (Bdd.var man 2)
        in
        let groups = Symmetry.partition man [ f ] [ 0; 1; 2 ] in
        check_int "two groups" 2 (List.length groups);
        check_bool "0,1 together" true
          (List.exists
             (fun g -> List.sort compare (Symmetry.group_vars g) = [ 0; 1 ])
             groups));
    Alcotest.test_case "equivalence symmetry detected via phases" `Quick
      (fun () ->
        (* f = x0 xor x1 is equivalence-symmetric in (0,1) (f00 = f11)
           and also ne-symmetric; x0 /\ not x1 is neither.
           g = x0 \/ not x1 : exchanging with one negation leaves it
           invariant (equivalence symmetry). *)
        let g = Bdd.or_ man (Bdd.var man 0) (Bdd.nvar man 1) in
        check_bool "ne fails" false
          (Symmetry.symmetric_pair man [ g ] ~rel:false 0 1);
        check_bool "e holds" true
          (Symmetry.symmetric_pair man [ g ] ~rel:true 0 1);
        let groups = Symmetry.partition man [ g ] [ 0; 1 ] in
        check_int "one group (phased)" 1 (List.length groups));
    Alcotest.test_case "multi-output symmetry is the intersection" `Quick
      (fun () ->
        let f1 = totally_symmetric 4 (fun w -> w >= 2) in
        let f2 =
          Bdd.or_ man
            (Bdd.and_ man (Bdd.var man 0) (Bdd.var man 1))
            (Bdd.and_ man (Bdd.var man 2) (Bdd.var man 3))
        in
        (* f2 is symmetric in {0,1} and {2,3} but not across. *)
        let groups = Symmetry.partition man [ f1; f2 ] [ 0; 1; 2; 3 ] in
        check_int "two groups" 2 (List.length groups));
    Alcotest.test_case "swap_rel with rel=true is equivalence exchange" `Quick
      (fun () ->
        let f = Bdd.and_ man (Bdd.var man 0) (Bdd.var man 1) in
        let g = Symmetry.swap_rel man f ~rel:true 0 1 in
        (* (x0,x1) -> (not x1, not x0): and becomes nor *)
        check_bool "nor" true
          (Bdd.equal g (Bdd.nor man (Bdd.var man 0) (Bdd.var man 1))));
  ]

let symmetrize_tests =
  [
    Alcotest.test_case "dc assignment creates symmetry" `Quick (fun () ->
        (* on = 01 (x0=0, x1=1), dc = 10; symmetrizing (0,1) must put 10
           into the on-set. *)
        let on = Bdd.and_ man (Bdd.nvar man 0) (Bdd.var man 1) in
        let dc = Bdd.and_ man (Bdd.var man 0) (Bdd.nvar man 1) in
        let f = Isf.make man ~on ~dc in
        check_bool "symmetrizable" true
          (Symmetry.symmetrizable man [ f ] ~rel:false 0 1);
        match Symmetry.symmetrize man [ f ] ~rel:false 0 1 with
        | Some [ f' ] ->
            check_bool "10 now on" true (Bdd.eval (Isf.on f') (fun v -> v = 0));
            check_bool "now symmetric" true
              (Symmetry.symmetric_pair man [ Isf.on f' ] ~rel:false 0 1);
            check_bool "csf now" true (Isf.is_completely_specified f')
        | _ -> Alcotest.fail "symmetrize failed");
    Alcotest.test_case "conflicting pair is not symmetrizable" `Quick (fun () ->
        (* on = 01, off = 10, fully specified asymmetric pair *)
        let on = Bdd.and_ man (Bdd.nvar man 0) (Bdd.var man 1) in
        let f = Isf.of_csf man on in
        check_bool "not symmetrizable" false
          (Symmetry.symmetrizable man [ f ] ~rel:false 0 1);
        check_bool "symmetrize none" true
          (Symmetry.symmetrize man [ f ] ~rel:false 0 1 = None));
    Alcotest.test_case "maximize on csf = detection" `Quick (fun () ->
        let f = totally_symmetric 4 (fun w -> w = 2) in
        let r =
          Symmetry.maximize man [ Isf.of_csf man f ] [ 0; 1; 2; 3 ]
        in
        check_int "one group" 1 (List.length r.Symmetry.groups);
        (match r.Symmetry.functions with
        | [ f' ] -> check_bool "unchanged" true (Bdd.equal (Isf.on f') f)
        | _ -> Alcotest.fail "arity"));
    Alcotest.test_case "maximize groups grow with dc" `Quick (fun () ->
        (* f on 3 vars: on = {110}, dc = {101, 011}: fully symmetrizable
           to the weight-2 function restricted to... on/off elsewhere 0.
           Care: off = everything else incl. 111 and 000: weight-2
           pattern => totally symmetric after assignment. *)
        let minterm bits =
          Bdd.and_list man
            (List.mapi
               (fun v b -> if b then Bdd.var man v else Bdd.nvar man v)
               bits)
        in
        let on = minterm [ true; true; false ] in
        let dc =
          Bdd.or_ man
            (minterm [ true; false; true ])
            (minterm [ false; true; true ])
        in
        let f = Isf.make man ~on ~dc in
        let r = Symmetry.maximize man [ f ] [ 0; 1; 2 ] in
        check_int "single group of 3" 1 (List.length r.Symmetry.groups);
        match r.Symmetry.functions with
        | [ f' ] ->
            check_bool "weight-2 function" true
              (Bdd.equal (Isf.on f')
                 (totally_symmetric 3 (fun w -> w = 2)))
        | _ -> Alcotest.fail "arity");
    Alcotest.test_case "established symmetry never destroyed" `Quick (fun () ->
        (* After maximize, every reported group must indeed be a
           symmetry group of (every extension of) the result. *)
        let st = Random.State.make [| 5 |] in
        for _ = 1 to 20 do
          let on = Bdd.random man ~nvars:4 ~density:0.3 st in
          let dc0 = Bdd.random man ~nvars:4 ~density:0.3 st in
          let dc = Bdd.diff man dc0 on in
          let f = Isf.make man ~on ~dc in
          let r = Symmetry.maximize man [ f ] [ 0; 1; 2; 3 ] in
          List.iter
            (fun g ->
              List.iter
                (fun (v, pv) ->
                  List.iter
                    (fun (w, pw) ->
                      if v < w then begin
                        let rel = pv <> pw in
                        match r.Symmetry.functions with
                        | [ f' ] ->
                            check_bool "on closed" true
                              (Bdd.equal (Isf.on f')
                                 (Symmetry.swap_rel man (Isf.on f') ~rel v w));
                            check_bool "off closed" true
                              (Bdd.equal (Isf.off man f')
                                 (Symmetry.swap_rel man (Isf.off man f') ~rel v w))
                        | _ -> Alcotest.fail "arity"
                      end)
                    g)
                g)
            r.Symmetry.groups
        done);
  ]

let props =
  let gen_isf n =
    let open QCheck2.Gen in
    let+ cells = list_size (return (1 lsl n)) (int_range 0 2) in
    let arr = Array.of_list cells in
    let on = Bv.of_fun n (fun i -> arr.(i) = 1) in
    let dc = Bv.of_fun n (fun i -> arr.(i) = 2) in
    Isf.make man ~on:(Bv.to_bdd man on) ~dc:(Bv.to_bdd man dc)
  in
  [
    QCheck2.Test.make ~name:"symmetrize output extends input" ~count:150
      (gen_isf 4)
      (fun f ->
        match Symmetry.symmetrize man [ f ] ~rel:false 0 1 with
        | None -> true
        | Some [ f' ] ->
            (* every extension of f' is an extension of f: on grew, off grew *)
            Bdd.is_zero (Bdd.diff man (Isf.on f) (Isf.on f'))
            && Bdd.is_zero (Bdd.diff man (Isf.off man f) (Isf.off man f'))
        | Some _ -> false);
    QCheck2.Test.make ~name:"symmetrize result is symmetric" ~count:150
      (QCheck2.Gen.pair (gen_isf 4) QCheck2.Gen.bool)
      (fun (f, rel) ->
        match Symmetry.symmetrize man [ f ] ~rel 1 3 with
        | None -> not (Symmetry.symmetrizable man [ f ] ~rel 1 3)
        | Some [ f' ] ->
            Bdd.equal (Isf.on f') (Symmetry.swap_rel man (Isf.on f') ~rel 1 3)
            && Bdd.equal (Isf.off man f')
                 (Symmetry.swap_rel man (Isf.off man f') ~rel 1 3)
        | Some _ -> false);
    QCheck2.Test.make ~name:"maximize groups cover all variables" ~count:60
      (gen_isf 5)
      (fun f ->
        let r = Symmetry.maximize man [ f ] [ 0; 1; 2; 3; 4 ] in
        let vars =
          List.concat_map Symmetry.group_vars r.Symmetry.groups
          |> List.sort compare
        in
        vars = [ 0; 1; 2; 3; 4 ]);
  ]

let suite =
  detection_tests @ symmetrize_tests
  @ List.map (fun p -> QCheck_alcotest.to_alcotest ~long:false p) props
