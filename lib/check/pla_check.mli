(** Hygiene passes for two-level (PLA) inputs ([PLA*] codes).

    The PLA reader is deliberately forgiving — overlapping cubes with
    conflicting output-plane values are resolved in favour of the
    on-set, exactly as espresso does.  [mfd lint] surfaces what the
    reader silently resolved. *)

val analyze : Bdd.manager -> Pla.t -> Diagnostic.t list
(** [PLA001] per output whose on-rows and off-rows overlap (only
    meaningful for [.type fr]/[fdr], where ['0'] entries assert the
    off-set); [PLA002] for duplicate [.ilb]/[.ob] names. *)
