(* mfd — multi-output functional decomposition with don't cares.

   Command-line front end: decompose builtin benchmarks or BLIF/PLA
   files into LUT networks, report LUT/CLB statistics, export BLIF or
   DOT, list the benchmark catalogue. *)

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let algorithm_conv =
  let parse = function
    | "mulopii" | "mulopII" -> Ok Mulop.Mulop_ii
    | "mulop-dc" | "dc" -> Ok Mulop.Mulop_dc
    | "mulop-dcii" | "mulop-dcII" | "dcii" -> Ok Mulop.Mulop_dc_ii
    | s -> Error (`Msg (Printf.sprintf "unknown algorithm %S" s))
  in
  Arg.conv (parse, fun fmt a -> Format.pp_print_string fmt (Mulop.algorithm_name a))

let load_spec m path_or_name =
  if Filename.check_suffix path_or_name ".blif" then begin
    let net = Blif.parse_file path_or_name in
    (Randnet.spec_of_network m net, Filename.basename path_or_name)
  end
  else if Filename.check_suffix path_or_name ".pla" then begin
    let pla = Pla.parse_file path_or_name in
    let isfs = Pla.to_isfs m ~var_of_column:(fun k -> k) pla in
    ( { Driver.input_names = pla.Pla.input_names; functions = isfs },
      Filename.basename path_or_name )
  end
  else begin
    match Mcnc.find path_or_name with
    | entry -> (entry.Mcnc.build m, entry.Mcnc.name)
    | exception Not_found ->
        let build = List.assoc path_or_name Extra.catalogue in
        (build m, path_or_name)
  end

let check_conv =
  let parse s =
    match Diagnostic.level_of_string s with
    | Ok l -> Ok l
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv
    (parse, fun fmt l -> Format.pp_print_string fmt (Diagnostic.level_name l))

let check_arg =
  Arg.(
    value
    & opt check_conv Diagnostic.Off
    & info [ "check" ] ~docv:"LEVEL"
        ~doc:
          "Assertion layer: $(b,off) (default), $(b,cheap) (bookkeeping \
           invariants: well-formed ISFs, refinement of committed don't-care \
           phases, proper clique covers, injective encodings, structural \
           soundness of the final network), $(b,full) (additionally \
           BDD-equivalence obligations: committed symmetries, step \
           composition vs specification, emitted LUT tables) or $(b,deep) \
           (additionally the semantic SDC/ODC dataflow passes over the \
           final network against the specification's care set).  Checks \
           never change the result; findings are printed after the run and \
           any $(b,Error) finding makes the command exit 1.")

(* Findings of a checked run: print them (stderr-like, but on stdout so
   they interleave with the run summary) and fail on errors. *)
let report_findings findings =
  if findings <> [] then
    Format.printf "%a@." Diagnostic.pp_list findings;
  if Diagnostic.errors findings <> [] then exit 1

let effort_conv =
  let parse s =
    match Budget.effort_of_string s with
    | Ok e -> Ok e
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun fmt e -> Format.pp_print_string fmt (Budget.effort_name e))

let objective_conv =
  let parse s =
    match Cost.objective_of_string s with
    | Ok o -> Ok o
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv
    (parse, fun fmt o -> Format.pp_print_string fmt (Cost.objective_name o))

let objective_arg =
  Arg.(
    value
    & opt objective_conv Cost.Area
    & info [ "objective" ] ~docv:"OBJ"
        ~doc:
          "Mapping objective: $(b,area) (the default — the paper's \
           behaviour, unchanged), $(b,delay) (arrival-time-aware bound-set \
           scoring, critical items first) or $(b,balanced) (area scoring \
           with an arrival tie-in).  $(b,delay) and $(b,balanced) run a \
           two-pass portfolio — the objective pass raced against a plain \
           area pass — and keep the winner under the objective's own \
           order, so $(b,delay) never produces a deeper network than \
           $(b,area).")

let timeout_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "timeout" ] ~docv:"SECONDS"
        ~doc:
          "Wall-clock deadline for the decomposition.  On exceedance the \
           run degrades (symmetry maximization first, then the joint \
           clique cover, finally plain Shannon/MUX emission) instead of \
           failing; a correct network is always produced.")

let node_budget_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "node-budget" ] ~docv:"NODES"
        ~doc:
          "BDD node allowance beyond the nodes the specification itself \
           needs.  Each degradation stage is granted a fresh allowance; \
           see $(b,--timeout) for the degradation ladder.")

let effort_arg =
  Arg.(
    value
    & opt (some effort_conv) None
    & info [ "effort" ] ~docv:"LEVEL"
        ~doc:
          "Search effort: $(b,quick) shrinks the seed and merge budgets, \
           $(b,normal) is the default behaviour, $(b,thorough) enlarges \
           them.")

(* Build a fresh budget per decomposition run, wired to the same
   per-run stats instance the driver writes into. *)
let make_budget timeout node_budget effort ~stats () =
  Budget.create ?timeout ?node_budget ?effort ~stats ()

let run_cmd =
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:
            "Benchmark name (see $(b,mfd list)), a .blif file, or a .pla \
             file.")
  in
  let algorithm =
    Arg.(
      value
      & opt algorithm_conv Mulop.Mulop_dc
      & info [ "a"; "algorithm" ] ~docv:"ALGO"
          ~doc:"One of $(b,mulopII), $(b,mulop-dc), $(b,mulop-dcII).")
  in
  let lut_size =
    Arg.(
      value
      & opt int Config.default.Config.lut_size
      & info [ "k"; "lut-size" ] ~docv:"K" ~doc:"LUT input count (2 for gates).")
  in
  let out_blif =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output-blif" ] ~docv:"FILE" ~doc:"Write the result as BLIF.")
  in
  let out_dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE" ~doc:"Write the result as Graphviz DOT.")
  in
  let verify =
    Arg.(value & flag & info [ "verify" ] ~doc:"Check the result against the spec.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Debug logging.") in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print decomposition statistics (score-cache hit rates, \
             cofactor-vector reuse, per-phase wall time) after the run.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one machine-readable JSON object in the bench-report run \
             schema ($(b,bench_schema) 1): LUT/CLB/depth counts, wall time, \
             allocated bytes, live BDD nodes and the full statistics \
             counters — the same shape the bench harness writes into \
             $(b,BENCH_*.json).  Suppresses the text summary; file outputs \
             and exit codes are unchanged.")
  in
  let run target algorithm lut_size objective out_blif out_dot verify verbose
      stats json checks timeout node_budget effort =
    setup_logs verbose;
    let run_stats = Stats.create () in
    let m = Bdd.manager () in
    match load_spec m target with
    | exception Not_found ->
        Printf.eprintf "unknown benchmark %S (try `mfd list`)\n" target;
        exit 1
    | exception Sys_error msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
    | exception Blif.Parse_error (line, msg) ->
        Printf.eprintf "%s:%d: %s\n" target line msg;
        exit 1
    | exception Pla.Parse_error (line, msg) ->
        Printf.eprintf "%s:%d: %s\n" target line msg;
        exit 1
    | spec, name ->
        let budget = make_budget timeout node_budget effort ~stats:run_stats () in
        let outcome, wall, alloc =
          Bench_report.measure (fun () ->
              Mulop.run ~lut_size ~objective ~budget ~checks ~stats:run_stats
                m algorithm spec)
        in
        let verified =
          if verify then Some (Driver.verify m spec outcome.Mulop.network)
          else None
        in
        (match out_blif with
        | Some path -> Blif.write_file ~model:name path outcome.Mulop.network
        | None -> ());
        (match out_dot with
        | Some path ->
            let oc = open_out path in
            output_string oc (Network.to_dot outcome.Mulop.network);
            close_out oc
        | None -> ());
        if json then begin
          (* budgeted runs are wall-clock-governed, so their counters are
             not reproducible: mark them unstable for baseline diffing *)
          let r =
            {
              Bench_report.name;
              algorithm = Mulop.algorithm_name algorithm;
              stable = timeout = None && node_budget = None;
              wall;
              alloc_bytes = alloc;
              luts = Some outcome.Mulop.lut_count;
              clbs = Some outcome.Mulop.clb_count;
              depth = Some outcome.Mulop.depth;
              bdd_nodes = Some (Bdd.node_count m);
              stats = run_stats;
            }
          in
          print_endline
            (Json.to_string
               (Json.Obj
                  ([
                     ("bench_schema", Json.int Bench_report.schema_version);
                     ("run", Bench_report.run_to_json r);
                   ]
                  @
                  match verified with
                  | None -> []
                  | Some ok -> [ ("verified", Json.Bool ok) ])));
          if verified = Some false then exit 1;
          if Diagnostic.errors outcome.Mulop.findings <> [] then exit 1
        end
        else begin
          Format.printf "%s: %a@." name Mulop.pp_outcome outcome;
          if stats then Format.printf "%a@." Stats.pp run_stats;
          (match verified with
          | Some true ->
              Format.printf "verify: OK (network realizes the specification)@."
          | Some false ->
              Format.printf "verify: FAILED@.";
              exit 1
          | None -> ());
          report_findings outcome.Mulop.findings
        end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Decompose a benchmark or file into a LUT network.")
    Term.(
      const run $ target $ algorithm $ lut_size $ objective_arg $ out_blif
      $ out_dot $ verify $ verbose $ stats $ json $ check_arg $ timeout_arg
      $ node_budget_arg $ effort_arg)

let list_cmd =
  let list () =
    Format.printf "%-8s %5s %5s %-6s %s@." "name" "in" "out" "exact" "note";
    List.iter
      (fun e ->
        Format.printf "%-8s %5d %5d %-6b %s@." e.Mcnc.name e.Mcnc.ninputs
          e.Mcnc.noutputs e.Mcnc.exact e.Mcnc.note)
      Mcnc.catalogue;
    Format.printf "@.extra functions (not in the paper's tables):@.";
    List.iter
      (fun (name, _) -> Format.printf "  %s@." name)
      Extra.catalogue
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List the builtin benchmark catalogue.")
    Term.(const list $ const ())

let compare_cmd =
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TARGET" ~doc:"Benchmark name, .blif or .pla file.")
  in
  let lut_size =
    Arg.(
      value
      & opt int Config.default.Config.lut_size
      & info [ "k"; "lut-size" ] ~docv:"K" ~doc:"LUT inputs.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"Print decomposition statistics per algorithm.")
  in
  let compare target lut_size objective stats checks timeout node_budget
      effort =
    setup_logs false;
    let m = Bdd.manager () in
    match load_spec m target with
    | exception Not_found ->
        Printf.eprintf "unknown benchmark %S\n" target;
        exit 1
    | exception Sys_error msg ->
        Printf.eprintf "%s\n" msg;
        exit 1
    | exception Blif.Parse_error (line, msg) ->
        Printf.eprintf "%s:%d: %s\n" target line msg;
        exit 1
    | exception Pla.Parse_error (line, msg) ->
        Printf.eprintf "%s:%d: %s\n" target line msg;
        exit 1
    | spec, name ->
        Format.printf "%s (lut size %d%s):@." name lut_size
          (match objective with
          | Cost.Area -> ""
          | o -> ", objective " ^ Cost.objective_name o);
        let all_findings = ref [] in
        List.iter
          (fun alg ->
            let run_stats = Stats.create () in
            let budget =
              make_budget timeout node_budget effort ~stats:run_stats ()
            in
            let o =
              Mulop.run ~lut_size ~objective ~budget ~checks ~stats:run_stats
                m alg spec
            in
            Format.printf "  %a@." Mulop.pp_outcome o;
            if stats then Format.printf "  %a@." Stats.pp run_stats;
            if o.Mulop.findings <> [] then
              Format.printf "  %a@." Diagnostic.pp_list o.Mulop.findings;
            all_findings := !all_findings @ o.Mulop.findings)
          [ Mulop.Mulop_ii; Mulop.Mulop_dc; Mulop.Mulop_dc_ii ];
        if Diagnostic.errors !all_findings <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Run all three algorithms on one target and compare counts.")
    Term.(
      const compare $ target $ lut_size $ objective_arg $ stats $ check_arg
      $ timeout_arg $ node_budget_arg $ effort_arg)

let batch_cmd =
  let targets =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"TARGETS"
          ~doc:
            "Benchmark names, .blif files or .pla files — one decomposition \
             job each.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Worker domains.  Each job runs on its own BDD manager, budget \
             and stats, so results are identical for any $(docv); the pool \
             is clamped to the job count.")
  in
  let algorithm =
    Arg.(
      value
      & opt algorithm_conv Mulop.Mulop_dc
      & info [ "a"; "algorithm" ] ~docv:"ALGO"
          ~doc:"One of $(b,mulopII), $(b,mulop-dc), $(b,mulop-dcII).")
  in
  let lut_size =
    Arg.(
      value
      & opt int Config.default.Config.lut_size
      & info [ "k"; "lut-size" ] ~docv:"K" ~doc:"LUT inputs.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the report as one JSON object instead of a table.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:"Re-check every produced network against its specification.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ] ~doc:"Append each job's statistics block to the table.")
  in
  let batch targets jobs algorithm lut_size objective json verify stats
      checks timeout node_budget effort =
    setup_logs false;
    let job_of target =
      let name =
        if
          Filename.check_suffix target ".blif"
          || Filename.check_suffix target ".pla"
        then Filename.basename target
        else target
      in
      (* Structured rejection kinds: the report (and the serve protocol)
         distinguish a client's bad input from an engine fault. *)
      Batch.job ~name (fun m ->
          match load_spec m target with
          | spec, _ -> spec
          | exception Not_found ->
              raise
                (Batch.Job_rejected
                   ( Batch.Parse_error,
                     Printf.sprintf "unknown benchmark %S" target ))
          | exception Blif.Parse_error (line, msg) ->
              raise
                (Batch.Job_rejected
                   ( Batch.Parse_error,
                     Printf.sprintf "%s:%d: %s" target line msg ))
          | exception Pla.Parse_error (line, msg) ->
              raise
                (Batch.Job_rejected
                   ( Batch.Parse_error,
                     Printf.sprintf "%s:%d: %s" target line msg )))
    in
    let report =
      Batch.run ~jobs ~lut_size ~objective ~algorithm ?timeout ?node_budget
        ?effort ~checks ~verify
        (List.map job_of targets)
    in
    if json then print_string (Batch.to_json report)
    else Format.printf "%a@." (Batch.pp_text ~stats) report;
    let verify_failed =
      List.exists
        (fun r ->
          match r.Batch.outcome with
          | Ok s -> s.Batch.verified = Some false
          | Error _ -> false)
        report.Batch.results
    in
    if
      Batch.failures report <> []
      || Batch.error_findings report <> []
      || verify_failed
    then exit 1
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Decompose many targets with a pool of worker domains and print an \
          aggregate report."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Each target is one job: it gets its own BDD manager, a fresh \
              budget ($(b,--timeout) and $(b,--node-budget) are per job) and \
              its own statistics, so jobs never share mutable state and the \
              report is independent of $(b,--jobs).  A job that fails — \
              unknown benchmark, parse error, internal invariant violation — \
              is reported as a FAILED row; the rest of the batch completes.";
           `S Manpage.s_exit_status;
           `P "$(b,0) when every job succeeded (and verified, with \
               $(b,--verify));";
           `P "$(b,1) when any job failed, any Error-level finding was \
               raised, or verification failed.";
         ])
    Term.(
      const batch $ targets $ jobs $ algorithm $ lut_size $ objective_arg
      $ json $ verify
      $ stats $ check_arg $ timeout_arg $ node_budget_arg $ effort_arg)

let lint_cmd =
  let target =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FILE"
          ~doc:
            "A $(b,.blif) file (network structure passes) or a $(b,.pla) \
             file (two-level hygiene passes).  May be omitted with \
             $(b,--codes).")
  in
  let lut_size =
    Arg.(
      value
      & opt (some int) None
      & info [ "k"; "lut-size" ] ~docv:"K"
          ~doc:
            "Arm the NET005 width pass: report LUTs with more than $(docv) \
             inputs.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit findings as a JSON array instead of text.")
  in
  let codes =
    Arg.(
      value & flag
      & info [ "codes" ]
          ~doc:"List every diagnostic code with severity and description.")
  in
  let no_style =
    Arg.(
      value & flag
      & info [ "no-style" ]
          ~doc:
            "Only run the structural (Error-level) passes; skip dead-LUT, \
             duplicate-LUT and degenerate-table warnings.")
  in
  let deep =
    Arg.(
      value & flag
      & info [ "deep" ]
          ~doc:
            "Additionally run the semantic SDC/ODC dataflow passes \
             ($(b,SEM*) codes) over a $(b,.blif) network: unreachable LUT \
             rows, functionally dead or constant nodes, semantic \
             duplicates, identical outputs, unexploited don't cares.  \
             Builds global BDDs, so it costs real time on large networks; \
             a built-in budget truncates the analysis (SEM008) rather \
             than hanging.  Requires the structural passes to be clean.  \
             Ignored for $(b,.pla) files.")
  in
  let sem_nodes =
    Arg.(
      value
      & opt int 4_000_000
      & info [ "sem-nodes" ] ~docv:"N"
          ~doc:
            "BDD-node budget for the exact semantic engine under \
             $(b,--deep).  When the exact analysis exceeds it, the \
             windowed SAT engine finishes the remaining nodes.")
  in
  let sem_timeout =
    Arg.(
      value
      & opt float 30.0
      & info [ "sem-timeout" ] ~docv:"SECONDS"
          ~doc:"Wall-clock budget for the exact semantic engine under \
                $(b,--deep).")
  in
  let no_sat =
    Arg.(
      value & flag
      & info [ "no-sat" ]
          ~doc:
            "Disable the windowed SAT fallback under $(b,--deep): when \
             the exact engine's budget runs out the analysis is \
             truncated ($(b,SEM008)) instead of completed through \
             windows.  Mainly useful to compare the two engines.")
  in
  let no_dataflow =
    Arg.(
      value & flag
      & info [ "no-dataflow" ]
          ~doc:
            "Disable the dataflow screening tier under $(b,--deep).  The \
             cheap abstract-interpretation analyses still run (their \
             $(b,SUP*) findings are part of the report either way), but \
             their facts no longer let the exact and SAT engines skip \
             work.  Findings are identical with and without this flag — \
             only the cost differs — so it exists to measure what the \
             screening saves.")
  in
  let sem_steps =
    Arg.(
      value
      & opt (some int) None
      & info [ "sem-steps" ] ~docv:"N"
          ~doc:
            "Replace the BDD-node/wall-clock budget of the exact engine \
             under $(b,--deep) with a deterministic budget of $(docv) \
             polls.  Two runs with the same $(docv) truncate at the same \
             node regardless of machine speed or screening mode, which \
             makes reports reproducible and comparable.")
  in
  let lint target lut_size json codes no_style deep sem_nodes sem_timeout
      no_sat no_dataflow sem_steps =
    setup_logs false;
    if codes then begin
      List.iter
        (fun (fam, entries) ->
          Format.printf "%s@." fam;
          List.iter
            (fun (code, sev, doc) ->
              Format.printf "  %-8s %-8s %s@." code
                (Diagnostic.severity_name sev) doc)
            entries)
        Diagnostic.families;
      exit 0
    end;
    let target =
      match target with
      | Some t -> t
      | None ->
          Printf.eprintf "mfd lint: a FILE argument is required (or --codes)\n";
          exit 3
    in
    let style = not no_style in
    let analyze () =
      if Filename.check_suffix target ".blif" then begin
        let net = Blif.parse_file target in
        let structural = Net_check.analyze ?lut_size ~style net in
        if deep && Diagnostic.errors structural = [] then begin
          (* The semantic passes need a traversable network and global
             BDDs; a generous default budget keeps the command
             interactive on pathological inputs, and the windowed SAT
             fallback covers what the exact engine's budget cannot. *)
          let m = Bdd.manager () in
          let var_of_input =
            let tbl = Hashtbl.create 16 in
            List.iteri (fun k (name, _) -> Hashtbl.add tbl name k) (Network.inputs net);
            fun name -> Hashtbl.find tbl name
          in
          let check =
            match sem_steps with
            | Some n -> Careflow.step_limiter ~max_steps:n ()
            | None ->
                Careflow.limiter ~max_nodes:sem_nodes ~timeout:sem_timeout m ()
          in
          let report =
            Semantics.analyze_report ~sat_fallback:(not no_sat)
              ~dataflow:(not no_dataflow) ~check m ~var_of_input net
          in
          (structural @ report.Semantics.findings, Some report.Semantics.coverage)
        end
        else (structural, None)
      end
      else if Filename.check_suffix target ".pla" then
        let pla = Pla.parse_file target in
        (Pla_check.analyze (Bdd.manager ()) pla, None)
      else begin
        Printf.eprintf "mfd lint: %s: expected a .blif or .pla file\n" target;
        exit 3
      end
    in
    match analyze () with
    | exception Sys_error msg ->
        Printf.eprintf "%s\n" msg;
        exit 3
    | exception Blif.Parse_error (line, msg) ->
        Printf.eprintf "%s:%d: %s\n" target line msg;
        exit 3
    | exception Pla.Parse_error (line, msg) ->
        Printf.eprintf "%s:%d: %s\n" target line msg;
        exit 3
    | findings, coverage ->
        (* Analyzer coverage rides along so a script can tell a clean
           report from a mostly-skipped one. *)
        let extra =
          match coverage with
          | None -> []
          | Some c ->
              [
                ( "coverage",
                  Printf.sprintf
                    "{\"exact_nodes\":%d,\"windowed_nodes\":%d,\
                     \"truncated_nodes\":%d,\"total_nodes\":%d,\
                     \"sat_calls\":%d,\"sat_conflicts\":%d,\
                     \"windows_built\":%d,\
                     \"dataflow\":{\"nodes\":%d,\"iterations\":%d,\
                     \"facts\":%d,\"screened_out\":%d},\
                     \"wall\":{\"dataflow\":%.6f,\"exact\":%.6f,\
                     \"sat\":%.6f}}"
                    c.Semantics.exact_nodes c.Semantics.windowed_nodes
                    c.Semantics.truncated_nodes c.Semantics.total_nodes
                    c.Semantics.sat_calls c.Semantics.sat_conflicts
                    c.Semantics.windows_built c.Semantics.dataflow_nodes
                    c.Semantics.df_iterations c.Semantics.df_facts
                    c.Semantics.screened_out c.Semantics.wall_dataflow
                    c.Semantics.wall_exact c.Semantics.wall_sat );
              ]
        in
        if json then print_string (Diagnostic.to_json ~extra findings)
        else begin
          Format.printf "%a@." Diagnostic.pp_list findings;
          match coverage with
          | Some c ->
              Format.printf
                "analyzer coverage: %d/%d node(s) exact, %d via windows, %d \
                 truncated@."
                c.Semantics.exact_nodes c.Semantics.total_nodes
                c.Semantics.windowed_nodes c.Semantics.truncated_nodes;
              Format.printf
                "dataflow tier: %d fact(s) over %d node(s) in %d \
                 iteration(s), %d work unit(s) screened@."
                c.Semantics.df_facts c.Semantics.dataflow_nodes
                c.Semantics.df_iterations c.Semantics.screened_out
          | None -> ()
        end;
        exit (Diagnostic.exit_code findings)
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the static-analysis passes over a BLIF network or a PLA file."
       ~man:
         [
           `S Manpage.s_exit_status;
           `P "$(b,0) on a clean file (or Info-level findings only);";
           `P "$(b,1) when any Error-level finding is present;";
           `P "$(b,2) when Warnings but no Errors are present;";
           `P "$(b,3) on parse or I/O failure.";
         ])
    Term.(
      const lint $ target $ lut_size $ json $ codes $ no_style $ deep
      $ sem_nodes $ sem_timeout $ no_sat $ no_dataflow $ sem_steps)

let audit_cmd =
  let golden =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"GOLDEN" ~doc:"Reference network ($(b,.blif)).")
  in
  let candidate =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"CANDIDATE" ~doc:"Network under audit ($(b,.blif)).")
  in
  let pla =
    Arg.(
      value
      & opt (some string) None
      & info [ "pla" ] ~docv:"SPEC"
          ~doc:
            "A $(b,.pla) specification whose don't-care plane defines the \
             care set: the networks only have to agree where $(docv) \
             cares.  Without it every minterm is cared for (plain \
             combinational equivalence).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit findings as JSON instead of text.")
  in
  let engine =
    Arg.(
      value
      & opt (enum [ ("bdd", `Bdd); ("sat", `Sat) ]) `Bdd
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Proof engine: $(b,bdd) (default) builds global BDDs over a \
             shared input space; $(b,sat) Tseitin-encodes both networks \
             into one CNF and solves a gated miter per output with the \
             CDCL solver — no global BDDs, so it scales where the BDD \
             engine blows up, and a per-output conflict budget turns \
             blow-up into an explicit $(b,SEM008) unknown instead of a \
             hang.  With $(b,--pla), the SAT engine supports $(b,.type f) \
             and $(b,fd) specifications (don't-care rows become blocked \
             cubes); use the BDD engine for $(b,fr)/$(b,fdr).")
  in
  let audit golden candidate pla json engine =
    setup_logs false;
    let m = Bdd.manager () in
    let run () =
      let g_net = Blif.parse_file golden in
      let c_net = Blif.parse_file candidate in
      (* Both networks must be structurally sound before their global
         functions can be built. *)
      List.iter
        (fun (path, net) ->
          let errors = Diagnostic.errors (Net_check.analyze ~style:false net) in
          if errors <> [] then begin
            Printf.eprintf "mfd audit: %s is structurally broken:\n" path;
            Format.eprintf "%a@." Diagnostic.pp_list errors;
            exit 3
          end)
        [ (golden, g_net); (candidate, c_net) ];
      (* One common variable space: the union of the input names of both
         networks (and of the specification, if given). *)
      let var_tbl = Hashtbl.create 16 in
      let inputs = ref [] in
      let bind name =
        if not (Hashtbl.mem var_tbl name) then begin
          let v = Hashtbl.length var_tbl in
          Hashtbl.add var_tbl name v;
          inputs := (name, v) :: !inputs
        end
      in
      List.iter (fun (name, _) -> bind name) (Network.inputs g_net);
      List.iter (fun (name, _) -> bind name) (Network.inputs c_net);
      let common_outputs =
        List.filter
          (fun (name, _) -> List.mem_assoc name (Network.outputs c_net))
          (Network.outputs g_net)
      in
      let union_outputs =
        List.length (Network.outputs g_net)
        + List.length (Network.outputs c_net)
        - List.length common_outputs
      in
      let findings, coverage =
        match engine with
        | `Bdd ->
            let care_of_output =
              match pla with
              | None -> None
              | Some path ->
                  let p = Pla.parse_file path in
                  List.iter bind p.Pla.input_names;
                  let cols = Array.of_list p.Pla.input_names in
                  let isfs =
                    Pla.to_isfs m
                      ~var_of_column:(fun k -> Hashtbl.find var_tbl cols.(k))
                      p
                  in
                  Some
                    (fun name ->
                      match List.assoc_opt name isfs with
                      | Some isf -> Isf.care m isf
                      | None -> Bdd.one m)
            in
            let findings =
              Semantics.audit ?care_of_output m ~inputs:(List.rev !inputs)
                ~golden:g_net ~candidate:c_net
            in
            let missing = union_outputs - List.length common_outputs in
            let refuted = List.length findings - missing in
            ( findings,
              Printf.sprintf
                "{\"engine\":\"bdd\",\"outputs_checked\":%d,\
                 \"outputs_proved\":%d,\"outputs_refuted\":%d,\
                 \"outputs_unknown\":0,\"outputs_missing\":%d}"
                union_outputs
                (List.length common_outputs - refuted)
                refuted missing )
        | `Sat ->
            let dc_cubes_of_output =
              match pla with
              | None -> None
              | Some path ->
                  let p = Pla.parse_file path in
                  (match p.Pla.kind with
                  | `F | `Fd -> ()
                  | `Fr | `Fdr ->
                      Printf.eprintf
                        "mfd audit: --engine sat supports .type f/fd \
                         specifications only (the dc-set of %s is not a cube \
                         list); use --engine bdd\n"
                        path;
                      exit 3);
                  let names = Array.of_list p.Pla.input_names in
                  let outs = Array.of_list p.Pla.output_names in
                  let cubes = Array.make (Array.length outs) [] in
                  List.iter
                    (fun (cube, out_plane) ->
                      Array.iteri
                        (fun j ch ->
                          if ch = '-' then
                            let lits =
                              List.filter_map Fun.id
                                (Array.to_list
                                   (Array.mapi
                                      (fun k lit ->
                                        match lit with
                                        | Cover.L0 -> Some (names.(k), false)
                                        | Cover.L1 -> Some (names.(k), true)
                                        | Cover.Ldash -> None)
                                      cube))
                            in
                            cubes.(j) <- lits :: cubes.(j))
                        out_plane)
                    p.Pla.rows;
                  let table = Hashtbl.create 8 in
                  Array.iteri
                    (fun j name -> Hashtbl.replace table name (List.rev cubes.(j)))
                    outs;
                  Some
                    (fun name ->
                      Option.value ~default:[] (Hashtbl.find_opt table name))
            in
            let a =
              Semantics.audit_sat ?dc_cubes_of_output ~golden:g_net
                ~candidate:c_net
                (List.rev_map fst !inputs)
            in
            ( a.Semantics.audit_findings,
              Printf.sprintf
                "{\"engine\":\"sat\",\"outputs_checked\":%d,\
                 \"outputs_proved\":%d,\"outputs_refuted\":%d,\
                 \"outputs_unknown\":%d,\"outputs_missing\":%d,\
                 \"sat_calls\":%d,\"sat_conflicts\":%d}"
                union_outputs a.Semantics.outputs_proved
                a.Semantics.outputs_refuted a.Semantics.outputs_unknown
                (union_outputs - List.length common_outputs)
                a.Semantics.audit_sat_calls a.Semantics.audit_sat_conflicts )
      in
      if json then
        print_string
          (Diagnostic.to_json ~extra:[ ("coverage", coverage) ] findings)
      else if findings = [] then
        Format.printf "equivalent%s@."
          (if pla = None then "" else " modulo the specification's don't cares")
      else Format.printf "%a@." Diagnostic.pp_list findings;
      exit (if findings = [] then 0 else 1)
    in
    match run () with
    | exception Sys_error msg ->
        Printf.eprintf "%s\n" msg;
        exit 3
    | exception Blif.Parse_error (line, msg) ->
        Printf.eprintf "%s: %d: %s\n" golden line msg;
        exit 3
    | exception Pla.Parse_error (line, msg) ->
        Printf.eprintf "%s: %d: %s\n"
          (Option.value ~default:"spec" pla)
          line msg;
        exit 3
    | () -> ()
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Prove two BLIF networks equivalent, modulo a specification's \
          don't-care set."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Builds the global BDDs of both networks over a shared input \
              space and checks every output pair for equality wherever the \
              specification cares.  With $(b,--pla), the don't-care plane \
              of the PLA defines the care set per output — the audit \
              accepts any network that realizes an extension of the \
              incompletely specified function, which is exactly the \
              contract of the decomposition engine.  Each disagreement is \
              reported as a SEM007 finding with a counterexample minterm.  \
              $(b,--engine sat) proves the same obligations with the CDCL \
              solver on a per-output miter instead of global BDDs.";
           `S Manpage.s_exit_status;
           `P "$(b,0) when the networks are equivalent modulo the care set;";
           `P "$(b,1) when any output disagrees inside the care set, is \
               missing on either side, or (SAT engine) the solver budget \
               left a verdict unknown;";
           `P "$(b,3) on parse or I/O failure, or a structurally broken \
               input network.";
         ])
    Term.(const audit $ golden $ candidate $ pla $ json $ engine)

let optimize_cmd =
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"The network to optimize ($(b,.blif)).")
  in
  let pla =
    Arg.(
      value
      & opt (some string) None
      & info [ "pla" ] ~docv:"SPEC"
          ~doc:
            "A $(b,.pla) specification whose don't-care plane defines the \
             care set: rewrites may change output functions outside it, \
             and the guarding audit only demands agreement inside it.  \
             Without it every minterm is cared for.")
  in
  let out_blif =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output-blif" ] ~docv:"FILE"
          ~doc:"Write the optimized network as BLIF.")
  in
  let passes =
    Arg.(
      value & opt int 4
      & info [ "passes" ] ~docv:"N"
          ~doc:"Maximum analyze/rewrite/audit iterations.")
  in
  let engine =
    Arg.(
      value
      & opt (enum [ ("bdd", `Bdd); ("sat", `Sat) ]) `Bdd
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Audit engine guarding each rewrite pass: $(b,bdd) (default) \
             is the care-set-aware BDD audit; $(b,sat) uses the CDCL \
             miter — stricter (it ignores $(b,--pla) and demands full \
             equivalence) but immune to BDD blow-up on big networks.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit one machine-readable JSON object instead of the summary.")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:"Print analysis statistics (SAT calls, windows) after the run.")
  in
  let no_dataflow =
    Arg.(
      value & flag
      & info [ "no-dataflow" ]
          ~doc:
            "Disable the dataflow screening tier: the exact and SAT \
             analyses do all their own work instead of skipping what the \
             cheap abstract-interpretation facts already decided.  Every \
             screen is fact-justified and each candidate is audited \
             either way, so this only trades speed for nothing — it \
             exists to measure the screening.")
  in
  let optimize target pla out_blif passes engine json stats no_dataflow =
    setup_logs false;
    let m = Bdd.manager () in
    let run () =
      let net = Blif.parse_file target in
      let errors = Diagnostic.errors (Net_check.analyze ~style:false net) in
      if errors <> [] then begin
        Printf.eprintf "mfd optimize: %s is structurally broken:\n" target;
        Format.eprintf "%a@." Diagnostic.pp_list errors;
        exit 3
      end;
      (* The care set must live in the optimizer's input variable space:
         input [k] of the network is BDD variable [k]. *)
      let care_of_output =
        match pla with
        | None -> None
        | Some path ->
            let p = Pla.parse_file path in
            let index_of =
              let tbl = Hashtbl.create 16 in
              List.iteri
                (fun k (name, _) -> Hashtbl.replace tbl name k)
                (Network.inputs net);
              tbl
            in
            let cols = Array.of_list p.Pla.input_names in
            Array.iter
              (fun name ->
                if not (Hashtbl.mem index_of name) then begin
                  Printf.eprintf
                    "mfd optimize: specification input %s is not an input of \
                     %s\n"
                    name target;
                  exit 3
                end)
              cols;
            let isfs =
              Pla.to_isfs m
                ~var_of_column:(fun k -> Hashtbl.find index_of cols.(k))
                p
            in
            Some
              (fun name ->
                match List.assoc_opt name isfs with
                | Some isf -> Isf.care m isf
                | None -> Bdd.one m)
      in
      let run_stats = Stats.create () in
      let o =
        Optimize.run ?care_of_output ~max_passes:passes ~audit_engine:engine
          ~dataflow:(not no_dataflow) ~stats:run_stats m net
      in
      (match out_blif with
      | Some path ->
          Blif.write_file
            ~model:(Filename.remove_extension (Filename.basename target))
            path o.Optimize.network
      | None -> ());
      if json then begin
        let action a =
          Json.Obj
            [
              ("rule", Json.Str (Optimize.rule_name a.Optimize.rule));
              ("node", Json.Str a.Optimize.node);
              ("detail", Json.Str a.Optimize.detail);
            ]
        in
        let finding (f : Diagnostic.t) =
          Json.Obj
            [
              ("code", Json.Str f.Diagnostic.code);
              ( "severity",
                Json.Str (Diagnostic.severity_name f.Diagnostic.severity) );
              ( "loc",
                match f.Diagnostic.loc with
                | Some l -> Json.Str l
                | None -> Json.Null );
              ("message", Json.Str f.Diagnostic.message);
            ]
        in
        print_endline
          (Json.to_string
             (Json.Obj
                [
                  ("file", Json.Str target);
                  ("luts_before", Json.int o.Optimize.luts_before);
                  ("luts_after", Json.int o.Optimize.luts_after);
                  ("clbs_before", Json.int o.Optimize.clbs_before);
                  ("clbs_after", Json.int o.Optimize.clbs_after);
                  ("passes", Json.int o.Optimize.passes);
                  ("reverted", Json.int o.Optimize.reverted);
                  ("actions", Json.Arr (List.map action o.Optimize.actions));
                  ("equivalent", Json.Bool (o.Optimize.audit = []));
                  ( "findings",
                    Json.Arr (List.map finding o.Optimize.audit) );
                ]))
      end
      else begin
        Format.printf
          "%s: luts %d -> %d, clbs %d -> %d (%d pass%s, %d rewrite%s%s)@."
          (Filename.basename target) o.Optimize.luts_before
          o.Optimize.luts_after o.Optimize.clbs_before o.Optimize.clbs_after
          o.Optimize.passes
          (if o.Optimize.passes = 1 then "" else "es")
          (List.length o.Optimize.actions)
          (if List.length o.Optimize.actions = 1 then "" else "s")
          (if o.Optimize.reverted = 0 then ""
           else Printf.sprintf ", %d reverted" o.Optimize.reverted);
        List.iter
          (fun a ->
            Format.printf "  %-16s %s: %s@."
              (Optimize.rule_name a.Optimize.rule)
              a.Optimize.node a.Optimize.detail)
          o.Optimize.actions;
        if o.Optimize.audit = [] then
          Format.printf "audit: equivalent%s@."
            (if pla = None || engine = `Sat then ""
             else " modulo the specification's don't cares")
        else Format.printf "%a@." Diagnostic.pp_list o.Optimize.audit;
        if stats then Format.printf "%a@." Stats.pp run_stats
      end;
      exit (if o.Optimize.audit = [] then 0 else 1)
    in
    match run () with
    | exception Sys_error msg ->
        Printf.eprintf "%s\n" msg;
        exit 3
    | exception Blif.Parse_error (line, msg) ->
        Printf.eprintf "%s:%d: %s\n" target line msg;
        exit 3
    | exception Pla.Parse_error (line, msg) ->
        Printf.eprintf "%s: %d: %s\n" (Option.value ~default:"spec" pla) line
          msg;
        exit 3
    | () -> ()
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:
         "Rewrite a LUT network with its computed don't cares, under an \
          equivalence audit."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "The rewrite loop behind the $(b,SEM*) lint findings: each \
              pass analyzes the network (exact SDC/ODC dataflow with the \
              windowed SAT fallback), folds constant and dead nodes \
              (SEM002/SEM003), merges semantic duplicates and twin LUTs \
              (SEM004/SEM006), repoints identical outputs (SEM005) and \
              refills don't-care table rows to drop redundant fanins — \
              then audits the candidate against the original input and \
              keeps it only when the audit proves equivalence on the care \
              set.  A rejected candidate is retried with only the \
              composition-safe subset of rewrites before the loop stops.";
           `S Manpage.s_exit_status;
           `P "$(b,0) on success — the output is provably equivalent;";
           `P "$(b,1) when the final audit reports findings (not expected: \
               failing candidates are reverted, never kept);";
           `P "$(b,3) on parse or I/O failure, or a structurally broken \
               input network.";
         ])
    Term.(
      const optimize $ target $ pla $ out_blif $ passes $ engine $ json $ stats
      $ no_dataflow)

(* ---- the daemon and its client ---- *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix domain socket of the daemon.")

let port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "port" ] ~docv:"N" ~doc:"TCP port of the daemon.")

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"TCP host (with $(b,--port)).")

let endpoint_of socket port host =
  match (socket, port) with
  | Some path, _ -> Server.Unix_socket path
  | None, Some p -> Server.Tcp (host, p)
  | None, None ->
      prerr_endline "mfd: need --socket PATH or --port N";
      exit 2

let serve_cmd =
  let jobs =
    Arg.(
      value & opt int 2
      & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Worker domains decomposing jobs.")
  in
  let queue_depth =
    Arg.(
      value & opt int 16
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Bounded job-queue capacity.  A request arriving on a full \
             queue is rejected with $(b,queue-full) and a retry hint — \
             explicit backpressure instead of unbounded buffering.")
  in
  let cache_mb =
    Arg.(
      value & opt int 64
      & info [ "cache-mb" ] ~docv:"MB"
          ~doc:
            "Byte cap of the cross-request result cache (LRU eviction).  \
             Keyed on canonical function fingerprints, so repeat \
             submissions of the same function are answered without \
             recomputation.")
  in
  let max_frame_mb =
    Arg.(
      value & opt int 16
      & info [ "max-frame-mb" ] ~docv:"MB" ~doc:"Largest accepted request frame.")
  in
  let verbose = Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Debug logging.") in
  let serve socket port host jobs queue_depth cache_mb max_frame_mb verbose =
    setup_logs verbose;
    let listen = endpoint_of socket port host in
    let config =
      {
        (Server.default_config listen) with
        Server.jobs = max 1 jobs;
        queue_depth = max 1 queue_depth;
        cache_mb = max 1 cache_mb;
        max_frame = max 1 max_frame_mb * 1024 * 1024;
      }
    in
    let on_ready () =
      (match listen with
      | Server.Unix_socket path ->
          Printf.printf "mfd serve: listening on %s" path
      | Server.Tcp (host, port) ->
          Printf.printf "mfd serve: listening on %s:%d" host port);
      Printf.printf " (%d worker%s, queue %d, cache %d MiB)\n%!" config.Server.jobs
        (if config.Server.jobs = 1 then "" else "s")
        config.Server.queue_depth config.Server.cache_mb
    in
    Server.run ~on_ready config
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the persistent decomposition daemon."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Listens on a Unix socket or TCP port for length-prefixed JSON \
              requests (see $(b,mfd submit)).  Jobs run on a fixed pool of \
              worker domains, each with its own BDD manager and budget — \
              the same shared-nothing engine as $(b,mfd batch) — so a \
              served result is byte-identical to the corresponding \
              $(b,mfd run).  Results of unbudgeted runs are cached across \
              requests, keyed on canonical function fingerprints rather \
              than per-run BDD node ids.";
           `P "A $(b,shutdown) request drains queued jobs and exits cleanly.";
         ])
    Term.(
      const serve $ socket_arg $ port_arg $ host_arg $ jobs $ queue_depth
      $ cache_mb $ max_frame_mb $ verbose)

let submit_cmd =
  let target =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:
            "Benchmark name, .blif file or .pla file (files are read \
             locally and sent inline).  Required unless $(b,--ping), \
             $(b,--server-stats) or $(b,--shutdown) is given.")
  in
  let op_arg =
    Arg.(
      value
      & vflag `Run
          [
            (`Ping, info [ "ping" ] ~doc:"Check that the daemon is alive.");
            ( `Stats,
              info [ "server-stats" ]
                ~doc:"Report daemon counters (cache hits, queue depth, ...)." );
            (`Shutdown, info [ "shutdown" ] ~doc:"Ask the daemon to exit.");
          ])
  in
  let algorithm =
    Arg.(
      value
      & opt algorithm_conv Mulop.Mulop_dc
      & info [ "a"; "algorithm" ] ~docv:"ALGO"
          ~doc:"One of $(b,mulopII), $(b,mulop-dc), $(b,mulop-dcII).")
  in
  let lut_size =
    Arg.(
      value
      & opt int Config.default.Config.lut_size
      & info [ "k"; "lut-size" ] ~docv:"K" ~doc:"LUT input count (2 for gates).")
  in
  let out_blif =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output-blif" ] ~docv:"FILE"
          ~doc:"Write the served network as BLIF.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the raw response JSON instead of a summary.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ] ~doc:"Ask the server to check the result by BDD equivalence.")
  in
  let read_file path =
    match In_channel.with_open_bin path In_channel.input_all with
    | text -> text
    | exception Sys_error msg ->
        Printf.eprintf "mfd submit: %s\n" msg;
        exit 2
  in
  let submit target socket port host op algorithm lut_size out_blif json verify
      checks timeout node_budget effort =
    let endpoint = endpoint_of socket port host in
    let op =
      match op with
      | `Ping -> Proto.Ping
      | `Stats -> Proto.Stats
      | `Shutdown -> Proto.Shutdown
      | `Run ->
          let target =
            match target with
            | Some t -> t
            | None ->
                prerr_endline "mfd submit: TARGET required (or --ping/--server-stats/--shutdown)";
                exit 2
          in
          let source =
            if Filename.check_suffix target ".blif" then
              Proto.Blif_text (read_file target)
            else if Filename.check_suffix target ".pla" then
              Proto.Pla_text (read_file target)
            else Proto.Target target
          in
          Proto.Run
            {
              Proto.source;
              lut_size;
              algorithm;
              effort;
              timeout;
              node_budget;
              checks;
              verify;
            }
    in
    let client =
      try Client.connect endpoint
      with Unix.Unix_error (e, _, _) ->
        Printf.eprintf "mfd submit: cannot connect: %s\n" (Unix.error_message e);
        exit 3
    in
    let response =
      match Client.call client op with
      | Ok resp -> resp
      | Error msg ->
          Printf.eprintf "mfd submit: protocol error: %s\n" msg;
          exit 3
      | exception (Frame.Closed | Unix.Unix_error _) ->
          prerr_endline "mfd submit: connection lost";
          exit 3
    in
    Client.close client;
    if json then
      print_endline (Proto.to_string (Proto.response_to_json response));
    match response with
    | Proto.Pong _ ->
        if not json then print_endline "pong";
        exit 0
    | Proto.Bye _ ->
        if not json then print_endline "server shutting down";
        exit 0
    | Proto.Ok_stats (_, s) ->
        if not json then
          Printf.printf
            "jobs served    %d\n\
             cache hits     %d\n\
             cache misses   %d\n\
             cache entries  %d\n\
             cache bytes    %d\n\
             queue          %d/%d\n\
             workers        %d\n\
             uptime         %.1fs\n"
            s.Proto.jobs_served s.Proto.result_hits s.Proto.result_misses
            s.Proto.cache_entries s.Proto.cache_bytes s.Proto.queue_depth
            s.Proto.queue_capacity s.Proto.workers s.Proto.uptime_seconds;
        exit 0
    | Proto.Ok_run (_, r) ->
        (match out_blif with
        | Some path ->
            let oc = open_out path in
            output_string oc r.Proto.blif;
            close_out oc
        | None -> ());
        if not json then begin
          Printf.printf
            "%s: %-10s luts=%-4d clbs=%-4d depth=%-3d steps=%d shannon=%d"
            r.Proto.job r.Proto.algorithm r.Proto.luts r.Proto.clbs
            r.Proto.depth r.Proto.steps r.Proto.shannon;
          if r.Proto.degraded_to <> Budget.stage_name Budget.Full then
            Printf.printf " degraded=%s" r.Proto.degraded_to;
          (match r.Proto.verified with
          | Some ok -> Printf.printf " verified=%s" (if ok then "ok" else "FAILED")
          | None -> ());
          Printf.printf "%s (%.3fs)\n"
            (if r.Proto.cached then " [cached]" else "")
            r.Proto.seconds
        end;
        exit (match r.Proto.verified with Some false -> 1 | _ -> 0)
    | Proto.Err { code; message; retry_after; _ } ->
        Printf.eprintf "mfd submit: %s: %s%s\n"
          (Proto.error_code_name code)
          message
          (match retry_after with
          | Some t -> Printf.sprintf " (retry in %.2fs)" t
          | None -> "");
        exit
          (match code with
          | Proto.Queue_full | Proto.Shutting_down -> 4
          | c when Proto.client_fault c -> 2
          | _ -> 1)
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit a decomposition job to a running $(b,mfd serve) daemon."
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Connects to the daemon, sends one request, prints the result.  \
              A served decomposition is byte-identical to the corresponding \
              $(b,mfd run); a repeat submission of the same function is \
              answered from the daemon's result cache ($(b,[cached]) in the \
              summary, $(b,\"cached\":true) in the JSON).";
           `S Manpage.s_exit_status;
           `P "$(b,0) on success (including ping/stats/shutdown);";
           `P
             "$(b,1) when the job failed server-side ($(b,failed), \
              $(b,internal), $(b,out-of-budget)) or $(b,--verify) reported a \
              mismatch;";
           `P
             "$(b,2) on a client fault: usage error, unreadable input file, \
              or a request the server rejects deterministically \
              ($(b,bad-request), $(b,too-large), $(b,parse-error));";
           `P "$(b,3) when the daemon is unreachable or the protocol broke;";
           `P
             "$(b,4) when the request was not admitted but may be retried \
              ($(b,queue-full) — with a retry hint — or $(b,shutting-down)).";
         ])
    Term.(
      const submit $ target $ socket_arg $ port_arg $ host_arg $ op_arg
      $ algorithm $ lut_size $ out_blif $ json $ verify $ check_arg
      $ timeout_arg $ node_budget_arg $ effort_arg)

let () =
  let doc = "multi-output functional decomposition with don't cares" in
  let info = Cmd.info "mfd" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd;
            list_cmd;
            compare_cmd;
            batch_cmd;
            lint_cmd;
            audit_cmd;
            optimize_cmd;
            serve_cmd;
            submit_cmd;
          ]))
