let lut cnf ~out ~fanins tt =
  let k = Array.length fanins in
  if Bv.nvars tt <> k then
    invalid_arg "Encode.lut: truth-table arity does not match fanin count";
  (* One clause per fanin code [c]: if the fanins spell [c], the output
     must take [tt(c)].  Written as a disjunction, each fanin literal
     takes the polarity *opposite* to its bit in [c]. *)
  for c = 0 to (1 lsl k) - 1 do
    let clause = ref [ Cnf.lit_of_bool out (Bv.get tt c) ] in
    for j = 0 to k - 1 do
      let bit = (c lsr j) land 1 = 1 in
      clause := Cnf.lit_of_bool fanins.(j) (not bit) :: !clause
    done;
    Cnf.add_clause cnf !clause
  done

let constant cnf v b = Cnf.add_clause cnf [ Cnf.lit_of_bool v b ]

let equiv_neg cnf a b =
  Cnf.add_clause cnf [ Cnf.pos a; Cnf.pos b ];
  Cnf.add_clause cnf [ Cnf.neg a; Cnf.neg b ]

let xor_var cnf a b =
  let x = Cnf.fresh cnf in
  Cnf.add_clause cnf [ Cnf.neg x; Cnf.pos a; Cnf.pos b ];
  Cnf.add_clause cnf [ Cnf.neg x; Cnf.neg a; Cnf.neg b ];
  Cnf.add_clause cnf [ Cnf.pos x; Cnf.pos a; Cnf.neg b ];
  Cnf.add_clause cnf [ Cnf.pos x; Cnf.neg a; Cnf.pos b ];
  x

type env = {
  net : Network.t;
  vars : int array;  (* signal id -> CNF var, -1 outside the cone *)
}

let of_network cnf net =
  let vars = Array.make (max (Network.node_count net) 1) (-1) in
  Network.iter_cone net (fun s ->
      let v = Cnf.fresh cnf in
      vars.(Network.signal_id s) <- v;
      match Network.view net s with
      | `Input _ -> ()
      | `Const b -> constant cnf v b
      | `Lut (fanins, tt) ->
          let fv =
            Array.map (fun f -> vars.(Network.signal_id f)) fanins
          in
          Array.iter
            (fun x ->
              if x < 0 then
                invalid_arg "Encode.of_network: fanin outside the cone")
            fv;
          lut cnf ~out:v ~fanins:fv tt);
  (* inputs no output depends on sit outside every cone; they still get
     (free) variables so [input_vars] is total *)
  List.iter
    (fun (_, s) ->
      let id = Network.signal_id s in
      if vars.(id) < 0 then vars.(id) <- Cnf.fresh cnf)
    (Network.inputs net);
  { net; vars }

let var_of_signal env s =
  let id = Network.signal_id s in
  if id < 0 || id >= Array.length env.vars || env.vars.(id) < 0 then
    invalid_arg "Encode.var_of_signal: signal outside the encoded cone";
  env.vars.(id)

let input_vars env =
  List.map (fun (n, s) -> (n, var_of_signal env s)) (Network.inputs env.net)

let output_vars env =
  List.map (fun (n, s) -> (n, var_of_signal env s)) (Network.outputs env.net)
