let () =
  Alcotest.run "mfd"
    [
      ("bdd", Test_bdd.suite);
      ("logic", Test_logic.suite);
      ("graph", Test_graph.suite);
      ("network", Test_network.suite);
      ("symmetry", Test_symmetry.suite);
      ("decomp", Test_decomp.suite);
      ("bvec", Test_bvec.suite);
      ("benchmarks", Test_benchmarks.suite);
      ("driver", Test_driver.suite);
      ("paper-props", Test_paper_props.suite);
      ("reorder", Test_reorder.suite);
      ("extra", Test_extra.suite);
      ("budget", Test_budget.suite);
      ("batch", Test_batch.suite);
      ("sat", Test_sat.suite);
      ("check", Test_check.suite);
      ("dataflow", Test_dataflow.suite);
      ("semantics", Test_semantics.suite);
      ("optimize", Test_optimize.suite);
      ("objective", Test_objective.suite);
      ("serve", Test_serve.suite);
      ("bench-report", Test_bench_report.suite);
    ]
