test/test_benchmarks.ml: Alcotest Arith Bdd Circuits Driver Isf List Mcnc Mulop Network Printf Randnet String
