(* The resource governor: degraded runs must still produce correct
   networks, unlimited budgets must be inert, and the BLIF/PLA parsers
   must report malformed input with a line number instead of crashing. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let names n = List.init n (Printf.sprintf "x%d")

let cone_spec m ~seed =
  let net = Randnet.cones ~ninputs:24 ~noutputs:6 ~seed () in
  Randnet.spec_of_network m net

let lut_count net = (Network.stats net).Network.lut_count

(* ---- governor mechanics ---- *)

let governor_tests =
  [
    Alcotest.test_case "unlimited budget is inert" `Quick (fun () ->
        check_bool "not limited" false (Budget.is_limited Budget.unlimited);
        let m = Bdd.manager () in
        let spec = cone_spec m ~seed:7 in
        let baseline = Driver.decompose m spec in
        let governed = Driver.decompose ~budget:(Budget.create ()) m spec in
        check_int "same lut count" (lut_count baseline) (lut_count governed));
    Alcotest.test_case "check raises past the node limit" `Quick (fun () ->
        let m = Bdd.manager () in
        let b = Budget.create ~node_budget:0 () in
        Budget.attach b m;
        ignore (Bdd.and_ m (Bdd.var m 0) (Bdd.var m 1));
        (match Budget.check b ~where:"test" with
        | () -> Alcotest.fail "expected Out_of_budget"
        | exception Budget.Out_of_budget { reason = Budget.Nodes; where } ->
            check_string "where" "test" where
        | exception Budget.Out_of_budget { reason = Budget.Deadline; _ } ->
            Alcotest.fail "wrong reason");
        Budget.detach b m);
    Alcotest.test_case "exempt suspends the checks" `Quick (fun () ->
        let m = Bdd.manager () in
        let b = Budget.create ~node_budget:0 () in
        Budget.attach b m;
        ignore (Bdd.and_ m (Bdd.var m 0) (Bdd.var m 1));
        Budget.exempt b (fun () -> Budget.check b ~where:"inside");
        Budget.detach b m);
    Alcotest.test_case "degradation ladder is sticky and terminal" `Quick
      (fun () ->
        let m = Bdd.manager () in
        let b = Budget.create ~timeout:10.0 () in
        Budget.attach b m;
        check_bool "starts full" true (Budget.stage b = Budget.Full);
        let s1 = Budget.degrade b m Budget.Deadline in
        check_bool "no-symmetry" true (s1 = Budget.No_symmetry);
        let s2 = Budget.degrade b m Budget.Deadline in
        check_bool "no-sharing" true (s2 = Budget.No_sharing);
        let s3 = Budget.degrade b m Budget.Deadline in
        check_bool "shannon-only" true (s3 = Budget.Shannon_only);
        let s4 = Budget.degrade b m Budget.Deadline in
        check_bool "stays terminal" true (s4 = Budget.Shannon_only);
        (* terminal stage disarms the budget: checks are free *)
        Budget.check b ~where:"after");
    Alcotest.test_case "attach re-arms a reused budget" `Quick (fun () ->
        let b = Budget.create ~node_budget:0 () in
        (* run 1: exceed the allowance, ride the ladder to the bottom *)
        let m1 = Bdd.manager () in
        Budget.attach b m1;
        ignore (Bdd.and_ m1 (Bdd.var m1 0) (Bdd.var m1 1));
        (match Budget.check b ~where:"run1" with
        | () -> Alcotest.fail "expected Out_of_budget in run 1"
        | exception Budget.Out_of_budget _ -> ());
        ignore (Budget.degrade b m1 Budget.Nodes);
        ignore (Budget.degrade b m1 Budget.Nodes);
        ignore (Budget.degrade b m1 Budget.Nodes);
        check_bool "run 1 ends at the terminal stage" true
          (Budget.stage b = Budget.Shannon_only);
        Budget.detach b m1;
        (* run 2: attach must reset the stage and re-anchor the node
           baseline at the new manager, not inherit run 1's state *)
        let m2 = Bdd.manager () in
        Budget.attach b m2;
        check_bool "stage reset to full" true (Budget.stage b = Budget.Full);
        Budget.check b ~where:"run2-fresh";
        ignore (Bdd.and_ m2 (Bdd.var m2 0) (Bdd.var m2 1));
        (match Budget.check b ~where:"run2" with
        | () -> Alcotest.fail "expected a fresh allowance to be enforced"
        | exception Budget.Out_of_budget { reason = Budget.Nodes; _ } -> ()
        | exception Budget.Out_of_budget { reason = Budget.Deadline; _ } ->
            Alcotest.fail "wrong reason");
        Budget.detach b m2);
    Alcotest.test_case "polls land in the run's own stats" `Quick (fun () ->
        let stats_a = Stats.create () and stats_b = Stats.create () in
        let a = Budget.create ~node_budget:1_000_000 ~stats:stats_a () in
        let b = Budget.create ~node_budget:1_000_000 ~stats:stats_b () in
        let m = Bdd.manager () in
        Budget.attach a m;
        Budget.check a ~where:"one";
        Budget.check a ~where:"two";
        Budget.detach a m;
        check_bool "budget a counted its own polls" true
          (stats_a.Stats.budget_checks >= 2);
        let a_polls = stats_a.Stats.budget_checks in
        Budget.attach b m;
        Budget.check b ~where:"three";
        Budget.detach b m;
        check_bool "budget b counted its own polls" true
          (stats_b.Stats.budget_checks >= 1);
        (* the growth hook may add polls, but never to the other run *)
        check_int "no cross-talk into a" a_polls stats_a.Stats.budget_checks);
    Alcotest.test_case "effort names roundtrip" `Quick (fun () ->
        List.iter
          (fun e ->
            match Budget.effort_of_string (Budget.effort_name e) with
            | Ok e' -> check_bool (Budget.effort_name e) true (e = e')
            | Error msg -> Alcotest.fail msg)
          [ Budget.Quick; Budget.Normal; Budget.Thorough ];
        check_bool "unknown is an error" true
          (Result.is_error (Budget.effort_of_string "frantic")));
    Alcotest.test_case "effort scales the search knobs" `Quick (fun () ->
        let cfg = Config.mulop_dc in
        let quick =
          Budget.apply_effort (Budget.create ~effort:Budget.Quick ()) cfg
        in
        let thorough =
          Budget.apply_effort (Budget.create ~effort:Budget.Thorough ()) cfg
        in
        let normal = Budget.apply_effort (Budget.create ()) cfg in
        check_bool "normal is identity" true (normal = cfg);
        check_bool "quick shrinks seeds" true
          (quick.Config.seeds <= cfg.Config.seeds);
        check_bool "quick shrinks symmetry budget" true
          (quick.Config.symmetry_budget <= cfg.Config.symmetry_budget);
        check_int "thorough grows seeds" (2 * cfg.Config.seeds)
          thorough.Config.seeds);
    Alcotest.test_case "driver errors render human-readably" `Quick (fun () ->
        let contains s sub =
          let n = String.length sub in
          let rec at i =
            i + n <= String.length s && (String.sub s i n = sub || at (i + 1))
          in
          at 0
        in
        check_bool "iteration budget" true
          (contains
             (Driver.internal_error_message (Driver.Iteration_limit 42))
             "42");
        check_bool "registered printer" true
          (contains
             (Printexc.to_string (Driver.Internal Driver.Worklist_deadlock))
             "deadlock"))
  ]

(* ---- degraded decompositions ---- *)

let degradation_tests =
  [
    Alcotest.test_case "expired deadline: shannon-only, still correct" `Quick
      (fun () ->
        let m = Bdd.manager () in
        let spec = cone_spec m ~seed:3 in
        let stats = Stats.create () in
        let budget = Budget.create ~timeout:0.0 ~stats () in
        let report = Driver.decompose_report ~budget ~stats m spec in
        check_bool "degraded to shannon-only" true
          (report.Driver.degraded_to = Budget.Shannon_only);
        check_bool "verified" true
          (Driver.verify m spec report.Driver.network);
        let stages =
          List.map (fun (s, _, _) -> s) (Stats.degradations stats)
        in
        check_bool "ladder recorded in firing order" true
          (stages = [ "no-symmetry"; "no-sharing"; "shannon-only" ]);
        check_bool "budget polls recorded in the run's own stats" true
          (stats.Stats.budget_checks > 0));
    Alcotest.test_case "tiny node budget: degraded but correct" `Quick
      (fun () ->
        let m = Bdd.manager () in
        let spec = cone_spec m ~seed:11 in
        let budget = Budget.create ~node_budget:64 () in
        let report = Driver.decompose_report ~budget m spec in
        check_bool "degraded" true
          (report.Driver.degraded_to <> Budget.Full);
        check_bool "verified" true
          (Driver.verify m spec report.Driver.network));
    Alcotest.test_case "generous budget: no degradation, same result" `Quick
      (fun () ->
        let m = Bdd.manager () in
        let spec = cone_spec m ~seed:7 in
        let baseline = Driver.decompose m spec in
        let budget = Budget.create ~timeout:3600.0 ~node_budget:50_000_000 () in
        let report = Driver.decompose_report ~budget m spec in
        check_bool "not degraded" true
          (report.Driver.degraded_to = Budget.Full);
        check_int "identical lut count" (lut_count baseline)
          (lut_count report.Driver.network));
  ]

(* ---- parser error paths ---- *)

let expect_parse_error name ~line ~parse input =
  Alcotest.test_case name `Quick (fun () ->
      match parse input with
      | _ -> Alcotest.fail "expected a parse error"
      | exception Blif.Parse_error (ln, _) -> check_int "line" line ln
      | exception Pla.Parse_error (ln, _) -> check_int "line" line ln)

let blif_parse s = ignore (Blif.parse s)
let pla_parse s = ignore (Pla.parse s)

let parser_tests =
  [
    expect_parse_error "blif: cube arity mismatch" ~line:5 ~parse:blif_parse
      ".model bad\n.inputs a b\n.outputs y\n.names a b y\n1-1 1\n.end\n";
    expect_parse_error "blif: malformed cube" ~line:5 ~parse:blif_parse
      ".model bad\n.inputs a b\n.outputs y\n.names a b y\nxy 1\n.end\n";
    expect_parse_error "blif: cube outside .names" ~line:4 ~parse:blif_parse
      ".model bad\n.inputs a b\n.outputs y\n11 1\n.end\n";
    expect_parse_error "blif: unsupported directive" ~line:2 ~parse:blif_parse
      ".model bad\n.latch a b\n.end\n";
    expect_parse_error "blif: undefined signal" ~line:0 ~parse:blif_parse
      ".model bad\n.inputs a\n.outputs y\n.names a ghost y\n11 1\n.end\n";
    expect_parse_error "pla: bad output-plane char" ~line:3 ~parse:pla_parse
      ".i 2\n.o 1\n11 z\n.e\n";
    expect_parse_error "pla: cube before .i/.o" ~line:1 ~parse:pla_parse
      "11 1\n.i 2\n.o 1\n.e\n";
    expect_parse_error "pla: input plane width" ~line:3 ~parse:pla_parse
      ".i 3\n.o 1\n11 1\n.e\n";
    expect_parse_error "pla: unknown .type" ~line:3 ~parse:pla_parse
      ".i 2\n.o 1\n.type fx\n11 1\n.e\n";
    expect_parse_error "pla: unsupported directive" ~line:3 ~parse:pla_parse
      ".i 2\n.o 1\n.phase 1\n11 1\n.e\n";
    expect_parse_error "pla: missing .i/.o" ~line:0 ~parse:pla_parse ".e\n";
  ]

(* ---- properties: degraded results stay BDD-equivalent ---- *)

let gen_fun n =
  let open QCheck2.Gen in
  let+ bits = list_size (return (1 lsl n)) bool in
  let arr = Array.of_list bits in
  Bv.of_fun n (fun i -> arr.(i))

let props =
  [
    QCheck2.Test.make
      ~name:"node-budget degradation preserves the specification" ~count:40
      QCheck2.Gen.(pair (gen_fun 7) (int_range 16 512))
      (fun (bv, node_budget) ->
        let m = Bdd.manager () in
        let f = Bv.to_bdd m bv in
        let spec = Driver.spec_of_csf m (names 7) [ ("f", f) ] in
        let budget = Budget.create ~node_budget () in
        let net = Driver.decompose ~budget m spec in
        Driver.verify m spec net);
    QCheck2.Test.make
      ~name:"expired deadline preserves multi-output specifications" ~count:20
      QCheck2.Gen.(pair (gen_fun 6) (gen_fun 6))
      (fun (bv1, bv2) ->
        let m = Bdd.manager () in
        let spec =
          Driver.spec_of_csf m (names 6)
            [ ("f", Bv.to_bdd m bv1); ("g", Bv.to_bdd m bv2) ]
        in
        let budget = Budget.create ~timeout:0.0 () in
        let net = Driver.decompose ~budget m spec in
        Driver.verify m spec net);
  ]

let suite =
  governor_tests @ degradation_tests @ parser_tests
  @ List.map (fun p -> QCheck_alcotest.to_alcotest ~long:false p) props
