type t = {
  ninputs : int;
  noutputs : int;
  input_names : string list;
  output_names : string list;
  rows : (Cover.cube * char array) list;
  kind : [ `F | `Fd | `Fr | `Fdr ];
}

exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

let parse text =
  let lines = String.split_on_char '\n' text in
  let ninputs = ref (-1) and noutputs = ref (-1) in
  let input_names = ref [] and output_names = ref [] in
  let kind = ref `Fd in
  let rows = ref [] in
  let stop = ref false in
  List.iteri
    (fun idx line ->
      let ln = idx + 1 in
      if not !stop then begin
        let line =
          match String.index_opt line '#' with
          | Some i -> String.sub line 0 i
          | None -> line
        in
        let tokens =
          String.split_on_char ' ' (String.trim line)
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (fun s -> s <> "")
        in
        match tokens with
        | [] -> ()
        | ".i" :: [ n ] -> ninputs := int_of_string n
        | ".o" :: [ n ] -> noutputs := int_of_string n
        | ".ilb" :: names -> input_names := names
        | ".ob" :: names -> output_names := names
        | ".p" :: _ -> ()
        | ".type" :: [ ty ] -> (
            match ty with
            | "f" -> kind := `F
            | "fd" -> kind := `Fd
            | "fr" -> kind := `Fr
            | "fdr" -> kind := `Fdr
            | _ -> fail ln (Printf.sprintf "unknown .type %s" ty))
        | [ ".e" ] | [ ".end" ] -> stop := true
        | d :: _ when String.length d > 0 && d.[0] = '.' ->
            fail ln (Printf.sprintf "unsupported directive %s" d)
        | [ ip; op ] ->
            if !ninputs < 0 || !noutputs < 0 then
              fail ln "cube before .i/.o declaration";
            if String.length ip <> !ninputs then fail ln "input plane width";
            if String.length op <> !noutputs then fail ln "output plane width";
            let cube = Cover.cube_of_string ip in
            let out =
              Array.init !noutputs (fun k ->
                  match op.[k] with
                  | ('0' | '1' | '-' | '~') as c -> c
                  | '2' -> '-'
                  | c -> fail ln (Printf.sprintf "bad output-plane char %C" c))
            in
            rows := (cube, out) :: !rows
        | _ -> fail ln "malformed line"
      end)
    lines;
  if !ninputs < 0 || !noutputs < 0 then fail 0 "missing .i or .o";
  let default_names prefix count = List.init count (Printf.sprintf "%s%d" prefix) in
  let input_names =
    if !input_names = [] then default_names "x" !ninputs else !input_names
  in
  let output_names =
    if !output_names = [] then default_names "f" !noutputs else !output_names
  in
  if List.length input_names <> !ninputs then fail 0 ".ilb arity";
  if List.length output_names <> !noutputs then fail 0 ".ob arity";
  {
    ninputs = !ninputs;
    noutputs = !noutputs;
    input_names;
    output_names;
    rows = List.rev !rows;
    kind = !kind;
  }

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  parse text

let to_isfs m ~var_of_column t =
  let cube_bdd c = Cover.cube_to_bdd m var_of_column c in
  List.mapi
    (fun k name ->
      let sets tag =
        t.rows
        |> List.filter_map (fun (cube, out) ->
               if out.(k) = tag then Some (cube_bdd cube) else None)
        |> Bdd.or_list m
      in
      let on = sets '1' in
      let dc =
        (* '~' means "no meaning" in espresso's output plane; only '-'
           contributes don't cares. *)
        match t.kind with
        | `Fd | `Fdr -> Bdd.diff m (sets '-') on
        | `F | `Fr -> Bdd.zero m
      in
      let isf =
        match t.kind with
        | `F | `Fd -> Isf.make m ~on ~dc
        | `Fr | `Fdr ->
            let off = Bdd.diff m (sets '0') (Bdd.or_ m on dc) in
            let mentioned = Bdd.or_list m [ on; dc; off ] in
            (* Unmentioned minterms of an fr/fdr PLA are don't cares. *)
            Isf.make m ~on ~dc:(Bdd.or_ m dc (Bdd.not_ m mentioned))
      in
      (name, isf))
    t.output_names

let print t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf ".i %d\n.o %d\n" t.ninputs t.noutputs);
  Buffer.add_string buf (".ilb " ^ String.concat " " t.input_names ^ "\n");
  Buffer.add_string buf (".ob " ^ String.concat " " t.output_names ^ "\n");
  let kind_str =
    match t.kind with `F -> "f" | `Fd -> "fd" | `Fr -> "fr" | `Fdr -> "fdr"
  in
  Buffer.add_string buf (Printf.sprintf ".type %s\n.p %d\n" kind_str (List.length t.rows));
  List.iter
    (fun (cube, out) ->
      Buffer.add_string buf (Cover.string_of_cube cube);
      Buffer.add_char buf ' ';
      Array.iter (Buffer.add_char buf) out;
      Buffer.add_char buf '\n')
    t.rows;
  Buffer.add_string buf ".e\n";
  Buffer.contents buf
