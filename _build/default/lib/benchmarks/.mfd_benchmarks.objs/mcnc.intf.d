lib/benchmarks/mcnc.mli: Bdd Driver
