type t = { on : Bdd.t; dc : Bdd.t }

let make m ~on ~dc =
  if not (Bdd.is_zero (Bdd.and_ m on dc)) then
    invalid_arg "Isf.make: on-set and dc-set intersect";
  { on; dc }

let of_csf m on = { on; dc = Bdd.zero m }

let on t = t.on
let dc t = t.dc
let off m t = Bdd.not_ m (Bdd.or_ m t.on t.dc)
let care m t = Bdd.not_ m t.dc
let is_completely_specified t = Bdd.is_zero t.dc

let of_on_off m ~on ~off =
  if not (Bdd.is_zero (Bdd.and_ m on off)) then
    invalid_arg "Isf.of_on_off: on-set and off-set intersect";
  make m ~on ~dc:(Bdd.nor m on off)

let extends m g t =
  Bdd.is_zero (Bdd.diff m t.on g) && Bdd.is_zero (Bdd.and_ m g (off m t))

let equal a b = Bdd.equal a.on b.on && Bdd.equal a.dc b.dc

let compatible m a b =
  Bdd.is_zero (Bdd.and_ m a.on (off m b))
  && Bdd.is_zero (Bdd.and_ m b.on (off m a))

let join m a b =
  if not (compatible m a b) then invalid_arg "Isf.join: incompatible";
  let on = Bdd.or_ m a.on b.on in
  let off_ = Bdd.or_ m (off m a) (off m b) in
  make m ~on ~dc:(Bdd.nor m on off_)

let assign_all_zero m t = { t with dc = Bdd.zero m }
let assign_all_one m t = { on = Bdd.or_ m t.on t.dc; dc = Bdd.zero m }

let restrict m t v b =
  make m ~on:(Bdd.restrict m t.on v b) ~dc:(Bdd.restrict m t.dc v b)

let cofactor_vector m t vars =
  let rec go t = function
    | [] -> [ t ]
    | v :: rest -> go (restrict m t v false) rest @ go (restrict m t v true) rest
  in
  Array.of_list (go t vars)

let extend_cofactor_vector m vec vars v =
  let ons = Bdd.extend_cofactor_vector m (Array.map on vec) vars v in
  let dcs = Bdd.extend_cofactor_vector m (Array.map dc vec) vars v in
  Array.map2 (fun on dc -> make m ~on ~dc) ons dcs

let swap_vars m t i j =
  make m ~on:(Bdd.swap_vars m t.on i j) ~dc:(Bdd.swap_vars m t.dc i j)

let negate_var m t v =
  make m ~on:(Bdd.negate_var m t.on v) ~dc:(Bdd.negate_var m t.dc v)

let support m t =
  List.sort_uniq Stdlib.compare (Bdd.support m t.on @ Bdd.support m (off m t))

let random_extension m t st =
  if Bdd.is_zero t.dc then t.on
  else
    let vars = Bdd.support m t.dc in
    let filler =
      List.fold_left
        (fun acc v ->
          let lit = if Random.State.bool st then Bdd.var m v else Bdd.nvar m v in
          if Random.State.bool st then Bdd.and_ m acc lit else Bdd.or_ m acc lit)
        (if Random.State.bool st then Bdd.one m else Bdd.zero m)
        vars
    in
    Bdd.or_ m t.on (Bdd.and_ m t.dc filler)

let pp fmt t =
  Format.fprintf fmt "@[<hv>{on=%a;@ dc=%a}@]" Bdd.pp t.on Bdd.pp t.dc
