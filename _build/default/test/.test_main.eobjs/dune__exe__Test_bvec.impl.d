test/test_bvec.ml: Alcotest Array Bdd Bvec Fun List Printf QCheck2 QCheck_alcotest
