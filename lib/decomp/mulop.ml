type algorithm = Mulop_ii | Mulop_dc | Mulop_dc_ii

type outcome = {
  algorithm : algorithm;
  network : Network.t;
  lut_count : int;
  clb_count : int;
  depth : int;
  step_count : int;
  shannon_count : int;
  alpha_count : int;
  degraded_to : Budget.stage;
  findings : Diagnostic.t list;
}

let algorithm_name = function
  | Mulop_ii -> "mulopII"
  | Mulop_dc -> "mulop-dc"
  | Mulop_dc_ii -> "mulop-dcII"

let config_of ?lut_size ?(objective = Cost.Area) algorithm =
  (* The default LUT size is the engine's, not a local literal: a
     drifting copy here once let [mfd run] and the library default
     disagree. *)
  let lut_size =
    match lut_size with
    | Some k -> k
    | None -> Config.default.Config.lut_size
  in
  let base =
    match algorithm with
    | Mulop_ii -> Config.mulop_ii
    | Mulop_dc | Mulop_dc_ii -> Config.mulop_dc
  in
  Config.with_objective objective (Config.with_lut_size lut_size base)

let run ?lut_size ?(objective = Cost.Area) ?budget ?checks ?stats m algorithm
    spec =
  let run_with obj =
    let cfg = config_of ?lut_size ~objective:obj algorithm in
    let report = Driver.decompose_report ~cfg ?budget ?checks ?stats m spec in
    let net = Network.sweep report.Driver.network in
    let nstats = Network.stats net in
    let policy =
      match algorithm with
      | Mulop_ii | Mulop_dc -> Clb.First_fit
      | Mulop_dc_ii -> Clb.Max_matching
    in
    {
      algorithm;
      network = net;
      lut_count = nstats.Network.lut_count;
      clb_count = Clb.clb_count ~lut_size:cfg.Config.lut_size policy net;
      depth = nstats.Network.depth;
      step_count = report.Driver.step_count;
      shannon_count = report.Driver.shannon_count;
      alpha_count = report.Driver.alpha_count;
      degraded_to = report.Driver.degraded_to;
      findings = report.Driver.findings;
    }
  in
  match objective with
  | Cost.Area -> run_with Cost.Area
  | (Cost.Delay | Cost.Balanced) as obj ->
      (* Portfolio: the arrival-aware pass is a heuristic and can lose
         to plain area mapping on circuits where the area choice was
         already depth-optimal.  Running both and keeping the winner
         under the objective's own order makes [delay] never worse
         than [area] on the axis the user asked for.  Both passes
         share [budget] (degradations carry over) and accumulate into
         the same [stats]. *)
      let cand = run_with obj in
      let base = run_with Cost.Area in
      let key o =
        match obj with
        | Cost.Delay -> (o.depth, o.lut_count, o.clb_count)
        | Cost.Balanced | Cost.Area ->
            (o.lut_count + o.depth, o.depth, o.lut_count)
      in
      if key cand <= key base then cand else base

let pp_outcome fmt o =
  Format.fprintf fmt "%-10s luts=%-4d clbs=%-4d depth=%-3d steps=%d shannon=%d"
    (algorithm_name o.algorithm) o.lut_count o.clb_count o.depth o.step_count
    o.shannon_count;
  (* Keep ungoverned output byte-identical: the stage only shows up when
     a budget actually degraded the run. *)
  (match o.degraded_to with
  | Budget.Full -> ()
  | stage -> Format.fprintf fmt " degraded=%s" (Budget.stage_name stage));
  (* Same policy for the assertion layer: silent unless it found
     something. *)
  match o.findings with
  | [] -> ()
  | fs ->
      Format.fprintf fmt " findings=%dE/%dW/%dI"
        (Diagnostic.count Diagnostic.Error fs)
        (Diagnostic.count Diagnostic.Warning fs)
        (Diagnostic.count Diagnostic.Info fs)
