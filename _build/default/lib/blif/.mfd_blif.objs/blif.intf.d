lib/blif/blif.mli: Network
