lib/logic/isf.ml: Array Bdd Format List Random Stdlib
