(* Monotonic time source for durations; wall clock only for timestamps.

   [Unix.gettimeofday] is subject to NTP steps: a clock adjustment in
   the middle of a run yields negative or wildly skewed durations in
   batch/serve reports.  All interval measurement in this library
   (job timing, phase clocks, budget deadlines) goes through [now],
   which is CLOCK_MONOTONIC via the bechamel stub — a zero-dependency
   [@noalloc] external, safe to call concurrently from worker
   domains. *)

let now () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9

let wall = Unix.gettimeofday
