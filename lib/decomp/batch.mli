(** Domain-parallel batch decomposition.

    The natural unit of parallelism of the algorithm is the whole
    circuit: every decomposition run owns its hash-consed
    {!Bdd.manager}, its {!Budget.t} and its {!Stats.t}, so runs are
    {e shared-nothing} and scale across OCaml 5 domains without locks.
    [run] drains a list of jobs with a fixed pool of worker domains
    (the calling domain is worker 0); each claimed job builds its
    specification, decomposes it under its own fresh budget, and writes
    its row of the report.  The only shared mutable state is the queue
    cursor (an [Atomic.t]) and the result array, each slot of which is
    written by exactly one worker.

    Failures are isolated per job and {e structured}: a parse error of
    a lazily loaded file, a {!Driver.Internal} violation, budget
    exhaustion and anything else become that job's [Error] row — with
    its {!error_kind} preserved, so downstream consumers (batch
    reports, the serve protocol's error codes) can tell a client error
    from an engine fault instead of grepping a flattened string.

    The report is deterministic: job results are independent of
    scheduling (each run's manager starts empty, so node ids and every
    downstream choice are reproducible) and rows keep submission order,
    so [run ~jobs:1] and [run ~jobs:8] produce identical summaries —
    the batch determinism property tested in [test_batch.ml]. *)

type job = {
  name : string;  (** label used in the report *)
  build : Bdd.manager -> Driver.spec;
      (** called inside the claiming worker domain, on that run's own
          manager; may raise (e.g. a parse error) — the failure is
          confined to this job *)
}

val job : name:string -> (Bdd.manager -> Driver.spec) -> job

(** {1 Failure taxonomy} *)

type error_kind =
  | Parse_error
      (** the job's input could not be turned into a specification
          (malformed BLIF/PLA, unknown benchmark) — a {e client}
          error: resubmitting the same input will fail again *)
  | Internal
      (** a {!Driver.Internal} invariant violation — an {e engine}
          fault worth a bug report *)
  | Out_of_budget
      (** a {!Budget.Out_of_budget} escaped the driver's degradation
          ladder (it normally cannot; seeing this is a budget placed
          on work outside the driver's control) *)
  | Other  (** anything else, message preserved verbatim *)

val error_kind_name : error_kind -> string
(** Stable lowercase-hyphen names: ["parse-error"], ["internal"],
    ["out-of-budget"], ["other"] — used in batch JSON and as serve
    protocol error codes. *)

type error = { kind : error_kind; message : string }

exception Job_rejected of error_kind * string
(** For job [build] functions: raise this to classify the failure
    (e.g. [Job_rejected (Parse_error, "foo.blif:3: ...")]).  Any other
    exception is classified by {!classify}. *)

val classify : exn -> error
(** The taxonomy map: {!Job_rejected} keeps its kind,
    {!Driver.Internal} is [Internal], {!Budget.Out_of_budget} is
    [Out_of_budget], [Failure] and everything else are [Other]. *)

(** {1 Reports} *)

type summary = {
  algorithm : Mulop.algorithm;
  network : Network.t;
      (** the produced LUT network — self-contained (plain truth
          tables, no BDD references), so it outlives the job's manager;
          the serve daemon renders it back to the client as BLIF *)
  lut_count : int;
  clb_count : int;
  depth : int;
  step_count : int;
  shannon_count : int;
  alpha_count : int;
  degraded_to : Budget.stage;
  findings : Diagnostic.t list;
  verified : bool option;  (** [None] unless [run ~verify:true] *)
}

type job_report = {
  job : string;
  outcome : (summary, error) result;
  seconds : float;
      (** monotonic wall time of this job inside its worker — immune
          to NTP steps (never negative) *)
  stats : Stats.t;  (** the run's own counters and phase timings *)
}

type report = {
  results : job_report list;  (** in job submission order *)
  domains : int;  (** worker domains actually used *)
  wall : float;  (** monotonic wall time of the whole batch *)
}

val run_one :
  ?lut_size:int ->
  ?objective:Cost.objective ->
  ?timeout:float ->
  ?node_budget:int ->
  ?effort:Budget.effort ->
  ?checks:Diagnostic.level ->
  ?verify:bool ->
  stats:Stats.t ->
  Mulop.algorithm ->
  Bdd.manager ->
  Driver.spec ->
  (summary, error) result
(** Decompose one already-built specification on the manager that
    built it, under a fresh budget, classifying any failure.  The
    shared engine of {!run_job} and of the serve daemon's workers
    (which build the spec first to fingerprint it for the
    cross-request cache, then run on the same manager — the exact
    code path of a CLI [mfd run], which is what makes served results
    deterministic replicas). *)

val run_job :
  ?lut_size:int ->
  ?objective:Cost.objective ->
  ?timeout:float ->
  ?node_budget:int ->
  ?effort:Budget.effort ->
  ?checks:Diagnostic.level ->
  ?verify:bool ->
  Mulop.algorithm ->
  job ->
  job_report
(** One job start to finish: fresh manager, build, {!run_one}, timed
    monotonically. *)

val run :
  ?jobs:int ->
  ?lut_size:int ->
  ?objective:Cost.objective ->
  ?algorithm:Mulop.algorithm ->
  ?timeout:float ->
  ?node_budget:int ->
  ?effort:Budget.effort ->
  ?checks:Diagnostic.level ->
  ?verify:bool ->
  job list ->
  report
(** Decompose every job.  [jobs] (default 1) is the number of worker
    domains, clamped to the job count; [timeout]/[node_budget]/[effort]
    parameterize a {e fresh} {!Budget.t} per job (the timeout is per
    job, not for the whole batch).  [objective] (default {!Cost.Area})
    is threaded to {!Mulop.run} — delay/balanced jobs run the two-pass
    portfolio inside their own domain.  [verify] (default [false]) re-checks
    every produced network against its specification by BDD
    equivalence.  [checks] is threaded to the driver's assertion layer.
    Raises only on asynchronous exceptions (e.g. an interrupt); job
    failures are reported, not raised. *)

val failures : report -> (string * error) list
(** Failed jobs as [(job, structured error)]. *)

val error_findings : report -> (string * Diagnostic.t) list
(** Error-level assertion findings across all jobs, with their job. *)

val pp_text : ?stats:bool -> Format.formatter -> report -> unit
(** Aligned per-job table with totals; failed rows read
    [FAILED[<kind>]: <message>]; [~stats:true] appends every job's
    {!Stats} block. *)

val to_json : report -> string
(** The whole report as one JSON object ([domains], [wall_seconds],
    [jobs] array with per-job status, counts and findings; failed rows
    carry ["error_kind"] and ["error"]). *)
