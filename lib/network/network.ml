type signal = int

type node =
  | Input of string
  | Const of bool
  | Lut of { fanins : signal array; tt : Bv.t }

type t = {
  mutable nodes : node array;
  (* LUT level of each node, maintained incrementally at construction
     time (inputs and constants at 0, a LUT one above its deepest
     fanin) so arrival-time-aware scoring can ask for depths while the
     network is still being grown, without a per-query traversal. *)
  mutable levels : int array;
  mutable used : int;
  mutable input_list : (string * signal) list;  (* reverse order *)
  mutable output_list : (string * signal) list;  (* reverse order *)
  struct_hash : (string, signal) Hashtbl.t;
}

let create () =
  {
    nodes = Array.make 64 (Const false);
    levels = Array.make 64 0;
    used = 0;
    input_list = [];
    output_list = [];
    struct_hash = Hashtbl.create 64;
  }

let push t node =
  if t.used = Array.length t.nodes then begin
    let bigger = Array.make (2 * t.used) (Const false) in
    Array.blit t.nodes 0 bigger 0 t.used;
    t.nodes <- bigger;
    let lbigger = Array.make (2 * t.used) 0 in
    Array.blit t.levels 0 lbigger 0 t.used;
    t.levels <- lbigger
  end;
  t.nodes.(t.used) <- node;
  t.levels.(t.used) <-
    (match node with
    | Input _ | Const _ -> 0
    | Lut { fanins; _ } ->
        1 + Array.fold_left (fun acc f -> max acc t.levels.(f)) 0 fanins);
  t.used <- t.used + 1;
  t.used - 1

let level t s =
  if s < 0 || s >= t.used then invalid_arg "Network.level: bad signal";
  t.levels.(s)

let add_input t name =
  if List.mem_assoc name t.input_list then
    invalid_arg (Printf.sprintf "Network.add_input: duplicate input %s" name);
  let s = push t (Input name) in
  t.input_list <- (name, s) :: t.input_list;
  s

let const t b =
  let key = if b then "#1" else "#0" in
  match Hashtbl.find_opt t.struct_hash key with
  | Some s -> s
  | None ->
      let s = push t (Const b) in
      Hashtbl.add t.struct_hash key s;
      s

let tt_key fanins tt =
  let buf = Buffer.create 32 in
  Array.iter (fun s -> Buffer.add_string buf (string_of_int s); Buffer.add_char buf ',') fanins;
  Buffer.add_char buf ':';
  for i = 0 to (1 lsl Bv.nvars tt) - 1 do
    Buffer.add_char buf (if Bv.get tt i then '1' else '0')
  done;
  Buffer.contents buf

(* Dependency check of a local table on its k-th input. *)
let tt_depends tt k = not (Bv.equal (Bv.cofactor tt k false) (Bv.cofactor tt k true))

let rec add_lut t ~fanins ~tt =
  let fanins = Array.of_list fanins in
  if Array.length fanins <> Bv.nvars tt then
    invalid_arg "Network.add_lut: table arity does not match fanins";
  Array.iter
    (fun s ->
      if s < 0 || s >= t.used then invalid_arg "Network.add_lut: bad fanin")
    fanins;
  (* Simplification 1: drop fanins the table does not depend on. *)
  let dependent =
    List.filter (fun k -> tt_depends tt k) (List.init (Array.length fanins) Fun.id)
  in
  if List.length dependent < Array.length fanins then begin
    let keep = Array.of_list dependent in
    let narrow =
      Bv.of_fun (Array.length keep) (fun i ->
          (* Position the kept bits, others fixed to 0. *)
          let idx = ref 0 in
          Array.iteri
            (fun new_k old_k -> if (i lsr new_k) land 1 = 1 then idx := !idx lor (1 lsl old_k))
            keep;
          Bv.get tt !idx)
    in
    add_lut t ~fanins:(List.map (fun k -> fanins.(k)) dependent) ~tt:narrow
  end
  else if Array.length fanins = 0 then const t (Bv.get tt 0)
  else if Array.length fanins = 1 && Bv.equal tt (Bv.var 1 0) then fanins.(0)
  else begin
    (* Simplification 2: constant fanins folded in. *)
    let const_val s =
      match t.nodes.(s) with Const b -> Some b | Input _ | Lut _ -> None
    in
    let folded = ref None in
    Array.iteri
      (fun k s ->
        match (const_val s, !folded) with
        | Some b, None -> folded := Some (k, b)
        | (Some _ | None), _ -> ())
      fanins;
    match !folded with
    | Some (k, b) ->
        let tt' = Bv.cofactor tt k b in
        add_lut t ~fanins:(Array.to_list fanins) ~tt:tt'
        (* the cofactor no longer depends on k, so simplification 1 fires *)
    | None -> (
        let key = tt_key fanins tt in
        match Hashtbl.find_opt t.struct_hash key with
        | Some s -> s
        | None ->
            let s = push t (Lut { fanins; tt }) in
            Hashtbl.add t.struct_hash key s;
            s)
  end

let set_output t name s =
  if s < 0 || s >= t.used then invalid_arg "Network.set_output: bad signal";
  if List.mem_assoc name t.output_list then
    invalid_arg (Printf.sprintf "Network.set_output: duplicate output %s" name);
  t.output_list <- (name, s) :: t.output_list

let tt2 f = Bv.of_fun 2 (fun i -> f ((i lsr 0) land 1 = 1) ((i lsr 1) land 1 = 1))

let not_gate t a = add_lut t ~fanins:[ a ] ~tt:(Bv.of_fun 1 (fun i -> i = 0))
let and_gate t a b = add_lut t ~fanins:[ a; b ] ~tt:(tt2 ( && ))
let or_gate t a b = add_lut t ~fanins:[ a; b ] ~tt:(tt2 ( || ))
let xor_gate t a b = add_lut t ~fanins:[ a; b ] ~tt:(tt2 ( <> ))
let xnor_gate t a b = add_lut t ~fanins:[ a; b ] ~tt:(tt2 ( = ))

let mux_gate t ~sel ~hi ~lo =
  (* fanin order: sel = var 0, hi = var 1, lo = var 2 *)
  let tt =
    Bv.of_fun 3 (fun i ->
        let s = i land 1 = 1 and h = (i lsr 1) land 1 = 1 and l = (i lsr 2) land 1 = 1 in
        if s then h else l)
  in
  add_lut t ~fanins:[ sel; hi; lo ] ~tt

let inputs t = List.rev t.input_list
let outputs t = List.rev t.output_list
let signal_equal (a : signal) b = a = b
let signal_id (s : signal) : int = s
let node_count t = t.used

let signal_of_id t i =
  if i < 0 || i >= t.used then invalid_arg "Network.signal_of_id: out of range";
  i

let view t s =
  match t.nodes.(s) with
  | Input name -> `Input name
  | Const b -> `Const b
  | Lut { fanins; tt } -> `Lut (Array.copy fanins, tt)

module Unsafe = struct
  let signal (i : int) : signal = i

  let set_lut t s ~fanins ~tt =
    t.nodes.(s) <- Lut { fanins = Array.copy fanins; tt };
    (* Best-effort level refresh: out-of-range fanins (these mutations
       exist to corrupt networks deliberately) contribute nothing, and
       downstream levels go stale — [level] is only meaningful on
       networks built through the checked constructors. *)
    t.levels.(s) <-
      1
      + Array.fold_left
          (fun acc f -> if f >= 0 && f < t.used then max acc t.levels.(f) else acc)
          0 fanins

  let alias_input t name s = t.input_list <- (name, s) :: t.input_list
  let alias_output t name s = t.output_list <- (name, s) :: t.output_list

  let redirect_output t name s =
    t.output_list <-
      List.map (fun (n, s0) -> if n = name then (n, s) else (n, s0)) t.output_list
end

let fanins t s =
  match t.nodes.(s) with
  | Input _ | Const _ -> []
  | Lut { fanins; _ } -> Array.to_list fanins

let local_tt t s =
  match t.nodes.(s) with Input _ | Const _ -> None | Lut { tt; _ } -> Some tt

let const_value t s =
  match t.nodes.(s) with Const b -> Some b | Input _ | Lut _ -> None

let input_name t s =
  match t.nodes.(s) with Input n -> Some n | Const _ | Lut _ -> None

let lut_signals_marked t mark =
  let acc = ref [] in
  for s = t.used - 1 downto 0 do
    if mark.(s) then
      match t.nodes.(s) with
      | Lut _ -> acc := s :: !acc
      | Input _ | Const _ -> ()
  done;
  !acc

type stats = {
  input_count : int;
  output_count : int;
  lut_count : int;
  max_fanin : int;
  depth : int;
  two_input_gates : int;
  inverters : int;
}

let reachable t =
  let mark = Array.make t.used false in
  let rec go s =
    if not mark.(s) then begin
      mark.(s) <- true;
      match t.nodes.(s) with
      | Input _ | Const _ -> ()
      | Lut { fanins; _ } -> Array.iter go fanins
    end
  in
  List.iter (fun (_, s) -> go s) t.output_list;
  mark

let lut_signals t = lut_signals_marked t (reachable t)

(* Node ids are allocated in construction order, so ascending id order
   is a topological order on any sound network. *)
let iter_cone t f =
  let mark = reachable t in
  for s = 0 to t.used - 1 do
    if mark.(s) then f s
  done

let stats t =
  let mark = reachable t in
  let lut_count = ref 0 and max_fanin = ref 0 in
  let two = ref 0 and inv = ref 0 in
  let depth = Array.make t.used 0 in
  for s = 0 to t.used - 1 do
    if mark.(s) then
      match t.nodes.(s) with
      | Input _ | Const _ -> ()
      | Lut { fanins; _ } ->
          incr lut_count;
          let k = Array.length fanins in
          max_fanin := max !max_fanin k;
          if k = 2 then incr two;
          if k = 1 then incr inv;
          depth.(s) <- 1 + Array.fold_left (fun acc f -> max acc depth.(f)) 0 fanins
  done;
  let d =
    List.fold_left (fun acc (_, s) -> max acc depth.(s)) 0 t.output_list
  in
  {
    input_count = List.length t.input_list;
    output_count = List.length t.output_list;
    lut_count = !lut_count;
    max_fanin = !max_fanin;
    depth = d;
    two_input_gates = !two;
    inverters = !inv;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "@[inputs=%d outputs=%d luts=%d max_fanin=%d depth=%d gates2=%d inv=%d@]"
    s.input_count s.output_count s.lut_count s.max_fanin s.depth
    s.two_input_gates s.inverters

let lut_count_within t k =
  let mark = reachable t in
  let count = ref 0 in
  for s = 0 to t.used - 1 do
    if mark.(s) then
      match t.nodes.(s) with
      | Input _ | Const _ -> ()
      | Lut { fanins; _ } ->
          if Array.length fanins > k then
            invalid_arg "Network.lut_count_within: node exceeds LUT size";
          incr count
  done;
  !count

let eval t assignment =
  let values = Array.make t.used false in
  for s = 0 to t.used - 1 do
    values.(s) <-
      (match t.nodes.(s) with
      | Input name -> assignment name
      | Const b -> b
      | Lut { fanins; tt } ->
          let idx = ref 0 in
          Array.iteri (fun k f -> if values.(f) then idx := !idx lor (1 lsl k)) fanins;
          Bv.get tt !idx)
  done;
  List.map (fun (name, s) -> (name, values.(s))) (List.rev t.output_list)

let output_bdds t m ~var_of_input =
  let bdds = Array.make t.used (Bdd.zero m) in
  for s = 0 to t.used - 1 do
    bdds.(s) <-
      (match t.nodes.(s) with
      | Input name -> Bdd.var m (var_of_input name)
      | Const b -> if b then Bdd.one m else Bdd.zero m
      | Lut { fanins; tt } ->
          (* Shannon-expand the local table over the fanin BDDs. *)
          let rec go k idx =
            if k = Array.length fanins then
              if Bv.get tt idx then Bdd.one m else Bdd.zero m
            else
              Bdd.ite m bdds.(fanins.(k)) (go (k + 1) (idx lor (1 lsl k))) (go (k + 1) idx)
          in
          go 0 0)
  done;
  List.map (fun (name, s) -> (name, bdds.(s))) (List.rev t.output_list)

let equivalent_to_spec t m ~var_of_input spec =
  let got = output_bdds t m ~var_of_input in
  List.length got = List.length spec
  && List.for_all
       (fun (name, f) ->
         match List.assoc_opt name got with
         | Some g -> Bdd.equal f g
         | None -> false)
       spec

let equivalent t1 t2 =
  let names1 = List.map fst (inputs t1) and names2 = List.map fst (inputs t2) in
  if List.sort compare names1 <> List.sort compare names2 then false
  else begin
    let m = Bdd.manager () in
    let var_of = Hashtbl.create 16 in
    List.iteri (fun i name -> Hashtbl.add var_of name i) names1;
    let lookup name = Hashtbl.find var_of name in
    let spec = output_bdds t1 m ~var_of_input:lookup in
    equivalent_to_spec t2 m ~var_of_input:lookup spec
  end

let sweep t =
  let mark = reachable t in
  let fresh = create () in
  let remap = Array.make t.used (-1) in
  (* keep declared inputs even if unused, to preserve the interface *)
  List.iter
    (fun (name, s) -> remap.(s) <- add_input fresh name)
    (List.rev t.input_list);
  for s = 0 to t.used - 1 do
    if mark.(s) && remap.(s) < 0 then
      remap.(s) <-
        (match t.nodes.(s) with
        | Input name -> List.assoc name (inputs fresh)
        | Const b -> const fresh b
        | Lut { fanins; tt } ->
            add_lut fresh
              ~fanins:(Array.to_list (Array.map (fun f -> remap.(f)) fanins))
              ~tt)
  done;
  List.iter (fun (name, s) -> set_output fresh name remap.(s)) (List.rev t.output_list);
  fresh

let to_dot t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "digraph network {\n  rankdir=LR;\n";
  let mark = reachable t in
  for s = 0 to t.used - 1 do
    if mark.(s) then begin
      (match t.nodes.(s) with
      | Input name ->
          Buffer.add_string buf
            (Printf.sprintf "  n%d [shape=triangle,label=\"%s\"];\n" s name)
      | Const b ->
          Buffer.add_string buf
            (Printf.sprintf "  n%d [shape=box,label=\"%d\"];\n" s (Bool.to_int b))
      | Lut { fanins; _ } ->
          Buffer.add_string buf
            (Printf.sprintf "  n%d [shape=ellipse,label=\"LUT%d\"];\n" s
               (Array.length fanins)));
      match t.nodes.(s) with
      | Lut { fanins; _ } ->
          Array.iter
            (fun f -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" f s))
            fanins
      | Input _ | Const _ -> ()
    end
  done;
  List.iter
    (fun (name, s) ->
      Buffer.add_string buf
        (Printf.sprintf "  o_%s [shape=plaintext,label=\"%s\"];\n  n%d -> o_%s;\n"
           name name s name))
    (List.rev t.output_list);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp fmt t = pp_stats fmt (stats t)
