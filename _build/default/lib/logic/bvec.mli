(** Word-level arithmetic over vectors of BDDs (LSB first).  The
    specification substrate for the paper's arithmetic experiments:
    adders, partial multipliers and the arithmetic MCNC functions are
    defined through this module and then handed to the decomposition
    engine as BDD vectors. *)

type t = Bdd.t array
(** Bit [0] is the least significant. *)

val width : t -> int
val consti : Bdd.manager -> width:int -> int -> t
val inputs : Bdd.manager -> first_var:int -> width:int -> t
(** Bit [k] is the projection of variable [first_var + k]. *)

val zero_extend : Bdd.manager -> t -> width:int -> t
val extract : t -> lo:int -> hi:int -> t
(** Bits [lo .. hi] inclusive. *)

val add : Bdd.manager -> t -> t -> t
(** Same-width addition, result one bit wider (carry out kept). *)

val add_mod : Bdd.manager -> t -> t -> t
(** Same-width addition modulo [2^width]. *)

val sum : Bdd.manager -> width:int -> t list -> t
(** Multi-operand addition into [width] bits (modulo [2^width]). *)

val mul : Bdd.manager -> t -> t -> t
(** Product, full width [w1 + w2]. *)

val mulc : Bdd.manager -> t -> int -> t
(** Product with a non-negative constant; width grows as needed. *)

val popcount : Bdd.manager -> Bdd.t list -> t
(** Binary weight of a list of bits. *)

val mux : Bdd.manager -> Bdd.t -> t -> t -> t
(** Bitwise if-then-else (widths must agree). *)

val equal_const : Bdd.manager -> t -> int -> Bdd.t
val ult : Bdd.manager -> t -> t -> Bdd.t
(** Unsigned less-than. *)

val to_int : t -> (int -> bool) -> int
(** Evaluate under an assignment of BDD variables. *)

val named_outputs : string -> t -> (string * Bdd.t) list
(** [named_outputs "f" v] is [(f0, bit 0); (f1, bit 1); ...]. *)
