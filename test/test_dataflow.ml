(* The screening tier: behaviour of the generic fixpoint solver
   (including the widening safety valve), soundness of every shipped
   domain against a brute-force reference evaluator and the exact
   Careflow engine, and the pure-observer property of the screened
   semantic report. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tt bits =
  let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
  Bv.of_fun (log2 (String.length bits)) (fun i -> bits.[i] = '1')

(* Reference evaluator, independent of both engines under test: every
   reachable signal's value under [assign], optionally with one node
   complemented (for pointwise-observability checks). *)
let eval_all ?flip net assign =
  let tbl = Hashtbl.create 64 in
  Network.iter_cone net (fun s ->
      let id = Network.signal_id s in
      let v =
        match Network.view net s with
        | `Input nm -> assign nm
        | `Const b -> b
        | `Lut (fanins, table) ->
            let code = ref 0 in
            Array.iteri
              (fun j f ->
                if Hashtbl.find tbl (Network.signal_id f) then
                  code := !code lor (1 lsl j))
              fanins;
            Bv.get table !code
      in
      let v = match flip with Some fid when fid = id -> not v | _ -> v in
      Hashtbl.add tbl id v);
  tbl

let outputs_under net tbl =
  List.map
    (fun (name, s) -> (name, Hashtbl.find tbl (Network.signal_id s)))
    (Network.outputs net)

(* Assignment [vec] over the primary inputs, with [pin] taking
   precedence (the ternary input environment pins simulated inputs the
   same way). *)
let assign_of net ?(pin = fun _ -> None) vec =
  let idx = Hashtbl.create 8 in
  List.iteri (fun i (name, _) -> Hashtbl.add idx name i) (Network.inputs net);
  fun name ->
    match pin name with
    | Some b -> b
    | None -> (vec lsr Hashtbl.find idx name) land 1 = 1

let var_of_input_of net =
  let tbl = Hashtbl.create 8 in
  List.iteri (fun k (name, _) -> Hashtbl.add tbl name k) (Network.inputs net);
  fun name -> Hashtbl.find tbl name

let gen_seed = QCheck2.Gen.int_range 0 9999

let small_net seed =
  Randnet.cones ~ninputs:6 ~noutputs:4 ~window:4 ~gates_per_output:6 ~seed ()

(* x -> a -> b -> c, output on c: exercises both directions of the
   solver with artificial integer domains. *)
let chain_net () =
  let net = Network.create () in
  let x = Network.add_input net "x" in
  let a = Network.not_gate net x in
  let b = Network.not_gate net a in
  let c = Network.not_gate net b in
  Network.set_output net "o" c;
  (net, a, b, c)

module Depth (H : sig
  val bound : int
end) =
struct
  type fact = int

  let name = "depth"
  let direction = Dataflow.Forward
  let bottom = 0
  let equal = Int.equal
  let join = max
  let height_bound = H.bound
  let widen _ _ = 1000

  let transfer env lookup s =
    match Network.view (Dataflow.env_network env) s with
    | `Input _ | `Const _ -> 0
    | `Lut (fanins, _) ->
        1 + Array.fold_left (fun acc f -> max acc (lookup f)) 0 fanins
end

module Odist = struct
  type fact = int

  let name = "odist"
  let direction = Dataflow.Backward
  let bottom = 0
  let equal = Int.equal
  let join = max
  let height_bound = 64
  let widen _ _ = 1000

  let transfer env lookup s =
    let here = if Dataflow.outputs_of env s <> [] then 1 else 0 in
    List.fold_left
      (fun acc m -> max acc (1 + lookup m))
      here
      (Dataflow.fanout_arcs env s)
end

let solver_tests =
  [
    Alcotest.test_case "forward fixpoint: depth in one sweep" `Quick (fun () ->
        let net, a, b, c = chain_net () in
        let module M = Dataflow.Fixpoint (Depth (struct
          let bound = 64
        end)) in
        let r = M.run (Dataflow.env net) in
        check_int "depth a" 1 (r.M.fact_of a);
        check_int "depth b" 2 (r.M.fact_of b);
        check_int "depth c" 3 (r.M.fact_of c);
        check_int "no widening below the height bound" 0 r.M.widenings;
        (* priority worklist: a DAG converges in exactly one sweep *)
        check_int "one transfer per reachable signal" 4 r.M.iterations);
    Alcotest.test_case "widening caps the ascent at the height bound"
      `Quick (fun () ->
        let net, a, b, c = chain_net () in
        let module M = Dataflow.Fixpoint (Depth (struct
          let bound = 0
        end)) in
        let r = M.run (Dataflow.env net) in
        (* every LUT's first update already exceeds the bound, so each
           is accelerated straight to the widened value *)
        check_int "widened a" 1000 (r.M.fact_of a);
        check_int "widened b" 1000 (r.M.fact_of b);
        check_int "widened c" 1000 (r.M.fact_of c);
        check_int "three accelerations" 3 r.M.widenings);
    Alcotest.test_case "backward fixpoint: distance to the outputs"
      `Quick (fun () ->
        let net, a, b, c = chain_net () in
        let module M = Dataflow.Fixpoint (Odist) in
        let r = M.run (Dataflow.env net) in
        check_int "output node" 1 (r.M.fact_of c);
        check_int "one arc away" 2 (r.M.fact_of b);
        check_int "two arcs away" 3 (r.M.fact_of a);
        check_int "no widening" 0 r.M.widenings);
  ]

let ternary_tests =
  [
    Alcotest.test_case "constant fanins fold through the table" `Quick
      (fun () ->
        (* [add_lut] folds constant fanins itself, so force the shape
           the ternary domain exists for through the unsafe rewriter *)
        let net = Network.create () in
        let x = Network.add_input net "x" and y = Network.add_input net "y" in
        let f = Network.const net false in
        let n = Network.and_gate net x y in
        Network.Unsafe.set_lut net n ~fanins:[| f; x |] ~tt:(tt "0001");
        Network.set_output net "o" n;
        let df = Dataflow.analyze net in
        match Dataflow.fact_of df n with
        | None -> Alcotest.fail "no fact for the and-node"
        | Some nf ->
            check_bool "and(false, x) proved constant false" true
              (nf.Dataflow.nf_const = Some false));
    Alcotest.test_case "the input environment pins primary inputs" `Quick
      (fun () ->
        let net = Network.create () in
        let x = Network.add_input net "x" and y = Network.add_input net "y" in
        let n = Network.add_lut net ~fanins:[ x; y ] ~tt:(tt "0111") in
        Network.set_output net "o" n;
        let pin nm = if nm = "x" then Some true else None in
        let df = Dataflow.analyze ~input_env:pin net in
        (match Dataflow.fact_of df n with
        | None -> Alcotest.fail "no fact for the or-node"
        | Some nf ->
            check_bool "or(x=1, y) proved constant true" true
              (nf.Dataflow.nf_const = Some true));
        let unpinned = Dataflow.analyze net in
        match Dataflow.fact_of unpinned n with
        | None -> Alcotest.fail "no fact for the or-node"
        | Some nf ->
            check_bool "without the pin there is no constant" true
              (nf.Dataflow.nf_const = None));
  ]

(* Rebuild [net] with fanin position [j] of node [target] dropped (its
   table cofactored on the claimed-vacuous position), preserving the
   input interface so {!Network.equivalent} applies. *)
let rebuild_dropping net target j =
  let nn = Network.create () in
  let map = Hashtbl.create 64 in
  List.iter
    (fun (name, s) ->
      Hashtbl.replace map (Network.signal_id s) (Network.add_input nn name))
    (Network.inputs net);
  Network.iter_cone net (fun s ->
      let id = Network.signal_id s in
      if not (Hashtbl.mem map id) then
        let s' =
          match Network.view net s with
          | `Input nm -> Network.add_input nn nm
          | `Const b -> Network.const nn b
          | `Lut (fanins, table) ->
              let fanins' =
                Array.to_list
                  (Array.map
                     (fun f -> Hashtbl.find map (Network.signal_id f))
                     fanins)
              in
              if id <> Network.signal_id target then
                Network.add_lut nn ~fanins:fanins' ~tt:table
              else
                let k = Array.length fanins in
                if k = 1 then Network.const nn (Bv.get table 0)
                else
                  let expand c =
                    ((c lsr j) lsl (j + 1)) lor (c land ((1 lsl j) - 1))
                  in
                  Network.add_lut nn
                    ~fanins:(List.filteri (fun i _ -> i <> j) fanins')
                    ~tt:(Bv.of_fun (k - 1) (fun c -> Bv.get table (expand c)))
        in
        Hashtbl.replace map id s');
  List.iter
    (fun (name, s) ->
      Network.set_output nn name (Hashtbl.find map (Network.signal_id s)))
    (Network.outputs net);
  nn

let support_tests =
  [
    Alcotest.test_case "a vacuous fanin is found, dropping it is exact"
      `Quick (fun () ->
        let net = Network.create () in
        let x = Network.add_input net "x" and y = Network.add_input net "y" in
        (* the table is just bit 0: fanin y (position 1) is vacuous
           ([add_lut] would drop it, so go through the rewriter) *)
        let n = Network.and_gate net x y in
        Network.Unsafe.set_lut net n ~fanins:[| x; y |] ~tt:(tt "0101");
        Network.set_output net "o" n;
        let df = Dataflow.analyze net in
        (match Dataflow.fact_of df n with
        | None -> Alcotest.fail "no fact"
        | Some nf ->
            check_bool "position 1 vacuous" true
              (nf.Dataflow.nf_vacuous = [ 1 ]));
        check_bool "dropping the vacuous fanin preserves the network" true
          (Network.equivalent net (rebuild_dropping net n 1)));
    Alcotest.test_case "a reconvergent fanin is a containment candidate"
      `Quick (fun () ->
        let net = Network.create () in
        let x = Network.add_input net "x" and y = Network.add_input net "y" in
        let a = Network.and_gate net x y in
        (* or(a, x): x's support {x} is inside a's support {x, y} *)
        let n = Network.add_lut net ~fanins:[ a; x ] ~tt:(tt "0111") in
        Network.set_output net "o" n;
        let df = Dataflow.analyze net in
        match Dataflow.fact_of df n with
        | None -> Alcotest.fail "no fact"
        | Some nf ->
            check_bool "position 1 contained" true
              (List.mem 1 nf.Dataflow.nf_contained);
            check_bool "a contained fanin is not also vacuous" true
              (not (List.mem 1 nf.Dataflow.nf_vacuous)));
  ]

let screening_tests =
  [
    Alcotest.test_case "a fully witnessed output driver is screenable"
      `Quick (fun () ->
        let net = Network.create () in
        let x = Network.add_input net "x" and y = Network.add_input net "y" in
        let n = Network.and_gate net x y in
        Network.set_output net "o" n;
        let df = Dataflow.analyze net in
        (match Dataflow.fact_of df n with
        | None -> Alcotest.fail "no fact"
        | Some nf ->
            check_bool "all four codes witnessed" true nf.Dataflow.nf_all_codes;
            check_bool "pointwise drives o" true
              (nf.Dataflow.nf_obs_outputs = [ "o" ]));
        check_bool "window screenable" true
          (Semantics.window_screenable net df n);
        let m = Bdd.manager () in
        check_bool "full-observability hint" true
          (Semantics.full_observable_hint m net df n);
        check_bool "facts were counted" true (Dataflow.fact_count df > 0);
        check_bool "iterations were counted" true (Dataflow.iterations df > 0));
    Alcotest.test_case "a dead node is never screenable" `Quick (fun () ->
        let net = Network.create () in
        let x = Network.add_input net "x" and y = Network.add_input net "y" in
        let n = Network.and_gate net x y in
        (* xor(n, n) cancels n: it drives nothing pointwise *)
        let o = Network.add_lut net ~fanins:[ n; n ] ~tt:(tt "0110") in
        Network.set_output net "o" o;
        let df = Dataflow.analyze net in
        (match Dataflow.fact_of df n with
        | None -> Alcotest.fail "no fact"
        | Some nf ->
            check_bool "no pointwise outputs" true
              (nf.Dataflow.nf_obs_outputs = []));
        check_bool "not screenable" false
          (Semantics.window_screenable net df n);
        let m = Bdd.manager () in
        check_bool "no observability hint" false
          (Semantics.full_observable_hint m net df n));
    Alcotest.test_case "SUP findings are identical in both modes" `Quick
      (fun () ->
        let net = Network.create () in
        let x = Network.add_input net "x" and y = Network.add_input net "y" in
        let n = Network.and_gate net x y in
        Network.Unsafe.set_lut net n ~fanins:[| x; y |] ~tt:(tt "0101");
        Network.set_output net "o" n;
        let report dataflow =
          let m = Bdd.manager () in
          Semantics.analyze_report ~dataflow m
            ~var_of_input:(var_of_input_of net) net
        in
        let a = report true and b = report false in
        let sup r =
          List.filter
            (fun f -> Diagnostic.family f.Diagnostic.code = "SUP")
            r.Semantics.findings
        in
        check_bool "SUP001 reported" true
          (List.exists (fun f -> f.Diagnostic.code = "SUP001") (sup a));
        check_bool "same SUP findings with screening off" true
          (Diagnostic.normalize (sup a) = Diagnostic.normalize (sup b)));
  ]

(* every proved constant holds on every permitted input vector *)
let ternary_sound =
  QCheck2.Test.make ~name:"ternary constants are sound (brute force)"
    ~count:30 gen_seed (fun seed ->
      let net = small_net seed in
      let pin nm =
        if nm = "x0" then Some (seed land 1 = 1)
        else if nm = "x1" then Some (seed land 2 = 2)
        else None
      in
      let df = Dataflow.analyze ~input_env:pin net in
      List.for_all
        (fun nf ->
          match nf.Dataflow.nf_const with
          | None -> true
          | Some v ->
              let ok = ref true in
              for vec = 0 to 63 do
                let tbl = eval_all net (assign_of net ~pin vec) in
                if
                  Hashtbl.find tbl (Network.signal_id nf.Dataflow.nf_signal)
                  <> v
                then ok := false
              done;
              !ok)
        (Dataflow.facts df))

(* every claimed-vacuous fanin really can be dropped: cofactor-equal
   locally, and the rebuilt network is BDD-equivalent globally *)
let vacuous_sound =
  QCheck2.Test.make ~name:"vacuous fanins are sound (exact equivalence)"
    ~count:30 gen_seed (fun seed ->
      let net = small_net seed in
      (* [add_lut] never constructs a vacuous fanin, so inject one:
         widen the first binary LUT with a third, ignored fanin *)
      let injected = ref false in
      (match Network.lut_signals net with
      | s :: _ -> (
          match Network.view net s with
          | `Lut (fanins, table) when Array.length fanins = 2 ->
              let _, extra = List.hd (Network.inputs net) in
              Network.Unsafe.set_lut net s
                ~fanins:(Array.append fanins [| extra |])
                ~tt:(Bv.of_fun 3 (fun c -> Bv.get table (c land 3)));
              injected := true
          | _ -> ())
      | [] -> ());
      let df = Dataflow.analyze net in
      ((not !injected)
      || List.exists
           (fun nf -> nf.Dataflow.nf_vacuous <> [])
           (Dataflow.facts df))
      && List.for_all
           (fun nf ->
             let s = nf.Dataflow.nf_signal in
             match Network.local_tt net s with
             | None -> true
             | Some table ->
                 List.for_all
                   (fun j ->
                     Bv.equal (Bv.cofactor table j false)
                       (Bv.cofactor table j true)
                     && Network.equivalent net (rebuild_dropping net s j))
                   nf.Dataflow.nf_vacuous)
           (Dataflow.facts df))

(* observability and code facts agree with the exact engine: a
   pointwise-driven node's ODC set is empty (its observability is the
   whole care space), flipping it really complements every claimed
   output at every vector, witnessed codes are reachable, and a node
   with both values witnessed is globally non-constant *)
let obs_sound =
  QCheck2.Test.make
    ~name:"observability and code witnesses are sound (Careflow)" ~count:15
    gen_seed (fun seed ->
      let net = small_net seed in
      let df = Dataflow.analyze net in
      let m = Bdd.manager () in
      let flow = Careflow.analyze m ~var_of_input:(var_of_input_of net) net in
      flow.Careflow.truncated = None
      && List.for_all
           (fun nf ->
             let s = nf.Dataflow.nf_signal in
             let info =
               List.find
                 (fun i -> Network.signal_equal i.Careflow.signal s)
                 flow.Careflow.nodes
             in
             let obs_ok =
               nf.Dataflow.nf_obs_outputs = []
               || Bdd.equal info.Careflow.observable flow.Careflow.care_any
                  &&
                  let id = Network.signal_id s in
                  let pointwise = ref true in
                  for vec = 0 to 63 do
                    let assign = assign_of net vec in
                    let base = outputs_under net (eval_all net assign) in
                    let flipped =
                      outputs_under net (eval_all ~flip:id net assign)
                    in
                    List.iter
                      (fun o ->
                        if List.assoc o base = List.assoc o flipped then
                          pointwise := false)
                      nf.Dataflow.nf_obs_outputs
                  done;
                  !pointwise
             in
             let reachable =
               Array.fold_left
                 (fun acc b -> if Bdd.is_zero b then acc else acc + 1)
                 0 info.Careflow.code_sets
             in
             let codes_ok =
               nf.Dataflow.nf_codes_seen <= reachable
               && (not nf.Dataflow.nf_all_codes)
                  || reachable = Array.length info.Careflow.code_sets
             in
             let values_ok =
               (not nf.Dataflow.nf_both_values)
               || (not (Bdd.is_zero info.Careflow.global))
                  && not (Bdd.is_one info.Careflow.global)
             in
             obs_ok && codes_ok && values_ok)
           (Dataflow.facts df))

(* the tentpole property: screening changes cost, never the report *)
let pure_observer =
  QCheck2.Test.make ~name:"screening is a pure observer under truncation"
    ~count:10 gen_seed (fun seed ->
      let net =
        Randnet.cones ~ninputs:8 ~noutputs:6 ~window:5 ~gates_per_output:8
          ~seed ()
      in
      let luts = List.length (Network.lut_signals net) in
      let steps = max 1 (luts / 2) in
      let report dataflow =
        let m = Bdd.manager () in
        Semantics.analyze_report
          ~check:(Careflow.step_limiter ~max_steps:steps ())
          ~dataflow ~sat_timeout:1e9 m ~var_of_input:(var_of_input_of net)
          net
      in
      let a = report true and b = report false in
      Diagnostic.normalize a.Semantics.findings
      = Diagnostic.normalize b.Semantics.findings
      && b.Semantics.coverage.Semantics.screened_out = 0
      && a.Semantics.coverage.Semantics.sat_calls
         <= b.Semantics.coverage.Semantics.sat_calls
      && a.Semantics.coverage.Semantics.df_facts
         = b.Semantics.coverage.Semantics.df_facts)

let props = [ ternary_sound; vacuous_sound; obs_sound; pure_observer ]

let suite =
  solver_tests @ ternary_tests @ support_tests @ screening_tests
  @ List.map (fun p -> QCheck_alcotest.to_alcotest ~long:false p) props
