lib/decomp/clb.mli: Network
