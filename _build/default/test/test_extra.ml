(* Tests for the extra benchmark functions and deeper integration paths:
   decomposition quality bounds on structured functions, PLA don't-care
   flow, and DOT/BLIF output sanity on decomposed networks. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let decompose_verified ?(lut = 5) m spec alg =
  let o = Mulop.run ~lut_size:lut m alg spec in
  check_bool "verified" true (Driver.verify m spec o.Mulop.network);
  o

let quality_tests =
  [
    Alcotest.test_case "rd53 semantics and decomposition" `Quick (fun () ->
        let m = Bdd.manager () in
        let spec = Extra.rd53 m in
        (* weight of 10101 is 3 *)
        let out =
          List.map
            (fun (n, isf) -> (n, Bdd.eval (Isf.on isf) (fun v -> v mod 2 = 0)))
            spec.Driver.functions
        in
        check_bool "bit0" true (List.assoc "f0" out);
        check_bool "bit1" true (List.assoc "f1" out);
        check_bool "bit2" false (List.assoc "f2" out);
        ignore (decompose_verified m spec Mulop.Mulop_dc));
    Alcotest.test_case "t481-like is highly decomposable" `Quick (fun () ->
        (* product of 8 xnor pairs over 16 inputs: the decomposition
           should find the pair structure and stay near-linear *)
        let m = Bdd.manager () in
        let spec = Extra.t481_like m in
        let o = decompose_verified m spec Mulop.Mulop_dc in
        check_bool
          (Printf.sprintf "small (%d luts)" o.Mulop.lut_count)
          true (o.Mulop.lut_count <= 8));
    Alcotest.test_case "parity stays linear at every lut size" `Quick
      (fun () ->
        let m = Bdd.manager () in
        let spec = Extra.parity m ~inputs:12 in
        List.iter
          (fun lut ->
            let o = decompose_verified ~lut m spec Mulop.Mulop_dc in
            check_bool
              (Printf.sprintf "k=%d: %d luts" lut o.Mulop.lut_count)
              true
              (o.Mulop.lut_count <= 12))
          [ 2; 3; 5 ]);
    Alcotest.test_case "majority of 9 semantics" `Quick (fun () ->
        let m = Bdd.manager () in
        let spec = Extra.majority m ~inputs:9 in
        let f =
          match spec.Driver.functions with
          | [ (_, isf) ] -> Isf.on isf
          | _ -> Alcotest.fail "arity"
        in
        check_bool "5 of 9" true (Bdd.eval f (fun v -> v < 5));
        check_bool "4 of 9" false (Bdd.eval f (fun v -> v < 4));
        ignore (decompose_verified m spec Mulop.Mulop_dc));
    Alcotest.test_case "every extra entry decomposes and verifies" `Slow
      (fun () ->
        List.iter
          (fun (name, build) ->
            let m = Bdd.manager () in
            let spec = build m in
            let o = decompose_verified m spec Mulop.Mulop_dc in
            check_bool (name ^ " nonneg") true (o.Mulop.clb_count >= 0))
          Extra.catalogue);
  ]

let flow_tests =
  [
    Alcotest.test_case "pla with dc: dc is actually exploited" `Quick
      (fun () ->
        (* A function whose on-set needs 2 LUT levels but collapses to a
           single wire under the right dc assignment. *)
        let m = Bdd.manager () in
        let text =
          ".i 6\n.o 1\n.type fd\n1----- 1\n-11111 -\n0----- 0\n.e\n"
        in
        let pla = Pla.parse text in
        let isfs = Pla.to_isfs m ~var_of_column:(fun k -> k) pla in
        let spec =
          {
            Driver.input_names = List.init 6 (Printf.sprintf "x%d");
            functions = isfs;
          }
        in
        let o = Mulop.run m Mulop.Mulop_dc spec in
        check_bool "verified" true (Driver.verify m spec o.Mulop.network);
        (* with dc -> x0, the function is just a wire: zero LUTs *)
        check_int "zero luts (wire)" 0 o.Mulop.lut_count);
    Alcotest.test_case "decomposed network DOT export" `Quick (fun () ->
        let m = Bdd.manager () in
        let spec = Extra.rd53 m in
        let o = Mulop.run m Mulop.Mulop_dc spec in
        let dot = Network.to_dot o.Mulop.network in
        check_bool "digraph" true (String.length dot > 20);
        let contains_lut =
          let rec scan i =
            i + 3 <= String.length dot
            && (String.sub dot i 3 = "LUT" || scan (i + 1))
          in
          scan 0
        in
        check_bool "has luts" true contains_lut);
    Alcotest.test_case "blif of every algorithm roundtrips" `Slow (fun () ->
        let m = Bdd.manager () in
        let spec = Arith.clip m in
        List.iter
          (fun alg ->
            let o = Mulop.run m alg spec in
            let net2 = Blif.parse (Blif.print o.Mulop.network) in
            check_bool
              (Mulop.algorithm_name alg)
              true
              (Network.equivalent o.Mulop.network net2))
          [ Mulop.Mulop_ii; Mulop.Mulop_dc; Mulop.Mulop_dc_ii ]);
    Alcotest.test_case "clb pairs are legal on a real decomposition" `Quick
      (fun () ->
        let m = Bdd.manager () in
        let spec = Arith.f51m m in
        let o = Mulop.run m Mulop.Mulop_dc_ii spec in
        let net = o.Mulop.network in
        List.iter
          (fun (a, b) ->
            check_bool "mergeable pair" true (Clb.mergeable net a b))
          (Clb.pairs Clb.Max_matching net));
  ]

let suite = quality_tests @ flow_tests
