(* Edge cases and adversarial inputs for the recursive driver. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let names n = List.init n (Printf.sprintf "x%d")

let unit_tests =
  [
    Alcotest.test_case "constant outputs" `Quick (fun () ->
        let m = Bdd.manager () in
        let spec =
          Driver.spec_of_csf m (names 3)
            [ ("t", Bdd.one m); ("f", Bdd.zero m) ]
        in
        let net = Driver.decompose m spec in
        check_bool "verified" true (Driver.verify m spec net);
        check_int "no luts" 0 (Network.stats net).Network.lut_count);
    Alcotest.test_case "output = input wire" `Quick (fun () ->
        let m = Bdd.manager () in
        let spec = Driver.spec_of_csf m (names 2) [ ("w", Bdd.var m 1) ] in
        let net = Driver.decompose m spec in
        check_bool "verified" true (Driver.verify m spec net);
        check_int "no luts" 0 (Network.stats net).Network.lut_count);
    Alcotest.test_case "duplicate output functions share a LUT" `Quick
      (fun () ->
        let m = Bdd.manager () in
        let f = Bdd.and_ m (Bdd.var m 0) (Bdd.var m 1) in
        let spec = Driver.spec_of_csf m (names 2) [ ("a", f); ("b", f) ] in
        let net = Driver.decompose m spec in
        check_bool "verified" true (Driver.verify m spec net);
        check_int "one lut" 1 (Network.stats net).Network.lut_count);
    Alcotest.test_case "wide parity at lut 2 stays linear" `Quick (fun () ->
        (* parity decomposes perfectly: n-1 xor gates expected, small
           slack allowed *)
        let m = Bdd.manager () in
        let n = 10 in
        let f =
          List.fold_left
            (fun acc v -> Bdd.xor m acc (Bdd.var m v))
            (Bdd.zero m)
            (List.init n Fun.id)
        in
        let cfg = Config.with_lut_size 2 Config.mulop_dc in
        let spec = Driver.spec_of_csf m (names n) [ ("p", f) ] in
        let net = Driver.decompose ~cfg m spec in
        check_bool "verified" true (Driver.verify m spec net);
        check_bool "linear size" true
          ((Network.stats net).Network.lut_count <= 2 * n));
    Alcotest.test_case "fully dc output costs nothing" `Quick (fun () ->
        let m = Bdd.manager () in
        let isf = Isf.make m ~on:(Bdd.zero m) ~dc:(Bdd.one m) in
        let spec =
          { Driver.input_names = names 4; functions = [ ("any", isf) ] }
        in
        let net = Driver.decompose m spec in
        check_bool "verified" true (Driver.verify m spec net);
        check_int "no luts" 0 (Network.stats net).Network.lut_count);
    Alcotest.test_case "isf spec: dc exploited across outputs" `Quick
      (fun () ->
        (* f1 on = x0x1x2x3x4x5, f2 differs from f1 only on dc points:
           both can collapse to the same function *)
        let m = Bdd.manager () in
        let f = Bdd.and_list m (List.init 6 (Bdd.var m)) in
        let g_on = Bdd.and_ m f (Bdd.var m 0) in
        let dc = Bdd.diff m (Bdd.var m 0) f in
        let spec =
          {
            Driver.input_names = names 6;
            functions =
              [
                ("f1", Isf.of_csf m f);
                ("f2", Isf.make m ~on:g_on ~dc);
              ];
          }
        in
        let net = Driver.decompose m spec in
        check_bool "verified" true (Driver.verify m spec net);
        (* f2 can be realized as f1: 2 LUTs suffice for the and-6 *)
        check_bool "sharing happened" true
          ((Network.stats net).Network.lut_count <= 3));
    Alcotest.test_case "report counters are consistent" `Quick (fun () ->
        let m = Bdd.manager () in
        let spec = Arith.adder m ~bits:3 in
        let cfg = Config.with_lut_size 3 Config.mulop_dc in
        let r = Driver.decompose_report ~cfg m spec in
        check_bool "steps happened" true (r.Driver.step_count >= 1);
        check_bool "alphas counted" true (r.Driver.alpha_count >= 0);
        check_bool "verified" true (Driver.verify m spec r.Driver.network));
    Alcotest.test_case "pla isf end-to-end" `Quick (fun () ->
        let m = Bdd.manager () in
        let pla =
          Pla.parse
            ".i 6\n.o 2\n.type fd\n11---- 1-\n--11-- -1\n000000 --\n1-1-1- -1\n.e\n"
        in
        let isfs = Pla.to_isfs m ~var_of_column:(fun k -> k) pla in
        let spec = { Driver.input_names = names 6; functions = isfs } in
        List.iter
          (fun alg ->
            let o = Mulop.run m alg spec in
            check_bool
              (Mulop.algorithm_name alg ^ " verified")
              true
              (Driver.verify m spec o.Mulop.network))
          [ Mulop.Mulop_ii; Mulop.Mulop_dc; Mulop.Mulop_dc_ii ]);
    Alcotest.test_case "lut size 2 through 6 all verify" `Quick (fun () ->
        let m = Bdd.manager () in
        let spec = Arith.rd m ~inputs:6 in
        List.iter
          (fun k ->
            let cfg = Config.with_lut_size k Config.mulop_dc in
            let net = Driver.decompose ~cfg m spec in
            check_bool (Printf.sprintf "k=%d" k) true (Driver.verify m spec net);
            check_bool
              (Printf.sprintf "k=%d fanin bound" k)
              true
              ((Network.stats net).Network.max_fanin <= k))
          [ 2; 3; 4; 5; 6 ]);
    Alcotest.test_case "blif of decomposed network parses back" `Quick
      (fun () ->
        let m = Bdd.manager () in
        let spec = Arith.z4ml m in
        let net = Driver.decompose m spec in
        let net2 = Blif.parse (Blif.print ~model:"z4ml" net) in
        check_bool "roundtrip equivalent" true (Network.equivalent net net2));
  ]

let props =
  let gen_fun n =
    let open QCheck2.Gen in
    let+ bits = list_size (return (1 lsl n)) bool in
    let arr = Array.of_list bits in
    Bv.of_fun n (fun i -> arr.(i))
  in
  [
    QCheck2.Test.make ~name:"three outputs, lut 2, always verified" ~count:25
      (QCheck2.Gen.triple (gen_fun 5) (gen_fun 5) (gen_fun 5))
      (fun (b1, b2, b3) ->
        let m = Bdd.manager () in
        let spec =
          Driver.spec_of_csf m (names 5)
            [
              ("f", Bv.to_bdd m b1); ("g", Bv.to_bdd m b2); ("h", Bv.to_bdd m b3);
            ]
        in
        let cfg = Config.with_lut_size 2 Config.mulop_dc in
        let net = Driver.decompose ~cfg m spec in
        Driver.verify m spec net
        && (Network.stats net).Network.max_fanin <= 2);
    QCheck2.Test.make ~name:"mulop-dc never exceeds mux-tree size bound"
      ~count:25 (gen_fun 6)
      (fun bv ->
        (* a BDD-sized mux network is always achievable, so the driver
           should never blow past it by more than a constant factor *)
        let m = Bdd.manager () in
        let f = Bv.to_bdd m bv in
        let spec = Driver.spec_of_csf m (names 6) [ ("f", f) ] in
        let cfg = Config.with_lut_size 3 Config.mulop_dc in
        let net = Driver.decompose ~cfg m spec in
        Driver.verify m spec net
        && (Network.stats net).Network.lut_count <= (2 * Bdd.size f) + 4);
  ]

let suite = unit_tests @ List.map (fun p -> QCheck_alcotest.to_alcotest ~long:false p) props
