lib/benchmarks/circuits.ml: Array List Network Printf String
