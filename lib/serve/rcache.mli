(** The daemon's cross-request result cache.

    Keyed on {e canonical function fingerprints}: the {!key} digest
    covers the protocol version, every outcome-relevant run parameter
    (LUT size, algorithm, effort, check level, verify), the input
    names, and {!Bdd.fingerprint} of each output's (on, dc) BDDs.
    Fingerprints are Merkle digests of ROBDD structure — identical
    across managers for the same function — so a hit never depends on
    per-run node ids, and the same circuit submitted as a benchmark
    name or as equivalent BLIF text lands on the same entry.  (The
    predecessor bug this design fixes: keying on [Bdd.id], which is
    only unique {e within} one manager, silently made every
    cross-manager lookup a miss or — worse — a false hit.)

    Byte-capped stamp-LRU, thread-safe (worker domains probe and fill
    concurrently).  Hits and misses are counted into the server's
    {!Stats.t} ([result_hits]/[result_misses]). *)

type t

val create : ?max_bytes:int -> stats:Stats.t -> unit -> t
(** [max_bytes] defaults to 64 MiB. *)

val key :
  Bdd.manager ->
  Driver.spec ->
  lut_size:int ->
  algorithm:Mulop.algorithm ->
  effort:Budget.effort option ->
  checks:Diagnostic.level ->
  verify:bool ->
  string
(** The canonical cache key of a request.  Budgets ([timeout],
    [node_budget]) are deliberately absent: budgeted runs are
    timing-dependent and are never cached (the server skips the cache
    for them). *)

val find : t -> string -> Proto.run_result option
(** Bumps LRU recency and the hit counter; a miss bumps the miss
    counter. *)

val add : t -> string -> Proto.run_result -> unit
(** Insert, evicting least-recently-used entries until under the byte
    cap.  An entry larger than the whole cap is dropped. *)

val entries : t -> int
val bytes : t -> int
