(* Length-prefixed framing: every message on the wire is a 4-byte
   big-endian payload length followed by the payload bytes.  The
   server's reader is incremental — it is fed whatever [read] returned
   and yields complete frames, so a frame split across any number of
   TCP segments (or a hostile byte-at-a-time client) reassembles
   correctly.  Oversized frames are reported once and then drained
   silently: the connection survives, the next frame parses. *)

let header_size = 4

let encode payload =
  let n = String.length payload in
  let b = Bytes.create (header_size + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b header_size n;
  b

type mode =
  | Header  (* collecting the 4 length bytes *)
  | Body of int  (* collecting a payload of this size *)
  | Skip of int * int  (* draining an oversized payload: declared, left *)

type reader = {
  max_frame : int;
  buf : Buffer.t;  (* bytes collected for the current header/body *)
  mutable mode : mode;
  pending : Buffer.t;  (* fed bytes not yet consumed *)
  mutable pos : int;  (* consumption cursor into [pending] *)
}

let reader ?(max_frame = 16 * 1024 * 1024) () =
  {
    max_frame;
    buf = Buffer.create 256;
    mode = Header;
    pending = Buffer.create 256;
    pos = 0;
  }

let feed r bytes off len =
  (* Compact the pending buffer once everything fed so far has been
     consumed, so a long-lived connection does not grow it forever. *)
  if r.pos = Buffer.length r.pending then begin
    Buffer.clear r.pending;
    r.pos <- 0
  end;
  Buffer.add_subbytes r.pending bytes off len

let available r = Buffer.length r.pending - r.pos

let take r n =
  let chunk = Buffer.sub r.pending r.pos n in
  r.pos <- r.pos + n;
  chunk

let decode_len s =
  let b k = Char.code s.[k] in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

let rec next r =
  match r.mode with
  | Header ->
      let want = header_size - Buffer.length r.buf in
      let got = min want (available r) in
      Buffer.add_string r.buf (take r got);
      if Buffer.length r.buf < header_size then `Await
      else begin
        let len = decode_len (Buffer.contents r.buf) in
        Buffer.clear r.buf;
        if len > r.max_frame || len < 0 then begin
          r.mode <- Skip (len, len);
          `Oversized len
        end
        else begin
          r.mode <- Body len;
          next r
        end
      end
  | Body want ->
      let missing = want - Buffer.length r.buf in
      let got = min missing (available r) in
      Buffer.add_string r.buf (take r got);
      if Buffer.length r.buf < want then `Await
      else begin
        let payload = Buffer.contents r.buf in
        Buffer.clear r.buf;
        r.mode <- Header;
        `Frame payload
      end
  | Skip (declared, left) ->
      let got = min left (available r) in
      r.pos <- r.pos + got;
      let left = left - got in
      if left > 0 then begin
        r.mode <- Skip (declared, left);
        `Await
      end
      else begin
        r.mode <- Header;
        next r
      end

(* ---- blocking helpers (client side, and the server's writes) ---- *)

let write_all fd b =
  let n = Bytes.length b in
  let sent = ref 0 in
  while !sent < n do
    let k = Unix.write fd b !sent (n - !sent) in
    if k = 0 then raise (Unix.Unix_error (Unix.EPIPE, "write", ""));
    sent := !sent + k
  done

let write fd payload = write_all fd (encode payload)

exception Closed

let read_exact fd n =
  let b = Bytes.create n in
  let got = ref 0 in
  while !got < n do
    let k = Unix.read fd b !got (n - !got) in
    if k = 0 then raise Closed;
    got := !got + k
  done;
  b

let read_frame fd =
  let header = read_exact fd header_size in
  let len = decode_len (Bytes.to_string header) in
  if len < 0 then raise Closed;
  Bytes.to_string (read_exact fd len)
