(** Boolean networks of lookup tables.

    A network is a DAG of nodes: primary inputs, constants and LUTs.
    Each LUT carries its local function as a dense truth table over its
    fanins ({!Bv.t}, fanin [k] = truth-table variable [k]).  Nodes with
    at most [k] fanins model [k]-input lookup tables; with [k = 2] the
    same structure models two-input gate networks (Figures 2 and 3 of
    the paper).

    Networks are the output format of the decomposition engine and the
    carrier for BLIF exchange, statistics and equivalence checking. *)

type t
type signal

(** {1 Construction} *)

val create : unit -> t
val add_input : t -> string -> signal
val const : t -> bool -> signal

val add_lut : t -> fanins:signal list -> tt:Bv.t -> signal
(** [tt] must have as many variables as there are fanins.  Structurally
    identical LUTs (same fanins, same table) are shared.  LUTs whose
    table is constant or a projection/complement of a single fanin are
    simplified away where possible. *)

val set_output : t -> string -> signal -> unit

(** {1 Gate helpers (2-input network construction)} *)

val not_gate : t -> signal -> signal
val and_gate : t -> signal -> signal -> signal
val or_gate : t -> signal -> signal -> signal
val xor_gate : t -> signal -> signal -> signal
val xnor_gate : t -> signal -> signal -> signal
val mux_gate : t -> sel:signal -> hi:signal -> lo:signal -> signal
(** A 3-input LUT; in 2-input gate counting it expands to 3 gates. *)

(** {1 Access} *)

val inputs : t -> (string * signal) list
val outputs : t -> (string * signal) list
val signal_equal : signal -> signal -> bool

val signal_id : signal -> int
(** Stable integer id of a node, usable as a hash key or a name seed. *)

val node_count : t -> int
(** Number of allocated nodes (including dead ones); valid signal ids
    are [0 .. node_count - 1]. *)

val signal_of_id : t -> int -> signal
(** Inverse of {!signal_id}.
    @raise Invalid_argument when the id is out of range. *)

val level : t -> signal -> int
(** LUT level of a node: 0 for inputs and constants, one above the
    deepest fanin for a LUT.  Maintained incrementally as nodes are
    added, so it is valid {e during} construction — the arrival-time
    input of delay-aware bound-set scoring.  On a finished network,
    [stats.depth] is the maximum [level] over the outputs.  Only
    meaningful on networks built through the checked constructors
    ({!Unsafe} mutations leave downstream levels stale).
    @raise Invalid_argument when the signal is out of range. *)

val view : t -> signal -> [ `Input of string | `Const of bool | `Lut of signal array * Bv.t ]
(** Raw node contents, for analyzers ({!Check} passes).  The fanin array
    is a copy; the signals in it are {e not} validated — a corrupted
    network may reference ids outside [0 .. node_count - 1]. *)

(** Deliberately unchecked mutations.  These can (and are meant to)
    corrupt a network: they exist so that the static-analysis passes of
    [Check] can be exercised on seeded faults in tests.  Never use them
    in synthesis code — all invariants maintained by the checked
    constructors (arity, range, topological order, name uniqueness,
    structural hashing) are bypassed. *)
module Unsafe : sig
  val signal : int -> signal
  (** Forge a signal from a raw id, without range validation. *)

  val set_lut : t -> signal -> fanins:signal array -> tt:Bv.t -> unit
  (** Overwrite a node in place with an arbitrary LUT. *)

  val alias_input : t -> string -> signal -> unit
  (** Append an input-list entry, allowing duplicate names. *)

  val alias_output : t -> string -> signal -> unit
  (** Append an output-list entry, allowing duplicate names. *)

  val redirect_output : t -> string -> signal -> unit
  (** Repoint a declared output at an arbitrary (unvalidated) signal. *)
end

val fanins : t -> signal -> signal list
(** Empty for inputs and constants. *)

val local_tt : t -> signal -> Bv.t option
(** The local function of a LUT node; [None] for inputs/constants. *)

val const_value : t -> signal -> bool option
(** [Some b] for constant nodes, [None] otherwise. *)

val input_name : t -> signal -> string option
(** The name of a primary-input node, [None] otherwise. *)

val lut_signals : t -> signal list
(** All LUT nodes reachable from the outputs, in topological order. *)

val iter_cone : t -> (signal -> unit) -> unit
(** Visit every node reachable from some output — inputs, constants and
    LUTs — exactly once, every fanin strictly before its fanouts.  The
    traversal backbone of the dataflow analyzers ({!Check} semantic
    passes).  Only meaningful on structurally sound networks (fanins
    in range and preceding their LUTs); run the structural [Net_check]
    passes first on untrusted input. *)

(** {1 Statistics} *)

type stats = {
  input_count : int;
  output_count : int;
  lut_count : int;  (** nodes with at least one fanin *)
  max_fanin : int;
  depth : int;  (** LUT levels on the longest input-to-output path *)
  two_input_gates : int;
      (** LUTs with exactly 2 fanins; meaningful for networks built with
          gate helpers only *)
  inverters : int;  (** single-fanin LUTs *)
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit

val lut_count_within : t -> int -> int
(** [lut_count_within t k] counts LUT nodes with at most [k] fanins;
    with [k >= max_fanin] this is [lut_count]. *)

(** {1 Semantics} *)

val eval : t -> (string -> bool) -> (string * bool) list
(** Evaluate all outputs under an assignment of the primary inputs. *)

val output_bdds : t -> Bdd.manager -> var_of_input:(string -> int) -> (string * Bdd.t) list
(** Global BDDs of the outputs, inputs mapped to BDD variables. *)

val equivalent : t -> t -> bool
(** Combinational equivalence: same input/output names, and every output
    computes the same function (checked via BDDs on a fresh manager). *)

val equivalent_to_spec :
  t -> Bdd.manager -> var_of_input:(string -> int) -> (string * Bdd.t) list -> bool
(** Check the network against specification BDDs, by output name. *)

val sweep : t -> t
(** Structural cleanup: drop LUTs not reachable from any output. *)

(** {1 Output} *)

val to_dot : t -> string
val pp : Format.formatter -> t -> unit
