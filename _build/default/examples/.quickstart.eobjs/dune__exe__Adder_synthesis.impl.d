examples/adder_synthesis.ml: Arith Array Bdd Circuits Driver Format Isf List Mulop Network String Sys
