(** Static-analysis passes over LUT networks.

    Two families of passes run over {e all} allocated nodes (not just
    the reachable cone, so corruption in dead logic is still found):

    - {e structural} passes ([NET001]-[NET005], [NET009], [NET010]):
      dangling fanins, truth-table/fanin arity mismatches, topological
      (cycle) violations, undriven outputs, LUTs wider than the
      configured LUT size, duplicate input/output names.  All are
      [Error]s: a network failing one of these is outside the data
      structure's contract and most other operations on it are
      undefined.
    - {e style} passes ([NET006]-[NET008]): dead LUTs, structural
      duplicates, degenerate (constant/buffer) tables.  These are
      legal but indicate a missed [sweep] or a foreign producer; they
      only run when the structural passes found no error, because they
      need a traversable network. *)

val analyze : ?lut_size:int -> ?style:bool -> Network.t -> Diagnostic.t list
(** All findings, in node order.  [lut_size] arms the [NET005] width
    pass; [style] (default [true]) enables the style family.  The
    [NET007] duplicate pass canonicalizes each LUT (fanins sorted,
    table permuted to match), so duplicates are found regardless of
    fanin order. *)

val canonical_lut :
  Network.signal array -> Bv.t -> Network.signal array * Bv.t * (int -> int)
(** [canonical_lut fanins tt]: the fanins sorted by signal id with the
    table permuted accordingly, plus the map from canonical table rows
    back to original ones.  The canonical form of the [NET007] pass,
    shared with the [SEM006] mergeable-twin pass of {!Semantics}. *)
