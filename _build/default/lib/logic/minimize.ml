let cube_bdd m cube = Cover.cube_to_bdd m (fun k -> k) cube

let cover_bdd m cubes = Bdd.or_list m (List.map (cube_bdd m) cubes)

let is_cover m ~ninputs ~on ?dc cubes =
  ignore ninputs;
  let dc = match dc with Some d -> d | None -> Bdd.zero m in
  let f = cover_bdd m cubes in
  Bdd.is_zero (Bdd.diff m on f)
  && Bdd.is_zero (Bdd.diff m f (Bdd.or_ m on dc))

(* EXPAND: raise literals to '-' greedily while the cube stays inside
   on \/ dc.  The result is prime w.r.t. the left-to-right column
   order. *)
let expand m allowed cube =
  let cube = Array.copy cube in
  for k = 0 to Array.length cube - 1 do
    match cube.(k) with
    | Cover.Ldash -> ()
    | Cover.L0 | Cover.L1 ->
        let saved = cube.(k) in
        cube.(k) <- Cover.Ldash;
        if not (Bdd.is_zero (Bdd.diff m (cube_bdd m cube) allowed)) then
          cube.(k) <- saved
  done;
  cube

(* IRREDUNDANT: drop any cube whose on-set contribution is covered by
   the remaining cubes plus the don't cares. *)
let irredundant m ~on ~dc cubes =
  ignore on;
  let rec go kept = function
    | [] -> List.rev kept
    | cube :: rest ->
        let others = cover_bdd m (kept @ rest) in
        let contribution =
          Bdd.diff m (cube_bdd m cube) (Bdd.or_ m others dc)
        in
        if Bdd.is_zero contribution then go kept rest
        else go (cube :: kept) rest
  in
  go [] cubes

let minimize m ~ninputs ~on ?dc cubes =
  let dc = match dc with Some d -> d | None -> Bdd.zero m in
  if not (is_cover m ~ninputs ~on ~dc cubes) then
    invalid_arg "Minimize.minimize: input is not a cover";
  let allowed = Bdd.or_ m on dc in
  let rec fixpoint cubes =
    let expanded = List.map (expand m allowed) cubes in
    (* dedupe identical cubes after expansion *)
    let distinct =
      List.fold_left
        (fun acc c ->
          if List.exists (fun c' -> c' = c) acc then acc else c :: acc)
        [] expanded
      |> List.rev
    in
    let pruned = irredundant m ~on ~dc distinct in
    if List.length pruned < List.length cubes then fixpoint pruned else pruned
  in
  let result = fixpoint cubes in
  assert (is_cover m ~ninputs ~on ~dc result);
  result

let cover_of_bdd m ~ninputs ~on ?dc () =
  let initial = Cover.bdd_to_cover m (List.init ninputs Fun.id) on in
  minimize m ~ninputs ~on ?dc initial
