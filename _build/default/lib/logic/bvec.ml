type t = Bdd.t array

let width = Array.length

let consti m ~width v =
  if v < 0 then invalid_arg "Bvec.consti: negative";
  Array.init width (fun k -> if (v lsr k) land 1 = 1 then Bdd.one m else Bdd.zero m)

let inputs m ~first_var ~width = Array.init width (fun k -> Bdd.var m (first_var + k))

let zero_extend m a ~width =
  if width < Array.length a then invalid_arg "Bvec.zero_extend: narrower";
  Array.init width (fun k -> if k < Array.length a then a.(k) else Bdd.zero m)

let extract a ~lo ~hi =
  if lo < 0 || hi >= Array.length a || lo > hi then invalid_arg "Bvec.extract";
  Array.sub a lo (hi - lo + 1)

let full_adder m a b c =
  let s = Bdd.xor m (Bdd.xor m a b) c in
  let carry = Bdd.or_ m (Bdd.and_ m a b) (Bdd.and_ m (Bdd.xor m a b) c) in
  (s, carry)

let add_with_width m result_width a b =
  let w = max (Array.length a) (Array.length b) in
  let bit v k = if k < Array.length v then v.(k) else Bdd.zero m in
  let out = Array.make result_width (Bdd.zero m) in
  let carry = ref (Bdd.zero m) in
  for k = 0 to result_width - 1 do
    if k < w then begin
      let s, c = full_adder m (bit a k) (bit b k) !carry in
      out.(k) <- s;
      carry := c
    end
    else if k = w then out.(k) <- !carry
  done;
  out

let add m a b =
  if Array.length a <> Array.length b then invalid_arg "Bvec.add: width mismatch";
  add_with_width m (Array.length a + 1) a b

let add_mod m a b =
  if Array.length a <> Array.length b then invalid_arg "Bvec.add_mod: width mismatch";
  add_with_width m (Array.length a) a b

let sum m ~width terms =
  List.fold_left (fun acc t -> add_with_width m width acc t) (consti m ~width 0) terms

let mul m a b =
  let w = Array.length a + Array.length b in
  let partials =
    List.concat
      (List.init (Array.length b) (fun j ->
           if j >= w then []
           else
             [
               Array.init w (fun k ->
                   if k >= j && k - j < Array.length a then Bdd.and_ m a.(k - j) b.(j)
                   else Bdd.zero m);
             ]))
  in
  sum m ~width:w partials

let mulc m a c =
  if c < 0 then invalid_arg "Bvec.mulc: negative";
  if c = 0 then consti m ~width:1 0
  else begin
    let bits_of_c =
      let rec go v = if v = 0 then 0 else 1 + go (v lsr 1) in
      go c
    in
    let w = Array.length a + bits_of_c in
    let shifted j =
      Array.init w (fun k ->
          if k >= j && k - j < Array.length a then a.(k - j) else Bdd.zero m)
    in
    let partials =
      List.filter_map
        (fun j -> if (c lsr j) land 1 = 1 then Some (shifted j) else None)
        (List.init bits_of_c Fun.id)
    in
    sum m ~width:w partials
  end

let popcount m bits =
  let n = List.length bits in
  let rec bits_needed v = if v = 0 then 0 else 1 + bits_needed (v lsr 1) in
  let w = max 1 (bits_needed n) in
  sum m ~width:w (List.map (fun b -> [| b |]) bits)

let mux m sel a b =
  if Array.length a <> Array.length b then invalid_arg "Bvec.mux: width mismatch";
  Array.init (Array.length a) (fun k -> Bdd.ite m sel a.(k) b.(k))

let equal_const m a v =
  let lits =
    Array.to_list
      (Array.mapi
         (fun k bit -> if (v lsr k) land 1 = 1 then bit else Bdd.not_ m bit)
         a)
  in
  Bdd.and_list m lits

let ult m a b =
  if Array.length a <> Array.length b then invalid_arg "Bvec.ult: width mismatch";
  let rec go k =
    (* compare from MSB down *)
    if k < 0 then Bdd.zero m
    else
      Bdd.or_ m
        (Bdd.and_ m (Bdd.not_ m a.(k)) b.(k))
        (Bdd.and_ m (Bdd.xnor m a.(k) b.(k)) (go (k - 1)))
  in
  go (Array.length a - 1)

let to_int a assignment =
  let v = ref 0 in
  Array.iteri (fun k bit -> if Bdd.eval bit assignment then v := !v lor (1 lsl k)) a;
  !v

let named_outputs prefix a =
  Array.to_list (Array.mapi (fun k bit -> (Printf.sprintf "%s%d" prefix k, bit)) a)
