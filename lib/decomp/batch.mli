(** Domain-parallel batch decomposition.

    The natural unit of parallelism of the algorithm is the whole
    circuit: every decomposition run owns its hash-consed
    {!Bdd.manager}, its {!Budget.t} and its {!Stats.t}, so runs are
    {e shared-nothing} and scale across OCaml 5 domains without locks.
    [run] drains a list of jobs with a fixed pool of worker domains
    (the calling domain is worker 0); each claimed job builds its
    specification, decomposes it under its own fresh budget, and writes
    its row of the report.  The only shared mutable state is the queue
    cursor (an [Atomic.t]) and the result array, each slot of which is
    written by exactly one worker.

    Failures are isolated per job: a parse error of a lazily loaded
    file, a {!Driver.Internal} violation or any other exception becomes
    that job's [Error] row instead of aborting the batch.

    The report is deterministic: job results are independent of
    scheduling (each run's manager starts empty, so node ids and every
    downstream choice are reproducible) and rows keep submission order,
    so [run ~jobs:1] and [run ~jobs:8] produce identical summaries —
    the batch determinism property tested in [test_batch.ml]. *)

type job = {
  name : string;  (** label used in the report *)
  build : Bdd.manager -> Driver.spec;
      (** called inside the claiming worker domain, on that run's own
          manager; may raise (e.g. a parse error) — the failure is
          confined to this job *)
}

val job : name:string -> (Bdd.manager -> Driver.spec) -> job

type summary = {
  algorithm : Mulop.algorithm;
  lut_count : int;
  clb_count : int;
  depth : int;
  step_count : int;
  shannon_count : int;
  alpha_count : int;
  degraded_to : Budget.stage;
  findings : Diagnostic.t list;
  verified : bool option;  (** [None] unless [run ~verify:true] *)
}

type job_report = {
  job : string;
  outcome : (summary, string) result;
  seconds : float;  (** wall time of this job inside its worker *)
  stats : Stats.t;  (** the run's own counters and phase timings *)
}

type report = {
  results : job_report list;  (** in job submission order *)
  domains : int;  (** worker domains actually used *)
  wall : float;  (** wall time of the whole batch *)
}

val run :
  ?jobs:int ->
  ?lut_size:int ->
  ?algorithm:Mulop.algorithm ->
  ?timeout:float ->
  ?node_budget:int ->
  ?effort:Budget.effort ->
  ?checks:Diagnostic.level ->
  ?verify:bool ->
  job list ->
  report
(** Decompose every job.  [jobs] (default 1) is the number of worker
    domains, clamped to the job count; [timeout]/[node_budget]/[effort]
    parameterize a {e fresh} {!Budget.t} per job (the timeout is per
    job, not for the whole batch).  [verify] (default [false]) re-checks
    every produced network against its specification by BDD
    equivalence.  [checks] is threaded to the driver's assertion layer.
    Raises only on asynchronous exceptions (e.g. an interrupt); job
    failures are reported, not raised. *)

val failures : report -> (string * string) list
(** Failed jobs as [(job, error message)]. *)

val error_findings : report -> (string * Diagnostic.t) list
(** Error-level assertion findings across all jobs, with their job. *)

val pp_text : ?stats:bool -> Format.formatter -> report -> unit
(** Aligned per-job table with totals; [~stats:true] appends every
    job's {!Stats} block. *)

val to_json : report -> string
(** The whole report as one JSON object ([domains], [wall_seconds],
    [jobs] array with per-job status, counts and findings). *)
