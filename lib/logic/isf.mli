(** Incompletely specified Boolean functions, represented by a pair of
    BDDs: the on-set and the don't-care set (disjoint by construction).
    The off-set is the complement of their union.

    An ISF stands for the interval of completely specified functions
    (extensions) [g] with [on <= g <= on \/ dc]. *)

type t = private { on : Bdd.t; dc : Bdd.t }

val make : Bdd.manager -> on:Bdd.t -> dc:Bdd.t -> t
(** @raise Invalid_argument if [on] and [dc] intersect. *)

val of_csf : Bdd.manager -> Bdd.t -> t
(** Completely specified: empty don't-care set. *)

val of_on_off : Bdd.manager -> on:Bdd.t -> off:Bdd.t -> t
(** Don't-care set is everything outside [on \/ off].
    @raise Invalid_argument if [on] and [off] intersect. *)

val on : t -> Bdd.t
val dc : t -> Bdd.t
val off : Bdd.manager -> t -> Bdd.t
val care : Bdd.manager -> t -> Bdd.t

val is_completely_specified : t -> bool

val extends : Bdd.manager -> Bdd.t -> t -> bool
(** [extends m g f]: is the completely specified [g] an extension of [f]? *)

val equal : t -> t -> bool
(** Equality of representations (same on-set and same dc-set). *)

val compatible : Bdd.manager -> t -> t -> bool
(** Do the two ISFs admit a common extension (on-set of one never meets
    the off-set of the other)? *)

val join : Bdd.manager -> t -> t -> t
(** Conjunction of the constraints of two compatible ISFs: the result's
    extensions are exactly the common extensions.
    @raise Invalid_argument if they are not compatible. *)

val assign_all_zero : Bdd.manager -> t -> t
(** The classical pessimistic assignment: every don't care becomes 0
    (used by the [mulopII] baseline). *)

val assign_all_one : Bdd.manager -> t -> t

val restrict : Bdd.manager -> t -> int -> bool -> t
(** Cofactor of both sets. *)

val cofactor_vector : Bdd.manager -> t -> int list -> t array
(** ISF counterpart of {!Bdd.cofactor_vector}. *)

val extend_cofactor_vector : Bdd.manager -> t array -> int list -> int -> t array
(** ISF counterpart of {!Bdd.extend_cofactor_vector}: extend a cofactor
    vector for ascending [vars] to the ascending merge with one more
    variable by splitting each cached cofactor. *)

val swap_vars : Bdd.manager -> t -> int -> int -> t
val negate_var : Bdd.manager -> t -> int -> t
val support : Bdd.manager -> t -> int list
(** Variables on which the on-set or the off-set depends. *)

val random_extension : Bdd.manager -> t -> Random.State.t -> Bdd.t
(** A random extension (each dc minterm resolved independently is too
    expensive; this resolves dc by a random cube-wise pattern — adequate
    for tests). *)

val pp : Format.formatter -> t -> unit
