lib/benchmarks/randnet.ml: Array Bv Driver Hashtbl Int List Network Printf Random Set
