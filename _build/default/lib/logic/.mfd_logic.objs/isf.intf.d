lib/logic/isf.mli: Bdd Format Random
