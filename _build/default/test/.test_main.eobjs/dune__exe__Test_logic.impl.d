test/test_logic.ml: Alcotest Array Bdd Bv Cover Fun Isf List Minimize QCheck2 QCheck_alcotest Random
