let finding ?loc code msg = Some (Diagnostic.make ?loc code msg)

let well_formed_parts m ~where ~on ~dc =
  if Bdd.is_zero (Bdd.and_ m on dc) then None
  else finding ~loc:where "DEC001" "on-set and don't-care set intersect"

(* fine refines coarse: on(coarse) <= on(fine) and off(coarse) <= off(fine),
   i.e. every minterm the coarse ISF constrains is constrained the same
   way by the fine one. *)
let refines m ~coarse ~fine =
  Bdd.is_one (Bdd.imp m (Isf.on coarse) (Isf.on fine))
  && Bdd.is_one (Bdd.imp m (Isf.off m coarse) (Isf.off m fine))

let check_refines m ~where ~coarse ~fine =
  if refines m ~coarse ~fine then None
  else
    finding ~loc:where "DEC002"
      "phase result constrains a minterm differently from its input ISF"

let check_group_symmetric m ~where fs group =
  let symmetric_in f (i, pi) (j, pj) =
    let rel = pi <> pj in
    let invariant g = Bdd.equal g (Symmetry.swap_rel m g ~rel i j) in
    invariant (Isf.on f) && invariant (Isf.off m f)
  in
  let rec pairs = function
    | [] -> []
    | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
  in
  let broken =
    List.find_opt
      (fun (a, b) -> not (List.for_all (fun f -> symmetric_in f a b) fs))
      (pairs group)
  in
  match broken with
  | None -> None
  | Some ((i, _), (j, _)) ->
      finding ~loc:where "DEC003"
        (Printf.sprintf
           "function vector is not invariant under exchanging variables %d and %d"
           i j)

let check_proper_cover g colors ~where =
  if Coloring.is_proper g colors then None
  else
    finding ~loc:where "DEC004"
      "two incompatible bound-set classes were merged into one color"

let check_alpha_count ~where ~nclasses ~r =
  let rec ceil_log2 n = if n <= 1 then 0 else 1 + ceil_log2 ((n + 1) / 2) in
  let expected = ceil_log2 (max 1 nclasses) in
  if r = expected then None
  else
    finding ~loc:where "DEC006"
      (Printf.sprintf "%d decomposition functions for %d classes (expected %d)"
         r nclasses expected)

let check_composition m ~where ~subs ~g ~spec =
  let composed f = Bdd.vector_compose m f subs in
  let on_c = composed (Isf.on g) and off_c = composed (Isf.off m g) in
  if
    Bdd.is_one (Bdd.imp m (Isf.on spec) on_c)
    && Bdd.is_one (Bdd.imp m (Isf.off m spec) off_c)
  then None
  else
    finding ~loc:where "DEC007"
      "composing the step's functions does not reproduce the specification \
       on its care set"

let function_of_tt m sup tt =
  let p = List.length sup in
  if p = 0 then (if Bv.get tt 0 then Bdd.one m else Bdd.zero m)
  else begin
    (* [Bdd.of_vector] indexes with the first variable as the most
       significant bit; the emitted tables use support position [k] as
       bit [k] (least significant first), so transpose the index. *)
    let vec =
      Array.init (1 lsl p) (fun i ->
          let idx = ref 0 in
          for k = 0 to p - 1 do
            if (i lsr (p - 1 - k)) land 1 = 1 then idx := !idx lor (1 lsl k)
          done;
          if Bv.get tt !idx then Bdd.one m else Bdd.zero m)
    in
    Bdd.of_vector m sup vec
  end

let check_lut_realizes m ~where isf ~support ~tt =
  if Isf.extends m (function_of_tt m support tt) isf then None
  else
    finding ~loc:where "DEC008"
      "LUT table is not an extension of the ISF it was emitted for"

let check_lut_equals m ~where f ~support ~tt =
  if Bdd.equal f (function_of_tt m support tt) then None
  else
    finding ~loc:where "DEC008"
      "LUT table differs from the decomposition function it was emitted for"
