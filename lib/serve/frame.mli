(** Length-prefixed message framing: 4-byte big-endian payload length,
    then the payload.

    The server side uses the incremental {!reader} — fed raw bytes as
    they arrive, it reassembles frames across arbitrary read
    boundaries (the partial-read edge case a naive
    [read header; read body] loop gets wrong under TCP segmentation).
    The client side uses the simple blocking {!read_frame}. *)

val header_size : int

val encode : string -> bytes
(** The payload with its length prefix, ready to write. *)

type reader

val reader : ?max_frame:int -> unit -> reader
(** [max_frame] (default 16 MiB) caps the declared payload size. *)

val feed : reader -> bytes -> int -> int -> unit
(** [feed r bytes off len]: append freshly read bytes. *)

val next : reader -> [ `Frame of string | `Oversized of int | `Await ]
(** Pull the next event. [`Frame payload] is a complete message;
    [`Await] means feed more bytes.  [`Oversized len] is reported
    {e once} per offending frame; the reader then silently drains the
    declared payload, so the connection stays usable and the next
    frame parses — the server answers with a [too-large] error
    instead of dropping the client. *)

(** {1 Blocking helpers} *)

val write : Unix.file_descr -> string -> unit
(** Frame and write the whole payload (loops on short writes). *)

exception Closed
(** Peer closed the connection mid-frame. *)

val read_frame : Unix.file_descr -> string
(** Blocking read of one complete frame.  @raise Closed on EOF. *)
