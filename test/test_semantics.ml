(* The semantic (SDC/ODC) dataflow passes: one hand-built network per
   SEM code, the care-set-aware audit, and the pure-observer property of
   deep-checked decomposition runs. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let tt bits =
  let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
  Bv.of_fun (log2 (String.length bits)) (fun i -> bits.[i] = '1')

let contains msg sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length msg && (String.sub msg i n = sub || go (i + 1))
  in
  go 0

let has ?loc code findings =
  List.exists
    (fun f ->
      f.Diagnostic.code = code
      && match loc with None -> true | Some l -> f.Diagnostic.loc = Some l)
    findings

let analyze ?care_of_output ?check net =
  let m = Bdd.manager () in
  let var_of_input =
    let tbl = Hashtbl.create 8 in
    List.iteri (fun k (name, _) -> Hashtbl.add tbl name k) (Network.inputs net);
    fun name -> Hashtbl.find tbl name
  in
  Semantics.analyze ?care_of_output ?check m ~var_of_input net

(* x -> g = and(x,y) implies the or-LUT over (g, x) can never see
   g=1, x=0: its row 1 is a satisfiability don't care. *)
let sem001_net () =
  let net = Network.create () in
  let x = Network.add_input net "x" and y = Network.add_input net "y" in
  let g = Network.add_lut net ~fanins:[ x; y ] ~tt:(tt "0001") in
  let o = Network.add_lut net ~fanins:[ g; y ] ~tt:(tt "1001") in
  Network.set_output net "o" o;
  net

(* o = xor(n, n) cancels n: complementing n flips both fanins at once,
   so no output ever changes — n is functionally dead. *)
let sem002_net () =
  let net = Network.create () in
  let x = Network.add_input net "x" and y = Network.add_input net "y" in
  let n = Network.add_lut net ~fanins:[ x; y ] ~tt:(tt "0001") in
  let o = Network.add_lut net ~fanins:[ n; n ] ~tt:(tt "0110") in
  Network.set_output net "o" o;
  net

(* z = and(x, not x) by reconvergence: the table is a plain AND, but the
   global function is the constant 0. *)
let sem003_net () =
  let net = Network.create () in
  let x = Network.add_input net "x" in
  let n = Network.not_gate net x in
  let z = Network.add_lut net ~fanins:[ x; n ] ~tt:(tt "0001") in
  Network.set_output net "z" z;
  net

(* and(x,y) built twice with different structure: directly, and as
   nor(not x, not y).  No structural pass can relate them; their global
   functions are equal. *)
let sem004_net () =
  let net = Network.create () in
  let x = Network.add_input net "x" and y = Network.add_input net "y" in
  let d = Network.add_lut net ~fanins:[ x; y ] ~tt:(tt "0001") in
  let nx = Network.not_gate net x and ny = Network.not_gate net y in
  let d' = Network.add_lut net ~fanins:[ nx; ny ] ~tt:(tt "1000") in
  Network.set_output net "o1" d;
  Network.set_output net "o2" d';
  net

(* Two LUTs over the same fanins whose tables differ only at the
   unreachable row (g=1, x=0): the difference lives entirely inside the
   don't cares, so the twins are mergeable. *)
let sem006_net () =
  let net = Network.create () in
  let x = Network.add_input net "x" and y = Network.add_input net "y" in
  let g = Network.add_lut net ~fanins:[ x; y ] ~tt:(tt "0001") in
  let a = Network.add_lut net ~fanins:[ g; x ] ~tt:(tt "1001") in
  let b = Network.add_lut net ~fanins:[ g; x ] ~tt:(tt "1101") in
  Network.set_output net "oa" a;
  Network.set_output net "ob" b;
  net

let sem_tests =
  [
    Alcotest.test_case "SEM001: unreachable LUT row" `Quick (fun () ->
        let fs = analyze (sem001_net ()) in
        check_bool "sem001" true (has ~loc:"o" "SEM001" fs));
    Alcotest.test_case "SEM002: functionally dead node" `Quick (fun () ->
        let fs = analyze (sem002_net ()) in
        check_bool "sem002" true (has "SEM002" fs));
    Alcotest.test_case "SEM003: constant by reconvergence" `Quick (fun () ->
        let fs = analyze (sem003_net ()) in
        check_bool "sem003" true (has ~loc:"z" "SEM003" fs);
        (* the structural pass sees a perfectly ordinary AND table *)
        check_bool "net008 silent" false
          (has "NET008" (Net_check.analyze (sem003_net ()))));
    Alcotest.test_case "SEM004: semantic duplicate" `Quick (fun () ->
        let net = sem004_net () in
        let fs = analyze net in
        check_bool "sem004" true (has ~loc:"o2" "SEM004" fs);
        check_bool "net007 silent" false (has "NET007" (Net_check.analyze net)));
    Alcotest.test_case "SEM005: identical outputs" `Quick (fun () ->
        let fs = analyze (sem004_net ()) in
        check_bool "sem005" true (has ~loc:"o2" "SEM005" fs));
    Alcotest.test_case "SEM006 folds into SEM004 for the same pair" `Quick
      (fun () ->
        (* In sem006_net the twins also compute the same function on the
           care set, so the pair gets ONE finding: SEM004 noting the
           SEM006 evidence, not two findings. *)
        let fs = analyze (sem006_net ()) in
        check_bool "no separate sem006" false (has ~loc:"ob" "SEM006" fs);
        check_bool "sem004 present" true (has ~loc:"ob" "SEM004" fs);
        let merged =
          List.find
            (fun f -> f.Diagnostic.code = "SEM004" && f.Diagnostic.loc = Some "ob")
            fs
        in
        check_bool "notes SEM006" true
          (contains merged.Diagnostic.message "SEM006"));
    Alcotest.test_case "SEM006 alone when the pair is not a duplicate" `Quick
      (fun () ->
        (* a = and(x,y), b = xnor-ish twin differing only at x=0 rows;
           both are masked by x downstream, so the differing rows are
           unobservable (free) — yet the global functions differ at
           x=0, so the pair is NOT a SEM004 duplicate. *)
        let net = Network.create () in
        let x = Network.add_input net "x" and y = Network.add_input net "y" in
        let a = Network.add_lut net ~fanins:[ x; y ] ~tt:(tt "0001") in
        let b = Network.add_lut net ~fanins:[ x; y ] ~tt:(tt "1001") in
        Network.set_output net "oa" (Network.and_gate net a x);
        Network.set_output net "ob" (Network.and_gate net b x);
        let fs = analyze net in
        check_bool "sem006" true (has "SEM006" fs);
        check_bool "twin pair not reported as duplicate" true
          (List.for_all
             (fun f ->
               f.Diagnostic.code <> "SEM004"
               || not (contains f.Diagnostic.message "SEM006"))
             fs));
    Alcotest.test_case "SEM008: budget truncation" `Quick (fun () ->
        let net = sem001_net () in
        let calls = ref 0 in
        let check () =
          incr calls;
          if !calls > 1 then raise (Careflow.Cutoff "test budget")
        in
        let fs = analyze ~check net in
        check_bool "sem008" true (has "SEM008" fs));
    Alcotest.test_case "no care set silences the dataflow" `Quick (fun () ->
        (* With an empty care set nothing is observable and nothing is
           reachable; the passes must not drown the report in findings
           that only reflect the vacuous care space. *)
        let m = Bdd.manager () in
        let net = sem004_net () in
        let var_of_input =
          let tbl = Hashtbl.create 8 in
          List.iteri
            (fun k (name, _) -> Hashtbl.add tbl name k)
            (Network.inputs net);
          fun name -> Hashtbl.find tbl name
        in
        let fs =
          Semantics.analyze
            ~care_of_output:(fun _ -> Bdd.zero m)
            m ~var_of_input net
        in
        check_bool "no sem001" false (has "SEM001" fs);
        check_bool "no sem002" false (has "SEM002" fs);
        check_bool "no sem003" false (has "SEM003" fs);
        check_bool "no sem004" false (has "SEM004" fs);
        check_bool "no sem005" false (has "SEM005" fs);
        check_bool "no sem006" false (has "SEM006" fs));
  ]

(* ---- the care-set-aware audit (SEM007) ---- *)

(* f = x or y versus f = x xor y: they differ exactly at x=y=1. *)
let audit_nets () =
  let golden = Network.create () in
  let x = Network.add_input golden "x" and y = Network.add_input golden "y" in
  Network.set_output golden "f" (Network.or_gate golden x y);
  let candidate = Network.create () in
  let x' = Network.add_input candidate "x"
  and y' = Network.add_input candidate "y" in
  Network.set_output candidate "f" (Network.xor_gate candidate x' y');
  (golden, candidate)

let audit_tests =
  [
    Alcotest.test_case "audit: disagreement is SEM007 with witness" `Quick
      (fun () ->
        let golden, candidate = audit_nets () in
        let m = Bdd.manager () in
        let fs =
          Semantics.audit m
            ~inputs:[ ("x", 0); ("y", 1) ]
            ~golden ~candidate
        in
        check_int "one finding" 1 (List.length fs);
        let f = List.hd fs in
        check_string "code" "SEM007" f.Diagnostic.code;
        check_bool "witness names both inputs" true
          (contains f.Diagnostic.message "x=1"
          && contains f.Diagnostic.message "y=1"));
    Alcotest.test_case "audit: don't cares excuse the disagreement" `Quick
      (fun () ->
        let golden, candidate = audit_nets () in
        let m = Bdd.manager () in
        (* care set = everything except x=y=1 *)
        let care =
          Bdd.not_ m (Bdd.and_ m (Bdd.var m 0) (Bdd.var m 1))
        in
        let fs =
          Semantics.audit
            ~care_of_output:(fun _ -> care)
            m
            ~inputs:[ ("x", 0); ("y", 1) ]
            ~golden ~candidate
        in
        check_int "clean" 0 (List.length fs));
    Alcotest.test_case "audit: missing outputs on either side" `Quick
      (fun () ->
        let golden, _ = audit_nets () in
        let candidate = Network.create () in
        let x = Network.add_input candidate "x"
        and y = Network.add_input candidate "y" in
        Network.set_output candidate "g" (Network.or_gate candidate x y);
        let m = Bdd.manager () in
        let fs =
          Semantics.audit m
            ~inputs:[ ("x", 0); ("y", 1) ]
            ~golden ~candidate
        in
        check_bool "golden's f missing" true (has ~loc:"f" "SEM007" fs);
        check_bool "candidate's g missing" true (has ~loc:"g" "SEM007" fs));
  ]

(* ---- regression: NET007 catches permuted duplicates ---- *)

let net007_tests =
  [
    Alcotest.test_case "NET007: duplicate up to fanin order" `Quick (fun () ->
        let net = Network.create () in
        let x = Network.add_input net "x" and y = Network.add_input net "y" in
        (* x and not y, once as (x, y) and once as (y, x) with the table
           permuted to match: same local function, different structure. *)
        let a = Network.add_lut net ~fanins:[ x; y ] ~tt:(tt "0100") in
        let b = Network.add_lut net ~fanins:[ y; x ] ~tt:(tt "0010") in
        Network.set_output net "oa" a;
        Network.set_output net "ob" b;
        check_bool "flagged" true (has "NET007" (Net_check.analyze net)));
    Alcotest.test_case "NET007: permuted but different stays silent" `Quick
      (fun () ->
        let net = Network.create () in
        let x = Network.add_input net "x" and y = Network.add_input net "y" in
        (* x and not y vs y and not x: same table under the fanin swap,
           but the permutation corrects it to a different function. *)
        let a = Network.add_lut net ~fanins:[ x; y ] ~tt:(tt "0100") in
        let b = Network.add_lut net ~fanins:[ y; x ] ~tt:(tt "0100") in
        Network.set_output net "oa" a;
        Network.set_output net "ob" b;
        check_bool "silent" false (has "NET007" (Net_check.analyze net)));
  ]

(* ---- determinism: rendering is independent of finding order ---- *)

let determinism_tests =
  [
    Alcotest.test_case "renderers are order-independent" `Quick (fun () ->
        let fs =
          [
            Diagnostic.make ~loc:"b" "NET006" "dead";
            Diagnostic.make ~loc:"a" "NET008" "constant";
            Diagnostic.make ~loc:"a" "NET006" "dead";
            Diagnostic.make "NET001" "dangling";
          ]
        in
        let rev = List.rev fs in
        let text l = Format.asprintf "%a" Diagnostic.pp_list l in
        check_string "text" (text fs) (text rev);
        check_string "json" (Diagnostic.to_json fs) (Diagnostic.to_json rev);
        (* normalized order: no-loc first, then by (loc, code) *)
        let codes =
          List.map (fun f -> f.Diagnostic.code) (Diagnostic.normalize fs)
        in
        check_bool "sorted" true
          (codes = [ "NET001"; "NET006"; "NET008"; "NET006" ]));
    Alcotest.test_case "deep lint of a fixed net renders stably" `Quick
      (fun () ->
        let render () =
          Diagnostic.to_json (analyze (sem006_net ()))
        in
        check_string "byte-identical" (render ()) (render ()));
  ]

(* ---- property: deep checks are pure observers ---- *)

let names n = List.init n (fun i -> Printf.sprintf "x%d" i)

let gen_fun n =
  let open QCheck2.Gen in
  let+ bits = list_size (return (1 lsl n)) bool in
  let arr = Array.of_list bits in
  Bv.of_fun n (fun i -> arr.(i))

(* ---- the windowed SAT fallback ---- *)

let var_of_input_of net =
  let tbl = Hashtbl.create 8 in
  List.iteri (fun k (name, _) -> Hashtbl.add tbl name k) (Network.inputs net);
  fun name -> Hashtbl.find tbl name

let windowed_tests =
  [
    Alcotest.test_case "fallback covers a fully truncated run" `Quick
      (fun () ->
        (* The exact engine is killed on the first poll; the windowed
           engine must still find sem001_net's unreachable row, and the
           report must show full coverage with no SEM008. *)
        let net = sem001_net () in
        let m = Bdd.manager () in
        let r =
          Semantics.analyze_report
            ~check:(fun () -> raise (Careflow.Cutoff "test budget"))
            m ~var_of_input:(var_of_input_of net) net
        in
        check_bool "sem001 via window" true (has ~loc:"o" "SEM001" r.Semantics.findings);
        check_bool "no sem008" false (has "SEM008" r.Semantics.findings);
        check_int "exact" 0 r.Semantics.coverage.Semantics.exact_nodes;
        check_int "windowed" r.Semantics.coverage.Semantics.total_nodes
          r.Semantics.coverage.Semantics.windowed_nodes;
        check_int "truncated" 0 r.Semantics.coverage.Semantics.truncated_nodes;
        check_bool "sat calls counted" true
          (r.Semantics.coverage.Semantics.sat_calls > 0);
        check_bool "windows counted" true
          (r.Semantics.coverage.Semantics.windows_built > 0));
    Alcotest.test_case "fallback finds dead and constant nodes" `Quick
      (fun () ->
        let m = Bdd.manager () in
        let check2 =
          Semantics.analyze_report
            ~check:(fun () -> raise (Careflow.Cutoff "test budget"))
            m
            ~var_of_input:(var_of_input_of (sem002_net ()))
            (sem002_net ())
        in
        check_bool "sem002 via window" true (has "SEM002" check2.Semantics.findings);
        let check3 =
          Semantics.analyze_report
            ~check:(fun () -> raise (Careflow.Cutoff "test budget"))
            m
            ~var_of_input:(var_of_input_of (sem003_net ()))
            (sem003_net ())
        in
        check_bool "sem003 via window" true
          (has ~loc:"z" "SEM003" check3.Semantics.findings));
    Alcotest.test_case "clean exact run reports exact coverage" `Quick
      (fun () ->
        let net = sem001_net () in
        let m = Bdd.manager () in
        let r =
          Semantics.analyze_report m ~var_of_input:(var_of_input_of net) net
        in
        check_int "windowed" 0 r.Semantics.coverage.Semantics.windowed_nodes;
        check_int "truncated" 0 r.Semantics.coverage.Semantics.truncated_nodes;
        check_int "exact" r.Semantics.coverage.Semantics.total_nodes
          r.Semantics.coverage.Semantics.exact_nodes;
        check_int "no sat calls" 0 r.Semantics.coverage.Semantics.sat_calls);
  ]

(* ---- the SAT audit ---- *)

let sat_audit_tests =
  [
    Alcotest.test_case "audit_sat: disagreement with witness" `Quick (fun () ->
        let golden, candidate = audit_nets () in
        let r = Semantics.audit_sat ~golden ~candidate [ "x"; "y" ] in
        check_int "refuted" 1 r.Semantics.outputs_refuted;
        check_bool "sem007" true (has ~loc:"f" "SEM007" r.Semantics.audit_findings);
        let f =
          List.find (fun f -> f.Diagnostic.code = "SEM007") r.Semantics.audit_findings
        in
        (* the or/xor pair differs exactly at x=1 y=1 *)
        check_bool "witness" true (contains f.Diagnostic.message "x=1 y=1"));
    Alcotest.test_case "audit_sat: dc cubes mask the difference" `Quick
      (fun () ->
        let golden, candidate = audit_nets () in
        let r =
          Semantics.audit_sat
            ~dc_cubes_of_output:(fun _ -> [ [ ("x", true); ("y", true) ] ])
            ~golden ~candidate [ "x"; "y" ]
        in
        check_int "proved" 1 r.Semantics.outputs_proved;
        check_bool "clean" true (r.Semantics.audit_findings = []));
    Alcotest.test_case "audit_sat: identical networks prove clean" `Quick
      (fun () ->
        let golden, _ = audit_nets () in
        let candidate, _ = audit_nets () in
        let r = Semantics.audit_sat ~golden ~candidate [ "x"; "y" ] in
        check_int "proved" 1 r.Semantics.outputs_proved;
        check_int "refuted" 0 r.Semantics.outputs_refuted;
        check_bool "clean" true (r.Semantics.audit_findings = []));
    Alcotest.test_case "audit_sat: missing outputs reported" `Quick (fun () ->
        let golden, _ = audit_nets () in
        let candidate = Network.create () in
        let x = Network.add_input candidate "x" in
        Network.set_output candidate "g" x;
        let r = Semantics.audit_sat ~golden ~candidate [ "x"; "y" ] in
        check_bool "missing from candidate" true
          (has ~loc:"f" "SEM007" r.Semantics.audit_findings);
        check_bool "missing from golden" true
          (has ~loc:"g" "SEM007" r.Semantics.audit_findings));
  ]

let props =
  [
    QCheck2.Test.make ~name:"deep checks are pure observers" ~count:25
      QCheck2.Gen.(pair (gen_fun 6) (gen_fun 6))
      (fun (bv1, bv2) ->
        let run checks =
          let m = Bdd.manager () in
          let spec =
            Driver.spec_of_csf m (names 6)
              [ ("f", Bv.to_bdd m bv1); ("g", Bv.to_bdd m bv2) ]
          in
          let r = Driver.decompose_report ~checks m spec in
          let s = Network.stats r.Driver.network in
          (s.Network.lut_count, s.Network.depth, s.Network.max_fanin)
        in
        run Diagnostic.Off = run Diagnostic.Deep);
    QCheck2.Test.make
      ~name:"whole-network windows match the exact SDC/ODC don't cares"
      ~count:40
      QCheck2.Gen.(int_range 0 100_000)
      (fun seed ->
        (* With unbounded depths a window is the whole circuit: the SAT
           engine's complete don't cares must contain every exact
           SDC/ODC don't care (the satellite soundness bound is the
           other inclusion, so on these nets the two sets coincide). *)
        let net =
          Randnet.cones ~ninputs:5 ~noutputs:3 ~window:4 ~gates_per_output:5
            ~seed ()
        in
        let m = Bdd.manager () in
        let flow = Careflow.analyze m ~var_of_input:(var_of_input_of net) net in
        let ctx = Window.context net in
        let counters = Complete_dc.counters () in
        flow.Careflow.truncated = None
        && List.for_all
             (fun info ->
               match
                 Complete_dc.analyze_node ~tfi_depth:max_int
                   ~tfo_depth:max_int ~counters ctx info.Careflow.signal
               with
               | None -> true
               | Some r ->
                   r.Complete_dc.decided
                   && List.for_all
                        (fun c ->
                          let exact_free =
                            Bdd.is_zero
                              (Bdd.and_ m
                                 info.Careflow.code_sets.(c)
                                 info.Careflow.observable)
                          in
                          let exact_unreachable =
                            Bdd.is_zero info.Careflow.code_sets.(c)
                          in
                          let win_dc = not (Bv.get r.Complete_dc.care c) in
                          let win_unreachable =
                            not (Bv.get r.Complete_dc.reachable c)
                          in
                          exact_free = win_dc
                          && exact_unreachable = win_unreachable)
                        (List.init
                           (1 lsl Bv.nvars r.Complete_dc.care)
                           Fun.id))
             flow.Careflow.nodes);
  ]

let suite =
  sem_tests @ audit_tests @ net007_tests @ determinism_tests @ windowed_tests
  @ sat_audit_tests
  @ List.map (fun p -> QCheck_alcotest.to_alcotest ~long:false p) props
