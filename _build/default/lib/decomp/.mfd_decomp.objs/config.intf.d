lib/decomp/config.mli: Format
