lib/bdd/bdd.ml: Array Buffer Format Hashtbl List Printf Random Stdlib
