(** Per-run resource governor for the decomposition engine.

    A budget carries up to three limits — a wall-clock deadline, a BDD
    node budget, and an effort level — and a {e degradation stage}.  The
    engine polls the budget at phase boundaries ({!check}) and from a
    growth hook installed in the {!Bdd.manager} ({!attach}), so even a
    single runaway BDD operation is interrupted.  On exceedance a
    structured {!Out_of_budget} is raised; the driver catches it and
    {!degrade}s instead of aborting:

    + [Full] — all three don't-care steps run;
    + [No_symmetry] — symmetry maximization (step 1) is dropped;
    + [No_sharing] — the joint sharing-aware clique cover (step 2) is
      dropped too, and class minimization falls back to per-output
      greedy coloring;
    + [Shannon_only] — no more decomposition steps: remaining work items
      are emitted as plain Shannon/free-variable splits (shared MUX
      trees), which always terminates and always yields a correct
      network.

    A node-budget exceedance grants the next stage a fresh node
    allotment (the cheaper mode needs room to operate); a deadline
    exceedance does not extend the deadline, so repeated raises cascade
    quickly down to [Shannon_only].  Once there, the budget disarms
    itself completely — producing the final network is mandatory work.

    Create one budget per decomposition run.  {!attach} re-arms the
    deadline, the node baseline and the degradation stage from scratch,
    so a reused value behaves like a fresh one — but inspecting
    {!stage} between runs only makes sense before the next {!attach}.
    Every degradation event is recorded in {!Stats} by the driver and
    surfaced by [mfd --stats] and the bench harness. *)

(** {1 Effort levels} *)

type effort =
  | Quick  (** cut search budgets: fewer seeds, smaller symmetry/coloring budgets *)
  | Normal  (** the paper's configuration, unchanged *)
  | Thorough  (** widened search budgets for small, hard instances *)

val effort_name : effort -> string
val effort_of_string : string -> (effort, string) result

(** {1 Budgets} *)

type t

type reason = Deadline | Nodes

val reason_name : reason -> string

type stage = Full | No_symmetry | No_sharing | Shannon_only

val stage_name : stage -> string

exception Out_of_budget of { reason : reason; where : string }
(** Raised by {!check} (and by the growth hook installed by {!attach})
    when a limit is exceeded; [where] names the poll point. *)

val create :
  ?timeout:float ->
  ?node_budget:int ->
  ?effort:effort ->
  ?stats:Stats.t ->
  unit ->
  t
(** [timeout] is in seconds of wall-clock time, counted from {!attach}
    (i.e. from the start of the run, not from [create]); [node_budget]
    bounds the number of BDD nodes the run may allocate on top of what
    the manager already holds at {!attach} time.  Omitted limits are
    unlimited; the default effort is [Normal].  [stats] receives the
    [budget_checks] counter — pass the run's own instance (the default
    is a fresh throwaway), never one shared between concurrent runs. *)

val unlimited : t
(** No limits, [Normal] effort: never raises, never degrades.  Safe to
    share because it is inert. *)

val is_limited : t -> bool
val effort : t -> effort
val stage : t -> stage

val attach : t -> Bdd.manager -> unit
(** Arm the budget: start the deadline clock, record the node baseline,
    reset the degradation stage to [Full], and install the manager's
    growth hook.  Every attach re-arms from scratch, so attaching a
    budget a second time starts a fresh run instead of inheriting the
    first run's spent deadline and stale node baseline.  Must be called
    before {!check}; a no-op for {!unlimited}. *)

val detach : t -> Bdd.manager -> unit
(** Remove the growth hook (leaves the budget's stage intact). *)

val check : t -> where:string -> unit
(** Poll the limits; raises {!Out_of_budget} on exceedance.  A no-op
    when the budget is unlimited, suspended by {!exempt}, or already at
    [Shannon_only]. *)

val checker : t -> where:string -> unit -> unit
(** [checker t ~where] is [fun () -> check t ~where] — the polling
    callback handed to modules that must not depend on this one
    (e.g. {!Symmetry.maximize}). *)

val exempt : t -> (unit -> 'a) -> 'a
(** Run a thunk with all checks (including the growth hook) suspended.
    Used around commit and fallback sections: once a decomposition step
    has been computed, emitting it must not be interrupted — aborting
    there would waste the work the budget already paid for. *)

val degrade : t -> Bdd.manager -> reason -> stage
(** Advance to the next degradation stage and return it.  On a [Nodes]
    exceedance the node limit is re-armed with a fresh allotment above
    the current count; a [Deadline] is never extended.  Reaching
    [Shannon_only] disarms the budget completely (hook removed, limits
    cleared). *)

val apply_effort : t -> Config.t -> Config.t
(** Scale the search knobs of a configuration ([seeds],
    [symmetry_budget], [exact_coloring_limit]) by the budget's effort
    level.  [Normal] is the identity, so an unlimited budget never
    changes behaviour. *)
