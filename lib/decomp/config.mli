(** Configuration of the decomposition engine, including the paper's
    algorithm presets. *)

type dc_steps = {
  symmetry : bool;
      (** step 1: assign don't cares to maximize symmetries before bound
          set selection *)
  sharing : bool;
      (** step 2: assign don't cares to minimize the joint compatible
          class count (lower bound on the total number of decomposition
          functions) *)
  cms : bool;
      (** step 3: Chang & Marek-Sadowska per-output class minimization *)
}

type t = {
  lut_size : int;  (** [n_LUT]; 5 for the XC3000 experiments, 2 for gates *)
  objective : Cost.objective;
      (** bound-set scoring objective: {!Cost.Area} (the default, the
          paper's behaviour), {!Cost.Delay} (arrival-time-aware,
          critical-path-first) or {!Cost.Balanced} *)
  dc_steps : dc_steps;
  zero_dc_on_entry : bool;
      (** assign every don't care to 0 as soon as it appears — the
          [mulopII] baseline behaviour *)
  seeds : int;  (** bound-set search: number of greedy seeds *)
  symmetry_budget : int;  (** pair-merge attempts per symmetry pass *)
  exact_coloring_limit : int;
      (** search-node budget before falling back to DSATUR *)
}

val default : t
(** The full [mulop-dc] configuration with [lut_size = 5]. *)

val mulop_ii : t
(** The baseline of Table 1: no don't-care exploitation; every don't
    care is assigned 0 ([x] in the paper: "All don't cares were assigned
    to 0"). *)

val mulop_dc : t
(** The paper's algorithm: three-step don't-care assignment. *)

val with_lut_size : int -> t -> t
val with_objective : Cost.objective -> t -> t
val pp : Format.formatter -> t -> unit
