type policy = First_fit | Max_matching

let distinct_inputs net u v =
  let ins =
    List.sort_uniq compare
      (List.map Network.signal_id (Network.fanins net u)
      @ List.map Network.signal_id (Network.fanins net v))
  in
  List.length ins

(* The XC3000 rule, parametric in the LUT size [k]: two functions of up
   to [k - 1] inputs each sharing at most [k] distinct inputs fit one
   CLB.  At the paper's k = 5 this is exactly the 4/4/5 rule. *)
let mergeable ?(lut_size = 5) net u v =
  (not (Network.signal_equal u v))
  && List.length (Network.fanins net u) <= lut_size - 1
  && List.length (Network.fanins net v) <= lut_size - 1
  && distinct_inputs net u v <= lut_size

let merge_graph ?lut_size net =
  let luts = Array.of_list (Network.lut_signals net) in
  let g = Ugraph.create (Array.length luts) in
  for a = 0 to Array.length luts - 1 do
    for b = a + 1 to Array.length luts - 1 do
      if mergeable ?lut_size net luts.(a) luts.(b) then Ugraph.add_edge g a b
    done
  done;
  (luts, g)

(* The merge graph is quadratic in the LUT count; build it (and the
   matching) once per query and derive both the pairs and the count
   from the same matching. *)
let matching_of ?lut_size policy net =
  let luts, g = merge_graph ?lut_size net in
  let matching =
    match policy with
    | First_fit -> Matching.greedy g
    | Max_matching -> Matching.maximum g
  in
  (luts, matching)

let pairs_with_lut_count ?lut_size policy net =
  let luts, matching = matching_of ?lut_size policy net in
  (List.map (fun (a, b) -> (luts.(a), luts.(b))) matching, Array.length luts)

let pairs ?lut_size policy net = fst (pairs_with_lut_count ?lut_size policy net)

let clb_count ?lut_size policy net =
  let pairs, lut_count = pairs_with_lut_count ?lut_size policy net in
  lut_count - List.length pairs
