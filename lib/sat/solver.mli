(** A small CDCL SAT solver.

    The classic architecture in ~500 lines: two-literal watching for
    unit propagation, first-UIP conflict analysis with clause learning,
    VSIDS-style variable activities with phase saving, Luby restarts,
    and solving under assumptions.  Learned clauses are kept for the
    solver's lifetime (no clause-database reduction) — adequate for the
    window-sized problems of the complete don't-care analysis, where a
    solver lives for one window and a few dozen enumeration calls.

    Solvers are incremental: {!add_clause} between {!solve} calls is how
    the don't-care enumeration blocks already-found care minterms, and
    [assumptions] is how one formula serves several queries (the miter
    selector of {!Complete_dc}, the per-output queries of the SAT
    equivalence audit).

    Every call can be budgeted (conflict and decision caps, plus an
    arbitrary [check] callback polled during search); an exhausted
    budget yields {!Unknown}, never a wrong answer.

    A solver is single-domain mutable state, like a {!Bdd.manager}:
    distinct solvers are fully independent. *)

type t

type outcome =
  | Sat  (** a model is available through {!value} *)
  | Unsat  (** no model (under the given assumptions) *)
  | Unknown of string  (** a budget ran out; the payload names it *)

val create : Cnf.t -> t
(** Import a formula.  Later changes to the [Cnf.t] are not seen; add
    further clauses with {!add_clause}. *)

val add_clause : t -> Cnf.lit list -> unit
(** Add one clause (e.g. a blocking clause between enumeration calls).
    Duplicate literals are merged, tautologies dropped.  Adding an
    empty (or root-falsified) clause makes every later {!solve} return
    {!Unsat} immediately. *)

val solve :
  ?assumptions:Cnf.lit list ->
  ?max_conflicts:int ->
  ?max_decisions:int ->
  ?check:(unit -> unit) ->
  t ->
  outcome
(** Decide satisfiability under the assumptions (default none).
    [max_conflicts]/[max_decisions] cap this call's search (omitted =
    unlimited); [check] is polled every few hundred conflicts and may
    raise to abort the whole analysis (the exception propagates).
    {!Unsat} under assumptions means no model extends them; the
    formula itself may still be satisfiable. *)

val value : t -> Cnf.var -> bool
(** Model value of a variable after a {!Sat} outcome.  Variables the
    search never touched default to [false].
    @raise Invalid_argument when the last outcome was not {!Sat}. *)

(** {1 Counters} (cumulative over the solver's lifetime) *)

val conflicts : t -> int
val decisions : t -> int
val propagations : t -> int
val restarts : t -> int
val learned : t -> int
val solve_calls : t -> int
