(* Quickstart: decompose a small multi-output function into 5-input LUTs
   and inspect every stage of the public API.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. A BDD manager and a specification.  We use a 2-bit multiplier
     with an enable input: 5 inputs, 4 outputs. *)
  let m = Bdd.manager () in
  let a = Bvec.inputs m ~first_var:0 ~width:2 in
  let b = Bvec.inputs m ~first_var:2 ~width:2 in
  let enable = Bdd.var m 4 in
  let product = Bvec.mul m a b in
  let gated = Array.map (Bdd.and_ m enable) product in
  let spec =
    Driver.spec_of_csf m
      [ "a0"; "a1"; "b0"; "b1"; "en" ]
      (Bvec.named_outputs "p" gated)
  in

  (* 2. Inspect the specification: supports and symmetries. *)
  List.iter
    (fun (name, isf) ->
      Format.printf "%s depends on variables %a@." name
        Format.(pp_print_list ~pp_sep:pp_print_space pp_print_int)
        (Isf.support m isf))
    spec.Driver.functions;
  let groups =
    Symmetry.partition m
      (List.map (fun (_, f) -> Isf.on f) spec.Driver.functions)
      [ 0; 1; 2; 3; 4 ]
  in
  Format.printf "symmetry groups: %d (the multiplier is symmetric under a<->b)@."
    (List.length groups);

  (* 3. Decompose with the paper's algorithm into 3-input LUTs (small on
     purpose, so that real decomposition steps happen). *)
  let cfg = Config.with_lut_size 3 Config.mulop_dc in
  let report = Driver.decompose_report ~cfg m spec in
  let net = report.Driver.network in
  Format.printf "@.decomposed: %a@." Network.pp_stats (Network.stats net);
  Format.printf "decomposition steps: %d, decomposition functions: %d@."
    report.Driver.step_count report.Driver.alpha_count;

  (* 4. Verify the result against the specification and print BLIF. *)
  assert (Driver.verify m spec net);
  Format.printf "@.verified OK; BLIF:@.%s@." (Blif.print ~model:"quickstart" net);

  (* 5. Compare the three algorithm variants on LUT and CLB counts. *)
  Format.printf "algorithm comparison (XC3000, 5-input LUTs):@.";
  List.iter
    (fun alg ->
      let o = Mulop.run m alg spec in
      Format.printf "  %a@." Mulop.pp_outcome o)
    [ Mulop.Mulop_ii; Mulop.Mulop_dc; Mulop.Mulop_dc_ii ]
