examples/fpga_mapping.ml: Array Bdd Driver Format List Mcnc Mulop Sys
