(* Wire protocol of the decomposition daemon: the shared Json codec
   (lib/json — hand-rolled, no external dependency in the container)
   plus the typed request/response vocabulary.  One request or
   response is one JSON object inside one length-prefixed frame
   (Frame). *)

(* ---- JSON ----

   The codec itself lives in [Json]; the constructors are re-exported
   here so protocol code (and its tests) keep reading [Proto.Obj],
   [Proto.Str], ... *)

type json = Json.t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list
  | Raw of string

let to_string = Json.to_string
let parse = Json.parse

let member = Json.member

let mem_int = Json.mem_int
let mem_float = Json.mem_float
let mem_str = Json.mem_str
let mem_bool = Json.mem_bool

(* ---- requests ---- *)

type source =
  | Target of string
  | Blif_text of string
  | Pla_text of string

type run_request = {
  source : source;
  lut_size : int;
  algorithm : Mulop.algorithm;
  effort : Budget.effort option;
  timeout : float option;
  node_budget : int option;
  checks : Diagnostic.level;
  verify : bool;
}

type op = Run of run_request | Stats | Ping | Shutdown

type request = { id : int; op : op }

let algorithm_of_string = function
  | "mulopII" | "mulopii" -> Ok Mulop.Mulop_ii
  | "mulop-dc" | "dc" -> Ok Mulop.Mulop_dc
  | "mulop-dcII" | "mulop-dcii" | "dcii" -> Ok Mulop.Mulop_dc_ii
  | s -> Error (Printf.sprintf "unknown algorithm %S" s)

let source_to_json = function
  | Target t -> Obj [ ("target", Str t) ]
  | Blif_text text -> Obj [ ("format", Str "blif"); ("text", Str text) ]
  | Pla_text text -> Obj [ ("format", Str "pla"); ("text", Str text) ]

let source_of_json j =
  match mem_str "target" j with
  | Some t -> Ok (Target t)
  | None -> (
      match (mem_str "format" j, mem_str "text" j) with
      | Some "blif", Some text -> Ok (Blif_text text)
      | Some "pla", Some text -> Ok (Pla_text text)
      | Some fmt, Some _ -> Error (Printf.sprintf "unknown source format %S" fmt)
      | _ -> Error "source needs either \"target\" or \"format\"+\"text\"")

let request_to_json { id; op } =
  let base op_name fields = Obj (("id", Num (float_of_int id)) :: ("op", Str op_name) :: fields) in
  match op with
  | Ping -> base "ping" []
  | Stats -> base "stats" []
  | Shutdown -> base "shutdown" []
  | Run r ->
      base "run"
        ([
           ("source", source_to_json r.source);
           ("lut_size", Num (float_of_int r.lut_size));
           ("algorithm", Str (Mulop.algorithm_name r.algorithm));
           ("checks", Str (Diagnostic.level_name r.checks));
           ("verify", Bool r.verify);
         ]
        @ (match r.effort with
          | None -> []
          | Some e -> [ ("effort", Str (Budget.effort_name e)) ])
        @ (match r.timeout with
          | None -> []
          | Some t -> [ ("timeout", Num t) ])
        @
        match r.node_budget with
        | None -> []
        | Some b -> [ ("node_budget", Num (float_of_int b)) ])

let ( let* ) = Result.bind

let request_of_json j =
  match j with
  | Obj _ ->
      let id = Option.value ~default:0 (mem_int "id" j) in
      let* op_name =
        Option.to_result ~none:"missing \"op\"" (mem_str "op" j)
      in
      let* op =
        match op_name with
        | "ping" -> Ok Ping
        | "stats" -> Ok Stats
        | "shutdown" -> Ok Shutdown
        | "run" ->
            let* src_json =
              Option.to_result ~none:"run: missing \"source\"" (member "source" j)
            in
            let* source = source_of_json src_json in
            let lut_size = Option.value ~default:5 (mem_int "lut_size" j) in
            let* () =
              if lut_size >= 2 then Ok ()
              else Error "run: lut_size must be >= 2"
            in
            let* algorithm =
              match mem_str "algorithm" j with
              | None -> Ok Mulop.Mulop_dc
              | Some s -> algorithm_of_string s
            in
            let* effort =
              match mem_str "effort" j with
              | None -> Ok None
              | Some s -> Result.map Option.some (Budget.effort_of_string s)
            in
            let* checks =
              match mem_str "checks" j with
              | None -> Ok Diagnostic.Off
              | Some s -> Diagnostic.level_of_string s
            in
            let timeout = mem_float "timeout" j in
            let* () =
              match timeout with
              | Some t when t <= 0.0 -> Error "run: timeout must be positive"
              | _ -> Ok ()
            in
            let node_budget = mem_int "node_budget" j in
            let* () =
              match node_budget with
              | Some b when b <= 0 -> Error "run: node_budget must be positive"
              | _ -> Ok ()
            in
            let verify = Option.value ~default:false (mem_bool "verify" j) in
            Ok
              (Run
                 {
                   source;
                   lut_size;
                   algorithm;
                   effort;
                   timeout;
                   node_budget;
                   checks;
                   verify;
                 })
        | s -> Error (Printf.sprintf "unknown op %S" s)
      in
      Ok { id; op }
  | _ -> Error "request must be a JSON object"

(* ---- responses ---- *)

type error_code =
  | Bad_request
  | Too_large
  | Queue_full
  | Shutting_down
  | Parse_error
  | Out_of_budget
  | Internal
  | Failed

let error_code_name = function
  | Bad_request -> "bad-request"
  | Too_large -> "too-large"
  | Queue_full -> "queue-full"
  | Shutting_down -> "shutting-down"
  | Parse_error -> "parse-error"
  | Out_of_budget -> "out-of-budget"
  | Internal -> "internal"
  | Failed -> "failed"

let error_code_of_name = function
  | "bad-request" -> Some Bad_request
  | "too-large" -> Some Too_large
  | "queue-full" -> Some Queue_full
  | "shutting-down" -> Some Shutting_down
  | "parse-error" -> Some Parse_error
  | "out-of-budget" -> Some Out_of_budget
  | "internal" -> Some Internal
  | "failed" -> Some Failed
  | _ -> None

(* The serve-protocol projection of the batch failure taxonomy:
   parse errors are the client's fault, internal invariant violations
   are the engine's. *)
let error_code_of_kind = function
  | Batch.Parse_error -> Parse_error
  | Batch.Internal -> Internal
  | Batch.Out_of_budget -> Out_of_budget
  | Batch.Other -> Failed

(* [client_fault] drives the submit client's exit code split. *)
let client_fault = function
  | Bad_request | Too_large | Parse_error -> true
  | Queue_full | Shutting_down | Out_of_budget | Internal | Failed -> false

type run_result = {
  job : string;
  algorithm : string;
  luts : int;
  clbs : int;
  depth : int;
  steps : int;
  shannon : int;
  alphas : int;
  degraded_to : string;
  findings : string;  (* Diagnostic.to_json output, verbatim *)
  verified : bool option;
  blif : string;
  cached : bool;
  seconds : float;
}

type server_stats = {
  jobs_served : int;
  result_hits : int;
  result_misses : int;
  cache_entries : int;
  cache_bytes : int;
  queue_depth : int;
  queue_capacity : int;
  workers : int;
  uptime_seconds : float;
}

type response =
  | Ok_run of int * run_result
  | Ok_stats of int * server_stats
  | Pong of int
  | Bye of int
  | Err of {
      id : int;
      code : error_code;
      message : string;
      retry_after : float option;
    }

let response_to_json = function
  | Pong id ->
      Obj [ ("id", Num (float_of_int id)); ("status", Str "ok"); ("op", Str "ping") ]
  | Bye id ->
      Obj
        [
          ("id", Num (float_of_int id));
          ("status", Str "ok");
          ("op", Str "shutdown");
        ]
  | Ok_stats (id, s) ->
      Obj
        [
          ("id", Num (float_of_int id));
          ("status", Str "ok");
          ("op", Str "stats");
          ("jobs_served", Num (float_of_int s.jobs_served));
          ("cache_hits", Num (float_of_int s.result_hits));
          ("cache_misses", Num (float_of_int s.result_misses));
          ("cache_entries", Num (float_of_int s.cache_entries));
          ("cache_bytes", Num (float_of_int s.cache_bytes));
          ("queue_depth", Num (float_of_int s.queue_depth));
          ("queue_capacity", Num (float_of_int s.queue_capacity));
          ("workers", Num (float_of_int s.workers));
          ("uptime_seconds", Num s.uptime_seconds);
        ]
  | Ok_run (id, r) ->
      Obj
        ([
           ("id", Num (float_of_int id));
           ("status", Str "ok");
           ("op", Str "run");
           ("job", Str r.job);
           ("algorithm", Str r.algorithm);
           ("luts", Num (float_of_int r.luts));
           ("clbs", Num (float_of_int r.clbs));
           ("depth", Num (float_of_int r.depth));
           ("steps", Num (float_of_int r.steps));
           ("shannon", Num (float_of_int r.shannon));
           ("alphas", Num (float_of_int r.alphas));
           ("degraded_to", Str r.degraded_to);
           ("findings", Raw r.findings);
           ("cached", Bool r.cached);
           ("seconds", Num r.seconds);
           ("blif", Str r.blif);
         ]
        @
        match r.verified with
        | None -> []
        | Some ok -> [ ("verified", Bool ok) ])
  | Err { id; code; message; retry_after } ->
      Obj
        ([
           ("id", Num (float_of_int id));
           ("status", Str "error");
           ("code", Str (error_code_name code));
           ("message", Str message);
         ]
        @
        match retry_after with
        | None -> []
        | Some t -> [ ("retry_after", Num t) ])

let response_of_json j =
  let id = Option.value ~default:0 (mem_int "id" j) in
  match mem_str "status" j with
  | Some "error" ->
      let code =
        Option.value ~default:Failed
          (Option.bind (mem_str "code" j) error_code_of_name)
      in
      let message = Option.value ~default:"" (mem_str "message" j) in
      Ok (Err { id; code; message; retry_after = mem_float "retry_after" j })
  | Some "ok" -> (
      match mem_str "op" j with
      | Some "ping" -> Ok (Pong id)
      | Some "shutdown" -> Ok (Bye id)
      | Some "stats" ->
          let get k = Option.value ~default:0 (mem_int k j) in
          Ok
            (Ok_stats
               ( id,
                 {
                   jobs_served = get "jobs_served";
                   result_hits = get "cache_hits";
                   result_misses = get "cache_misses";
                   cache_entries = get "cache_entries";
                   cache_bytes = get "cache_bytes";
                   queue_depth = get "queue_depth";
                   queue_capacity = get "queue_capacity";
                   workers = get "workers";
                   uptime_seconds =
                     Option.value ~default:0.0 (mem_float "uptime_seconds" j);
                 } ))
      | Some "run" ->
          let geti k = Option.value ~default:0 (mem_int k j) in
          let gets k = Option.value ~default:"" (mem_str k j) in
          let findings =
            match member "findings" j with
            | Some v -> to_string v
            | None -> "{}"
          in
          Ok
            (Ok_run
               ( id,
                 {
                   job = gets "job";
                   algorithm = gets "algorithm";
                   luts = geti "luts";
                   clbs = geti "clbs";
                   depth = geti "depth";
                   steps = geti "steps";
                   shannon = geti "shannon";
                   alphas = geti "alphas";
                   degraded_to = gets "degraded_to";
                   findings;
                   verified = mem_bool "verified" j;
                   blif = gets "blif";
                   cached =
                     Option.value ~default:false (mem_bool "cached" j);
                   seconds =
                     Option.value ~default:0.0 (mem_float "seconds" j);
                 } ))
      | Some op -> Error (Printf.sprintf "unknown ok op %S" op)
      | None -> Error "ok response without \"op\"")
  | Some s -> Error (Printf.sprintf "unknown status %S" s)
  | None -> Error "response without \"status\""
