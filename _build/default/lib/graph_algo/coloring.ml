let color_count colors =
  Array.fold_left (fun acc c -> max acc (c + 1)) 0 colors

let is_proper g colors =
  List.for_all (fun (i, j) -> colors.(i) <> colors.(j)) (Ugraph.edges g)

let smallest_free g colors v =
  let used = Array.make (Ugraph.n g + 1) false in
  List.iter
    (fun w -> if colors.(w) >= 0 then used.(colors.(w)) <- true)
    (Ugraph.neighbours g v);
  let rec find c = if used.(c) then find (c + 1) else c in
  find 0

let greedy g order =
  let colors = Array.make (Ugraph.n g) (-1) in
  List.iter (fun v -> colors.(v) <- smallest_free g colors v) order;
  colors

let dsatur g =
  let size = Ugraph.n g in
  let colors = Array.make size (-1) in
  let saturation v =
    Ugraph.neighbours g v
    |> List.filter_map (fun w -> if colors.(w) >= 0 then Some colors.(w) else None)
    |> List.sort_uniq Stdlib.compare |> List.length
  in
  for _ = 1 to size do
    (* Pick the uncolored vertex with max (saturation, degree). *)
    let best = ref (-1) and best_key = ref (-1, -1) in
    for v = 0 to size - 1 do
      if colors.(v) < 0 then begin
        let key = (saturation v, Ugraph.degree g v) in
        if key > !best_key then begin
          best := v;
          best_key := key
        end
      end
    done;
    colors.(!best) <- smallest_free g colors !best
  done;
  colors

exception Budget_exhausted

let exact ?(limit = 200_000) g =
  let size = Ugraph.n g in
  if size = 0 then Some [||]
  else begin
    let upper = dsatur g in
    let best = ref (Array.copy upper) in
    let best_k = ref (color_count upper) in
    let colors = Array.make size (-1) in
    let steps = ref 0 in
    (* Order vertices by decreasing degree for better pruning. *)
    let order =
      List.init size (fun v -> v)
      |> List.sort (fun a b -> compare (Ugraph.degree g b) (Ugraph.degree g a))
      |> Array.of_list
    in
    let rec go idx used_k =
      incr steps;
      if !steps > limit then raise Budget_exhausted;
      if used_k >= !best_k then ()
      else if idx = size then begin
        best := Array.copy colors;
        best_k := used_k
      end
      else begin
        let v = order.(idx) in
        let feasible c =
          List.for_all (fun w -> colors.(w) <> c) (Ugraph.neighbours g v)
        in
        (* Try existing colors, then (symmetry breaking) one fresh color. *)
        for c = 0 to min used_k (!best_k - 2) do
          if feasible c then begin
            colors.(v) <- c;
            go (idx + 1) (max used_k (c + 1));
            colors.(v) <- -1
          end
        done
      end
    in
    match go 0 0 with
    | () -> Some !best
    | exception Budget_exhausted -> None
  end

let best g = match exact g with Some c -> c | None -> dsatur g
