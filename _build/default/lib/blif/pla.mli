(** Espresso PLA reader.  Supports [.i], [.o], [.ilb], [.ob], [.p],
    [.type] (f, fd, fr, fdr), [.e]/[.end], comments.  This is the format
    of the two-level MCNC benchmarks the paper synthesizes, and the
    natural carrier for externally specified don't cares. *)

type t = {
  ninputs : int;
  noutputs : int;
  input_names : string list;
  output_names : string list;
  rows : (Cover.cube * char array) list;
      (** input plane, output plane characters (['0'], ['1'], ['-'], ['~']) *)
  kind : [ `F | `Fd | `Fr | `Fdr ];
}

exception Parse_error of int * string

val parse : string -> t
val parse_file : string -> t

val to_isfs : Bdd.manager -> var_of_column:(int -> int) -> t -> (string * Isf.t) list
(** Interpret the planes per [.type]: ['1'] contributes to the on-set,
    ['-'] to the dc-set when the type includes [d], ['0'] to the off-set
    when the type includes [r].  For type [f]/[fd], the off-set is the
    complement of the mentioned sets. *)

val print : t -> string
