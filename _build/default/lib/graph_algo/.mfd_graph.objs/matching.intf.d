lib/graph_algo/matching.mli: Ugraph
