(* The repository's single JSON codec: emission for every
   machine-readable report (serve protocol, batch, bench) and a strict
   parser whose rejection behaviour the consumers control — a hostile
   frame or a stale schema becomes an error value, never a crash. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list
  | Raw of string

let int n = Num (float_of_int n)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let number_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let rec add_json buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Num x -> Buffer.add_string buf (number_to_string x)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          add_json buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\":";
          add_json buf v)
        fields;
      Buffer.add_char buf '}'
  | Raw s -> Buffer.add_string buf s

let to_string j =
  let buf = Buffer.create 256 in
  add_json buf j;
  Buffer.contents buf

exception Bad of string

(* Recursive-descent parser.  Depth-bounded so a hostile input of
   100k open brackets cannot blow the caller's stack. *)
let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "byte %d: %s" !pos msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %C, found %C" c c')
    | None -> fail (Printf.sprintf "expected %C, found end of input" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !pos >= n then fail "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            pos := !pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with Failure _ -> fail "invalid \\u escape"
            in
            (* Encode the code point as UTF-8 (surrogate pairs of
               astral-plane characters come through as two escapes and
               are stored as their surrogate bytes — adequate for
               these reports, whose strings are ASCII in practice). *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf
                (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
        | c -> fail (Printf.sprintf "invalid escape \\%c" c));
        go ()
      end
      else if Char.code c < 0x20 then fail "control character in string"
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let number_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && number_char s.[!pos] do
      advance ()
    done;
    let span = String.sub s start (!pos - start) in
    match float_of_string_opt span with
    | Some x -> Num x
    | None -> fail (Printf.sprintf "invalid number %S" span)
  in
  let rec parse_value depth =
    if depth > 64 then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec go () =
            items := parse_value (depth + 1) :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                go ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          go ();
          Arr (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec go () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                go ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          go ();
          Obj (List.rev !fields)
        end
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

(* ---- accessors ---- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_int = function
  | Num x
    when Float.is_integer x
         (* Doubles represent integers exactly only up to 2^53;
            [int_of_float] past that silently returns a neighbouring
            integer (bench allocation counters are int64-scale, so the
            range is reachable).  Out-of-range values are rejected, not
            rounded. *)
         && Float.abs x <= 9007199254740992.0 (* 2^53 *) ->
      Some (int_of_float x)
  | _ -> None

let to_float = function Num x -> Some x | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function Arr items -> Some items | _ -> None

let mem_int k j = Option.bind (member k j) to_int
let mem_float k j = Option.bind (member k j) to_float
let mem_str k j = Option.bind (member k j) to_str
let mem_bool k j = Option.bind (member k j) to_bool
let mem_list k j = Option.bind (member k j) to_list
