(** A bounded multi-producer multi-consumer queue — the serve daemon's
    job queue.  The producer side is non-blocking by design:
    {!try_push} returning [false] {e is} the backpressure signal the
    event loop turns into a [queue-full] protocol error, so a flooded
    server degrades into explicit rejections instead of unbounded
    buffering. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument when [capacity < 1]. *)

val try_push : 'a t -> 'a -> bool
(** [false] when the queue is full or closed; never blocks. *)

val pop : 'a t -> 'a option
(** Block until an item is available; [None] once the queue is closed
    {e and} drained (workers exit on [None]). *)

val close : 'a t -> unit
(** Refuse further pushes and wake all poppers; queued items are still
    delivered. *)

val length : 'a t -> int
val capacity : 'a t -> int
