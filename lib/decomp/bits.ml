let ceil_log2 k =
  if k <= 0 then
    invalid_arg (Printf.sprintf "Bits.ceil_log2: nonpositive argument %d" k)
  else
    (* [cap * 2] overflows once [cap] passes [max_int / 2]; at that point
       the next power of two is not representable, so [2^(bits+1)] is the
       first power >= any representable [k]. *)
    let rec go bits cap =
      if cap >= k then bits
      else if cap > max_int / 2 then bits + 1
      else go (bits + 1) (cap * 2)
    in
    go 0 1
