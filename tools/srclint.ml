(* Source linter: the repo-local hygiene rules that used to live as
   grep one-liners in CI, as a dune-built executable so the rule table,
   the waiver mechanism and the scopes are reviewed like any other
   code.  Run via the [srclint] alias (attached to [runtest]):

     dune build @srclint

   Each rule bans a substring within a path scope.  A line containing
   the marker [srclint-ok] is waived (use sparingly, with a reason in
   a comment).  Matches inside OCaml comments count: a comment is the
   classic place a banned idiom gets recommended to the next reader,
   so spell the API without its module prefix when you only mean to
   talk about it. *)

let waiver_marker = "srclint-ok"

type rule = {
  pattern : string;
  scope : string -> bool;  (* slash-normalized relative path *)
  why : string;
}

let under dir path =
  let dir = dir ^ "/" in
  String.length path >= String.length dir
  && String.sub path 0 (String.length dir) = dir

let in_lib path = under "lib" path
let in_mono path = under "lib/mono" path

let rules =
  [
    {
      pattern = "Sys.time";
      scope = (fun p -> in_lib p && not (in_mono p));
      why =
        "CPU-time clock: runs N-times wall rate under worker domains and \
         stalls while blocked; deadlines must use Mono.now";
    };
    {
      pattern = "Unix.gettimeofday";
      scope = (fun p -> in_lib p && not (in_mono p));
      why =
        "wall clock subject to NTP steps; only lib/mono may read it \
         (calendar timestamps), deadlines must use Mono.now";
    };
    {
      pattern = "Unix.time";
      scope = (fun p -> in_lib p && not (in_mono p));
      why = "non-monotonic clock; use Mono.now through lib/mono";
    };
    {
      pattern = "Printf.printf";
      scope = in_lib;
      why =
        "libraries must not write to stdout (the CLI owns the terminal); \
         return data or take a formatter";
    };
    {
      pattern = "Format.printf";
      scope = in_lib;
      why = "libraries must not write to stdout; take a formatter argument";
    };
    {
      pattern = "print_string";
      scope = in_lib;
      why = "libraries must not write to stdout";
    };
    {
      pattern = "print_endline";
      scope = in_lib;
      why = "libraries must not write to stdout";
    };
    {
      pattern = "print_newline";
      scope = in_lib;
      why = "libraries must not write to stdout";
    };
    {
      pattern = "Obj.magic";
      scope = (fun _ -> true);
      why = "unsound cast; there is always another way";
    };
    {
      pattern = "failwith";
      scope = under "lib/decomp";
      why =
        "untyped failure in the decomposition engine; raise a typed \
         exception or return a result so callers can recover";
    };
  ]

let contains ~sub line =
  let n = String.length line and m = String.length sub in
  let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
  m > 0 && go 0

let ml_file path =
  Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"

(* _build and friends never appear when run via the dune rule (the
   source_tree deps are copied clean), but keep standalone runs from
   the repo root honest. *)
let skip_dir name =
  String.length name > 0 && (name.[0] = '_' || name.[0] = '.')

let rec walk acc path =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc entry ->
        if skip_dir entry then acc
        else walk acc (Filename.concat path entry))
      acc (Sys.readdir path)
  else if ml_file path then path :: acc
  else acc

let lint_file errors path =
  (* dune runs actions with OS-native separators only on Windows;
     normalize anyway so scopes are portable *)
  let norm = String.map (fun c -> if c = '\\' then '/' else c) path in
  let applicable = List.filter (fun r -> r.scope norm) rules in
  if applicable <> [] then begin
    let ic = open_in path in
    let lineno = ref 0 in
    (try
       while true do
         let line = input_line ic in
         incr lineno;
         if not (contains ~sub:waiver_marker line) then
           List.iter
             (fun r ->
               if contains ~sub:r.pattern line then begin
                 incr errors;
                 Printf.eprintf "%s:%d: banned %s (%s)\n" path !lineno
                   r.pattern r.why
               end)
             applicable
       done
     with End_of_file -> ());
    close_in ic
  end

let () =
  let roots =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as roots) -> roots
    | _ -> [ "lib"; "bin"; "bench" ]
  in
  let files =
    List.concat_map
      (fun root -> if Sys.file_exists root then walk [] root else [])
      roots
  in
  let errors = ref 0 in
  List.iter (lint_file errors) (List.sort compare files);
  if !errors > 0 then begin
    Printf.eprintf "srclint: %d violation(s)\n" !errors;
    exit 1
  end
