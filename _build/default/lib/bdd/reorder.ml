type order = int array

let shared_support m fs =
  List.concat_map (Bdd.support m) fs |> List.sort_uniq Stdlib.compare

let identity_of_support m fs = Array.of_list (shared_support m fs)

let check_order m fs order =
  let sup = shared_support m fs in
  let listed = Array.to_list order in
  let sorted = List.sort_uniq Stdlib.compare listed in
  if List.length sorted <> Array.length order then
    invalid_arg "Reorder: duplicate variables in order";
  if not (List.for_all (fun v -> List.mem v sorted) sup) then
    invalid_arg "Reorder: order does not cover the support"

(* Relabel: position k of [order] gets the k-th smallest original index,
   so the rebuilt functions "see" the requested order while living in
   the manager's fixed numeric order. *)
let relabeling order =
  let slots = Array.copy order in
  Array.sort Stdlib.compare slots;
  let map = Hashtbl.create 16 in
  Array.iteri (fun k v -> Hashtbl.replace map v slots.(k)) order;
  fun v -> match Hashtbl.find_opt map v with Some w -> w | None -> v

let apply m fs order =
  check_order m fs order;
  let pi = relabeling order in
  List.map (fun f -> Bdd.rename m f pi) fs

let size_under m fs order = Bdd.size_list (apply m fs order)

let move_to arr from_pos to_pos =
  let a = Array.copy arr in
  let v = a.(from_pos) in
  if from_pos < to_pos then Array.blit a (from_pos + 1) a from_pos (to_pos - from_pos)
  else Array.blit arr to_pos a (to_pos + 1) (from_pos - to_pos);
  a.(to_pos) <- v;
  a

let sift ?(max_rounds = 2) m fs order =
  check_order m fs order;
  let best = ref (Array.copy order) in
  let best_size = ref (size_under m fs !best) in
  let improved = ref true in
  let rounds = ref 0 in
  while !improved && !rounds < max_rounds do
    improved := false;
    incr rounds;
    let n = Array.length !best in
    for idx = 0 to n - 1 do
      (* variable currently at position idx: try all positions *)
      let current = !best in
      let var = current.(idx) in
      let pos_of arr =
        let p = ref (-1) in
        Array.iteri (fun k v -> if v = var then p := k) arr;
        !p
      in
      let here = pos_of current in
      for target = 0 to n - 1 do
        if target <> here then begin
          let cand = move_to !best (pos_of !best) target in
          let s = size_under m fs cand in
          if s < !best_size then begin
            best := cand;
            best_size := s;
            improved := true
          end
        end
      done
    done
  done;
  !best

(* Contract each group to a block: keep the first member's position,
   pull the others right behind it. *)
let blockify order groups =
  let order = Array.to_list order in
  let in_group v = List.find_opt (fun g -> List.mem v g) groups in
  let emitted = Hashtbl.create 16 in
  let out =
    List.concat_map
      (fun v ->
        if Hashtbl.mem emitted v then []
        else
          match in_group v with
          | None ->
              Hashtbl.add emitted v ();
              [ v ]
          | Some g ->
              let members = List.filter (fun w -> List.mem w order) g in
              List.iter (fun w -> Hashtbl.add emitted w ()) members;
              members)
      order
  in
  Array.of_list out

let sift_symmetric ?(max_rounds = 2) m fs ~groups order =
  check_order m fs order;
  let order = blockify order groups in
  (* Sifting over blocks: represent the order as a list of blocks, move
     one block through all block positions. *)
  let block_of v =
    match List.find_opt (fun g -> List.mem v g) groups with
    | Some g -> g
    | None -> [ v ]
  in
  let blocks =
    let seen = Hashtbl.create 16 in
    Array.to_list order
    |> List.filter_map (fun v ->
           if Hashtbl.mem seen v then None
           else begin
             let b = List.filter (fun w -> Array.exists (( = ) w) order) (block_of v) in
             List.iter (fun w -> Hashtbl.add seen w ()) b;
             Some b
           end)
  in
  let order_of_blocks bs = Array.of_list (List.concat bs) in
  let best = ref blocks in
  let best_size = ref (size_under m fs (order_of_blocks blocks)) in
  let improved = ref true in
  let rounds = ref 0 in
  while !improved && !rounds < max_rounds do
    improved := false;
    incr rounds;
    List.iter
      (fun block ->
        let without = List.filter (fun b -> b != block) !best in
        let n = List.length without in
        for target = 0 to n do
          let cand =
            let rec insert k = function
              | rest when k = 0 -> block :: rest
              | [] -> [ block ]
              | b :: rest -> b :: insert (k - 1) rest
            in
            insert target without
          in
          let s = size_under m fs (order_of_blocks cand) in
          if s < !best_size then begin
            best := cand;
            best_size := s;
            improved := true
          end
        done)
      blocks
  done;
  order_of_blocks !best
