(* Tests for the logic substrate: bit-vector truth tables, cube covers
   and incompletely specified functions. *)

let man = Bdd.manager ()
let check_bool = Alcotest.(check bool)

let gen_fun n =
  let open QCheck2.Gen in
  let+ bits = list_size (return (1 lsl n)) bool in
  let arr = Array.of_list bits in
  Bv.of_fun n (fun i -> arr.(i))

(* A random ISF over n variables: each minterm is on / off / dc. *)
let gen_isf n =
  let open QCheck2.Gen in
  let+ cells = list_size (return (1 lsl n)) (int_range 0 2) in
  let arr = Array.of_list cells in
  let on = Bv.of_fun n (fun i -> arr.(i) = 1) in
  let dc = Bv.of_fun n (fun i -> arr.(i) = 2) in
  (on, dc)

let isf_of_pair (on, dc) =
  Isf.make man ~on:(Bv.to_bdd man on) ~dc:(Bv.to_bdd man dc)

let prop name ?(count = 200) gen f = QCheck2.Test.make ~name ~count gen f

let bv_tests =
  [
    Alcotest.test_case "bv var indexing" `Quick (fun () ->
        let v1 = Bv.var 3 1 in
        check_bool "minterm 2 has x1=1" true (Bv.get v1 2);
        check_bool "minterm 5 has x1=0" false (Bv.get v1 5));
    Alcotest.test_case "bv set / get" `Quick (fun () ->
        let z = Bv.create 4 false in
        let z' = Bv.set z 11 true in
        check_bool "set" true (Bv.get z' 11);
        check_bool "original untouched" false (Bv.get z 11);
        Alcotest.(check int) "count" 1 (Bv.count_ones z'));
    Alcotest.test_case "bv eval" `Quick (fun () ->
        let f = Bv.and_ (Bv.var 3 0) (Bv.var 3 2) in
        check_bool "101" true (Bv.eval f (fun k -> k <> 1));
        check_bool "001" false (Bv.eval f (fun k -> k = 0)));
    Alcotest.test_case "bv zero-var functions" `Quick (fun () ->
        let t = Bv.create 0 true in
        check_bool "const true" true (Bv.get t 0);
        Alcotest.(check int) "one minterm" 1 (Bv.count_ones t));
  ]

let cover_tests =
  [
    Alcotest.test_case "cube string roundtrip" `Quick (fun () ->
        Alcotest.(check string) "roundtrip" "01-1"
          (Cover.string_of_cube (Cover.cube_of_string "01-1")));
    Alcotest.test_case "espresso '2' means dash" `Quick (fun () ->
        Alcotest.(check string) "2 -> -" "-"
          (Cover.string_of_cube (Cover.cube_of_string "2")));
    Alcotest.test_case "cube_to_bdd" `Quick (fun () ->
        let c = Cover.cube_of_string "1-0" in
        let f = Cover.cube_to_bdd man (fun k -> k) c in
        check_bool "eval 100" true (Bdd.eval f (fun v -> v = 0));
        check_bool "eval 110" true (Bdd.eval f (fun v -> v <= 1));
        check_bool "eval 101" false (Bdd.eval f (fun v -> v <> 1)));
    Alcotest.test_case "cover_to_bdd is a disjunction" `Quick (fun () ->
        let cubes = List.map Cover.cube_of_string [ "11"; "00" ] in
        let f = Cover.cover_to_bdd man (fun k -> k) cubes in
        check_bool "xnor" true (Bdd.equal f (Bdd.xnor man (Bdd.var man 0) (Bdd.var man 1))));
    Alcotest.test_case "bdd_to_cover covers exactly" `Quick (fun () ->
        let f = Bdd.xor man (Bdd.var man 0) (Bdd.var man 2) in
        let cubes = Cover.bdd_to_cover man [ 0; 1; 2 ] f in
        let g = Cover.cover_to_bdd man (fun k -> k) cubes in
        check_bool "roundtrip" true (Bdd.equal f g));
  ]

let cover_props =
  [
    prop "bdd_to_cover roundtrips random functions" (gen_fun 5) (fun bv ->
        let f = Bv.to_bdd man bv in
        let cubes = Cover.bdd_to_cover man [ 0; 1; 2; 3; 4 ] f in
        Bdd.equal f (Cover.cover_to_bdd man (fun k -> k) cubes));
    prop "cube_eval agrees with cube_to_bdd"
      QCheck2.Gen.(
        pair
          (string_size ~gen:(oneofl [ '0'; '1'; '-' ]) (return 4))
          (list_size (return 4) bool))
      (fun (s, assignment) ->
        let arr = Array.of_list assignment in
        let c = Cover.cube_of_string s in
        let f = Cover.cube_to_bdd man (fun k -> k) c in
        Cover.cube_eval c (fun k -> arr.(k)) = Bdd.eval f (fun v -> arr.(v)));
  ]

let isf_tests =
  [
    Alcotest.test_case "make rejects overlap" `Quick (fun () ->
        let x = Bdd.var man 0 in
        check_bool "raises" true
          (match Isf.make man ~on:x ~dc:x with
          | exception Invalid_argument _ -> true
          | _ -> false));
    Alcotest.test_case "of_csf has no dc" `Quick (fun () ->
        let f = Isf.of_csf man (Bdd.var man 0) in
        check_bool "csf" true (Isf.is_completely_specified f));
    Alcotest.test_case "off complements" `Quick (fun () ->
        let f = Isf.make man ~on:(Bdd.var man 0) ~dc:(Bdd.nvar man 0) in
        check_bool "off empty" true (Bdd.is_zero (Isf.off man f)));
    Alcotest.test_case "extends" `Quick (fun () ->
        let x0 = Bdd.var man 0 and x1 = Bdd.var man 1 in
        let f = Isf.make man ~on:(Bdd.and_ man x0 x1) ~dc:(Bdd.and_ man x0 (Bdd.not_ man x1)) in
        check_bool "x0 extends" true (Isf.extends man x0 f);
        check_bool "x0/\\x1 extends" true (Isf.extends man (Bdd.and_ man x0 x1) f);
        check_bool "x1 does not" false (Isf.extends man x1 f));
    Alcotest.test_case "assign_all_zero / one" `Quick (fun () ->
        let x0 = Bdd.var man 0 in
        let f = Isf.make man ~on:x0 ~dc:(Bdd.nvar man 0) in
        check_bool "zero" true (Bdd.equal (Isf.on (Isf.assign_all_zero man f)) x0);
        check_bool "one" true (Bdd.is_one (Isf.on (Isf.assign_all_one man f))));
  ]

let isf_props =
  let n = 5 in
  [
    prop "random_extension extends" (gen_isf n) (fun pair ->
        let f = isf_of_pair pair in
        let st = Random.State.make [| 42 |] in
        Isf.extends man (Isf.random_extension man f st) f);
    prop "join of f with itself is f" (gen_isf n) (fun pair ->
        let f = isf_of_pair pair in
        Isf.equal f (Isf.join man f f));
    prop "compatible is symmetric" QCheck2.Gen.(pair (gen_isf n) (gen_isf n))
      (fun (p1, p2) ->
        let a = isf_of_pair p1 and b = isf_of_pair p2 in
        Isf.compatible man a b = Isf.compatible man b a);
    prop "join constraints: any extension of join extends both"
      QCheck2.Gen.(pair (gen_isf n) (gen_isf n))
      (fun (p1, p2) ->
        let a = isf_of_pair p1 and b = isf_of_pair p2 in
        if Isf.compatible man a b then begin
          let j = Isf.join man a b in
          let st = Random.State.make [| 7 |] in
          let g = Isf.random_extension man j st in
          Isf.extends man g a && Isf.extends man g b
        end
        else true);
    prop "csf extends itself" (gen_fun n) (fun bv ->
        let g = Bv.to_bdd man bv in
        Isf.extends man g (Isf.of_csf man g));
    prop "restrict commutes with extension" QCheck2.Gen.(pair (gen_isf n) (int_range 0 (n - 1)))
      (fun (pair, v) ->
        let f = isf_of_pair pair in
        let st = Random.State.make [| 13 |] in
        let g = Isf.random_extension man f st in
        Isf.extends man (Bdd.restrict man g v true) (Isf.restrict man f v true));
    prop "support of isf contained in var range" (gen_isf n) (fun pair ->
        let f = isf_of_pair pair in
        List.for_all (fun v -> v >= 0 && v < n) (Isf.support man f));
  ]

let suite =
  bv_tests @ cover_tests @ isf_tests
  @ List.map (fun p -> QCheck_alcotest.to_alcotest ~long:false p) (cover_props @ isf_props)

(* Two-level minimization. *)
let minimize_tests =
  [
    Alcotest.test_case "minimize an and-or cover" `Quick (fun () ->
        (* f = x0 x1 + x0 x1' = x0: the two cubes must fuse *)
        let on = Bdd.var man 0 in
        let cubes = List.map Cover.cube_of_string [ "11-"; "10-" ] in
        let result = Minimize.minimize man ~ninputs:3 ~on cubes in
        Alcotest.(check int) "one cube" 1 (List.length result);
        Alcotest.(check string) "x0" "1--"
          (Cover.string_of_cube (List.hd result)));
    Alcotest.test_case "dc lets cubes expand" `Quick (fun () ->
        (* on = 11, dc = 10: cube 11 expands to 1- *)
        let on = Bdd.and_ man (Bdd.var man 0) (Bdd.var man 1) in
        let dc = Bdd.and_ man (Bdd.var man 0) (Bdd.nvar man 1) in
        let result =
          Minimize.minimize man ~ninputs:2 ~on ~dc
            [ Cover.cube_of_string "11" ]
        in
        Alcotest.(check string) "expanded" "1-"
          (Cover.string_of_cube (List.hd result)));
    Alcotest.test_case "redundant cube dropped" `Quick (fun () ->
        let on =
          Bdd.or_ man (Bdd.var man 0) (Bdd.var man 1)
        in
        let cubes = List.map Cover.cube_of_string [ "1-"; "-1"; "11" ] in
        let result = Minimize.minimize man ~ninputs:2 ~on cubes in
        Alcotest.(check int) "two cubes" 2 (List.length result));
    Alcotest.test_case "rejects a non-cover" `Quick (fun () ->
        let on = Bdd.var man 0 in
        Alcotest.(check bool) "raises" true
          (match Minimize.minimize man ~ninputs:1 ~on [] with
          | exception Invalid_argument _ -> true
          | _ -> false));
  ]

let minimize_props =
  [
    prop "minimized cover is equivalent and no larger" ~count:150
      QCheck2.Gen.(pair (gen_fun 5) (gen_fun 5))
      (fun (on_bv, dc_bv) ->
        let on0 = Bv.to_bdd man on_bv in
        let dcsel = Bv.to_bdd man dc_bv in
        let on = Bdd.diff man on0 dcsel in
        let dc = Bdd.and_ man dcsel (Bdd.not_ man on) in
        let initial = Cover.bdd_to_cover man [ 0; 1; 2; 3; 4 ] on in
        if initial = [] then true
        else begin
          let result = Minimize.minimize man ~ninputs:5 ~on ~dc initial in
          Minimize.is_cover man ~ninputs:5 ~on ~dc result
          && List.length result <= List.length initial
        end);
    prop "every minimized cube is prime (no literal can be raised)"
      ~count:100 (gen_fun 4)
      (fun bv ->
        let on = Bv.to_bdd man bv in
        let initial = Cover.bdd_to_cover man [ 0; 1; 2; 3 ] on in
        if initial = [] then true
        else begin
          let result = Minimize.minimize man ~ninputs:4 ~on initial in
          List.for_all
            (fun cube ->
              (* raising any fixed literal must leave the on-set *)
              List.for_all
                (fun k ->
                  match cube.(k) with
                  | Cover.Ldash -> true
                  | Cover.L0 | Cover.L1 ->
                      let widened = Array.copy cube in
                      widened.(k) <- Cover.Ldash;
                      not
                        (Bdd.is_zero
                           (Bdd.diff man
                              (Cover.cube_to_bdd man (fun c -> c) widened)
                              on)))
                (List.init 4 Fun.id))
            result
        end);
  ]

let suite =
  suite @ minimize_tests
  @ List.map (fun p -> QCheck_alcotest.to_alcotest ~long:false p) minimize_props
