(** The benchmark suite of the paper's Tables 1 and 2: the 20 MCNC /
    ISCAS circuits, with exact functional definitions where public and
    documented stand-ins otherwise (DESIGN.md section 4). *)

type entry = {
  name : string;
  ninputs : int;
  noutputs : int;
  exact : bool;
      (** true = the real published function; false = a seeded stand-in
          with the published input/output counts *)
  note : string;
  build : Bdd.manager -> Driver.spec;
}

val catalogue : entry list
(** In the row order of Table 1. *)

val find : string -> entry
(** @raise Not_found for unknown names. *)

val names : unit -> string list
