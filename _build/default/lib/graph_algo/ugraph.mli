(** Small undirected graphs on vertices [0 .. n-1], dense representation.
    The decomposition engine uses graphs on bound-set vertices (at most
    [2^5 = 32] of them per step) and on LUTs (hundreds), so simplicity
    beats asymptotics here. *)

type t

val create : int -> t
val n : t -> int
val add_edge : t -> int -> int -> unit
(** Self loops are ignored. *)

val has_edge : t -> int -> int -> bool
val neighbours : t -> int -> int list
val degree : t -> int -> int
val edges : t -> (int * int) list
(** Each edge once, with [fst < snd]. *)

val complement : t -> t
val of_edges : int -> (int * int) list -> t
val random : int -> float -> Random.State.t -> t
(** Erdos-Renyi with the given edge probability. *)
