let partial_product_index ~n name =
  (* "p<i>_<j>" -> i*n + j; Scanf's %d would swallow the '_' as a digit
     separator, so parse by hand *)
  match String.split_on_char '_' (String.sub name 1 (String.length name - 1)) with
  | [ i; j ] -> (int_of_string i * n) + int_of_string j
  | _ -> invalid_arg name

let mux2 net sel hi lo =
  (* 2-input-gate realization of a mux: (sel /\ hi) \/ (~sel /\ lo) *)
  let a = Network.and_gate net sel hi in
  let b = Network.and_gate net (Network.not_gate net sel) lo in
  Network.or_gate net a b

(* Conditional carries are monotone in the carry-in (carry with cin=1
   implies at least the carry with cin=0), so their mux needs only two
   gates: lo \/ (sel /\ hi). *)
let carry_mux2 net sel hi lo =
  Network.or_gate net lo (Network.and_gate net sel hi)

let conditional_sum_adder ~bits =
  let net = Network.create () in
  let x = Array.init bits (fun k -> Network.add_input net (Printf.sprintf "x%d" k)) in
  let y = Array.init bits (fun k -> Network.add_input net (Printf.sprintf "y%d" k)) in
  (* For the range [lo, lo+len): sums and carry-out assuming carry-in 0
     and assuming carry-in 1. *)
  let rec build lo len =
    if len = 1 then begin
      let a = x.(lo) and b = y.(lo) in
      let s0 = Network.xor_gate net a b in
      let c0 = Network.and_gate net a b in
      let s1 = Network.xnor_gate net a b in
      let c1 = Network.or_gate net a b in
      ([| s0 |], c0, [| s1 |], c1)
    end
    else begin
      let half = len / 2 in
      let ls0, lc0, ls1, lc1 = build lo half in
      let hs0, hc0, hs1, hc1 = build (lo + half) (len - half) in
      let select carry_in_low =
        let carry = if carry_in_low then lc1 else lc0 in
        let sums =
          Array.map2 (fun h1 h0 -> mux2 net carry h1 h0) hs1 hs0
        in
        let cout = carry_mux2 net carry hc1 hc0 in
        let low = if carry_in_low then ls1 else ls0 in
        (Array.append low sums, cout)
      in
      let s0, c0 = select false in
      let s1, c1 = select true in
      (s0, c0, s1, c1)
    end
  in
  let s0, _, _, _ = build 0 bits in
  Array.iteri (fun k s -> Network.set_output net (Printf.sprintf "f%d" k) s) s0;
  net

let wallace_partial_multiplier ~n =
  let net = Network.create () in
  let w = 2 * n in
  let columns = Array.make w [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let p = Network.add_input net (Printf.sprintf "p%d_%d" i j) in
      columns.(i + j) <- p :: columns.(i + j)
    done
  done;
  (* Wallace reduction: compress every column to at most 2 bits with
     full/half adders, then one carry-propagate pass. *)
  let full_adder a b c =
    let ab = Network.xor_gate net a b in
    let s = Network.xor_gate net ab c in
    let carry = Network.or_gate net (Network.and_gate net a b) (Network.and_gate net ab c) in
    (s, carry)
  in
  let half_adder a b =
    (Network.xor_gate net a b, Network.and_gate net a b)
  in
  let rec compress () =
    if Array.exists (fun col -> List.length col > 2) columns then begin
      for k = 0 to w - 1 do
        let rec reduce = function
          | a :: b :: c :: rest ->
              let s, carry = full_adder a b c in
              if k + 1 < w then columns.(k + 1) <- carry :: columns.(k + 1);
              s :: reduce rest
          | bits -> bits
        in
        columns.(k) <- reduce columns.(k)
      done;
      compress ()
    end
  in
  compress ();
  (* Final carry-propagate: ripple through the (<= 2)-bit columns. *)
  let carry = ref None in
  for k = 0 to w - 1 do
    let bits = columns.(k) in
    let s =
      match (bits, !carry) with
      | [], None -> Network.const net false
      | [], Some c ->
          carry := None;
          c
      | [ a ], None -> a
      | [ a ], Some c ->
          let s, carry' = half_adder a c in
          carry := Some carry';
          s
      | [ a; b ], None ->
          let s, carry' = half_adder a b in
          carry := Some carry';
          s
      | [ a; b ], Some c ->
          let s, carry' = full_adder a b c in
          carry := Some carry';
          s
      | _ :: _ :: _ :: _, _ -> assert false
    in
    Network.set_output net (Printf.sprintf "r%d" k) s
  done;
  net

let wallace_gate_formula n = (10 * n * n) - (20 * n)
