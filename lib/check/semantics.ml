(* The SEM passes: semantic lint over the Careflow SDC/ODC dataflow.
   All iteration is over lists/arrays in topological order, never over
   hashtable order, so reports are deterministic run to run. *)

let rows_blurb rows total =
  let shown = List.filteri (fun i _ -> i < 8) rows in
  Printf.sprintf "%s%s of %d"
    (String.concat ","
       (List.map (fun c -> string_of_int c) shown))
    (if List.length rows > List.length shown then ",..." else "")
    total

(* Stable human name for a node: input name, first output it drives, or
   a synthetic n<id> (same convention as Net_check). *)
let namer net =
  let output_of = Hashtbl.create 16 in
  List.iter
    (fun (name, s) ->
      let i = Network.signal_id s in
      if not (Hashtbl.mem output_of i) then Hashtbl.add output_of i name)
    (Network.outputs net);
  fun s ->
    match Network.view net s with
    | `Input name -> name
    | `Const _ | `Lut _ -> (
        let i = Network.signal_id s in
        match Hashtbl.find_opt output_of i with
        | Some name -> name
        | None -> Printf.sprintf "n%d" i)

let of_flow m net flow =
  let name_of = namer net in
  let findings = ref [] in
  let add ?loc code msg = findings := Diagnostic.make ?loc code msg :: !findings in
  let no_care = Bdd.is_zero flow.Careflow.care_any in
  (* A table bit is free when no cared-for input vector both reaches its
     row and observes the node: flipping it can never change a cared-for
     output. *)
  let free info c =
    Bdd.is_zero
      (Bdd.and_ m info.Careflow.code_sets.(c) info.Careflow.observable)
  in
  List.iter
    (fun info ->
      let loc = name_of info.Careflow.signal in
      let nrows = Array.length info.Careflow.code_sets in
      (* SEM001: unreachable table rows (satisfiability don't cares).
         With an empty care space every row is vacuously unreachable;
         reporting that would just restate the degenerate care set. *)
      let sdc_rows =
        List.filter
          (fun c -> Bdd.is_zero info.Careflow.code_sets.(c))
          (List.init nrows Fun.id)
      in
      if sdc_rows <> [] && nrows > 1 && not no_care then
        add ~loc "SEM001"
          (Printf.sprintf
             "table row%s %s unreachable from the primary inputs"
             (if List.length sdc_rows > 1 then "s" else "")
             (rows_blurb sdc_rows nrows));
      (* SEM002: functionally dead (ODC covers the whole care space) *)
      if Bdd.is_zero info.Careflow.observable && not no_care then
        add ~loc "SEM002"
          "complementing this node never changes any cared-for output";
      (* SEM003: constant on the care set (NET008 only sees the table) *)
      if not no_care then begin
        let g = info.Careflow.global in
        if Bdd.equal_on m ~care:flow.Careflow.care_any g (Bdd.zero m) then
          add ~loc "SEM003" "computes constant 0 on the care set"
        else if Bdd.equal_on m ~care:flow.Careflow.care_any g (Bdd.one m) then
          add ~loc "SEM003" "computes constant 1 on the care set"
      end)
    flow.Careflow.nodes;
  (* SEM004: functional duplicates up to fanin permutation/complement.
     Constant-on-care nodes are excluded (SEM003 already owns them). *)
  if not no_care then begin
    let care = flow.Careflow.care_any in
    let interesting =
      List.filter
        (fun info ->
          let g = info.Careflow.global in
          (not (Bdd.equal_on m ~care g (Bdd.zero m)))
          && not (Bdd.equal_on m ~care g (Bdd.one m)))
        flow.Careflow.nodes
    in
    let rec scan = function
      | [] -> ()
      | info :: rest ->
          (match
             List.find_opt
               (fun prev ->
                 Bdd.equal_on m ~care prev.Careflow.global info.Careflow.global
                 || Bdd.equal_on m ~care
                      (Bdd.not_ m prev.Careflow.global)
                      info.Careflow.global)
               (List.filter
                  (fun prev ->
                    Network.signal_id prev.Careflow.signal
                    < Network.signal_id info.Careflow.signal)
                  interesting)
           with
          | Some prev ->
              let complemented =
                not
                  (Bdd.equal_on m ~care prev.Careflow.global
                     info.Careflow.global)
              in
              add ~loc:(name_of info.Careflow.signal) "SEM004"
                (Printf.sprintf
                   "computes the same function as LUT %s on the care set%s"
                   (name_of prev.Careflow.signal)
                   (if complemented then " (complemented)" else ""))
          | None -> ());
          scan rest
    in
    scan interesting
  end;
  (* SEM005: identical primary outputs (on the union of their cares) *)
  let rec out_pairs = function
    | [] -> ()
    | (name, g) :: rest ->
        List.iter
          (fun (name', g') ->
            let care =
              Bdd.or_ m
                (List.assoc name flow.Careflow.cares)
                (List.assoc name' flow.Careflow.cares)
            in
            if (not (Bdd.is_zero care)) && Bdd.equal_on m ~care g g' then
              add ~loc:name' "SEM005"
                (Printf.sprintf
                   "provably identical to output %s on the care set" name))
          rest;
        out_pairs rest
  in
  out_pairs flow.Careflow.outputs;
  (* SEM006: mergeable twins — same fanin set, tables differing only in
     free bits that were fixed inconsistently.  Grouping uses the same
     canonical form as the structural NET007 pass.  Every bit is
     trivially free on an empty care space, so the pass needs one. *)
  let groups = Hashtbl.create 16 in
  let group_keys = ref [] in
  if not no_care then
  List.iter
    (fun info ->
      match Network.view net info.Careflow.signal with
      | `Input _ | `Const _ -> ()
      | `Lut (fanins, tt) ->
          let sorted, ctt, remap = Net_check.canonical_lut fanins tt in
          let key =
            String.concat ","
              (Array.to_list
                 (Array.map
                    (fun f -> string_of_int (Network.signal_id f))
                    sorted))
          in
          if not (Hashtbl.mem groups key) then group_keys := key :: !group_keys;
          Hashtbl.add groups key (info, ctt, remap))
    flow.Careflow.nodes;
  List.iter
    (fun key ->
      match List.rev (Hashtbl.find_all groups key) with
      | [] | [ _ ] -> ()
      | members ->
          let rec pairs = function
            | [] -> ()
            | (a, att, ra) :: rest ->
                List.iter
                  (fun (b, btt, rb) ->
                    let nrows = 1 lsl Bv.nvars att in
                    let differing =
                      List.filter
                        (fun c -> Bv.get att c <> Bv.get btt c)
                        (List.init nrows Fun.id)
                    in
                    if
                      differing <> []
                      && List.for_all
                           (fun c -> free a (ra c) || free b (rb c))
                           differing
                    then
                      add ~loc:(name_of b.Careflow.signal) "SEM006"
                        (Printf.sprintf
                           "row%s %s differ from LUT %s only in free don't-care \
                            bits; assigning them alike would merge the LUTs"
                           (if List.length differing > 1 then "s" else "")
                           (rows_blurb differing nrows)
                           (name_of a.Careflow.signal)))
                  rest;
                pairs rest
          in
          pairs members)
    (List.rev !group_keys);
  (* SEM008: the analysis was cut short *)
  (match flow.Careflow.truncated with
  | Some reason ->
      add ~loc:"semantics" "SEM008"
        (Printf.sprintf
           "analysis truncated (%s): %d of %d nodes analyzed; findings are \
            partial"
           reason flow.Careflow.analyzed flow.Careflow.total)
  | None -> ());
  List.rev !findings

let analyze ?care_of_output ?check m ~var_of_input net =
  of_flow m net (Careflow.analyze ?care_of_output ?check m ~var_of_input net)

let audit ?care_of_output m ~inputs ~golden ~candidate =
  let var_of_input name =
    match List.assoc_opt name inputs with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Semantics.audit: unmapped input %s" name)
  in
  let care_of name =
    match care_of_output with Some f -> f name | None -> Bdd.one m
  in
  let g_out = Network.output_bdds golden m ~var_of_input in
  let c_out = Network.output_bdds candidate m ~var_of_input in
  let findings = ref [] in
  let add ?loc code msg = findings := Diagnostic.make ?loc code msg :: !findings in
  let counterexample diff =
    let assignment = Bdd.any_sat diff in
    String.concat " "
      (List.map
         (fun (name, v) ->
           match List.assoc_opt v assignment with
           | Some true -> name ^ "=1"
           | Some false -> name ^ "=0"
           | None -> name ^ "=-")
         inputs)
  in
  List.iter
    (fun (name, gf) ->
      match List.assoc_opt name c_out with
      | None -> add ~loc:name "SEM007" "output missing from the candidate network"
      | Some cf ->
          let diff = Bdd.and_ m (care_of name) (Bdd.xor m gf cf) in
          if not (Bdd.is_zero diff) then
            add ~loc:name "SEM007"
              (Printf.sprintf
                 "networks disagree inside the care set, e.g. at %s"
                 (counterexample diff)))
    g_out;
  List.iter
    (fun (name, _) ->
      if not (List.mem_assoc name g_out) then
        add ~loc:name "SEM007" "output missing from the golden network")
    c_out;
  List.rev !findings
