type t = {
  mutable score_calls : int;
  mutable score_hits : int;
  mutable cof_lookups : int;
  mutable cof_hits : int;
  mutable cof_extends : int;
  mutable cof_fresh : int;
  mutable restricts : int;
  mutable retains : int;
  mutable evicted : int;
  mutable budget_checks : int;
  mutable result_hits : int;
  mutable result_misses : int;
  mutable sem_nodes : int;
  mutable sem_truncations : int;
  mutable sat_calls : int;
  mutable sat_conflicts : int;
  mutable windows_built : int;
  mutable df_iterations : int;
  mutable df_facts : int;
  mutable screened_out : int;
  mutable degradations : (string * string * string) list;
  mutable findings : (string * string * string) list;
  phases : (string, float) Hashtbl.t;
}

let create () =
  {
    score_calls = 0;
    score_hits = 0;
    cof_lookups = 0;
    cof_hits = 0;
    cof_extends = 0;
    cof_fresh = 0;
    restricts = 0;
    retains = 0;
    evicted = 0;
    budget_checks = 0;
    result_hits = 0;
    result_misses = 0;
    sem_nodes = 0;
    sem_truncations = 0;
    sat_calls = 0;
    sat_conflicts = 0;
    windows_built = 0;
    df_iterations = 0;
    df_facts = 0;
    screened_out = 0;
    degradations = [];
    findings = [];
    phases = Hashtbl.create 8;
  }

let reset t =
  t.score_calls <- 0;
  t.score_hits <- 0;
  t.cof_lookups <- 0;
  t.cof_hits <- 0;
  t.cof_extends <- 0;
  t.cof_fresh <- 0;
  t.restricts <- 0;
  t.retains <- 0;
  t.evicted <- 0;
  t.budget_checks <- 0;
  t.result_hits <- 0;
  t.result_misses <- 0;
  t.sem_nodes <- 0;
  t.sem_truncations <- 0;
  t.sat_calls <- 0;
  t.sat_conflicts <- 0;
  t.windows_built <- 0;
  t.df_iterations <- 0;
  t.df_facts <- 0;
  t.screened_out <- 0;
  t.degradations <- [];
  t.findings <- [];
  Hashtbl.reset t.phases

let merge ~into s =
  into.score_calls <- into.score_calls + s.score_calls;
  into.score_hits <- into.score_hits + s.score_hits;
  into.cof_lookups <- into.cof_lookups + s.cof_lookups;
  into.cof_hits <- into.cof_hits + s.cof_hits;
  into.cof_extends <- into.cof_extends + s.cof_extends;
  into.cof_fresh <- into.cof_fresh + s.cof_fresh;
  into.restricts <- into.restricts + s.restricts;
  into.retains <- into.retains + s.retains;
  into.evicted <- into.evicted + s.evicted;
  into.budget_checks <- into.budget_checks + s.budget_checks;
  into.result_hits <- into.result_hits + s.result_hits;
  into.result_misses <- into.result_misses + s.result_misses;
  into.sem_nodes <- into.sem_nodes + s.sem_nodes;
  into.sem_truncations <- into.sem_truncations + s.sem_truncations;
  into.sat_calls <- into.sat_calls + s.sat_calls;
  into.sat_conflicts <- into.sat_conflicts + s.sat_conflicts;
  into.windows_built <- into.windows_built + s.windows_built;
  into.df_iterations <- into.df_iterations + s.df_iterations;
  into.df_facts <- into.df_facts + s.df_facts;
  into.screened_out <- into.screened_out + s.screened_out;
  (* both lists are newest-first; keep the merged one newest-first too *)
  into.degradations <- s.degradations @ into.degradations;
  into.findings <- s.findings @ into.findings;
  Hashtbl.iter
    (fun name dt ->
      Hashtbl.replace into.phases name
        (dt +. Option.value ~default:0.0 (Hashtbl.find_opt into.phases name)))
    s.phases

let add_degradation t ~stage ~reason ~where =
  t.degradations <- (stage, reason, where) :: t.degradations

let degradations t = List.rev t.degradations

let add_finding t ~severity ~code ~message =
  t.findings <- (severity, code, message) :: t.findings

let findings t = List.rev t.findings

let add_phase t name dt =
  Hashtbl.replace t.phases name
    (dt +. Option.value ~default:0.0 (Hashtbl.find_opt t.phases name))

let phase_time t name = Option.value ~default:0.0 (Hashtbl.find_opt t.phases name)

let score_misses t = t.score_calls - t.score_hits

let score_hit_rate t =
  if t.score_calls = 0 then 0.0
  else float_of_int t.score_hits /. float_of_int t.score_calls

let cof_hit_rate t =
  if t.cof_lookups = 0 then 0.0
  else
    float_of_int (t.cof_hits + t.cof_extends) /. float_of_int t.cof_lookups

let result_hit_rate t =
  let total = t.result_hits + t.result_misses in
  if total = 0 then 0.0 else float_of_int t.result_hits /. float_of_int total

type clock = { stats : t; mutable last : float }

(* Monotonic, not gettimeofday: a phase duration must survive an NTP
   step mid-run. *)
let clock stats = { stats; last = Mono.now () }

let mark ck name =
  let now = Mono.now () in
  let dt = now -. ck.last in
  ck.last <- now;
  add_phase ck.stats name dt;
  dt

(* ---- JSON projection (the per-run object of the bench schema) ----

   Emission and parsing live together so the schema cannot drift
   silently: [of_json (to_json t)] is the round-trip property the
   bench-report tests pin down.  Unknown fields are ignored and
   missing counters default to zero, so a newer reader accepts an
   older run object. *)

let counter_fields =
  (* name, getter, setter — one list drives to_json, of_json and the
     bench diff's notion of "every counter". *)
  [
    ("score_calls", (fun t -> t.score_calls), fun t v -> t.score_calls <- v);
    ("score_hits", (fun t -> t.score_hits), fun t v -> t.score_hits <- v);
    ("cof_lookups", (fun t -> t.cof_lookups), fun t v -> t.cof_lookups <- v);
    ("cof_hits", (fun t -> t.cof_hits), fun t v -> t.cof_hits <- v);
    ("cof_extends", (fun t -> t.cof_extends), fun t v -> t.cof_extends <- v);
    ("cof_fresh", (fun t -> t.cof_fresh), fun t v -> t.cof_fresh <- v);
    ("restricts", (fun t -> t.restricts), fun t v -> t.restricts <- v);
    ("retains", (fun t -> t.retains), fun t v -> t.retains <- v);
    ("evicted", (fun t -> t.evicted), fun t v -> t.evicted <- v);
    ("budget_checks", (fun t -> t.budget_checks), fun t v -> t.budget_checks <- v);
    ("result_hits", (fun t -> t.result_hits), fun t v -> t.result_hits <- v);
    ("result_misses", (fun t -> t.result_misses), fun t v -> t.result_misses <- v);
    ("sem_nodes", (fun t -> t.sem_nodes), fun t v -> t.sem_nodes <- v);
    ("sem_truncations", (fun t -> t.sem_truncations), fun t v -> t.sem_truncations <- v);
    ("sat_calls", (fun t -> t.sat_calls), fun t v -> t.sat_calls <- v);
    ("sat_conflicts", (fun t -> t.sat_conflicts), fun t v -> t.sat_conflicts <- v);
    ("windows_built", (fun t -> t.windows_built), fun t v -> t.windows_built <- v);
    ("df_iterations", (fun t -> t.df_iterations), fun t v -> t.df_iterations <- v);
    ("df_facts", (fun t -> t.df_facts), fun t v -> t.df_facts <- v);
    ("screened_out", (fun t -> t.screened_out), fun t v -> t.screened_out <- v);
  ]

let counter_names = List.map (fun (name, _, _) -> name) counter_fields

let counter t name =
  match List.find_opt (fun (n, _, _) -> n = name) counter_fields with
  | Some (_, get, _) -> get t
  | None -> invalid_arg (Printf.sprintf "Stats.counter: unknown counter %S" name)

let to_json t =
  let event (a, b, c) ka kb kc =
    Json.Obj [ (ka, Json.Str a); (kb, Json.Str b); (kc, Json.Str c) ]
  in
  let phases =
    Hashtbl.fold (fun name dt acc -> (name, dt) :: acc) t.phases []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map (fun (name, dt) -> (name, Json.Num dt))
  in
  Json.Obj
    (List.map (fun (name, get, _) -> (name, Json.int (get t))) counter_fields
    @ [
        ( "degradations",
          Json.Arr
            (List.map
               (fun d -> event d "stage" "reason" "where")
               (degradations t)) );
        ( "findings",
          Json.Arr
            (List.map
               (fun f -> event f "severity" "code" "message")
               (findings t)) );
        ("phases", Json.Obj phases);
      ])

let of_json j =
  match j with
  | Json.Obj _ ->
      let t = create () in
      List.iter
        (fun (name, _, set) ->
          set t (Option.value ~default:0 (Json.mem_int name j)))
        counter_fields;
      let events key ka kb kc add =
        List.iter
          (fun e ->
            match (Json.mem_str ka e, Json.mem_str kb e, Json.mem_str kc e) with
            | Some a, Some b, Some c -> add a b c
            | _ -> ())
          (Option.value ~default:[] (Json.mem_list key j))
      in
      (* add_* prepend, so feed events in order to keep newest-first. *)
      events "degradations" "stage" "reason" "where" (fun stage reason where ->
          add_degradation t ~stage ~reason ~where);
      events "findings" "severity" "code" "message" (fun severity code message ->
          add_finding t ~severity ~code ~message);
      (match Json.member "phases" j with
      | Some (Json.Obj fields) ->
          List.iter
            (fun (name, v) ->
              match Json.to_float v with
              | Some dt -> add_phase t name dt
              | None -> ())
            fields
      | _ -> ());
      Ok t
  | _ -> Error "stats must be a JSON object"

let pp fmt t =
  Format.fprintf fmt
    "@[<v>score calls %d, memo hits %d (%.1f%%)@,\
     cofactor vectors: %d lookups, %d cached, %d extended, %d fresh (reuse %.1f%%)@,\
     isf restricts %d; cache retains %d (evicted %d entries)@]"
    t.score_calls t.score_hits
    (100.0 *. score_hit_rate t)
    t.cof_lookups t.cof_hits t.cof_extends t.cof_fresh
    (100.0 *. cof_hit_rate t)
    t.restricts t.retains t.evicted;
  if t.result_hits > 0 || t.result_misses > 0 then
    Format.fprintf fmt "@,result cache: %d hit(s), %d miss(es) (%.1f%%)"
      t.result_hits t.result_misses
      (100.0 *. result_hit_rate t);
  if t.sem_nodes > 0 || t.sem_truncations > 0 then
    Format.fprintf fmt "@,semantic dataflow: %d node(s) analyzed, %d truncation(s)"
      t.sem_nodes t.sem_truncations;
  if t.sat_calls > 0 || t.windows_built > 0 then
    Format.fprintf fmt
      "@,sat engine: %d window(s), %d call(s), %d conflict(s)"
      t.windows_built t.sat_calls t.sat_conflicts;
  if t.df_facts > 0 || t.screened_out > 0 then
    Format.fprintf fmt
      "@,dataflow screen: %d fact(s) in %d iteration(s), %d work unit(s) screened"
      t.df_facts t.df_iterations t.screened_out;
  (match degradations t with
  | [] -> ()
  | ds ->
      Format.fprintf fmt "@,@[<v>budget degradations (%d checks):" t.budget_checks;
      List.iter
        (fun (stage, reason, where) ->
          Format.fprintf fmt "@,  -> %-14s (%s exceeded in %s)" stage reason where)
        ds;
      Format.fprintf fmt "@]");
  (match findings t with
  | [] -> ()
  | fs ->
      let sev name = List.length (List.filter (fun (s, _, _) -> s = name) fs) in
      Format.fprintf fmt
        "@,@[<v>check findings: %d error(s), %d warning(s), %d info"
        (sev "error") (sev "warning") (sev "info");
      List.iter
        (fun (severity, code, message) ->
          Format.fprintf fmt "@,  %s[%s] %s" severity code message)
        fs;
      Format.fprintf fmt "@]");
  let phases =
    Hashtbl.fold (fun name dt acc -> (name, dt) :: acc) t.phases []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  if phases <> [] then begin
    Format.fprintf fmt "@,@[<v>phases:";
    List.iter
      (fun (name, dt) -> Format.fprintf fmt "@,  %-16s %8.3fs" name dt)
      phases;
    Format.fprintf fmt "@]"
  end
