(** Reduced ordered binary decision diagrams with hash consing.

    All functions of one {!manager} share a single unique table, so two
    structurally equal BDDs are physically equal and [equal] is O(1).  The
    variable order is the natural order of variable indices (variable 0 is
    the topmost level).  Nodes are never garbage collected; a manager grows
    monotonically, which is adequate for the synthesis workloads of this
    library.

    Mixing nodes of different managers in one operation is a programming
    error; it is detected (cheaply, via node ids) only by assertions.

    {b Domain safety.}  All mutable state of this library — the unique
    table, the operation caches, the variable-swap bookkeeping, the
    growth hook — lives inside a {!manager} value; the library keeps no
    top-level mutable state whatsoever.  A single manager is {e not}
    thread-safe, but distinct managers are fully independent: separate
    OCaml domains may each own a manager and operate concurrently
    without any synchronization ([Decomp.Batch] relies on exactly
    this).  Node ids are allocated per manager from a fresh counter, so
    a run on a fresh manager is reproducible regardless of what other
    domains do. *)

type manager

type t
(** A BDD node, tied to the manager that created it. *)

val manager : ?cache_size:int -> unit -> manager
(** Create a fresh manager. [cache_size] is the initial size of the
    operation caches (default 4096). *)

val clear_caches : manager -> unit
(** Drop all memoized operation results (the unique table is kept, so
    node identity is preserved). *)

val node_count : manager -> int
(** Total number of live internal nodes in the unique table. *)

val set_growth_hook : manager -> (int -> unit) option -> unit
(** Install (or remove, with [None]) a resource-governor hook: it is
    called with the live node count once every ~1000 fresh node
    allocations, i.e. at operation boundaries of the recursive apply
    procedures.  The hook may raise to abort the operation in progress;
    this is safe, because the unique table and the operation caches only
    ever record completed results — an abort leaves the manager fully
    usable.  Used by [Decomp.Budget] to enforce node budgets and
    wall-clock deadlines. *)

(** {1 Constants and variables} *)

val zero : manager -> t
val one : manager -> t
val var : manager -> int -> t
(** [var m i] is the projection function of variable [i].  Indices are
    arbitrary integers; the variable order is their numeric order
    (smaller = closer to the root).  Negative indices are how the
    decomposition driver places fresh variables {e above} the primary
    inputs. *)

val nvar : manager -> int -> t
(** [nvar m i] is the complement of variable [i]. *)

(** {1 Structure} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val id : t -> int

val is_zero : t -> bool
val is_one : t -> bool
val is_const : t -> bool

val view : t -> [ `Zero | `One | `Node of int * t * t ]
(** [`Node (v, lo, hi)] exposes the top variable and the two cofactors. *)

val top_var : t -> int
(** Top variable of a non-constant node. @raise Invalid_argument on
    constants. *)

(** {1 Boolean operations} *)

val not_ : manager -> t -> t
val and_ : manager -> t -> t -> t
val or_ : manager -> t -> t -> t
val xor : manager -> t -> t -> t
val nand : manager -> t -> t -> t
val nor : manager -> t -> t -> t
val xnor : manager -> t -> t -> t
val imp : manager -> t -> t -> t
val diff : manager -> t -> t -> t
(** [diff m f g] is [f /\ not g]. *)

val ite : manager -> t -> t -> t -> t
val and_list : manager -> t list -> t
val or_list : manager -> t list -> t

(** {1 Cofactors, quantification, substitution} *)

val restrict : manager -> t -> int -> bool -> t
(** [restrict m f v b] is the cofactor of [f] with variable [v] fixed
    to [b]. *)

val cofactor2 : manager -> t -> int -> t * t
(** [cofactor2 m f v] is [(restrict f v false, restrict f v true)]. *)

val exists : manager -> int list -> t -> t
val forall : manager -> int list -> t -> t

val compose : manager -> t -> int -> t -> t
(** [compose m f v g] substitutes [g] for variable [v] in [f]. *)

val vector_compose : manager -> t -> (int * t) list -> t
(** Simultaneous substitution.  The substituted variables must not occur
    in the replacement functions (checked by assertion), which is the
    only case this library needs. *)

val swap_vars : manager -> t -> int -> int -> t
(** [swap_vars m f i j] is [f] with variables [i] and [j] exchanged. *)

val rename : manager -> t -> (int -> int) -> t
(** [rename m f pi] substitutes variable [pi v] for every variable [v]
    (simultaneously).  [pi] must be injective on the support of [f];
    it need not preserve the variable order. *)

val negate_var : manager -> t -> int -> t
(** [negate_var m f v] is [fun x -> f (x with bit v flipped)]. *)

(** {1 Inspection} *)

val support : manager -> t -> int list
(** Variables [f] essentially depends on, ascending.  Memoized per node
    in the manager, so repeated queries are O(1). *)

val depends_on : t -> int -> bool
val size : t -> int
(** Number of internal nodes of [f] (shared nodes counted once). *)

val size_list : t list -> int
(** Nodes of the shared DAG of a list of functions. *)

val fingerprint : manager -> t -> string
(** Canonical, manager-independent fingerprint of the {e function}: a
    16-byte Merkle digest of the ROBDD structure (variable indices and
    child digests).  Two BDDs — possibly living in different managers,
    built in different orders, with unrelated node ids — have equal
    fingerprints iff they denote the same Boolean function over the
    same variable indices (modulo MD5 collisions, negligible at 128
    bits).  Memoized per node for the node's lifetime, so repeated
    queries are O(1).  This is the key material of every cross-run
    cache ([Decomp.Score_cache], the serve daemon's result cache):
    node ids die with their manager, fingerprints do not. *)

val equal_on : manager -> care:t -> t -> t -> bool
(** [equal_on m ~care f g]: do [f] and [g] agree on every minterm of
    [care]?  ([care = one] is plain {!equal}; the workhorse of the
    care-set-aware equivalence audit.) *)

val miter : manager -> (t * t) list -> t
(** [miter m pairs] is the disjunction of the pairwise differences
    [f xor g] — the classic equivalence miter: satisfiable exactly
    where some pair disagrees. *)

val sat_count : manager -> t -> nvars:int -> float
(** Number of satisfying assignments over [nvars] variables (variables
    must all be in [0 .. nvars-1]). *)

val eval : t -> (int -> bool) -> bool
(** Evaluate under an assignment. *)

val any_sat : t -> (int * bool) list
(** One satisfying path (empty for [one]).  @raise Not_found on [zero]. *)

val random : manager -> nvars:int -> density:float -> Random.State.t -> t
(** Random function over variables [0 .. nvars-1]; [density] is the
    probability of a minterm being in the on-set. *)

(** {1 Vectors of cofactors (decomposition support)} *)

val cofactor_vector : manager -> t -> int list -> t array
(** [cofactor_vector m f vars] lists all [2^p] cofactors of [f] w.r.t.
    [vars = [v1; ...; vp]].  Index [i] holds the cofactor for the
    assignment where the {e first} variable of the list is the most
    significant bit of [i]. *)

val extend_cofactor_vector : manager -> t array -> int list -> int -> t array
(** [extend_cofactor_vector m vec vars v]: given [vec =
    cofactor_vector m f vars] for strictly ascending [vars] not
    containing [v], the cofactor vector of [f] w.r.t. the ascending
    merge of [vars] and [v] — computed by splitting each cached
    cofactor on [v] ([2^(p+1)] restricts of already-restricted, hence
    small, BDDs) instead of recomputing the whole vector from the
    root.  The workhorse of the bound-set search's incremental score
    cache. *)

val of_vector : manager -> int list -> t array -> t
(** Inverse of {!cofactor_vector} for constant vectors generalized to
    functions: [of_vector m vars vec] builds the function whose cofactor
    vector w.r.t. [vars] is [vec].  [vars] must be strictly ascending and
    the entries of [vec] must not depend on [vars] (they may depend on
    any other variable, above or below). *)

val minterm_of_code : manager -> int list -> int -> t
(** [minterm_of_code m vars code] is the conjunction of literals of
    [vars] encoding [code] (first variable = most significant bit). *)

(** {1 Output} *)

val pp : Format.formatter -> t -> unit
(** Terse structural printout (for debugging). *)

val to_dot : ?name:string -> t list -> string
(** Graphviz rendering of the shared DAG of the given functions. *)
