test/test_paper_props.ml: Alcotest Array Bdd Bool Bv Classes Config Fun Isf List QCheck2 QCheck_alcotest Step
