(** Reference gate-level circuits for the arithmetic comparisons of
    Section 6.1: the conditional-sum adder (Sklansky) that Figure 2 is
    compared against, and the Wallace-tree multiplier that Figure 3 is
    compared against.  Both are built from 2-input gates so their
    [two_input_gates] statistic is the paper's gate count. *)

val partial_product_index : n:int -> string -> int
(** Map a partial-product input name [p<i>_<j>] to the variable index
    [i*n + j] used by {!Arith.partial_multiplier}. *)

val conditional_sum_adder : bits:int -> Network.t
(** Inputs [x0..], [y0..]; outputs [f0 .. f(bits-1)] (sum modulo
    [2^bits], matching {!Arith.adder}). *)

val wallace_partial_multiplier : n:int -> Network.t
(** Wallace-tree reduction of the [n^2] partial-product inputs
    [p{i}_{j}] into the [2n] product bits [r0 ..], using full/half
    adders made of 2-input gates and a final ripple stage — the
    comparison point for [pm_n].  Matches {!Arith.partial_multiplier}. *)

val wallace_gate_formula : int -> int
(** The paper's asymptotic gate count for the Wallace tree multiplier:
    [10n^2 - 20n]. *)
