lib/decomp/classes.ml: Array Bdd Hashtbl Isf List Ugraph
