(* A bounded multi-producer multi-consumer queue.  The producer side
   never blocks: [try_push] refuses when the queue is full, which is
   the server's backpressure signal (the client gets queue-full with a
   retry hint instead of the server buffering unboundedly).  The
   consumer side blocks in [pop] until an item or close+drain. *)

type 'a t = {
  capacity : int;
  items : 'a Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity must be >= 1";
  {
    capacity;
    items = Queue.create ();
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
  }

let try_push t x =
  Mutex.lock t.mutex;
  let ok =
    if t.closed || Queue.length t.items >= t.capacity then false
    else begin
      Queue.add x t.items;
      Condition.signal t.nonempty;
      true
    end
  in
  Mutex.unlock t.mutex;
  ok

let pop t =
  Mutex.lock t.mutex;
  let rec wait () =
    if not (Queue.is_empty t.items) then Some (Queue.pop t.items)
    else if t.closed then None
    else begin
      Condition.wait t.nonempty t.mutex;
      wait ()
    end
  in
  let r = wait () in
  Mutex.unlock t.mutex;
  r

let close t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.mutex

let length t =
  Mutex.lock t.mutex;
  let n = Queue.length t.items in
  Mutex.unlock t.mutex;
  n

let capacity t = t.capacity
