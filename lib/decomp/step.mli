(** One decomposition step: given a vector of (incompletely specified)
    functions and a bound set, produce

    - the decomposition functions [alpha] (BDDs over the bound
      variables, shared across outputs), and
    - for every output its composition function [g] as an ISF over
      fresh alpha variables plus the free variables (don't cares of [g]
      come from unused codes and from surviving input don't cares —
      this is where the recursion generates the don't cares the paper
      exploits).

    The don't-care steps 2 (sharing-aware joint class minimization via
    clique cover) and 3 (Chang & Marek-Sadowska per-output minimization)
    run inside the step, controlled by {!Config.dc_steps}; step 1
    (symmetrization) happens before bound-set selection and therefore in
    the driver. *)

type alpha = {
  pool_id : int;
  var : int;  (** fresh BDD variable standing for this function *)
  func : Bdd.t;  (** the function itself, over the bound variables *)
}

type result = {
  alphas : alpha list;  (** in pool order *)
  g : Isf.t array;  (** per output; over alpha variables and free variables *)
  r : int array;  (** number of decomposition functions per output *)
  joint_classes : int;  (** the paper's lower-bound quantity [ncc(f, B)] *)
}

val run :
  ?budget:Budget.t ->
  ?checks:Diagnostic.level ->
  ?emit:(Diagnostic.t -> unit) ->
  ?stats:Stats.t ->
  Bdd.manager ->
  Config.t ->
  fresh_var:(unit -> int) ->
  Isf.t array ->
  bound:int list ->
  result
(** Run one decomposition step of the function vector [isfs] against
    [bound].  [fresh_var] allocates the BDD variables standing for the
    decomposition functions.  [budget] (default {!Budget.unlimited}) is
    polled at every internal phase boundary and once per vertex of the
    class-merging colorings; {!Budget.Out_of_budget} can only escape
    {e before} anything is emitted — the step itself is pure, all
    commitment happens in the driver.  [stats] receives the [step/*]
    phase timings (default: a fresh throwaway instance).

    With [checks] at [Cheap] or above (default [Off]), the step's
    internal invariants are verified and violations reported through
    [emit] (default: drop): proper clique covers ([DEC004]), injective
    encodings ([DEC005]) and the [ceil(log2 ncc)] function count
    ([DEC006]).  The checks never change the result. *)

val total_alpha_lower_bound : result -> int
(** [ceil(log2 joint_classes)] — the paper's lower bound on the total
    number of decomposition functions. *)
