(** Blocking client for the serve protocol — the engine of
    [mfd submit] and of the end-to-end tests. *)

type t

val connect : Server.endpoint -> t
(** Raises [Unix.Unix_error] when the daemon is not reachable. *)

val close : t -> unit

val call : t -> Proto.op -> (Proto.response, string) result
(** One request/response round trip (ids are assigned internally).
    @raise Frame.Closed if the server hangs up mid-response. *)

val send : t -> Proto.op -> int
(** Fire a request without waiting; returns its id.  With {!recv} this
    lets tests pipeline requests (e.g. to fill the job queue and
    observe the queue-full backpressure). *)

val recv : t -> (Proto.response, string) result
(** Read the next response frame. *)

val send_raw : t -> string -> unit
(** Write an arbitrary payload in one frame — for tests exercising the
    server's rejection of malformed JSON. *)

val fd : t -> Unix.file_descr
(** The raw connection — for tests that need sub-frame write
    granularity (partial-read reassembly). *)
