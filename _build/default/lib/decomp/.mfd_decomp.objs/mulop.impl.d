lib/decomp/mulop.ml: Clb Config Driver Format Network
