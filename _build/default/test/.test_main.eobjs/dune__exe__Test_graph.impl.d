test/test_graph.ml: Alcotest Array Coloring List Matching QCheck2 QCheck_alcotest Random Ugraph
