let analyze m (pla : Pla.t) =
  let findings = ref [] in
  let add ?loc code msg = findings := Diagnostic.make ?loc code msg :: !findings in
  let report_duplicates kind names =
    let seen = Hashtbl.create 16 in
    List.iter
      (fun name ->
        if Hashtbl.mem seen name then
          add ~loc:name "PLA002" (Printf.sprintf "%s %s declared twice" kind name)
        else Hashtbl.add seen name ())
      names
  in
  report_duplicates ".ilb name" pla.Pla.input_names;
  report_duplicates ".ob name" pla.Pla.output_names;
  (match pla.Pla.kind with
  | `F | `Fd -> ()
  | `Fr | `Fdr ->
      List.iteri
        (fun k name ->
          let plane tag =
            pla.Pla.rows
            |> List.filter_map (fun (cube, out) ->
                   if out.(k) = tag then
                     Some (Cover.cube_to_bdd m (fun c -> c) cube)
                   else None)
            |> Bdd.or_list m
          in
          if not (Bdd.is_zero (Bdd.and_ m (plane '1') (plane '0'))) then
            add ~loc:name "PLA001"
              "on-rows and off-rows overlap (reader keeps the on-set)")
        pla.Pla.output_names);
  List.rev !findings
