type t = { id : int; node : node }

and node =
  | Zero
  | One
  | Node of { v : int; lo : t; hi : t }

(* Keys of the unique table: (variable, id of lo child, id of hi child). *)
module Unique_key = struct
  type t = int * int * int

  let equal (a1, b1, c1) (a2, b2, c2) = a1 = a2 && b1 = b2 && c1 = c2
  let hash (a, b, c) = (a * 0x9e3779b1) lxor (b * 0x85ebca6b) lxor (c * 0xc2b2ae35)
end

module Unique_table = Hashtbl.Make (Unique_key)

module Op_key = struct
  type t = int * int * int

  let equal (a1, b1, c1) (a2, b2, c2) = a1 = a2 && b1 = b2 && c1 = c2
  let hash (a, b, c) = (a * 0x27d4eb2f) lxor (b * 0x9e3779b1) lxor (c * 0x85ebca6b)
end

module Op_cache = Hashtbl.Make (Op_key)

type manager = {
  mutable next_id : int;
  unique : t Unique_table.t;
  bzero : t;
  bone : t;
  (* (op_code, id1, id2) -> result.  ITE uses a separate cache because its
     key has three node ids. *)
  binop_cache : t Op_cache.t;
  ite_cache : t Op_cache.t;
  not_cache : (int, t) Hashtbl.t;
  (* (f.id, var*2 + bool) -> cofactor *)
  restrict_cache : t Op_cache.t;
  (* node id -> sorted support, memoized for the node's lifetime *)
  support_cache : (int, int list) Hashtbl.t;
  (* node id -> canonical 16-byte fingerprint, memoized for the node's
     lifetime (nodes are immutable and never collected) *)
  fingerprint_cache : (int, string) Hashtbl.t;
  (* Resource-governor hook: called with the live node count once every
     [growth_interval] fresh allocations.  May raise to abort the
     current operation; the unique table and all caches only ever hold
     completed results, so an abort cannot corrupt the manager. *)
  mutable growth_hook : (int -> unit) option;
  mutable growth_tick : int;
}

let growth_interval = 1024

let manager ?(cache_size = 4096) () =
  {
    next_id = 2;
    unique = Unique_table.create cache_size;
    bzero = { id = 0; node = Zero };
    bone = { id = 1; node = One };
    binop_cache = Op_cache.create cache_size;
    ite_cache = Op_cache.create cache_size;
    not_cache = Hashtbl.create cache_size;
    restrict_cache = Op_cache.create cache_size;
    support_cache = Hashtbl.create cache_size;
    fingerprint_cache = Hashtbl.create cache_size;
    growth_hook = None;
    growth_tick = growth_interval;
  }

let set_growth_hook m hook =
  m.growth_hook <- hook;
  m.growth_tick <- growth_interval

let clear_caches m =
  Op_cache.reset m.binop_cache;
  Op_cache.reset m.ite_cache;
  Hashtbl.reset m.not_cache;
  Op_cache.reset m.restrict_cache

let node_count m = Unique_table.length m.unique
let zero m = m.bzero
let one m = m.bone
let equal a b = a.id = b.id
let compare a b = Stdlib.compare a.id b.id
let hash a = a.id
let id a = a.id
let is_zero a = a.id = 0
let is_one a = a.id = 1
let is_const a = a.id < 2

let view a =
  match a.node with
  | Zero -> `Zero
  | One -> `One
  | Node { v; lo; hi } -> `Node (v, lo, hi)

let top_var a =
  match a.node with
  | Node { v; _ } -> v
  | Zero | One -> invalid_arg "Bdd.top_var: constant"

(* The single constructor maintaining reduction and sharing. *)
let mk m v lo hi =
  if lo.id = hi.id then lo
  else
    let key = (v, lo.id, hi.id) in
    match Unique_table.find_opt m.unique key with
    | Some n -> n
    | None ->
        let n = { id = m.next_id; node = Node { v; lo; hi } } in
        m.next_id <- m.next_id + 1;
        Unique_table.add m.unique key n;
        m.growth_tick <- m.growth_tick - 1;
        if m.growth_tick <= 0 then begin
          m.growth_tick <- growth_interval;
          match m.growth_hook with
          | Some hook -> hook (Unique_table.length m.unique)
          | None -> ()
        end;
        n

let var m i = mk m i m.bzero m.bone

let nvar m i = mk m i m.bone m.bzero

let not_ m f =
  let rec go f =
    match f.node with
    | Zero -> m.bone
    | One -> m.bzero
    | Node { v; lo; hi } -> (
        match Hashtbl.find_opt m.not_cache f.id with
        | Some r -> r
        | None ->
            let r = mk m v (go lo) (go hi) in
            Hashtbl.add m.not_cache f.id r;
            r)
  in
  go f

(* Binary operations via Shannon expansion with terminal cases per op. *)
type binop = Op_and | Op_or | Op_xor

let binop_code = function Op_and -> 0 | Op_or -> 1 | Op_xor -> 2

let apply m op =
  let code = binop_code op in
  let terminal f g =
    match op with
    | Op_and ->
        if f.id = 0 || g.id = 0 then Some m.bzero
        else if f.id = 1 then Some g
        else if g.id = 1 then Some f
        else if f.id = g.id then Some f
        else None
    | Op_or ->
        if f.id = 1 || g.id = 1 then Some m.bone
        else if f.id = 0 then Some g
        else if g.id = 0 then Some f
        else if f.id = g.id then Some f
        else None
    | Op_xor ->
        if f.id = 0 then Some g
        else if g.id = 0 then Some f
        else if f.id = g.id then Some m.bzero
        else if f.id = 1 then Some (not_ m g)
        else if g.id = 1 then Some (not_ m f)
        else None
  in
  let rec go f g =
    match terminal f g with
    | Some r -> r
    | None -> (
        (* Commutative ops: normalize the key. *)
        let a, b = if f.id <= g.id then (f, g) else (g, f) in
        let key = (code, a.id, b.id) in
        match Op_cache.find_opt m.binop_cache key with
        | Some r -> r
        | None ->
            let split x v =
              match x.node with
              | Node { v = xv; lo; hi } when xv = v -> (lo, hi)
              | Zero | One | Node _ -> (x, x)
            in
            let v =
              match (a.node, b.node) with
              | Node { v = va; _ }, Node { v = vb; _ } -> min va vb
              | Node { v = va; _ }, (Zero | One) -> va
              | (Zero | One), Node { v = vb; _ } -> vb
              | (Zero | One), (Zero | One) -> assert false
            in
            let alo, ahi = split a v and blo, bhi = split b v in
            let r = mk m v (go alo blo) (go ahi bhi) in
            Op_cache.add m.binop_cache key r;
            r)
  in
  go

let and_ m f g = apply m Op_and f g
let or_ m f g = apply m Op_or f g
let xor m f g = apply m Op_xor f g
let nand m f g = not_ m (and_ m f g)
let nor m f g = not_ m (or_ m f g)
let xnor m f g = not_ m (xor m f g)
let imp m f g = or_ m (not_ m f) g
let diff m f g = and_ m f (not_ m g)

let ite m f g h =
  let rec go f g h =
    if f.id = 1 then g
    else if f.id = 0 then h
    else if g.id = h.id then g
    else if g.id = 1 && h.id = 0 then f
    else if g.id = 0 && h.id = 1 then not_ m f
    else
      let key = (f.id, g.id, h.id) in
      match Op_cache.find_opt m.ite_cache key with
      | Some r -> r
      | None ->
          let topv x acc =
            match x.node with Node { v; _ } -> min v acc | Zero | One -> acc
          in
          let v = topv f (topv g (topv h max_int)) in
          let split x =
            match x.node with
            | Node { v = xv; lo; hi } when xv = v -> (lo, hi)
            | Zero | One | Node _ -> (x, x)
          in
          let flo, fhi = split f and glo, ghi = split g and hlo, hhi = split h in
          let r = mk m v (go flo glo hlo) (go fhi ghi hhi) in
          Op_cache.add m.ite_cache key r;
          r
  in
  go f g h

let and_list m fs = List.fold_left (and_ m) m.bone fs
let or_list m fs = List.fold_left (or_ m) m.bzero fs

let restrict m f v b =
  let tag = (v * 2) + if b then 1 else 0 in
  let rec go f =
    match f.node with
    | Zero | One -> f
    | Node { v = fv; lo; hi } ->
        if fv > v then f
        else if fv = v then if b then hi else lo
        else
          let key = (f.id, tag, -1) in
          (match Op_cache.find_opt m.restrict_cache key with
          | Some r -> r
          | None ->
              let r = mk m fv (go lo) (go hi) in
              Op_cache.add m.restrict_cache key r;
              r)
  in
  go f

let cofactor2 m f v = (restrict m f v false, restrict m f v true)

let exists m vars f =
  let vars = List.sort_uniq Stdlib.compare vars in
  List.fold_left
    (fun acc v ->
      let lo, hi = cofactor2 m acc v in
      or_ m lo hi)
    f vars

let forall m vars f =
  let vars = List.sort_uniq Stdlib.compare vars in
  List.fold_left
    (fun acc v ->
      let lo, hi = cofactor2 m acc v in
      and_ m lo hi)
    f vars

let compose m f v g =
  let lo, hi = cofactor2 m f v in
  ite m g hi lo

(* Memoized per node: support(f) = {top} U support(lo) U support(hi),
   merged as sorted lists.  Nodes are immutable and never collected, so
   the cache never invalidates. *)
let support m f =
  let rec merge a b =
    match (a, b) with
    | [], l | l, [] -> l
    | x :: xs, y :: ys ->
        if x < y then x :: merge xs b
        else if y < x then y :: merge a ys
        else x :: merge xs ys
  in
  let rec go f =
    match f.node with
    | Zero | One -> []
    | Node { v; lo; hi } -> (
        match Hashtbl.find_opt m.support_cache f.id with
        | Some s -> s
        | None ->
            let s = merge [ v ] (merge (go lo) (go hi)) in
            Hashtbl.add m.support_cache f.id s;
            s)
  in
  go f

let depends_on f v =
  let seen = Hashtbl.create 64 in
  let rec go f =
    match f.node with
    | Zero | One -> false
    | Node { v = fv; lo; hi } ->
        if fv > v then false
        else if fv = v then true
        else if Hashtbl.mem seen f.id then false
        else begin
          Hashtbl.add seen f.id ();
          go lo || go hi
        end
  in
  go f

let size_list fs =
  let seen = Hashtbl.create 64 in
  let count = ref 0 in
  let rec go f =
    match f.node with
    | Zero | One -> ()
    | Node { lo; hi; _ } ->
        if not (Hashtbl.mem seen f.id) then begin
          Hashtbl.add seen f.id ();
          incr count;
          go lo;
          go hi
        end
  in
  List.iter go fs;
  !count

let size f = size_list [ f ]

let vector_compose m f subst =
  (* Replacement functions must not mention substituted variables, so that
     sequential composition coincides with simultaneous substitution. *)
  assert (
    List.for_all
      (fun (_, g) -> List.for_all (fun (w, _) -> not (depends_on g w)) subst)
      subst);
  List.fold_left (fun acc (v, g) -> compose m acc v g) f subst

let swap_vars m f i j =
  if i = j then f
  else
    let f0 = restrict m f i false and f1 = restrict m f i true in
    let f00 = restrict m f0 j false
    and f01 = restrict m f0 j true
    and f10 = restrict m f1 j false
    and f11 = restrict m f1 j true in
    let vi = var m i and vj = var m j in
    (* result_{i=a, j=b} = f_{i=b, j=a} *)
    ite m vi (ite m vj f11 f01) (ite m vj f10 f00)

let rename m f pi =
  (* Rebuild bottom-up through ITE, which restores ordering even when
     [pi] is not monotone.  Memoized per (function, this call). *)
  let cache = Hashtbl.create 64 in
  let rec go f =
    match f.node with
    | Zero | One -> f
    | Node { v; lo; hi } -> (
        match Hashtbl.find_opt cache f.id with
        | Some r -> r
        | None ->
            let r = ite m (var m (pi v)) (go hi) (go lo) in
            Hashtbl.add cache f.id r;
            r)
  in
  go f

let negate_var m f v =
  let lo, hi = cofactor2 m f v in
  ite m (var m v) lo hi

(* Merkle digest of the ROBDD structure: the fingerprint of a node is
   the MD5 of its variable index and the fingerprints of its children.
   Because ROBDDs are canonical for a fixed variable order, two
   functions have the same fingerprint iff they are the same function
   (up to MD5 collisions, negligible at 128 bits) — regardless of
   which manager built them, in what order, or what node ids they got.
   Memoized per node in the manager, so amortized cost is one digest
   per distinct node ever fingerprinted. *)
let zero_fp = Digest.string "mfd-bdd-zero"
let one_fp = Digest.string "mfd-bdd-one"

let fingerprint m f =
  let buf = Buffer.create 40 in
  let rec go f =
    match f.node with
    | Zero -> zero_fp
    | One -> one_fp
    | Node { v; lo; hi } -> (
        match Hashtbl.find_opt m.fingerprint_cache f.id with
        | Some fp -> fp
        | None ->
            let flo = go lo in
            let fhi = go hi in
            Buffer.clear buf;
            Buffer.add_string buf (string_of_int v);
            Buffer.add_char buf '|';
            Buffer.add_string buf flo;
            Buffer.add_string buf fhi;
            let fp = Digest.string (Buffer.contents buf) in
            Hashtbl.add m.fingerprint_cache f.id fp;
            fp)
  in
  go f

let equal_on m ~care f g = is_zero (and_ m care (xor m f g))

let miter m pairs = or_list m (List.map (fun (f, g) -> xor m f g) pairs)

let sat_count m f ~nvars =
  ignore m;
  let cache = Hashtbl.create 64 in
  let rec go f =
    (* Number of satisfying assignments of the variables strictly below
       the top of [f], counted relative to the top variable level. *)
    match f.node with
    | Zero -> 0.0
    | One -> 1.0
    | Node { v; lo; hi } -> (
        match Hashtbl.find_opt cache f.id with
        | Some r -> r
        | None ->
            let weight g =
              let level_gap =
                match g.node with
                | Node { v = gv; _ } -> gv - v - 1
                | Zero | One -> nvars - v - 1
              in
              go g *. (2.0 ** float_of_int level_gap)
            in
            let r = weight lo +. weight hi in
            Hashtbl.add cache f.id r;
            r)
  in
  match f.node with
  | Zero -> 0.0
  | One -> 2.0 ** float_of_int nvars
  | Node { v; _ } -> go f *. (2.0 ** float_of_int v)

let eval f assignment =
  let rec go f =
    match f.node with
    | Zero -> false
    | One -> true
    | Node { v; lo; hi } -> if assignment v then go hi else go lo
  in
  go f

let any_sat f =
  let rec go f acc =
    match f.node with
    | Zero -> raise Not_found
    | One -> List.rev acc
    | Node { v; lo; hi } ->
        if lo.id <> 0 then go lo ((v, false) :: acc) else go hi ((v, true) :: acc)
  in
  go f []

let random m ~nvars ~density st =
  let rec go v =
    if v = nvars then if Random.State.float st 1.0 < density then m.bone else m.bzero
    else mk m v (go (v + 1)) (go (v + 1))
  in
  go 0

let cofactor_vector m f vars =
  let rec go f = function
    | [] -> [ f ]
    | v :: rest -> go (restrict m f v false) rest @ go (restrict m f v true) rest
  in
  Array.of_list (go f vars)

let extend_cofactor_vector m vec vars v =
  let p = List.length vars in
  if Array.length vec <> 1 lsl p then
    invalid_arg "Bdd.extend_cofactor_vector: length mismatch";
  let rec ascending = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> a < b && ascending rest
  in
  if not (ascending vars) then
    invalid_arg "Bdd.extend_cofactor_vector: vars not ascending";
  if List.mem v vars then
    invalid_arg "Bdd.extend_cofactor_vector: variable already bound";
  (* [v] lands at position [k] of the ascending merge: the [k] variables
     before it keep their (more significant) index bits, the rest shift
     below the new bit. *)
  let k = List.length (List.filter (fun u -> u < v) vars) in
  let low_bits = p - k in
  let mask = (1 lsl low_bits) - 1 in
  let out = Array.make (2 lsl p) vec.(0) in
  Array.iteri
    (fun i f ->
      let base = ((i lsr low_bits) lsl (low_bits + 1)) lor (i land mask) in
      out.(base) <- restrict m f v false;
      out.(base lor (1 lsl low_bits)) <- restrict m f v true)
    vec;
  out

let of_vector m vars vec =
  let p = List.length vars in
  if Array.length vec <> 1 lsl p then invalid_arg "Bdd.of_vector: length mismatch";
  let rec ascending = function
    | [] | [ _ ] -> true
    | a :: (b :: _ as rest) -> a < b && ascending rest
  in
  if not (ascending vars) then invalid_arg "Bdd.of_vector: vars not ascending";
  let rec go vars lo_index width =
    match vars with
    | [] -> vec.(lo_index)
    | v :: rest ->
        let half = width / 2 in
        (* ITE (rather than a raw node constructor) keeps the result
           reduced and ordered even when the entries of [vec] depend on
           variables above [v]. *)
        ite m (var m v) (go rest (lo_index + half) half) (go rest lo_index half)
  in
  go vars 0 (Array.length vec)

let minterm_of_code m vars code =
  let p = List.length vars in
  let lits =
    List.mapi
      (fun k v ->
        let bit = (code lsr (p - 1 - k)) land 1 in
        if bit = 1 then var m v else nvar m v)
      vars
  in
  and_list m lits

let rec pp fmt f =
  match f.node with
  | Zero -> Format.fprintf fmt "0"
  | One -> Format.fprintf fmt "1"
  | Node { v; lo; hi } -> Format.fprintf fmt "(x%d ? %a : %a)" v pp hi pp lo

let to_dot ?(name = "bdd") fs =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  let seen = Hashtbl.create 64 in
  let rec go f =
    if not (Hashtbl.mem seen f.id) then begin
      Hashtbl.add seen f.id ();
      match f.node with
      | Zero -> Buffer.add_string buf "  n0 [shape=box,label=\"0\"];\n"
      | One -> Buffer.add_string buf "  n1 [shape=box,label=\"1\"];\n"
      | Node { v; lo; hi } ->
          Buffer.add_string buf
            (Printf.sprintf "  n%d [label=\"x%d\"];\n" f.id v);
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d [style=dashed];\n" f.id lo.id);
          Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" f.id hi.id);
          go lo;
          go hi
    end
  in
  List.iter go fs;
  List.iteri
    (fun i f ->
      Buffer.add_string buf
        (Printf.sprintf "  f%d [shape=plaintext,label=\"f%d\"];\n  f%d -> n%d;\n"
           i i i f.id))
    fs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
