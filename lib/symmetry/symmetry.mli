(** Symmetries of Boolean functions and the paper's step-1 don't-care
    assignment (Scholl/Melchior/Hotz/Molitor, EDTC'97): assign don't
    cares so that the function becomes symmetric in as many variable
    pairs as possible.

    Two flavours of pairwise symmetry are treated, following
    Edwards & Hurst:

    - {e nonequivalence} (classical) symmetry in [(x_i, x_j)]:
      [f] is invariant under exchanging the two variables
      ([f_{01} = f_{10}]);
    - {e equivalence} symmetry: [f] is invariant under exchanging and
      complementing both ([f_{00} = f_{11}]).

    Both are instances of exchanging literals with a relative phase
    [rel]: [rel = false] is nonequivalence, [rel = true] equivalence.

    A {e group} is a set of variables, each with a phase relative to the
    group, such that the function is invariant under exchanging any two
    members (with the xor of their phases as relative phase).  Strict
    decomposition functions preserve these symmetries, which is why the
    paper maximizes them before choosing bound sets. *)

type group = (int * bool) list
(** Variables with their phases; a singleton group is phase-[false]. *)

val group_vars : group -> int list

(** {1 Detection on completely specified functions} *)

val symmetric_pair : Bdd.manager -> Bdd.t list -> rel:bool -> int -> int -> bool
(** Is every function of the vector invariant under exchanging the two
    variables with relative phase [rel]? *)

val partition :
  ?budget:int ->
  ?check:(unit -> unit) ->
  Bdd.manager ->
  Bdd.t list ->
  int list ->
  group list
(** Partition the given variables into maximal symmetry groups of the
    (multi-output) function vector, considering both phases.  Groups are
    disjoint and cover the input list; the order of the result follows
    the first occurrence of each group.  [check] as in {!maximize}. *)

(** {1 Symmetrization of incompletely specified functions} *)

val swap_rel : Bdd.manager -> Bdd.t -> rel:bool -> int -> int -> Bdd.t
(** The literal-exchange transform on a completely specified function. *)

val symmetrizable :
  Bdd.manager -> Isf.t list -> rel:bool -> int -> int -> bool
(** Can don't cares of every function in the vector be assigned so that
    all become symmetric in the pair?  (No assignment is performed.) *)

val symmetrize :
  Bdd.manager -> Isf.t list -> rel:bool -> int -> int -> Isf.t list option
(** Perform the forced assignments: on-sets and off-sets are closed
    under the exchange.  [None] if the pair is not symmetrizable. *)

(** {1 Step 1 of the paper's don't-care assignment} *)

val close_group : Bdd.manager -> Isf.t list -> group -> Isf.t list option
(** Commit the don't-care assignments that make every function of the
    vector symmetric under all exchanges of the group (fixpoint of the
    forced assignments); [None] if a conflict appears. *)

type result = { functions : Isf.t list; groups : group list }

val maximize :
  ?budget:int ->
  ?use_equivalence:bool ->
  ?check:(unit -> unit) ->
  Bdd.manager ->
  Isf.t list ->
  int list ->
  result
(** Greedy group growing: repeatedly try to merge symmetry groups (over
    the given variables), assigning don't cares on success and keeping
    every previously established symmetry (each merge re-closes the
    group under all pair exchanges, which terminates because care sets
    only grow).  [budget] bounds the number of attempted pair merges
    (default 4000); [use_equivalence] enables phase-[true] merges
    (default true).  [check] (default a no-op) is polled before every
    merge attempt and may raise to abandon the pass — the resource
    governor of the decomposition engine polls its deadline here.

    On completely specified functions no don't cares exist and this
    reduces to pure detection, i.e. [partition]. *)
