(** Decomposition-invariant checks ([DEC*] codes).

    Each helper verifies one obligation of the paper's correctness
    story and returns [Some finding] on violation, [None] when the
    invariant holds.  The driver calls them at its phase boundaries
    when running with [--check=cheap] or [--check=full]; they are pure
    observers — no check ever changes the result of a run. *)

val well_formed_parts :
  Bdd.manager -> where:string -> on:Bdd.t -> dc:Bdd.t -> Diagnostic.t option
(** [DEC001]: the on-set and don't-care set must be disjoint.  Takes
    the raw parts (rather than an {!Isf.t}, whose constructor already
    enforces this) so unsafely produced pairs can be vetted too. *)

val refines : Bdd.manager -> coarse:Isf.t -> fine:Isf.t -> bool
(** Is every extension of [fine] an extension of [coarse]?  (The
    don't-care phases may only {e commit} don't cares: on-sets and
    off-sets grow, the interval of extensions shrinks.) *)

val check_refines :
  Bdd.manager -> where:string -> coarse:Isf.t -> fine:Isf.t -> Diagnostic.t option
(** [DEC002]: {!refines}, as a finding. *)

val check_group_symmetric :
  Bdd.manager -> where:string -> Isf.t list -> Symmetry.group -> Diagnostic.t option
(** [DEC003]: after step 1 committed a group, every function of the
    vector must be invariant (on-set and off-set separately) under
    every pair exchange of the group, with the xor of the member
    phases as relative phase. *)

val check_proper_cover :
  Ugraph.t -> int array -> where:string -> Diagnostic.t option
(** [DEC004]: a class merging must be a proper coloring of the
    incompatibility graph — no two incompatible vertices share a
    class. *)

val check_alpha_count :
  where:string -> nclasses:int -> r:int -> Diagnostic.t option
(** [DEC006]: output [i] must receive exactly [ceil(log2 K_i)]
    decomposition functions (the paper's count). *)

val check_composition :
  Bdd.manager ->
  where:string ->
  subs:(int * Bdd.t) list ->
  g:Isf.t ->
  spec:Isf.t ->
  Diagnostic.t option
(** [DEC007]: substituting the decomposition functions [subs] for
    their alpha variables in the composition ISF [g] must yield a
    refinement of the step's input [spec] — i.e. the committed step is
    BDD-equivalent to its specification wherever the spec cares. *)

val function_of_tt : Bdd.manager -> int list -> Bv.t -> Bdd.t
(** The BDD of a truth table over the (strictly ascending) support
    variables, with table bit [k] corresponding to support position
    [k] — the layout used by the driver's LUT emission. *)

val check_lut_realizes :
  Bdd.manager ->
  where:string ->
  Isf.t ->
  support:int list ->
  tt:Bv.t ->
  Diagnostic.t option
(** [DEC008]: an emitted LUT table must be an extension of the ISF it
    was derived from. *)

val check_lut_equals :
  Bdd.manager ->
  where:string ->
  Bdd.t ->
  support:int list ->
  tt:Bv.t ->
  Diagnostic.t option
(** [DEC008] for completely specified emissions (decomposition
    functions): the table must equal the function exactly. *)
