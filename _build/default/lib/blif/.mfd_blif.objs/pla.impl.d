lib/blif/pla.ml: Array Bdd Buffer Cover Isf List Printf String
