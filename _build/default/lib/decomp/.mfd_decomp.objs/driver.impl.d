lib/decomp/driver.ml: Array Bdd Bound_select Bv Config Hashtbl Isf List Logs Network Step String Symmetry Unix
