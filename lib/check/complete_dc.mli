(** SAT-backed complete don't-care computation on windows.

    For one LUT node, the complete don't care of Mishchenko & Brayton
    combines both classic kinds: a local fanin code [c] is a don't
    care when no input vector drives the fanins to [c] (satisfiability)
    {e or} every vector that does makes the node's value invisible at
    the outputs (observability).  The exact BDD analysis ({!Careflow})
    computes this globally and pays for it on big cones; this module
    computes it on a {!Window} with a CDCL solver ({!Solver}) instead:

    + encode the window's LUTs (copy A, leaves free — {!Encode.lut});
    + re-encode the center's transitive fanout with the center forced
      to the complement (copy B, {!Encode.equiv_neg});
    + XOR the copies at every window root, and gate the disjunction of
      the XORs behind a selector variable, giving one formula for two
      query families: with the selector assumed {e true}, a model is a
      leaf assignment where flipping the center is observable; with it
      assumed {e false}, only reachability is constrained;
    + for each fanin code, ask both queries under the code's literals,
      collecting the care set into a local truth table.

    Per {!Window}'s soundness story, the computed care set
    over-approximates the true care set (so [care]'s zeros are true
    don't cares), and [reachable]'s zeros are true satisfiability
    don't cares.  Budget exhaustion marks codes as care — never a
    wrong answer, only a weaker one. *)

type counters = {
  mutable sat_calls : int;  (** solver invocations *)
  mutable sat_conflicts : int;  (** conflicts across those calls *)
  mutable windows_built : int;
}

val counters : unit -> counters
(** A fresh all-zero counter record (one per analysis run; the lint
    driver copies it into its report and {!Stats}-keeping callers
    mirror it there). *)

type node_result = {
  signal : Network.signal;
  fanins : Network.signal array;
  care : Bv.t;
      (** truth table over the fanin codes: [1] = some input vector
          reaches this code and the node's value matters there *)
  reachable : Bv.t;  (** [1] = some input vector reaches this code;
                         always [care <= reachable] pointwise *)
  decided : bool;
      (** every query was decided within budget; when [false], the
          undecided codes were conservatively marked care+reachable *)
}

val max_code_bits : int
(** Nodes with more fanins than this are not analyzed (the per-node
    query count is [2^fanins]); currently 8. *)

val analyze_node :
  ?tfi_depth:int ->
  ?tfo_depth:int ->
  ?max_conflicts:int ->
  ?check:(unit -> unit) ->
  counters:counters ->
  Window.ctx ->
  Network.signal ->
  node_result option
(** Complete don't cares of one LUT node on its window (depths default
    to 4/4; [max_conflicts] budgets {e each} solver call, default
    2000).  [None] when the node has more than {!max_code_bits} fanins.
    [check] is polled between queries and passed to the solver; it may
    raise (e.g. {!Careflow.Cutoff}) to abort the whole analysis.
    @raise Invalid_argument when the signal is not a LUT. *)
