(** Semantic don't-care dataflow over LUT networks.

    A BDD-backed abstract interpretation of a {!Network.t}: a forward
    pass computes every reachable node's {e global} function over the
    primary-input variables (the local table lifted through
    {!Bdd.vector_compose} in topological order), then a per-node pass
    derives the two don't-care sets of Mishchenko & Brayton's
    network-optimization story:

    - the {b SDC set} (satisfiability don't cares): local input
      combinations of the node's fanins that no primary-input vector
      can produce — unreachable LUT table rows;
    - the {b ODC set} (observability don't cares): primary-input
      minterms where complementing the node's output changes no
      cared-for primary output, computed by re-simulating the node's
      transitive-fanout cone against a per-output miter.

    Both are computed {e relative to an external care set}: a
    specification's don't-care minterms (e.g. the dc-plane of a PLA)
    neither count as reaching a table row nor as observing a node.

    The analysis is budget-aware: the [check] callback is polled
    between nodes and may raise {!Cutoff} to truncate the run
    gracefully — everything analyzed so far is returned, with
    {!t.truncated} recording why.  This is how the pass degrades on
    big networks instead of blowing up ([Decomp.Budget] and the CLI
    both drive it through this hook).

    Precondition: the network must be structurally sound (run the
    [Net_check] structural passes first on untrusted input); behaviour
    on corrupted networks is unspecified. *)

exception Cutoff of string
(** Raised {e by the [check] callback} (never by this module's own
    code) to truncate the analysis; the payload names the exhausted
    resource. *)

type info = {
  signal : Network.signal;
  global : Bdd.t;  (** the node's function of the primary inputs *)
  code_sets : Bdd.t array;
      (** entry [c]: the care-set minterms driving the node's fanins to
          local code [c] (fanin [j] = bit [j] of [c]); [zero] exactly
          when code [c] is a satisfiability don't care *)
  observable : Bdd.t;
      (** care-set minterms where complementing the node changes some
          output inside that output's care set; the node's ODC set is
          the complement w.r.t. the care set *)
}

type t = {
  nodes : info list;  (** fully analyzed LUT nodes, topological order *)
  outputs : (string * Bdd.t) list;  (** global functions of the outputs *)
  cares : (string * Bdd.t) list;  (** resolved care set per output *)
  care_any : Bdd.t;  (** union of the output care sets *)
  analyzed : int;  (** LUT nodes with full SDC/ODC information *)
  total : int;  (** reachable LUT nodes *)
  truncated : string option;  (** [Some reason] when cut off early *)
  screened : int;
      (** nodes whose ODC re-simulation was skipped on the strength of
          a [full_observable] hint *)
}

val analyze :
  ?care_of_output:(string -> Bdd.t) ->
  ?check:(unit -> unit) ->
  ?full_observable:(Network.signal -> bool) ->
  Bdd.manager ->
  var_of_input:(string -> int) ->
  Network.t ->
  t
(** [care_of_output name] is the BDD (over the input variables) of the
    minterms the specification cares about for output [name]; the
    default cares about everything.  [check] is polled at node
    granularity and may raise {!Cutoff}.  A truncation during the
    forward pass yields an empty result (no globals are trustworthy);
    during the per-node pass, the analyzed prefix is kept.

    [full_observable s] (default: always [false]) asserts that [s]'s
    observability set is {e exactly} the whole care space, letting the
    analysis skip the fanout-cone re-simulation and use [care_any]
    directly.  The caller must have a proof (the {!Dataflow}
    observability domain provides one: a node that pointwise drives an
    output whose care set equals [care_any]); a wrong hint silently
    corrupts ODC results.  The number of skips is {!t.screened}. *)

val global_of : t -> Network.signal -> Bdd.t option
(** The global function of an analyzed LUT node. *)

val limiter :
  ?max_nodes:int -> ?timeout:float -> Bdd.manager -> unit -> unit -> unit
(** A ready-made [check] callback for standalone (non-[Budget]) use:
    raises {!Cutoff} once the manager has allocated [max_nodes] fresh
    BDD nodes beyond its size at limiter creation, or after [timeout]
    seconds of processor time.  Omitted limits are unlimited. *)

val step_limiter : max_steps:int -> unit -> unit -> unit
(** A [check] callback that raises {!Cutoff} after [max_steps] polls.
    Unlike {!limiter} it is fully deterministic — the truncation point
    depends only on the network, never on BDD allocation, wall time or
    screening — which is what the with/without-dataflow equivalence
    checks (bench, CI, tests) run the exact engine under. *)
