lib/decomp/mulop.mli: Bdd Config Driver Format Network
