(* End-to-end file flow: an espresso PLA with external don't cares is
   decomposed for the XC3000 and written back as BLIF, then re-read and
   verified.  This is the path a SIS/ABC-style flow would use, and the
   only example where the don't cares come from the input file rather
   than from the recursion.

   Run with:  dune exec examples/pla_flow.exe [file.pla] *)

let demo_pla =
  {|# 7-segment-style decoder fragment with don't cares:
# input is a BCD digit (values 10-15 never occur -> dc)
.i 4
.o 3
.ilb b0 b1 b2 b3
.ob seg_a seg_b seg_c
.type fd
0000 110
1000 111
0100 101
1100 111
0010 011
1010 110
0110 111
1110 100
0001 111
1001 111
1-01 ---
-011 ---
-111 ---
.e
|}

let () =
  let m = Bdd.manager () in
  let pla =
    if Array.length Sys.argv > 1 then Pla.parse_file Sys.argv.(1)
    else Pla.parse demo_pla
  in
  Format.printf "PLA: %d inputs, %d outputs, %d rows (type with dc)@."
    pla.Pla.ninputs pla.Pla.noutputs
    (List.length pla.Pla.rows);
  let isfs = Pla.to_isfs m ~var_of_column:(fun k -> k) pla in
  List.iter
    (fun (name, isf) ->
      let dc_size = Bdd.size (Isf.dc isf) in
      Format.printf "  %s: %s@." name
        (if Isf.is_completely_specified isf then "completely specified"
         else Printf.sprintf "has don't cares (dc BDD: %d nodes)" dc_size))
    isfs;
  let spec = { Driver.input_names = pla.Pla.input_names; functions = isfs } in
  Format.printf "@.";
  List.iter
    (fun alg ->
      let o = Mulop.run m alg spec in
      assert (Driver.verify m spec o.Mulop.network);
      Format.printf "%a@." Mulop.pp_outcome o)
    [ Mulop.Mulop_ii; Mulop.Mulop_dc; Mulop.Mulop_dc_ii ];
  (* Write the mulop-dc result as BLIF, read it back, verify again. *)
  let o = Mulop.run m Mulop.Mulop_dc spec in
  let text = Blif.print ~model:"pla_flow" o.Mulop.network in
  let reread = Blif.parse text in
  assert (Network.equivalent o.Mulop.network reread);
  Format.printf "@.BLIF roundtrip verified; result:@.%s@." text
