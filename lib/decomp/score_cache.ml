(* Memoization layer for the bound-set search (the paper's inner loop:
   ncc(f, B) over many candidate bound sets).

   Keys are canonical by function fingerprints: an ISF is identified by
   the pair of Bdd.fingerprint digests of its on- and dc-sets.  Unlike
   the node-id keys this cache used to have, fingerprints do not die
   with the per-run Bdd.manager — a score computed in one run can be
   looked up by a later run that builds the same function in a fresh
   manager, which is what the serve daemon's cross-request reuse needs.
   Two structurally equal ISFs share their cache entries, and entries
   of a rewritten ISF can never be looked up by mistake — invalidation
   ([retain]) is purely about bounding memory, never about correctness.

   Scores (triples of ints — the objective term plus the classical
   area pair) are manager-independent and persist across managers.  Cofactor vectors are not: they hold Isf.t values tied to
   the manager that built them, so the vector table is flushed whenever
   the cache is presented with a different manager (physical equality
   on the manager value).

   Cofactor vectors are the expensive part of a score: the table keyed
   by (isf, sorted bound set) lets a vector for B be extended to
   B u {v} by splitting each cached cofactor on v (restricts of small,
   already-restricted BDDs) instead of recomputing all 2^(p+1)
   cofactors from the root; the greedy growth of Bound_select then
   reuses the current candidate's vector for every extension it
   scores, and Curtis retries and later driver iterations reuse
   whatever the earlier searches left behind. *)

type isf_key = string * string

let isf_key m f = (Bdd.fingerprint m (Isf.on f), Bdd.fingerprint m (Isf.dc f))

type score_key = int * (int * int list) * int list * isf_key list

type t = {
  stats : Stats.t;
  cof : (isf_key * int list, Isf.t array) Hashtbl.t;
  scores : (score_key, int * int * int) Hashtbl.t;
  (* the manager whose Isf.t values the [cof] table currently holds *)
  mutable cof_manager : Bdd.manager option;
}

let create ?(stats = Stats.create ()) () =
  {
    stats;
    cof = Hashtbl.create 256;
    scores = Hashtbl.create 256;
    cof_manager = None;
  }

let stats t = t.stats

(* Vectors hold manager-tied values; scores are plain ints.  When the
   cache crosses to a new manager, the vectors of the old one must not
   be served (their nodes belong to a foreign unique table), so the
   vector table restarts empty while the scores carry over. *)
let ensure_manager t m =
  match t.cof_manager with
  | Some m' when m' == m -> ()
  | Some _ ->
      Hashtbl.reset t.cof;
      t.cof_manager <- Some m
  | None -> t.cof_manager <- Some m

let cofactor_vector t m f bound =
  ensure_manager t m;
  t.stats.Stats.cof_lookups <- t.stats.Stats.cof_lookups + 1;
  let fk = isf_key m f in
  let hit_below = ref false in
  let rec get bound =
    match Hashtbl.find_opt t.cof (fk, bound) with
    | Some vec ->
        hit_below := true;
        vec
    | None ->
        let vec =
          match List.rev bound with
          | [] -> [| f |]
          | last :: rev_rest ->
              (* Prefer any cached size-(p-1) subset; otherwise walk the
                 remove-maximum chain, caching every prefix on the way
                 up (total restricts of a cold chain equal those of a
                 from-the-root computation, so this is never worse). *)
              let sub, v =
                match
                  List.find_map
                    (fun v ->
                      let sub = List.filter (fun u -> u <> v) bound in
                      if Hashtbl.mem t.cof (fk, sub) then Some (sub, v)
                      else None)
                    bound
                with
                | Some pair -> pair
                | None -> (List.rev rev_rest, last)
              in
              let vec_sub = get sub in
              t.stats.Stats.restricts <-
                t.stats.Stats.restricts + (2 * Array.length vec_sub);
              Isf.extend_cofactor_vector m vec_sub sub v
        in
        Hashtbl.add t.cof (fk, bound) vec;
        vec
  in
  match Hashtbl.find_opt t.cof (fk, bound) with
  | Some vec ->
      t.stats.Stats.cof_hits <- t.stats.Stats.cof_hits + 1;
      vec
  | None ->
      let vec = get bound in
      if !hit_below then
        t.stats.Stats.cof_extends <- t.stats.Stats.cof_extends + 1
      else t.stats.Stats.cof_fresh <- t.stats.Stats.cof_fresh + 1;
      vec

let score_key m ~lut_size ?(cost = Cost.area) isfs bound =
  (* The cost fragment carries the objective tag and (for the
     arrival-aware objectives) the arrival profile the score was
     computed under, so one cache serves every mode — and every
     network state — without mixing.  Area scores are
     arrival-independent and share one key shape across runs. *)
  (lut_size, Cost.key_of cost bound, bound, List.map (isf_key m) isfs)

let find_score t key = Hashtbl.find_opt t.scores key
let add_score t key value = Hashtbl.replace t.scores key value

let retain t m ~live =
  t.stats.Stats.retains <- t.stats.Stats.retains + 1;
  let alive = Hashtbl.create (List.length live * 2) in
  List.iter (fun f -> Hashtbl.replace alive (isf_key m f) ()) live;
  let before = Hashtbl.length t.cof + Hashtbl.length t.scores in
  Hashtbl.filter_map_inplace
    (fun (fk, _) vec -> if Hashtbl.mem alive fk then Some vec else None)
    t.cof;
  Hashtbl.filter_map_inplace
    (fun (_, _, _, fks) s ->
      if List.for_all (Hashtbl.mem alive) fks then Some s else None)
    t.scores;
  let after = Hashtbl.length t.cof + Hashtbl.length t.scores in
  t.stats.Stats.evicted <- t.stats.Stats.evicted + (before - after)

let clear t =
  Hashtbl.reset t.cof;
  Hashtbl.reset t.scores
