(* Tests for the benchmark substrate: arithmetic specifications checked
   against integer semantics, the reference circuits checked against the
   specs, the catalogue checked for consistency, and end-to-end
   decomposition of the small benchmarks. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let eval_outputs m spec assignment =
  ignore m;
  List.map
    (fun (name, isf) -> (name, Bdd.eval (Isf.on isf) assignment))
    spec.Driver.functions

let word_of outputs prefix =
  (* collect prefixN outputs into an integer *)
  let v = ref 0 in
  List.iter
    (fun (name, b) ->
      if
        String.length name > String.length prefix
        && String.sub name 0 (String.length prefix) = prefix
      then
        match
          int_of_string_opt
            (String.sub name (String.length prefix)
               (String.length name - String.length prefix))
        with
        | Some k when b -> v := !v lor (1 lsl k)
        | Some _ | None -> ())
    outputs;
  !v

let arith_tests =
  [
    Alcotest.test_case "adder spec adds" `Quick (fun () ->
        let m = Bdd.manager () in
        let spec = Arith.adder m ~bits:4 in
        for a = 0 to 15 do
          for b = 0 to 15 do
            let assignment v = if v < 4 then (a lsr v) land 1 = 1 else (b lsr (v - 4)) land 1 = 1 in
            let out = eval_outputs m spec assignment in
            check_int (Printf.sprintf "%d+%d" a b) ((a + b) land 15) (word_of out "f")
          done
        done);
    Alcotest.test_case "partial multiplier multiplies" `Quick (fun () ->
        let m = Bdd.manager () in
        let n = 3 in
        let spec = Arith.partial_multiplier m ~n in
        (* choose partial products from actual operands a, b *)
        for a = 0 to 7 do
          for b = 0 to 7 do
            let assignment v =
              let i = v / n and j = v mod n in
              (a lsr i) land 1 = 1 && (b lsr j) land 1 = 1
            in
            let out = eval_outputs m spec assignment in
            check_int (Printf.sprintf "%d*%d" a b) (a * b) (word_of out "r")
          done
        done);
    Alcotest.test_case "rd84 counts" `Quick (fun () ->
        let m = Bdd.manager () in
        let spec = Arith.rd m ~inputs:8 in
        for a = 0 to 255 do
          let rec weight v = if v = 0 then 0 else (v land 1) + weight (v lsr 1) in
          let out = eval_outputs m spec (fun v -> (a lsr v) land 1 = 1) in
          check_int "weight" (weight a) (word_of out "f")
        done);
    Alcotest.test_case "9sym detects weight band" `Quick (fun () ->
        let m = Bdd.manager () in
        let spec = Arith.sym9 m in
        List.iter
          (fun a ->
            let rec weight v = if v = 0 then 0 else (v land 1) + weight (v lsr 1) in
            let w = weight a in
            let out = eval_outputs m spec (fun v -> (a lsr v) land 1 = 1) in
            check_bool
              (Printf.sprintf "weight %d" w)
              (w >= 3 && w <= 6)
              (List.assoc "f0" out))
          [ 0; 7; 15; 63; 255; 511; 256; 273 ]);
    Alcotest.test_case "z4ml adds 3+3+carry" `Quick (fun () ->
        let m = Bdd.manager () in
        let spec = Arith.z4ml m in
        for a = 0 to 7 do
          for b = 0 to 7 do
            for c = 0 to 1 do
              let assignment v =
                if v < 3 then (a lsr v) land 1 = 1
                else if v < 6 then (b lsr (v - 3)) land 1 = 1
                else c = 1
              in
              let out = eval_outputs m spec assignment in
              check_int "sum" (a + b + c) (word_of out "f")
            done
          done
        done);
    Alcotest.test_case "clip saturates" `Quick (fun () ->
        let m = Bdd.manager () in
        let spec = Arith.clip m in
        let eval x =
          (* x is a signed 9-bit value *)
          let ux = x land 0x1ff in
          let out = eval_outputs m spec (fun v -> (ux lsr v) land 1 = 1) in
          let raw = word_of out "f" in
          (* interpret 5-bit two's complement *)
          if raw >= 16 then raw - 32 else raw
        in
        check_int "0" 0 (eval 0);
        check_int "7" 7 (eval 7);
        check_int "15" 15 (eval 15);
        check_int "16 clips" 15 (eval 16);
        check_int "200 clips" 15 (eval 200);
        check_int "-1" (-1) (eval (-1));
        check_int "-16" (-16) (eval (-16));
        check_int "-17 clips" (-16) (eval (-17));
        check_int "-200 clips" (-16) (eval (-200)));
    Alcotest.test_case "alu2 ops" `Quick (fun () ->
        let m = Bdd.manager () in
        let spec = Arith.alu2 m in
        let eval op a b =
          let assignment v =
            if v < 2 then (op lsr v) land 1 = 1
            else if v < 6 then (a lsr (v - 2)) land 1 = 1
            else (b lsr (v - 6)) land 1 = 1
          in
          let out = eval_outputs m spec assignment in
          (word_of out "r", List.assoc "zero" out)
        in
        check_int "add" ((9 + 5) land 15) (fst (eval 0 9 5));
        check_int "sub" ((9 - 5) land 15) (fst (eval 1 9 5));
        check_int "and" (9 land 5) (fst (eval 2 9 5));
        check_int "xor" (9 lxor 5) (fst (eval 3 9 5));
        check_bool "zero flag" true (snd (eval 3 9 9)));
    Alcotest.test_case "c499 corrects group parity" `Quick (fun () ->
        let m = Bdd.manager () in
        let spec = Arith.c499 m in
        (* no error, enable on: outputs = data *)
        let data = 0xDEADBEEF in
        let parity_of_group t =
          let p = ref false in
          for k = 0 to 3 do
            if (data lsr ((4 * t) + k)) land 1 = 1 then p := not !p
          done;
          !p
        in
        let assignment ~flip_check v =
          if v < 32 then (data lsr v) land 1 = 1
          else if v < 40 then
            let t = v - 32 in
            if flip_check = Some t then not (parity_of_group t)
            else parity_of_group t
          else true (* enable *)
        in
        let out = eval_outputs m spec (assignment ~flip_check:None) in
        List.iteri
          (fun i (_, b) -> check_bool "no error" ((data lsr i) land 1 = 1) b)
          out;
        (* check bit of group 2 flipped: group 2's data bits complement *)
        let out = eval_outputs m spec (assignment ~flip_check:(Some 2)) in
        List.iteri
          (fun i (_, b) ->
            let expected =
              let bit = (data lsr i) land 1 = 1 in
              if i / 4 = 2 then not bit else bit
            in
            check_bool "group 2 flips" expected b)
          out);
  ]

let circuit_tests =
  [
    Alcotest.test_case "conditional-sum adder is an adder (6 bits)" `Quick
      (fun () ->
        let m = Bdd.manager () in
        let bits = 6 in
        let spec = Arith.adder m ~bits in
        let net = Circuits.conditional_sum_adder ~bits in
        let var_of_input name =
          let k = int_of_string (String.sub name 1 (String.length name - 1)) in
          if name.[0] = 'x' then k else bits + k
        in
        check_bool "equivalent" true
          (Network.equivalent_to_spec net m ~var_of_input
             (List.map (fun (n, f) -> (n, Isf.on f)) spec.Driver.functions)));
    Alcotest.test_case "cond-sum adder gate count grows ~ n log n" `Quick
      (fun () ->
        let g8 = (Network.stats (Circuits.conditional_sum_adder ~bits:8)).Network.lut_count in
        let g4 = (Network.stats (Circuits.conditional_sum_adder ~bits:4)).Network.lut_count in
        check_bool "monotone" true (g8 > g4);
        (* the paper counts 90 gates at 8 bits for this adder; our
           structural construction lands in the same class (a handful of
           extra mux gates, minus structural-hashing savings) *)
        check_bool "ballpark of 90" true (g8 >= 60 && g8 <= 110));
    Alcotest.test_case "wallace multiplier multiplies (n=3)" `Quick (fun () ->
        let m = Bdd.manager () in
        let n = 3 in
        let spec = Arith.partial_multiplier m ~n in
        let net = Circuits.wallace_partial_multiplier ~n in
        let var_of_input = Circuits.partial_product_index ~n in
        check_bool "equivalent" true
          (Network.equivalent_to_spec net m ~var_of_input
             (List.map (fun (nm, f) -> (nm, Isf.on f)) spec.Driver.functions)));
    Alcotest.test_case "random cones are deterministic" `Quick (fun () ->
        let n1 = Randnet.cones ~ninputs:12 ~noutputs:5 ~seed:7 () in
        let n2 = Randnet.cones ~ninputs:12 ~noutputs:5 ~seed:7 () in
        check_bool "same function" true (Network.equivalent n1 n2);
        let n3 = Randnet.cones ~ninputs:12 ~noutputs:5 ~seed:8 () in
        check_bool "different seed differs" false (Network.equivalent n1 n3));
    Alcotest.test_case "catalogue arities are as declared" `Quick (fun () ->
        List.iter
          (fun e ->
            (* skip the big ones to keep the test fast *)
            if e.Mcnc.ninputs <= 25 then begin
              let m = Bdd.manager () in
              let spec = e.Mcnc.build m in
              check_int
                (e.Mcnc.name ^ " inputs")
                e.Mcnc.ninputs
                (List.length spec.Driver.input_names);
              check_int
                (e.Mcnc.name ^ " outputs")
                e.Mcnc.noutputs
                (List.length spec.Driver.functions)
            end)
          Mcnc.catalogue);
  ]

let integration_tests =
  (* Full decomposition of every small benchmark with all three
     algorithms, verified against the spec. *)
  let small = [ "rd73"; "z4ml"; "misex1"; "9sym"; "clip"; "5xp1" ] in
  List.map
    (fun name ->
      Alcotest.test_case (Printf.sprintf "end-to-end %s" name) `Slow (fun () ->
          let e = Mcnc.find name in
          let m = Bdd.manager () in
          let spec = e.Mcnc.build m in
          List.iter
            (fun alg ->
              let o = Mulop.run m alg spec in
              check_bool
                (Printf.sprintf "%s/%s verified" name (Mulop.algorithm_name alg))
                true
                (Driver.verify m spec o.Mulop.network);
              check_bool "lut size respected" true
                ((Network.stats o.Mulop.network).Network.max_fanin <= 5);
              check_bool "clbs <= luts" true
                (o.Mulop.clb_count <= o.Mulop.lut_count))
            [ Mulop.Mulop_ii; Mulop.Mulop_dc; Mulop.Mulop_dc_ii ]))
    small

let suite = arith_tests @ circuit_tests @ integration_tests
