let worst = Cost.worst

let score ?cache ?stats ?(lut_size = max_int) ?(cost = Cost.area) m isfs bound =
  let stats =
    match cache with
    | Some c -> Score_cache.stats c
    | None -> ( match stats with Some s -> s | None -> Stats.create ())
  in
  stats.Stats.score_calls <- stats.Stats.score_calls + 1;
  let relevant =
    List.filter_map
      (fun f ->
        let overlap =
          List.length
            (List.filter (fun v -> List.mem v (Isf.support m f)) bound)
        in
        if overlap = 0 then None else Some (f, overlap))
      isfs
  in
  (* A bound set no ISF depends on reduces nothing: decomposing against
     it is a pure renaming.  It must lose against every genuine
     candidate in BOTH scoring orders — the joint-first order's first
     component is >= 1 for any real candidate, so anything smaller
     (e.g. the old (0, 1)) would make a vacuous window seed win the
     whole selection. *)
  if relevant = [] then worst
  else begin
    let key () =
      Score_cache.score_key m ~lut_size ~cost (List.map fst relevant) bound
    in
    let memo =
      match cache with
      | Some c -> Score_cache.find_score c (key ())
      | None -> None
    in
    match memo with
    | Some s ->
        stats.Stats.score_hits <- stats.Stats.score_hits + 1;
        s
    | None ->
        let vector f =
          match cache with
          | Some c -> Score_cache.cofactor_vector c m f bound
          | None -> Isf.cofactor_vector m f bound
        in
        let vecs =
          List.map (fun (f, overlap) -> (vector f, overlap)) relevant
        in
        let nverts = 1 lsl List.length bound in
        let distinct_of vec =
          let tbl = Hashtbl.create 8 in
          for v = 0 to nverts - 1 do
            Hashtbl.replace tbl (Bdd.id (Isf.on vec.(v)), Bdd.id (Isf.dc vec.(v))) ()
          done;
          Hashtbl.length tbl
        in
        let reduction =
          List.fold_left
            (fun acc (vec, overlap) ->
              acc + max 0 (overlap - Bits.ceil_log2 (distinct_of vec)))
            0 vecs
        in
        let joint =
          let tbl = Hashtbl.create 8 in
          for v = 0 to nverts - 1 do
            Hashtbl.replace tbl
              (List.map (fun (vec, _) -> (Bdd.id (Isf.on vec.(v)), Bdd.id (Isf.dc vec.(v)))) vecs)
              ()
          done;
          Hashtbl.length tbl
        in
        (* Net benefit: support reduction minus the realization cost of the
           decomposition functions.  ceil(log2 joint) is the paper's lower
           bound on how many distinct functions the step needs; each costs
           one LUT when the bound set fits a LUT and a small sub-network
           otherwise. *)
        let p = List.length bound in
        let realization =
          (* Bound sets within the LUT size pay nothing extra: their
             functions are single LUTs either way.  Oversized (Curtis) bound
             sets pay the sub-network realization of each estimated
             function. *)
          if p <= lut_size then 0
          else Bits.ceil_log2 joint * (1 + ((p - 2) / max 1 (lut_size - 1)))
        in
        (* Gate-level synthesis keys on the achieved support reduction (a
           missed reducing pair costs a Shannon cascade); at realistic LUT
           sizes the paper's criterion — minimize the communication
           complexity [ncc(f, B)] of the step — comes first and the
           reduction only breaks ties. *)
        let pair =
          if lut_size <= 3 then (-(reduction - realization), joint)
          else (joint + realization, -reduction)
        in
        (* The objective owns the leading component: 0 under Area (the
           ordering collapses to the classical pair), the arrival time
           of the would-be decomposition functions under Delay. *)
        let result = Cost.triple cost ~bound pair in
        (match cache with
        | Some c -> Score_cache.add_score c (key ()) result
        | None -> ());
        result
  end

let select_with_target ?cache ?cost ?(check = ignore) ?(min_size = 2) m cfg
    ~groups ~eligible isfs target =
  if target < 2 then None
  else begin
    let in_eligible v = List.mem v eligible in
    (* Atoms: symmetry groups cut down to eligible variables, split into
       chunks no larger than the target; leftover variables become
       singleton atoms. *)
    let rec chunks k = function
      | [] -> []
      | vars ->
          let rec take acc i = function
            | [] -> (List.rev acc, [])
            | x :: rest when i < k -> take (x :: acc) (i + 1) rest
            | rest -> (List.rev acc, rest)
          in
          let c, rest = take [] 0 vars in
          c :: chunks k rest
    in
    let grouped =
      List.concat_map
        (fun g -> chunks target (List.filter in_eligible (Symmetry.group_vars g)))
        groups
      |> List.filter (fun c -> c <> [])
    in
    (* Groups are additional atoms, not a partition: every variable is
       also available individually, so a misleading potential-symmetry
       group cannot lock the search out of better mixed bound sets. *)
    let singles = List.map (fun v -> [ v ]) eligible in
    let atoms =
      List.filter (fun g -> List.length g >= 2) grouped @ singles
    in
    (* Grow a candidate from a seed atom, adding the atom (or atom
       prefix) that minimizes the score until the target size. *)
    let grow seed =
      let rec loop acc current =
        check ();
        let size = List.length current in
        let acc = if size >= target then List.sort compare current :: acc else acc in
        if size >= target then acc
        else begin
          let room = target - size in
          let extensions =
            List.filter_map
              (fun atom ->
                let atom = List.filter (fun v -> not (List.mem v current)) atom in
                match atom with
                | [] -> None
                | _ ->
                    let take = chunks room atom in
                    (match take with [] -> None | piece :: _ -> Some piece))
              atoms
          in
          match extensions with
          | [] -> acc
          | _ ->
              let scored =
                List.map
                  (fun piece ->
                    let cand = List.sort compare (piece @ current) in
                    ( score ?cache ~lut_size:cfg.Config.lut_size ?cost m isfs
                        cand,
                      piece ))
                  extensions
              in
              let best =
                List.fold_left
                  (fun (bs, bp) (s, p) -> if s < bs then (s, p) else (bs, bp))
                  (List.hd scored |> fst, List.hd scored |> snd)
                  (List.tl scored)
              in
              loop acc (snd best @ current)
        end
      in
      loop [] seed
    in
    (* Seeds: with a small region every atom seeds its own greedy
       growth (the pair search is then effectively exhaustive for
       2-input LUTs); otherwise the largest atoms plus an even spread of
       the rest, up to the configured count. *)
    let seeds =
      (* Gate-level synthesis (tiny LUTs) needs the effectively
         exhaustive pair search — missing the one reducing pair of an
         adder stage costs a Shannon cascade.  At realistic LUT sizes
         the configured seed count reproduces the paper's heuristic
         search effort. *)
      if cfg.Config.lut_size <= 3 && List.length atoms <= 24 then atoms
      else begin
        let by_size =
          List.sort (fun a b -> compare (List.length b) (List.length a)) atoms
        in
        let rec take k = function
          | [] -> []
          | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
        in
        let count = max 1 cfg.Config.seeds in
        let head = take count by_size in
        let n_atoms = List.length atoms in
        let spread =
          List.filteri (fun i _ -> i mod (1 + (n_atoms / count)) = 0) atoms
        in
        (* [head] and [spread] overlap (the largest atoms can appear in
           both); growing the same seed twice would just redo identical
           score queries. *)
        let seen = Hashtbl.create 16 in
        List.filter
          (fun atom ->
            if Hashtbl.mem seen atom then false
            else begin
              Hashtbl.add seen atom ();
              true
            end)
          (head @ spread)
      end
    in
    let window =
      let rec take k = function
        | [] -> []
        | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
      in
      take target eligible
    in
    let candidates = window :: List.concat_map grow seeds in
    let candidates =
      List.filter
        (fun c -> List.length c >= min_size)
        (List.map (List.sort compare) candidates)
    in
    let best_of = function
      | [] -> None
      | first :: rest ->
          let rate cand =
            check ();
            score ?cache ~lut_size:cfg.Config.lut_size ?cost m isfs cand
          in
          Some
            (List.fold_left
               (fun (bs, bc) cand ->
                 let s = rate cand in
                 if s < bs then (s, cand) else (bs, bc))
               (rate first, first)
               rest)
    in
    match best_of candidates with
    | Some (score, cand) -> Some (score, cand)
    | None -> None
  end

let select ?cache ?cost ?check m cfg ~groups ~eligible isfs =
  let eligible = List.sort_uniq compare eligible in
  let n = List.length eligible in
  let lut_target = min cfg.Config.lut_size (n - 1) in
  match
    select_with_target ?cache ?cost ?check m cfg ~groups ~eligible isfs
      lut_target
  with
  | Some (_, cand) -> Some cand
  | None -> None

(* An oversized (Curtis) bound set, one variable beyond the LUT size:
   its decomposition functions become sub-networks, so it is only
   offered when its net benefit is positive — the driver asks for it
   after a LUT-sized step failed to make progress (symmetric
   carry/weight functions at small LUT sizes need exactly this). *)
let select_curtis ?cache ?cost ?check ?(extra = 1) m cfg ~groups ~eligible isfs
    =
  let eligible = List.sort_uniq compare eligible in
  let n = List.length eligible in
  let lut_target = min cfg.Config.lut_size (n - 1) in
  let extended = min (max (cfg.Config.lut_size + extra) 3) (n - 1) in
  if extended <= lut_target then None
  else
    match
      select_with_target ?cache ?cost ?check ~min_size:(lut_target + 1) m cfg
        ~groups ~eligible isfs extended
    with
    | Some (_, cand) ->
        (* The caller only asks after a LUT-sized step failed, where the
           alternative is Shannon expansion; the step itself verifies
           actual progress (don't-care merging often reduces classes the
           distinct-cofactor estimate cannot see), so the best extended
           candidate is always worth one attempt. *)
        Some cand
    | None -> None
