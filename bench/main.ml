(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 6) and runs Bechamel timing benches.

     dune exec bench/main.exe             -- everything
     dune exec bench/main.exe -- table1 figure2 ...   -- selected sections
     dune exec bench/main.exe -- quick    -- skip the slowest circuits

   Sections: table1 table2 figure2 figure3 ablation governor check
   semantics optimize objective dataflow robdd batch serve timing

   Every run emits BENCH_<stamp>.json and BENCH_latest.json
   (Bench_report schema): per-section and per-run wall time, the
   Gc.allocated_bytes delta, Stats counters and LUT/CLB quality
   numbers.  Console tables and JSON render from the same structure,
   so they cannot disagree.

   Flags:
     --out DIR           where BENCH_*.json land (default ".")
     --against FILE      diff this run against a baseline report;
                         exit 1 on stable-counter/quality regression
     --max-regress PCT   regression threshold for --against (default 10)
     --json              print the --against verdict as JSON
     --render-md [FILE]  render a report (default OUT/BENCH_latest.json)
                         as markdown to stdout and exit

   Paper-vs-measured records land in EXPERIMENTS.md, regenerated from
   BENCH_latest.json via --render-md. *)

module R = Bench_report

(* The circuits whose decomposition is slowest; skipped under `quick`. *)
let slow_circuits = [ "C499"; "C880"; "rot"; "count"; "e64" ]

(* Stats plumbing: [section_stats] is the per-run slot [run_driver]
   reads (the harness is single-threaded; the batch section's worker
   domains create their own per-job stats inside Batch), [section_agg]
   accumulates every run of the current section. *)
let section_agg = ref (Stats.create ())
let section_stats = ref (Stats.create ())

(* Measure one run: fresh stats + wall + allocation delta, merged into
   the section aggregate.  Returns everything a [R.run] needs. *)
let with_run_stats f =
  let s = Stats.create () in
  section_stats := s;
  let result, wall, alloc = R.measure f in
  Stats.merge ~into:!section_agg s;
  (result, wall, alloc, s)

let run_driver m cfg spec =
  let report = Driver.decompose_report ~cfg ~stats:!section_stats m spec in
  Network.sweep report.Driver.network

let row label cells = { R.label; cells }

let mk_run ?(stable = true) ?luts ?clbs ?depth ?bdd_nodes ~algorithm ~wall
    ~alloc ~stats name =
  {
    R.name;
    algorithm;
    stable;
    wall;
    alloc_bytes = alloc;
    luts;
    clbs;
    depth;
    bdd_nodes;
    stats;
  }

(* What a section computes; the runner adds name, wall, allocation and
   the aggregated stats. *)
type partial = {
  title : string;
  command : string;
  columns : string list;
  rows : R.row list;
  runs : R.run list;
  notes : string list;
}

let skip_note skipped =
  if skipped = [] then []
  else
    [
      Printf.sprintf "skipped under `quick`: %s"
        (String.concat ", " (List.rev skipped));
    ]

(* ------------------------------------------------------------------ *)
(* Table 1: CLB counts (XC3000) without / with don't-care exploitation *)
(* ------------------------------------------------------------------ *)

let table1 quick =
  let rows = ref [] and runs = ref [] and skipped = ref [] in
  let total_ii = ref 0 and total_dc = ref 0 in
  List.iter
    (fun e ->
      let label = (if e.Mcnc.exact then "" else "~") ^ e.Mcnc.name in
      if quick && List.mem e.Mcnc.name slow_circuits then
        skipped := label :: !skipped
      else begin
        let m = Bdd.manager () in
        let spec = e.Mcnc.build m in
        let ii, ii_w, ii_a, ii_s =
          with_run_stats (fun () ->
              run_driver m (Mulop.config_of Mulop.Mulop_ii) spec)
        in
        let dc, dc_w, dc_a, dc_s =
          with_run_stats (fun () ->
              run_driver m (Mulop.config_of Mulop.Mulop_dc) spec)
        in
        assert (Driver.verify m spec ii);
        assert (Driver.verify m spec dc);
        let cii = Clb.clb_count Clb.First_fit ii in
        let cdc = Clb.clb_count Clb.First_fit dc in
        total_ii := !total_ii + cii;
        total_dc := !total_dc + cdc;
        let gain =
          100.0 *. (1.0 -. (float_of_int cdc /. float_of_int (max 1 cii)))
        in
        let nodes = Bdd.node_count m in
        runs :=
          mk_run ~algorithm:"mulop-dc" ~wall:dc_w ~alloc:dc_a ~stats:dc_s
            ~luts:(Network.stats dc).Network.lut_count ~clbs:cdc
            ~bdd_nodes:nodes e.Mcnc.name
          :: mk_run ~algorithm:"mulopII" ~wall:ii_w ~alloc:ii_a ~stats:ii_s
               ~luts:(Network.stats ii).Network.lut_count ~clbs:cii e.Mcnc.name
          :: !runs;
        rows :=
          row label
            [
              ("in", R.Int e.Mcnc.ninputs);
              ("out", R.Int e.Mcnc.noutputs);
              ("mulopII", R.Int cii);
              ("mulop-dc", R.Int cdc);
              ("gain", R.Pct gain);
              ("time", R.Secs (ii_w +. dc_w));
            ]
          :: !rows
      end)
    Mcnc.catalogue;
  let gain =
    100.0 *. (1.0 -. (float_of_int !total_dc /. float_of_int (max 1 !total_ii)))
  in
  {
    title = "Table 1: CLB counts for XC3000 (n_LUT = 5), mulopII vs mulop-dc";
    command = "dune exec bench/main.exe -- table1";
    columns = [ "circuit"; "in"; "out"; "mulopII"; "mulop-dc"; "gain"; "time" ];
    rows =
      List.rev
        (row "total"
           [
             ("mulopII", R.Int !total_ii);
             ("mulop-dc", R.Int !total_dc);
             ("gain", R.Pct gain);
           ]
        :: !rows);
    runs = List.rev !runs;
    notes =
      [
        "paper: alu2 gains ~35%, total gain > 10%; absolute counts differ \
         because stand-in functions replace the original MCNC netlists for \
         the rows marked '~' (see DESIGN.md section 4)";
        Printf.sprintf "measured total gain: %.1f%%" gain;
      ]
      @ skip_note !skipped;
  }

(* ------------------------------------------------------------------ *)
(* Table 2: mulop-dcII vs published mappers                            *)
(* ------------------------------------------------------------------ *)

let table2 quick =
  let rows = ref [] and runs = ref [] and skipped = ref [] in
  let total_dc = ref 0 and total_dcii = ref 0 in
  List.iter
    (fun e ->
      let label = (if e.Mcnc.exact then "" else "~") ^ e.Mcnc.name in
      if quick && List.mem e.Mcnc.name slow_circuits then
        skipped := label :: !skipped
      else begin
        let m = Bdd.manager () in
        let spec = e.Mcnc.build m in
        let net, wall, alloc, stats =
          with_run_stats (fun () ->
              run_driver m (Mulop.config_of Mulop.Mulop_dc) spec)
        in
        assert (Driver.verify m spec net);
        let first_fit = Clb.clb_count Clb.First_fit net in
        let matching = Clb.clb_count Clb.Max_matching net in
        total_dc := !total_dc + first_fit;
        total_dcii := !total_dcii + matching;
        let luts = (Network.stats net).Network.lut_count in
        runs :=
          mk_run ~algorithm:"mulop-dcII" ~wall ~alloc ~stats ~luts
            ~clbs:matching e.Mcnc.name
          :: !runs;
        rows :=
          row label
            [
              ("mulop-dc", R.Int first_fit);
              ("mulop-dcII", R.Int matching);
              ("luts", R.Int luts);
            ]
          :: !rows
      end)
    Mcnc.catalogue;
  {
    title = "Table 2: CLB counts, mulop-dcII (max-matching CLB merge)";
    command = "dune exec bench/main.exe -- table2";
    columns = [ "circuit"; "mulop-dc"; "mulop-dcII"; "luts" ];
    rows =
      List.rev
        (row "total"
           [
             ("mulop-dc", R.Int !total_dc); ("mulop-dcII", R.Int !total_dcii);
           ]
        :: !rows);
    runs = List.rev !runs;
    notes =
      [
        "the supplied paper text contains Table 2's structure but the OCR \
         lost the per-row values of FGMap / mis-pga(new) / IMODEC, so only \
         our own columns are measured: mulop-dc (first-fit merge) against \
         mulop-dcII (maximum-cardinality matching merge, Murgai et al.); \
         the paper's qualitative claim is that mulop-dcII wins overall";
        Printf.sprintf "matching merge saves %d CLBs over first-fit"
          (!total_dc - !total_dcii);
      ]
      @ skip_note !skipped;
  }

(* ------------------------------------------------------------------ *)
(* Figure 2: 8-bit adder from two-input gates                          *)
(* ------------------------------------------------------------------ *)

let figure2 quick =
  let rows = ref [] and runs = ref [] in
  let sizes = if quick then [ 4; 8 ] else [ 4; 6; 8 ] in
  List.iter
    (fun bits ->
      let m = Bdd.manager () in
      let spec = Arith.adder m ~bits in
      let cs = Network.stats (Circuits.conditional_sum_adder ~bits) in
      let name = Printf.sprintf "adder%d" bits in
      let dc, dc_w, dc_a, dc_s =
        with_run_stats (fun () ->
            run_driver m (Mulop.config_of ~lut_size:2 Mulop.Mulop_dc) spec)
      in
      let ii, ii_w, ii_a, ii_s =
        with_run_stats (fun () ->
            run_driver m (Mulop.config_of ~lut_size:2 Mulop.Mulop_ii) spec)
      in
      assert (Driver.verify m spec dc);
      assert (Driver.verify m spec ii);
      let sdc = Network.stats dc and sii = Network.stats ii in
      runs :=
        mk_run ~algorithm:"mulopII" ~wall:ii_w ~alloc:ii_a ~stats:ii_s
          ~luts:sii.Network.lut_count ~depth:sii.Network.depth name
        :: mk_run ~algorithm:"mulop-dc" ~wall:dc_w ~alloc:dc_a ~stats:dc_s
             ~luts:sdc.Network.lut_count ~depth:sdc.Network.depth name
        :: !runs;
      rows :=
        row (string_of_int bits)
          [
            ("cond-sum", R.Int cs.Network.lut_count);
            ("mulop-dc", R.Int sdc.Network.lut_count);
            ("no-DC", R.Int sii.Network.lut_count);
            ("depth(dc)", R.Int sdc.Network.depth);
          ]
        :: !rows)
    sizes;
  {
    title = "Figure 2: automatically generated adders (two-input gates)";
    command = "dune exec bench/main.exe -- figure2";
    columns = [ "bits"; "cond-sum"; "mulop-dc"; "no-DC"; "depth(dc)" ];
    rows = List.rev !rows;
    runs = List.rev !runs;
    notes =
      [
        "paper reference at 8 bits: 49 two-input gates for the generated \
         adder vs 90 for the conditional-sum adder; shape to reproduce: \
         generated < conditional-sum, and the don't-care concept is what \
         gets it there";
      ];
  }

(* ------------------------------------------------------------------ *)
(* Figure 3: partial multiplier pm_n                                   *)
(* ------------------------------------------------------------------ *)

let figure3 quick =
  let rows = ref [] and runs = ref [] in
  let sizes = if quick then [ 3 ] else [ 3; 4 ] in
  List.iter
    (fun n ->
      let m = Bdd.manager () in
      let spec = Arith.partial_multiplier m ~n in
      let w = Network.stats (Circuits.wallace_partial_multiplier ~n) in
      let name = Printf.sprintf "pm%d" n in
      let dc, dc_w, dc_a, dc_s =
        with_run_stats (fun () ->
            run_driver m (Mulop.config_of ~lut_size:2 Mulop.Mulop_dc) spec)
      in
      let ii, ii_w, ii_a, ii_s =
        with_run_stats (fun () ->
            run_driver m (Mulop.config_of ~lut_size:2 Mulop.Mulop_ii) spec)
      in
      assert (Driver.verify m spec dc);
      assert (Driver.verify m spec ii);
      let gdc = (Network.stats dc).Network.lut_count in
      let gii = (Network.stats ii).Network.lut_count in
      runs :=
        mk_run ~algorithm:"mulopII" ~wall:ii_w ~alloc:ii_a ~stats:ii_s
          ~luts:gii name
        :: mk_run ~algorithm:"mulop-dc" ~wall:dc_w ~alloc:dc_a ~stats:dc_s
             ~luts:gdc name
        :: !runs;
      rows :=
        row (string_of_int n)
          [
            ("wallace", R.Int w.Network.lut_count);
            ("formula", R.Int (Circuits.wallace_gate_formula n));
            ("mulop-dc", R.Int gdc);
            ("no-DC", R.Int gii);
            ( "overhead",
              R.Pct (100.0 *. ((float_of_int gii /. float_of_int (max 1 gdc)) -. 1.0))
            );
          ]
        :: !rows)
    sizes;
  {
    title = "Figure 3: partial multiplier pm_n (two-input gates)";
    command = "dune exec bench/main.exe -- figure3";
    columns = [ "n"; "wallace"; "formula"; "mulop-dc"; "no-DC"; "overhead" ];
    rows = List.rev !rows;
    runs = List.rev !runs;
    notes =
      [
        "paper: the DC assignment is essential — without it pm_4 needs ~75% \
         more gates; the Wallace tree needs 10n^2 - 20n gates";
      ];
  }

(* ------------------------------------------------------------------ *)
(* Ablation: contribution of each DC step                              *)
(* ------------------------------------------------------------------ *)

let ablation _quick =
  let circuits = [ "5xp1"; "alu2"; "clip"; "rd84"; "z4ml"; "f51m" ] in
  let variants =
    [
      ("none (mulopII)", Config.mulop_ii);
      ( "sym only",
        {
          Config.mulop_dc with
          Config.dc_steps =
            { Config.symmetry = true; sharing = false; cms = false };
        } );
      ( "share only",
        {
          Config.mulop_dc with
          Config.dc_steps =
            { Config.symmetry = false; sharing = true; cms = false };
        } );
      ( "cms only",
        {
          Config.mulop_dc with
          Config.dc_steps =
            { Config.symmetry = false; sharing = false; cms = true };
        } );
      ( "share+cms",
        {
          Config.mulop_dc with
          Config.dc_steps =
            { Config.symmetry = false; sharing = true; cms = true };
        } );
      ("all (mulop-dc)", Config.mulop_dc);
    ]
  in
  let rows = ref [] and runs = ref [] in
  List.iter
    (fun (variant, cfg) ->
      let total = ref 0 in
      let cells =
        List.map
          (fun circuit ->
            let e = Mcnc.find circuit in
            let m = Bdd.manager () in
            let spec = e.Mcnc.build m in
            let net, wall, alloc, stats =
              with_run_stats (fun () -> run_driver m cfg spec)
            in
            assert (Driver.verify m spec net);
            let clbs = Clb.clb_count Clb.First_fit net in
            total := !total + clbs;
            runs :=
              mk_run ~algorithm:variant ~wall ~alloc ~stats ~clbs
                ~luts:(Network.stats net).Network.lut_count circuit
              :: !runs;
            (circuit, R.Int clbs))
          circuits
      in
      rows := row variant (cells @ [ ("total", R.Int !total) ]) :: !rows)
    variants;
  {
    title = "Ablation: contribution of the three DC steps (CLBs, XC3000)";
    command = "dune exec bench/main.exe -- ablation";
    columns = ("variant" :: circuits) @ [ "total" ];
    rows = List.rev !rows;
    runs = List.rev !runs;
    notes =
      [
        "each DC step enabled in isolation and in combination, CLB counts \
         per circuit; 'all' is the paper's mulop-dc";
      ];
  }

(* ------------------------------------------------------------------ *)
(* Governor: graceful degradation under resource budgets               *)
(* ------------------------------------------------------------------ *)

let governor quick =
  let ninputs, noutputs = if quick then (30, 8) else (48, 16) in
  let window, gates_per_output = if quick then (12, 24) else (16, 40) in
  let workload = Printf.sprintf "cones%dx%d" ninputs noutputs in
  (* timeout-governed rows depend on elapsed time, so their counters
     and degradation ladders are not reproducible: stable = false. *)
  let variants =
    [
      ("unlimited", true, fun stats -> Budget.create ~stats ());
      ( "effort quick",
        true,
        fun stats -> Budget.create ~effort:Budget.Quick ~stats () );
      ("timeout 1s", false, fun stats -> Budget.create ~timeout:1.0 ~stats ());
      ( "nodes 50k",
        true,
        fun stats -> Budget.create ~node_budget:50_000 ~stats () );
      ("nodes 5k", true, fun stats -> Budget.create ~node_budget:5_000 ~stats ());
      ("timeout 0s", false, fun stats -> Budget.create ~timeout:0.0 ~stats ());
    ]
  in
  let rows = ref [] and runs = ref [] in
  List.iter
    (fun (variant, stable, make_budget) ->
      let m = Bdd.manager () in
      let net =
        Randnet.cones ~ninputs ~noutputs ~window ~gates_per_output ~seed:42 ()
      in
      let spec = Randnet.spec_of_network m net in
      let o, wall, alloc, stats =
        with_run_stats (fun () ->
            let budget = make_budget !section_stats in
            Mulop.run ~budget ~stats:!section_stats m Mulop.Mulop_dc spec)
      in
      assert (Driver.verify m spec o.Mulop.network);
      runs :=
        mk_run ~stable ~algorithm:variant ~wall ~alloc ~stats
          ~luts:o.Mulop.lut_count ~clbs:o.Mulop.clb_count ~depth:o.Mulop.depth
          workload
        :: !runs;
      rows :=
        row variant
          [
            ("luts", R.Int o.Mulop.lut_count);
            ("clbs", R.Int o.Mulop.clb_count);
            ("depth", R.Int o.Mulop.depth);
            ("degraded-to", R.Str (Budget.stage_name o.Mulop.degraded_to));
            ("degr", R.Int (List.length (Stats.degradations stats)));
            ("time", R.Secs wall);
          ]
        :: !rows)
    variants;
  {
    title = "Governor: degradation ladder under deadline / node budgets";
    command = "dune exec bench/main.exe -- governor";
    columns = [ "budget"; "luts"; "clbs"; "depth"; "degraded-to"; "degr"; "time" ];
    rows = List.rev !rows;
    runs = List.rev !runs;
    notes =
      [
        Printf.sprintf
          "a random cone network (%s, seed 42) decomposed under shrinking \
           budgets; exceeding a budget never fails the run: the driver \
           drops symmetry maximization first, then the joint clique cover, \
           finally falls back to plain Shannon/MUX emission — every row is \
           verified against the specification"
          workload;
        "timeout rows are wall-clock-governed and excluded from regression \
         gating (stable = false)";
      ];
  }

(* ------------------------------------------------------------------ *)
(* Assertion-layer overhead: --check=off vs cheap vs full              *)
(* ------------------------------------------------------------------ *)

let check_circuits quick =
  if quick then [ "rd73"; "misex1"; "5xp1" ]
  else [ "rd73"; "rd84"; "misex1"; "5xp1"; "clip"; "sao2"; "alu2" ]

let check_overhead quick =
  let rows = ref [] and runs = ref [] in
  List.iter
    (fun name ->
      let e = Mcnc.find name in
      let one algorithm checks =
        let m = Bdd.manager () in
        let spec = e.Mcnc.build m in
        let o, wall, alloc, stats =
          with_run_stats (fun () ->
              Mulop.run ~checks ~stats:!section_stats m Mulop.Mulop_dc spec)
        in
        runs :=
          mk_run ~algorithm ~wall ~alloc ~stats ~luts:o.Mulop.lut_count
            ~clbs:o.Mulop.clb_count name
          :: !runs;
        (o, wall)
      in
      let o_off, t_off = one "check-off" Diagnostic.Off in
      let o_cheap, t_cheap = one "check-cheap" Diagnostic.Cheap in
      let o_full, t_full = one "check-full" Diagnostic.Full in
      assert (o_off.Mulop.clb_count = o_cheap.Mulop.clb_count);
      assert (o_off.Mulop.clb_count = o_full.Mulop.clb_count);
      let pct t = 100.0 *. ((t /. Float.max 1e-9 t_off) -. 1.0) in
      rows :=
        row name
          [
            ("off", R.Secs t_off);
            ("cheap", R.Secs t_cheap);
            ("full", R.Secs t_full);
            ("cheap ovh", R.Pct (pct t_cheap));
            ("full ovh", R.Pct (pct t_full));
            ("findings", R.Int (List.length o_full.Mulop.findings));
          ]
        :: !rows)
    (check_circuits quick);
  {
    title = "Check: assertion-layer overhead (mulop-dc, n_LUT = 5)";
    command = "dune exec bench/main.exe -- check";
    columns =
      [ "circuit"; "off"; "cheap"; "full"; "cheap ovh"; "full ovh"; "findings" ];
    rows = List.rev !rows;
    runs = List.rev !runs;
    notes =
      [
        "wall time of one mulop-dc run per circuit at each --check level; \
         checks are pure observers: all levels must produce the same CLB \
         count, and a clean run reports zero findings";
        "overhead columns are relative to off; findings are from the full \
         run and must be 0 on a healthy build";
      ];
  }

(* ------------------------------------------------------------------ *)
(* Semantic-pass overhead: --check=full vs --check=deep                *)
(* ------------------------------------------------------------------ *)

let semantics_overhead quick =
  let rows = ref [] and runs = ref [] in
  List.iter
    (fun name ->
      let e = Mcnc.find name in
      let one algorithm checks =
        let m = Bdd.manager () in
        let spec = e.Mcnc.build m in
        let o, wall, alloc, stats =
          with_run_stats (fun () ->
              Mulop.run ~checks ~stats:!section_stats m Mulop.Mulop_dc spec)
        in
        runs :=
          mk_run ~algorithm ~wall ~alloc ~stats ~luts:o.Mulop.lut_count
            ~clbs:o.Mulop.clb_count name
          :: !runs;
        (o, wall)
      in
      let o_full, t_full = one "check-full" Diagnostic.Full in
      let o_deep, t_deep = one "check-deep" Diagnostic.Deep in
      assert (o_full.Mulop.clb_count = o_deep.Mulop.clb_count);
      let sem =
        List.filter
          (fun f ->
            String.length f.Diagnostic.code >= 3
            && String.sub f.Diagnostic.code 0 3 = "SEM")
          o_deep.Mulop.findings
      in
      let pct = 100.0 *. ((t_deep /. Float.max 1e-9 t_full) -. 1.0) in
      rows :=
        row name
          [
            ("full", R.Secs t_full);
            ("deep", R.Secs t_deep);
            ("overhead", R.Pct pct);
            ("SEM findings", R.Int (List.length sem));
          ]
        :: !rows)
    (check_circuits quick);
  {
    title = "Semantics: SDC/ODC dataflow overhead (mulop-dc, n_LUT = 5)";
    command = "dune exec bench/main.exe -- semantics";
    columns = [ "circuit"; "full"; "deep"; "overhead"; "SEM findings" ];
    rows = List.rev !rows;
    runs = List.rev !runs;
    notes =
      [
        "--check=deep adds the semantic SDC/ODC dataflow over the final \
         network against the specification's care set; deep checks are \
         pure observers too: CLB counts must match, and SEM findings on \
         the engine's own output indicate leftover don't cares";
      ];
  }

(* ------------------------------------------------------------------ *)
(* Optimize: the verified DC-driven rewrite loop                       *)
(* ------------------------------------------------------------------ *)

(* Two fixed networks carrying redundancy only the semantic analysis
   can see (the examples/circuits/dc_dups.blif and dc_dead.blif
   stories): e and n are complements, so LUTs over (e, n) never see the
   codes 00 and 11. *)
let redundant_nets () =
  let tt bits =
    let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
    Bv.of_fun (log2 (String.length bits)) (fun i -> bits.[i] = '1')
  in
  let dups =
    let net = Network.create () in
    let a = Network.add_input net "a"
    and b = Network.add_input net "b"
    and c = Network.add_input net "c" in
    let e = Network.add_lut net ~fanins:[ a; b ] ~tt:(tt "1001") in
    let n = Network.add_lut net ~fanins:[ a; b ] ~tt:(tt "0110") in
    let p = Network.add_lut net ~fanins:[ e; n ] ~tt:(tt "0100") in
    let q = Network.add_lut net ~fanins:[ e; n ] ~tt:(tt "1101") in
    Network.set_output net "x" (Network.and_gate net p c);
    Network.set_output net "y" (Network.or_gate net q c);
    net
  in
  let dead =
    let net = Network.create () in
    let a = Network.add_input net "a"
    and b = Network.add_input net "b"
    and c = Network.add_input net "c" in
    let e = Network.add_lut net ~fanins:[ a; b ] ~tt:(tt "1001") in
    let n = Network.add_lut net ~fanins:[ a; b ] ~tt:(tt "0110") in
    let d = Network.add_lut net ~fanins:[ e; n ] ~tt:(tt "0001") in
    Network.set_output net "f"
      (Network.add_lut net ~fanins:[ d; c ] ~tt:(tt "0010"));
    Network.set_output net "g" (Network.and_gate net e c);
    net
  in
  [ ("dc_dups", dups); ("dc_dead", dead) ]

let optimize_bench quick =
  let rows = ref [] and runs = ref [] in
  let one name net =
    let m = Bdd.manager () in
    let o, wall, alloc, stats =
      with_run_stats (fun () -> Optimize.run ~stats:!section_stats m net)
    in
    (* the audit guard is the whole point: a kept outcome is equivalent *)
    assert (o.Optimize.audit = []);
    assert (o.Optimize.luts_after <= o.Optimize.luts_before);
    runs :=
      mk_run ~algorithm:"optimize" ~wall ~alloc ~stats
        ~luts:o.Optimize.luts_after ~clbs:o.Optimize.clbs_after name
      :: !runs;
    rows :=
      row name
        [
          ("luts", R.Int o.Optimize.luts_before);
          ("opt", R.Int o.Optimize.luts_after);
          ("clbs", R.Int o.Optimize.clbs_before);
          ("opt-clbs", R.Int o.Optimize.clbs_after);
          ("rewrites", R.Int (List.length o.Optimize.actions));
          ("time", R.Secs wall);
        ]
      :: !rows
  in
  List.iter (fun (name, net) -> one name net) (redundant_nets ());
  List.iter
    (fun name ->
      let e = Mcnc.find name in
      let m = Bdd.manager () in
      let spec = e.Mcnc.build m in
      let out = Mulop.run ~stats:(Stats.create ()) m Mulop.Mulop_dc spec in
      one name out.Mulop.network)
    (check_circuits quick);
  {
    title = "Optimize: verified DC-driven rewrite loop";
    command = "dune exec bench/main.exe -- optimize";
    columns = [ "circuit"; "luts"; "opt"; "clbs"; "opt-clbs"; "rewrites"; "time" ];
    rows = List.rev !rows;
    runs = List.rev !runs;
    notes =
      [
        "dc_dups / dc_dead are the redundant example networks (semantic \
         duplicates and a constant cone hidden behind complemented \
         reconvergence); the MCNC rows optimize the mulop-dc output, \
         which is usually already tight";
        "every outcome is audit-guarded: the section asserts care-set \
         equivalence and a non-increasing LUT count, so a regression \
         here fails the bench itself, not just the gate";
      ];
  }

(* ------------------------------------------------------------------ *)
(* Extension: ROBDD sizes under symmetrization + symmetric sifting.    *)
(* Step 1 of the paper's DC concept comes from Scholl/Melchior/Hotz/   *)
(* Molitor (EDTC'97), whose own experiment is ROBDD-size reduction of  *)
(* incompletely specified functions; this section reproduces that      *)
(* effect with our substrate.                                          *)
(* ------------------------------------------------------------------ *)

let robdd _quick =
  let rows = ref [] and runs = ref [] in
  let total_before = ref 0 and total_after = ref 0 in
  List.iter
    (fun seed ->
      let name = Printf.sprintf "seed%d" seed in
      let (z_size, z_sifted, s_size, s_sifted), wall, alloc, stats =
        with_run_stats (fun () ->
            let m = Bdd.manager () in
            let st = Random.State.make [| seed |] in
            let nvars = 12 in
            let threshold = 4 + Random.State.int st 4 in
            let rec weight_fun v ones =
              if v = nvars then
                if ones >= threshold then Bdd.one m else Bdd.zero m
              else
                Bdd.ite m (Bdd.var m v)
                  (weight_fun (v + 1) (ones + 1))
                  (weight_fun (v + 1) ones)
            in
            let sym = weight_fun 0 0 in
            let dc = Bdd.random m ~nvars ~density:0.25 st in
            let on = Bdd.diff m sym dc in
            let isf = Isf.make m ~on ~dc in
            let vars = List.init nvars Fun.id in
            (* baseline: all DCs to 0, classical sifting *)
            let zeroed = Isf.on (Isf.assign_all_zero m isf) in
            let z_size = Bdd.size zeroed in
            let z_order =
              Reorder.sift m [ zeroed ]
                (Reorder.identity_of_support m [ zeroed ])
            in
            let z_sifted = Reorder.size_under m [ zeroed ] z_order in
            (* step 1: symmetrize, keep groups adjacent while sifting *)
            let r = Symmetry.maximize m [ isf ] vars in
            let f' =
              match r.Symmetry.functions with
              | [ f' ] -> Isf.on (Isf.assign_all_zero m f')
              | _ -> assert false
            in
            let s_size = Bdd.size f' in
            let groups = List.map Symmetry.group_vars r.Symmetry.groups in
            let start = Reorder.identity_of_support m [ f' ] in
            let s_order =
              if Array.length start >= 2 then
                Reorder.sift_symmetric m [ f' ] ~groups start
              else start
            in
            let s_sifted =
              if Array.length start >= 2 then
                Reorder.size_under m [ f' ] s_order
              else s_size
            in
            (z_size, z_sifted, s_size, s_sifted))
      in
      total_before := !total_before + z_sifted;
      total_after := !total_after + s_sifted;
      runs :=
        mk_run ~algorithm:"sym+sift" ~wall ~alloc ~stats ~bdd_nodes:s_sifted
          name
        :: !runs;
      rows :=
        row name
          [
            ("zeroed", R.Int z_size);
            ("sifted", R.Int z_sifted);
            ("symmetrized", R.Int s_size);
            ("sym+sifted", R.Int s_sifted);
            ( "gain",
              R.Pct
                (100.0
                *. (1.0 -. (float_of_int s_sifted /. float_of_int (max 1 z_sifted)))
                ) );
          ]
        :: !rows)
    [ 1; 2; 3; 4; 5; 6 ];
  {
    title =
      "Extension: ROBDD size under don't-care symmetrization (EDTC'97 effect)";
    command = "dune exec bench/main.exe -- robdd";
    columns = [ "seed"; "zeroed"; "sifted"; "symmetrized"; "sym+sifted"; "gain" ];
    rows = List.rev !rows;
    runs = List.rev !runs;
    notes =
      [
        "near-symmetric ISFs: a weight-threshold function of 12 variables \
         with 25% of the minterms punched out as don't cares; 'zeroed' \
         assigns all DCs to 0 (destroying the symmetry), 'symmetrized' \
         runs the step-1 assignment (recovering it); both are then \
         reordered with (symmetric) sifting";
        Printf.sprintf
          "shared-size totals: zeroed+sifted %d vs symmetrized+sym-sifted %d"
          !total_before !total_after;
      ];
  }

(* ------------------------------------------------------------------ *)
(* Batch: domain-parallel scaling over the small-circuit suite         *)
(* ------------------------------------------------------------------ *)

let batch_scaling quick =
  let circuits =
    if quick then [ "rd73"; "z4ml"; "misex1"; "5xp1" ]
    else
      [
        "rd73"; "rd84"; "z4ml"; "f51m"; "misex1"; "5xp1"; "clip"; "sao2";
        "9sym"; "alu2";
      ]
  in
  let job_list =
    List.map
      (fun name -> Batch.job ~name (fun m -> (Mcnc.find name).Mcnc.build m))
      circuits
  in
  let reports =
    List.map (fun jobs -> (jobs, Batch.run ~jobs job_list)) [ 1; 2; 4 ]
  in
  let counts report =
    List.map
      (fun r ->
        match r.Batch.outcome with
        | Ok s -> (r.Batch.job, s.Batch.lut_count, s.Batch.clb_count)
        | Error e -> failwith (r.Batch.job ^ ": " ^ e.Batch.message))
      report.Batch.results
  in
  let _, rep1 = List.hd reports in
  let base = counts rep1 in
  List.iter (fun (_, rep) -> assert (counts rep = base)) (List.tl reports);
  (* per-job runs come from the 1-domain pass: every job owns its
     manager and stats, so counters are deterministic; wall time and
     cross-domain allocation are not gateable, hence alloc 0. *)
  let runs =
    List.map
      (fun r ->
        match r.Batch.outcome with
        | Ok s ->
            Stats.merge ~into:!section_agg r.Batch.stats;
            mk_run ~algorithm:"mulop-dc" ~wall:r.Batch.seconds ~alloc:0.0
              ~stats:r.Batch.stats ~luts:s.Batch.lut_count
              ~clbs:s.Batch.clb_count ~depth:s.Batch.depth r.Batch.job
        | Error e -> failwith (r.Batch.job ^ ": " ^ e.Batch.message))
      rep1.Batch.results
  in
  let rows =
    List.map
      (fun (jobs, rep) ->
        row (string_of_int jobs)
          [
            ("wall", R.Secs rep.Batch.wall);
            ( "speedup",
              R.Float (rep1.Batch.wall /. Float.max 1e-9 rep.Batch.wall) );
          ])
      reports
  in
  {
    title = "Batch: domain-parallel scaling (mulop-dc, n_LUT = 5)";
    command = "dune exec bench/main.exe -- batch";
    columns = [ "domains"; "wall"; "speedup" ];
    rows;
    runs;
    notes =
      [
        Printf.sprintf
          "the whole suite decomposed by Batch.run with 1, 2 and 4 worker \
           domains; every job owns its BDD manager, budget and stats, so \
           per-circuit results are asserted bit-identical at every domain \
           count (%d circuits); speedup is bounded by the cores the host \
           grants (Domain.recommended_domain_count here: %d)"
          (List.length circuits)
          (Domain.recommended_domain_count ());
        "wall/speedup rows are scheduling-dependent and advisory; the \
         per-circuit runs (1-domain pass) carry the gateable counters";
      ];
  }

(* ------------------------------------------------------------------ *)
(* Serve: daemon cold/warm latency and cache hit rate                  *)
(* ------------------------------------------------------------------ *)

let serve_bench quick =
  let circuits =
    if quick then [ "rd53"; "sym6" ] else [ "rd53"; "sym6"; "maj9"; "parity12" ]
  in
  let path =
    Printf.sprintf "%s/mfd-bench-%d.sock"
      (Filename.get_temp_dir_name ())
      (Unix.getpid ())
  in
  let endpoint = Server.Unix_socket path in
  let ready = Atomic.make false in
  let d =
    Domain.spawn (fun () ->
        Server.run
          ~on_ready:(fun () -> Atomic.set ready true)
          { (Server.default_config endpoint) with Server.jobs = 2 })
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.002
  done;
  let c = Client.connect endpoint in
  let submit name =
    let t0 = Mono.now () in
    match
      Client.call c
        (Proto.Run
           {
             Proto.source = Proto.Target name;
             lut_size = 5;
             algorithm = Mulop.Mulop_dc;
             effort = None;
             timeout = None;
             node_budget = None;
             checks = Diagnostic.Off;
             verify = false;
           })
    with
    | Ok (Proto.Ok_run (_, r)) -> (Mono.now () -. t0, r)
    | Ok (Proto.Err { message; _ }) -> failwith (name ^ ": " ^ message)
    | Ok _ -> failwith (name ^ ": unexpected response")
    | Error msg -> failwith (name ^ ": " ^ msg)
  in
  let rows = ref [] and runs = ref [] in
  List.iter
    (fun name ->
      let cold, r1 = submit name in
      let warm, r2 = submit name in
      assert (not r1.Proto.cached);
      assert r2.Proto.cached;
      assert (r1.Proto.blif = r2.Proto.blif);
      runs :=
        mk_run ~stable:false ~algorithm:"serve" ~wall:cold ~alloc:0.0
          ~stats:(Stats.create ()) ~luts:r1.Proto.luts ~clbs:r1.Proto.clbs
          name
        :: !runs;
      rows :=
        row name
          [
            ("cold", R.Millis (cold *. 1e3));
            ("warm", R.Millis (warm *. 1e3));
            ("speedup", R.Float (cold /. Float.max 1e-9 warm));
          ]
        :: !rows)
    circuits;
  let server_note =
    match Client.call c Proto.Stats with
    | Ok (Proto.Ok_stats (_, s)) ->
        [
          Printf.sprintf
            "server: %d jobs, %d cache hit(s) / %d miss(es) (%.0f%% hit \
             rate), %d entries, %d bytes"
            s.Proto.jobs_served s.Proto.result_hits s.Proto.result_misses
            (100.0
            *. float_of_int s.Proto.result_hits
            /. float_of_int
                 (max 1 (s.Proto.result_hits + s.Proto.result_misses)))
            s.Proto.cache_entries s.Proto.cache_bytes;
        ]
    | _ -> []
  in
  ignore (Client.call c Proto.Shutdown);
  Client.close c;
  Domain.join d;
  {
    title = "Serve: daemon cold/warm latency and cache hit rate";
    command = "dune exec bench/main.exe -- serve";
    columns = [ "circuit"; "cold"; "warm"; "speedup" ];
    rows = List.rev !rows;
    runs = List.rev !runs;
    notes =
      [
        "an in-process `mfd serve` daemon on a Unix socket: every circuit \
         is submitted twice over the same connection; the first pass fills \
         the cross-request result cache (keyed on canonical function \
         fingerprints), the second must be answered from the cache, so the \
         warm latency is pure protocol + lookup cost; latency rows are \
         load-dependent and excluded from gating";
      ]
      @ server_note;
  }

(* ------------------------------------------------------------------ *)
(* Bechamel timing benches: one Test.make per table / figure           *)
(* ------------------------------------------------------------------ *)

let timing _quick =
  let open Bechamel in
  let bench_table1 =
    Test.make ~name:"table1-row rd73 both algorithms"
      (Staged.stage (fun () ->
           let m = Bdd.manager () in
           let spec = (Mcnc.find "rd73").Mcnc.build m in
           let ii = run_driver m (Mulop.config_of Mulop.Mulop_ii) spec in
           let dc = run_driver m (Mulop.config_of Mulop.Mulop_dc) spec in
           ignore
             (Clb.clb_count Clb.First_fit ii + Clb.clb_count Clb.First_fit dc)))
  in
  let bench_table2 =
    Test.make ~name:"table2-row z4ml matching merge"
      (Staged.stage (fun () ->
           let m = Bdd.manager () in
           let spec = (Mcnc.find "z4ml").Mcnc.build m in
           let net = run_driver m (Mulop.config_of Mulop.Mulop_dc) spec in
           ignore (Clb.clb_count Clb.Max_matching net)))
  in
  let bench_figure2 =
    Test.make ~name:"figure2 4-bit adder gates"
      (Staged.stage (fun () ->
           let m = Bdd.manager () in
           let spec = Arith.adder m ~bits:4 in
           ignore
             (run_driver m (Mulop.config_of ~lut_size:2 Mulop.Mulop_dc) spec)))
  in
  let bench_figure3 =
    Test.make ~name:"figure3 pm_2 gates"
      (Staged.stage (fun () ->
           let m = Bdd.manager () in
           let spec = Arith.partial_multiplier m ~n:2 in
           ignore
             (run_driver m (Mulop.config_of ~lut_size:2 Mulop.Mulop_dc) spec)))
  in
  let bench_ablation =
    Test.make ~name:"ablation-cell rd84 sym-only"
      (Staged.stage (fun () ->
           let m = Bdd.manager () in
           let spec = (Mcnc.find "rd84").Mcnc.build m in
           let cfg =
             {
               Config.mulop_dc with
               Config.dc_steps =
                 { Config.symmetry = true; sharing = false; cms = false };
             }
           in
           ignore (run_driver m cfg spec)))
  in
  let benches =
    [
      bench_table1; bench_table2; bench_figure2; bench_figure3; bench_ablation;
    ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  let rows = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analysis = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some (est :: _) ->
              rows := row name [ ("ms/run", R.Millis (est /. 1e6)) ] :: !rows
          | Some [] | None -> rows := row name [] :: !rows)
        analysis)
    benches;
  {
    title = "Timing (Bechamel): one bench per table/figure, small instances";
    command = "dune exec bench/main.exe -- timing";
    columns = [ "bench"; "ms/run" ];
    rows = List.rev !rows;
    runs = [];
    notes =
      [
        "timings are per full decomposition run of the named instance \
         (OLS estimate over Bechamel samples); purely advisory — never \
         part of regression gating";
      ];
  }

(* ------------------------------------------------------------------ *)
(* Objective: area / delay / balanced Pareto points                    *)
(* ------------------------------------------------------------------ *)

let objective_bench quick =
  let load m name =
    match Mcnc.find name with
    | e -> e.Mcnc.build m
    | exception Not_found -> (List.assoc name Extra.catalogue) m
  in
  let rows = ref [] and runs = ref [] and skipped = ref [] in
  let eval ?(lut_size = 5) name =
    let label =
      if lut_size = 5 then name else Printf.sprintf "%s k=%d" name lut_size
    in
    let outcomes =
      List.map
        (fun objective ->
          let m = Bdd.manager () in
          let spec = load m name in
          let o, wall, alloc, s =
            with_run_stats (fun () ->
                Mulop.run ~lut_size ~objective ~stats:!section_stats m
                  Mulop.Mulop_dc spec)
          in
          assert (Driver.verify m spec o.Mulop.network);
          runs :=
            mk_run
              ~algorithm:
                (Printf.sprintf "mulop-dc/%s" (Cost.objective_name objective))
              ~wall ~alloc ~stats:s ~luts:o.Mulop.lut_count
              ~clbs:o.Mulop.clb_count ~depth:o.Mulop.depth label
            :: !runs;
          (o, wall))
        [ Cost.Area; Cost.Delay; Cost.Balanced ]
    in
    match outcomes with
    | [ (a, wa); (d, wd); (b, wb) ] ->
        rows :=
          row label
            [
              ("a-luts", R.Int a.Mulop.lut_count);
              ("a-depth", R.Int a.Mulop.depth);
              ("d-luts", R.Int d.Mulop.lut_count);
              ("d-depth", R.Int d.Mulop.depth);
              ("b-luts", R.Int b.Mulop.lut_count);
              ("b-depth", R.Int b.Mulop.depth);
              ("time", R.Secs (wa +. wd +. wb));
            ]
          :: !rows
    | _ -> assert false
  in
  (* Circuits whose area mapping leaves depth on the table (multi-step
     decompositions); apex7 only outside `quick` — its delay portfolio
     is the one slow run of the section. *)
  List.iter
    (fun name ->
      if quick && name = "apex7" then skipped := name :: !skipped
      else eval name)
    [ "t481"; "parity12"; "count"; "b9"; "duke2"; "apex7" ];
  (* LUT-size sweep at a fixed circuit: the k = 4/6 end-to-end path
     (CLI conventions, k-parametric CLB merging) exercised by the same
     three objectives. *)
  List.iter (fun k -> eval ~lut_size:k "5xp1") [ 4; 5; 6 ];
  {
    title =
      "Objective: area/delay/balanced Pareto points (mulop-dc, n_LUT = 5 \
       plus a k sweep)";
    command = "dune exec bench/main.exe -- objective";
    columns =
      [
        "circuit";
        "a-luts";
        "a-depth";
        "d-luts";
        "d-depth";
        "b-luts";
        "b-depth";
        "time";
      ];
    rows = List.rev !rows;
    runs = List.rev !runs;
    notes =
      [
        "delay and balanced run the two-pass portfolio (arrival-aware pass \
         raced against a plain area pass, winner by the objective's own \
         order), so d-depth <= a-depth on every row by construction";
        "5xp1 rows sweep the LUT size k; CLB counts use the k-parametric \
         merge rule (two LUTs of <= k-1 inputs sharing <= k distinct \
         inputs)";
      ]
      @ skip_note !skipped;
  }

(* ------------------------------------------------------------------ *)
(* Dataflow: the cheap screening tier in front of the exact/SAT engines *)
(* ------------------------------------------------------------------ *)

(* MCNC-shaped stand-ins: deterministic random cone networks (2-input
   gates, xor-biased) sized like apex7 / duke2 / rot, big enough that a
   small deterministic step budget truncates the exact engine and the
   windowed SAT fallback carries real load — which is where screening
   earns its keep. *)
let dataflow_nets quick =
  let mk name ~ninputs ~noutputs ~seed ~window ~gates_per_output =
    ( name,
      Randnet.cones ~ninputs ~noutputs ~window ~gates_per_output ~seed () )
  in
  [
    mk "apex7" ~ninputs:49 ~noutputs:37 ~seed:107 ~window:12
      ~gates_per_output:25;
    mk "duke2" ~ninputs:22 ~noutputs:29 ~seed:229 ~window:12
      ~gates_per_output:30;
  ]
  @
  if quick then []
  else
    [
      mk "rot" ~ninputs:135 ~noutputs:107 ~seed:135 ~window:11
        ~gates_per_output:20;
    ]

let dataflow_bench quick =
  let rows = ref [] and runs = ref [] in
  let skipped = if quick then [ "rot" ] else [] in
  let one (name, net) =
    let luts = (Network.stats net).Network.lut_count in
    (* Deterministic truncation: the step budget counts check() polls,
       which are placed identically with and without screening, so both
       modes hand the same node set to the SAT fallback. *)
    let steps = max 1 luts in
    let deep dataflow =
      let m = Bdd.manager () in
      let var_of_input =
        let tbl = Hashtbl.create 16 in
        List.iteri (fun k (nm, _) -> Hashtbl.add tbl nm k)
          (Network.inputs net);
        fun nm -> Hashtbl.find tbl nm
      in
      let report, wall, alloc, stats =
        with_run_stats (fun () ->
            let check = Careflow.step_limiter ~max_steps:steps () in
            Semantics.analyze_report ~check ~dataflow ~sat_timeout:1e9 m
              ~var_of_input net)
      in
      let cov = report.Semantics.coverage in
      (* mirror the analyzer coverage into the run's stats: these are
         deterministic (step budget + complete SAT fallback), so the
         perf gate tracks them like any other counter *)
      stats.Stats.sem_nodes <-
        cov.Semantics.exact_nodes + cov.Semantics.windowed_nodes;
      stats.Stats.sat_calls <- cov.Semantics.sat_calls;
      stats.Stats.sat_conflicts <- cov.Semantics.sat_conflicts;
      stats.Stats.windows_built <- cov.Semantics.windows_built;
      stats.Stats.df_iterations <- cov.Semantics.df_iterations;
      stats.Stats.df_facts <- cov.Semantics.df_facts;
      stats.Stats.screened_out <- cov.Semantics.screened_out;
      runs :=
        mk_run
          ~algorithm:
            (if dataflow then "deep-lint/screened"
             else "deep-lint/unscreened")
          ~wall ~alloc ~stats ~luts name
        :: !runs;
      (report, wall)
    in
    let r_with, t_with = deep true in
    let r_without, t_without = deep false in
    (* screening is a pure observer: byte-identical findings, strictly
       less SAT work *)
    let norm r = Diagnostic.normalize r.Semantics.findings in
    assert (norm r_with = norm r_without);
    let c = r_with.Semantics.coverage in
    let c0 = r_without.Semantics.coverage in
    assert (c0.Semantics.screened_out = 0);
    assert (c.Semantics.screened_out > 0);
    assert (c.Semantics.sat_calls < c0.Semantics.sat_calls);
    rows :=
      row name
        [
          ("luts", R.Int luts);
          ("screened", R.Int c.Semantics.screened_out);
          ("sat", R.Int c.Semantics.sat_calls);
          ("sat-off", R.Int c0.Semantics.sat_calls);
          ("facts", R.Int c.Semantics.df_facts);
          ("with", R.Secs t_with);
          ("without", R.Secs t_without);
        ]
      :: !rows
  in
  List.iter one (dataflow_nets quick);
  {
    title = "Dataflow: screening tier ahead of the exact/SAT engines";
    command = "dune exec bench/main.exe -- dataflow";
    columns =
      [ "circuit"; "luts"; "screened"; "sat"; "sat-off"; "facts"; "with";
        "without" ];
    rows = List.rev !rows;
    runs = List.rev !runs;
    notes =
      [
        "deep lint under a deterministic step budget (exact engine \
         truncates at the same node in both modes); `sat` vs `sat-off` \
         is the solver-call saving, `screened` counts skipped work \
         units (exact ODC computations + finding-free SAT windows)";
        "the section asserts the screen is a pure observer: findings \
         with and without screening are identical, screened_out > 0 \
         and strictly fewer SAT calls with screening on";
      ]
      @ skip_note (List.rev skipped);
  }

(* ------------------------------------------------------------------ *)
(* CLI and main                                                        *)
(* ------------------------------------------------------------------ *)

let all_sections =
  [
    ("table1", table1);
    ("table2", table2);
    ("figure2", figure2);
    ("figure3", figure3);
    ("ablation", ablation);
    ("governor", governor);
    ("check", check_overhead);
    ("semantics", semantics_overhead);
    ("optimize", optimize_bench);
    ("objective", objective_bench);
    ("dataflow", dataflow_bench);
    ("robdd", robdd);
    ("batch", batch_scaling);
    ("serve", serve_bench);
    ("timing", timing);
  ]

type cli = {
  sections : string list;  (* empty = all *)
  quick : bool;
  out_dir : string;
  against : string option;
  max_regress : float;
  json : bool;
  render_md : string option option;  (* Some file = render FILE and exit *)
}

let usage () =
  prerr_endline
    "usage: bench [SECTION...] [quick] [--out DIR] [--against FILE]\n\
    \             [--max-regress PCT] [--json] [--render-md [FILE]]\n\
     sections: table1 table2 figure2 figure3 ablation governor check\n\
    \          semantics optimize objective dataflow robdd batch serve timing";
  exit 2

let parse_cli () =
  let rec go acc = function
    | [] -> acc
    | "--" :: rest -> go acc rest
    | "quick" :: rest -> go { acc with quick = true } rest
    | "--out" :: dir :: rest -> go { acc with out_dir = dir } rest
    | "--against" :: file :: rest -> go { acc with against = Some file } rest
    | "--max-regress" :: pct :: rest -> (
        match float_of_string_opt pct with
        | Some p when p > 0.0 -> go { acc with max_regress = p } rest
        | _ ->
            Printf.eprintf "bench: --max-regress needs a positive number, got %S\n" pct;
            usage ())
    | "--json" :: rest -> go { acc with json = true } rest
    | "--render-md" :: file :: rest when Filename.check_suffix file ".json" ->
        go { acc with render_md = Some (Some file) } rest
    | "--render-md" :: rest -> go { acc with render_md = Some None } rest
    | name :: rest when List.mem_assoc name all_sections ->
        go { acc with sections = acc.sections @ [ name ] } rest
    | unknown :: _ ->
        Printf.eprintf "bench: unknown argument %S\n" unknown;
        usage ()
  in
  go
    {
      sections = [];
      quick = false;
      out_dir = ".";
      against = None;
      max_regress = 10.0;
      json = false;
      render_md = None;
    }
    (List.tl (Array.to_list Sys.argv))

let run_section name f quick =
  section_agg := Stats.create ();
  let p, wall, alloc = R.measure (fun () -> f quick) in
  let s =
    {
      R.name;
      title = p.title;
      command = p.command;
      columns = p.columns;
      rows = p.rows;
      runs = p.runs;
      notes = p.notes;
      wall;
      alloc_bytes = alloc;
      stats = !section_agg;
    }
  in
  Format.printf "@.%a@." R.pp_section s;
  Format.printf "%a@." Stats.pp !section_agg;
  s

let () =
  let cli = parse_cli () in
  (match cli.render_md with
  | None -> ()
  | Some file ->
      let path =
        Option.value
          ~default:(Filename.concat cli.out_dir "BENCH_latest.json")
          file
      in
      (match R.load path with
      | Error msg ->
          prerr_endline ("bench: " ^ msg);
          exit 2
      | Ok report -> print_string (R.markdown report));
      exit 0);
  Printf.printf
    "mfd benchmark harness — reproduction of C. Scholl, \"Multi-output\n\
     Functional Decomposition with Exploitation of Don't Cares\" (DATE'98)\n";
  let enabled name = cli.sections = [] || List.mem name cli.sections in
  let sections =
    List.filter_map
      (fun (name, f) ->
        if enabled name then Some (run_section name f cli.quick) else None)
      all_sections
  in
  let report =
    {
      R.schema = R.schema_version;
      created = R.created_now ();
      quick = cli.quick;
      sections;
    }
  in
  (match R.write ~dir:cli.out_dir report with
  | Ok (stamped, latest) -> Printf.printf "\nwrote %s and %s\n" stamped latest
  | Error msg ->
      prerr_endline ("bench: cannot write report: " ^ msg);
      exit 2);
  match cli.against with
  | None -> print_endline "done."
  | Some path -> (
      match R.load path with
      | Error msg ->
          prerr_endline ("bench: " ^ msg);
          exit 2
      | Ok base ->
          let v =
            R.diff ~base ~current:report ~max_regress:cli.max_regress
          in
          if cli.json then print_endline (Json.to_string (R.verdict_to_json v))
          else Format.printf "%a@." R.pp_verdict v;
          if not (R.verdict_ok v) then exit 1)
