examples/quickstart.mli:
