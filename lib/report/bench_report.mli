(** Machine-readable bench reports ([BENCH_*.json]): one schema shared
    by the bench harness, [mfd run --json] and the CI perf gate.

    The design premise is that on the single-core container wall-clock
    time is too noisy to gate on, while the engine's own counters
    ({!Stats}), [Gc.allocated_bytes] and the LUT/CLB quality numbers
    are deterministic for a fixed input.  A report therefore carries
    both kinds of data but {!diff} only *gates* on the deterministic
    ("stable") metrics; wall-clock changes are reported as advisories.

    Every emitter stamps {!schema_version} under the key
    ["bench_schema"]; {!of_json} checks it before anything else, so a
    reader meeting a future schema fails with a clean message instead
    of misinterpreting fields. *)

val schema_version : int

(** {1 Report structure} *)

(** A typed table cell.  The tag survives the JSON round trip, so
    renderers (text, markdown) format a reloaded report exactly like a
    fresh one. *)
type value =
  | Int of int
  | Float of float
  | Secs of float  (** duration, rendered as seconds *)
  | Millis of float  (** duration, rendered as milliseconds *)
  | Pct of float  (** ratio in percent, [12.5] renders as [12.5%] *)
  | Str of string

type run = {
  name : string;  (** circuit or workload name, e.g. ["duke2"] *)
  algorithm : string;
      (** algorithm or variant label; part of the {!diff} match key, so
          one circuit may appear once per algorithm in a section *)
  stable : bool;
      (** [false] exempts this run from gating — set for runs whose
          counters depend on elapsed time (timeout-governed, threaded) *)
  wall : float;  (** monotonic wall time, seconds — advisory only *)
  alloc_bytes : float;
      (** [Gc.allocated_bytes] delta — the stable stand-in for time *)
  luts : int option;
  clbs : int option;
  depth : int option;
  bdd_nodes : int option;
      (** live BDD nodes after the run, when the workload exposes it *)
  stats : Stats.t;
}

(** One rendered table row: a label plus named cells.  Rows are what
    the text and markdown renderers show; {!run}s are what {!diff}
    gates on.  Sections carry both so display formatting can change
    without touching the gate. *)
type row = { label : string; cells : (string * value) list }

type section = {
  name : string;  (** the bench CLI section name, e.g. ["table1"] *)
  title : string;
  command : string;
      (** exact command that (re)produces this section's data — printed
          with every rendered table *)
  columns : string list;
      (** column headers; the first names the row-label column *)
  rows : row list;
  runs : run list;
  notes : string list;
  wall : float;
  alloc_bytes : float;
  stats : Stats.t;  (** merge of all per-run stats in the section *)
}

type report = {
  schema : int;
  created : string;  (** UTC timestamp, [YYYY-MM-DDThh:mm:ssZ] *)
  quick : bool;  (** produced under the bench [quick] flag *)
  sections : section list;
}

(** {1 Measurement} *)

val measure : (unit -> 'a) -> 'a * float * float
(** [measure f] runs [f] and returns [(result, wall_seconds,
    alloc_bytes)].  Wall time is {!Mono.now}-based; allocation is the
    [Gc.allocated_bytes] delta, which is deterministic for a fixed
    workload and hence gateable. *)

val created_now : unit -> string
(** Current UTC time in the {!report.created} format. *)

(** {1 JSON} *)

val run_to_json : run -> Json.t
val run_of_json : Json.t -> (run, string) result

val to_json : report -> Json.t

val of_json : Json.t -> (report, string) result
(** Checks ["bench_schema"] first: missing or mismatched versions are
    an [Error] naming both versions, never a misparse. *)

val load : string -> (report, string) result
(** Read and parse a [BENCH_*.json] file. *)

val write : dir:string -> report -> (string * string, string) result
(** Persist a report as [BENCH_<stamp>.json] (stamp derived from
    {!report.created}) and [BENCH_latest.json] in [dir].  Returns both
    paths, timestamped first. *)

(** {1 Rendering} *)

val value_to_string : value -> string

val pp_section : Format.formatter -> section -> unit
(** Console rendering: title, aligned table, notes, wall/alloc
    footer.  The bench harness prints sections only through this, so
    text output and JSON come from the same structure. *)

val section_markdown : section -> string
(** GitHub-flavoured markdown: heading, a provenance line naming
    {!section.command}, the table, notes. *)

val markdown : report -> string
(** All sections of the report as markdown, for
    [bench --render-md]. *)

(** {1 Baseline diffing} *)

type delta = {
  d_section : string;
  d_run : string;  (** ["name/algorithm"] *)
  metric : string;
  base : float;
  current : float;
  change_pct : float;  (** signed; positive means the metric grew *)
}

type verdict = {
  threshold : float;  (** the [max_regress] percentage used *)
  regressions : delta list;
      (** stable metrics that grew beyond threshold + noise floor *)
  improvements : delta list;
      (** stable metrics that shrank beyond the same margin *)
  advisories : delta list;
      (** wall-clock changes (either direction) — never gate *)
  missing : string list;
      (** sections/runs present in base but absent in current: coverage
          loss is a regression *)
}

val diff : base:report -> current:report -> max_regress:float -> verdict
(** Match runs by (section name, run name, algorithm).  Gate on LUT and
    CLB counts, [alloc_bytes], [bdd_nodes] and every {!Stats} counter
    ({!Stats.counter_names}); each metric has an absolute noise floor
    so a ±1 blip on a tiny counter cannot fail CI.  Runs with
    [stable = false] only produce advisories. *)

val verdict_ok : verdict -> bool
(** [true] iff no regressions and no missing coverage. *)

val pp_verdict : Format.formatter -> verdict -> unit
val verdict_to_json : verdict -> Json.t
