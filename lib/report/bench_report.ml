(* Machine-readable bench reports.  See bench_report.mli for the
   design rationale (stable counters gate, wall clock advises). *)

let schema_version = 1

type value =
  | Int of int
  | Float of float
  | Secs of float
  | Millis of float
  | Pct of float
  | Str of string

type run = {
  name : string;
  algorithm : string;
  stable : bool;
  wall : float;
  alloc_bytes : float;
  luts : int option;
  clbs : int option;
  depth : int option;
  bdd_nodes : int option;
  stats : Stats.t;
}

type row = { label : string; cells : (string * value) list }

type section = {
  name : string;
  title : string;
  command : string;
  columns : string list;
  rows : row list;
  runs : run list;
  notes : string list;
  wall : float;
  alloc_bytes : float;
  stats : Stats.t;
}

type report = {
  schema : int;
  created : string;
  quick : bool;
  sections : section list;
}

(* ---- measurement ---- *)

let measure f =
  let a0 = Gc.allocated_bytes () in
  let t0 = Mono.now () in
  let result = f () in
  let wall = Mono.now () -. t0 in
  let alloc = Gc.allocated_bytes () -. a0 in
  (result, wall, alloc)

let created_now () =
  let tm = Unix.gmtime (Mono.wall ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* ---- JSON ---- *)

let value_to_json v =
  let tagged t v = Json.Obj [ ("t", Json.Str t); ("v", v) ] in
  match v with
  | Int n -> tagged "int" (Json.int n)
  | Float f -> tagged "float" (Json.Num f)
  | Secs s -> tagged "secs" (Json.Num s)
  | Millis ms -> tagged "ms" (Json.Num ms)
  | Pct p -> tagged "pct" (Json.Num p)
  | Str s -> tagged "str" (Json.Str s)

let value_of_json j =
  match (Json.mem_str "t" j, Json.member "v" j) with
  | Some "str", Some (Json.Str s) -> Ok (Str s)
  | Some "int", Some v -> (
      match Json.to_int v with
      | Some n -> Ok (Int n)
      | None -> Error "cell tagged \"int\" without an integer value")
  | Some tag, Some v -> (
      match (tag, Json.to_float v) with
      | "float", Some f -> Ok (Float f)
      | "secs", Some s -> Ok (Secs s)
      | "ms", Some ms -> Ok (Millis ms)
      | "pct", Some p -> Ok (Pct p)
      | _ -> Error (Printf.sprintf "unknown or mistyped cell tag %S" tag))
  | _ -> Error "cell without \"t\"/\"v\""

let opt_int name = function
  | None -> []
  | Some n -> [ (name, Json.int n) ]

let run_to_json (r : run) =
  Json.Obj
    ([
       ("name", Json.Str r.name);
       ("algorithm", Json.Str r.algorithm);
       ("stable", Json.Bool r.stable);
       ("wall", Json.Num r.wall);
       ("alloc_bytes", Json.Num r.alloc_bytes);
     ]
    @ opt_int "luts" r.luts @ opt_int "clbs" r.clbs @ opt_int "depth" r.depth
    @ opt_int "bdd_nodes" r.bdd_nodes
    @ [ ("stats", Stats.to_json r.stats) ])

let ( let* ) = Result.bind

let run_of_json j : (run, string) result =
  match j with
  | Json.Obj _ ->
      let* name =
        Option.to_result ~none:"run without \"name\"" (Json.mem_str "name" j)
      in
      let* stats =
        match Json.member "stats" j with
        | None -> Ok (Stats.create ())
        | Some s -> Stats.of_json s
      in
      Ok
        {
          name;
          algorithm = Option.value ~default:"" (Json.mem_str "algorithm" j);
          stable = Option.value ~default:true (Json.mem_bool "stable" j);
          wall = Option.value ~default:0.0 (Json.mem_float "wall" j);
          alloc_bytes =
            Option.value ~default:0.0 (Json.mem_float "alloc_bytes" j);
          luts = Json.mem_int "luts" j;
          clbs = Json.mem_int "clbs" j;
          depth = Json.mem_int "depth" j;
          bdd_nodes = Json.mem_int "bdd_nodes" j;
          stats;
        }
  | _ -> Error "run must be a JSON object"

let row_to_json (r : row) =
  Json.Obj
    [
      ("label", Json.Str r.label);
      ( "cells",
        Json.Arr
          (List.map
             (fun (k, v) ->
               match value_to_json v with
               | Json.Obj fields -> Json.Obj (("k", Json.Str k) :: fields)
               | other -> other)
             r.cells) );
    ]

let row_of_json j : (row, string) result =
  let* label =
    Option.to_result ~none:"row without \"label\"" (Json.mem_str "label" j)
  in
  let* cells =
    List.fold_left
      (fun acc c ->
        let* acc = acc in
        let* k =
          Option.to_result ~none:"cell without \"k\"" (Json.mem_str "k" c)
        in
        let* v = value_of_json c in
        Ok ((k, v) :: acc))
      (Ok [])
      (Option.value ~default:[] (Json.mem_list "cells" j))
  in
  Ok { label; cells = List.rev cells }

let str_list l = Json.Arr (List.map (fun s -> Json.Str s) l)

let section_to_json (s : section) =
  Json.Obj
    [
      ("name", Json.Str s.name);
      ("title", Json.Str s.title);
      ("command", Json.Str s.command);
      ("columns", str_list s.columns);
      ("rows", Json.Arr (List.map row_to_json s.rows));
      ("runs", Json.Arr (List.map run_to_json s.runs));
      ("notes", str_list s.notes);
      ("wall", Json.Num s.wall);
      ("alloc_bytes", Json.Num s.alloc_bytes);
      ("stats", Stats.to_json s.stats);
    ]

let strings_of key j =
  Option.value ~default:[] (Json.mem_list key j)
  |> List.filter_map (function Json.Str s -> Some s | _ -> None)

let map_result f l =
  List.fold_left
    (fun acc x ->
      let* acc = acc in
      let* y = f x in
      Ok (y :: acc))
    (Ok []) l
  |> Result.map List.rev

let section_of_json j : (section, string) result =
  match j with
  | Json.Obj _ ->
      let* name =
        Option.to_result ~none:"section without \"name\""
          (Json.mem_str "name" j)
      in
      let* rows =
        map_result row_of_json (Option.value ~default:[] (Json.mem_list "rows" j))
      in
      let* runs =
        map_result run_of_json (Option.value ~default:[] (Json.mem_list "runs" j))
      in
      let* stats =
        match Json.member "stats" j with
        | None -> Ok (Stats.create ())
        | Some s -> Stats.of_json s
      in
      Ok
        {
          name;
          title = Option.value ~default:name (Json.mem_str "title" j);
          command = Option.value ~default:"" (Json.mem_str "command" j);
          columns = strings_of "columns" j;
          rows;
          runs;
          notes = strings_of "notes" j;
          wall = Option.value ~default:0.0 (Json.mem_float "wall" j);
          alloc_bytes =
            Option.value ~default:0.0 (Json.mem_float "alloc_bytes" j);
          stats;
        }
  | _ -> Error "section must be a JSON object"

let to_json (r : report) =
  Json.Obj
    [
      ("bench_schema", Json.int r.schema);
      ("created", Json.Str r.created);
      ("quick", Json.Bool r.quick);
      ("sections", Json.Arr (List.map section_to_json r.sections));
    ]

let of_json j =
  match j with
  | Json.Obj _ -> (
      match Json.mem_int "bench_schema" j with
      | None -> Error "not a bench report: missing \"bench_schema\""
      | Some v when v <> schema_version ->
          Error
            (Printf.sprintf
               "bench_schema %d is not supported (this binary reads schema %d)"
               v schema_version)
      | Some _ ->
          let* sections =
            map_result section_of_json
              (Option.value ~default:[] (Json.mem_list "sections" j))
          in
          Ok
            {
              schema = schema_version;
              created = Option.value ~default:"" (Json.mem_str "created" j);
              quick = Option.value ~default:false (Json.mem_bool "quick" j);
              sections;
            })
  | _ -> Error "bench report must be a JSON object"

(* ---- files ---- *)

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | text ->
      let* j =
        Result.map_error (Printf.sprintf "%s: %s" path) (Json.parse text)
      in
      Result.map_error (Printf.sprintf "%s: %s" path) (of_json j)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write ~dir report =
  let stamp =
    String.map
      (function ':' -> '\000' | '-' -> '\000' | c -> c)
      report.created
    |> String.split_on_char '\000' |> String.concat ""
  in
  let stamped = Filename.concat dir (Printf.sprintf "BENCH_%s.json" stamp) in
  let latest = Filename.concat dir "BENCH_latest.json" in
  let text = Json.to_string (to_json report) ^ "\n" in
  match
    mkdir_p dir;
    List.iter
      (fun path -> Out_channel.with_open_bin path (fun oc ->
           Out_channel.output_string oc text))
      [ stamped; latest ]
  with
  | () -> Ok (stamped, latest)
  | exception Sys_error msg -> Error msg
  | exception Unix.Unix_error (e, _, arg) ->
      Error (Printf.sprintf "%s: %s" arg (Unix.error_message e))

(* ---- rendering ---- *)

let value_to_string = function
  | Int n -> string_of_int n
  | Float f -> Printf.sprintf "%.2f" f
  | Secs s -> Printf.sprintf "%.3fs" s
  | Millis ms -> Printf.sprintf "%.1fms" ms
  | Pct p -> Printf.sprintf "%.1f%%" p
  | Str s -> s

(* Cells are looked up by column name so a row may omit columns (the
   renderer shows "-") and cell order never matters. *)
let table_matrix (s : section) =
  match s.columns with
  | [] -> []
  | label_col :: cols ->
      (label_col :: cols)
      :: List.map
           (fun r ->
             r.label
             :: List.map
                  (fun c ->
                    match List.assoc_opt c r.cells with
                    | Some v -> value_to_string v
                    | None -> "-")
                  cols)
           s.rows

let pp_section fmt s =
  Format.fprintf fmt "@[<v>== %s ==@," s.title;
  (match table_matrix s with
  | [] -> ()
  | header :: _ as matrix ->
      let widths =
        List.mapi
          (fun i _ ->
            List.fold_left
              (fun w row -> max w (String.length (List.nth row i)))
              0 matrix)
          header
      in
      List.iteri
        (fun ri row ->
          let line =
            List.mapi
              (fun i cell ->
                let w = List.nth widths i in
                if i = 0 then Printf.sprintf "%-*s" w cell
                else Printf.sprintf "%*s" w cell)
              row
            |> String.concat "  "
          in
          Format.fprintf fmt "%s@," line;
          if ri = 0 then
            Format.fprintf fmt "%s@,"
              (String.concat "--"
                 (List.map (fun w -> String.make w '-') widths)))
        matrix);
  List.iter (fun n -> Format.fprintf fmt "note: %s@," n) s.notes;
  Format.fprintf fmt "[%s] wall %.1fs, %.1f MB allocated@]" s.name s.wall
    (s.alloc_bytes /. 1048576.0)

let md_escape s =
  String.concat "\\|" (String.split_on_char '|' s)

let section_markdown s =
  let b = Buffer.create 512 in
  Buffer.add_string b (Printf.sprintf "### %s\n\n" s.title);
  Buffer.add_string b
    (Printf.sprintf
       "*Generated from `BENCH_latest.json`; reproduce with `%s`.*\n\n"
       s.command);
  (match table_matrix s with
  | [] -> ()
  | header :: body ->
      let line row =
        Buffer.add_string b
          ("| " ^ String.concat " | " (List.map md_escape row) ^ " |\n")
      in
      line header;
      Buffer.add_string b
        ("|" ^ String.concat "|" (List.map (fun _ -> "---") header) ^ "|\n");
      List.iter line body);
  if s.notes <> [] then begin
    Buffer.add_char b '\n';
    List.iter (fun n -> Buffer.add_string b (Printf.sprintf "- %s\n" n)) s.notes
  end;
  Buffer.contents b

let markdown r =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf
       "<!-- Tables below are generated: bench run of %s%s (bench_schema %d).\n\
       \     Do not edit by hand; rerun the bench and `bench --render-md`. -->\n\n"
       r.created
       (if r.quick then ", quick mode" else "")
       r.schema);
  List.iter
    (fun s ->
      Buffer.add_string b (section_markdown s);
      Buffer.add_char b '\n')
    r.sections;
  Buffer.contents b

(* ---- baseline diffing ---- *)

type delta = {
  d_section : string;
  d_run : string;
  metric : string;
  base : float;
  current : float;
  change_pct : float;
}

type verdict = {
  threshold : float;
  regressions : delta list;
  improvements : delta list;
  advisories : delta list;
  missing : string list;
}

(* Absolute noise floors: a metric change must clear both the relative
   threshold and this floor to count.  Quality metrics (LUT/CLB/depth)
   have no floor — they are exactly reproducible. *)
let floor_of = function
  | "alloc_bytes" -> 4096.0
  | "bdd_nodes" -> 32.0
  | "luts" | "clbs" | "depth" -> 0.0
  | _ -> 32.0 (* Stats counters *)

let run_metrics (r : run) =
  let opt name v = Option.map (fun n -> (name, float_of_int n)) v in
  List.filter_map Fun.id
    [
      opt "luts" r.luts;
      opt "clbs" r.clbs;
      opt "depth" r.depth;
      opt "bdd_nodes" r.bdd_nodes;
      Some ("alloc_bytes", r.alloc_bytes);
    ]
  @ List.filter_map
      (fun name ->
        match Stats.counter r.stats name with
        | 0 -> None (* counter not exercised by this workload *)
        | n -> Some ("stats." ^ name, float_of_int n))
      Stats.counter_names

let change_pct ~base ~current =
  if base = 0.0 then if current = 0.0 then 0.0 else 100.0
  else (current -. base) /. base *. 100.0

let diff ~base ~current ~max_regress =
  let regressions = ref [] in
  let improvements = ref [] in
  let advisories = ref [] in
  let missing = ref [] in
  let delta d_section d_run metric b c =
    { d_section; d_run; metric; base = b; current = c;
      change_pct = change_pct ~base:b ~current:c }
  in
  let find_section name =
    List.find_opt (fun s -> s.name = name) current.sections
  in
  let find_run sec (r : run) =
    List.find_opt
      (fun (r' : run) -> r'.name = r.name && r'.algorithm = r.algorithm)
      sec.runs
  in
  let run_key (r : run) =
    if r.algorithm = "" then r.name else r.name ^ "/" ^ r.algorithm
  in
  List.iter
    (fun bsec ->
      match find_section bsec.name with
      | None -> missing := Printf.sprintf "section %s" bsec.name :: !missing
      | Some csec ->
          List.iter
            (fun brun ->
              match find_run csec brun with
              | None ->
                  missing :=
                    Printf.sprintf "run %s/%s" bsec.name (run_key brun)
                    :: !missing
              | Some crun ->
                  let key = run_key brun in
                  (* wall clock: advisory both ways, never gates *)
                  let wall_floor = 0.05 in
                  if
                    abs_float (crun.wall -. brun.wall) > wall_floor
                    && abs_float
                         (change_pct ~base:brun.wall ~current:crun.wall)
                       > max_regress
                  then
                    advisories :=
                      delta bsec.name key "wall" brun.wall crun.wall
                      :: !advisories;
                  if brun.stable && crun.stable then
                    let cmetrics = run_metrics crun in
                    List.iter
                      (fun (metric, b) ->
                        let c =
                          Option.value ~default:0.0
                            (List.assoc_opt metric cmetrics)
                        in
                        let pct = change_pct ~base:b ~current:c in
                        if abs_float (c -. b) > floor_of metric then
                          if pct > max_regress then
                            regressions :=
                              delta bsec.name key metric b c :: !regressions
                          else if pct < -.max_regress then
                            improvements :=
                              delta bsec.name key metric b c :: !improvements)
                      (run_metrics brun))
            bsec.runs)
    base.sections;
  {
    threshold = max_regress;
    regressions = List.rev !regressions;
    improvements = List.rev !improvements;
    advisories = List.rev !advisories;
    missing = List.rev !missing;
  }

let verdict_ok v = v.regressions = [] && v.missing = []

let pp_delta fmt d =
  Format.fprintf fmt "%s %s %s: %g -> %g (%+.1f%%)" d.d_section d.d_run
    d.metric d.base d.current d.change_pct

let pp_verdict fmt v =
  Format.fprintf fmt "@[<v>";
  List.iter
    (fun d -> Format.fprintf fmt "REGRESSION  %a@," pp_delta d)
    v.regressions;
  List.iter (fun m -> Format.fprintf fmt "MISSING     %s@," m) v.missing;
  List.iter
    (fun d -> Format.fprintf fmt "improvement %a@," pp_delta d)
    v.improvements;
  List.iter
    (fun d -> Format.fprintf fmt "wall (advisory) %a@," pp_delta d)
    v.advisories;
  if verdict_ok v then
    Format.fprintf fmt
      "OK: no stable-counter or quality regression beyond %.0f%%" v.threshold
  else
    Format.fprintf fmt "FAIL: %d regression(s), %d missing (threshold %.0f%%)"
      (List.length v.regressions)
      (List.length v.missing)
      v.threshold;
  Format.fprintf fmt "@]"

let delta_to_json d =
  Json.Obj
    [
      ("section", Json.Str d.d_section);
      ("run", Json.Str d.d_run);
      ("metric", Json.Str d.metric);
      ("base", Json.Num d.base);
      ("current", Json.Num d.current);
      ("change_pct", Json.Num d.change_pct);
    ]

let verdict_to_json v =
  Json.Obj
    [
      ("bench_schema", Json.int schema_version);
      ("ok", Json.Bool (verdict_ok v));
      ("threshold_pct", Json.Num v.threshold);
      ("regressions", Json.Arr (List.map delta_to_json v.regressions));
      ("improvements", Json.Arr (List.map delta_to_json v.improvements));
      ("advisories", Json.Arr (List.map delta_to_json v.advisories));
      ("missing", str_list v.missing);
    ]
