lib/benchmarks/extra.ml: Bdd Bvec Driver Fun List Printf
