type spec = {
  input_names : string list;
  functions : (string * Isf.t) list;
}

type internal_error = Iteration_limit of int | Worklist_deadlock

exception Internal of internal_error

let internal_error_message = function
  | Iteration_limit n ->
      Printf.sprintf
        "Driver.decompose: iteration budget exhausted after %d iterations (no progress)"
        n
  | Worklist_deadlock -> "Driver.decompose: deadlock in the worklist"

let () =
  Printexc.register_printer (function
    | Internal e -> Some (internal_error_message e)
    | _ -> None)

type report = {
  network : Network.t;
  step_count : int;
  shannon_count : int;
  alpha_count : int;
  degraded_to : Budget.stage;
  findings : Diagnostic.t list;
}

let src = Logs.Src.create "mfd.driver" ~doc:"decomposition driver"

module Log = (val Logs.src_log src : Logs.LOG)

let spec_of_csf m input_names functions =
  { input_names; functions = List.map (fun (n, f) -> (n, Isf.of_csf m f)) functions }

type sink = Output of string | Alpha_var of int

type item = { sink : sink; isf : Isf.t; shannon_depth : int }

let sink_name = function
  | Output name -> "output " ^ name
  | Alpha_var v -> Printf.sprintf "alpha a%d" (-v)

let decompose_report ?(cfg = Config.default) ?(budget = Budget.unlimited)
    ?(checks = Diagnostic.Off) ?(stats = Stats.create ()) m spec =
  let cfg = Budget.apply_effort budget cfg in
  (* The [--check] assertion layer: pure observers at the driver's phase
     boundaries.  [cheap] covers the bookkeeping invariants, [full] adds
     the BDD-equivalence obligations.  Findings are collected (and
     mirrored into {!Stats}), never raised — a checked run produces the
     same network as an unchecked one. *)
  let cheap = Diagnostic.at_least checks Diagnostic.Cheap in
  let full = Diagnostic.at_least checks Diagnostic.Full in
  let deep = Diagnostic.at_least checks Diagnostic.Deep in
  let findings = ref [] in
  let emit_finding d =
    findings := d :: !findings;
    Stats.add_finding stats
      ~severity:(Diagnostic.severity_name d.Diagnostic.severity)
      ~code:d.Diagnostic.code
      ~message:
        (match d.Diagnostic.loc with
        | Some l -> l ^ ": " ^ d.Diagnostic.message
        | None -> d.Diagnostic.message)
  in
  (* Degraded view of the configuration: each budget-degradation stage
     turns off the don't-care phase it names.  [lut_size] never changes,
     so the emission helpers below can keep capturing [cfg]. *)
  let dcfg () =
    match Budget.stage budget with
    | Budget.Full -> cfg
    | Budget.No_symmetry ->
        {
          cfg with
          Config.dc_steps = { cfg.Config.dc_steps with Config.symmetry = false };
        }
    | Budget.No_sharing | Budget.Shannon_only ->
        {
          cfg with
          Config.dc_steps =
            {
              Config.symmetry = false;
              sharing = false;
              cms = cfg.Config.dc_steps.Config.cms;
            };
          (* per-output greedy coloring: skip the exact search too *)
          Config.exact_coloring_limit = 0;
        }
  in
  Budget.attach budget m;
  Fun.protect ~finally:(fun () -> Budget.detach budget m) @@ fun () ->
  let net = Network.create () in
  (* One scoring cache for the whole run: it persists across greedy
     growth, Curtis retries, and driver iterations (recursion levels),
     and is trimmed whenever a committed step rewrites ISFs.  Tied to
     [m]; counters land in this run's [stats]. *)
  let cache = Score_cache.create ~stats () in
  let signal_of_var : (int, Network.signal) Hashtbl.t = Hashtbl.create 64 in
  List.iteri
    (fun k name -> Hashtbl.replace signal_of_var k (Network.add_input net name))
    spec.input_names;
  (* Arrival time of a variable: the LUT level of the signal realizing
     it, read from the network as it stands when the score is taken —
     inputs at 0, decomposition-function outputs at their emission
     depth, not-yet-emitted variables optimistically at 0.  Under the
     [Area] objective the cost ignores arrivals entirely, so the area
     path stays byte-identical. *)
  let arrival v =
    match Hashtbl.find_opt signal_of_var v with
    | Some s -> Network.level net s
    | None -> 0
  in
  let cost = Cost.make cfg.Config.objective ~arrival in
  (* Fresh variables (decomposition-function outputs) are allocated
     with negative indices, i.e. ABOVE the inputs in the BDD order.
     With the alpha variables on top, a composition function is a
     shallow tree of alpha minterms over the class cofactors and its
     construction is linear; with them at the bottom every disjunction
     interleaves the free-variable structures quadratically. *)
  let next_var = ref (-1) in
  let fresh_var () =
    let v = !next_var in
    decr next_var;
    v
  in
  let worklist =
    ref
      (List.map
         (fun (name, isf) ->
           let isf = if cfg.Config.zero_dc_on_entry then Isf.assign_all_zero m isf else isf in
           { sink = Output name; isf; shannon_depth = 0 })
         spec.functions)
  in
  if cheap then
    List.iter
      (fun (name, isf) ->
        Option.iter emit_finding
          (Invariant.well_formed_parts m ~where:("spec output " ^ name)
             ~on:(Isf.on isf) ~dc:(Isf.dc isf)))
      spec.functions;
  let step_count = ref 0 and shannon_count = ref 0 and alpha_count = ref 0 in
  let bound_var v = Hashtbl.mem signal_of_var v in
  let signal v = Hashtbl.find signal_of_var v in
  let bind sink s =
    match sink with
    | Output name -> Network.set_output net name s
    | Alpha_var v -> Hashtbl.replace signal_of_var v s
  in
  (* Emit an item whose support fits a LUT and whose variables all have
     signals.  Remaining don't cares are assigned 0 at this point: the
     LUT content is free, the LUT count is not. *)
  let try_emit item =
    let sup = Isf.support m item.isf in
    if List.length sup <= cfg.Config.lut_size && List.for_all bound_var sup then begin
      let sup_arr = Array.of_list sup in
      let on = Isf.on item.isf in
      let tt =
        Bv.of_fun (Array.length sup_arr) (fun idx ->
            Bdd.eval on (fun v ->
                let rec pos k = if sup_arr.(k) = v then k else pos (k + 1) in
                (idx lsr pos 0) land 1 = 1))
      in
      if full then
        Option.iter emit_finding
          (Invariant.check_lut_realizes m
             ~where:("emit " ^ sink_name item.sink)
             item.isf ~support:sup ~tt);
      let s = Network.add_lut net ~fanins:(List.map signal sup) ~tt in
      bind item.sink s;
      true
    end
    else false
  in
  let emit_ready () =
    let rec pass () =
      let before = List.length !worklist in
      worklist := List.filter (fun item -> not (try_emit item)) !worklist;
      if List.length !worklist < before then pass ()
    in
    pass ()
  in
  (* Shannon/MUX fallback for non-decomposable items.  Cofactors are
     memoized by ISF identity so that repeated fallbacks share subcircuits
     (otherwise a cascade of expansions duplicates whole cofactor trees). *)
  let shannon_cache : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  let shannon item =
    incr shannon_count;
    let sup = Isf.support m item.isf in
    let v =
      match List.filter bound_var sup with
      | v :: _ -> v
      | [] -> invalid_arg "Driver: item with no bound variable in support"
    in
    let depth = item.shannon_depth + 1 in
    let cofactor_var b =
      let f = Isf.restrict m item.isf v b in
      let key = (Bdd.id (Isf.on f), Bdd.id (Isf.dc f)) in
      match Hashtbl.find_opt shannon_cache key with
      | Some var -> (var, [])
      | None ->
          let var = fresh_var () in
          Hashtbl.add shannon_cache key var;
          (var, [ { sink = Alpha_var var; isf = f; shannon_depth = depth } ])
    in
    let a, new0 = cofactor_var false in
    let b, new1 = cofactor_var true in
    let items0 = new0 @ new1 in
    if cfg.Config.lut_size >= 3 then begin
      let mux = Bdd.ite m (Bdd.var m v) (Bdd.var m b) (Bdd.var m a) in
      { sink = item.sink; isf = Isf.of_csf m mux; shannon_depth = depth }
      :: items0
    end
    else begin
      (* 2-input gates: f = (v /\ f1) \/ (~v /\ f0) *)
      let c = fresh_var () and d = fresh_var () in
      let and1 = Bdd.and_ m (Bdd.var m v) (Bdd.var m b) in
      let and2 = Bdd.and_ m (Bdd.nvar m v) (Bdd.var m a) in
      let orr = Bdd.or_ m (Bdd.var m c) (Bdd.var m d) in
      { sink = item.sink; isf = Isf.of_csf m orr; shannon_depth = depth }
      :: { sink = Alpha_var c; isf = Isf.of_csf m and1; shannon_depth = depth }
      :: { sink = Alpha_var d; isf = Isf.of_csf m and2; shannon_depth = depth }
      :: items0
    end
  in
  (* Direct Shannon cofactor-tree emission: for items that repeatedly
     resisted decomposition (two Shannon rounds without a successful
     step), expanding the remaining cofactor tree in one go avoids
     rescanning the worklist once per split.  Subcircuits are shared via
     a memo on the ISF identity, so this is essentially a mapping of the
     (shared) BDD cofactor structure onto MUX LUTs. *)
  let mux_memo : (int * int, Network.signal) Hashtbl.t = Hashtbl.create 64 in
  let rec emit_mux_tree isf =
    let key = (Bdd.id (Isf.on isf), Bdd.id (Isf.dc isf)) in
    match Hashtbl.find_opt mux_memo key with
    | Some s -> s
    | None ->
        let sup = Isf.support m isf in
        let s =
          if List.length sup <= cfg.Config.lut_size then begin
            let ok = List.for_all bound_var sup in
            if not ok then
              invalid_arg "Driver.emit_mux_tree: unbound variable";
            let sup_arr = Array.of_list sup in
            let on = Isf.on isf in
            let tt =
              Bv.of_fun (Array.length sup_arr) (fun idx ->
                  Bdd.eval on (fun v ->
                      let rec pos k = if sup_arr.(k) = v then k else pos (k + 1) in
                      (idx lsr pos 0) land 1 = 1))
            in
            if full then
              Option.iter emit_finding
                (Invariant.check_lut_realizes m ~where:"mux-tree leaf" isf
                   ~support:sup ~tt);
            Network.add_lut net ~fanins:(List.map signal sup) ~tt
          end
          else begin
            incr shannon_count;
            let v = match sup with v :: _ -> v | [] -> assert false in
            let s0 = emit_mux_tree (Isf.restrict m isf v false) in
            let s1 = emit_mux_tree (Isf.restrict m isf v true) in
            if cfg.Config.lut_size >= 3 then
              Network.mux_gate net ~sel:(signal v) ~hi:s1 ~lo:s0
            else begin
              let a = Network.and_gate net (signal v) s1 in
              let b =
                Network.and_gate net (Network.not_gate net (signal v)) s0
              in
              Network.or_gate net a b
            end
          end
        in
        Hashtbl.add mux_memo key s;
        s
  in
  let support_size item = List.length (Isf.support m item.isf) in
  (* Shannon/MUX fallback for one item, shared between the no-progress
     path and the terminal [Shannon_only] degradation stage.  Exempt
     from budget checks: this is the guaranteed-progress path, and
     interrupting it would waste work without saving anything. *)
  let fallback ?(force = false) target_sink =
    Budget.exempt budget @@ fun () ->
    let target = List.find (fun it -> it.sink = target_sink) !worklist in
    let rest = List.filter (fun it -> it.sink <> target_sink) !worklist in
    if
      (force || target.shannon_depth >= 2)
      && List.for_all bound_var (Isf.support m target.isf)
    then begin
      bind target.sink (emit_mux_tree target.isf);
      worklist := rest
    end
    else worklist := shannon target @ rest
  in
  (* One full decomposition attempt on [primary]'s region: symmetry
     maximization, bound-set selection, the decomposition step (with
     Curtis retries at gate level), and the Shannon fallback if nothing
     progressed.  May raise [Budget.Out_of_budget] from any of the
     search phases; network emission and worklist commitment are exempt,
     so an abort always leaves a consistent state (at worst some
     already-emitted decomposition functions go unreferenced and are
     swept later). *)
  let attempt primary region =
    let cfg = dcfg () in
    let participates it =
      List.exists (fun v -> List.mem v region) (Isf.support m it.isf)
      && support_size it > cfg.Config.lut_size
    in
    let participants, others = List.partition participates !worklist in
    let participants = Array.of_list participants in
    let isfs = Array.map (fun it -> it.isf) participants in
    (* --- step 1: symmetrize (or just detect groups).  On wide
       regions the quadratic pair search is throttled: only the
       variables shared by the most participants are considered,
       and the merge budget shrinks with the region size. *)
    let sym_vars =
      let limit = 14 in
      if List.length region <= limit then region
      else begin
        let frequency v =
          Array.fold_left
            (fun acc f -> if List.mem v (Isf.support m f) then acc + 1 else acc)
            0 isfs
        in
        region
        |> List.map (fun v -> (-frequency v, v))
        |> List.sort compare
        |> List.filteri (fun i _ -> i < limit)
        |> List.map snd |> List.sort compare
      end
    in
    let clock = Stats.clock stats in
    let phase name =
      let dt = Stats.mark clock name in
      Log.debug (fun k -> k "  %s: %.2fs" name dt)
    in
    let merge_budget =
      min cfg.Config.symmetry_budget
        (8 * List.length sym_vars * List.length sym_vars)
    in
    let sym_check = Budget.checker budget ~where:"symmetry" in
    let groups =
      if cfg.Config.dc_steps.Config.symmetry then
        (* Potential symmetries (don't cares make the exchanges
           possible); the assignments are NOT committed yet — only
           the groups that land inside the bound set will be. *)
        (Symmetry.maximize ~budget:merge_budget ~check:sym_check m
           (Array.to_list isfs) sym_vars)
          .Symmetry.groups
      else
        Symmetry.partition ~budget:merge_budget ~check:sym_check m
          (Array.to_list (Array.map Isf.on isfs))
          sym_vars
    in
    phase "symmetry";
    (* --- bound set *)
    let select_check = Budget.checker budget ~where:"bound-select" in
    let bound =
      match
        Bound_select.select ~cache ~cost ~check:select_check m cfg ~groups
          ~eligible:region (Array.to_list isfs)
      with
      | Some b -> b
      | None -> []
    in
    phase "bound-select";
    (* --- step 1 commitment: symmetrize exactly the group parts
       that ended up inside the bound set.  Symmetries across the
       bound/free boundary are not exploitable by this step (and
       per the paper step 3 would not preserve them anyway). *)
    let isfs =
      if cfg.Config.dc_steps.Config.symmetry && bound <> [] then begin
        let committed_groups = ref [] in
        let commit fs group =
          let inside = List.filter (fun (v, _) -> List.mem v bound) group in
          if List.length inside < 2 then fs
          else
            match Symmetry.close_group m fs inside with
            | Some fs' ->
                (* Specifying don't cares can also make vertices
                   distinct; only keep the assignment when the
                   class count of this bound set does not grow. *)
                let unchanged = List.for_all2 Isf.equal fs' fs in
                (* The accept/reject comparison must use the same
                   scoring mode as the selection that chose
                   [bound]: without [~lut_size], gate-level
                   configs (lut_size <= 3) would commit by the
                   class-count-first criterion after selecting by
                   the reduction-first one. *)
                if
                  unchanged
                  || Bound_select.score ~cache ~lut_size:cfg.Config.lut_size
                       ~cost m fs' bound
                     < Bound_select.score ~cache ~lut_size:cfg.Config.lut_size
                         ~cost m fs bound
                then begin
                  committed_groups := inside :: !committed_groups;
                  fs'
                end
                else fs
            | None -> fs
        in
        let committed = List.fold_left commit (Array.to_list isfs) groups in
        if cheap then
          List.iteri
            (fun i fine ->
              Option.iter emit_finding
                (Invariant.check_refines m ~where:"symmetry-commit"
                   ~coarse:isfs.(i) ~fine))
            committed;
        if full then
          List.iter
            (fun group ->
              Option.iter emit_finding
                (Invariant.check_group_symmetric m ~where:"symmetry-commit"
                   committed group))
            !committed_groups;
        Array.of_list committed
      end
      else isfs
    in
    phase "symmetry-commit";
    let alpha_items = ref [] in
    (* Run one decomposition step against [bound]; commit (emit
       the decomposition functions, replace the participants'
       composition functions) only if some output got strictly
       smaller or LUT-sized — the other outputs still profit from
       the shared functions.  A step that reduces nothing is
       rolled back entirely: committing it would spend LUTs on a
       pure renaming of the bound variables. *)
    let try_step bound =
      if bound = [] then false
      else begin
        incr step_count;
        let before_sizes =
          Array.map (fun f -> List.length (Isf.support m f)) isfs
        in
        let result =
          Step.run ~budget ~checks ~emit:emit_finding ~stats m cfg ~fresh_var
            isfs ~bound
        in
        let progressed = ref false in
        Array.iteri
          (fun i g ->
            let after = List.length (Isf.support m g) in
            if after < before_sizes.(i) || after <= cfg.Config.lut_size then
              progressed := true)
          result.Step.g;
        Log.debug (fun k ->
            k "  bound=[%s] r=[%s] sizes %s -> %s progressed=%b"
              (String.concat "," (List.map string_of_int bound))
              (String.concat ","
                 (Array.to_list (Array.map string_of_int result.Step.r)))
              (String.concat ","
                 (Array.to_list (Array.map string_of_int before_sizes)))
              (String.concat ","
                 (Array.to_list
                    (Array.map
                       (fun g -> string_of_int (List.length (Isf.support m g)))
                       result.Step.g)))
              !progressed);
        if !progressed then
          Budget.exempt budget (fun () ->
              if full then begin
                let subs =
                  List.map
                    (fun { Step.var; func; _ } -> (var, func))
                    result.Step.alphas
                in
                Array.iteri
                  (fun i g ->
                    Option.iter emit_finding
                      (Invariant.check_composition m
                         ~where:
                           (Printf.sprintf "step %d output %d" !step_count i)
                         ~subs ~g ~spec:isfs.(i)))
                  result.Step.g
              end;
              List.iter
                (fun { Step.var; func; _ } ->
                  incr alpha_count;
                  if List.length bound <= cfg.Config.lut_size then begin
                    let bound_arr = Array.of_list bound in
                    let tt =
                      Bv.of_fun (Array.length bound_arr) (fun idx ->
                          Bdd.eval func (fun v ->
                              let rec pos k =
                                if bound_arr.(k) = v then k else pos (k + 1)
                              in
                              (idx lsr pos 0) land 1 = 1))
                    in
                    if full then
                      Option.iter emit_finding
                        (Invariant.check_lut_equals m
                           ~where:(Printf.sprintf "alpha a%d" (-var))
                           func ~support:bound ~tt);
                    let s =
                      Network.add_lut net ~fanins:(List.map signal bound) ~tt
                    in
                    Hashtbl.replace signal_of_var var s
                  end
                  else
                    (* A Curtis step: the bound set exceeds the LUT
                       size (e.g. a 3-input compressor for 2-input
                       gates), so the decomposition function becomes a
                       new work item and is decomposed recursively. *)
                    alpha_items :=
                      {
                        sink = Alpha_var var;
                        isf = Isf.of_csf m func;
                        shannon_depth = 0;
                      }
                      :: !alpha_items)
                result.Step.alphas;
              Array.iteri
                (fun i g ->
                  participants.(i) <- { (participants.(i)) with isf = g })
                result.Step.g);
        !progressed
      end
    in
    let step_ok = try_step bound in
    phase "step";
    (* Second attempt with an oversized bound set: symmetric
       carry/weight functions are not decomposable within small
       LUT sizes but compress with one extra bound variable. *)
    (* Oversized (Curtis) rescue attempts matter for gate-level
       synthesis (2-3 input LUTs), where symmetric carry/weight
       functions have no reducing bound set within the LUT size
       and need a compressor step; at larger LUT sizes they rarely
       pay for their sub-networks. *)
    let curtis extra =
      cfg.Config.lut_size <= 3
      && (match
            Bound_select.select_curtis ~cache ~cost ~check:select_check ~extra
              m cfg ~groups ~eligible:region (Array.to_list isfs)
          with
         | Some b2 when b2 <> bound -> try_step b2
         | Some _ | None -> false)
    in
    let step_ok = step_ok || curtis 1 || curtis 2 in
    worklist := !alpha_items @ Array.to_list participants @ others;
    (* A committed step rewrote participant ISFs; trim cache
       entries that mention the replaced ones (memory hygiene —
       hash-consed keys mean stale entries are unreachable, not
       wrong). *)
    if step_ok then
      Score_cache.retain cache m ~live:(List.map (fun it -> it.isf) !worklist);
    if not step_ok then
      (* No support shrank: split the primary by Shannon expansion.
         After two fruitless rounds the whole cofactor tree is
         emitted at once (shared MUX network). *)
      fallback primary.sink
  in
  let max_iterations = 10_000 + (100 * List.length spec.functions) in
  let rec loop iter =
    if iter > max_iterations then
      raise (Internal (Iteration_limit max_iterations));
    emit_ready ();
    if !worklist <> [] then begin
      (* Primary: the pending item with the largest support among those
         that can be decomposed now. *)
      let decomposable =
        List.filter
          (fun it ->
            support_size it > cfg.Config.lut_size
            && List.exists bound_var (Isf.support m it.isf))
          !worklist
      in
      (match decomposable with
      | [] ->
          (* Everything small is waiting on unbound variables — can only
             happen transiently; emit_ready above will unblock next
             round once producers finish.  If nothing is decomposable
             and nothing is ready, the dependency graph is broken. *)
          raise (Internal Worklist_deadlock)
      | _ ->
          let primary =
            match cfg.Config.objective with
            | Cost.Area ->
                List.fold_left
                  (fun best it ->
                    if support_size it > support_size best then it else best)
                  (List.hd decomposable) (List.tl decomposable)
            | Cost.Delay | Cost.Balanced ->
                (* Critical-path-first: attack the item whose available
                   inputs are deepest — the one currently defining the
                   network's arrival profile — so its steps get first
                   pick of shallow bound sets; ties fall back to the
                   area rule (largest support). *)
                let criticality it =
                  List.fold_left
                    (fun acc v -> max acc (arrival v))
                    0
                    (List.filter bound_var (Isf.support m it.isf))
                in
                List.fold_left
                  (fun best it ->
                    let c = criticality it and cb = criticality best in
                    if
                      c > cb
                      || (c = cb && support_size it > support_size best)
                    then it
                    else best)
                  (List.hd decomposable) (List.tl decomposable)
          in
          if Budget.stage budget = Budget.Shannon_only then
            (* Terminal degradation: no more decomposition attempts,
               emit the remaining items as shared MUX trees. *)
            fallback ~force:true primary.sink
          else begin
            let region = List.filter bound_var (Isf.support m primary.isf) in
            try attempt primary region
            with Budget.Out_of_budget { reason; where } ->
              let stage = Budget.degrade budget m reason in
              Stats.add_degradation stats
                ~stage:(Budget.stage_name stage)
                ~reason:(Budget.reason_name reason)
                ~where;
              Log.warn (fun k ->
                  k "budget: %s exceeded in %s — degrading to %s"
                    (Budget.reason_name reason) where (Budget.stage_name stage))
          end);
      Log.debug (fun k ->
          k "iter %d: worklist %d items" iter (List.length !worklist));
      loop (iter + 1)
    end
  in
  loop 0;
  if cheap then
    List.iter emit_finding
      (Net_check.analyze ~lut_size:cfg.Config.lut_size ~style:false net);
  if deep then begin
    (* The semantic SDC/ODC dataflow over the final network, against the
       specification's care set.  The growth hook must come off first:
       it raises [Out_of_budget] from inside BDD operations, where
       [Careflow] cannot translate it into a graceful truncation.  The
       budget is polled between nodes instead, and an exceedance yields
       a partial report plus a SEM008 info finding rather than a
       failure. *)
    Budget.detach budget m;
    let clock = Stats.clock stats in
    let check () =
      try Budget.check budget ~where:"semantics"
      with Budget.Out_of_budget { reason; where } ->
        let reason = Budget.reason_name reason in
        Stats.add_degradation stats ~stage:"semantics-truncated" ~reason ~where;
        raise (Careflow.Cutoff reason)
    in
    let var_of_input =
      let tbl = Hashtbl.create 16 in
      List.iteri (fun k name -> Hashtbl.add tbl name k) spec.input_names;
      fun name -> Hashtbl.find tbl name
    in
    let care_of_output name =
      match List.assoc_opt name spec.functions with
      | Some isf -> Isf.care m isf
      | None -> Bdd.one m
    in
    let report =
      Semantics.analyze_report ~care_of_output ~check m ~var_of_input net
    in
    let cov = report.Semantics.coverage in
    stats.Stats.sem_nodes <-
      stats.Stats.sem_nodes + cov.Semantics.exact_nodes
      + cov.Semantics.windowed_nodes;
    if cov.Semantics.truncated_nodes > 0 then
      stats.Stats.sem_truncations <- stats.Stats.sem_truncations + 1;
    stats.Stats.sat_calls <- stats.Stats.sat_calls + cov.Semantics.sat_calls;
    stats.Stats.sat_conflicts <-
      stats.Stats.sat_conflicts + cov.Semantics.sat_conflicts;
    stats.Stats.windows_built <-
      stats.Stats.windows_built + cov.Semantics.windows_built;
    stats.Stats.df_iterations <-
      stats.Stats.df_iterations + cov.Semantics.df_iterations;
    stats.Stats.df_facts <- stats.Stats.df_facts + cov.Semantics.df_facts;
    stats.Stats.screened_out <-
      stats.Stats.screened_out + cov.Semantics.screened_out;
    List.iter emit_finding report.Semantics.findings;
    ignore (Stats.mark clock "semantics")
  end;
  {
    network = net;
    step_count = !step_count;
    shannon_count = !shannon_count;
    alpha_count = !alpha_count;
    degraded_to = Budget.stage budget;
    findings = List.rev !findings;
  }

let decompose ?cfg ?budget ?checks ?stats m spec =
  (decompose_report ?cfg ?budget ?checks ?stats m spec).network

let verify m spec net =
  let var_of_input =
    let tbl = Hashtbl.create 16 in
    List.iteri (fun k name -> Hashtbl.add tbl name k) spec.input_names;
    fun name -> Hashtbl.find tbl name
  in
  let got = Network.output_bdds net m ~var_of_input in
  List.for_all
    (fun (name, isf) ->
      match List.assoc_opt name got with
      | Some g -> Isf.extends m g isf
      | None -> false)
    spec.functions
