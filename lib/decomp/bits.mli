(** Small integer helpers shared across the decomposition modules. *)

val ceil_log2 : int -> int
(** [ceil_log2 k] is the smallest [b] with [2^b >= k] ([0] for [k = 1]).
    The number of code bits needed to distinguish [k] classes.  For [k]
    above the largest representable power of two the result is the
    exponent of the first (unrepresentable) power that covers it, so
    [ceil_log2 max_int] terminates instead of overflowing.

    @raise Invalid_argument when [k <= 0] — a class count is always
    positive, so a nonpositive argument is a caller bug. *)
