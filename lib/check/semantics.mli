(** Semantic lint passes ([SEM*] codes) over the {!Careflow} SDC/ODC
    dataflow, plus the care-set-aware equivalence audit.

    Where the structural [NET*] passes see only the netlist graph,
    these passes see the functions it computes — they measure exactly
    the don't cares the decomposition engine was supposed to exploit:

    - [SEM001]: a LUT table row no input vector can exercise (an
      SDC-masked table bit);
    - [SEM002]: a node whose complementation never changes a cared-for
      output (ODC covers the whole care space — functionally dead);
    - [SEM003]: a node whose global function is constant on the care
      set (a constant the structural [NET008] pass cannot see);
    - [SEM004]: two LUTs computing the same (or complementary) global
      function on the care set — the semantic duplicates the
      structural [NET007] pass misses;
    - [SEM005]: two primary outputs provably identical on the union of
      their care sets;
    - [SEM006]: two LUTs over the same fanins whose tables differ only
      in {e free} bits (rows that are unreachable or unobservable) —
      don't cares left unexploited by fixing the free bits
      inconsistently;
    - [SEM008]: the analysis was truncated by its budget (Info).

    [SEM007] (inequivalence inside the care set) is produced by
    {!audit}.

    Precondition as for {!Careflow.analyze}: structurally sound
    networks only. *)

val analyze :
  ?care_of_output:(string -> Bdd.t) ->
  ?check:(unit -> unit) ->
  Bdd.manager ->
  var_of_input:(string -> int) ->
  Network.t ->
  Diagnostic.t list
(** Run the dataflow and all [SEM] passes.  [check] may raise
    {!Careflow.Cutoff} to truncate (yielding a partial report plus
    [SEM008]); [care_of_output] restricts both reachability and
    observability to the specification's care set. *)

val of_flow : Bdd.manager -> Network.t -> Careflow.t -> Diagnostic.t list
(** The pass half of {!analyze}, for callers that run
    {!Careflow.analyze} themselves (the decomposition driver does, so
    it can record the analyzed-node count in its statistics). *)

val audit :
  ?care_of_output:(string -> Bdd.t) ->
  Bdd.manager ->
  inputs:(string * int) list ->
  golden:Network.t ->
  candidate:Network.t ->
  Diagnostic.t list
(** BDD equivalence of two networks {e modulo the care set}: for every
    output, the two global functions must agree wherever the
    specification cares.  [inputs] maps every input name of either
    network to its BDD variable (the common space).  Findings are
    [SEM007] errors — one per differing output, with a counterexample
    minterm, and one per output present in only one network.  An empty
    result is a proof of equivalence modulo the don't-care set. *)
