lib/benchmarks/arith.ml: Array Bdd Bvec Driver List Printf
