let names prefix count = List.init count (Printf.sprintf "%s%d" prefix)

let rd53 m =
  let bits = List.init 5 (Bdd.var m) in
  let weight = Bvec.popcount m bits in
  Driver.spec_of_csf m (names "x" 5) (Bvec.named_outputs "f" weight)

let sym6 m =
  let bits = List.init 6 (Bdd.var m) in
  let weight = Bvec.popcount m bits in
  Driver.spec_of_csf m (names "x" 6)
    [ ("f0", Bvec.equal_const m weight 2) ]

let majority m ~inputs =
  let bits = List.init inputs (Bdd.var m) in
  let weight = Bvec.popcount m bits in
  let w = Bvec.zero_extend m weight ~width:(Bvec.width weight + 1) in
  let half = Bvec.consti m ~width:(Bvec.width w) (inputs / 2) in
  Driver.spec_of_csf m (names "x" inputs) [ ("f0", Bvec.ult m half w) ]

let parity m ~inputs =
  let f =
    List.fold_left
      (fun acc v -> Bdd.xor m acc (Bdd.var m v))
      (Bdd.zero m)
      (List.init inputs Fun.id)
  in
  Driver.spec_of_csf m (names "x" inputs) [ ("f0", f) ]

let t481_like m =
  (* product of xors over disjoint pairs: perfectly decomposable, a
     classic stress test for bound-set search *)
  let term i = Bdd.xnor m (Bdd.var m (2 * i)) (Bdd.var m ((2 * i) + 1)) in
  let f = Bdd.and_list m (List.init 8 term) in
  Driver.spec_of_csf m (names "x" 16) [ ("f0", f) ]

let catalogue =
  [
    ("rd53", rd53);
    ("sym6", sym6);
    ("maj9", fun m -> majority m ~inputs:9);
    ("parity12", fun m -> parity m ~inputs:12);
    ("t481", t481_like);
  ]
