(** The [mfd serve] daemon.

    One event-loop domain owns all sockets (accept, frame reassembly,
    request admission, response writes); [jobs] worker domains drain a
    bounded queue of decomposition jobs.  Each job owns a fresh
    {!Bdd.manager}/{!Budget.t}/{!Stats.t} and runs through
    {!Batch.run_one} on the manager that built its specification — the
    exact code path of a CLI [mfd run], which is what makes a served
    result byte-identical to the CLI's for the same request.

    Results of unbudgeted runs are kept in a cross-request
    {!Rcache} keyed on canonical function fingerprints; repeat
    submissions of the same function are answered from the cache
    ([cached:true] in the response) with hit/miss counters reported by
    the [stats] op.

    Failure containment: a malformed or oversized frame is answered
    with an error on the offending connection only; a client
    disconnecting mid-job orphans its result, which is dropped when it
    completes.  Neither kills the server. *)

type endpoint = Unix_socket of string | Tcp of string * int

type config = {
  listen : endpoint;
  jobs : int;  (** worker domains *)
  queue_depth : int;  (** bounded queue capacity — backpressure knob *)
  cache_mb : int;  (** result-cache byte cap, in MiB *)
  max_frame : int;  (** largest accepted request frame, in bytes *)
}

val default_config : endpoint -> config
(** jobs 2, queue depth 16, cache 64 MiB, max frame 16 MiB. *)

val run : ?on_ready:(unit -> unit) -> config -> unit
(** Bind, listen, serve.  Blocks until a [shutdown] request arrives,
    then drains queued jobs, delivers their responses, joins the
    workers, closes every socket and removes the Unix socket file.
    [on_ready] fires once the listener is bound (used by tests and by
    the CLI to print the endpoint). *)
