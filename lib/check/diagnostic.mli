(** Structured diagnostics for the static-analysis passes.

    A finding couples a stable {e code} (["NET001"], ["DEC003"], ...)
    with a severity, an optional location (an output or signal name) and
    a human-readable message.  Codes are declared once in {!catalogue};
    {!make} refuses codes that are not declared, so a typo in a pass
    cannot silently invent a new code.

    Renderers: {!pp} / {!pp_list} for terminal text, {!to_json} for
    machine consumption ([mfd lint --json]).  The exit-code policy of
    the [mfd lint] subcommand and of [--check] assertion failures is
    {!exit_code}. *)

type severity = Error | Warning | Info

val severity_name : severity -> string

type t = {
  code : string;
  severity : severity;
  loc : string option;  (** output name, signal name, or phase *)
  message : string;
}

val make : ?loc:string -> string -> string -> t
(** [make ?loc code message].  The severity comes from the catalogue.
    @raise Invalid_argument on a code missing from {!catalogue}. *)

val catalogue : (string * severity * string) list
(** Every known code with its severity and a one-line description, in
    code order.  [NET*] codes are network-structure passes, [DEC*]
    codes are decomposition invariants, [PLA*] codes are two-level
    input hygiene, [SEM*] codes are the semantic (SDC/ODC dataflow)
    passes of {!Semantics}, [SUP*] codes are the support/redundancy
    facts of the {!Dataflow} screening tier. *)

val family : string -> string
(** The alphabetic family prefix of a code (["SEM003"] -> ["SEM"]). *)

val families : (string * (string * severity * string) list) list
(** {!catalogue} grouped by {!family}, families in first-appearance
    catalogue order and codes in catalogue order within each — the
    order [mfd lint --codes] renders. *)

val catalogue_version : string
(** Version tag of the catalogue, embedded in the JSON report so
    machine consumers can detect vocabulary skew.  Bumped whenever a
    code is added, removed or reclassified. *)

val severity_of_code : string -> severity option

(** {1 Aggregation} *)

val count : severity -> t list -> int
val errors : t list -> t list
val max_severity : t list -> severity option

val exit_code : t list -> int
(** The [mfd lint] policy: [0] when no finding is worse than [Info],
    [2] when warnings but no errors are present, [1] on any error.
    (Exit [3] is reserved by the CLI for parse/IO failures.) *)

(** {1 Rendering} *)

val normalize : t list -> t list
(** Stable sort by (location, code) — the deterministic order both
    renderers use.  Two runs over the same input render byte-identical
    reports regardless of pass scheduling; findings sharing a location
    and code keep their firing order. *)

val pp : Format.formatter -> t -> unit
(** [error[NET001] loc: message] — one line. *)

val pp_list : Format.formatter -> t list -> unit
(** One finding per line (in {!normalize} order) followed by a severity
    summary; prints ["clean"] for an empty list. *)

val to_json : ?extra:(string * string) list -> t list -> string
(** A JSON object [{"catalogue":V,"findings":[...]}] where [V] is
    {!catalogue_version} and each finding is a
    [{"code","severity","loc","message"}] object (["loc"] is [null]
    when absent), in {!normalize} order.  Each [extra] pair is appended
    to the object as one more field; the value must already be valid
    JSON text (the lint and audit front ends attach their analyzer
    coverage this way). *)

(** {1 Check levels} *)

(** How much the decomposition driver asserts while it runs: [Off] is
    free, [Cheap] covers bookkeeping invariants (well-formed ISFs,
    refinement of committed phases, proper clique covers, injective
    encodings, structural soundness of the final network), [Full] adds
    the BDD-equivalence obligations (committed symmetries really hold,
    every committed step composes back to its specification under the
    care set, every emitted LUT realizes its ISF), and [Deep]
    additionally runs the semantic SDC/ODC dataflow passes
    ({!Semantics}) over the final network against the specification's
    care set. *)
type level = Off | Cheap | Full | Deep

val level_name : level -> string
val level_of_string : string -> (level, string) result

val at_least : level -> level -> bool
(** [at_least level threshold]: does [level] include the checks of
    [threshold]?  ([Off < Cheap < Full < Deep].) *)
