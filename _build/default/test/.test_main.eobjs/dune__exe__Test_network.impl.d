test/test_network.ml: Alcotest Bdd Blif Bv Isf List Network Pla
