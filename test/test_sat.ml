(* Tests for the SAT layer: literal packing, the CDCL solver against a
   brute-force oracle on random small formulas (the qcheck property the
   whole don't-care analysis leans on), incremental model enumeration,
   assumptions, budgets, and the Tseitin encoder against network
   evaluation. *)

open Sat

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let prop name ?(count = 200) gen f = QCheck2.Test.make ~name ~count gen f

(* ---- brute-force oracle ---- *)

let lit_sat assign l = if Cnf.is_pos l then assign (Cnf.var_of l) else not (assign (Cnf.var_of l))

let clause_sat assign c = List.exists (lit_sat assign) c

let models nvars clauses =
  let n = ref 0 in
  for m = 0 to (1 lsl nvars) - 1 do
    let assign v = (m lsr v) land 1 = 1 in
    if List.for_all (clause_sat assign) clauses then incr n
  done;
  !n

(* A random formula as (nvars, clauses): up to 8 variables, clauses of
   1..3 literals, enough clauses to hit both Sat and Unsat regularly. *)
let gen_formula =
  let open QCheck2.Gen in
  let* nvars = int_range 1 8 in
  let gen_lit =
    let* v = int_range 0 (nvars - 1) in
    let+ s = bool in
    if s then Cnf.pos v else Cnf.neg v
  in
  let gen_clause = list_size (int_range 1 3) gen_lit in
  let+ clauses = list_size (int_range 1 30) gen_clause in
  (nvars, clauses)

let solver_of (nvars, clauses) =
  let cnf = Cnf.create () in
  for _ = 1 to nvars do
    ignore (Cnf.fresh cnf)
  done;
  List.iter (Cnf.add_clause cnf) clauses;
  Solver.create cnf

let cnf_tests =
  [
    Alcotest.test_case "literal packing" `Quick (fun () ->
        check_int "pos var" 7 (Cnf.var_of (Cnf.pos 7));
        check_int "neg var" 7 (Cnf.var_of (Cnf.neg 7));
        check_bool "pos sign" true (Cnf.is_pos (Cnf.pos 3));
        check_bool "neg sign" false (Cnf.is_pos (Cnf.neg 3));
        check_int "negate" (Cnf.pos 4) (Cnf.negate (Cnf.neg 4));
        check_int "lit_of_bool true" (Cnf.pos 2) (Cnf.lit_of_bool 2 true);
        check_int "lit_of_bool false" (Cnf.neg 2) (Cnf.lit_of_bool 2 false));
    Alcotest.test_case "add_clause validates variables" `Quick (fun () ->
        let cnf = Cnf.create () in
        let v = Cnf.fresh cnf in
        Cnf.add_clause cnf [ Cnf.pos v ];
        (match Cnf.add_clause cnf [ Cnf.pos (v + 1) ] with
        | exception Invalid_argument _ -> ()
        | () -> Alcotest.fail "expected Invalid_argument");
        check_int "one clause" 1 (Cnf.nclauses cnf));
    Alcotest.test_case "dimacs rendering" `Quick (fun () ->
        let cnf = Cnf.create () in
        let a = Cnf.fresh cnf and b = Cnf.fresh cnf in
        Cnf.add_clause cnf [ Cnf.pos a; Cnf.neg b ];
        let s = Format.asprintf "%a" Cnf.pp cnf in
        let prefix = "p cnf 2 1" in
        check_bool "header" true
          (String.length s >= String.length prefix
          && String.sub s 0 (String.length prefix) = prefix));
  ]

let solver_unit_tests =
  [
    Alcotest.test_case "trivial sat and unsat" `Quick (fun () ->
        let s = solver_of (1, [ [ Cnf.pos 0 ] ]) in
        check_bool "sat" true (Solver.solve s = Solver.Sat);
        check_bool "model" true (Solver.value s 0);
        let s = solver_of (1, [ [ Cnf.pos 0 ]; [ Cnf.neg 0 ] ]) in
        check_bool "unsat" true (Solver.solve s = Solver.Unsat));
    Alcotest.test_case "empty formula is sat" `Quick (fun () ->
        let s = solver_of (0, []) in
        check_bool "sat" true (Solver.solve s = Solver.Sat));
    Alcotest.test_case "value without a model raises" `Quick (fun () ->
        let s = solver_of (1, [ [ Cnf.pos 0 ]; [ Cnf.neg 0 ] ]) in
        ignore (Solver.solve s);
        match Solver.value s 0 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "unsat under assumptions, sat without" `Quick (fun () ->
        (* x0 = x1 (two implications); assuming them different is unsat *)
        let s =
          solver_of
            (2, [ [ Cnf.neg 0; Cnf.pos 1 ]; [ Cnf.pos 0; Cnf.neg 1 ] ])
        in
        check_bool "unsat under assumptions" true
          (Solver.solve ~assumptions:[ Cnf.pos 0; Cnf.neg 1 ] s = Solver.Unsat);
        check_bool "still sat alone" true (Solver.solve s = Solver.Sat);
        check_bool "equal in model" true (Solver.value s 0 = Solver.value s 1));
    Alcotest.test_case "duplicate assumptions are harmless" `Quick (fun () ->
        let s = solver_of (1, [ [ Cnf.pos 0 ] ]) in
        let a = List.init 10 (fun _ -> Cnf.pos 0) in
        check_bool "sat" true (Solver.solve ~assumptions:a s = Solver.Sat));
    Alcotest.test_case "conflict budget yields Unknown" `Quick (fun () ->
        (* pigeonhole: 7 pigeons, 6 holes — unsat, needs real search *)
        let np = 7 and nh = 6 in
        let cnf = Cnf.create () in
        let v = Array.init np (fun _ -> Array.init nh (fun _ -> Cnf.fresh cnf)) in
        for p = 0 to np - 1 do
          Cnf.add_clause cnf (List.init nh (fun h -> Cnf.pos v.(p).(h)))
        done;
        for h = 0 to nh - 1 do
          for p = 0 to np - 1 do
            for q = p + 1 to np - 1 do
              Cnf.add_clause cnf [ Cnf.neg v.(p).(h); Cnf.neg v.(q).(h) ]
            done
          done
        done;
        let s = Solver.create cnf in
        (match Solver.solve ~max_conflicts:3 s with
        | Solver.Unknown reason ->
            check_bool "names the budget" true (reason = "conflict budget")
        | _ -> Alcotest.fail "expected Unknown");
        (* without the cap the refutation completes *)
        check_bool "unsat in full" true (Solver.solve s = Solver.Unsat));
    Alcotest.test_case "check callback exception propagates" `Quick (fun () ->
        let s =
          solver_of
            ( 3,
              [
                [ Cnf.pos 0; Cnf.pos 1 ];
                [ Cnf.neg 0; Cnf.pos 2 ];
                [ Cnf.neg 1; Cnf.neg 2 ];
              ] )
        in
        match Solver.solve ~check:(fun () -> failwith "abort") s with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "expected the callback's exception");
  ]

let oracle_props =
  [
    prop "cdcl agrees with brute force" ~count:500 gen_formula
      (fun ((nvars, clauses) as f) ->
        let s = solver_of f in
        let expect = models nvars clauses > 0 in
        match Solver.solve s with
        | Solver.Sat ->
            expect
            && List.for_all (clause_sat (Solver.value s)) clauses
        | Solver.Unsat -> not expect
        | Solver.Unknown _ -> false);
    prop "blocking-clause enumeration counts all models" ~count:200
      (QCheck2.Gen.map
         (fun (n, cs) -> (min n 6, cs))
         gen_formula)
      (fun (nvars, clauses) ->
        let clauses =
          List.filter
            (List.for_all (fun l -> Cnf.var_of l < nvars))
            clauses
        in
        let s = solver_of (nvars, clauses) in
        let found = ref 0 in
        let continue = ref true in
        while !continue do
          match Solver.solve s with
          | Solver.Sat ->
              incr found;
              (* block exactly this total assignment *)
              Solver.add_clause s
                (List.init nvars (fun v ->
                     Cnf.lit_of_bool v (not (Solver.value s v))))
          | Solver.Unsat -> continue := false
          | Solver.Unknown _ -> Alcotest.fail "unexpected Unknown"
        done;
        !found = models nvars clauses);
    prop "solve under assumptions = solve with units" ~count:300
      (let open QCheck2.Gen in
       let* ((nvars, _) as f) = gen_formula in
       let+ assum =
         list_size (int_range 0 4)
           (let* v = int_range 0 (nvars - 1) in
            let+ s = bool in
            Cnf.lit_of_bool v s)
       in
       (f, assum))
      (fun ((nvars, clauses), assum) ->
        let s = solver_of (nvars, clauses) in
        let got = Solver.solve ~assumptions:assum s in
        let expect =
          models nvars (clauses @ List.map (fun l -> [ l ]) assum) > 0
        in
        match got with
        | Solver.Sat ->
            expect && List.for_all (lit_sat (Solver.value s)) assum
        | Solver.Unsat -> not expect
        | Solver.Unknown _ -> false);
  ]

(* ---- Tseitin encoding ---- *)

let encode_props =
  [
    prop "lut clauses define exactly the truth table" ~count:200
      (let open QCheck2.Gen in
       let* k = int_range 0 4 in
       let+ bits = list_size (return (1 lsl k)) bool in
       let arr = Array.of_list bits in
       Bv.of_fun k (fun i -> arr.(i)))
      (fun tt ->
        let k = Bv.nvars tt in
        let cnf = Cnf.create () in
        let fanins = Array.init k (fun _ -> Cnf.fresh cnf) in
        let out = Cnf.fresh cnf in
        Encode.lut cnf ~out ~fanins tt;
        let s = Solver.create cnf in
        (* for every input code, the forced output is the table entry *)
        let ok = ref true in
        for c = 0 to (1 lsl k) - 1 do
          let assum =
            List.init k (fun j ->
                Cnf.lit_of_bool fanins.(j) ((c lsr j) land 1 = 1))
          in
          (match Solver.solve ~assumptions:assum s with
          | Solver.Sat ->
              if Solver.value s out <> Bv.get tt c then ok := false
          | _ -> ok := false);
          (* and the opposite output is impossible *)
          match
            Solver.solve
              ~assumptions:(Cnf.lit_of_bool out (not (Bv.get tt c)) :: assum)
              s
          with
          | Solver.Unsat -> ()
          | _ -> ok := false
        done;
        !ok);
    prop "of_network agrees with Network.eval" ~count:100
      QCheck2.Gen.(int_range 0 10_000)
      (fun seed ->
        let net =
          Randnet.cones ~ninputs:6 ~noutputs:3 ~window:5 ~gates_per_output:6
            ~seed ()
        in
        let cnf = Cnf.create () in
        let env = Encode.of_network cnf net in
        let s = Solver.create cnf in
        let inputs = Encode.input_vars env in
        let ok = ref true in
        for m = 0 to 15 do
          (* 16 pseudo-random input vectors per network *)
          let bit name =
            let h = Hashtbl.hash (seed, m, name) in
            h land 1 = 1
          in
          let assum =
            List.map (fun (n, v) -> Cnf.lit_of_bool v (bit n)) inputs
          in
          match Solver.solve ~assumptions:assum s with
          | Solver.Sat ->
              let expect = Network.eval net bit in
              List.iter
                (fun (n, v) ->
                  if Solver.value s v <> List.assoc n expect then ok := false)
                (Encode.output_vars env)
          | _ -> ok := false
        done;
        !ok);
  ]

let misc_tests =
  [
    Alcotest.test_case "xor_var and equiv_neg" `Quick (fun () ->
        let cnf = Cnf.create () in
        let a = Cnf.fresh cnf and b = Cnf.fresh cnf in
        let x = Encode.xor_var cnf a b in
        let c = Cnf.fresh cnf in
        Encode.equiv_neg cnf a c;
        let s = Solver.create cnf in
        List.iter
          (fun (va, vb) ->
            match
              Solver.solve
                ~assumptions:
                  [ Cnf.lit_of_bool a va; Cnf.lit_of_bool b vb ]
                s
            with
            | Solver.Sat ->
                check_bool "xor" (va <> vb) (Solver.value s x);
                check_bool "neg" (not va) (Solver.value s c)
            | _ -> Alcotest.fail "expected Sat")
          [ (false, false); (false, true); (true, false); (true, true) ]);
    Alcotest.test_case "constant pins" `Quick (fun () ->
        let cnf = Cnf.create () in
        let v = Cnf.fresh cnf in
        Encode.constant cnf v true;
        let s = Solver.create cnf in
        check_bool "sat" true (Solver.solve s = Solver.Sat);
        check_bool "pinned" true (Solver.value s v);
        check_bool "contradiction" true
          (Solver.solve ~assumptions:[ Cnf.neg v ] s = Solver.Unsat));
  ]

let suite =
  cnf_tests @ solver_unit_tests @ misc_tests
  @ List.map
      (fun t -> QCheck_alcotest.to_alcotest t)
      (oracle_props @ encode_props)
