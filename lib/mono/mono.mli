(** Monotonic time for durations.

    Every elapsed-time measurement of the library ({!Stats.clock},
    {!Budget} deadlines, batch/serve job timing) uses {!now} — a
    monotonic clock that never jumps backwards, so an NTP step in the
    middle of a run cannot produce negative or skewed durations in
    reports.  {!wall} is the non-monotonic wall clock, to be used only
    for human-facing timestamps, never subtracted. *)

val now : unit -> float
(** Seconds on CLOCK_MONOTONIC, from an arbitrary (boot-time) epoch.
    Only differences of two [now] values are meaningful. *)

val wall : unit -> float
(** [Unix.gettimeofday] — calendar timestamps only. *)
