lib/benchmarks/arith.mli: Bdd Driver
