(** Graph coloring heuristics.

    Minimum coloring of the {e incompatibility} graph of bound-set
    vertices is exactly the minimum clique cover of the compatibility
    graph — the formulation used both by Chang & Marek-Sadowska's
    don't-care assignment and by the paper's sharing-aware assignment
    (Section 5, step 2). *)

val greedy : Ugraph.t -> int list -> int array
(** Color in the given vertex order, each vertex getting the smallest
    color not used by its already-colored neighbours. *)

val dsatur : Ugraph.t -> int array
(** DSATUR heuristic: repeatedly color the vertex with the highest
    saturation (number of distinct neighbour colors), breaking ties by
    degree. *)

val exact : ?limit:int -> Ugraph.t -> int array option
(** Branch-and-bound exact minimum coloring, intended for the small
    graphs of a decomposition step.  Gives up (returns [None]) after
    [limit] search nodes (default 200_000). *)

val best : Ugraph.t -> int array
(** [exact] when it succeeds within its budget, otherwise [dsatur]. *)

val color_count : int array -> int
val is_proper : Ugraph.t -> int array -> bool
