lib/decomp/step.mli: Bdd Config Isf
