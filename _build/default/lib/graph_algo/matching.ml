(* Blossom algorithm, classical array-based formulation: repeated BFS for
   an augmenting path from each free vertex, contracting odd cycles
   (blossoms) on the fly via a [base] array. *)

let maximum g =
  let size = Ugraph.n g in
  let mate = Array.make size (-1) in
  let p = Array.make size (-1) in
  let base = Array.make size 0 in
  let used = Array.make size false in
  let blossom = Array.make size false in
  let q = Queue.create () in

  let lca a b =
    let used_path = Array.make size false in
    let rec mark a =
      let a = base.(a) in
      used_path.(a) <- true;
      if mate.(a) <> -1 then mark p.(mate.(a))
    in
    mark a;
    let rec find b =
      let b = base.(b) in
      if used_path.(b) then b else find p.(mate.(b))
    in
    find b
  in

  let rec mark_path v b child =
    if base.(v) <> b then begin
      blossom.(base.(v)) <- true;
      blossom.(base.(mate.(v))) <- true;
      p.(v) <- child;
      mark_path p.(mate.(v)) b mate.(v)
    end
  in

  let find_path root =
    Array.fill used 0 size false;
    Array.fill p 0 size (-1);
    for i = 0 to size - 1 do
      base.(i) <- i
    done;
    used.(root) <- true;
    Queue.clear q;
    Queue.add root q;
    let result = ref (-1) in
    (try
       while not (Queue.is_empty q) do
         let v = Queue.pop q in
         let visit u =
           if base.(v) <> base.(u) && mate.(v) <> u then
             if u = root || (mate.(u) <> -1 && p.(mate.(u)) <> -1) then begin
               (* Odd cycle: contract the blossom with base [curbase]. *)
               let curbase = lca v u in
               Array.fill blossom 0 size false;
               mark_path v curbase u;
               mark_path u curbase v;
               for i = 0 to size - 1 do
                 if blossom.(base.(i)) then begin
                   base.(i) <- curbase;
                   if not used.(i) then begin
                     used.(i) <- true;
                     Queue.add i q
                   end
                 end
               done
             end
             else if p.(u) = -1 then begin
               p.(u) <- v;
               if mate.(u) = -1 then begin
                 result := u;
                 raise Exit
               end
               else begin
                 used.(mate.(u)) <- true;
                 Queue.add mate.(u) q
               end
             end
         in
         List.iter visit (Ugraph.neighbours g v)
       done
     with Exit -> ());
    !result
  in

  let augment u =
    (* Flip matched/unmatched edges along the alternating path to the root. *)
    let rec go u =
      if u <> -1 then begin
        let pv = p.(u) in
        let ppv = mate.(pv) in
        mate.(pv) <- u;
        mate.(u) <- pv;
        go ppv
      end
    in
    go u
  in

  for v = 0 to size - 1 do
    if mate.(v) = -1 then begin
      let u = find_path v in
      if u <> -1 then augment u
    end
  done;
  let pairs = ref [] in
  for v = 0 to size - 1 do
    if mate.(v) > v then pairs := (v, mate.(v)) :: !pairs
  done;
  List.rev !pairs

let greedy g =
  let size = Ugraph.n g in
  let taken = Array.make size false in
  let pick acc (i, j) =
    if taken.(i) || taken.(j) then acc
    else begin
      taken.(i) <- true;
      taken.(j) <- true;
      (i, j) :: acc
    end
  in
  List.rev (List.fold_left pick [] (Ugraph.edges g))

let size pairs = List.length pairs

let is_matching g pairs =
  let seen = Hashtbl.create 16 in
  List.for_all
    (fun (i, j) ->
      let fresh v =
        if Hashtbl.mem seen v then false
        else begin
          Hashtbl.add seen v ();
          true
        end
      in
      Ugraph.has_edge g i j && fresh i && fresh j)
    pairs
