type entry = {
  name : string;
  ninputs : int;
  noutputs : int;
  exact : bool;
  note : string;
  build : Bdd.manager -> Driver.spec;
}

let standin name ~ninputs ~noutputs ?(window = 10) ?(gates_per_output = 8) ~seed note =
  {
    name;
    ninputs;
    noutputs;
    exact = false;
    note;
    build =
      (fun m ->
        let net =
          Randnet.cones ~ninputs ~noutputs ~window ~gates_per_output ~seed ()
        in
        Randnet.spec_of_network m net);
  }

let exact name ~ninputs ~noutputs note build =
  { name; ninputs; noutputs; exact = true; note; build }

(* Deterministic arithmetic stand-in: the real circuit's function is not
   public, but the substitute is a meaningful arithmetic function with
   the published input/output counts (better than random cones). *)
let arith_standin name ~ninputs ~noutputs note build =
  { name; ninputs; noutputs; exact = false; note; build }

let catalogue =
  [
    arith_standin "5xp1" ~ninputs:7 ~noutputs:10 "arithmetic stand-in: 5*v + v/8"
      Arith.x5p1;
    exact "9sym" ~ninputs:9 ~noutputs:1 "weight in [3,6] (exact)" Arith.sym9;
    arith_standin "alu2" ~ninputs:10 ~noutputs:6
      "ALU stand-in: add/sub/and/xor with flags" Arith.alu2;
    standin "apex7" ~ninputs:49 ~noutputs:37 ~seed:107 ~window:12
      ~gates_per_output:25 "seeded cones";
    standin "b9" ~ninputs:41 ~noutputs:21 ~seed:211 ~window:11
      ~gates_per_output:18 "seeded cones";
    arith_standin "C499" ~ninputs:41 ~noutputs:32
      "ECC stand-in: group-parity error handling" Arith.c499;
    standin "C880" ~ninputs:60 ~noutputs:26 ~seed:880 ~window:13
      ~gates_per_output:30 "seeded cones";
    arith_standin "clip" ~ninputs:9 ~noutputs:5 "signed saturation to 5 bits"
      Arith.clip;
    arith_standin "count" ~ninputs:35 ~noutputs:16
      "16-bit conditional increment/load/clear" Arith.count;
    standin "duke2" ~ninputs:22 ~noutputs:29 ~seed:229 ~window:12
      ~gates_per_output:30 "seeded cones";
    standin "e64" ~ninputs:65 ~noutputs:65 ~seed:640 ~window:8
      ~gates_per_output:10 "seeded cones";
    arith_standin "f51m" ~ninputs:8 ~noutputs:8 "arithmetic stand-in: a*b + a"
      Arith.f51m;
    standin "misex1" ~ninputs:8 ~noutputs:7 ~seed:81 ~window:8
      ~gates_per_output:12 "seeded cones";
    standin "misex2" ~ninputs:25 ~noutputs:18 ~seed:82 ~window:10
      ~gates_per_output:14 "seeded cones";
    exact "rd73" ~ninputs:7 ~noutputs:3 "weight bits (exact)"
      (fun m -> Arith.rd m ~inputs:7);
    exact "rd84" ~ninputs:8 ~noutputs:4 "weight bits (exact)"
      (fun m -> Arith.rd m ~inputs:8);
    standin "rot" ~ninputs:135 ~noutputs:107 ~seed:135 ~window:11
      ~gates_per_output:20 "seeded cones";
    standin "sao2" ~ninputs:10 ~noutputs:4 ~seed:104 ~window:10
      ~gates_per_output:20 "seeded cones";
    standin "vg2" ~ninputs:25 ~noutputs:8 ~seed:258 ~window:12
      ~gates_per_output:22 "seeded cones";
    exact "z4ml" ~ninputs:7 ~noutputs:4 "3+3+carry adder (exact)" Arith.z4ml;
  ]

let find name = List.find (fun e -> e.name = name) catalogue

let names () = List.map (fun e -> e.name) catalogue
