(** Wire protocol of the decomposition daemon ([mfd serve]).

    One request or response is one JSON object inside one
    length-prefixed frame ({!Frame}).  The JSON implementation is the
    repository's shared {!Json} codec (hand-rolled recursive-descent
    parser and printer, re-exported here) — the protocol must not pull
    an external JSON dependency into the library graph, and the daemon
    needs full control over rejection behaviour (depth bound, trailing
    garbage, malformed escapes) because a hostile frame must produce
    an error response, never kill the server.

    The guarantee backing every accessor in this module: a served
    decomposition is the result the CLI would have produced for the
    same input, byte for byte (same BLIF, same findings JSON).  The
    protocol therefore transports the CLI's own renderings verbatim
    ({!run_result.blif}, {!run_result.findings}) instead of
    re-encoding them. *)

(** {1 JSON} *)

type json = Json.t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list
  | Raw of string
      (** pre-rendered JSON emitted verbatim by {!to_string}; never
          produced by {!parse}.  Used to embed {!Diagnostic.to_json}
          output byte-for-byte. *)

val to_string : json -> string

val parse : string -> (json, string) result
(** Strict: rejects trailing garbage, unterminated strings, invalid
    escapes, control characters in strings, and nesting deeper than 64
    levels (a hostile frame of open brackets cannot blow the stack). *)

val member : string -> json -> json option

(** {1 Requests} *)

type source =
  | Target of string
      (** a benchmark name ({!Mcnc}/{!Extra}) or a server-side
          [.blif]/[.pla] path *)
  | Blif_text of string  (** BLIF carried inline in the request *)
  | Pla_text of string  (** PLA carried inline in the request *)

type run_request = {
  source : source;
  lut_size : int;
  algorithm : Mulop.algorithm;
  effort : Budget.effort option;
  timeout : float option;
  node_budget : int option;
  checks : Diagnostic.level;
  verify : bool;
}

type op = Run of run_request | Stats | Ping | Shutdown
type request = { id : int; op : op }

val request_to_json : request -> json

val request_of_json : json -> (request, string) result
(** Defaults mirror the CLI: [lut_size] 5, algorithm [mulop-dc],
    [checks] off, [verify] false.  Rejects non-positive budgets and
    [lut_size < 2]. *)

(** {1 Responses} *)

(** Stable error codes.  The first three are framing/admission
    failures; the last four project the {!Batch.error_kind} taxonomy
    onto the wire, so a client can tell its own malformed circuit
    ([Parse_error]) from an engine fault ([Internal]). *)
type error_code =
  | Bad_request  (** malformed JSON or an invalid field *)
  | Too_large  (** frame exceeded the server's size cap *)
  | Queue_full  (** backpressure: retry after [retry_after] seconds *)
  | Shutting_down
  | Parse_error  (** the submitted circuit did not parse *)
  | Out_of_budget
  | Internal
  | Failed

val error_code_name : error_code -> string
val error_code_of_name : string -> error_code option
val error_code_of_kind : Batch.error_kind -> error_code

val client_fault : error_code -> bool
(** [true] for codes where resubmitting the same request must fail
    again ([Bad_request], [Too_large], [Parse_error]) — drives the
    [mfd submit] exit-code split. *)

type run_result = {
  job : string;
  algorithm : string;
  luts : int;
  clbs : int;
  depth : int;
  steps : int;
  shannon : int;
  alphas : int;
  degraded_to : string;
  findings : string;
      (** {!Diagnostic.to_json} output, verbatim — identical to the
          CLI's [--check] report for the same run *)
  verified : bool option;
  blif : string;  (** {!Blif.print} of the produced network *)
  cached : bool;  (** served from the cross-request result cache *)
  seconds : float;  (** server-side monotonic job time *)
}

type server_stats = {
  jobs_served : int;
  result_hits : int;
  result_misses : int;
  cache_entries : int;
  cache_bytes : int;
  queue_depth : int;
  queue_capacity : int;
  workers : int;
  uptime_seconds : float;
}

type response =
  | Ok_run of int * run_result
  | Ok_stats of int * server_stats
  | Pong of int
  | Bye of int
  | Err of {
      id : int;
      code : error_code;
      message : string;
      retry_after : float option;
          (** only on [Queue_full]: the server's estimate of when a
              slot frees up *)
    }

val response_to_json : response -> json
val response_of_json : json -> (response, string) result
