(* Bench_report: schema round trip, baseline diffing, schema-version
   gating, and the Stats JSON projection the bench schema embeds. *)

module R = Bench_report

let mk_stats () =
  let s = Stats.create () in
  s.Stats.score_calls <- 1000;
  s.Stats.score_hits <- 600;
  s.Stats.cof_lookups <- 400;
  s.Stats.cof_fresh <- 40;
  s.Stats.restricts <- 2000;
  s.Stats.sem_nodes <- 7;
  Stats.add_phase s "bound-select" 0.25;
  Stats.add_phase s "symmetry" 0.125;
  Stats.add_degradation s ~stage:"no-symmetry" ~reason:"nodes" ~where:"step";
  Stats.add_finding s ~severity:"warning" ~code:"CHK001" ~message:"demo";
  s

let mk_run ?(name = "rd73") ?(algorithm = "mulop-dc") ?(stable = true)
    ?(luts = Some 6) ?(alloc = 1.0e6) ?stats () =
  {
    R.name;
    algorithm;
    stable;
    wall = 0.125;
    alloc_bytes = alloc;
    luts;
    clbs = Some 5;
    depth = Some 2;
    bdd_nodes = Some 912;
    stats = (match stats with Some s -> s | None -> mk_stats ());
  }

let mk_section ?(name = "table1") ?(runs = [ mk_run () ]) () =
  {
    R.name;
    title = "Table 1";
    command = "dune exec bench/main.exe -- table1";
    columns = [ "circuit"; "clbs"; "gain"; "time"; "note"; "ratio"; "lat" ];
    rows =
      [
        {
          R.label = "rd73";
          cells =
            [
              ("clbs", R.Int 5);
              ("gain", R.Pct 16.7);
              ("time", R.Secs 0.125);
              ("note", R.Str "a|b");
              ("ratio", R.Float 1.5);
              ("lat", R.Millis 3.25);
            ];
        };
      ];
    runs;
    notes = [ "a note" ];
    wall = 0.5;
    alloc_bytes = 2.0e6;
    stats = mk_stats ();
  }

let mk_report ?(sections = [ mk_section () ]) () =
  { R.schema = R.schema_version; created = "2026-08-08T00:00:00Z"; quick = true; sections }

let canon r = Json.to_string (R.to_json r)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ---- schema round trip ---- *)

let test_roundtrip () =
  let r = mk_report () in
  let text = Json.to_string (R.to_json r) in
  match Json.parse text with
  | Error msg -> Alcotest.failf "reparse failed: %s" msg
  | Ok j -> (
      match R.of_json j with
      | Error msg -> Alcotest.failf "of_json failed: %s" msg
      | Ok r' ->
          Alcotest.(check string) "serialization round trip" text (canon r');
          Alcotest.(check bool) "quick survives" true r'.R.quick;
          let s = List.hd r'.R.sections in
          Alcotest.(check (list string))
            "columns survive"
            [ "circuit"; "clbs"; "gain"; "time"; "note"; "ratio"; "lat" ]
            s.R.columns;
          let run = List.hd s.R.runs in
          Alcotest.(check (option int)) "luts survive" (Some 6) run.R.luts;
          Alcotest.(check int)
            "stats counters survive" 1000
            (Stats.counter run.R.stats "score_calls"))

let test_stats_roundtrip () =
  let s = mk_stats () in
  match Stats.of_json (Stats.to_json s) with
  | Error msg -> Alcotest.failf "stats of_json failed: %s" msg
  | Ok s' ->
      Alcotest.(check string)
        "stats JSON round trip"
        (Json.to_string (Stats.to_json s))
        (Json.to_string (Stats.to_json s'));
      Alcotest.(check (list (triple string string string)))
        "events keep order" (Stats.degradations s) (Stats.degradations s');
      List.iter
        (fun name ->
          Alcotest.(check int)
            (name ^ " survives")
            (Stats.counter s name) (Stats.counter s' name))
        Stats.counter_names

let test_stats_json_matches_schema () =
  (* every counter field of the schema must be present in the emitted
     object under its schema name — the bench diff relies on it *)
  let j = Stats.to_json (mk_stats ()) in
  List.iter
    (fun name ->
      match Json.mem_int name j with
      | Some _ -> ()
      | None -> Alcotest.failf "counter %s missing from Stats.to_json" name)
    Stats.counter_names;
  List.iter
    (fun key ->
      if Json.member key j = None then
        Alcotest.failf "field %s missing from Stats.to_json" key)
    [ "phases"; "degradations"; "findings" ]

(* ---- schema-version gating ---- *)

let test_schema_mismatch () =
  let reject text expected_fragment =
    match Json.parse text with
    | Error msg -> Alcotest.failf "parse failed: %s" msg
    | Ok j -> (
        match R.of_json j with
        | Ok _ -> Alcotest.failf "accepted %s" text
        | Error msg ->
            Alcotest.(check bool)
              (Printf.sprintf "error %S mentions %S" msg expected_fragment)
              true
              (contains ~needle:expected_fragment msg))
  in
  reject {|{"bench_schema":99,"sections":[]}|} "bench_schema 99";
  reject {|{"sections":[]}|} "bench_schema";
  reject {|[1,2,3]|} "object"

(* ---- diffing ---- *)

let test_diff_identical () =
  let r = mk_report () in
  let v = R.diff ~base:r ~current:r ~max_regress:10.0 in
  Alcotest.(check bool) "identical pair passes" true (R.verdict_ok v);
  Alcotest.(check int) "no regressions" 0 (List.length v.R.regressions);
  Alcotest.(check int) "no advisories" 0 (List.length v.R.advisories);
  Alcotest.(check int) "no missing" 0 (List.length v.R.missing)

let test_diff_regression () =
  let base = mk_report () in
  let current =
    mk_report ~sections:[ mk_section ~runs:[ mk_run ~luts:(Some 9) () ] () ] ()
  in
  let v = R.diff ~base ~current ~max_regress:10.0 in
  Alcotest.(check bool) "regression fails the gate" false (R.verdict_ok v);
  match
    List.find_opt (fun d -> d.R.metric = "luts") v.R.regressions
  with
  | None -> Alcotest.fail "lut regression not detected"
  | Some d ->
      Alcotest.(check (float 1e-6)) "base luts" 6.0 d.R.base;
      Alcotest.(check (float 1e-6)) "current luts" 9.0 d.R.current

let test_diff_counter_regression () =
  let worse = mk_stats () in
  worse.Stats.restricts <- 3000;
  let base = mk_report () in
  let current =
    mk_report
      ~sections:[ mk_section ~runs:[ mk_run ~stats:worse () ] () ]
      ()
  in
  let v = R.diff ~base ~current ~max_regress:10.0 in
  Alcotest.(check bool)
    "counter regression detected" true
    (List.exists (fun d -> d.R.metric = "stats.restricts") v.R.regressions);
  (* the same change on an unstable run must not gate *)
  let base_unstable =
    mk_report ~sections:[ mk_section ~runs:[ mk_run ~stable:false () ] () ] ()
  in
  let current_unstable =
    mk_report
      ~sections:
        [ mk_section ~runs:[ mk_run ~stable:false ~stats:worse () ] () ]
      ()
  in
  let v' = R.diff ~base:base_unstable ~current:current_unstable ~max_regress:10.0 in
  Alcotest.(check bool) "unstable runs never gate" true (R.verdict_ok v')

let test_diff_noise_floor () =
  (* +1 on a counter is > 10% of a tiny base but below the absolute
     floor: must not gate *)
  let small base_v cur_v =
    let s = Stats.create () in
    s.Stats.restricts <- base_v;
    let s' = Stats.create () in
    s'.Stats.restricts <- cur_v;
    ( mk_report
        ~sections:
          [ mk_section ~runs:[ mk_run ~alloc:0.0 ~stats:s () ] () ]
        (),
      mk_report
        ~sections:
          [ mk_section ~runs:[ mk_run ~alloc:0.0 ~stats:s' () ] () ]
        () )
  in
  let base, current = small 8 9 in
  let v = R.diff ~base ~current ~max_regress:10.0 in
  Alcotest.(check bool) "+1 under the floor passes" true (R.verdict_ok v);
  let base, current = small 100 200 in
  let v = R.diff ~base ~current ~max_regress:10.0 in
  Alcotest.(check bool) "x2 over the floor fails" false (R.verdict_ok v)

let test_diff_missing () =
  let base =
    mk_report
      ~sections:[ mk_section (); mk_section ~name:"table2" () ]
      ()
  in
  let current = mk_report ~sections:[ mk_section () ] () in
  let v = R.diff ~base ~current ~max_regress:10.0 in
  Alcotest.(check bool) "coverage loss fails the gate" false (R.verdict_ok v);
  Alcotest.(check (list string))
    "missing section named" [ "section table2" ] v.R.missing;
  (* a run disappearing inside a section is a loss too *)
  let base' =
    mk_report
      ~sections:
        [ mk_section ~runs:[ mk_run (); mk_run ~name:"rd84" () ] () ]
      ()
  in
  let v' = R.diff ~base:base' ~current ~max_regress:10.0 in
  Alcotest.(check (list string))
    "missing run named" [ "run table1/rd84/mulop-dc" ] v'.R.missing

let test_diff_improvement_and_advisory () =
  let base = mk_report () in
  let current =
    mk_report ~sections:[ mk_section ~runs:[ mk_run ~luts:(Some 3) () ] () ] ()
  in
  let v = R.diff ~base ~current ~max_regress:10.0 in
  Alcotest.(check bool) "improvement still passes" true (R.verdict_ok v);
  Alcotest.(check bool)
    "improvement recorded" true
    (List.exists (fun d -> d.R.metric = "luts") v.R.improvements);
  (* wall-clock changes are advisory, never regressions *)
  let slow = { (mk_run ()) with R.wall = 10.0 } in
  let current' = mk_report ~sections:[ mk_section ~runs:[ slow ] () ] () in
  let v' = R.diff ~base ~current:current' ~max_regress:10.0 in
  Alcotest.(check bool) "slow wall still passes" true (R.verdict_ok v');
  Alcotest.(check bool)
    "slow wall advised" true
    (List.exists (fun d -> d.R.metric = "wall") v'.R.advisories)

let test_verdict_json () =
  let base = mk_report () in
  let current =
    mk_report ~sections:[ mk_section ~runs:[ mk_run ~luts:(Some 9) () ] () ] ()
  in
  let v = R.diff ~base ~current ~max_regress:10.0 in
  let j = R.verdict_to_json v in
  Alcotest.(check (option bool)) "ok field" (Some false) (Json.mem_bool "ok" j);
  Alcotest.(check (option int))
    "verdict carries schema" (Some R.schema_version)
    (Json.mem_int "bench_schema" j);
  match Json.member "regressions" j with
  | Some (Json.Arr (_ :: _)) -> ()
  | _ -> Alcotest.fail "regressions array empty or missing"

(* ---- rendering and files ---- *)

let test_markdown_marks_command () =
  let md = R.markdown (mk_report ()) in
  Alcotest.(check bool)
    "table marked with producing command" true
    (contains ~needle:"dune exec bench/main.exe -- table1" md);
  Alcotest.(check bool)
    "table header rendered" true
    (contains ~needle:"| circuit |" md);
  Alcotest.(check bool)
    "pipes escaped in cells" true
    (contains ~needle:{|a\|b|} md)

let test_write_load () =
  let dir = Filename.temp_file "bench" "" in
  Sys.remove dir;
  let r = mk_report () in
  match R.write ~dir r with
  | Error msg -> Alcotest.failf "write failed: %s" msg
  | Ok (stamped, latest) ->
      Alcotest.(check bool)
        "stamped name embeds the timestamp" true
        (Filename.basename stamped = "BENCH_20260808T000000Z.json");
      (match R.load latest with
      | Error msg -> Alcotest.failf "load failed: %s" msg
      | Ok r' ->
          Alcotest.(check string) "write/load round trip" (canon r) (canon r'));
      (match R.load (Filename.concat dir "nope.json") with
      | Ok _ -> Alcotest.fail "loaded a missing file"
      | Error _ -> ());
      Sys.remove stamped;
      Sys.remove latest;
      Unix.rmdir dir

let suite =
  [
    Alcotest.test_case "schema round trip" `Quick test_roundtrip;
    Alcotest.test_case "stats round trip" `Quick test_stats_roundtrip;
    Alcotest.test_case "stats JSON matches bench schema" `Quick
      test_stats_json_matches_schema;
    Alcotest.test_case "schema-version mismatch is a clean error" `Quick
      test_schema_mismatch;
    Alcotest.test_case "diff: identical pair passes" `Quick test_diff_identical;
    Alcotest.test_case "diff: injected LUT regression fails" `Quick
      test_diff_regression;
    Alcotest.test_case "diff: counter regression, unstable exemption" `Quick
      test_diff_counter_regression;
    Alcotest.test_case "diff: absolute noise floor" `Quick test_diff_noise_floor;
    Alcotest.test_case "diff: missing coverage fails" `Quick test_diff_missing;
    Alcotest.test_case "diff: improvements and wall advisories" `Quick
      test_diff_improvement_and_advisory;
    Alcotest.test_case "verdict JSON shape" `Quick test_verdict_json;
    Alcotest.test_case "markdown marks the producing command" `Quick
      test_markdown_marks_command;
    Alcotest.test_case "write and load BENCH files" `Quick test_write_load;
  ]
