type alpha = { pool_id : int; var : int; func : Bdd.t }

type result = {
  alphas : alpha list;
  g : Isf.t array;
  r : int array;
  joint_classes : int;
}

let total_alpha_lower_bound result = Bits.ceil_log2 result.joint_classes

let coloring_of cfg g =
  match Coloring.exact ~limit:cfg.Config.exact_coloring_limit g with
  | Some colors -> colors
  | None -> Coloring.dsatur g

(* Cost-aware class merging: a proper coloring of the incompatibility
   graph in which every merge prefers classes with {e identical}
   cofactors (no don't-care commitment at all) and otherwise the color
   whose joined cofactor grows the least.  Merging beyond what reduces
   [ceil(log2 K)] spends don't cares without buying anything, so if the
   cost-aware pass needs more code bits than the minimum coloring it
   falls back to the latter.  [cof v] lists the cofactors (one per
   output considered) of class [v]; pairwise compatibility — encoded as
   non-adjacency in [g] — implies joint consistency, because on/off
   conflicts are always between exactly two classes. *)
let merge_coloring ?(budget = Budget.unlimited) m cfg g cof =
  let n = Ugraph.n g in
  let order =
    List.init n Fun.id
    |> List.sort (fun a b -> compare (Ugraph.degree g b) (Ugraph.degree g a))
  in
  let colors = Array.make n (-1) in
  let members : (int, int list) Hashtbl.t = Hashtbl.create 8 in
  let joined : (int, Isf.t list) Hashtbl.t = Hashtbl.create 8 in
  let ncolors = ref 0 in
  let isf_sizes fs =
    List.fold_left
      (fun acc f -> acc + Bdd.size (Isf.on f) + Bdd.size (Isf.dc f))
      0 fs
  in
  List.iter
    (fun v ->
      Budget.check budget ~where:"step/coloring";
      let cv = cof v in
      let feasible c =
        List.for_all (fun w -> not (Ugraph.has_edge g v w)) (Hashtbl.find members c)
      in
      let candidates = List.filter feasible (List.init !ncolors Fun.id) in
      let exact_match =
        List.find_opt
          (fun c -> List.for_all2 Isf.equal (Hashtbl.find joined c) cv)
          candidates
      in
      let choice =
        match exact_match with
        | Some c -> Some (c, Hashtbl.find joined c)
        | None ->
            let scored =
              List.map
                (fun c ->
                  let j =
                    List.map2
                      (fun a b -> Classes.join_isfs m [ a; b ])
                      (Hashtbl.find joined c) cv
                  in
                  (isf_sizes j, c, j))
                candidates
            in
            (match List.sort (fun (a, _, _) (b, _, _) -> compare a b) scored with
            | (_, c, j) :: _ -> Some (c, j)
            | [] -> None)
      in
      match choice with
      | Some (c, j) ->
          colors.(v) <- c;
          Hashtbl.replace members c (v :: Hashtbl.find members c);
          Hashtbl.replace joined c j
      | None ->
          let c = !ncolors in
          incr ncolors;
          colors.(v) <- c;
          Hashtbl.replace members c [ v ];
          Hashtbl.replace joined c cv)
    order;
  let renumbered =
    (* colors were allocated in first-use order already, 0..ncolors-1 *)
    colors
  in
  let best = coloring_of cfg g in
  if Bits.ceil_log2 (Coloring.color_count best) < Bits.ceil_log2 !ncolors then best
  else renumbered

(* Group one item's cofactors by identical on-sets: the step-3-disabled
   fallback.  For completely specified functions this is the classical
   class computation; cofactors with equal on-sets but different don't-
   care sets are always mutually compatible (a conflict needs an on/off
   disagreement), so merging them is sound and avoids fragmenting the
   classes when don't cares are carried but not otherwise exploited. *)
let classes_by_equality cofs =
  let table = Hashtbl.create 16 in
  let class_of = Array.make (Array.length cofs) (-1) in
  Array.iteri
    (fun idx f ->
      let key = Bdd.id (Isf.on f) in
      match Hashtbl.find_opt table key with
      | Some c -> class_of.(idx) <- c
      | None ->
          let c = Hashtbl.length table in
          Hashtbl.add table key c;
          class_of.(idx) <- c)
    cofs;
  (class_of, Hashtbl.length table)

(* Renumber colors by first occurrence so that class identifiers align
   across outputs (vertices are enumerated in the same order for every
   output); the encoder's code assignment is sensitive to this order and
   aligned numbering maximizes sharing of decomposition functions. *)
let canonicalize_colors colors =
  let renum = Hashtbl.create 8 in
  Array.map
    (fun c ->
      match Hashtbl.find_opt renum c with
      | Some c' -> c'
      | None ->
          let c' = Hashtbl.length renum in
          Hashtbl.add renum c c';
          c')
    colors

let run ?(budget = Budget.unlimited) ?(checks = Diagnostic.Off)
    ?(emit = fun (_ : Diagnostic.t) -> ()) ?(stats = Stats.create ()) m cfg
    ~fresh_var isfs ~bound =
  let checking = Diagnostic.at_least checks Diagnostic.Cheap in
  let clock = Stats.clock stats in
  let phase name =
    let dt = Stats.mark clock ("step/" ^ name) in
    if dt > 0.2 then Logs.debug (fun k -> k "    step/%s: %.2fs" name dt);
    Budget.check budget ~where:("step/" ^ name)
  in
  let nitems = Array.length isfs in
  let info = Classes.cofactor_matrix m (Array.to_list isfs) bound in
  phase "cofactor-matrix";
  let nnodes = Classes.nnodes info in
  (* ---- step 2: joint classes (sharing-aware don't-care assignment).
     Color the joint incompatibility graph; each color class is merged,
     which is exactly an assignment of don't cares (on/off sets of the
     members are united).  Without the step, nodes stay separate. *)
  let class_of_node, n_joint =
    if cfg.Config.dc_steps.Config.sharing then begin
      let g = Classes.joint_incompat m info in
      let colors =
        canonicalize_colors
          (merge_coloring ~budget m cfg g (fun v ->
               Array.to_list info.Classes.node_cof.(v)))
      in
      if checking then
        Option.iter emit
          (Invariant.check_proper_cover g colors ~where:"step2/joint-cover");
      (colors, Coloring.color_count colors)
    end
    else (Array.init nnodes Fun.id, nnodes)
  in
  phase "step2";
  (* Joined cofactor of every joint class, per item. *)
  let joint_cof =
    Array.init nitems (fun i ->
        let members = Array.make n_joint [] in
        Array.iteri
          (fun node c -> members.(c) <- info.Classes.node_cof.(node).(i) :: members.(c))
          class_of_node;
        Array.map (Classes.join_isfs m) members)
  in
  (* ---- step 3: per-output classes (Chang & Marek-Sadowska).  Operates
     on the joint classes (never splitting them, so the step-2 lower
     bound is preserved).  Without the step, merge only equal
     cofactors. *)
  let per_output =
    Array.init nitems (fun i ->
        if cfg.Config.dc_steps.Config.cms then begin
          let g = Classes.item_incompat_of_groups m info i class_of_node n_joint in
          let colors =
            canonicalize_colors
              (merge_coloring ~budget m cfg g (fun jc -> [ joint_cof.(i).(jc) ]))
          in
          if checking then
            Option.iter emit
              (Invariant.check_proper_cover g colors
                 ~where:(Printf.sprintf "step3/output-%d-cover" i));
          (colors, Coloring.color_count colors)
        end
        else classes_by_equality joint_cof.(i))
  in
  phase "step3";
  (* Final per-output cofactor of every per-output class: join over the
     joint classes wearing that color. *)
  let out_cof =
    Array.init nitems (fun i ->
        let color_of_joint, ncolors = per_output.(i) in
        let members = Array.make ncolors [] in
        Array.iteri
          (fun jc color -> members.(color) <- joint_cof.(i).(jc) :: members.(color))
          color_of_joint;
        Array.map (Classes.join_isfs m) members)
  in
  (* ---- encode: classes of nodes per output -> codes + shared alphas *)
  let specs =
    Array.init nitems (fun i ->
        let color_of_joint, ncolors = per_output.(i) in
        {
          Encode.class_of_node =
            Array.map (fun jc -> color_of_joint.(jc)) class_of_node;
          nclasses = ncolors;
        })
  in
  phase "out-cof";
  let enc = Encode.encode specs in
  if not (Encode.check specs enc) then
    if checking then
      emit
        (Diagnostic.make ~loc:"step/encode" "DEC005"
           "codes are not distinct per output, or an alpha is not strict")
    else assert false;
  phase "encode";
  (* ---- alphas as BDDs over the bound variables *)
  let zero = Bdd.zero m and one = Bdd.one m in
  let nverts = Classes.nvertices info in
  let alphas =
    List.mapi
      (fun pool_id bits ->
        let vec =
          Array.init nverts (fun v ->
              if bits.(info.Classes.node_of_vertex.(v)) then one else zero)
        in
        { pool_id; var = fresh_var (); func = Bdd.of_vector m bound vec })
      enc.Encode.pool
  in
  phase "alphas";
  let var_of_pool = Array.of_list (List.map (fun a -> a.var) alphas) in
  (* ---- composition functions *)
  let g =
    Array.init nitems (fun i ->
        let { Encode.alpha_ids; code_of_class } = enc.Encode.outputs.(i) in
        let vars = List.map (fun id -> var_of_pool.(id)) alpha_ids in
        let on = ref zero and off = ref zero in
        Array.iteri
          (fun c code ->
            let mt = Bdd.minterm_of_code m vars code in
            on := Bdd.or_ m !on (Bdd.and_ m mt (Isf.on out_cof.(i).(c)));
            off := Bdd.or_ m !off (Bdd.and_ m mt (Isf.off m out_cof.(i).(c))))
          code_of_class;
        Isf.of_on_off m ~on:!on ~off:!off)
  in
  let g =
    if cfg.Config.zero_dc_on_entry then Array.map (Isf.assign_all_zero m) g
    else g
  in
  phase "g-construction";
  let r = Array.map (fun e -> List.length e.Encode.alpha_ids) enc.Encode.outputs in
  if checking then
    Array.iteri
      (fun i ri ->
        Option.iter emit
          (Invariant.check_alpha_count
             ~where:(Printf.sprintf "step/encode output %d" i)
             ~nclasses:(snd per_output.(i)) ~r:ri))
      r;
  (* Keep only alphas actually used by some output (an output with K=1
     uses none). *)
  let used = Array.make (Array.length var_of_pool) false in
  Array.iter
    (fun e -> List.iter (fun id -> used.(id) <- true) e.Encode.alpha_ids)
    enc.Encode.outputs;
  let alphas = List.filter (fun a -> used.(a.pool_id)) alphas in
  { alphas; g; r; joint_classes = n_joint }
