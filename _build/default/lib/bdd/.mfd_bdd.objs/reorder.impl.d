lib/bdd/reorder.ml: Array Bdd Hashtbl List Stdlib
