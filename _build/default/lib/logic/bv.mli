(** Dense truth tables (bit vectors of length [2^n]).

    Exact and simple; used as the oracle for BDD operations and for
    equivalence checks of small circuits in tests.  Supports up to
    [n = 24] variables.  Minterm index [i] assigns variable [k] the bit
    [(i lsr k) land 1] — i.e. variable 0 is the {e least} significant
    bit of the minterm index. *)

type t

val nvars : t -> int
val create : int -> bool -> t
(** [create n b] is the constant-[b] function of [n] variables. *)

val var : int -> int -> t
(** [var n k] is the projection of variable [k] among [n] variables. *)

val of_fun : int -> (int -> bool) -> t
(** [of_fun n f] tabulates [f] over minterm indices [0 .. 2^n - 1]. *)

val get : t -> int -> bool
val set : t -> int -> bool -> t
(** Functional update of one minterm. *)

val equal : t -> t -> bool
val not_ : t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val xor : t -> t -> t
val count_ones : t -> int
val is_zero : t -> bool

val cofactor : t -> int -> bool -> t
(** [cofactor f k b]: same number of variables, variable [k] fixed
    (the result no longer depends on [k]). *)

val eval : t -> (int -> bool) -> bool

val of_bdd : int -> Bdd.t -> t
(** Tabulate a BDD over variables [0 .. n-1]. *)

val to_bdd : Bdd.manager -> t -> Bdd.t
val pp : Format.formatter -> t -> unit
