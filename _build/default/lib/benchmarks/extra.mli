(** Additional exactly-defined functions beyond the Table-1 suite: handy
    for experiments, regression tests and CLI exploration.  These are
    {e not} part of {!Mcnc.catalogue} so the bench totals stay exactly
    the paper's circuit list. *)

val rd53 : Bdd.manager -> Driver.spec
(** 5-input rate detector (weight bits). *)

val sym6 : Bdd.manager -> Driver.spec
(** 1 iff exactly two of six inputs are set ([sym6]-style). *)

val majority : Bdd.manager -> inputs:int -> Driver.spec
(** Majority-of-n. *)

val parity : Bdd.manager -> inputs:int -> Driver.spec
(** Odd parity of n inputs. *)

val t481_like : Bdd.manager -> Driver.spec
(** A 16-input single-output function in the spirit of [t481]:
    a product of xor terms, highly decomposable. *)

val catalogue : (string * (Bdd.manager -> Driver.spec)) list
