(** A tiny self-contained JSON codec.

    This is the one JSON implementation of the repository: the serve
    wire protocol ({!Proto}), the batch report, the diagnostics
    renderer and the bench report ({!Bench_report}) all emit through
    it, and everything machine-readable parses back through {!parse}.
    It is hand-rolled rather than a dependency because the consumers
    need full control over rejection behaviour — the daemon must turn
    a hostile frame into an error response (depth bound, trailing
    garbage, malformed escapes), and the bench diff must turn a stale
    schema into a clean error, never an exception. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list
  | Raw of string
      (** pre-rendered JSON emitted verbatim by {!to_string}; never
          produced by {!parse}.  Used to embed already-rendered
          reports (e.g. {!Diagnostic.to_json} output) byte-for-byte. *)

val int : int -> t
(** [Num (float_of_int n)] — integers survive the float carrier
    unchanged up to [2^53]. *)

val to_string : t -> string
(** Compact rendering (no insignificant whitespace).  Integral [Num]s
    print without a decimal point, so [int n] round-trips textually. *)

val parse : string -> (t, string) result
(** Strict recursive-descent parser: rejects trailing garbage,
    unterminated strings, invalid escapes, control characters in
    strings, and nesting deeper than 64 levels (a hostile input of
    open brackets cannot blow the stack). *)

(** {1 Accessors}

    Total helpers for picking fields out of parsed values; all return
    [None] instead of raising on shape mismatches. *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on missing fields and non-objects. *)

val to_int : t -> int option
(** [Some] only for integral [Num]s whose magnitude is at most [2^53]
    — the largest range where doubles represent every integer exactly.
    Larger values would round silently through [int_of_float], so they
    are rejected with [None]. *)

val to_float : t -> float option
val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option

val mem_int : string -> t -> int option
val mem_float : string -> t -> float option
val mem_str : string -> t -> string option
val mem_bool : string -> t -> bool option
val mem_list : string -> t -> t list option
