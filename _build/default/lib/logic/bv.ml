type t = { n : int; bits : Bytes.t }

let check_n n =
  if n < 0 || n > 24 then invalid_arg "Bv: variable count out of [0, 24]"

let bytes_for n = max 1 ((1 lsl n) + 7) / 8

let nvars t = t.n

let create n b =
  check_n n;
  { n; bits = Bytes.make (bytes_for n) (if b then '\xff' else '\x00') }

let get t i = Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set_mut bits i b =
  let byte = Char.code (Bytes.get bits (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let byte = if b then byte lor mask else byte land lnot mask in
  Bytes.set bits (i lsr 3) (Char.chr byte)

let set t i b =
  let bits = Bytes.copy t.bits in
  set_mut bits i b;
  { t with bits }

let of_fun n f =
  check_n n;
  let bits = Bytes.make (bytes_for n) '\x00' in
  for i = 0 to (1 lsl n) - 1 do
    if f i then set_mut bits i true
  done;
  { n; bits }

let var n k =
  if k < 0 || k >= n then invalid_arg "Bv.var: index out of range";
  of_fun n (fun i -> (i lsr k) land 1 = 1)

let size t = 1 lsl t.n

let equal a b =
  if a.n <> b.n then invalid_arg "Bv.equal: arity mismatch";
  let rec go i = i = size a || (get a i = get b i && go (i + 1)) in
  go 0

let map2 op a b =
  if a.n <> b.n then invalid_arg "Bv: arity mismatch";
  of_fun a.n (fun i -> op (get a i) (get b i))

let not_ a = of_fun a.n (fun i -> not (get a i))
let and_ = map2 ( && )
let or_ = map2 ( || )
let xor = map2 ( <> )

let count_ones a =
  let c = ref 0 in
  for i = 0 to size a - 1 do
    if get a i then incr c
  done;
  !c

let is_zero a = count_ones a = 0

let cofactor a k b =
  if k < 0 || k >= a.n then invalid_arg "Bv.cofactor: index out of range";
  let bit = if b then 1 lsl k else 0 in
  of_fun a.n (fun i -> get a (i land lnot (1 lsl k) lor bit))

let eval a assignment =
  let idx = ref 0 in
  for k = 0 to a.n - 1 do
    if assignment k then idx := !idx lor (1 lsl k)
  done;
  get a !idx

let of_bdd n f =
  check_n n;
  of_fun n (fun i -> Bdd.eval f (fun k -> (i lsr k) land 1 = 1))

let to_bdd m t =
  let rec go k i =
    (* Build over variables [k .. n-1]; [i] fixes variables [0 .. k-1].
       Descending construction keeps variable 0 on top. *)
    if k = t.n then if get t i then Bdd.one m else Bdd.zero m
    else
      Bdd.ite m (Bdd.var m k) (go (k + 1) (i lor (1 lsl k))) (go (k + 1) i)
  in
  go 0 0

let pp fmt t =
  for i = size t - 1 downto 0 do
    Format.pp_print_char fmt (if get t i then '1' else '0')
  done
