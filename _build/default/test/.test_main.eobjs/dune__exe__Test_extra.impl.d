test/test_extra.ml: Alcotest Arith Bdd Blif Clb Driver Extra Isf List Mulop Network Pla Printf String
