lib/benchmarks/extra.mli: Bdd Driver
