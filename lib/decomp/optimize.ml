(* The verified rewrite loop.  Facts come from the same engines as the
   SEM lint passes (exact Careflow dataflow, windowed complete DCs);
   every candidate network is audited against the original input before
   it is accepted, so a wrong rewrite costs a revert, never a wrong
   result.

   Rewrites computed from one analysis are applied simultaneously.
   That composition is where the danger lives: two individually-sound
   ODC-based rewrites can invalidate each other (the classic
   compatibility problem of observability don't cares).  Pure
   satisfiability don't cares compose safely — refilling a row no
   cared-for input vector reaches leaves every node's global function
   unchanged on the care set, so every other node's facts stay true.
   Hence the two tiers: [Full] uses everything and leans on the audit,
   [Safe] is the composition-safe retry when the audit says no. *)

type rule =
  | Fold_constant
  | Drop_dead
  | Merge_duplicate
  | Merge_outputs
  | Merge_twins
  | Prune_fanins

let rule_name = function
  | Fold_constant -> "fold-constant"
  | Drop_dead -> "drop-dead"
  | Merge_duplicate -> "merge-duplicate"
  | Merge_outputs -> "merge-outputs"
  | Merge_twins -> "merge-twins"
  | Prune_fanins -> "prune-fanins"

type action = { rule : rule; node : string; detail : string }

type outcome = {
  network : Network.t;
  passes : int;
  reverted : int;
  actions : action list;
  luts_before : int;
  luts_after : int;
  clbs_before : int;
  clbs_after : int;
  audit : Diagnostic.t list;
}

(* Stable node names, same convention as the lint reports. *)
let namer net =
  let output_of = Hashtbl.create 16 in
  List.iter
    (fun (name, s) ->
      let i = Network.signal_id s in
      if not (Hashtbl.mem output_of i) then Hashtbl.add output_of i name)
    (Network.outputs net);
  fun s ->
    match Network.view net s with
    | `Input name -> name
    | `Const _ | `Lut _ -> (
        let i = Network.signal_id s in
        match Hashtbl.find_opt output_of i with
        | Some name -> name
        | None -> Printf.sprintf "n%d" i)

(* ---- per-node facts, from either analysis engine ---- *)

type facts = {
  fa_signal : Network.signal;
  fa_free : Bv.t;  (* bit flippable without changing any cared-for output *)
  fa_unreach : Bv.t;  (* row no cared-for input vector reaches (pure SDC) *)
  fa_dead : bool;  (* ODC covers the whole care space *)
  fa_const : bool option;  (* constant on the care set *)
  fa_const_exact : bool option;  (* constant, full stop (safe tier) *)
  fa_global : Bdd.t option;  (* exact engine only *)
}

let facts_of_exact m care_any info =
  let nvars =
    let n = Array.length info.Careflow.code_sets in
    let rec log2 acc v = if v <= 1 then acc else log2 (acc + 1) (v lsr 1) in
    log2 0 n
  in
  let g = info.Careflow.global in
  {
    fa_signal = info.Careflow.signal;
    fa_free =
      Bv.of_fun nvars (fun c ->
          Bdd.is_zero
            (Bdd.and_ m info.Careflow.code_sets.(c) info.Careflow.observable));
    fa_unreach =
      Bv.of_fun nvars (fun c -> Bdd.is_zero info.Careflow.code_sets.(c));
    fa_dead = Bdd.is_zero info.Careflow.observable;
    fa_const =
      (if Bdd.equal_on m ~care:care_any g (Bdd.zero m) then Some false
       else if Bdd.equal_on m ~care:care_any g (Bdd.one m) then Some true
       else None);
    fa_const_exact =
      (if Bdd.is_zero g then Some false
       else if Bdd.is_one g then Some true
       else None);
    fa_global = Some g;
  }

let facts_of_window net r =
  if not r.Complete_dc.decided then None
  else
    let k = Bv.nvars r.Complete_dc.care in
    let nrows = 1 lsl k in
    (* A table constant across the window-reachable rows is constant
       everywhere: window reachability over-approximates the real one,
       and every input vector drives the fanins to some code. *)
    let const =
      match Network.view net r.Complete_dc.signal with
      | `Input _ | `Const _ -> None
      | `Lut (_, tt) -> (
          let vals =
            List.filter_map
              (fun c ->
                if Bv.get r.Complete_dc.reachable c then Some (Bv.get tt c)
                else None)
              (List.init nrows Fun.id)
          in
          match vals with
          | v :: rest when List.for_all (fun x -> x = v) rest -> Some v
          | _ -> None)
    in
    Some
      {
        fa_signal = r.Complete_dc.signal;
        fa_free = Bv.not_ r.Complete_dc.care;
        fa_unreach = Bv.not_ r.Complete_dc.reachable;
        fa_dead = Bv.is_zero r.Complete_dc.care;
        fa_const = const;
        fa_const_exact = const;
        fa_global = None;
      }

(* A window the dataflow facts prove finding-free has full care and
   reachability; these are exactly the facts [facts_of_window] would
   have produced for it, at zero SAT cost. *)
let facts_of_screened net s =
  match Network.view net s with
  | `Input _ | `Const _ -> None
  | `Lut (fanins, _) ->
      let k = Array.length fanins in
      Some
        {
          fa_signal = s;
          fa_free = Bv.create k false;
          fa_unreach = Bv.create k false;
          fa_dead = false;
          fa_const = None;
          fa_const_exact = None;
          fa_global = None;
        }

type analysis = {
  an_facts : facts list;  (* topological order *)
  an_care_any : Bdd.t;
  an_outputs : (string * Bdd.t) list;  (* exact forward pass, may be [] *)
  an_cares : (string * Bdd.t) list;
  an_df : Dataflow.t option;  (* cheap-tier facts, when screening is on *)
}

let analyze_network ?care_of_output ?(dataflow = true) ~analysis_nodes
    ~analysis_timeout ?stats m ~var_of_input net =
  let df = if dataflow then Some (Dataflow.analyze net) else None in
  (match (stats, df) with
  | Some st, Some df ->
      st.Stats.df_iterations <- st.Stats.df_iterations + Dataflow.iterations df;
      st.Stats.df_facts <- st.Stats.df_facts + Dataflow.fact_count df
  | _ -> ());
  let full_observable =
    Option.map (Semantics.full_observable_hint ?care_of_output m net) df
  in
  let check =
    Careflow.limiter ~max_nodes:analysis_nodes ~timeout:analysis_timeout m ()
  in
  let flow =
    Careflow.analyze ?care_of_output ?full_observable ~check m ~var_of_input
      net
  in
  (match stats with
  | Some st ->
      st.Stats.screened_out <- st.Stats.screened_out + flow.Careflow.screened
  | None -> ());
  let exact =
    List.map (facts_of_exact m flow.Careflow.care_any) flow.Careflow.nodes
  in
  let windowed =
    match flow.Careflow.truncated with
    | None -> []
    | Some _ ->
        let analyzed = Hashtbl.create 64 in
        List.iter
          (fun f -> Hashtbl.replace analyzed (Network.signal_id f.fa_signal) ())
          exact;
        let remaining =
          List.filter
            (fun s -> not (Hashtbl.mem analyzed (Network.signal_id s)))
            (Network.lut_signals net)
        in
        let ctx = Window.context net in
        let counters = Complete_dc.counters () in
        (* Monotonic wall time, never processor time: a CPU-time clock
           advances at N-times wall rate under worker domains (deadline
           fires early) and barely advances while blocked (never
           fires).  The srclint rules keep it that way. *)
        let deadline = Mono.now () +. 20.0 in
        let sat_check () =
          if Mono.now () > deadline then
            raise (Careflow.Cutoff "windowed-analysis timeout")
        in
        let results = ref [] in
        let screened = ref 0 in
        (try
           List.iter
             (fun s ->
               match df with
               | Some df when Semantics.window_screenable net df s -> (
                   (* proven finding-free: same facts, no SAT call *)
                   match facts_of_screened net s with
                   | Some f ->
                       incr screened;
                       results := f :: !results
                   | None -> ())
               | _ -> (
                   match
                     Complete_dc.analyze_node ~max_conflicts:2000
                       ~check:sat_check ~counters ctx s
                   with
                   | Some r -> (
                       match facts_of_window net r with
                       | Some f -> results := f :: !results
                       | None -> ())
                   | None -> ()))
             remaining
         with Careflow.Cutoff _ -> ());
        (match stats with
        | Some st ->
            st.Stats.sat_calls <-
              st.Stats.sat_calls + counters.Complete_dc.sat_calls;
            st.Stats.sat_conflicts <-
              st.Stats.sat_conflicts + counters.Complete_dc.sat_conflicts;
            st.Stats.windows_built <-
              st.Stats.windows_built + counters.Complete_dc.windows_built;
            st.Stats.screened_out <- st.Stats.screened_out + !screened
        | None -> ());
        List.rev !results
  in
  (match stats with
  | Some st ->
      st.Stats.sem_nodes <-
        st.Stats.sem_nodes + List.length exact + List.length windowed;
      if flow.Careflow.truncated <> None then
        st.Stats.sem_truncations <- st.Stats.sem_truncations + 1
  | None -> ());
  {
    an_facts = exact @ windowed;
    an_care_any = flow.Careflow.care_any;
    an_outputs = flow.Careflow.outputs;
    an_cares = flow.Careflow.cares;
    an_df = df;
  }

(* ---- rewrite decisions ---- *)

type decision =
  | Keep
  | Const of bool
  | Alias of Network.signal * bool  (* representative, complemented *)
  | Retable of Network.signal array * Bv.t

type tier = Full | Safe

(* Greedy fanin pruning: a fanin is redundant when every row pair
   differing only in it either agrees or has a refillable side; the
   refill keeps the pinned value where one exists.  This is the node
   re-expressed as an ISF whose dc-set is its complete don't cares.

   [only] restricts the positions tried to a candidate list (original
   fanin indices).  The loop runs high to low, so when it considers
   position [j] only higher positions can have been dropped and [j]
   still names the original fanin — the candidate indices stay valid
   throughout. *)
let prune_fanins ?only fanins tt free =
  let candidate j =
    match only with None -> true | Some l -> List.mem j l
  in
  let fanins = ref (Array.of_list fanins) in
  let tt = ref tt and free = ref free in
  let dropped = ref [] in
  let j = ref (Array.length !fanins - 1) in
  while !j >= 0 do
    let k = Array.length !fanins in
    let bit = 1 lsl !j in
    let can =
      candidate !j
      && List.for_all
           (fun c ->
             c land bit <> 0
             || Bv.get !free c
             || Bv.get !free (c lor bit)
             || Bv.get !tt c = Bv.get !tt (c lor bit))
           (List.init (1 lsl k) Fun.id)
    in
    if can then begin
      let expand c' =
        (* insert a 0 at position j of the (k-1)-variable code *)
        let low = c' land (bit - 1) in
        let high = (c' lsr !j) lsl (!j + 1) in
        high lor low
      in
      let value c' =
        let c0 = expand c' in
        let c1 = c0 lor bit in
        if not (Bv.get !free c0) then Bv.get !tt c0
        else if not (Bv.get !free c1) then Bv.get !tt c1
        else false
      in
      let freedom c' =
        let c0 = expand c' in
        Bv.get !free c0 && Bv.get !free (c0 lor bit)
      in
      dropped := !fanins.(!j) :: !dropped;
      fanins :=
        Array.append (Array.sub !fanins 0 !j)
          (Array.sub !fanins (!j + 1) (k - 1 - !j));
      tt := Bv.of_fun (k - 1) value;
      free := Bv.of_fun (k - 1) freedom
    end;
    decr j
  done;
  (!fanins, !tt, List.rev !dropped)

(* One set of simultaneous decisions over one analysis.  Returns the
   per-node decisions, the output redirections (duplicate output ->
   representative output) and the action log. *)
let decide ~screened tier m net an =
  let name_of = namer net in
  let no_care = Bdd.is_zero an.an_care_any in
  let decisions = Hashtbl.create 64 in
  let redirects = ref [] in
  let actions = ref [] in
  let act rule s detail =
    actions := { rule; node = name_of s; detail } :: !actions
  in
  let decided s = Hashtbl.mem decisions (Network.signal_id s) in
  let set s d = Hashtbl.replace decisions (Network.signal_id s) d in
  let free_of f = match tier with Full -> f.fa_free | Safe -> f.fa_unreach in
  if not no_care then begin
    (* 1. constants and dead nodes *)
    List.iter
      (fun f ->
        match tier with
        | Full -> (
            match f.fa_const with
            | Some v ->
                set f.fa_signal (Const v);
                act Fold_constant f.fa_signal
                  (Printf.sprintf "constant %d on the care set" (Bool.to_int v))
            | None ->
                if f.fa_dead then begin
                  set f.fa_signal (Const false);
                  act Drop_dead f.fa_signal
                    "complementing it never changes a cared-for output"
                end)
        | Safe -> (
            match f.fa_const_exact with
            | Some v ->
                set f.fa_signal (Const v);
                act Fold_constant f.fa_signal
                  (Printf.sprintf "computes constant %d" (Bool.to_int v))
            | None -> ()))
      an.an_facts;
    (* 2. semantic duplicates (exact engine only: needs globals).  The
       representative must precede the node in id order — the rebuild
       maps ids ascending, so an alias can only point backwards. *)
    let reps = ref [] in
    List.iter
      (fun f ->
        match f.fa_global with
        | None -> ()
        | Some g ->
            if not (decided f.fa_signal) then begin
              let found =
                List.find_opt
                  (fun (rs, rg) ->
                    Network.signal_id rs < Network.signal_id f.fa_signal
                    &&
                    match tier with
                    | Safe -> Bdd.equal g rg
                    | Full ->
                        Bdd.equal_on m ~care:an.an_care_any g rg
                        || (List.length (Network.fanins net f.fa_signal) >= 2
                            && Bdd.equal_on m ~care:an.an_care_any
                                 (Bdd.not_ m g) rg))
                  !reps
              in
              match found with
              | Some (rs, rg) ->
                  let complemented =
                    match tier with
                    | Safe -> false
                    | Full -> not (Bdd.equal_on m ~care:an.an_care_any g rg)
                  in
                  set f.fa_signal (Alias (rs, complemented));
                  act Merge_duplicate f.fa_signal
                    (Printf.sprintf "same function as %s%s" (name_of rs)
                       (if complemented then " (complemented)" else ""))
              | None -> reps := (f.fa_signal, g) :: !reps
            end)
      an.an_facts;
    (* 3. identical outputs: repoint the later at the earlier's driver *)
    let rec out_pairs = function
      | [] -> ()
      | (name, g) :: rest ->
          List.iter
            (fun (name', g') ->
              if not (List.mem_assoc name' !redirects) then begin
                let same =
                  match tier with
                  | Safe -> Bdd.equal g g'
                  | Full ->
                      let care =
                        Bdd.or_ m
                          (List.assoc name an.an_cares)
                          (List.assoc name' an.an_cares)
                      in
                      (not (Bdd.is_zero care)) && Bdd.equal_on m ~care g g'
                in
                let d = List.assoc name (Network.outputs net)
                and d' = List.assoc name' (Network.outputs net) in
                if same && not (Network.signal_equal d d') then begin
                  redirects := (name', name) :: !redirects;
                  actions :=
                    {
                      rule = Merge_outputs;
                      node = name';
                      detail = Printf.sprintf "identical to output %s" name;
                    }
                    :: !actions
                end
              end)
            rest;
          out_pairs rest
    in
    out_pairs an.an_outputs;
    (* 4. mergeable twins: same canonical fanin set, and every table
       disagreement falls on a bit at least one side may flip.  All
       compatible members are retabled to one merged table, which the
       rebuild's structural hashing then unifies into a single LUT. *)
    let groups = Hashtbl.create 16 in
    let group_keys = ref [] in
    List.iter
      (fun f ->
        if not (decided f.fa_signal) then
          match Network.view net f.fa_signal with
          | `Input _ | `Const _ -> ()
          | `Lut (fanins, tt) ->
              let sorted, ctt, remap = Net_check.canonical_lut fanins tt in
              let key =
                String.concat ","
                  (Array.to_list
                     (Array.map
                        (fun s -> string_of_int (Network.signal_id s))
                        sorted))
              in
              if not (Hashtbl.mem groups key) then
                group_keys := key :: !group_keys;
              Hashtbl.add groups key (f, sorted, ctt, remap))
      an.an_facts;
    List.iter
      (fun key ->
        match List.rev (Hashtbl.find_all groups key) with
        | [] | [ _ ] -> ()
        | (rep, sorted, rep_tt, rep_remap) :: rest ->
            let k = Bv.nvars rep_tt in
            let nrows = 1 lsl k in
            let codes = List.init nrows Fun.id in
            (* merged table state: value + pinned (some member fixed it) *)
            let value = Array.init nrows (fun c -> Bv.get rep_tt c) in
            let pinned =
              Array.init nrows (fun c ->
                  not (Bv.get (free_of rep) (rep_remap c)))
            in
            let merged = ref [] in
            List.iter
              (fun (f, _, ctt, remap) ->
                let compatible =
                  List.for_all
                    (fun c ->
                      let fixed = not (Bv.get (free_of f) (remap c)) in
                      (not fixed)
                      || (not pinned.(c))
                      || value.(c) = Bv.get ctt c)
                    codes
                in
                if compatible then begin
                  List.iter
                    (fun c ->
                      if not (Bv.get (free_of f) (remap c)) then begin
                        value.(c) <- Bv.get ctt c;
                        pinned.(c) <- true
                      end)
                    codes;
                  merged := f :: !merged
                end)
              rest;
            if !merged <> [] then begin
              let tt' = Bv.of_fun k (fun c -> value.(c)) in
              set rep.fa_signal (Retable (sorted, tt'));
              List.iter
                (fun f ->
                  set f.fa_signal (Retable (sorted, tt'));
                  act Merge_twins f.fa_signal
                    (Printf.sprintf "free bits refilled to match LUT %s"
                       (name_of rep.fa_signal)))
                !merged
            end)
      (List.rev !group_keys);
    (* 5. fanin pruning on whatever is left.  When the table has no
       freedom (free vector all zero) a fanin is droppable exactly when
       the table ignores it — which the cheap dataflow tier already
       decided — so the trials are restricted to its SUP candidates
       (vacuous and support-contained positions) and a node with none
       is skipped outright. *)
    List.iter
      (fun f ->
        if not (decided f.fa_signal) then
          match Network.view net f.fa_signal with
          | `Input _ | `Const _ -> ()
          | `Lut (fanins, tt) ->
              let only =
                match an.an_df with
                | Some df when Bv.is_zero (free_of f) -> (
                    match Dataflow.fact_of df f.fa_signal with
                    | Some nf ->
                        Some
                          (List.sort_uniq compare
                             (nf.Dataflow.nf_vacuous
                             @ nf.Dataflow.nf_contained))
                    | None -> None)
                | _ -> None
              in
              let fanins = Array.to_list fanins in
              if fanins <> [] then
                match only with
                | Some [] -> incr screened  (* provably nothing to prune *)
                | _ ->
                    let fanins', tt', dropped =
                      prune_fanins ?only fanins tt (free_of f)
                    in
                    if dropped <> [] then begin
                      (if Array.length fanins' = 0 then
                         set f.fa_signal (Const (Bv.get tt' 0))
                       else set f.fa_signal (Retable (fanins', tt')));
                      act Prune_fanins f.fa_signal
                        (Printf.sprintf "dropped redundant fanin%s %s"
                           (if List.length dropped > 1 then "s" else "")
                           (String.concat ", " (List.map name_of dropped)))
                    end)
      an.an_facts
  end;
  (decisions, !redirects, List.rev !actions)

(* ---- rebuild ---- *)

let rebuild net decisions redirects =
  let out = Network.create () in
  let map = Hashtbl.create 64 in
  let input_sig = Hashtbl.create 16 in
  (* preserve every declared input, referenced or not *)
  List.iter
    (fun (name, s) ->
      let ns =
        match Hashtbl.find_opt input_sig name with
        | Some ns -> ns
        | None ->
            let ns = Network.add_input out name in
            Hashtbl.add input_sig name ns;
            ns
      in
      Hashtbl.replace map (Network.signal_id s) ns)
    (Network.inputs net);
  let mapped s =
    match Hashtbl.find_opt map (Network.signal_id s) with
    | Some ns -> ns
    | None ->
        invalid_arg
          (Printf.sprintf "Optimize.rebuild: fanin n%d out of order"
             (Network.signal_id s))
  in
  (* ids are allocated fanins-first, so id order is a topological order *)
  for i = 0 to Network.node_count net - 1 do
    let s = Network.signal_of_id net i in
    if not (Hashtbl.mem map i) then
      match Network.view net s with
      | `Input name -> Hashtbl.replace map i (Network.add_input out name)
      | `Const b -> Hashtbl.replace map i (Network.const out b)
      | `Lut (fanins, tt) ->
          let ns =
            match Option.value ~default:Keep (Hashtbl.find_opt decisions i) with
            | Keep ->
                Network.add_lut out
                  ~fanins:(List.map mapped (Array.to_list fanins))
                  ~tt
            | Const b -> Network.const out b
            | Alias (rep, complemented) ->
                let r = mapped rep in
                if complemented then Network.not_gate out r else r
            | Retable (fanins', tt') ->
                Network.add_lut out
                  ~fanins:(List.map mapped (Array.to_list fanins'))
                  ~tt:tt'
          in
          Hashtbl.replace map i ns
  done;
  let out_driver = Network.outputs net in
  List.iter
    (fun (name, s) ->
      let target =
        match List.assoc_opt name redirects with
        | Some rep_name ->
            Option.value ~default:s (List.assoc_opt rep_name out_driver)
        | None -> s
      in
      Network.set_output out name (mapped target))
    out_driver;
  Network.sweep out

(* ---- the loop ---- *)

type attempt = Accepted of Network.t * action list | Rejected | Nothing

let run ?care_of_output ?(max_passes = 4) ?(audit_engine = `Bdd)
    ?(analysis_nodes = 4_000_000) ?(analysis_timeout = 30.0) ?(dataflow = true)
    ?stats m net0 =
  let inputs = List.mapi (fun k (name, _) -> (name, k)) (Network.inputs net0) in
  let var_of_input name =
    match List.assoc_opt name inputs with
    | Some v -> v
    | None ->
        invalid_arg (Printf.sprintf "Optimize.run: unmapped input %s" name)
  in
  let audit_candidate cand =
    match audit_engine with
    | `Bdd ->
        Semantics.audit ?care_of_output m ~inputs ~golden:net0 ~candidate:cand
    | `Sat ->
        (* stricter than the care-set audit (full equivalence), so it is
           a sound guard even though it ignores [care_of_output]; an
           Unknown verdict counts as a rejection *)
        let a =
          Semantics.audit_sat ~golden:net0 ~candidate:cand (List.map fst inputs)
        in
        (match stats with
        | Some st ->
            st.Stats.sat_calls <-
              st.Stats.sat_calls + a.Semantics.audit_sat_calls;
            st.Stats.sat_conflicts <-
              st.Stats.sat_conflicts + a.Semantics.audit_sat_conflicts
        | None -> ());
        a.Semantics.audit_findings
  in
  let luts_of n = (Network.stats n).Network.lut_count in
  let clbs_of n = Clb.clb_count Clb.Max_matching n in
  let luts_before = luts_of net0 and clbs_before = clbs_of net0 in
  let rec loop net passes reverted actions =
    if passes >= max_passes then (net, passes, reverted, actions)
    else begin
      let an =
        analyze_network ?care_of_output ~dataflow ~analysis_nodes
          ~analysis_timeout ?stats m ~var_of_input net
      in
      let attempt tier =
        let screened = ref 0 in
        let decisions, redirects, acts = decide ~screened tier m net an in
        (match stats with
        | Some st ->
            st.Stats.screened_out <- st.Stats.screened_out + !screened
        | None -> ());
        if acts = [] then Nothing
        else begin
          let cand = rebuild net decisions redirects in
          (* a rewrite pass must never grow the network *)
          if luts_of cand > luts_of net then Rejected
          else if audit_candidate cand = [] then Accepted (cand, acts)
          else Rejected
        end
      in
      match attempt Full with
      | Accepted (cand, acts) -> loop cand (passes + 1) reverted (actions @ acts)
      | Nothing -> (net, passes, reverted, actions)
      | Rejected -> (
          match attempt Safe with
          | Accepted (cand, acts) ->
              loop cand (passes + 1) (reverted + 1) (actions @ acts)
          | Nothing -> (net, passes, reverted + 1, actions)
          | Rejected -> (net, passes, reverted + 2, actions))
    end
  in
  let net, passes, reverted, actions = loop net0 0 0 [] in
  let audit = if passes = 0 then [] else audit_candidate net in
  {
    network = net;
    passes;
    reverted;
    actions;
    luts_before;
    luts_after = luts_of net;
    clbs_before;
    clbs_after = clbs_of net;
    audit;
  }
