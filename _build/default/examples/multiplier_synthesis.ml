(* Figure 3 scenario: the partial multiplier pm_n.  Inputs are the n^2
   partial-product bits p_{i,j}, outputs the 2n product bits.  The
   paper's tool discovers a columnwise addition scheme; without the
   don't-care assignment the circuit has 75% more gates (pm_4), and the
   Wallace-tree multiplier needs 10n^2 - 20n gates.

   Run with:  dune exec examples/multiplier_synthesis.exe [n] *)

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 3 in
  let m = Bdd.manager () in
  let spec = Arith.partial_multiplier m ~n in

  Format.printf "=== partial multiplier pm_%d (%d inputs, %d outputs) ===@.@."
    n (n * n) (2 * n);

  (* Wallace-tree reference, built structurally from FA/HA cells. *)
  let wallace = Circuits.wallace_partial_multiplier ~n in
  let w_stats = Network.stats wallace in
  let var_of_input = Circuits.partial_product_index ~n in
  assert (
    Network.equivalent_to_spec wallace m ~var_of_input
      (List.map (fun (nm, f) -> (nm, Isf.on f)) spec.Driver.functions));
  Format.printf "wallace tree           : %d two-input gates, depth %d (paper formula 10n^2-20n = %d)@."
    w_stats.Network.lut_count w_stats.Network.depth
    (Circuits.wallace_gate_formula n);

  let synth name alg =
    let o = Mulop.run ~lut_size:2 m alg spec in
    let st = Network.stats o.Mulop.network in
    assert (Driver.verify m spec o.Mulop.network);
    Format.printf "%s: %d two-input gates, depth %d@." name
      st.Network.lut_count st.Network.depth;
    st.Network.lut_count
  in
  let with_dc = synth "mulop-dc (with DCs)   " Mulop.Mulop_dc in
  let without = synth "without DC assignment " Mulop.Mulop_ii in
  Format.printf "@.gate overhead without the DC concept: %+.0f%% (paper: +75%% for pm_4)@."
    (100.0 *. (float_of_int without /. float_of_int with_dc -. 1.0))
