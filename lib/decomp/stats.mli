(** Decomposition statistics: counters for the bound-set scoring cache
    and per-phase wall-clock time of the driver loop.

    One mutable record accumulates everything.  A [Stats.t] is owned by
    exactly one decomposition run: front ends ([mfd --stats], the bench
    harness, the batch engine) {!create} one per run, pass it to
    {!Driver.decompose_report} / {!Mulop.run} / {!Budget.create}, and
    print it afterwards.  There is deliberately no process-global
    instance — concurrent runs in separate domains each own their stats,
    so the counters are data-race-free by construction.  Counters only
    ever increase between resets. *)

type t = {
  mutable score_calls : int;  (** {!Bound_select.score} invocations *)
  mutable score_hits : int;  (** of which served from the score memo *)
  mutable cof_lookups : int;  (** cofactor-vector requests *)
  mutable cof_hits : int;  (** exact vector found in the cache *)
  mutable cof_extends : int;
      (** vectors built incrementally from a cached subset *)
  mutable cof_fresh : int;  (** vectors built from the root *)
  mutable restricts : int;  (** ISF restricts spent building vectors *)
  mutable retains : int;  (** cache invalidation passes *)
  mutable evicted : int;  (** entries dropped by invalidation *)
  mutable budget_checks : int;  (** {!Budget.check} polls performed *)
  mutable result_hits : int;
      (** cross-request result-cache hits (the serve daemon's cache of
          whole decomposition results, keyed on semantic fingerprints) *)
  mutable result_misses : int;  (** cross-request result-cache misses *)
  mutable sem_nodes : int;
      (** LUT nodes analyzed by the deep semantic (SDC/ODC) pass *)
  mutable sem_truncations : int;
      (** semantic passes cut short by the budget (at most 1 per run) *)
  mutable sat_calls : int;
      (** CDCL solver invocations by the windowed don't-care fallback
          and the SAT audit (mirrored from the check layer, like
          [findings]) *)
  mutable sat_conflicts : int;  (** conflicts across those calls *)
  mutable windows_built : int;  (** windows extracted for SAT analysis *)
  mutable df_iterations : int;
      (** dataflow fixpoint-solver node visits (all lattice domains),
          mirrored from the check layer's screening tier *)
  mutable df_facts : int;  (** facts the dataflow tier derived *)
  mutable screened_out : int;
      (** expensive-engine work units (exact ODC computations, SAT
          windows) skipped on the strength of a dataflow fact *)
  mutable degradations : (string * string * string) list;
      (** budget degradation events, newest first:
          [(stage entered, resource exceeded, where it was detected)] *)
  mutable findings : (string * string * string) list;
      (** [--check] assertion-layer findings, newest first:
          [(severity, code, message)] — the typed findings live in the
          driver report; these mirrors keep [Stats] free of a [Check]
          dependency *)
  phases : (string, float) Hashtbl.t;  (** per-phase wall time, seconds *)
}

val create : unit -> t
val reset : t -> unit

val merge : into:t -> t -> unit
(** Accumulate another run's counters, events and phase times into
    [into] (which is unchanged otherwise).  Used by front ends that
    aggregate per-run instances — e.g. a bench section over many runs,
    or a batch report over many jobs. *)

val add_phase : t -> string -> float -> unit
val phase_time : t -> string -> float

val add_degradation : t -> stage:string -> reason:string -> where:string -> unit
(** Record one budget degradation event (the driver entered [stage]
    because [reason] was exceeded, detected at poll point [where]). *)

val degradations : t -> (string * string * string) list
(** Degradation events in the order they fired. *)

val add_finding : t -> severity:string -> code:string -> message:string -> unit
(** Record one assertion-layer finding (driver [--check] hooks). *)

val findings : t -> (string * string * string) list
(** Findings in the order they fired, as [(severity, code, message)]. *)

val score_misses : t -> int
val score_hit_rate : t -> float
(** Fraction of {!Bound_select.score} calls answered by the memo
    ([0.] when no calls were made). *)

val cof_hit_rate : t -> float
(** Fraction of cofactor-vector requests answered without a
    from-the-root computation (cached or incrementally extended). *)

val result_hit_rate : t -> float
(** Fraction of result-cache lookups served from the cache ([0.] when
    no lookups were made). *)

(** A phase clock marks the boundaries between the named phases of a
    loop iteration; the elapsed time since the previous mark is added
    to the named bucket. *)

type clock

val clock : t -> clock
val mark : clock -> string -> float
(** [mark ck name] accumulates the time since the last mark (or since
    {!clock}) into phase [name] and returns it.  Clocks read
    {!Mono.now}, so phase durations are immune to wall-clock steps. *)

(** {1 JSON projection}

    The per-run statistics object of the bench schema
    ([bench_schema] 1): every counter under its field name, plus
    ["degradations"], ["findings"] and ["phases"].  {!Bench_report}
    embeds this object verbatim in [BENCH_*.json]; [mfd run --json]
    emits the same shape, so one reader handles both. *)

val counter_names : string list
(** Field names of all integer counters, in schema order.  The bench
    diff iterates this list, so a counter added to {!t} (and to the
    internal field table) is gated automatically. *)

val counter : t -> string -> int
(** Read a counter by its schema field name.
    @raise Invalid_argument on names not in {!counter_names}. *)

val to_json : t -> Json.t

val of_json : Json.t -> (t, string) result
(** Tolerant inverse of {!to_json}: unknown fields are ignored and
    missing counters default to [0], so a newer reader accepts run
    objects written by an older schema.  Errors only on a value that
    is not a JSON object. *)

val pp : Format.formatter -> t -> unit
