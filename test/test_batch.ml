(* The domain-parallel batch engine: results must be independent of the
   worker-domain count (each job owns its manager/budget/stats, so
   scheduling cannot leak into the outcome), failures must stay confined
   to their job, and the report renderers must stay well-formed. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let names n = List.init n (Printf.sprintf "x%d")

let contains s sub =
  let n = String.length sub in
  let rec at i =
    i + n <= String.length s && (String.sub s i n = sub || at (i + 1))
  in
  at 0

(* A deterministic pseudo-random job: the spec is rebuilt from the seed
   inside whichever worker domain claims the job, on that run's own
   manager. *)
let random_job ~nvars seed =
  Batch.job ~name:(Printf.sprintf "rnd%d" seed) (fun m ->
      let st = Random.State.make [| seed |] in
      Driver.spec_of_csf m (names nvars)
        [
          ("f", Bdd.random m ~nvars ~density:0.4 st);
          ("g", Bdd.random m ~nvars ~density:0.55 st);
        ])

(* The scheduling-independent projection of a report: per-job outcome in
   submission order, without the wall-clock fields. *)
let fingerprint report =
  List.map
    (fun r ->
      match r.Batch.outcome with
      | Ok s ->
          Ok
            ( r.Batch.job,
              s.Batch.lut_count,
              s.Batch.clb_count,
              s.Batch.depth,
              s.Batch.step_count,
              s.Batch.shannon_count,
              List.length s.Batch.findings,
              s.Batch.verified )
      | Error e -> Error (r.Batch.job, e.Batch.kind, e.Batch.message))
    report.Batch.results

let batch_tests =
  [
    Alcotest.test_case "every job verified, rows in submission order" `Quick
      (fun () ->
        let jobs = List.map (random_job ~nvars:6) [ 3; 14; 15; 92 ] in
        let report = Batch.run ~jobs:2 ~verify:true jobs in
        check_int "one row per job" (List.length jobs)
          (List.length report.Batch.results);
        List.iter2
          (fun jb r ->
            check_bool "submission order kept" true (jb.Batch.name = r.Batch.job);
            match r.Batch.outcome with
            | Ok s -> check_bool "verified" true (s.Batch.verified = Some true)
            | Error e -> Alcotest.fail (r.Batch.job ^ ": " ^ e.Batch.message))
          jobs report.Batch.results;
        check_bool "no failures" true (Batch.failures report = []);
        check_bool "per-job stats populated" true
          (List.for_all
             (fun r -> r.Batch.stats.Stats.score_calls > 0)
             report.Batch.results));
    Alcotest.test_case "a failing job is confined to its row" `Quick (fun () ->
        let boom =
          Batch.job ~name:"boom" (fun _ -> failwith "no such benchmark")
        in
        let jobs = [ random_job ~nvars:5 1; boom; random_job ~nvars:5 2 ] in
        let report = Batch.run ~jobs:3 jobs in
        (match fingerprint report with
        | [ Ok _; Error ("boom", Batch.Other, msg); Ok _ ] ->
            check_bool "failure message survives" true
              (contains msg "no such benchmark")
        | _ -> Alcotest.fail "expected ok/failed/ok rows in order");
        match Batch.failures report with
        | [ ("boom", _) ] -> ()
        | fs -> check_int "exactly one failure" 1 (List.length fs));
    Alcotest.test_case "more domains than jobs is clamped" `Quick (fun () ->
        let jobs = [ random_job ~nvars:5 7 ] in
        let report = Batch.run ~jobs:8 jobs in
        check_int "domains clamped to job count" 1 report.Batch.domains;
        check_bool "job succeeded" true (Batch.failures report = []));
    Alcotest.test_case "error taxonomy: one kind per failure category" `Quick
      (fun () ->
        (* Each category of job failure must keep its structured kind in
           the report — the old string flattening made them
           indistinguishable (the serve protocol maps kinds to
           client-error vs engine-fault codes). *)
        let reject kind msg =
          Batch.job ~name:(Batch.error_kind_name kind) (fun _ ->
              raise (Batch.Job_rejected (kind, msg)))
        in
        let internal =
          Batch.job ~name:"internal" (fun _ ->
              raise (Driver.Internal (Driver.Iteration_limit 7)))
        in
        let oob =
          Batch.job ~name:"oob" (fun _ ->
              raise
                (Budget.Out_of_budget
                   { reason = Budget.Deadline; where = "spec build" }))
        in
        let plain = Batch.job ~name:"plain" (fun _ -> failwith "boom") in
        let report =
          Batch.run
            [ reject Batch.Parse_error "x.blif:3: bad cube"; internal; oob; plain ]
        in
        (match fingerprint report with
        | [
         Error (_, Batch.Parse_error, pmsg);
         Error (_, Batch.Internal, imsg);
         Error (_, Batch.Out_of_budget, omsg);
         Error (_, Batch.Other, bmsg);
        ] ->
            check_bool "parse message" true (contains pmsg "x.blif:3");
            check_bool "internal message" true (contains imsg "iteration");
            check_bool "budget message" true (contains omsg "deadline");
            check_bool "other message" true (contains bmsg "boom")
        | _ -> Alcotest.fail "expected four structured failure rows");
        let json = Batch.to_json report in
        List.iter
          (fun kind ->
            check_bool
              ("json carries " ^ kind)
              true
              (contains json (Printf.sprintf "\"error_kind\":%S" kind)))
          [ "parse-error"; "internal"; "out-of-budget"; "other" ];
        let text = Format.asprintf "%a" (Batch.pp_text ~stats:false) report in
        check_bool "text tags the kind" true (contains text "FAILED[parse-error]"));
    Alcotest.test_case "classify maps every exception category" `Quick
      (fun () ->
        let kind_of e = (Batch.classify e).Batch.kind in
        check_bool "job_rejected keeps its kind" true
          (kind_of (Batch.Job_rejected (Batch.Parse_error, "m")) = Batch.Parse_error);
        check_bool "driver internal" true
          (kind_of (Driver.Internal Driver.Worklist_deadlock) = Batch.Internal);
        check_bool "out of budget" true
          (kind_of (Budget.Out_of_budget { reason = Budget.Nodes; where = "w" })
          = Batch.Out_of_budget);
        check_bool "failure is other" true
          (kind_of (Failure "f") = Batch.Other);
        check_bool "arbitrary exception is other" true
          (kind_of Exit = Batch.Other));
    Alcotest.test_case "job timing is monotonic and non-negative" `Quick
      (fun () ->
        let report = Batch.run [ random_job ~nvars:5 11 ] in
        check_bool "wall >= 0" true (report.Batch.wall >= 0.0);
        List.iter
          (fun r -> check_bool "seconds >= 0" true (r.Batch.seconds >= 0.0))
          report.Batch.results;
        (* Mono.now never goes backwards across repeated samples. *)
        let last = ref (Mono.now ()) in
        for _ = 1 to 10_000 do
          let t = Mono.now () in
          check_bool "monotone" true (t >= !last);
          last := t
        done);
    Alcotest.test_case "report renderers are well-formed" `Quick (fun () ->
        let jobs =
          [ random_job ~nvars:5 4;
            Batch.job ~name:"bad" (fun _ -> failwith "parse error") ]
        in
        let report = Batch.run ~jobs:2 ~verify:true jobs in
        let text = Format.asprintf "%a" (Batch.pp_text ~stats:true) report in
        check_bool "table mentions every job" true
          (contains text "rnd4"
          && contains text "bad"
          && contains text "FAILED");
        let json = Batch.to_json report in
        check_bool "json has both statuses" true
          (contains json "\"status\":\"ok\""
          && contains json "\"status\":\"failed\"");
        check_bool "json escapes the error" true
          (contains json "parse error"));
  ]

(* The headline property: the per-job results of a parallel batch are
   job-for-job identical to the sequential ones, and a clean spec stays
   clean under --check=full in both. *)
let props =
  [
    QCheck2.Test.make ~name:"batch: jobs:4 report equals jobs:1 report"
      ~count:8
      QCheck2.Gen.(list_size (int_range 3 6) (int_range 0 1000))
      (fun seeds ->
        let jobs = List.mapi (fun k s -> random_job ~nvars:6 (s + (k * 1009))) seeds in
        let sequential =
          Batch.run ~jobs:1 ~checks:Diagnostic.Full ~verify:true jobs
        in
        let parallel =
          Batch.run ~jobs:4 ~checks:Diagnostic.Full ~verify:true jobs
        in
        let seq = fingerprint sequential and par = fingerprint parallel in
        seq = par
        && List.for_all
             (function
               | Ok (_, _, _, _, _, _, findings, verified) ->
                   findings = 0 && verified = Some true
               | Error _ -> false)
             seq);
  ]

let suite =
  batch_tests @ List.map (fun p -> QCheck_alcotest.to_alcotest ~long:false p) props
