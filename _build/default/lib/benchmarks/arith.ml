let names prefix count = List.init count (Printf.sprintf "%s%d" prefix)

let spec m inputs outputs =
  Driver.spec_of_csf m inputs outputs

let adder m ~bits =
  let x = Bvec.inputs m ~first_var:0 ~width:bits in
  let y = Bvec.inputs m ~first_var:bits ~width:bits in
  let s = Bvec.add_mod m x y in
  spec m (names "x" bits @ names "y" bits) (Bvec.named_outputs "f" s)

let adder_with_carry m ~bits =
  let x = Bvec.inputs m ~first_var:0 ~width:bits in
  let y = Bvec.inputs m ~first_var:bits ~width:bits in
  let s = Bvec.add m x y in
  spec m (names "x" bits @ names "y" bits) (Bvec.named_outputs "f" s)

let partial_multiplier m ~n =
  (* input p_{i,j} is variable i*n + j; column k sums all p_{i,j} with
     i + j = k, weighted 2^(i+j) *)
  let input_names =
    List.concat
      (List.init n (fun i -> List.init n (fun j -> Printf.sprintf "p%d_%d" i j)))
  in
  let w = 2 * n in
  let partials =
    List.concat
      (List.init n (fun i ->
           List.init n (fun j ->
               let bit = Bdd.var m ((i * n) + j) in
               Array.init w (fun k -> if k = i + j then bit else Bdd.zero m))))
  in
  let r = Bvec.sum m ~width:w partials in
  spec m input_names (Bvec.named_outputs "r" r)

let rd m ~inputs =
  let bits = List.init inputs (Bdd.var m) in
  let weight = Bvec.popcount m bits in
  spec m (names "x" inputs) (Bvec.named_outputs "f" weight)

let sym9 m =
  let bits = List.init 9 (Bdd.var m) in
  let weight = Bvec.popcount m bits in
  let w4 = Bvec.zero_extend m weight ~width:4 in
  let ge3 = Bdd.not_ m (Bvec.ult m w4 (Bvec.consti m ~width:4 3)) in
  let le6 = Bvec.ult m w4 (Bvec.consti m ~width:4 7) in
  spec m (names "x" 9) [ ("f0", Bdd.and_ m ge3 le6) ]

let z4ml m =
  let a = Bvec.inputs m ~first_var:0 ~width:3 in
  let b = Bvec.inputs m ~first_var:3 ~width:3 in
  let cin = [| Bdd.var m 6 |] in
  let s = Bvec.sum m ~width:4 [ a; b; cin ] in
  spec m (names "a" 3 @ names "b" 3 @ [ "cin" ]) (Bvec.named_outputs "f" s)

let x5p1 m =
  let v = Bvec.inputs m ~first_var:0 ~width:7 in
  let five_v = Bvec.mulc m v 5 in
  let v_div8 = Bvec.extract v ~lo:3 ~hi:6 in
  let r =
    Bvec.sum m ~width:10 [ five_v; v_div8 ]
  in
  spec m (names "x" 7) (Bvec.named_outputs "f" r)

let f51m m =
  let a = Bvec.inputs m ~first_var:0 ~width:4 in
  let b = Bvec.inputs m ~first_var:4 ~width:4 in
  let prod = Bvec.mul m a b in
  let r = Bvec.sum m ~width:8 [ prod; a ] in
  spec m (names "a" 4 @ names "b" 4) (Bvec.named_outputs "f" r)

let clip m =
  (* signed 9-bit value v; clip to the signed 5-bit range [-16, 15] *)
  let v = Bvec.inputs m ~first_var:0 ~width:9 in
  let sign = v.(8) in
  let high = Bvec.extract v ~lo:4 ~hi:8 in
  (* positive overflow: sign = 0 and some of bits 4..7 set;
     negative overflow: sign = 1 and some of bits 4..7 clear *)
  let any_high =
    Bdd.or_list m (Array.to_list (Bvec.extract high ~lo:0 ~hi:3))
  in
  let all_high =
    Bdd.and_list m (Array.to_list (Bvec.extract high ~lo:0 ~hi:3))
  in
  let pos_ovf = Bdd.and_ m (Bdd.not_ m sign) any_high in
  let neg_ovf = Bdd.and_ m sign (Bdd.not_ m all_high) in
  let low = Bvec.extract v ~lo:0 ~hi:3 in
  let sat_pos = Bvec.consti m ~width:4 15 and sat_neg = Bvec.consti m ~width:4 0 in
  let low' = Bvec.mux m pos_ovf sat_pos (Bvec.mux m neg_ovf sat_neg low) in
  let out_sign = Bdd.or_ m (Bdd.and_ m sign (Bdd.not_ m pos_ovf)) neg_ovf in
  let outs = Array.append low' [| out_sign |] in
  spec m (names "x" 9) (Bvec.named_outputs "f" outs)

let alu2 m =
  (* op (2 bits, vars 0-1), a (vars 2-5), b (vars 6-9) *)
  let op0 = Bdd.var m 0 and op1 = Bdd.var m 1 in
  let a = Bvec.inputs m ~first_var:2 ~width:4 in
  let b = Bvec.inputs m ~first_var:6 ~width:4 in
  let add = Bvec.add m a b in
  let not_b = Array.map (Bdd.not_ m) b in
  let sub = Bvec.sum m ~width:5 [ a; not_b; [| Bdd.one m |] ] in
  let land_ = Array.init 4 (fun k -> Bdd.and_ m a.(k) b.(k)) in
  let bxor = Array.init 4 (fun k -> Bdd.xor m a.(k) b.(k)) in
  let width5 v = Bvec.zero_extend m v ~width:5 in
  let result =
    Bvec.mux m op1
      (Bvec.mux m op0 (width5 bxor) (width5 land_))
      (Bvec.mux m op0 sub add)
  in
  let r4 = Bvec.extract result ~lo:0 ~hi:3 in
  let carry = result.(4) in
  let zero_flag = Bvec.equal_const m r4 0 in
  spec m
    ([ "op0"; "op1" ] @ names "a" 4 @ names "b" 4)
    (Bvec.named_outputs "r" r4 @ [ ("carry", carry); ("zero", zero_flag) ])

let count m =
  (* d (16, vars 0-15), l (16, vars 16-31), sel (32), en (33), clr (34) *)
  let d = Bvec.inputs m ~first_var:0 ~width:16 in
  let l = Bvec.inputs m ~first_var:16 ~width:16 in
  let sel = Bdd.var m 32 and en = Bdd.var m 33 and clr = Bdd.var m 34 in
  let incremented = Bvec.add_mod m d (Bvec.zero_extend m [| en |] ~width:16) in
  let chosen = Bvec.mux m sel l incremented in
  let out = Bvec.mux m clr (Bvec.consti m ~width:16 0) chosen in
  spec m
    (names "d" 16 @ names "l" 16 @ [ "sel"; "en"; "clr" ])
    (Bvec.named_outputs "q" out)

let c499 m =
  (* data (32, vars 0-31), check (8, vars 32-39), enable (40).
     Group-parity error handling: the 32 data bits form 8 groups of 4;
     syndrome bit t = check_t xor parity(group t); on a parity mismatch
     (and enable) the whole group is complemented.  XOR-dominated like
     the real C499 error-correcting circuit, with local supports that
     keep the flat specification BDDs small. *)
  let data i = Bdd.var m i in
  let syndrome t =
    List.fold_left
      (fun acc k -> Bdd.xor m acc (data ((4 * t) + k)))
      (Bdd.var m (32 + t))
      [ 0; 1; 2; 3 ]
  in
  let enable = Bdd.var m 40 in
  let outs =
    List.init 32 (fun i ->
        let flip = Bdd.and_ m enable (syndrome (i / 4)) in
        (Printf.sprintf "o%d" i, Bdd.xor m (data i) flip))
  in
  spec m (names "d" 32 @ names "c" 8 @ [ "en" ]) outs
