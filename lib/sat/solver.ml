(* MiniSat's architecture, reduced to what the don't-care analysis
   needs: two-watched-literal propagation, first-UIP learning, VSIDS
   activities with phase saving, Luby restarts, assumptions, and
   per-call budgets.  No clause-database reduction and no
   preprocessing — solvers here live for one window and a handful of
   enumeration calls, so learned clauses never pile up far. *)

(* A tiny growable vector; watch lists need in-place compaction, which
   OCaml lists cannot do without reallocation. *)
module Vec = struct
  type 'a t = { mutable data : 'a array; mutable size : int }

  let create () = { data = [||]; size = 0 }
  let size v = v.size
  let get v i = v.data.(i)
  let set v i x = v.data.(i) <- x

  let push v x =
    if v.size = Array.length v.data then begin
      let d = Array.make (max 4 (2 * Array.length v.data)) x in
      Array.blit v.data 0 d 0 v.size;
      v.data <- d
    end;
    v.data.(v.size) <- x;
    v.size <- v.size + 1

  let shrink v n = v.size <- n
end

type clause = int array
(* Watched literals are positions 0 and 1; a clause acting as a reason
   keeps its asserted literal at position 0 (propagation preserves
   this: a clause whose first watch is true is never reordered). *)

type outcome = Sat | Unsat | Unknown of string

type t = {
  nvars : int;
  assigns : int array;  (* per var: -1 unassigned / 0 false / 1 true *)
  level : int array;
  reason : clause option array;
  activity : float array;
  polarity : bool array;  (* saved phase, used as the decision value *)
  heap : int array;  (* max-heap of variables by activity *)
  mutable heap_size : int;
  heap_pos : int array;  (* var -> heap index, -1 when absent *)
  watches : clause Vec.t array;  (* indexed by literal *)
  trail : int array;
  mutable trail_size : int;
  mutable trail_lim : int array;  (* trail size at each decision-level start *)
  mutable trail_lim_size : int;  (* = current decision level *)
  mutable qhead : int;
  seen : bool array;  (* scratch of [analyze] *)
  mutable var_inc : float;
  mutable ok : bool;  (* false once the clause set is root-contradictory *)
  model : bool array;
  mutable has_model : bool;
  mutable n_conflicts : int;
  mutable n_decisions : int;
  mutable n_propagations : int;
  mutable n_restarts : int;
  mutable n_learned : int;
  mutable n_solve_calls : int;
}

let conflicts t = t.n_conflicts
let decisions t = t.n_decisions
let propagations t = t.n_propagations
let restarts t = t.n_restarts
let learned t = t.n_learned
let solve_calls t = t.n_solve_calls

let decision_level t = t.trail_lim_size

(* Value of a literal: -1 unassigned, 0 false, 1 true. *)
let lval t l =
  let v = t.assigns.(Cnf.var_of l) in
  if v < 0 then -1 else v lxor (l land 1)

(* ---- variable-order heap (max-heap on activity) ---- *)

let heap_swap t i j =
  let a = t.heap.(i) and b = t.heap.(j) in
  t.heap.(i) <- b;
  t.heap.(j) <- a;
  t.heap_pos.(b) <- i;
  t.heap_pos.(a) <- j

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.activity.(t.heap.(i)) > t.activity.(t.heap.(parent)) then begin
      heap_swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.heap_size && t.activity.(t.heap.(l)) > t.activity.(t.heap.(!best))
  then best := l;
  if r < t.heap_size && t.activity.(t.heap.(r)) > t.activity.(t.heap.(!best))
  then best := r;
  if !best <> i then begin
    heap_swap t i !best;
    sift_down t !best
  end

let heap_insert t v =
  if t.heap_pos.(v) < 0 then begin
    t.heap.(t.heap_size) <- v;
    t.heap_pos.(v) <- t.heap_size;
    t.heap_size <- t.heap_size + 1;
    sift_up t t.heap_pos.(v)
  end

let heap_pop t =
  let v = t.heap.(0) in
  t.heap_size <- t.heap_size - 1;
  t.heap_pos.(v) <- -1;
  if t.heap_size > 0 then begin
    let last = t.heap.(t.heap_size) in
    t.heap.(0) <- last;
    t.heap_pos.(last) <- 0;
    sift_down t 0
  end;
  v

(* ---- activities ---- *)

let var_bump t v =
  t.activity.(v) <- t.activity.(v) +. t.var_inc;
  if t.activity.(v) > 1e100 then begin
    for u = 0 to t.nvars - 1 do
      t.activity.(u) <- t.activity.(u) *. 1e-100
    done;
    t.var_inc <- t.var_inc *. 1e-100
  end;
  if t.heap_pos.(v) >= 0 then sift_up t t.heap_pos.(v)

let var_decay t = t.var_inc <- t.var_inc /. 0.95

(* ---- assignments ---- *)

let unchecked_enqueue t l reason =
  let v = Cnf.var_of l in
  t.assigns.(v) <- (l land 1) lxor 1;
  t.level.(v) <- decision_level t;
  t.reason.(v) <- reason;
  t.trail.(t.trail_size) <- l;
  t.trail_size <- t.trail_size + 1

let new_level t =
  (* vacuous assumption levels can outnumber the variables, so this
     array must grow on demand *)
  if t.trail_lim_size = Array.length t.trail_lim then begin
    let d = Array.make (2 * Array.length t.trail_lim) 0 in
    Array.blit t.trail_lim 0 d 0 t.trail_lim_size;
    t.trail_lim <- d
  end;
  t.trail_lim.(t.trail_lim_size) <- t.trail_size;
  t.trail_lim_size <- t.trail_lim_size + 1

let cancel_until t lvl =
  if decision_level t > lvl then begin
    for i = t.trail_size - 1 downto t.trail_lim.(lvl) do
      let v = Cnf.var_of t.trail.(i) in
      t.polarity.(v) <- t.assigns.(v) = 1;
      t.assigns.(v) <- -1;
      t.reason.(v) <- None;
      heap_insert t v
    done;
    t.trail_size <- t.trail_lim.(lvl);
    t.qhead <- t.trail_size;
    t.trail_lim_size <- lvl
  end

(* ---- propagation ---- *)

let propagate t =
  let confl = ref None in
  while !confl = None && t.qhead < t.trail_size do
    let p = t.trail.(t.qhead) in
    t.qhead <- t.qhead + 1;
    t.n_propagations <- t.n_propagations + 1;
    let false_lit = Cnf.negate p in
    let ws = t.watches.(false_lit) in
    let i = ref 0 and j = ref 0 in
    while !i < Vec.size ws do
      let c = Vec.get ws !i in
      incr i;
      (* normalize: the falsified watch goes to position 1 *)
      if c.(0) = false_lit then begin
        c.(0) <- c.(1);
        c.(1) <- false_lit
      end;
      let first = c.(0) in
      if lval t first = 1 then begin
        (* clause already satisfied by its other watch *)
        Vec.set ws !j c;
        incr j
      end
      else begin
        let n = Array.length c in
        let k = ref 2 in
        while !k < n && lval t c.(!k) = 0 do
          incr k
        done;
        if !k < n then begin
          (* found a non-false literal to watch instead *)
          c.(1) <- c.(!k);
          c.(!k) <- false_lit;
          Vec.push t.watches.(c.(1)) c
        end
        else begin
          (* unit under the current assignment — or a conflict *)
          Vec.set ws !j c;
          incr j;
          if lval t first = 0 then begin
            while !i < Vec.size ws do
              Vec.set ws !j (Vec.get ws !i);
              incr i;
              incr j
            done;
            confl := Some c;
            t.qhead <- t.trail_size
          end
          else unchecked_enqueue t first (Some c)
        end
      end
    done;
    Vec.shrink ws !j
  done;
  !confl

(* ---- first-UIP conflict analysis ----

   Returns the learned clause (asserting literal first, a literal of
   the backjump level second when one exists) and the backjump level. *)

let analyze t confl =
  let dl = decision_level t in
  let learnt = ref [] in
  let to_clear = ref [] in
  let path = ref 0 in
  let p = ref (-1) in
  let confl = ref confl in
  let index = ref (t.trail_size - 1) in
  let finished = ref false in
  while not !finished do
    let c = match !confl with Some c -> c | None -> assert false in
    (* skip position 0 of a reason clause: it is the asserted [p] *)
    let start = if !p < 0 then 0 else 1 in
    for k = start to Array.length c - 1 do
      let q = c.(k) in
      let v = Cnf.var_of q in
      if (not t.seen.(v)) && t.level.(v) > 0 then begin
        t.seen.(v) <- true;
        to_clear := v :: !to_clear;
        var_bump t v;
        if t.level.(v) >= dl then incr path else learnt := q :: !learnt
      end
    done;
    while not t.seen.(Cnf.var_of t.trail.(!index)) do
      decr index
    done;
    let pl = t.trail.(!index) in
    decr index;
    p := pl;
    decr path;
    if !path <= 0 then finished := true
    else confl := t.reason.(Cnf.var_of pl)
  done;
  let out = Array.of_list (Cnf.negate !p :: !learnt) in
  List.iter (fun v -> t.seen.(v) <- false) !to_clear;
  (* backjump to the second-highest decision level in the clause, and
     keep a literal of that level at position 1 (the new watch pair
     must span the backjump) *)
  let bj = ref 0 in
  if Array.length out > 1 then begin
    let max_i = ref 1 in
    for k = 2 to Array.length out - 1 do
      if t.level.(Cnf.var_of out.(k)) > t.level.(Cnf.var_of out.(!max_i)) then
        max_i := k
    done;
    let tmp = out.(1) in
    out.(1) <- out.(!max_i);
    out.(!max_i) <- tmp;
    bj := t.level.(Cnf.var_of out.(1))
  end;
  (out, !bj)

let attach_learnt t c =
  if Array.length c = 1 then unchecked_enqueue t c.(0) None
  else begin
    Vec.push t.watches.(c.(0)) c;
    Vec.push t.watches.(c.(1)) c;
    t.n_learned <- t.n_learned + 1;
    unchecked_enqueue t c.(0) (Some c)
  end

(* ---- clause addition (initial import and incremental) ---- *)

let add_clause_internal t lits =
  if t.ok then begin
    cancel_until t 0;
    (* normalize at the root: drop duplicates and root-false literals,
       drop the clause when tautologous or root-satisfied *)
    let sorted = List.sort_uniq compare lits in
    let tauto =
      let rec go = function
        | a :: (b :: _ as rest) -> a lxor 1 = b || go rest
        | _ -> false
      in
      go sorted
    in
    if not (tauto || List.exists (fun l -> lval t l = 1) sorted) then begin
      match List.filter (fun l -> lval t l <> 0) sorted with
      | [] -> t.ok <- false
      | [ l ] ->
          unchecked_enqueue t l None;
          if propagate t <> None then t.ok <- false
      | l0 :: l1 :: _ as c ->
          let c = Array.of_list c in
          ignore l0;
          ignore l1;
          Vec.push t.watches.(c.(0)) c;
          Vec.push t.watches.(c.(1)) c
    end
  end

let add_clause t lits =
  List.iter
    (fun l ->
      if l < 0 || Cnf.var_of l >= t.nvars then
        invalid_arg "Solver.add_clause: literal out of range")
    lits;
  t.has_model <- false;
  add_clause_internal t lits

let create cnf =
  let n = Cnf.nvars cnf in
  let t =
    {
      nvars = n;
      assigns = Array.make (max n 1) (-1);
      level = Array.make (max n 1) 0;
      reason = Array.make (max n 1) None;
      activity = Array.make (max n 1) 0.0;
      polarity = Array.make (max n 1) false;
      heap = Array.make (max n 1) 0;
      heap_size = 0;
      heap_pos = Array.make (max n 1) (-1);
      watches = Array.init (max (2 * n) 1) (fun _ -> Vec.create ());
      trail = Array.make (max n 1) 0;
      trail_size = 0;
      trail_lim = Array.make (max n 1) 0;
      trail_lim_size = 0;
      qhead = 0;
      seen = Array.make (max n 1) false;
      var_inc = 1.0;
      ok = true;
      model = Array.make (max n 1) false;
      has_model = false;
      n_conflicts = 0;
      n_decisions = 0;
      n_propagations = 0;
      n_restarts = 0;
      n_learned = 0;
      n_solve_calls = 0;
    }
  in
  for v = 0 to n - 1 do
    heap_insert t v
  done;
  Cnf.iter_clauses cnf (fun c -> add_clause_internal t (Array.to_list c));
  t

(* ---- search ---- *)

(* The reluctant-doubling (Luby) sequence scaling the restart cap. *)
let luby y x =
  let size = ref 1 and seq = ref 0 in
  while !size < x + 1 do
    incr seq;
    size := (2 * !size) + 1
  done;
  let x = ref x in
  while !size - 1 <> !x do
    size := (!size - 1) / 2;
    decr seq;
    x := !x mod !size
  done;
  y ** float_of_int !seq

let pick_branch t =
  let v = ref (-1) in
  while !v < 0 && t.heap_size > 0 do
    let u = heap_pop t in
    if t.assigns.(u) < 0 then v := u
  done;
  if !v < 0 then None else Some !v

let save_model t =
  for v = 0 to t.nvars - 1 do
    t.model.(v) <- t.assigns.(v) = 1
  done;
  t.has_model <- true

let value t v =
  if not t.has_model then
    invalid_arg "Solver.value: no model (last outcome was not Sat)";
  t.model.(v)

let solve ?(assumptions = []) ?max_conflicts ?max_decisions
    ?(check = fun () -> ()) t =
  t.n_solve_calls <- t.n_solve_calls + 1;
  t.has_model <- false;
  let assum = Array.of_list assumptions in
  let n_assum = Array.length assum in
  Array.iter
    (fun l ->
      if l < 0 || Cnf.var_of l >= t.nvars then
        invalid_arg "Solver.solve: assumption literal out of range")
    assum;
  if not t.ok then Unsat
  else begin
    cancel_until t 0;
    let conflicts0 = t.n_conflicts and decisions0 = t.n_decisions in
    let over () =
      match max_conflicts with
      | Some c when t.n_conflicts - conflicts0 >= c -> Some "conflict budget"
      | _ -> (
          match max_decisions with
          | Some d when t.n_decisions - decisions0 >= d -> Some "decision budget"
          | _ -> None)
    in
    (* one restart round, capped at [cap] conflicts *)
    let search cap =
      let round_conflicts = ref 0 in
      let result = ref None in
      while !result = None do
        match propagate t with
        | Some confl ->
            t.n_conflicts <- t.n_conflicts + 1;
            incr round_conflicts;
            if t.n_conflicts land 255 = 0 then check ();
            if decision_level t <= n_assum then
              (* only assumptions (and root facts) are assigned: the
                 conflict refutes the assumptions themselves *)
              result := Some Unsat
            else begin
              let learnt, bj = analyze t (Some confl) in
              cancel_until t bj;
              attach_learnt t learnt;
              var_decay t;
              match over () with
              | Some msg -> result := Some (Unknown msg)
              | None -> if !round_conflicts >= cap then result := Some Sat
              (* [Sat] abused as the `restart` marker, remapped below *)
            end
        | None ->
            if decision_level t < n_assum then begin
              let a = assum.(decision_level t) in
              match lval t a with
              | 1 -> new_level t (* vacuous level keeps indexing aligned *)
              | 0 -> result := Some Unsat
              | _ ->
                  new_level t;
                  unchecked_enqueue t a None
            end
            else begin
              match over () with
              | Some msg -> result := Some (Unknown msg)
              | None -> (
                  match pick_branch t with
                  | None ->
                      save_model t;
                      result := Some Sat
                  | Some v ->
                      t.n_decisions <- t.n_decisions + 1;
                      new_level t;
                      unchecked_enqueue t
                        (Cnf.lit_of_bool v t.polarity.(v))
                        None)
            end
      done;
      match !result with
      | Some Sat when not t.has_model -> `Restart
      | Some r -> `Done r
      | None -> assert false
    in
    let rec rounds i =
      check ();
      match search (int_of_float (100.0 *. luby 2.0 i)) with
      | `Done r -> r
      | `Restart ->
          t.n_restarts <- t.n_restarts + 1;
          cancel_until t 0;
          rounds (i + 1)
    in
    let outcome = rounds 0 in
    (match outcome with
    | Unsat when n_assum = 0 -> t.ok <- false
    | _ -> ());
    cancel_until t 0;
    outcome
  end
