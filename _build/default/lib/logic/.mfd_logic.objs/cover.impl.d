lib/logic/cover.ml: Array Bdd Hashtbl List Printf String
