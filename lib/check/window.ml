type ctx = {
  net : Network.t;
  rank : int array;  (* signal id -> topological rank, -1 unreachable *)
  fanouts : int list array;  (* signal id -> LUT fanout ids (reachable) *)
  po_driver : bool array;  (* signal id -> drives a primary output *)
}

let context net =
  let n = max (Network.node_count net) 1 in
  let rank = Array.make n (-1) in
  let fanouts = Array.make n [] in
  let po_driver = Array.make n false in
  let next = ref 0 in
  Network.iter_cone net (fun s ->
      let id = Network.signal_id s in
      rank.(id) <- !next;
      incr next;
      match Network.view net s with
      | `Input _ | `Const _ -> ()
      | `Lut (fanins, _) ->
          Array.iter
            (fun f -> fanouts.(Network.signal_id f) <- id :: fanouts.(Network.signal_id f))
            fanins);
  List.iter (fun (_, s) -> po_driver.(Network.signal_id s) <- true) (Network.outputs net);
  { net; rank; fanouts; po_driver }

let network ctx = ctx.net

(* Highest density first; topological rank breaks ties, so the order
   is deterministic and degrades to plain topological order when the
   density function is constant. *)
let order_by_density ctx ~density signals =
  let keyed =
    Array.map
      (fun s -> ((-density s, ctx.rank.(Network.signal_id s)), s))
      signals
  in
  Array.sort (fun (ka, _) (kb, _) -> compare ka kb) keyed;
  Array.map snd keyed

type t = {
  w_center : Network.signal;
  w_internals : Network.signal array;
  w_leaves : Network.signal array;
  w_roots : Network.signal array;
  tfo_set : bool array;  (* by signal id *)
}

let center t = t.w_center
let internals t = t.w_internals
let leaves t = t.w_leaves
let roots t = t.w_roots
let in_tfo t s = t.tfo_set.(Network.signal_id s)

(* Depths are clamped so that [tfi + tfo] cannot overflow. *)
let clamp d = if d < 0 then 0 else min d 1_000_000

let is_lut ctx s =
  match Network.view ctx.net s with `Lut _ -> true | _ -> false

let build ctx ~center ~tfi_depth ~tfo_depth =
  if not (is_lut ctx center) then
    invalid_arg "Window.build: center must be a LUT node";
  let tfi_depth = clamp tfi_depth and tfo_depth = clamp tfo_depth in
  let n = Array.length ctx.rank in
  let cid = Network.signal_id center in
  (* forward BFS: the center's transitive fanout to [tfo_depth] *)
  let tfo_set = Array.make n false in
  tfo_set.(cid) <- true;
  let frontier = ref [ cid ] in
  let d = ref 0 in
  while !d < tfo_depth && !frontier <> [] do
    incr d;
    let next = ref [] in
    List.iter
      (fun id ->
        List.iter
          (fun f ->
            if not tfo_set.(f) then begin
              tfo_set.(f) <- true;
              next := f :: !next
            end)
          ctx.fanouts.(id))
      !frontier;
    frontier := !next
  done;
  (* roots: TFO nodes whose influence escapes the TFO set *)
  let root_ids = ref [] in
  for id = 0 to n - 1 do
    if tfo_set.(id) then
      if
        ctx.po_driver.(id)
        || List.exists (fun f -> not tfo_set.(f)) ctx.fanouts.(id)
      then root_ids := id :: !root_ids
  done;
  (* backward BFS from roots and center to [tfi_depth + tfo_depth],
     over LUT nodes only *)
  let in_w = Array.make n false in
  let seed = cid :: !root_ids in
  List.iter (fun id -> in_w.(id) <- true) seed;
  let frontier = ref seed in
  let d = ref 0 in
  let back_depth = tfi_depth + tfo_depth in
  while !d < back_depth && !frontier <> [] do
    incr d;
    let next = ref [] in
    List.iter
      (fun id ->
        match Network.view ctx.net (Network.signal_of_id ctx.net id) with
        | `Input _ | `Const _ -> ()
        | `Lut (fanins, _) ->
            Array.iter
              (fun f ->
                let fid = Network.signal_id f in
                if (not in_w.(fid)) && is_lut ctx f then begin
                  in_w.(fid) <- true;
                  next := fid :: !next
                end)
              fanins)
      !frontier;
    frontier := !next
  done;
  (* leaves: non-constant fanins of window members outside the window *)
  let leaf = Array.make n false in
  let leaf_ids = ref [] in
  let internal_ids = ref [] in
  for id = 0 to n - 1 do
    if in_w.(id) then begin
      internal_ids := id :: !internal_ids;
      match Network.view ctx.net (Network.signal_of_id ctx.net id) with
      | `Input _ | `Const _ -> assert false
      | `Lut (fanins, _) ->
          Array.iter
            (fun f ->
              let fid = Network.signal_id f in
              if (not in_w.(fid)) && not leaf.(fid) then
                match Network.view ctx.net f with
                | `Const _ -> ()
                | `Input _ | `Lut _ ->
                    leaf.(fid) <- true;
                    leaf_ids := fid :: !leaf_ids)
            fanins
    end
  done;
  let by_rank ids =
    let a = Array.of_list ids in
    Array.sort (fun a b -> compare ctx.rank.(a) ctx.rank.(b)) a;
    Array.map (Network.signal_of_id ctx.net) a
  in
  {
    w_center = center;
    w_internals = by_rank !internal_ids;
    w_leaves = by_rank !leaf_ids;
    w_roots = by_rank !root_ids;
    tfo_set;
  }
