type var = int
type lit = int

let pos v = v lsl 1
let neg v = (v lsl 1) lor 1
let negate l = l lxor 1
let var_of l = l lsr 1
let is_pos l = l land 1 = 0
let lit_of_bool v b = if b then pos v else neg v

let pp_lit fmt l =
  Format.fprintf fmt "%d" (if is_pos l then var_of l + 1 else -(var_of l + 1))

type t = {
  mutable nvars : int;
  mutable clauses_rev : lit array list;
  mutable nclauses : int;
}

let create () = { nvars = 0; clauses_rev = []; nclauses = 0 }

let fresh t =
  let v = t.nvars in
  t.nvars <- v + 1;
  v

let nvars t = t.nvars

let add_clause t lits =
  List.iter
    (fun l ->
      if l < 0 || var_of l >= t.nvars then
        invalid_arg
          (Printf.sprintf "Cnf.add_clause: literal %d of unallocated variable" l))
    lits;
  t.clauses_rev <- Array.of_list lits :: t.clauses_rev;
  t.nclauses <- t.nclauses + 1

let nclauses t = t.nclauses

let iter_clauses t f = List.iter f (List.rev t.clauses_rev)

let pp fmt t =
  Format.fprintf fmt "p cnf %d %d@." t.nvars t.nclauses;
  iter_clauses t (fun c ->
      Array.iter (fun l -> Format.fprintf fmt "%a " pp_lit l) c;
      Format.fprintf fmt "0@.")
