lib/decomp/bound_select.ml: Array Bdd Config Hashtbl Isf List Symmetry
