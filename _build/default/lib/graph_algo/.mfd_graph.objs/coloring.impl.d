lib/graph_algo/coloring.ml: Array List Stdlib Ugraph
