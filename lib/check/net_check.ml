(* The passes work on raw node views so they stay total on corrupted
   networks: nothing here calls an accessor that assumes the very
   invariants being checked. *)

(* Sort the fanins by signal id (original position as tie-break, so
   duplicate fanin signals stay stable) and permute the table to match:
   two LUTs computing the same local function of the same fanins in a
   different order canonicalize identically.  [remap] sends a row index
   of the canonical table back to the original table. *)
let canonical_lut fanins tt =
  let k = Array.length fanins in
  let order = Array.init k Fun.id in
  Array.sort
    (fun a b ->
      compare
        (Network.signal_id fanins.(a), a)
        (Network.signal_id fanins.(b), b))
    order;
  let sorted = Array.map (fun old_j -> fanins.(old_j)) order in
  let remap c =
    let idx = ref 0 in
    Array.iteri
      (fun new_j old_j ->
        if (c lsr new_j) land 1 = 1 then idx := !idx lor (1 lsl old_j))
      order;
    !idx
  in
  (sorted, Bv.of_fun k (fun c -> Bv.get tt (remap c)), remap)

let analyze ?lut_size ?(style = true) net =
  let n = Network.node_count net in
  let findings = ref [] in
  let add ?loc code msg = findings := Diagnostic.make ?loc code msg :: !findings in
  let in_range s =
    let i = Network.signal_id s in
    i >= 0 && i < n
  in
  (* Stable human name for a node: its input name, the first output it
     drives, or a synthetic n<id>. *)
  let output_of = Hashtbl.create 16 in
  List.iter
    (fun (name, s) ->
      let i = Network.signal_id s in
      if not (Hashtbl.mem output_of i) then Hashtbl.add output_of i name)
    (Network.outputs net);
  let name_of s =
    let i = Network.signal_id s in
    if not (in_range s) then Printf.sprintf "n%d" i
    else
      match Network.view net s with
      | `Input name -> name
      | `Const _ | `Lut _ -> (
          match Hashtbl.find_opt output_of i with
          | Some name -> name
          | None -> Printf.sprintf "n%d" i)
  in
  (* ---- structural passes ---- *)
  for i = 0 to n - 1 do
    let s = Network.signal_of_id net i in
    match Network.view net s with
    | `Input _ | `Const _ -> ()
    | `Lut (fanins, tt) ->
        let loc = name_of s in
        Array.iter
          (fun f ->
            if not (in_range f) then
              add ~loc "NET001"
                (Printf.sprintf "fanin id %d outside [0, %d)"
                   (Network.signal_id f) n)
            else if Network.signal_id f >= i then
              add ~loc "NET003"
                (Printf.sprintf "fanin %s (id %d) does not precede LUT id %d"
                   (name_of f) (Network.signal_id f) i))
          fanins;
        if Bv.nvars tt <> Array.length fanins then
          add ~loc "NET002"
            (Printf.sprintf "table has %d variables but the LUT has %d fanins"
               (Bv.nvars tt) (Array.length fanins));
        (match lut_size with
        | Some k when Array.length fanins > k ->
            add ~loc "NET005"
              (Printf.sprintf "%d fanins exceed the LUT size %d"
                 (Array.length fanins) k)
        | Some _ | None -> ())
  done;
  List.iter
    (fun (name, s) ->
      if not (in_range s) then
        add ~loc:name "NET004"
          (Printf.sprintf "output bound to signal id %d outside [0, %d)"
             (Network.signal_id s) n))
    (Network.outputs net);
  let report_duplicates code kind names =
    let seen = Hashtbl.create 16 in
    List.iter
      (fun name ->
        if Hashtbl.mem seen name then
          add ~loc:name code (Printf.sprintf "%s %s declared twice" kind name)
        else Hashtbl.add seen name ())
      names
  in
  report_duplicates "NET009" "input" (List.map fst (Network.inputs net));
  report_duplicates "NET010" "output" (List.map fst (Network.outputs net));
  let structurally_sound =
    not (List.exists (fun f -> f.Diagnostic.severity = Diagnostic.Error) !findings)
  in
  (* ---- style passes (need a traversable network) ---- *)
  if style && structurally_sound then begin
    let reachable = Array.make (max n 1) false in
    let rec visit s =
      let i = Network.signal_id s in
      if not reachable.(i) then begin
        reachable.(i) <- true;
        match Network.view net s with
        | `Input _ | `Const _ -> ()
        | `Lut (fanins, _) -> Array.iter visit fanins
      end
    in
    List.iter (fun (_, s) -> visit s) (Network.outputs net);
    let tt_keys = Hashtbl.create 16 in
    for i = 0 to n - 1 do
      let s = Network.signal_of_id net i in
      match Network.view net s with
      | `Input _ | `Const _ -> ()
      | `Lut (fanins, tt) ->
          let loc = name_of s in
          if not reachable.(i) then
            add ~loc "NET006" "LUT is not reachable from any output";
          (* Canonical key: fanins sorted with the table permuted to
             match, so duplicates are caught regardless of fanin order
             (one hash per LUT, O(n) over the network). *)
          let sorted, ctt, _ = canonical_lut fanins tt in
          let key =
            String.concat ","
              (Array.to_list (Array.map (fun f -> string_of_int (Network.signal_id f)) sorted))
            ^ ":"
            ^ String.concat ""
                (List.init (1 lsl Bv.nvars ctt) (fun j ->
                     if Bv.get ctt j then "1" else "0"))
          in
          (match Hashtbl.find_opt tt_keys key with
          | Some first ->
              add ~loc "NET007"
                (Printf.sprintf
                   "duplicate of LUT %s (same fanins and table up to fanin order)"
                   first)
          | None -> Hashtbl.add tt_keys key loc);
          let arity = Bv.nvars tt in
          let constant =
            let v = Bv.get tt 0 in
            let rec all j = j >= 1 lsl arity || (Bv.get tt j = v && all (j + 1)) in
            all 1
          in
          if constant then
            add ~loc "NET008" "table is constant (fold into a constant node)"
          else if arity = 1 && Bv.get tt 1 && not (Bv.get tt 0) then
            add ~loc "NET008" "single-input buffer (forward the fanin instead)"
    done
  end;
  List.rev !findings
