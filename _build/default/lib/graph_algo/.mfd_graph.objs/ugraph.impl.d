lib/graph_algo/ugraph.ml: Array List Random
