type t = { size : int; adj : bool array array }

let create size = { size; adj = Array.make_matrix size size false }
let n g = g.size

let add_edge g i j =
  if i <> j then begin
    g.adj.(i).(j) <- true;
    g.adj.(j).(i) <- true
  end

let has_edge g i j = i <> j && g.adj.(i).(j)

let neighbours g i =
  let acc = ref [] in
  for j = g.size - 1 downto 0 do
    if g.adj.(i).(j) then acc := j :: !acc
  done;
  !acc

let degree g i = List.length (neighbours g i)

let edges g =
  let acc = ref [] in
  for i = g.size - 1 downto 0 do
    for j = g.size - 1 downto i + 1 do
      if g.adj.(i).(j) then acc := (i, j) :: !acc
    done
  done;
  !acc

let complement g =
  let c = create g.size in
  for i = 0 to g.size - 1 do
    for j = i + 1 to g.size - 1 do
      if not g.adj.(i).(j) then add_edge c i j
    done
  done;
  c

let of_edges size es =
  let g = create size in
  List.iter (fun (i, j) -> add_edge g i j) es;
  g

let random size p st =
  let g = create size in
  for i = 0 to size - 1 do
    for j = i + 1 to size - 1 do
      if Random.State.float st 1.0 < p then add_edge g i j
    done
  done;
  g
