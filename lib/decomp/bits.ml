let ceil_log2 k =
  let rec go bits cap = if cap >= k then bits else go (bits + 1) (cap * 2) in
  go 0 1
