(** Recursive multi-output decomposition driver.

    Starting from a vector of (incompletely specified) functions over
    named inputs, repeatedly: (1) assign don't cares to maximize
    symmetries (step 1), (2) pick a bound set, (3) run one
    {!Step.run} — which performs don't-care steps 2 and 3, extracts
    shared strict decomposition functions and builds the composition
    ISFs —, emit the decomposition functions as LUTs, and continue with
    the composition functions, until everything fits into LUTs of the
    configured size.  A Shannon/MUX fallback guarantees progress on
    non-decomposable functions.

    Runs can be governed by a {!Budget}: when a deadline or node budget
    is exceeded mid-phase the driver {e degrades} instead of failing —
    first dropping symmetry maximization, then the sharing-aware joint
    clique cover, finally falling back to plain Shannon/MUX emission —
    so a correct LUT network is always produced.  Degradation events are
    recorded in the run's {!Stats} instance ([?stats]).

    Each run is shared-nothing: it owns its {!Bdd.manager}, its
    {!Budget.t} and its {!Stats.t}, so independent runs may execute
    concurrently in separate domains ({!Batch}). *)

type spec = {
  input_names : string list;  (** input [k] is BDD variable [k] *)
  functions : (string * Isf.t) list;  (** named outputs *)
}

type internal_error =
  | Iteration_limit of int
      (** the driver made no progress within its iteration budget *)
  | Worklist_deadlock
      (** nothing is decomposable and nothing is ready — the internal
          dependency graph is broken *)

exception Internal of internal_error
(** Raised on driver invariant violations (both indicate a bug, not a
    property of the input).  A human-readable rendering is registered
    with {!Printexc}; {!internal_error_message} produces the same
    text. *)

val internal_error_message : internal_error -> string

type report = {
  network : Network.t;
  step_count : int;
  shannon_count : int;
  alpha_count : int;  (** total decomposition functions emitted *)
  degraded_to : Budget.stage;
      (** [Budget.Full] unless the run exceeded its budget; otherwise
          the last degradation stage reached *)
  findings : Diagnostic.t list;
      (** assertion-layer findings, in the order they fired; always
          empty with [checks = Off] (the default) *)
}

val spec_of_csf : Bdd.manager -> string list -> (string * Bdd.t) list -> spec

val decompose :
  ?cfg:Config.t ->
  ?budget:Budget.t ->
  ?checks:Diagnostic.level ->
  ?stats:Stats.t ->
  Bdd.manager ->
  spec ->
  Network.t
(** The resulting network has one LUT per decomposition/composition
    function, every LUT with at most [cfg.lut_size] inputs, and realizes
    an extension of every specified output.  [budget] (default
    {!Budget.unlimited}) governs the run as described above — create a
    fresh one per call (or rely on {!Budget.attach} re-arming it).
    [stats] collects the run's counters, phase timings and degradation
    events; the default is a fresh throwaway instance, so pass your own
    to observe them. *)

val decompose_report :
  ?cfg:Config.t ->
  ?budget:Budget.t ->
  ?checks:Diagnostic.level ->
  ?stats:Stats.t ->
  Bdd.manager ->
  spec ->
  report
(** Like {!decompose} but returns the run's counters, and with [checks]
    above [Off] runs the assertion layer: at [Cheap], ISF
    well-formedness on entry ([DEC001]), refinement after every
    symmetry commitment ([DEC002]), the step's internal bookkeeping
    ([DEC004]–[DEC006]) and a structural {!Net_check} pass over the
    final network ([NET*]); at [Full], additionally BDD-equivalence
    obligations — committed symmetric groups really are symmetric
    ([DEC003]), every committed step composes back to a refinement of
    its specification ([DEC007]) and every emitted LUT table matches
    the function it was derived from ([DEC008]); at [Deep],
    additionally the semantic SDC/ODC dataflow ({!Semantics}, [SEM*])
    over the final network against the specification's care set —
    budget-governed like the run itself, truncating to a partial report
    plus [SEM008] instead of failing.  Checks are pure observers:
    findings are reported in [findings] (and mirrored into the run's
    [stats]), and the produced network is identical to an unchecked
    run's. *)

val verify : Bdd.manager -> spec -> Network.t -> bool
(** Every output of the network extends the corresponding ISF of the
    spec (equality when the spec is completely specified). *)
