(** Two-level minimization of cube covers (a compact cousin of
    espresso's EXPAND / IRREDUNDANT loop, with BDD-backed validity
    checks).

    Used to keep the [.names] bodies of emitted BLIF small and as a
    general service of the logic substrate.  Exact minimality is not
    promised — cubes are expanded greedily and redundant cubes dropped
    until a fixpoint — but the result is always a cover of the on-set
    that stays inside on-set plus don't-care set, every cube is prime
    w.r.t. the chosen literal order, and no cube is redundant. *)

val minimize :
  Bdd.manager ->
  ninputs:int ->
  on:Bdd.t ->
  ?dc:Bdd.t ->
  Cover.cube list ->
  Cover.cube list
(** [minimize m ~ninputs ~on ?dc cubes] improves [cubes] (a cover of
    [on], allowed to dip into [dc]); columns [0 .. ninputs-1] map to BDD
    variables of the same index.
    @raise Invalid_argument if [cubes] does not cover [on] or leaves
    [on \/ dc]. *)

val cover_of_bdd :
  Bdd.manager -> ninputs:int -> on:Bdd.t -> ?dc:Bdd.t -> unit -> Cover.cube list
(** A minimized cover built from scratch (path cover of [on], then
    {!minimize}). *)

val is_cover : Bdd.manager -> ninputs:int -> on:Bdd.t -> ?dc:Bdd.t -> Cover.cube list -> bool
(** Does the cube list cover [on] without leaving [on \/ dc]? *)
