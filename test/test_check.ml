(* Tests for the static-analysis passes: the diagnostic substrate, the
   network passes under seeded corruption, the decomposition-invariant
   helpers, and the property that checked driver runs are clean and
   identical to unchecked ones. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let codes fs = List.map (fun f -> f.Diagnostic.code) fs
let has code fs = List.mem code (codes fs)

let pp_findings fs =
  Format.asprintf "%a" Diagnostic.pp_list fs

(* A clean two-output network (the full adder of test_network). *)
let full_adder () =
  let net = Network.create () in
  let a = Network.add_input net "a" in
  let b = Network.add_input net "b" in
  let cin = Network.add_input net "cin" in
  let ab = Network.xor_gate net a b in
  let sum = Network.xor_gate net ab cin in
  let carry =
    Network.or_gate net (Network.and_gate net a b) (Network.and_gate net ab cin)
  in
  Network.set_output net "sum" sum;
  Network.set_output net "cout" carry;
  net

let diagnostic_tests =
  [
    Alcotest.test_case "catalogue codes are unique and known" `Quick (fun () ->
        let cs = List.map (fun (c, _, _) -> c) Diagnostic.catalogue in
        check_int "unique" (List.length cs)
          (List.length (List.sort_uniq compare cs));
        check_bool "at least the documented twenty" true (List.length cs >= 20);
        List.iter
          (fun c ->
            check_bool c true (Diagnostic.severity_of_code c <> None))
          cs);
    Alcotest.test_case "families partition the catalogue in order" `Quick
      (fun () ->
        check_string "family of SEM003" "SEM" (Diagnostic.family "SEM003");
        check_string "family of SUP001" "SUP" (Diagnostic.family "SUP001");
        (* concatenating the groups reproduces the catalogue exactly:
           families only regroup, never reorder or drop *)
        check_bool "partition" true
          (List.concat_map snd Diagnostic.families = Diagnostic.catalogue);
        check_bool "family order" true
          (List.map fst Diagnostic.families
          = [ "NET"; "DEC"; "PLA"; "SEM"; "SUP" ]);
        (* the SUP family is new in catalogue 3; a version bump is how
           JSON consumers detect the vocabulary change *)
        check_string "version" "3" Diagnostic.catalogue_version);
    Alcotest.test_case "make rejects unknown codes" `Quick (fun () ->
        match Diagnostic.make "XYZ999" "nope" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    Alcotest.test_case "exit-code policy" `Quick (fun () ->
        let e = Diagnostic.make "NET001" "e" in
        let w = Diagnostic.make ~loc:"x" "NET006" "w" in
        let i = Diagnostic.make "NET008" "i" in
        check_int "clean" 0 (Diagnostic.exit_code []);
        check_int "info only" 0 (Diagnostic.exit_code [ i ]);
        check_int "warnings" 2 (Diagnostic.exit_code [ i; w ]);
        check_int "errors win" 1 (Diagnostic.exit_code [ w; e ]));
    Alcotest.test_case "text rendering" `Quick (fun () ->
        let d = Diagnostic.make ~loc:"sum" "NET002" "bad table" in
        check_string "pp" "error[NET002] sum: bad table"
          (Format.asprintf "%a" Diagnostic.pp d);
        check_string "empty list" "clean: no findings" (pp_findings []));
    Alcotest.test_case "json rendering escapes and nulls" `Quick (fun () ->
        let d = Diagnostic.make "NET001" "a \"quoted\" name" in
        check_string "json"
          ("{\"catalogue\":\"" ^ Diagnostic.catalogue_version
         ^ "\",\"findings\":[{\"code\":\"NET001\",\"severity\":\"error\",\"loc\":null,\"message\":\"a \\\"quoted\\\" name\"}]}")
          (Diagnostic.to_json [ d ]);
        check_string "empty"
          ("{\"catalogue\":\"" ^ Diagnostic.catalogue_version
         ^ "\",\"findings\":[]}")
          (Diagnostic.to_json []));
    Alcotest.test_case "levels are ordered" `Quick (fun () ->
        check_bool "full>=cheap" true
          (Diagnostic.at_least Diagnostic.Full Diagnostic.Cheap);
        check_bool "off<cheap" false
          (Diagnostic.at_least Diagnostic.Off Diagnostic.Cheap);
        check_bool "roundtrip" true
          (Diagnostic.level_of_string "cheap" = Ok Diagnostic.Cheap);
        check_bool "unknown" true
          (match Diagnostic.level_of_string "loud" with
          | Error _ -> true
          | Ok _ -> false));
  ]

(* Each seeded corruption must be caught by exactly the code that names
   it. *)
let corruption_tests =
  let lut_of_output net name =
    match List.assoc_opt name (Network.outputs net) with
    | Some s -> s
    | None -> Alcotest.fail ("no output " ^ name)
  in
  [
    Alcotest.test_case "clean network has no findings" `Quick (fun () ->
        let fs = Net_check.analyze ~lut_size:2 (full_adder ()) in
        check_string "clean" "" (String.concat "," (codes fs)));
    Alcotest.test_case "NET001: dangling fanin" `Quick (fun () ->
        let net = full_adder () in
        let s = lut_of_output net "sum" in
        Network.Unsafe.set_lut net s
          ~fanins:[| Network.Unsafe.signal 999 |]
          ~tt:(Bv.of_fun 1 (fun i -> i = 1));
        check_bool (pp_findings (Net_check.analyze net)) true
          (has "NET001" (Net_check.analyze net)));
    Alcotest.test_case "NET002: truncated truth table" `Quick (fun () ->
        let net = full_adder () in
        let s = lut_of_output net "sum" in
        let fanins =
          match Network.view net s with
          | `Lut (fanins, _) -> fanins
          | _ -> Alcotest.fail "expected a LUT"
        in
        Network.Unsafe.set_lut net s ~fanins ~tt:(Bv.of_fun 1 (fun i -> i = 1));
        check_bool (pp_findings (Net_check.analyze net)) true
          (has "NET002" (Net_check.analyze net)));
    Alcotest.test_case "NET003: self-referential fanin" `Quick (fun () ->
        let net = full_adder () in
        let s = lut_of_output net "sum" in
        Network.Unsafe.set_lut net s ~fanins:[| s |]
          ~tt:(Bv.of_fun 1 (fun i -> i = 1));
        check_bool (pp_findings (Net_check.analyze net)) true
          (has "NET003" (Net_check.analyze net)));
    Alcotest.test_case "NET004: output redirected off the network" `Quick
      (fun () ->
        let net = full_adder () in
        Network.Unsafe.redirect_output net "sum" (Network.Unsafe.signal 999);
        check_bool (pp_findings (Net_check.analyze net)) true
          (has "NET004" (Net_check.analyze net)));
    Alcotest.test_case "NET005: LUT wider than the LUT size" `Quick (fun () ->
        let net = Network.create () in
        let a = Network.add_input net "a" in
        let b = Network.add_input net "b" in
        let c = Network.add_input net "c" in
        let s = Network.mux_gate net ~sel:a ~hi:b ~lo:c in
        Network.set_output net "y" s;
        check_bool "armed" true (has "NET005" (Net_check.analyze ~lut_size:2 net));
        check_bool "not armed" false (has "NET005" (Net_check.analyze net)));
    Alcotest.test_case "NET006: dead LUT" `Quick (fun () ->
        let net = Network.create () in
        let a = Network.add_input net "a" in
        let b = Network.add_input net "b" in
        let (_ : Network.signal) = Network.and_gate net a b in
        Network.set_output net "y" (Network.or_gate net a b);
        check_bool "dead" true (has "NET006" (Net_check.analyze net));
        check_bool "structural only" false
          (has "NET006" (Net_check.analyze ~style:false net)));
    Alcotest.test_case "NET007: duplicate LUT" `Quick (fun () ->
        let net = Network.create () in
        let a = Network.add_input net "a" in
        let b = Network.add_input net "b" in
        let g1 = Network.and_gate net a b in
        let g2 = Network.or_gate net a b in
        Network.set_output net "y1" g1;
        Network.set_output net "y2" g2;
        (match Network.view net g1 with
        | `Lut (fanins, tt) -> Network.Unsafe.set_lut net g2 ~fanins ~tt
        | _ -> Alcotest.fail "expected a LUT");
        check_bool (pp_findings (Net_check.analyze net)) true
          (has "NET007" (Net_check.analyze net)));
    Alcotest.test_case "NET008: degenerate tables" `Quick (fun () ->
        let net = Network.create () in
        let a = Network.add_input net "a" in
        let b = Network.add_input net "b" in
        let g = Network.and_gate net a b in
        Network.set_output net "y" g;
        (* buffer: one fanin, identity table *)
        Network.Unsafe.set_lut net g ~fanins:[| a |]
          ~tt:(Bv.of_fun 1 (fun i -> i = 1));
        check_bool "buffer" true (has "NET008" (Net_check.analyze net));
        (* constant table under two fanins *)
        Network.Unsafe.set_lut net g ~fanins:[| a; b |]
          ~tt:(Bv.of_fun 2 (fun _ -> true));
        check_bool "constant" true (has "NET008" (Net_check.analyze net)));
    Alcotest.test_case "NET009/NET010: duplicate names" `Quick (fun () ->
        let net = full_adder () in
        let a = List.assoc "a" (Network.inputs net) in
        Network.Unsafe.alias_input net "a" a;
        Network.Unsafe.alias_output net "sum" (lut_of_output net "sum");
        let fs = Net_check.analyze net in
        check_bool "NET009" true (has "NET009" fs);
        check_bool "NET010" true (has "NET010" fs));
  ]

let invariant_tests =
  [
    Alcotest.test_case "DEC001: overlapping on/dc" `Quick (fun () ->
        let m = Bdd.manager () in
        let x = Bdd.var m 0 in
        check_bool "violation" true
          (Invariant.well_formed_parts m ~where:"t" ~on:x ~dc:x <> None);
        check_bool "disjoint ok" true
          (Invariant.well_formed_parts m ~where:"t" ~on:x ~dc:(Bdd.not_ m x)
          = None));
    Alcotest.test_case "DEC002: refinement direction" `Quick (fun () ->
        let m = Bdd.manager () in
        let x = Bdd.var m 0 in
        let anything = Isf.make m ~on:(Bdd.zero m) ~dc:(Bdd.one m) in
        let just_x = Isf.of_csf m x in
        let just_nx = Isf.of_csf m (Bdd.not_ m x) in
        check_bool "specializing is fine" true
          (Invariant.check_refines m ~where:"t" ~coarse:anything ~fine:just_x
          = None);
        check_bool "flip is flagged" true
          (Invariant.check_refines m ~where:"t" ~coarse:just_x ~fine:just_nx
          <> None);
        check_bool "generalizing is flagged" true
          (Invariant.check_refines m ~where:"t" ~coarse:just_x ~fine:anything
          <> None));
    Alcotest.test_case "DEC003: symmetry of committed groups" `Quick (fun () ->
        let m = Bdd.manager () in
        let x0 = Bdd.var m 0 and x1 = Bdd.var m 1 in
        let sym = Isf.of_csf m (Bdd.xor m x0 x1) in
        let asym = Isf.of_csf m (Bdd.and_ m x0 (Bdd.not_ m x1)) in
        let group = [ (0, false); (1, false) ] in
        check_bool "xor is symmetric" true
          (Invariant.check_group_symmetric m ~where:"t" [ sym ] group = None);
        check_bool "x0 and not x1 is not" true
          (Invariant.check_group_symmetric m ~where:"t" [ asym ] group <> None);
        (* with a relative phase, x0 and not x1 IS symmetric *)
        let phased = [ (0, false); (1, true) ] in
        check_bool "phase-symmetric" true
          (Invariant.check_group_symmetric m ~where:"t" [ asym ] phased = None));
    Alcotest.test_case "DEC004: proper covers" `Quick (fun () ->
        let g = Ugraph.of_edges 3 [ (0, 1) ] in
        check_bool "proper" true
          (Invariant.check_proper_cover g [| 0; 1; 0 |] ~where:"t" = None);
        check_bool "improper" true
          (Invariant.check_proper_cover g [| 0; 0; 1 |] ~where:"t" <> None));
    Alcotest.test_case "DEC006: alpha counts" `Quick (fun () ->
        check_bool "4 classes, 2 alphas" true
          (Invariant.check_alpha_count ~where:"t" ~nclasses:4 ~r:2 = None);
        check_bool "1 class, 0 alphas" true
          (Invariant.check_alpha_count ~where:"t" ~nclasses:1 ~r:0 = None);
        check_bool "4 classes, 3 alphas" true
          (Invariant.check_alpha_count ~where:"t" ~nclasses:4 ~r:3 <> None));
    Alcotest.test_case "DEC007: composition vs spec" `Quick (fun () ->
        let m = Bdd.manager () in
        let x0 = Bdd.var m 0 and x1 = Bdd.var m 1 in
        let alpha = -1 in
        let spec = Isf.of_csf m (Bdd.and_ m x0 x1) in
        let g = Isf.of_csf m (Bdd.var m alpha) in
        check_bool "faithful substitution" true
          (Invariant.check_composition m ~where:"t"
             ~subs:[ (alpha, Bdd.and_ m x0 x1) ]
             ~g ~spec
          = None);
        check_bool "wrong alpha flagged" true
          (Invariant.check_composition m ~where:"t"
             ~subs:[ (alpha, Bdd.or_ m x0 x1) ]
             ~g ~spec
          <> None));
    Alcotest.test_case "DEC008: emitted tables" `Quick (fun () ->
        let m = Bdd.manager () in
        let x0 = Bdd.var m 0 and x1 = Bdd.var m 1 in
        let xor = Bdd.xor m x0 x1 in
        (* bit k of the table index is support position k *)
        let tt_xor =
          Bv.of_fun 2 (fun i -> (i land 1) lxor ((i lsr 1) land 1) = 1)
        in
        let tt_and = Bv.of_fun 2 (fun i -> i = 3) in
        check_bool "function_of_tt" true
          (Bdd.equal (Invariant.function_of_tt m [ 0; 1 ] tt_xor) xor);
        check_bool "realizes" true
          (Invariant.check_lut_realizes m ~where:"t" (Isf.of_csf m xor)
             ~support:[ 0; 1 ] ~tt:tt_xor
          = None);
        check_bool "wrong table flagged" true
          (Invariant.check_lut_realizes m ~where:"t" (Isf.of_csf m xor)
             ~support:[ 0; 1 ] ~tt:tt_and
          <> None);
        (* don't cares leave the table free where the spec doesn't care *)
        let half = Isf.make m ~on:(Bdd.and_ m x0 x1) ~dc:(Bdd.not_ m x0) in
        check_bool "dc freedom" true
          (Invariant.check_lut_realizes m ~where:"t" half ~support:[ 0; 1 ]
             ~tt:tt_and
          = None);
        check_bool "equality check" true
          (Invariant.check_lut_equals m ~where:"t" xor ~support:[ 0; 1 ]
             ~tt:tt_and
          <> None));
  ]

let parser_tests =
  let parses_with msg text =
    match Blif.parse text with
    | exception Blif.Parse_error (_, m) ->
        check_bool (msg ^ ": " ^ m) true
          (let sub = msg in
           let rec find i =
             i + String.length sub <= String.length m
             && (String.sub m i (String.length sub) = sub || find (i + 1))
           in
           find 0)
    | _ -> Alcotest.fail ("expected Parse_error mentioning " ^ msg)
  in
  [
    Alcotest.test_case "duplicate .names block is rejected" `Quick (fun () ->
        parses_with "duplicate .names"
          ".model t\n.inputs a b\n.outputs y\n.names a y\n1 1\n.names b y\n\
           1 1\n.end\n");
    Alcotest.test_case "duplicate input is rejected" `Quick (fun () ->
        parses_with "duplicate input"
          ".model t\n.inputs a a\n.outputs y\n.names a y\n1 1\n.end\n");
    Alcotest.test_case "duplicate output is rejected" `Quick (fun () ->
        parses_with "duplicate output"
          ".model t\n.inputs a\n.outputs y y\n.names a y\n1 1\n.end\n");
    Alcotest.test_case ".names redefining an input is rejected" `Quick
      (fun () ->
        parses_with "redefines input"
          ".model t\n.inputs a b\n.outputs y\n.names b a\n1 1\n.names a y\n\
           1 1\n.end\n");
    Alcotest.test_case "PLA002: duplicate .ilb name" `Quick (fun () ->
        let m = Bdd.manager () in
        let pla = Pla.parse ".i 2\n.o 1\n.ilb a a\n.ob y\n11 1\n.e\n" in
        check_bool "flagged" true (has "PLA002" (Pla_check.analyze m pla)));
    Alcotest.test_case "PLA001: conflicting fr cubes" `Quick (fun () ->
        let m = Bdd.manager () in
        let pla =
          Pla.parse ".i 2\n.o 1\n.type fr\n11 1\n1- 0\n.e\n"
        in
        check_bool "flagged" true (has "PLA001" (Pla_check.analyze m pla));
        (* .type f: '0' rows carry no off-set assertion *)
        let pla_f = Pla.parse ".i 2\n.o 1\n.type f\n11 1\n1- 0\n.e\n" in
        check_bool "f is exempt" false (has "PLA001" (Pla_check.analyze m pla_f)));
  ]

(* Checked runs are clean, and checking never changes the result. *)
let driver_tests =
  let clean_run name spec_of =
    Alcotest.test_case (name ^ " is clean at --check=full") `Quick (fun () ->
        let m = Bdd.manager () in
        let spec = spec_of m in
        let off = Mulop.run ~lut_size:5 m Mulop.Mulop_dc spec in
        let m2 = Bdd.manager () in
        let spec2 = spec_of m2 in
        let full =
          Mulop.run ~lut_size:5 ~checks:Diagnostic.Full m2 Mulop.Mulop_dc spec2
        in
        check_string "no findings" "" (pp_findings full.Mulop.findings |> fun s ->
          if s = "clean: no findings" then "" else s);
        check_int "same luts" off.Mulop.lut_count full.Mulop.lut_count;
        check_int "same clbs" off.Mulop.clb_count full.Mulop.clb_count;
        let net_findings =
          Net_check.analyze ~lut_size:5 full.Mulop.network
        in
        check_string "network lints clean" "clean: no findings"
          (pp_findings net_findings))
  in
  let mcnc name = clean_run name (fun m -> (Mcnc.find name).Mcnc.build m) in
  let extra name = clean_run name (List.assoc name Extra.catalogue) in
  [
    extra "rd53";
    mcnc "rd73";
    mcnc "misex1";
    extra "sym6";
    Alcotest.test_case "corrupt spec is caught by DEC001" `Quick (fun () ->
        let m = Bdd.manager () in
        let x = Bdd.var m 0 in
        (* Forge an overlapping on/dc pair through Obj.magic-free means:
           the driver checks raw parts, so hand it a spec whose dc was
           widened after construction is impossible through the API —
           instead check the helper wiring via decompose_report on a
           well-formed spec and assert the check layer stays silent. *)
        let spec =
          Driver.spec_of_csf m [ "x0"; "x1" ]
            [ ("y", Bdd.and_ m x (Bdd.var m 1)) ]
        in
        let report =
          Driver.decompose_report ~checks:Diagnostic.Full m spec
        in
        check_string "clean" "clean: no findings"
          (pp_findings report.Driver.findings));
  ]

(* Property: random cone networks decompose to networks that lint clean
   at full checking, with the same CLB count as an unchecked run. *)
let qcheck_tests =
  let prop =
    QCheck.Test.make ~count:15 ~name:"driver output lints clean at --check=full"
      QCheck.(triple (int_range 4 7) (int_range 1 3) (int_range 0 1000))
      (fun (ninputs, noutputs, seed) ->
        let build m =
          Randnet.spec_of_network m
            (Randnet.cones ~ninputs ~noutputs ~window:4 ~gates_per_output:5
               ~seed ())
        in
        let m = Bdd.manager () in
        let off = Mulop.run ~lut_size:4 m Mulop.Mulop_dc (build m) in
        let m2 = Bdd.manager () in
        let full =
          Mulop.run ~lut_size:4 ~checks:Diagnostic.Full m2 Mulop.Mulop_dc
            (build m2)
        in
        full.Mulop.findings = []
        && Net_check.analyze ~lut_size:4 full.Mulop.network = []
        && off.Mulop.lut_count = full.Mulop.lut_count
        && off.Mulop.clb_count = full.Mulop.clb_count)
  in
  [ QCheck_alcotest.to_alcotest prop ]

let suite =
  diagnostic_tests @ corruption_tests @ invariant_tests @ parser_tests
  @ driver_tests @ qcheck_tests
