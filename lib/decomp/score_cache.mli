(** Memoized cofactor vectors and bound-set scores.

    The bound-set search evaluates [Bound_select.score] on many
    overlapping candidates: greedy growth scores every extension of the
    current candidate, Curtis retries rescore supersets, and successive
    driver iterations revisit the same (unchanged) ISFs.  A cache
    instance persists across all of them and is keyed canonically by
    {e function fingerprints} ({!Bdd.fingerprint}) — an ISF is the pair
    of digests of its on- and dc-sets — so entries of rewritten ISFs
    are unreachable rather than stale.  {!retain} drops entries of dead
    ISFs to bound memory after the driver commits a step.

    Fingerprints are manager-independent, so a cache {e outlives} any
    single {!Bdd.manager}: scores computed in one run are valid hits
    for a later run that builds the same functions in a fresh manager
    (the serve daemon's cross-request reuse, and the qcheck property
    [cache-hit score = fresh score across two managers]).  Cofactor
    vectors, by contrast, hold manager-tied {!Isf.t} values: the vector
    table is automatically flushed when the cache is used with a
    manager other than the one that filled it. *)

type t

val create : ?stats:Stats.t -> unit -> t
(** Counters and timings are accumulated into [stats].  Pass the run's
    own instance; the default is a fresh throwaway {!Stats.create} so an
    undirected cache never shares counters with another run. *)

val stats : t -> Stats.t

val cofactor_vector : t -> Bdd.manager -> Isf.t -> int list -> Isf.t array
(** Memoized {!Isf.cofactor_vector} for an ascending bound set.  On a
    miss the vector is built by {!Isf.extend_cofactor_vector} from the
    nearest cached subset (every intermediate prefix is cached too), so
    growing searches pay one variable's worth of restricts per new
    candidate instead of a full recomputation.  Switching managers
    flushes the vector table (vectors are manager-tied); scores are
    kept. *)

type score_key

val score_key :
  Bdd.manager ->
  lut_size:int ->
  ?cost:Cost.t ->
  Isf.t list ->
  int list ->
  score_key
(** Key of a score query: the scoring mode ([lut_size] and the
    objective's {!Cost.key_of} fragment — tag plus arrival profile,
    so arrival-aware scores taken under different network states never
    collide), the sorted bound set, and the fingerprints of the
    participating ISFs.  The manager is only needed to compute
    (memoized) fingerprints; the key itself carries no per-manager
    state.  [cost] defaults to {!Cost.area}, whose fragment is
    constant — area keys are unchanged across runs and managers. *)

val find_score : t -> score_key -> (int * int * int) option
val add_score : t -> score_key -> int * int * int -> unit

val retain : t -> Bdd.manager -> live:Isf.t list -> unit
(** Drop every entry that mentions an ISF outside [live].  Called by
    the driver after a committed step rewrites participant ISFs; pure
    memory hygiene — lookups of dead keys cannot collide with live
    ones because fingerprints identify functions exactly. *)

val clear : t -> unit
