lib/logic/minimize.ml: Array Bdd Cover Fun List
