lib/benchmarks/randnet.mli: Bdd Driver Network
