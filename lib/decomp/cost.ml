(* Pluggable bound-set cost functions.

   [Bound_select] ranks candidate bound sets by a lexicographic triple
   whose first component this module owns: the mapping objective.
   Under [Area] the component is constantly 0, so the ordering
   collapses to the classical pair (communication complexity, then
   support reduction) and area-mode results are bit-identical to the
   pre-objective engine.  Under [Delay] the component is the arrival
   time of the decomposition functions the candidate would create —
   one LUT level above the latest-arriving bound variable — so the
   search prefers bound sets of early-arriving signals and keeps
   critical (late) signals in the free set, where they feed the
   composition function without the extra level (Tempia Calvino et
   al., delay-driven LUT mapping).  [Balanced] folds the same arrival
   term into the area component instead of dominating it.

   The [arrival] oracle maps a decomposition variable to the level of
   the signal realizing it: 0 for primary inputs, [Network.level] for
   already-emitted decomposition functions.  Arrivals are immutable
   once a signal exists (the driver's network is append-only), which
   is what lets scores be memoized — [Score_cache] keys carry the
   objective and the arrival profile of the bound set, so one cache
   serves every mode without mixing. *)

type objective = Area | Delay | Balanced

let objective_name = function
  | Area -> "area"
  | Delay -> "delay"
  | Balanced -> "balanced"

let objective_of_string = function
  | "area" -> Ok Area
  | "delay" -> Ok Delay
  | "balanced" -> Ok Balanced
  | s ->
      Error
        (Printf.sprintf "unknown objective %S (expected area, delay or balanced)"
           s)

let objective_tag = function Area -> 0 | Delay -> 1 | Balanced -> 2

type t = { objective : objective; arrival : int -> int }

let area = { objective = Area; arrival = (fun _ -> 0) }

let make objective ~arrival =
  match objective with Area -> area | Delay | Balanced -> { objective; arrival }

(* Arrival of the candidate's decomposition functions: one level above
   the latest bound variable.  Both inputs and the constant-0 arrival
   of Area make this 1, but Area never reads it. *)
let step_arrival t bound =
  1 + List.fold_left (fun acc v -> max acc (t.arrival v)) 0 bound

let triple t ~bound (a1, a2) =
  match t.objective with
  | Area -> (0, a1, a2)
  | Delay -> (step_arrival t bound, a1, a2)
  | Balanced -> (0, a1 + step_arrival t bound, a2)

(* The cache-key fragment: which ordering was used and, when arrivals
   participate, the arrival profile they were computed from.  Area
   keys carry no profile — area scores are arrival-independent, so a
   cache shared across runs (the serve daemon) may serve them across
   differing network states. *)
let key_of t bound =
  match t.objective with
  | Area -> (0, [])
  | Delay | Balanced -> (objective_tag t.objective, List.map t.arrival bound)

let worst = (max_int, max_int, max_int)
