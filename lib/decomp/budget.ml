type effort = Quick | Normal | Thorough

let effort_name = function
  | Quick -> "quick"
  | Normal -> "normal"
  | Thorough -> "thorough"

let effort_of_string = function
  | "quick" -> Ok Quick
  | "normal" -> Ok Normal
  | "thorough" -> Ok Thorough
  | s -> Error (Printf.sprintf "unknown effort %S (quick|normal|thorough)" s)

type reason = Deadline | Nodes

let reason_name = function Deadline -> "deadline" | Nodes -> "node budget"

type stage = Full | No_symmetry | No_sharing | Shannon_only

let stage_name = function
  | Full -> "full"
  | No_symmetry -> "no-symmetry"
  | No_sharing -> "no-sharing"
  | Shannon_only -> "shannon-only"

exception Out_of_budget of { reason : reason; where : string }

type t = {
  timeout : float option;  (* seconds, relative; clock starts at [attach] *)
  node_budget : int option;  (* allotment of fresh nodes per stage *)
  effort_level : effort;
  stats : Stats.t;  (* the attached run's counters ([budget_checks]) *)
  mutable deadline : float option;  (* absolute Mono.now time *)
  mutable node_limit : int option;  (* absolute unique-table size limit *)
  mutable current : stage;
  mutable mask : int;  (* > 0: checks suspended (inside [exempt]) *)
  mutable manager : Bdd.manager option;  (* set by [attach] *)
}

let create ?timeout ?node_budget ?(effort = Normal) ?(stats = Stats.create ())
    () =
  {
    timeout;
    node_budget;
    effort_level = effort;
    stats;
    deadline = None;
    node_limit = None;
    current = Full;
    mask = 0;
    manager = None;
  }

let unlimited = create ()

let is_limited t = t.timeout <> None || t.node_budget <> None
let effort t = t.effort_level
let stage t = t.current

let exceed reason where = raise (Out_of_budget { reason; where })

(* The growth hook receives the node count for free; [check] looks it
   up itself.  Both funnel here. *)
let poll t ~where node_count =
  if t.mask = 0 && t.current <> Shannon_only then begin
    (* The run's own stats, never a process-global one: poll fires
       concurrently from every batch worker domain. *)
    t.stats.Stats.budget_checks <- t.stats.Stats.budget_checks + 1;
    (match t.node_limit with
    | Some limit when node_count > limit -> exceed Nodes where
    | Some _ | None -> ());
    match t.deadline with
    | Some d when Mono.now () > d -> exceed Deadline where
    | Some _ | None -> ()
  end

let check t ~where =
  if is_limited t then
    let count =
      match (t.node_limit, t.manager) with
      | Some _, Some m -> Bdd.node_count m
      | _ -> 0
    in
    poll t ~where count

let checker t ~where () = check t ~where

let attach t m =
  if is_limited t then begin
    t.manager <- Some m;
    (* Re-arm from scratch on every attach.  A reused budget previously
       kept the first run's absolute deadline, node baseline and
       degradation stage, so a second run started (partly or fully)
       exhausted; each attach is the start of a fresh run. *)
    t.current <- Full;
    t.mask <- 0;
    (* Monotonic: a wall-clock (NTP) step must not expire or extend a
       running deadline. *)
    (match t.timeout with
    | Some secs -> t.deadline <- Some (Mono.now () +. secs)
    | None -> t.deadline <- None);
    (match t.node_budget with
    | Some b -> t.node_limit <- Some (Bdd.node_count m + b)
    | None -> t.node_limit <- None);
    Bdd.set_growth_hook m (Some (fun count -> poll t ~where:"bdd-growth" count))
  end

let detach t m = if is_limited t then Bdd.set_growth_hook m None

let exempt t f =
  if not (is_limited t) then f ()
  else begin
    t.mask <- t.mask + 1;
    Fun.protect ~finally:(fun () -> t.mask <- t.mask - 1) f
  end

let degrade t m reason =
  let next =
    match t.current with
    | Full -> No_symmetry
    | No_symmetry -> No_sharing
    | No_sharing | Shannon_only -> Shannon_only
  in
  t.current <- next;
  if next = Shannon_only then begin
    (* Terminal stage: emitting the remaining Shannon/MUX trees is
       mandatory work, so the budget disarms itself entirely. *)
    t.deadline <- None;
    t.node_limit <- None;
    detach t m
  end
  else begin
    match (reason, t.node_budget) with
    | Nodes, Some b ->
        (* Fresh allotment: the cheaper mode needs room to operate. *)
        t.node_limit <- Some (Bdd.node_count m + b)
    | (Nodes | Deadline), _ -> ()
  end;
  next

let apply_effort t cfg =
  match t.effort_level with
  | Normal -> cfg
  | Quick ->
      {
        cfg with
        Config.seeds = min cfg.Config.seeds 2;
        symmetry_budget = min cfg.Config.symmetry_budget 400;
        exact_coloring_limit = min cfg.Config.exact_coloring_limit 2_000;
      }
  | Thorough ->
      {
        cfg with
        Config.seeds = 2 * cfg.Config.seeds;
        symmetry_budget = 4 * cfg.Config.symmetry_budget;
        exact_coloring_limit = 4 * cfg.Config.exact_coloring_limit;
      }
