(* The serve subsystem: protocol codec strictness, frame reassembly
   across arbitrary read boundaries, queue backpressure, result-cache
   keying and eviction, and end-to-end daemon behaviour on a Unix
   socket — above all the determinism guarantee: a served result is
   byte-identical to what the CLI code path produces for the same
   request. *)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains s sub =
  let n = String.length sub in
  let rec at i =
    i + n <= String.length s && (String.sub s i n = sub || at (i + 1))
  in
  at 0

(* ---- protocol ---- *)

let roundtrip_request req =
  match Proto.parse (Proto.to_string (Proto.request_to_json req)) with
  | Error msg -> Alcotest.fail ("request did not reparse: " ^ msg)
  | Ok json -> (
      match Proto.request_of_json json with
      | Ok req' -> req'
      | Error msg -> Alcotest.fail ("request did not decode: " ^ msg))

let roundtrip_response resp =
  match Proto.parse (Proto.to_string (Proto.response_to_json resp)) with
  | Error msg -> Alcotest.fail ("response did not reparse: " ^ msg)
  | Ok json -> (
      match Proto.response_of_json json with
      | Ok resp' -> resp'
      | Error msg -> Alcotest.fail ("response did not decode: " ^ msg))

let proto_tests =
  [
    Alcotest.test_case "requests round-trip through JSON" `Quick (fun () ->
        let full =
          {
            Proto.id = 42;
            op =
              Proto.Run
                {
                  Proto.source = Proto.Blif_text ".model t\n.end\n";
                  lut_size = 4;
                  algorithm = Mulop.Mulop_dc_ii;
                  effort = Some Budget.Thorough;
                  timeout = Some 1.5;
                  node_budget = Some 100000;
                  checks = Diagnostic.Full;
                  verify = true;
                };
          }
        in
        check_bool "full run request" true (roundtrip_request full = full);
        List.iter
          (fun op ->
            let req = { Proto.id = 7; op } in
            check_bool "control op" true (roundtrip_request req = req))
          [ Proto.Ping; Proto.Stats; Proto.Shutdown ];
        let tgt =
          {
            Proto.id = 1;
            op =
              Proto.Run
                {
                  Proto.source = Proto.Target "rd53";
                  lut_size = 5;
                  algorithm = Mulop.Mulop_dc;
                  effort = None;
                  timeout = None;
                  node_budget = None;
                  checks = Diagnostic.Off;
                  verify = false;
                };
          }
        in
        check_bool "target request" true (roundtrip_request tgt = tgt));
    Alcotest.test_case "responses round-trip through JSON" `Quick (fun () ->
        let run =
          Proto.Ok_run
            ( 3,
              {
                Proto.job = "rd53";
                algorithm = "mulop-dc";
                luts = 3;
                clbs = 3;
                depth = 1;
                steps = 0;
                shannon = 0;
                alphas = 2;
                degraded_to = "full";
                findings = "{}";
                verified = Some true;
                blif = ".model rd53\n.end\n";
                cached = true;
                seconds = 0.25;
              } )
        in
        check_bool "run response" true (roundtrip_response run = run);
        let err =
          Proto.Err
            {
              id = 9;
              code = Proto.Queue_full;
              message = "job queue full (4 queued)";
              retry_after = Some 0.5;
            }
        in
        check_bool "error response" true (roundtrip_response err = err);
        check_bool "pong" true (roundtrip_response (Proto.Pong 1) = Proto.Pong 1));
    Alcotest.test_case "JSON parser is strict" `Quick (fun () ->
        let rejected s =
          match Proto.parse s with Error _ -> true | Ok _ -> false
        in
        List.iter
          (fun s -> check_bool (Printf.sprintf "rejects %S" s) true (rejected s))
          [
            "";
            "{";
            "[1,2";
            "\"abc";
            "123abc";
            "{\"a\":1,}";
            "tru";
            "{\"a\" 1}";
            "\"bad \\q escape\"";
            "\"ctrl \000 char\"";
            "1 2";
            String.concat "" (List.init 70 (fun _ -> "[")) ^ "1";
          ];
        check_bool "deep nesting rejected" true
          (rejected
             (String.concat "" (List.init 70 (fun _ -> "["))
             ^ "1"
             ^ String.concat "" (List.init 70 (fun _ -> "]"))));
        (match Proto.parse "{\"s\": \"a\\u0041\\n\\\"b\"}" with
        | Ok json -> (
            match Proto.member "s" json with
            | Some (Proto.Str s) -> check_string "escapes decode" "aA\n\"b" s
            | _ -> Alcotest.fail "missing member")
        | Error msg -> Alcotest.fail msg);
        match Proto.parse "[3.5e2, -0, true, null]" with
        | Ok (Proto.Arr [ Proto.Num x; Proto.Num z; Proto.Bool true; Proto.Null ])
          ->
            check_bool "numbers" true (x = 350.0 && z = 0.0)
        | _ -> Alcotest.fail "array did not parse");
    Alcotest.test_case "error codes map the batch taxonomy" `Quick (fun () ->
        check_string "parse" "parse-error"
          (Proto.error_code_name (Proto.error_code_of_kind Batch.Parse_error));
        check_string "internal" "internal"
          (Proto.error_code_name (Proto.error_code_of_kind Batch.Internal));
        check_string "budget" "out-of-budget"
          (Proto.error_code_name (Proto.error_code_of_kind Batch.Out_of_budget));
        check_string "other" "failed"
          (Proto.error_code_name (Proto.error_code_of_kind Batch.Other));
        check_bool "parse errors are the client's fault" true
          (Proto.client_fault Proto.Parse_error);
        check_bool "queue-full is retryable, not a client fault" true
          (not (Proto.client_fault Proto.Queue_full));
        List.iter
          (fun c ->
            check_bool "names round-trip" true
              (Proto.error_code_of_name (Proto.error_code_name c) = Some c))
          [
            Proto.Bad_request;
            Proto.Too_large;
            Proto.Queue_full;
            Proto.Shutting_down;
            Proto.Parse_error;
            Proto.Out_of_budget;
            Proto.Internal;
            Proto.Failed;
          ]);
  ]

(* ---- framing ---- *)

let drain reader =
  let rec go acc =
    match Frame.next reader with
    | `Frame p -> go (`Frame p :: acc)
    | `Oversized n -> go (`Oversized n :: acc)
    | `Await -> List.rev acc
  in
  go []

let frame_tests =
  [
    Alcotest.test_case "frames reassemble byte by byte" `Quick (fun () ->
        let messages = [ "hello"; ""; String.make 1000 'x'; "{\"op\":\"ping\"}" ] in
        let wire =
          String.concat ""
            (List.map (fun m -> Bytes.to_string (Frame.encode m)) messages)
        in
        let r = Frame.reader () in
        let got = ref [] in
        String.iter
          (fun c ->
            Frame.feed r (Bytes.make 1 c) 0 1;
            List.iter
              (function
                | `Frame p -> got := p :: !got
                | `Oversized _ -> Alcotest.fail "unexpected oversize")
              (drain r))
          wire;
        check_bool "all frames recovered in order" true
          (List.rev !got = messages));
    Alcotest.test_case "frames reassemble from one big feed" `Quick (fun () ->
        let messages = [ "a"; "bb"; "ccc" ] in
        let wire =
          String.concat ""
            (List.map (fun m -> Bytes.to_string (Frame.encode m)) messages)
        in
        let r = Frame.reader () in
        Frame.feed r (Bytes.of_string wire) 0 (String.length wire);
        let frames =
          List.filter_map (function `Frame p -> Some p | _ -> None) (drain r)
        in
        check_bool "three frames" true (frames = messages));
    Alcotest.test_case "oversized frame is reported once, then drained" `Quick
      (fun () ->
        let r = Frame.reader ~max_frame:8 () in
        let big = Bytes.to_string (Frame.encode (String.make 20 'z')) in
        let ok = Bytes.to_string (Frame.encode "ok") in
        let wire = big ^ ok in
        let events = ref [] in
        String.iter
          (fun c ->
            Frame.feed r (Bytes.make 1 c) 0 1;
            events := !events @ drain r)
          wire;
        match !events with
        | [ `Oversized 20; `Frame "ok" ] -> ()
        | _ -> Alcotest.fail "expected exactly [Oversized 20; Frame ok]");
  ]

(* ---- bounded queue ---- *)

let bqueue_tests =
  [
    Alcotest.test_case "try_push refuses when full; close drains" `Quick
      (fun () ->
        let q = Bqueue.create ~capacity:2 in
        check_bool "push a" true (Bqueue.try_push q "a");
        check_bool "push b" true (Bqueue.try_push q "b");
        check_bool "full refuses" false (Bqueue.try_push q "c");
        check_int "length" 2 (Bqueue.length q);
        check_bool "pop a" true (Bqueue.pop q = Some "a");
        check_bool "slot freed" true (Bqueue.try_push q "c");
        Bqueue.close q;
        check_bool "closed refuses" false (Bqueue.try_push q "d");
        check_bool "queued items survive close" true
          (Bqueue.pop q = Some "b" && Bqueue.pop q = Some "c");
        check_bool "drained close yields None" true (Bqueue.pop q = None));
    Alcotest.test_case "pop blocks until an item arrives" `Quick (fun () ->
        let q = Bqueue.create ~capacity:1 in
        let consumer = Domain.spawn (fun () -> Bqueue.pop q) in
        Unix.sleepf 0.02;
        check_bool "push wakes the popper" true (Bqueue.try_push q 7);
        check_bool "popper got it" true (Domain.join consumer = Some 7));
  ]

(* ---- result cache ---- *)

let mk_result key_tag blif_len =
  {
    Proto.job = key_tag;
    algorithm = "a";
    luts = 1;
    clbs = 1;
    depth = 1;
    steps = 0;
    shannon = 0;
    alphas = 0;
    degraded_to = "full";
    findings = "{}";
    verified = None;
    blif = String.make blif_len 'x';
    cached = false;
    seconds = 0.0;
  }

(* The same two-output function over 6 inputs, rebuilt on any manager
   from an explicit truth-table recipe — so two managers hold equal
   functions with unrelated node ids. *)
let spec_on m =
  let cells k i = (i * 37 + k * 11) mod 3 in
  let isf k =
    let on = Bv.of_fun 6 (fun i -> cells k i = 1) in
    let dc = Bv.of_fun 6 (fun i -> cells k i = 2) in
    Isf.make m ~on:(Bv.to_bdd m on) ~dc:(Bv.to_bdd m dc)
  in
  {
    Driver.input_names = List.init 6 (Printf.sprintf "x%d");
    functions = [ ("f", isf 0); ("g", isf 1) ];
  }

let rcache_tests =
  [
    Alcotest.test_case "keys are manager-independent and parameter-aware"
      `Quick (fun () ->
        let key m spec ?(lut_size = 5) ?(algorithm = Mulop.Mulop_dc) ?effort
            ?(checks = Diagnostic.Off) ?(verify = false) () =
          Rcache.key m spec ~lut_size ~algorithm ~effort ~checks ~verify
        in
        let m1 = Bdd.manager () and m2 = Bdd.manager () in
        let s1 = spec_on m1 and s2 = spec_on m2 in
        check_string "same function, two managers, one key" (key m1 s1 ())
          (key m2 s2 ());
        check_bool "lut size changes the key" true
          (key m1 s1 () <> key m1 s1 ~lut_size:4 ());
        check_bool "algorithm changes the key" true
          (key m1 s1 () <> key m1 s1 ~algorithm:Mulop.Mulop_ii ());
        check_bool "effort changes the key" true
          (key m1 s1 () <> key m1 s1 ~effort:Budget.Quick ());
        check_bool "checks change the key" true
          (key m1 s1 () <> key m1 s1 ~checks:Diagnostic.Full ());
        check_bool "verify changes the key" true
          (key m1 s1 () <> key m1 s1 ~verify:true ()));
    Alcotest.test_case "LRU eviction under the byte cap, counted hits" `Quick
      (fun () ->
        let stats = Stats.create () in
        (* each entry: 2+1+4+2+100+160 = 269 bytes; cap fits three *)
        let cache = Rcache.create ~max_bytes:810 ~stats () in
        let k n = Printf.sprintf "k%d" n in
        List.iter (fun n -> Rcache.add cache (k n) (mk_result (k n) 100)) [ 1; 2; 3 ];
        check_int "three entries" 3 (Rcache.entries cache);
        check_bool "k1 hits (and becomes most recent)" true
          (Rcache.find cache (k 1) <> None);
        Rcache.add cache (k 4) (mk_result (k 4) 100);
        check_int "still three entries" 3 (Rcache.entries cache);
        check_bool "k2 was the least recently used" true
          (Rcache.find cache (k 2) = None);
        check_bool "k1 survived" true (Rcache.find cache (k 1) <> None);
        check_bool "k3 survived" true (Rcache.find cache (k 3) <> None);
        check_bool "k4 present" true (Rcache.find cache (k 4) <> None);
        check_int "hits counted" 4 stats.Stats.result_hits;
        check_int "misses counted" 1 stats.Stats.result_misses;
        check_bool "bytes accounted under cap" true (Rcache.bytes cache <= 810));
    Alcotest.test_case "an entry bigger than the cap is not cached" `Quick
      (fun () ->
        let cache = Rcache.create ~max_bytes:100 ~stats:(Stats.create ()) () in
        Rcache.add cache "huge" (mk_result "huge" 500);
        check_int "not stored" 0 (Rcache.entries cache));
  ]

(* ---- end-to-end over a Unix socket ---- *)

let sock_counter = ref 0

let fresh_sock () =
  incr sock_counter;
  Printf.sprintf "%s/mfd-t%d-%d.sock"
    (Filename.get_temp_dir_name ())
    (Unix.getpid ()) !sock_counter

let with_server ?(jobs = 1) ?(queue_depth = 8) ?(max_frame = 1024 * 1024) f =
  let endpoint = Server.Unix_socket (fresh_sock ()) in
  let ready = Atomic.make false in
  let config =
    {
      (Server.default_config endpoint) with
      Server.jobs;
      queue_depth;
      cache_mb = 4;
      max_frame;
    }
  in
  let d =
    Domain.spawn (fun () ->
        Server.run ~on_ready:(fun () -> Atomic.set ready true) config)
  in
  while not (Atomic.get ready) do
    Unix.sleepf 0.002
  done;
  Fun.protect
    ~finally:(fun () ->
      (* Ask for shutdown if the test has not already done so; the
         socket may be gone by now, which is fine. *)
      (match Client.connect endpoint with
      | c ->
          (try ignore (Client.call c Proto.Shutdown) with _ -> ());
          Client.close c
      | exception _ -> ());
      Domain.join d)
    (fun () -> f endpoint)

let run_op ?(lut_size = 5) ?(algorithm = Mulop.Mulop_dc) ?effort ?timeout
    ?node_budget ?(checks = Diagnostic.Off) ?(verify = false) source =
  Proto.Run
    {
      Proto.source;
      lut_size;
      algorithm;
      effort;
      timeout;
      node_budget;
      checks;
      verify;
    }

let expect_run client op =
  match Client.call client op with
  | Ok (Proto.Ok_run (_, r)) -> r
  | Ok (Proto.Err { code; message; _ }) ->
      Alcotest.fail
        (Printf.sprintf "server error %s: %s" (Proto.error_code_name code)
           message)
  | Ok _ -> Alcotest.fail "unexpected response kind"
  | Error msg -> Alcotest.fail ("protocol error: " ^ msg)

let expect_stats client =
  match Client.call client Proto.Stats with
  | Ok (Proto.Ok_stats (_, s)) -> s
  | _ -> Alcotest.fail "no stats response"

(* What the CLI code path produces for the same request — Batch.run_one
   on the manager that built the spec, exactly as mfd run does. *)
let direct ?(checks = Diagnostic.Off) ?(verify = false)
    ?(algorithm = Mulop.Mulop_dc) ~job build =
  let m = Bdd.manager () in
  let spec = build m in
  match
    Batch.run_one ~lut_size:5 ~checks ~verify ~stats:(Stats.create ())
      algorithm m spec
  with
  | Ok s ->
      ( s,
        Blif.print ~model:job s.Batch.network,
        Diagnostic.to_json s.Batch.findings )
  | Error e -> Alcotest.fail ("direct run failed: " ^ e.Batch.message)

let e2e_tests =
  [
    Alcotest.test_case "served result is identical to the CLI run" `Quick
      (fun () ->
        with_server ~jobs:2 (fun endpoint ->
            let c = Client.connect endpoint in
            let r =
              expect_run c
                (run_op ~checks:Diagnostic.Full ~verify:true
                   (Proto.Target "rd53"))
            in
            let s, blif, findings =
              direct ~checks:Diagnostic.Full ~verify:true ~job:"rd53"
                (fun m -> List.assoc "rd53" Extra.catalogue m)
            in
            check_string "byte-identical BLIF" blif r.Proto.blif;
            check_string "byte-identical findings JSON" findings
              r.Proto.findings;
            check_int "luts" s.Batch.lut_count r.Proto.luts;
            check_int "clbs" s.Batch.clb_count r.Proto.clbs;
            check_int "depth" s.Batch.depth r.Proto.depth;
            check_int "steps" s.Batch.step_count r.Proto.steps;
            check_bool "verified" true (r.Proto.verified = Some true);
            check_bool "first submission is not cached" true
              (not r.Proto.cached);
            Client.close c));
    Alcotest.test_case "inline BLIF text is served like the CLI" `Quick
      (fun () ->
        (* A valid network to submit: decompose sym6 locally, print it,
           and feed the text back through the daemon. *)
        let text =
          let m = Bdd.manager () in
          let spec = List.assoc "sym6" Extra.catalogue m in
          match
            Batch.run_one ~stats:(Stats.create ()) Mulop.Mulop_dc m spec
          with
          | Ok s -> Blif.print ~model:"t" s.Batch.network
          | Error e -> Alcotest.fail e.Batch.message
        in
        with_server (fun endpoint ->
            let c = Client.connect endpoint in
            let r = expect_run c (run_op (Proto.Blif_text text)) in
            let s, blif, _ =
              direct ~job:"blif" (fun m ->
                  Randnet.spec_of_network m (Blif.parse text))
            in
            check_string "byte-identical BLIF" blif r.Proto.blif;
            check_int "luts" s.Batch.lut_count r.Proto.luts;
            Client.close c));
    Alcotest.test_case "repeat submission is a cache hit" `Quick (fun () ->
        with_server (fun endpoint ->
            let c = Client.connect endpoint in
            let r1 = expect_run c (run_op (Proto.Target "rd53")) in
            let r2 = expect_run c (run_op (Proto.Target "rd53")) in
            check_bool "first is computed" true (not r1.Proto.cached);
            check_bool "second is served from the cache" true r2.Proto.cached;
            check_string "same BLIF either way" r1.Proto.blif r2.Proto.blif;
            check_int "same luts" r1.Proto.luts r2.Proto.luts;
            let s = expect_stats c in
            check_bool "server counted the hit" true (s.Proto.result_hits > 0);
            check_bool "and the misses" true (s.Proto.result_misses > 0);
            check_bool "cache holds the entry" true (s.Proto.cache_entries >= 1);
            (* A budgeted run must bypass the cache: its outcome is
               timing-dependent. *)
            let b1 =
              expect_run c (run_op ~node_budget:10_000_000 (Proto.Target "rd53"))
            in
            let b2 =
              expect_run c (run_op ~node_budget:10_000_000 (Proto.Target "rd53"))
            in
            check_bool "budgeted runs are never cached" true
              ((not b1.Proto.cached) && not b2.Proto.cached);
            Client.close c));
    Alcotest.test_case "full queue answers queue-full with a retry hint"
      `Quick (fun () ->
        with_server ~jobs:1 ~queue_depth:1 (fun endpoint ->
            let c = Client.connect endpoint in
            let n = 30 in
            (* Budgeted requests bypass the cache, so every job costs
               real compute and the single worker cannot keep up with
               30 back-to-back admissions through a depth-1 queue. *)
            for _ = 1 to n do
              ignore
                (Client.send c
                   (run_op ~node_budget:10_000_000 (Proto.Target "sym6")))
            done;
            let ok = ref 0 and full = ref 0 in
            for _ = 1 to n do
              match Client.recv c with
              | Ok (Proto.Ok_run _) -> incr ok
              | Ok (Proto.Err { code = Proto.Queue_full; retry_after; _ }) ->
                  check_bool "retry hint present" true (retry_after <> None);
                  check_bool "retry hint positive" true
                    (match retry_after with Some t -> t > 0.0 | None -> false);
                  incr full
              | Ok _ -> Alcotest.fail "unexpected response"
              | Error msg -> Alcotest.fail msg
            done;
            check_int "every request answered" n (!ok + !full);
            check_bool "some jobs ran" true (!ok >= 1);
            check_bool "backpressure engaged" true (!full >= 1);
            Client.close c));
    Alcotest.test_case "malformed and oversized frames do not kill the server"
      `Quick (fun () ->
        with_server ~max_frame:1024 (fun endpoint ->
            let c = Client.connect endpoint in
            Client.send_raw c "{this is not json";
            (match Client.recv c with
            | Ok (Proto.Err { code = Proto.Bad_request; _ }) -> ()
            | _ -> Alcotest.fail "malformed JSON should be bad-request");
            Client.send_raw c "42";
            (match Client.recv c with
            | Ok (Proto.Err { code = Proto.Bad_request; _ }) -> ()
            | _ -> Alcotest.fail "non-object should be bad-request");
            Client.send_raw c (String.make 5000 'x');
            (match Client.recv c with
            | Ok (Proto.Err { code = Proto.Too_large; _ }) -> ()
            | _ -> Alcotest.fail "oversized frame should be too-large");
            (* the same connection still works after all three *)
            (match Client.call c Proto.Ping with
            | Ok (Proto.Pong _) -> ()
            | _ -> Alcotest.fail "connection should have survived");
            (match Client.call c (run_op (Proto.Target "no-such-circuit")) with
            | Ok (Proto.Err { code = Proto.Parse_error; message; _ }) ->
                check_bool "names the benchmark" true
                  (contains message "no-such-circuit")
            | _ -> Alcotest.fail "unknown benchmark should be parse-error");
            (match
               Client.call c
                 (run_op
                    (Proto.Blif_text
                       ".model x\n.inputs a\n.outputs f\n.names a f\nx 1\n.end\n"))
             with
            | Ok (Proto.Err { code = Proto.Parse_error; _ }) -> ()
            | _ -> Alcotest.fail "a malformed cube should be parse-error");
            let r = expect_run c (run_op (Proto.Target "rd53")) in
            check_bool "real work still served" true (r.Proto.luts > 0);
            Client.close c));
    Alcotest.test_case "a request split into single bytes is reassembled"
      `Quick (fun () ->
        with_server (fun endpoint ->
            let c = Client.connect endpoint in
            let payload =
              Proto.to_string
                (Proto.request_to_json { Proto.id = 5; op = Proto.Ping })
            in
            let wire = Frame.encode payload in
            Bytes.iter
              (fun b ->
                ignore (Unix.write (Client.fd c) (Bytes.make 1 b) 0 1))
              wire;
            (match Client.recv c with
            | Ok (Proto.Pong 5) -> ()
            | _ -> Alcotest.fail "byte-at-a-time ping should still pong");
            Client.close c));
    Alcotest.test_case "client disconnect mid-job does not hurt the server"
      `Quick (fun () ->
        with_server ~jobs:1 (fun endpoint ->
            let a = Client.connect endpoint in
            ignore
              (Client.send a
                 (run_op ~node_budget:10_000_000 (Proto.Target "parity12")));
            (* hang up while the job is (almost surely) still running;
               the orphaned result must be dropped quietly *)
            Client.close a;
            let b = Client.connect endpoint in
            (match Client.call b Proto.Ping with
            | Ok (Proto.Pong _) -> ()
            | _ -> Alcotest.fail "server should still answer");
            let r = expect_run b (run_op (Proto.Target "rd53")) in
            check_bool "still serving real work" true (r.Proto.luts > 0);
            (match Client.call b Proto.Shutdown with
            | Ok (Proto.Bye _) -> ()
            | _ -> Alcotest.fail "shutdown should be acknowledged");
            Client.close b));
    Alcotest.test_case "shutdown drains queued jobs and unlinks the socket"
      `Quick (fun () ->
        let path = fresh_sock () in
        let endpoint = Server.Unix_socket path in
        let ready = Atomic.make false in
        let config =
          { (Server.default_config endpoint) with Server.jobs = 1 }
        in
        let d =
          Domain.spawn (fun () ->
              Server.run ~on_ready:(fun () -> Atomic.set ready true) config)
        in
        while not (Atomic.get ready) do
          Unix.sleepf 0.002
        done;
        let c = Client.connect endpoint in
        (* one queued job, then shutdown: the job's answer must still
           arrive before the server exits *)
        let run_id = Client.send c (run_op (Proto.Target "rd53")) in
        let shut_id = Client.send c Proto.Shutdown in
        let got_run = ref false and got_bye = ref false in
        for _ = 1 to 2 do
          match Client.recv c with
          | Ok (Proto.Ok_run (id, r)) ->
              check_int "run answered under its id" run_id id;
              check_bool "real result" true (r.Proto.luts > 0);
              got_run := true
          | Ok (Proto.Bye id) ->
              check_int "bye under its id" shut_id id;
              got_bye := true
          | Ok _ -> Alcotest.fail "unexpected response"
          | Error msg -> Alcotest.fail msg
        done;
        check_bool "both responses arrived" true (!got_run && !got_bye);
        Client.close c;
        Domain.join d;
        check_bool "socket file removed" true (not (Sys.file_exists path)));
  ]

let suite =
  proto_tests @ frame_tests @ bqueue_tests @ rcache_tests @ e2e_tests
