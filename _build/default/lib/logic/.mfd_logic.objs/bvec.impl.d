lib/logic/bvec.ml: Array Bdd Fun List Printf
