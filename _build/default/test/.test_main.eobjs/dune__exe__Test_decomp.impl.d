test/test_decomp.ml: Alcotest Array Bdd Bv Classes Clb Config Driver Encode Fun Hashtbl Isf List Network Printf QCheck2 QCheck_alcotest Random Step
